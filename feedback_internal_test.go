package repro

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// decidedOnline builds an online pipeline and runs its first-call trial
// so the feedback loop has a baseline to compare serving windows
// against.
func decidedOnline(t *testing.T) *OnlinePipeline {
	t.Helper()
	m, err := GenerateScrambledClusters(512, 512, 32, 917)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOnlinePipeline(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := NewRandomDense(m.Cols, 8, 3)
	if _, err := o.SpMM(x); err != nil {
		t.Fatal(err)
	}
	if done, _ := o.Decided(); !done {
		t.Fatal("trial did not decide")
	}
	return o
}

// The feedback loop must flag a window whose observed cost per flop
// exceeds the trial loser's by more than the slack, and stay quiet
// within it. Window accounting is driven directly for determinism —
// wall-clock serving times are too noisy to pin a threshold on.
func TestMispickWindowEvaluation(t *testing.T) {
	o := decidedOnline(t)
	if o.loserNSPerFlop <= 0 {
		t.Fatalf("trial left no cost baseline: %v", o.loserNSPerFlop)
	}
	if o.PlanFingerprint() == "" {
		t.Fatal("decided pipeline has no plan fingerprint")
	}
	ring := obs.NewEventRing(8)
	o.setEventSink(ring, "unit")
	base := o.loserNSPerFlop

	// A window within the slack: observed = 1.05× the loser.
	o.fbNS.Store(int64(1.05 * base * 1e6))
	o.fbFlops.Store(1e6)
	o.evaluateWindow()
	if got := o.Mispicked(); got != 0 {
		t.Fatalf("in-slack window flagged: mispicks = %d", got)
	}

	// A window past the slack: observed = 2× the loser.
	before := autotuneMispicks.Value()
	o.fbNS.Store(int64(2 * base * 1e6))
	o.fbFlops.Store(1e6)
	o.evaluateWindow()
	if got := o.Mispicked(); got != 1 {
		t.Fatalf("mispicks = %d, want 1", got)
	}
	if got := autotuneMispicks.Value(); got != before+1 {
		t.Fatalf("spmmrr_autotune_mispick_total moved %d -> %d, want +1", before, got)
	}
	evs := ring.Snapshot()
	if len(evs) != 1 || evs[0].Type != obs.EventMispick {
		t.Fatalf("ring = %+v, want one mispick event", evs)
	}
	e := evs[0]
	if e.Tenant != "unit" || e.PlanFP != o.planFP || e.Kernel == "" {
		t.Fatalf("mispick event missing identity fields: %+v", e)
	}
	if e.Value < 1.8 || e.Value > 2.2 {
		t.Fatalf("mispick ratio = %v, want ~2", e.Value)
	}

	// Draining the window must have reset the accumulators.
	if o.fbNS.Load() != 0 || o.fbFlops.Load() != 0 {
		t.Fatal("window accumulators not drained")
	}

	// No baseline (degraded / undecided) never flags.
	o.loserNSPerFlop = 0
	o.fbNS.Store(1e9)
	o.fbFlops.Store(1)
	o.evaluateWindow()
	if got := o.Mispicked(); got != 1 {
		t.Fatalf("baseline-less window flagged: mispicks = %d", got)
	}
}

// observeServe must fill the window from served calls and evaluate it
// exactly every fbWindow samples, and the serving entry points must
// feed it.
func TestMispickWindowFromServing(t *testing.T) {
	o := decidedOnline(t)
	ring := obs.NewEventRing(8)
	o.setEventSink(ring, "unit")
	o.setMispickWindow(4)
	// Make every window a guaranteed mispick: the baseline says the
	// loser is (implausibly) sub-femtosecond per flop.
	o.loserNSPerFlop = 1e-12

	for i := 0; i < 8; i++ {
		o.observeServe(time.Millisecond, 8)
	}
	if got := o.Mispicked(); got != 2 {
		t.Fatalf("mispicks = %d after 8 samples with window 4, want 2", got)
	}

	// The decided SpMM path itself must feed the window.
	o.setMispickWindow(1)
	x := NewRandomDense(o.Matrix().Cols, 8, 5)
	before := o.fbCount.Load()
	if _, err := o.SpMM(x); err != nil {
		t.Fatal(err)
	}
	if got := o.fbCount.Load(); got != before+1 {
		t.Fatalf("served call did not enter the feedback window: count %d -> %d", before, got)
	}

	// setMispickWindow(0) restores the default rather than disabling.
	o.setMispickWindow(0)
	if o.fbWindow != defaultMispickWindow {
		t.Fatalf("fbWindow = %d, want default %d", o.fbWindow, defaultMispickWindow)
	}
}

// A reskin (same structure, new values) must carry the feedback
// baseline, fingerprint, and mispick history into the successor
// pipeline.
func TestMispickStateSurvivesReskin(t *testing.T) {
	o := decidedOnline(t)
	ring := obs.NewEventRing(8)
	o.setEventSink(ring, "unit")
	o.mispicks.Store(3)

	m2 := o.Matrix().Clone()
	for i := range m2.Val {
		m2.Val[i] *= 2
	}
	n, err := o.reskin(context.Background(), m2)
	if err != nil {
		t.Fatal(err)
	}
	if n.Mispicked() != 3 {
		t.Fatalf("reskin dropped mispick history: %d", n.Mispicked())
	}
	if n.loserNSPerFlop != o.loserNSPerFlop || n.planFP != o.planFP {
		t.Fatal("reskin dropped the feedback baseline")
	}
	if n.sink.Load() != o.sink.Load() {
		t.Fatal("reskin dropped the event sink")
	}
}
