package repro_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro"
)

func scrambled(t *testing.T) *repro.Matrix {
	t.Helper()
	m, err := repro.GenerateScrambledClusters(2048, 2048, 128, 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSpMMAgainstPipeline(t *testing.T) {
	m := scrambled(t)
	x := repro.NewRandomDense(m.Cols, 32, 1)
	plain, err := repro.SpMM(m, x)
	if err != nil {
		t.Fatal(err)
	}
	p, err := repro.NewPipeline(m, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := p.SpMM(x)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Rows != tuned.Rows || plain.Cols != tuned.Cols {
		t.Fatalf("shape changed")
	}
	for i := range plain.Data {
		if d := math.Abs(float64(plain.Data[i] - tuned.Data[i])); d > 1e-4 {
			t.Fatalf("pipeline SpMM diverges at %d by %v", i, d)
		}
	}
}

// TestIntoAgainstAllocating checks the public zero-allocation entry
// points (top-level and Pipeline) against their allocating forms,
// including scratch reuse through GetDense/PutDense.
func TestIntoAgainstAllocating(t *testing.T) {
	m := scrambled(t)
	x := repro.NewRandomDense(m.Cols, 16, 7)
	yin := repro.NewRandomDense(m.Rows, 16, 8)
	want, err := repro.SpMM(m, x)
	if err != nil {
		t.Fatal(err)
	}
	y := repro.GetDense(m.Rows, 16)
	defer repro.PutDense(y)
	if err := repro.SpMMInto(y, m, x); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if want.Data[i] != y.Data[i] {
			t.Fatalf("SpMMInto diverges at %d", i)
		}
	}
	p, err := repro.NewPipeline(m, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	y2 := repro.NewDense(m.Rows, 16)
	if err := p.SpMMInto(y2, x); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if d := math.Abs(float64(want.Data[i] - y2.Data[i])); d > 1e-4 {
			t.Fatalf("pipeline SpMMInto diverges at %d by %v", i, d)
		}
	}
	if err := p.SpMMInto(repro.NewDense(m.Rows, 15), x); err == nil {
		t.Fatalf("pipeline SpMMInto accepted wrong shape")
	}
	wantO, err := repro.SDDMM(m, x, yin)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Clone()
	if err := repro.SDDMMInto(out, m, x, yin); err != nil {
		t.Fatal(err)
	}
	for j := range wantO.Val {
		if wantO.Val[j] != out.Val[j] {
			t.Fatalf("SDDMMInto diverges at %d", j)
		}
	}
	out2 := m.Clone()
	if err := p.SDDMMInto(out2, x, yin); err != nil {
		t.Fatal(err)
	}
	if !out2.SameStructure(m) {
		t.Fatalf("pipeline SDDMMInto changed structure")
	}
	for j := range wantO.Val {
		if d := math.Abs(float64(wantO.Val[j] - out2.Val[j])); d > 1e-4 {
			t.Fatalf("pipeline SDDMMInto diverges at %d by %v", j, d)
		}
	}
}

// TestFromRowsUnsortedSDDMM is the end-to-end regression for the CSR
// sorted-unique invariant: a caller handing FromRows unsorted rows must
// get correct SDDMM values (the ASpT scatter path binary-searches row
// columns and silently mis-scatters if construction ever stops
// sorting).
func TestFromRowsUnsortedSDDMM(t *testing.T) {
	m, err := repro.FromRows(2, 4,
		[][]int32{{3, 0, 2}, {1, 0}},
		[][]float32{{30, 1, 20}, {11, 2}})
	if err != nil {
		t.Fatal(err)
	}
	x := repro.NewRandomDense(4, 3, 9)
	yin := repro.NewRandomDense(2, 3, 10)
	got, err := repro.SDDMM(m, x, yin)
	if err != nil {
		t.Fatal(err)
	}
	// Reference computed straight from the (row, col, val) triples.
	check := func(row int, col int32, sval float32) {
		dot := float32(0)
		for k := 0; k < 3; k++ {
			dot += yin.At(row, k) * x.At(int(col), k)
		}
		cols := got.RowCols(row)
		for j := range cols {
			if cols[j] == col {
				if d := math.Abs(float64(got.RowVals(row)[j] - dot*sval)); d > 1e-5 {
					t.Fatalf("SDDMM wrong at (%d,%d): got %v want %v",
						row, col, got.RowVals(row)[j], dot*sval)
				}
				return
			}
		}
		t.Fatalf("nonzero (%d,%d) missing from SDDMM output", row, col)
	}
	check(0, 3, 30)
	check(0, 0, 1)
	check(0, 2, 20)
	check(1, 1, 11)
	check(1, 0, 2)
	// Duplicate columns must be rejected, not silently mangled.
	if _, err := repro.FromRows(1, 3, [][]int32{{2, 2}}, [][]float32{{1, 2}}); err == nil {
		t.Fatalf("FromRows accepted duplicate columns")
	}
}

func TestSDDMMAgainstPipeline(t *testing.T) {
	m := scrambled(t)
	x := repro.NewRandomDense(m.Cols, 16, 2)
	y := repro.NewRandomDense(m.Rows, 16, 3)
	plain, err := repro.SDDMM(m, x, y)
	if err != nil {
		t.Fatal(err)
	}
	p, err := repro.NewPipeline(m, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := p.SDDMM(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !tuned.SameStructure(m) {
		t.Fatalf("SDDMM output structure differs from input")
	}
	for j := range plain.Val {
		if d := math.Abs(float64(plain.Val[j] - tuned.Val[j])); d > 1e-4 {
			t.Fatalf("pipeline SDDMM diverges at %d by %v", j, d)
		}
	}
}

func TestPipelineNRMatchesToo(t *testing.T) {
	m := scrambled(t)
	x := repro.NewRandomDense(m.Cols, 8, 4)
	p, err := repro.NewPipelineNR(m, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Plan().NeedsReordering() {
		t.Fatalf("NR pipeline reordered")
	}
	got, err := p.SpMM(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.SpMM(m, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("NR pipeline diverges")
		}
	}
}

func TestEstimates(t *testing.T) {
	m := scrambled(t)
	dev := repro.P100()
	// Scale the device to the test matrix (see DESIGN.md §5).
	dev.L2Bytes = 256 << 10
	dev.NumSMs = 8
	p, err := repro.NewPipeline(m, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := repro.EstimateSpMMRowWise(dev, m, 256)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.EstimateSpMM(dev, 256)
	if err != nil {
		t.Fatal(err)
	}
	if st.Time <= 0 || base.Time <= 0 {
		t.Fatalf("no simulated time")
	}
	if st.Time >= base.Time {
		t.Fatalf("reordered pipeline not faster on scrambled clusters: %v vs %v", st.Time, base.Time)
	}
	sd, err := p.EstimateSDDMM(dev, 256)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := repro.EstimateSDDMMRowWise(dev, m, 256)
	if err != nil {
		t.Fatal(err)
	}
	if sd.Time >= sb.Time {
		t.Fatalf("SDDMM estimate not faster: %v vs %v", sd.Time, sb.Time)
	}
}

func TestAutoTune(t *testing.T) {
	dev := repro.P100()
	dev.L2Bytes = 256 << 10
	dev.NumSMs = 8
	// Scrambled clusters: reordering wins.
	m := scrambled(t)
	p, err := repro.AutoTune(m, repro.DefaultConfig(), dev, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Plan().NeedsReordering() {
		t.Fatalf("AutoTune rejected reordering on scrambled clusters")
	}
	// A diagonal matrix: reordering cannot win; NR (no preprocessing) is
	// chosen.
	d, err := repro.GenerateUniform(1024, 8192, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := repro.AutoTune(d, repro.DefaultConfig(), dev, 256)
	if err != nil {
		t.Fatal(err)
	}
	x := repro.NewRandomDense(d.Cols, 8, 1)
	if _, err := p2.SpMM(x); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMarketFacade(t *testing.T) {
	m := scrambled(t)
	var buf bytes.Buffer
	if err := repro.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := repro.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.SameStructure(m) {
		t.Fatalf("round trip changed structure")
	}
	if _, err := repro.ReadMatrixMarket(strings.NewReader("garbage")); err == nil {
		t.Fatalf("accepted garbage")
	}
}

func TestFromRowsFacade(t *testing.T) {
	m, err := repro.FromRows(2, 3, [][]int32{{0, 2}, {1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
	if _, err := repro.FromRows(2, 3, [][]int32{{5}}, nil); err == nil {
		t.Fatalf("accepted bad input")
	}
}

func TestGenerators(t *testing.T) {
	if _, err := repro.GenerateRMAT(8, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.GenerateUniform(100, 100, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.GenerateScrambledClusters(100, 100, 10, 1); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadPlan(t *testing.T) {
	m := scrambled(t)
	p, err := repro.NewPipeline(m, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.SavePlan(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := repro.NewPipelineFromSavedPlan(m, repro.DefaultConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	x := repro.NewRandomDense(m.Cols, 8, 5)
	a, err := p.SpMM(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p2.SpMM(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("saved-plan pipeline differs at %d", i)
		}
	}
	// Wrong matrix shape must be rejected.
	var buf2 bytes.Buffer
	if err := p.SavePlan(&buf2); err != nil {
		t.Fatal(err)
	}
	other, err := repro.GenerateUniform(16, 16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.NewPipelineFromSavedPlan(other, repro.DefaultConfig(), &buf2); err == nil {
		t.Fatalf("mismatched saved plan accepted")
	}
}

func TestPipelinePlanMetrics(t *testing.T) {
	m := scrambled(t)
	p, err := repro.NewPipeline(m, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	plan := p.Plan()
	if plan.Preprocess <= 0 {
		t.Fatalf("preprocess time missing")
	}
	if plan.DenseRatioBefore < 0 || plan.DenseRatioBefore > 1 ||
		plan.DenseRatioAfter < 0 || plan.DenseRatioAfter > 1 {
		t.Fatalf("dense ratios out of range")
	}
	if p.Matrix() != m {
		t.Fatalf("Matrix() does not return the original")
	}
}
