package repro

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Online-strategy metrics live in the process-wide registry: the trial
// is a property of the workload (which plan wins on this hardware for
// these shapes), so aggregating across pipelines is what an operator
// wants on a dashboard. Per-request serving metrics, by contrast, are
// per-Server (see NewServer).
var (
	onlineTrialsReordered = obs.Default().Counter("spmmrr_online_trials_total",
		"First-iteration trials decided, by winning plan.", obs.L("winner", "reordered"))
	onlineTrialsPlain = obs.Default().Counter("spmmrr_online_trials_total",
		"First-iteration trials decided, by winning plan.", obs.L("winner", "plain"))
	onlineWinnerFlips = obs.Default().Counter("spmmrr_online_winner_flips_total",
		"Consecutive trial decisions that disagreed with the previous one.")
	onlineDegraded = obs.Default().Counter("spmmrr_online_degraded_total",
		"Background reordered builds abandoned (budget, cancellation, error, panic).")
	onlineTrialRRSeconds = obs.Default().GaugeFloat("spmmrr_online_trial_reordered_seconds",
		"Reordered-plan wall time measured by the most recent trial.")
	onlineTrialNRSeconds = obs.Default().GaugeFloat("spmmrr_online_trial_plain_seconds",
		"No-reorder-plan wall time measured by the most recent trial.")

	// lastTrialWinner tracks the previous decision across all pipelines
	// in the process: 0 = none yet, 1 = reordered, 2 = plain.
	lastTrialWinner atomic.Int32

	// Kernel-choice counters, one per strategy, bumped when a pipeline
	// is constructed: the distribution shows which kernels the autotuner
	// actually selects on the workload's matrices.
	kernelChoiceRowWise = obs.Default().Counter("spmmrr_kernel_choice_total",
		"Pipelines constructed, by selected SpMM kernel.", obs.L("kernel", "rowwise"))
	kernelChoiceMerge = obs.Default().Counter("spmmrr_kernel_choice_total",
		"Pipelines constructed, by selected SpMM kernel.", obs.L("kernel", "merge"))
	kernelChoiceELLHybrid = obs.Default().Counter("spmmrr_kernel_choice_total",
		"Pipelines constructed, by selected SpMM kernel.", obs.L("kernel", "ellhybrid"))
	kernelChoiceASpT = obs.Default().Counter("spmmrr_kernel_choice_total",
		"Pipelines constructed, by selected SpMM kernel.", obs.L("kernel", "aspt"))

	// Row-panel sharding: the panel-count distribution shows how the
	// nnz threshold actually splits the workload's matrices (all-ones =
	// sharding configured but never triggering).
	shardPanelsBuilt = obs.Default().Histogram("spmmrr_shard_panels",
		"Row panels per constructed ShardedPipeline.",
		obs.ExponentialBuckets(1, 2, 8))

	// Autotuner feedback: windows of observed serving throughput in
	// which the trial winner underperformed the measured trial loser —
	// the signal that the one-shot §4 decision (or the structural
	// autotune) no longer matches the live workload. Observability
	// only: the plan is never flipped mid-serve.
	autotuneMispicks = obs.Default().Counter("spmmrr_autotune_mispick_total",
		"Feedback windows where the serving plan underperformed the trial loser.")
)

// recordShardPanels publishes a constructed sharded pipeline's panel
// count to the process registry.
func recordShardPanels(n int) { shardPanelsBuilt.Observe(float64(n)) }

// recordKernelChoice publishes a constructed pipeline's kernel to the
// process registry. Unknown values (a hand-built plan) count as the
// ASpT fallback the executor will actually take.
func recordKernelChoice(k Kernel) {
	switch k {
	case KernelRowWise:
		kernelChoiceRowWise.Inc()
	case KernelMerge:
		kernelChoiceMerge.Inc()
	case KernelELLHybrid:
		kernelChoiceELLHybrid.Inc()
	default:
		kernelChoiceASpT.Inc()
	}
}

// recordMispick publishes one autotuner-feedback mispick window to the
// process registry.
func recordMispick() { autotuneMispicks.Inc() }

// recordTrial publishes one decided trial to the process registry.
func recordTrial(reorderedWon bool, rrTime, nrTime time.Duration) {
	cur := int32(2)
	if reorderedWon {
		cur = 1
		onlineTrialsReordered.Inc()
	} else {
		onlineTrialsPlain.Inc()
	}
	if prev := lastTrialWinner.Swap(cur); prev != 0 && prev != cur {
		onlineWinnerFlips.Inc()
	}
	onlineTrialRRSeconds.SetDuration(rrTime)
	onlineTrialNRSeconds.SetDuration(nrTime)
}
