// Package gpusim is the GPU substitute of this reproduction (DESIGN.md
// §2): a throughput-oriented memory-hierarchy simulator parameterised
// like the paper's NVIDIA P100. Kernels are executed against the
// simulator, which schedules thread blocks round-robin over SMs, plays
// their dense-operand accesses through a shared set-associative LRU L2,
// stages dense tiles through per-block shared memory, and converts the
// observed traffic into kernel time with a roofline model. The paper's
// speedups are data-movement effects, so traffic-faithful simulation
// reproduces their shape.
package gpusim

import "time"

// Config describes the simulated device and kernel-shape constants.
type Config struct {
	Name string

	// NumSMs is the number of streaming multiprocessors (P100: 56).
	NumSMs int
	// BlocksPerSM is the number of co-resident thread blocks per SM;
	// accesses of co-resident blocks interleave in the L2.
	BlocksPerSM int
	// RowsPerBlock is how many sparse rows a row-wise thread block
	// covers (one warp per row, warps*rows per block as in §2.3's
	// execution sketch).
	RowsPerBlock int

	// SharedMemPerBlock is the shared-memory budget of one thread block
	// in bytes (P100: 64 KiB per SM; ASpT sizes its tiles to it).
	SharedMemPerBlock int
	// TileKSlice is the number of dense-matrix columns a tile-processing
	// thread block covers at once; together with SharedMemPerBlock it
	// bounds how many X rows fit in shared memory per chunk.
	TileKSlice int

	// L2Bytes is the last-level cache capacity (P100: 4 MiB).
	L2Bytes int
	// L2Ways is the modelled associativity.
	L2Ways int

	// DRAMBandwidth is global-memory bandwidth in bytes/s (P100: 732e9).
	DRAMBandwidth float64
	// L2Bandwidth is L2 bandwidth in bytes/s.
	L2Bandwidth float64
	// SharedBandwidth is aggregate shared-memory bandwidth in bytes/s.
	SharedBandwidth float64
	// PeakFlops is peak FP32 throughput in FLOP/s (P100: 9.3e12).
	PeakFlops float64

	// LaunchOverhead is the fixed kernel-launch cost.
	LaunchOverhead time.Duration
	// BlockOverhead is the scheduling cost charged per thread block
	// (models block dispatch and tile-chunk synchronisation).
	BlockOverhead time.Duration

	// ElemBytes is the size of one matrix element (float32: 4).
	ElemBytes int
	// IndexBytes is the size of one sparse index (int32: 4).
	IndexBytes int
}

// P100 returns a configuration matching the paper's evaluation platform:
// 56 Pascal SMs, 16 GB HBM2 at 732 GB/s, 4 MB L2, 64 KB shared memory per
// SM, 9.3 TFLOP/s single precision.
func P100() Config {
	return Config{
		Name:              "P100",
		NumSMs:            56,
		BlocksPerSM:       4,
		RowsPerBlock:      8,
		SharedMemPerBlock: 64 << 10,
		TileKSlice:        128,
		L2Bytes:           4 << 20,
		L2Ways:            16,
		DRAMBandwidth:     732e9,
		L2Bandwidth:       2.2e12,
		SharedBandwidth:   8.8e12,
		PeakFlops:         9.3e12,
		LaunchOverhead:    5 * time.Microsecond,
		BlockOverhead:     150 * time.Nanosecond,
		ElemBytes:         4,
		IndexBytes:        4,
	}
}

// V100 returns a Volta-generation configuration (80 SMs, 6 MB L2,
// 900 GB/s HBM2, 14 TFLOP/s FP32) for cross-device sensitivity studies:
// the paper evaluates only on the P100, and the device sweep shows how
// its conclusions shift with cache capacity and bandwidth.
func V100() Config {
	c := P100()
	c.Name = "V100"
	c.NumSMs = 80
	c.L2Bytes = 6 << 20
	c.DRAMBandwidth = 900e9
	c.L2Bandwidth = 3.0e12
	c.SharedBandwidth = 12e12
	c.PeakFlops = 14e12
	return c
}

// l2RowCapacity returns how many K-column dense rows fit in the L2.
func (c Config) l2RowCapacity(k int) int {
	rowBytes := k * c.ElemBytes
	if rowBytes <= 0 {
		return 1
	}
	n := c.L2Bytes / rowBytes
	if n < 1 {
		n = 1
	}
	return n
}

// sharedRowCapacity returns how many dense rows (at the tile K-slice
// width) fit in one block's shared memory — the tile chunk size.
func (c Config) sharedRowCapacity(k int) int {
	slice := c.TileKSlice
	if k < slice {
		slice = k
	}
	if slice <= 0 {
		return 1
	}
	n := c.SharedMemPerBlock / (slice * c.ElemBytes)
	if n < 1 {
		n = 1
	}
	return n
}

// concurrentBlocks is the wave width: how many thread blocks execute
// concurrently, interleaving their L2 accesses.
func (c Config) concurrentBlocks() int {
	n := c.NumSMs * c.BlocksPerSM
	if n < 1 {
		n = 1
	}
	return n
}
