package gpusim

import (
	"fmt"
	"strings"
	"time"
)

// Stats is the outcome of one simulated kernel: the traffic observed at
// each level of the memory hierarchy and the roofline-derived time.
type Stats struct {
	Kernel string

	// XAccesses is the number of dense-operand row reads issued by the
	// row-wise/leftover path (each checks the L2).
	XAccesses int64
	// L2Hits / L2Misses partition XAccesses plus tile staging reads.
	L2Hits   int64
	L2Misses int64

	// DRAMBytes is total global-memory traffic: L2 misses on X, sparse
	// structure streaming, dense output/input streaming, tile staging
	// misses.
	DRAMBytes float64
	// Breakdown of DRAMBytes by source (XBytes counts only the L2-miss
	// portion of dense-operand reads; StructBytes the CSR/tile arrays;
	// YBytes the dense input/output row streaming; OutBytes the SDDMM
	// value writes).
	XBytes, StructBytes, YBytes, OutBytes float64
	// L2Bytes is total traffic served at L2 speed (hits and misses both
	// pass through the L2).
	L2Bytes float64
	// SharedBytes is traffic served from shared memory (dense-tile
	// operand reads).
	SharedBytes float64

	// TileChunks counts (panel × shared-capacity chunk) staging rounds.
	TileChunks int64
	// Blocks counts simulated thread blocks.
	Blocks int64

	// Flops is the arithmetic work, 2·nnz·K.
	Flops float64

	// Time is the roofline kernel time; Throughput is Flops/Time in
	// GFLOP/s.
	Time       time.Duration
	Throughput float64

	// Bound names the roofline term that determined Time ("dram", "l2",
	// "shared", "compute", "overhead").
	Bound string
}

// finalize computes Time, Throughput, and Bound from the accumulated
// traffic under the device's roofline.
func (s *Stats) finalize(dev Config) {
	terms := []struct {
		name    string
		seconds float64
	}{
		{"dram", s.DRAMBytes / dev.DRAMBandwidth},
		{"l2", s.L2Bytes / dev.L2Bandwidth},
		{"shared", s.SharedBytes / dev.SharedBandwidth},
		{"compute", s.Flops / dev.PeakFlops},
	}
	bound, max := "compute", 0.0
	for _, t := range terms {
		if t.seconds > max {
			bound, max = t.name, t.seconds
		}
	}
	overhead := dev.LaunchOverhead.Seconds() +
		float64(s.Blocks)/float64(dev.concurrentBlocks())*dev.BlockOverhead.Seconds()
	if overhead > max {
		bound, max = "overhead", overhead
	} else {
		max += overhead
	}
	s.Bound = bound
	s.Time = time.Duration(max * float64(time.Second))
	if s.Time > 0 {
		s.Throughput = s.Flops / max / 1e9
	}
}

// Refinalize recomputes Time, Throughput, and Bound after a caller has
// adjusted the traffic totals — used by format baselines (e.g. ELLPACK)
// that post-process a simulated kernel's traffic.
func (s *Stats) Refinalize(dev Config) {
	s.Time = 0
	s.Throughput = 0
	s.finalize(dev)
}

// HitRate returns the L2 hit fraction, 0 when no accesses occurred.
func (s *Stats) HitRate() float64 {
	total := s.L2Hits + s.L2Misses
	if total == 0 {
		return 0
	}
	return float64(s.L2Hits) / float64(total)
}

// String renders a one-line summary.
func (s *Stats) String() string {
	return fmt.Sprintf("%s: time=%v gflops=%.1f dram=%.1fMB l2hit=%.1f%% shared=%.1fMB bound=%s",
		s.Kernel, s.Time, s.Throughput, s.DRAMBytes/1e6, 100*s.HitRate(), s.SharedBytes/1e6, s.Bound)
}

// Breakdown renders the DRAM traffic by source as a multi-line report —
// where the bytes go, which is the level at which the paper's
// transformation acts.
func (s *Stats) Breakdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s DRAM %.2f MB:\n", s.Kernel, s.DRAMBytes/1e6)
	total := s.DRAMBytes
	if total <= 0 {
		total = 1
	}
	rows := []struct {
		name  string
		bytes float64
	}{
		{"dense operand X (L2 misses)", s.XBytes},
		{"sparse structure", s.StructBytes},
		{"dense rows in/out (Y)", s.YBytes},
		{"output values", s.OutBytes},
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-28s %8.2f MB  %5.1f%%\n", r.name, r.bytes/1e6, 100*r.bytes/total)
	}
	fmt.Fprintf(&sb, "  %-28s %8.2f MB  (served from shared memory)\n",
		"dense operand X (tiles)", s.SharedBytes/1e6)
	return sb.String()
}

// Speedup returns how much faster s is than base (base.Time / s.Time).
func (s *Stats) Speedup(base *Stats) float64 {
	if s.Time <= 0 {
		return 0
	}
	return float64(base.Time) / float64(s.Time)
}
