package gpusim

import (
	"repro/internal/sparse"
)

// SpMVRowWise simulates sparse matrix-vector multiplication (K=1), the
// kernel the paper's introduction contrasts with SpMM: for SpMV the
// dense operand is a single vector, so one cache line holds *many
// consecutive vector elements* and spatial locality between different
// column indices matters — which is exactly what vertex reorderings
// (RCM, METIS, GOrder) optimise. The SpMM simulations model reuse at
// whole-row granularity because a row of a K=512 operand spans many
// lines and no spatial locality exists between rows (§1 of the paper);
// here the cache is modelled at line granularity (LineElems vector
// elements per line) instead.
//
// Together with the SpMM kernels this reproduces the paper's motivating
// claim: a bandwidth-reducing vertex order speeds up SpMV yet does
// nothing (or harm) for SpMM.
func SpMVRowWise(dev Config, s *sparse.CSR, order []int32) (*Stats, error) {
	const lineElems = 32 // 128-byte line / 4-byte float
	e := &engine{
		dev: dev,
		// Cache over x-vector lines: capacity in lines.
		cache: NewCache(dev.L2Bytes/(lineElems*dev.ElemBytes), dev.L2Ways),
		st:    &Stats{Kernel: "spmv-rowwise"},
		k:     1,
	}
	ord, err := resolveOrder(order, s.Rows)
	if err != nil {
		return nil, err
	}
	lineBytes := float64(lineElems * dev.ElemBytes)

	// Structure streaming and output vector.
	e.streamStruct(float64(s.Rows) * 2 * float64(dev.IndexBytes))
	e.streamStruct(float64(s.NNZ()) * float64(dev.IndexBytes+dev.ElemBytes))
	e.streamY(float64(s.Rows) * float64(dev.ElemBytes))

	// Row-wise traversal with blocks of RowsPerBlock rows; accesses are
	// x-vector *lines*.
	rpb := dev.RowsPerBlock
	if rpb < 1 {
		rpb = 1
	}
	var blocks [][]int32
	for start := 0; start < len(ord); start += rpb {
		end := start + rpb
		if end > len(ord) {
			end = len(ord)
		}
		var acc []int32
		for _, row := range ord[start:end] {
			for _, c := range s.RowCols(int(row)) {
				acc = append(acc, c/lineElems)
			}
		}
		blocks = append(blocks, acc)
	}
	// Each access moves one line's bytes at L2, lineBytes at DRAM on a
	// miss. Temporarily adjust accounting by running the interleaver
	// with a 1-element K and fixing byte totals after.
	w := dev.concurrentBlocks()
	for start := 0; start < len(blocks); start += w {
		end := start + w
		if end > len(blocks) {
			end = len(blocks)
		}
		wave := blocks[start:end]
		idx := make([]int, len(wave))
		for live := len(wave); live > 0; {
			live = 0
			for b := range wave {
				if idx[b] < len(wave[b]) {
					line := wave[b][idx[b]]
					e.st.XAccesses++
					e.st.L2Bytes += lineBytes
					if e.cache.Access(int64(line)) {
						e.st.L2Hits++
					} else {
						e.st.L2Misses++
						e.st.DRAMBytes += lineBytes
						e.st.XBytes += lineBytes
					}
					idx[b]++
					if idx[b] < len(wave[b]) {
						live++
					}
				}
			}
		}
	}
	e.st.Blocks += int64(len(blocks))

	e.st.Flops = 2 * float64(s.NNZ())
	e.st.finalize(dev)
	return e.st, nil
}
