package gpusim

import (
	"testing"

	"repro/internal/reorder"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func benchMatrix(b *testing.B) *sparse.CSR {
	b.Helper()
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 8192, Cols: 8192, Clusters: 1024, PrototypeNNZ: 20,
		Keep: 0.8, Noise: 2, Seed: 3, Scrambled: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkSimSpMMRowWise measures simulator throughput itself (host
// cost of simulating one kernel), not the simulated device time.
func BenchmarkSimSpMMRowWise(b *testing.B) {
	m := benchMatrix(b)
	dev := P100()
	b.SetBytes(int64(m.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SpMMRowWise(dev, m, 512, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimSpMMASpT(b *testing.B) {
	m := benchMatrix(b)
	plan, err := reorder.Preprocess(m, reorder.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	dev := P100()
	b.SetBytes(int64(m.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SpMMASpT(dev, plan.Tiled, plan.RestOrder, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimSDDMMASpT(b *testing.B) {
	m := benchMatrix(b)
	plan, err := reorder.Preprocess(m, reorder.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	dev := P100()
	b.SetBytes(int64(m.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SDDMMASpT(dev, plan.Tiled, plan.RestOrder, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := NewCache(2048, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(int64(i * 2654435761 % 8192))
	}
}
