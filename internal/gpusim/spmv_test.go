package gpusim

import (
	"math/rand"
	"testing"

	"repro/internal/partition"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func TestSpMVBasics(t *testing.T) {
	m, _ := synth.Uniform(1024, 1024, 8, 1)
	st, err := SpMVRowWise(P100(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.XAccesses != int64(m.NNZ()) {
		t.Fatalf("XAccesses = %d, want %d", st.XAccesses, m.NNZ())
	}
	if st.Flops != 2*float64(m.NNZ()) {
		t.Fatalf("flops = %v", st.Flops)
	}
	if st.L2Hits+st.L2Misses != st.XAccesses {
		t.Fatalf("hit/miss accounting broken")
	}
	if _, err := SpMVRowWise(P100(), m, make([]int32, m.Rows)); err == nil {
		t.Fatalf("non-permutation order accepted")
	}
}

// TestVertexReorderingHelpsSpMVNotSpMM reproduces the paper's motivating
// §1 claim end to end: an RCM vertex reordering of a scrambled mesh
// matrix reduces SpMV traffic (spatial locality in the x vector) but
// leaves SpMM essentially unimproved (no spatial locality across rows of
// a wide dense operand).
func TestVertexReorderingHelpsSpMVNotSpMM(t *testing.T) {
	// A banded mesh-like matrix, scrambled so the natural order has no
	// locality.
	m, err := synth.Banded(8192, 8192, 64, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	scramble := sparse.IdentityPermutation(m.Rows)
	rng.Shuffle(len(scramble), func(a, b int) { scramble[a], scramble[b] = scramble[b], scramble[a] })
	sm, err := sparse.PermuteSymmetric(m, scramble)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := partition.RCMOrder(sm)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := sparse.PermuteSymmetric(sm, perm)
	if err != nil {
		t.Fatal(err)
	}

	dev := P100()
	// Shrink the L2 so neither the scrambled vector nor the operand
	// fits trivially (8192 floats = 32 KB would fit in 4 MB whole).
	dev.L2Bytes = 16 << 10

	spmvBefore, err := SpMVRowWise(dev, sm, nil)
	if err != nil {
		t.Fatal(err)
	}
	spmvAfter, err := SpMVRowWise(dev, rm, nil)
	if err != nil {
		t.Fatal(err)
	}
	missBefore := 1 - spmvBefore.HitRate()
	missAfter := 1 - spmvAfter.HitRate()
	if missAfter > missBefore/3 {
		t.Fatalf("RCM did not improve SpMV locality: miss rate %.4f -> %.4f",
			missBefore, missAfter)
	}

	spmmBefore, err := SpMMRowWise(dev, sm, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	spmmAfter, err := SpMMRowWise(dev, rm, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Compare data movement (the quantity locality optimisations act
	// on; at this matrix size SpMV kernel *time* is floored by launch
	// overhead in both orders).
	spmvGain := spmvBefore.DRAMBytes / spmvAfter.DRAMBytes
	spmmGain := spmmBefore.DRAMBytes / spmmAfter.DRAMBytes
	if spmvGain < 1.05 {
		t.Fatalf("SpMV traffic gain from RCM too small: %.3f", spmvGain)
	}
	if spmmGain > spmvGain*0.9 {
		t.Fatalf("SpMM gained nearly as much as SpMV from vertex reordering: %.3f vs %.3f",
			spmmGain, spmvGain)
	}
}
