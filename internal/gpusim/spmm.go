package gpusim

import (
	"repro/internal/aspt"
	"repro/internal/sparse"
)

// SpMMRowWise simulates the row-wise SpMM kernel (Alg 1 — the
// cuSPARSE-like baseline): one warp per sparse row, RowsPerBlock rows per
// thread block, every nonzero reading its X row through the L2. order is
// the row processing order (nil = natural order); passing a round-2
// permutation here is how the paper's "row-reordering as aggressive
// tiling" improves the sparse part.
func SpMMRowWise(dev Config, s *sparse.CSR, k int, order []int32) (*Stats, error) {
	e, err := newEngine(dev, k, "spmm-rowwise")
	if err != nil {
		return nil, err
	}
	ord, err := resolveOrder(order, s.Rows)
	if err != nil {
		return nil, err
	}
	// Sparse structure streaming: rowptr once per row, colidx+val once
	// per nonzero.
	e.streamStruct(float64(s.Rows) * 2 * float64(dev.IndexBytes))
	e.streamStruct(float64(s.NNZ()) * float64(dev.IndexBytes+dev.ElemBytes))
	// Output: every Y row written once.
	e.streamY(float64(s.Rows) * e.rowBytes())

	e.runBlocksInterleaved(e.rowWiseBlocks(s, ord))

	e.st.Flops = 2 * float64(s.NNZ()) * float64(k)
	e.st.finalize(dev)
	return e.st, nil
}

// SpMMASpT simulates the two-kernel ASpT SpMM execution (§2.3): first the
// dense-tile kernel — each panel's dense-column X rows are staged through
// the L2 into shared memory once and every tile nonzero then reads shared
// memory — then the row-wise kernel over the leftover sparse part,
// processed in restOrder (nil = natural; the round-2 reordering of the
// paper). The L2 persists across the two phases.
func SpMMASpT(dev Config, t *aspt.Matrix, restOrder []int32, k int) (*Stats, error) {
	e, err := newEngine(dev, k, "spmm-aspt")
	if err != nil {
		return nil, err
	}
	ord, err := resolveOrder(restOrder, t.Rest.Rows)
	if err != nil {
		return nil, err
	}
	s := t.Src

	// ---- Phase 1: dense tiles ----
	// Tile structure streaming: per tile nonzero a (local col, value)
	// pair plus per-row tile pointers.
	e.streamStruct(float64(s.Rows) * 2 * float64(dev.IndexBytes))
	e.streamStruct(float64(t.NNZDense()) * float64(dev.IndexBytes+dev.ElemBytes))

	sharedCap := dev.sharedRowCapacity(k)
	kslices := (k + dev.TileKSlice - 1) / dev.TileKSlice
	tileBlocks := make([][]int32, 0, len(t.Panels))
	rowsWithTile := 0
	for pi := range t.Panels {
		p := &t.Panels[pi]
		if len(p.DenseCols) == 0 {
			continue
		}
		// One logical block per panel covering all K (per-K-slice blocks
		// fetch disjoint slices of the same rows, so whole-row accounting
		// is exact; see DESIGN.md §5). Staging = one X-row access per
		// dense column.
		acc := make([]int32, len(p.DenseCols))
		copy(acc, p.DenseCols)
		tileBlocks = append(tileBlocks, acc)
		chunks := (len(p.DenseCols) + sharedCap - 1) / sharedCap
		e.st.TileChunks += int64(chunks * kslices)
	}
	e.runBlocksInterleaved(tileBlocks)
	// Chunk staging/synchronisation overhead is charged like extra block
	// dispatches.
	e.st.Blocks += e.st.TileChunks
	// Every tile nonzero reads its X row from shared memory.
	e.shared(float64(t.NNZDense()) * e.rowBytes())
	// Tile phase writes partial Y rows for rows that own tile nonzeros.
	for i := 0; i < s.Rows; i++ {
		if t.TileRowPtr[i+1] > t.TileRowPtr[i] {
			rowsWithTile++
		}
	}
	e.streamY(float64(rowsWithTile) * e.rowBytes())

	// ---- Phase 2: leftover sparse part, row-wise ----
	e.streamStruct(float64(s.Rows) * 2 * float64(dev.IndexBytes))
	e.streamStruct(float64(t.Rest.NNZ()) * float64(dev.IndexBytes+dev.ElemBytes))
	e.runBlocksInterleaved(e.rowWiseBlocks(t.Rest, ord))
	// Y accumulation: rows with rest nonzeros write their row; rows that
	// also had tile partials must first read them back. Rows with
	// neither phase still get zero-filled once.
	for i := 0; i < s.Rows; i++ {
		hasTile := t.TileRowPtr[i+1] > t.TileRowPtr[i]
		hasRest := t.Rest.RowPtr[i+1] > t.Rest.RowPtr[i]
		switch {
		case hasRest && hasTile:
			e.streamY(2 * e.rowBytes()) // read partial + write
		case hasRest || !hasTile:
			e.streamY(e.rowBytes()) // write (or zero-fill)
		}
	}

	e.st.Flops = 2 * float64(s.NNZ()) * float64(k)
	e.st.finalize(dev)
	return e.st, nil
}
