package gpusim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(4, 2)
	if c.Access(1) {
		t.Fatalf("cold access hit")
	}
	if !c.Access(1) {
		t.Fatalf("warm access missed")
	}
	if c.Hits != 1 || c.Misses != 1 || c.Accesses() != 2 {
		t.Fatalf("counters: hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// One set, 2 ways: lines 0, 2, 4 all map to set 0 with 2 sets? Use
	// capacity 2 / ways 2 => 1 set: pure LRU of size 2.
	c := NewCache(2, 2)
	c.Access(10)
	c.Access(20)
	c.Access(10) // 20 is now LRU
	c.Access(30) // evicts 20
	if !c.Contains(10) || c.Contains(20) || !c.Contains(30) {
		t.Fatalf("LRU eviction wrong: 10=%v 20=%v 30=%v",
			c.Contains(10), c.Contains(20), c.Contains(30))
	}
}

func TestCacheSetIsolation(t *testing.T) {
	// 4 lines, 2 ways => 2 sets. Even lines map to set 0, odd to set 1.
	c := NewCache(4, 2)
	c.Access(0)
	c.Access(2)
	c.Access(4) // evicts 0 within set 0
	if c.Contains(0) {
		t.Fatalf("set 0 did not evict")
	}
	if !c.Contains(2) || !c.Contains(4) {
		t.Fatalf("set 0 contents wrong")
	}
	c.Access(1)
	if !c.Contains(1) || !c.Contains(2) || !c.Contains(4) {
		t.Fatalf("set 1 access disturbed set 0")
	}
}

func TestCacheDegenerateCapacity(t *testing.T) {
	c := NewCache(0, 16)
	if c.Capacity() < 1 {
		t.Fatalf("capacity < 1")
	}
	c.Access(5)
	if !c.Contains(5) {
		t.Fatalf("single-line cache broken")
	}
	// Capacity smaller than ways degrades to one set of `capacity` ways.
	c2 := NewCache(3, 16)
	if c2.Capacity() != 3 {
		t.Fatalf("capacity = %d, want 3", c2.Capacity())
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(4, 2)
	c.Access(1)
	c.Access(1)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 || c.Contains(1) {
		t.Fatalf("Reset incomplete")
	}
}

// Property: hits+misses == accesses, and re-accessing the most recent
// line always hits.
func TestPropertyCacheConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache(1+rng.Intn(64), 1+rng.Intn(8))
		n := int64(100 + rng.Intn(400))
		var last int64 = -1
		for i := int64(0); i < n; i++ {
			line := int64(rng.Intn(100))
			c.Access(line)
			if last >= 0 && line == last {
				// immediate re-access must hit (checked via Contains)
				if !c.Contains(line) {
					return false
				}
			}
			last = line
		}
		return c.Hits+c.Misses == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a working set no larger than one set's ways never misses
// after warm-up.
func TestPropertyCacheNoCapacityMissSmallWorkingSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ways := 2 + rng.Intn(6)
		sets := 1 + rng.Intn(8)
		c := NewCache(sets*ways, ways)
		// Pick `ways` lines all mapping to the same set.
		set := int64(rng.Intn(sets))
		lines := make([]int64, ways)
		for i := range lines {
			lines[i] = set + int64(i*sets)
		}
		for _, l := range lines {
			c.Access(l)
		}
		before := c.Misses
		for i := 0; i < 100; i++ {
			c.Access(lines[rng.Intn(len(lines))])
		}
		return c.Misses == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
