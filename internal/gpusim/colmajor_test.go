package gpusim

import (
	"math/rand"
	"testing"

	"repro/internal/partition"
	"repro/internal/reorder"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func TestColMajorBasics(t *testing.T) {
	m, _ := synth.Uniform(1024, 1024, 8, 1)
	st, err := SpMMColMajor(P100(), m, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.XAccesses != int64(m.NNZ()) {
		t.Fatalf("XAccesses = %d, want %d", st.XAccesses, m.NNZ())
	}
	if st.Flops != 2*float64(m.NNZ())*256 {
		t.Fatalf("flops = %v", st.Flops)
	}
	if _, err := SpMMColMajor(P100(), m, 0, nil); err == nil {
		t.Fatalf("K=0 accepted")
	}
	if _, err := SpMMColMajor(P100(), m, 256, make([]int32, m.Rows)); err == nil {
		t.Fatalf("bad order accepted")
	}
}

// TestColMajorSpatialLocality pins the layout story: on a banded matrix
// (adjacent column indices), the column-major kernel gets line reuse the
// row-major kernel cannot see, and vice versa on a duplicated-row
// matrix.
func TestColMajorSpatialLocality(t *testing.T) {
	dev := P100()
	dev.L2Bytes = 512 << 10
	// Banded: consecutive nonzeros have adjacent columns — spatial
	// locality, no repeated columns within a panel's working set.
	banded, err := synth.Banded(8192, 8192, 64, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	col, err := SpMMColMajor(dev, banded, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	row, err := SpMMRowWise(dev, banded, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if col.HitRate() <= row.HitRate() {
		t.Fatalf("banded: col-major hit rate %.3f not above row-major %.3f",
			col.HitRate(), row.HitRate())
	}
}

// TestVertexOrderingHelpsColMajor: RCM (spatial) ordering improves the
// column-major mode the way it improves SpMV, completing the layout
// contrast of the paper's §1.
func TestVertexOrderingHelpsColMajor(t *testing.T) {
	dev := P100()
	dev.L2Bytes = 256 << 10
	m, err := synth.Banded(8192, 8192, 64, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	scramble := sparse.IdentityPermutation(m.Rows)
	rng.Shuffle(len(scramble), func(a, b int) { scramble[a], scramble[b] = scramble[b], scramble[a] })
	sm, err := sparse.PermuteSymmetric(m, scramble)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := partition.RCMOrder(sm)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := sparse.PermuteSymmetric(sm, perm)
	if err != nil {
		t.Fatal(err)
	}
	before, err := SpMMColMajor(dev, sm, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	after, err := SpMMColMajor(dev, rm, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.DRAMBytes >= before.DRAMBytes {
		t.Fatalf("RCM did not reduce col-major traffic: %v >= %v",
			after.DRAMBytes, before.DRAMBytes)
	}
}

// TestRowReorderingLayoutContrast: the paper's row reordering targets the
// row-major mode; in the column-major mode it must not produce anything
// like the same gain (repeated columns don't share lines there unless
// also adjacent).
func TestRowReorderingLayoutContrast(t *testing.T) {
	dev := P100()
	dev.L2Bytes = 512 << 10
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 8192, Cols: 8192, Clusters: 1024, PrototypeNNZ: 20,
		Keep: 0.8, Noise: 2, Seed: 6, Scrambled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := reorder.Preprocess(m, reorder.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Row-major gain (the paper's effect), using the reordered matrix's
	// rest processing.
	rowBase, err := SpMMRowWise(dev, m, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowRR, err := SpMMASpT(dev, plan.Tiled, plan.RestOrder, 512)
	if err != nil {
		t.Fatal(err)
	}
	rowGain := rowBase.DRAMBytes / rowRR.DRAMBytes
	// Column-major "gain" from just permuting the rows.
	colBase, err := SpMMColMajor(dev, m, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	colRR, err := SpMMColMajor(dev, plan.Reordered, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	colGain := colBase.DRAMBytes / colRR.DRAMBytes
	if rowGain <= 1.05 {
		t.Fatalf("row-major gain missing: %.3f", rowGain)
	}
	if colGain > rowGain {
		t.Fatalf("row reordering helped col-major (%.3f) more than row-major (%.3f)",
			colGain, rowGain)
	}
}
