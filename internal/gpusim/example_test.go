package gpusim_test

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/sparse"
)

// ExampleSpMMRowWise simulates the worked-example matrix on a miniature
// device where every byte is countable: three rows touching X rows
// a, b, a with a two-row L2 give exactly one hit.
func ExampleSpMMRowWise() {
	m, err := sparse.FromRows(3, 2, [][]int32{{0}, {1}, {0}}, nil)
	if err != nil {
		panic(err)
	}
	dev := gpusim.P100()
	dev.NumSMs = 1
	dev.BlocksPerSM = 1
	dev.RowsPerBlock = 1
	dev.L2Bytes = 2 * 16 * 4 // exactly two K=16 rows
	st, err := gpusim.SpMMRowWise(dev, m, 16, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("hits:", st.L2Hits, "misses:", st.L2Misses)
	// Output: hits: 1 misses: 2
}
