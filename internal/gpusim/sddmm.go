package gpusim

import (
	"repro/internal/aspt"
	"repro/internal/sparse"
)

// SDDMMRowWise simulates the row-wise SDDMM kernel (Alg 2): for each
// sparse row i, the warp streams Y's row i once and reads one X row
// through the L2 per nonzero, writing one output value per nonzero.
func SDDMMRowWise(dev Config, s *sparse.CSR, k int, order []int32) (*Stats, error) {
	e, err := newEngine(dev, k, "sddmm-rowwise")
	if err != nil {
		return nil, err
	}
	ord, err := resolveOrder(order, s.Rows)
	if err != nil {
		return nil, err
	}
	// Sparse structure in, output values out.
	e.streamStruct(float64(s.Rows) * 2 * float64(dev.IndexBytes))
	e.streamStruct(float64(s.NNZ()) * float64(dev.IndexBytes+dev.ElemBytes))
	e.streamOut(float64(s.NNZ()) * float64(dev.ElemBytes))
	// Y rows: streamed once per non-empty row.
	for i := 0; i < s.Rows; i++ {
		if s.RowLen(i) > 0 {
			e.streamY(e.rowBytes())
		}
	}
	e.runBlocksInterleaved(e.rowWiseBlocks(s, ord))

	e.st.Flops = 2 * float64(s.NNZ()) * float64(k)
	e.st.finalize(dev)
	return e.st, nil
}

// SDDMMASpT simulates the two-kernel ASpT SDDMM: the dense-tile kernel
// stages each panel's dense-column X rows into shared memory and computes
// the dot products of tile nonzeros from there (re-streaming Y rows of
// tile-owning rows); the leftover part runs row-wise in restOrder.
func SDDMMASpT(dev Config, t *aspt.Matrix, restOrder []int32, k int) (*Stats, error) {
	e, err := newEngine(dev, k, "sddmm-aspt")
	if err != nil {
		return nil, err
	}
	ord, err := resolveOrder(restOrder, t.Rest.Rows)
	if err != nil {
		return nil, err
	}
	s := t.Src

	// ---- Phase 1: dense tiles ----
	e.streamStruct(float64(s.Rows) * 2 * float64(dev.IndexBytes))
	e.streamStruct(float64(t.NNZDense()) * float64(dev.IndexBytes+dev.ElemBytes))
	e.streamOut(float64(t.NNZDense()) * float64(dev.ElemBytes)) // output values

	sharedCap := dev.sharedRowCapacity(k)
	kslices := (k + dev.TileKSlice - 1) / dev.TileKSlice
	tileBlocks := make([][]int32, 0, len(t.Panels))
	for pi := range t.Panels {
		p := &t.Panels[pi]
		if len(p.DenseCols) == 0 {
			continue
		}
		acc := make([]int32, len(p.DenseCols))
		copy(acc, p.DenseCols)
		tileBlocks = append(tileBlocks, acc)
		chunks := (len(p.DenseCols) + sharedCap - 1) / sharedCap
		e.st.TileChunks += int64(chunks * kslices)
	}
	e.runBlocksInterleaved(tileBlocks)
	e.st.Blocks += e.st.TileChunks
	// Tile nonzeros read X from shared memory; their rows' Y rows are
	// streamed once each in this phase.
	e.shared(float64(t.NNZDense()) * e.rowBytes())
	for i := 0; i < s.Rows; i++ {
		if t.TileRowPtr[i+1] > t.TileRowPtr[i] {
			e.streamY(e.rowBytes())
		}
	}

	// ---- Phase 2: leftover sparse part ----
	e.streamStruct(float64(s.Rows) * 2 * float64(dev.IndexBytes))
	e.streamStruct(float64(t.Rest.NNZ()) * float64(dev.IndexBytes+dev.ElemBytes))
	e.streamOut(float64(t.Rest.NNZ()) * float64(dev.ElemBytes))
	for i := 0; i < t.Rest.Rows; i++ {
		if t.Rest.RowLen(i) > 0 {
			e.streamY(e.rowBytes()) // Y row streamed again for this phase
		}
	}
	e.runBlocksInterleaved(e.rowWiseBlocks(t.Rest, ord))

	e.st.Flops = 2 * float64(s.NNZ()) * float64(k)
	e.st.finalize(dev)
	return e.st, nil
}
