package gpusim

// Cache is a set-associative LRU cache over abstract line identifiers.
// In the SpMM/SDDMM simulations a "line" is one row of the dense operand
// X (K·4 bytes): the reuse the paper's transformation creates is
// row-granular — either another nonzero with the same column index
// executes while the row is still resident (L2 hit) or it does not (DRAM
// fetch). Modelling at row granularity keeps simulation O(nnz) regardless
// of K while preserving exactly the locality phenomenon being studied
// (DESIGN.md §5).
//
// Sets are the row ID modulo the set count; ways are evicted in LRU
// order using a per-set clock.
type Cache struct {
	sets  int
	ways  int
	tags  []int64  // sets*ways; -1 = invalid
	used  []uint64 // LRU timestamps, parallel to tags
	clock uint64

	Hits, Misses int64
}

// NewCache builds a cache with the given total line capacity and
// associativity. Capacity is rounded down to a multiple of ways; a
// capacity below one full set degrades to a single direct-mapped set of
// `capacity` ways so tiny configurations still behave sensibly.
func NewCache(capacity, ways int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if ways < 1 {
		ways = 1
	}
	sets := capacity / ways
	if sets < 1 {
		sets = 1
		ways = capacity
	}
	c := &Cache{
		sets: sets,
		ways: ways,
		tags: make([]int64, sets*ways),
		used: make([]uint64, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// Capacity returns the number of lines the cache can hold.
func (c *Cache) Capacity() int { return c.sets * c.ways }

// Access touches the line and reports whether it hit. On a miss the LRU
// way of the line's set is replaced.
func (c *Cache) Access(line int64) bool {
	c.clock++
	set := int(uint64(line) % uint64(c.sets))
	base := set * c.ways
	victim, victimUsed := base, c.used[base]
	for w := 0; w < c.ways; w++ {
		idx := base + w
		if c.tags[idx] == line {
			c.used[idx] = c.clock
			c.Hits++
			return true
		}
		if c.used[idx] < victimUsed {
			victim, victimUsed = idx, c.used[idx]
		}
	}
	c.tags[victim] = line
	c.used[victim] = c.clock
	c.Misses++
	return false
}

// Contains reports whether the line is resident without touching LRU
// state or counters.
func (c *Cache) Contains(line int64) bool {
	set := int(uint64(line) % uint64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Reset invalidates all lines and zeroes the counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = -1
		c.used[i] = 0
	}
	c.clock = 0
	c.Hits = 0
	c.Misses = 0
}

// Accesses returns the total number of accesses so far.
func (c *Cache) Accesses() int64 { return c.Hits + c.Misses }
