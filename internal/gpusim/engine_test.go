package gpusim

import (
	"testing"

	"repro/internal/sparse"
)

func tinyCSR(t *testing.T, sets [][]int32, cols int) *sparse.CSR {
	t.Helper()
	m, err := sparse.FromRows(len(sets), cols, sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tinyEngine(t *testing.T, dev Config, k int) *engine {
	t.Helper()
	e, err := newEngine(dev, k, "test")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRowWiseBlocksGrouping(t *testing.T) {
	dev := P100()
	dev.RowsPerBlock = 2
	m := tinyCSR(t, [][]int32{{0, 1}, {2}, {}, {3}, {0}}, 8)
	e := tinyEngine(t, dev, 32)
	blocks := e.rowWiseBlocks(m, sparse.IdentityPermutation(5))
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(blocks))
	}
	// Block 0 covers rows 0,1: accesses 0,1,2. Block 1 covers the empty
	// row 2 and row 3. Block 2 covers row 4.
	if len(blocks[0]) != 3 || blocks[0][0] != 0 || blocks[0][2] != 2 {
		t.Fatalf("block 0 = %v", blocks[0])
	}
	if len(blocks[1]) != 1 || blocks[1][0] != 3 {
		t.Fatalf("block 1 = %v", blocks[1])
	}
	if len(blocks[2]) != 1 || blocks[2][0] != 0 {
		t.Fatalf("block 2 = %v", blocks[2])
	}
}

func TestRowWiseBlocksHonoursOrder(t *testing.T) {
	dev := P100()
	dev.RowsPerBlock = 2
	m := tinyCSR(t, [][]int32{{0}, {1}, {2}, {3}}, 8)
	e := tinyEngine(t, dev, 32)
	blocks := e.rowWiseBlocks(m, []int32{3, 1, 2, 0})
	if blocks[0][0] != 3 || blocks[0][1] != 1 {
		t.Fatalf("order not honoured: %v", blocks[0])
	}
}

func TestInterleavingRoundRobin(t *testing.T) {
	// Two co-resident blocks with interleaved accesses: a cache with one
	// line sees strictly alternating rows and never hits; processed
	// sequentially both blocks would hit on their second access.
	dev := P100()
	dev.NumSMs = 1
	dev.BlocksPerSM = 2
	e := tinyEngine(t, dev, 32)
	e.cache = NewCache(1, 1)
	blocks := [][]int32{{7, 7}, {9, 9}}
	e.runBlocksInterleaved(blocks)
	if e.st.L2Hits != 0 {
		t.Fatalf("interleaved accesses hit %d times in a 1-line cache", e.st.L2Hits)
	}
	if e.st.XAccesses != 4 || e.st.Blocks != 2 {
		t.Fatalf("accounting wrong: %+v", e.st)
	}
	// Same blocks with only one co-resident slot run back to back and
	// each second access hits.
	dev.BlocksPerSM = 1
	e2 := tinyEngine(t, dev, 32)
	e2.cache = NewCache(1, 1)
	e2.runBlocksInterleaved(blocks)
	if e2.st.L2Hits != 2 {
		t.Fatalf("sequential blocks hit %d times, want 2", e2.st.L2Hits)
	}
}

func TestWaveBoundary(t *testing.T) {
	// Three blocks with a 2-wide wave: the third block runs in a second
	// wave after the first two drain.
	dev := P100()
	dev.NumSMs = 1
	dev.BlocksPerSM = 2
	e := tinyEngine(t, dev, 32)
	e.cache = NewCache(4, 1)
	blocks := [][]int32{{1}, {2}, {1}}
	e.runBlocksInterleaved(blocks)
	// Row 1 stays resident across the waves -> the third block hits.
	if e.st.L2Hits != 1 {
		t.Fatalf("cross-wave residency: hits = %d, want 1", e.st.L2Hits)
	}
}

func TestResolveOrder(t *testing.T) {
	ord, err := resolveOrder(nil, 3)
	if err != nil || len(ord) != 3 || ord[2] != 2 {
		t.Fatalf("nil order: %v %v", ord, err)
	}
	if _, err := resolveOrder([]int32{0, 0, 1}, 3); err == nil {
		t.Fatalf("non-permutation accepted")
	}
	if _, err := resolveOrder([]int32{0, 1}, 3); err == nil {
		t.Fatalf("short order accepted")
	}
}

func TestNewEngineRejectsBadK(t *testing.T) {
	if _, err := newEngine(P100(), 0, "x"); err == nil {
		t.Fatalf("K=0 accepted")
	}
}

func TestRowsPerBlockFloor(t *testing.T) {
	dev := P100()
	dev.RowsPerBlock = 0 // degenerate config: treated as 1
	m := tinyCSR(t, [][]int32{{0}, {1}}, 4)
	e := tinyEngine(t, dev, 8)
	blocks := e.rowWiseBlocks(m, sparse.IdentityPermutation(2))
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(blocks))
	}
}
