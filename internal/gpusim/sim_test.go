package gpusim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/aspt"
	"repro/internal/reorder"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func testDevice() Config { return P100() }

func mustTile(t *testing.T, m *sparse.CSR) *aspt.Matrix {
	t.Helper()
	tl, err := aspt.Build(m, aspt.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestSimRejectsBadK(t *testing.T) {
	m, _ := synth.Uniform(64, 64, 4, 1)
	for _, k := range []int{0, -5} {
		if _, err := SpMMRowWise(testDevice(), m, k, nil); err == nil {
			t.Errorf("SpMMRowWise accepted K=%d", k)
		}
		if _, err := SDDMMRowWise(testDevice(), m, k, nil); err == nil {
			t.Errorf("SDDMMRowWise accepted K=%d", k)
		}
	}
}

func TestSimRejectsBadOrder(t *testing.T) {
	m, _ := synth.Uniform(64, 64, 4, 1)
	bad := make([]int32, 64) // all zeros: not a permutation
	if _, err := SpMMRowWise(testDevice(), m, 32, bad); err == nil {
		t.Errorf("accepted non-permutation order")
	}
	tl := mustTile(t, m)
	if _, err := SpMMASpT(testDevice(), tl, bad, 32); err == nil {
		t.Errorf("ASpT accepted non-permutation order")
	}
}

func TestSimTrafficConservation(t *testing.T) {
	m, _ := synth.Uniform(512, 512, 8, 2)
	st, err := SpMMRowWise(testDevice(), m, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.XAccesses != int64(m.NNZ()) {
		t.Fatalf("XAccesses = %d, want nnz = %d", st.XAccesses, m.NNZ())
	}
	if st.L2Hits+st.L2Misses != st.XAccesses {
		t.Fatalf("hits+misses = %d, accesses = %d", st.L2Hits+st.L2Misses, st.XAccesses)
	}
	if st.DRAMBytes <= 0 || st.L2Bytes < st.DRAMBytes {
		t.Fatalf("traffic inconsistent: dram=%v l2=%v", st.DRAMBytes, st.L2Bytes)
	}
	if st.Time <= 0 || st.Throughput <= 0 {
		t.Fatalf("no time computed")
	}
	if st.Flops != 2*float64(m.NNZ())*512 {
		t.Fatalf("flops = %v", st.Flops)
	}
}

func TestTrafficBreakdownSums(t *testing.T) {
	m, _ := synth.Uniform(512, 512, 8, 3)
	tl := mustTile(t, m)
	checks := []func() (*Stats, error){
		func() (*Stats, error) { return SpMMRowWise(testDevice(), m, 256, nil) },
		func() (*Stats, error) { return SpMMASpT(testDevice(), tl, nil, 256) },
		func() (*Stats, error) { return SDDMMRowWise(testDevice(), m, 256, nil) },
		func() (*Stats, error) { return SDDMMASpT(testDevice(), tl, nil, 256) },
	}
	for i, fn := range checks {
		st, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		sum := st.XBytes + st.StructBytes + st.YBytes + st.OutBytes
		if diff := st.DRAMBytes - sum; diff > 1 || diff < -1 {
			t.Fatalf("kernel %d (%s): DRAM %v != breakdown sum %v", i, st.Kernel, st.DRAMBytes, sum)
		}
		if st.StructBytes <= 0 || st.YBytes <= 0 {
			t.Fatalf("kernel %d (%s): missing breakdown components %+v", i, st.Kernel, st)
		}
	}
}

func TestSimDeterministic(t *testing.T) {
	m, _ := synth.RMAT(10, 8, 0.57, 0.19, 0.19, 3)
	a, err := SpMMRowWise(testDevice(), m, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpMMRowWise(testDevice(), m, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.DRAMBytes != b.DRAMBytes || a.L2Hits != b.L2Hits || a.Time != b.Time {
		t.Fatalf("simulation not deterministic")
	}
}

func TestASpTTileTrafficSaving(t *testing.T) {
	// Well-clustered matrix: runs of identical rows. ASpT should move
	// almost all X traffic into shared memory and beat row-wise.
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 4096, Cols: 4096, Clusters: 512, PrototypeNNZ: 16,
		Keep: 1.0, Noise: 0, Seed: 4, Scrambled: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	tl := mustTile(t, m)
	if tl.DenseRatio() < 0.9 {
		t.Fatalf("fixture not well tiled: ratio %.2f", tl.DenseRatio())
	}
	row, err := SpMMRowWise(testDevice(), m, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	tile, err := SpMMASpT(testDevice(), tl, nil, 512)
	if err != nil {
		t.Fatal(err)
	}
	if tile.SharedBytes <= 0 {
		t.Fatalf("no shared-memory traffic recorded")
	}
	if tile.DRAMBytes >= row.DRAMBytes {
		t.Fatalf("ASpT did not reduce DRAM traffic: %v >= %v", tile.DRAMBytes, row.DRAMBytes)
	}
	if tile.Time >= row.Time {
		t.Fatalf("ASpT not faster on clustered input: %v >= %v", tile.Time, row.Time)
	}
}

func TestRowReorderingImprovesScrambled(t *testing.T) {
	// The paper's headline effect, end to end on the simulator.
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 8192, Cols: 8192, Clusters: 1024, PrototypeNNZ: 20,
		Keep: 0.8, Noise: 2, Seed: 6, Scrambled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := reorder.DefaultConfig()
	nr, err := reorder.PreprocessNR(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := reorder.Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.NeedsReordering() {
		t.Fatalf("scrambled matrix not selected for reordering")
	}
	for _, k := range []int{512, 1024} {
		snr, err := SpMMASpT(testDevice(), nr.Tiled, nr.RestOrder, k)
		if err != nil {
			t.Fatal(err)
		}
		srr, err := SpMMASpT(testDevice(), rr.Tiled, rr.RestOrder, k)
		if err != nil {
			t.Fatal(err)
		}
		if srr.Time >= snr.Time {
			t.Fatalf("K=%d: reordering did not help: RR %v >= NR %v", k, srr.Time, snr.Time)
		}
		dnr, err := SDDMMASpT(testDevice(), nr.Tiled, nr.RestOrder, k)
		if err != nil {
			t.Fatal(err)
		}
		drr, err := SDDMMASpT(testDevice(), rr.Tiled, rr.RestOrder, k)
		if err != nil {
			t.Fatal(err)
		}
		if drr.Time >= dnr.Time {
			t.Fatalf("K=%d: SDDMM reordering did not help: RR %v >= NR %v", k, drr.Time, dnr.Time)
		}
	}
}

func TestDiagonalNoReuseNoGain(t *testing.T) {
	// Fig 7b: a diagonal matrix has no reuse; reordering the processing
	// order cannot reduce DRAM traffic below compulsory.
	m, err := synth.Diagonal(4096, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := SpMMRowWise(testDevice(), m, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.L2Hits != 0 {
		t.Fatalf("diagonal matrix produced %d L2 hits", st.L2Hits)
	}
	// Any permutation gives identical traffic.
	perm := sparse.IdentityPermutation(m.Rows)
	for i, j := 0, m.Rows-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	st2, err := SpMMRowWise(testDevice(), m, 512, perm)
	if err != nil {
		t.Fatal(err)
	}
	if st2.DRAMBytes != st.DRAMBytes {
		t.Fatalf("permutation changed compulsory traffic on diagonal matrix")
	}
}

func TestSDDMMTraffic(t *testing.T) {
	m, _ := synth.Uniform(512, 512, 8, 7)
	st, err := SDDMMRowWise(testDevice(), m, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.XAccesses != int64(m.NNZ()) {
		t.Fatalf("XAccesses = %d, want %d", st.XAccesses, m.NNZ())
	}
	if st.Flops != 2*float64(m.NNZ())*512 {
		t.Fatalf("flops = %v", st.Flops)
	}
	tl := mustTile(t, m)
	st2, err := SDDMMASpT(testDevice(), tl, nil, 512)
	if err != nil {
		t.Fatal(err)
	}
	if st2.XAccesses+int64(tl.NNZDense()) < int64(m.NNZ()) {
		t.Fatalf("ASpT SDDMM dropped accesses")
	}
}

func TestStatsBreakdown(t *testing.T) {
	m, _ := synth.Uniform(256, 256, 6, 9)
	st, err := SpMMRowWise(testDevice(), m, 128, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := st.Breakdown()
	for _, want := range []string{"DRAM", "sparse structure", "dense operand X", "shared memory"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Breakdown missing %q:\n%s", want, out)
		}
	}
	// Zero-traffic stats must not divide by zero.
	empty := &Stats{Kernel: "noop"}
	if empty.Breakdown() == "" {
		t.Fatalf("empty breakdown")
	}
}

func TestStatsSpeedupAndString(t *testing.T) {
	a := &Stats{Kernel: "a", Flops: 100}
	a.Time = 100
	b := &Stats{Kernel: "b"}
	b.Time = 200
	if sp := a.Speedup(b); sp != 2 {
		t.Fatalf("Speedup = %v, want 2", sp)
	}
	if a.String() == "" || a.HitRate() != 0 {
		t.Fatalf("Stats formatting broken")
	}
}

func TestConfigCapacities(t *testing.T) {
	dev := P100()
	if got := dev.l2RowCapacity(512); got != (4<<20)/(512*4) {
		t.Fatalf("l2RowCapacity(512) = %d", got)
	}
	if got := dev.l2RowCapacity(1 << 30); got != 1 {
		t.Fatalf("huge K capacity = %d, want 1", got)
	}
	if got := dev.sharedRowCapacity(512); got != (64<<10)/(128*4) {
		t.Fatalf("sharedRowCapacity(512) = %d", got)
	}
	if got := dev.sharedRowCapacity(16); got != (64<<10)/(16*4) {
		t.Fatalf("sharedRowCapacity(16) = %d", got)
	}
	if dev.concurrentBlocks() != 56*4 {
		t.Fatalf("concurrentBlocks = %d", dev.concurrentBlocks())
	}
}

// Property: ASpT tile+rest X accesses account for every nonzero exactly
// once: XAccesses (rest, through L2) + staged tile reads from shared
// (NNZDense rows of X read from shared) and tile staging accesses equal
// dense column count per panel.
func TestPropertyASpTAccessAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 32 + rng.Intn(200)
		m, err := synth.Uniform(rows, rows, 1+rng.Intn(8), seed)
		if err != nil {
			return false
		}
		tl, err := aspt.Build(m, aspt.Params{PanelSize: 8 + rng.Intn(32), DenseThreshold: 2})
		if err != nil {
			return false
		}
		k := 32 + rng.Intn(256)
		st, err := SpMMASpT(testDevice(), tl, nil, k)
		if err != nil {
			return false
		}
		staging := int64(0)
		for _, p := range tl.Panels {
			staging += int64(len(p.DenseCols))
		}
		if st.XAccesses != int64(tl.Rest.NNZ())+staging {
			return false
		}
		// Shared traffic is exactly NNZDense rows of K floats.
		return st.SharedBytes == float64(tl.NNZDense())*float64(k*4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: simulated time is monotone in K for row-wise SpMM (more
// columns = more traffic).
func TestPropertyTimeMonotoneInK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := synth.Uniform(128+rng.Intn(128), 256, 4, seed)
		if err != nil {
			return false
		}
		prev := int64(0)
		for _, k := range []int{64, 128, 256, 512} {
			st, err := SpMMRowWise(testDevice(), m, k, nil)
			if err != nil {
				return false
			}
			if int64(st.Time) < prev {
				return false
			}
			prev = int64(st.Time)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
