package gpusim

import (
	"repro/internal/sparse"
)

// SpMMColMajor simulates the row-wise SpMM kernel against a
// *column-major* dense operand — cuSPARSE's second layout mode (§6:
// "The library offers two different modes depending on the access
// patterns of dense matrices"). In column-major storage, element (c, k)
// lives at offset k·N + c: one nonzero's K reads land in K *different*
// cache lines, one per k-plane, and each 128-byte line covers 32
// *consecutive column indices* of the same plane. Locality therefore
// comes from nearby column indices in nearby nonzeros — the SpMV-style
// spatial locality that vertex orderings (RCM/METIS) optimise — rather
// than from repeated column indices, which is what row reordering
// exploits in the row-major mode.
//
// By symmetry every k-plane sees the identical line-access sequence, so
// one plane is simulated with 1/K of the L2 and the traffic scaled by K
// (the same aggregation argument as the row-granularity model,
// DESIGN.md §5).
func SpMMColMajor(dev Config, s *sparse.CSR, k int, order []int32) (*Stats, error) {
	e, err := newEngine(dev, k, "spmm-colmajor")
	if err != nil {
		return nil, err
	}
	ord, err := resolveOrder(order, s.Rows)
	if err != nil {
		return nil, err
	}
	const lineElems = 32 // 128-byte line / 4-byte float
	lineBytes := float64(lineElems * dev.ElemBytes)
	// One plane's share of the L2, in lines.
	perPlane := dev.L2Bytes / k / (lineElems * dev.ElemBytes)
	if perPlane < 1 {
		perPlane = 1
	}
	e.cache = NewCache(perPlane, dev.L2Ways)

	// Structure streaming and output (Y is written column-major too;
	// bytes are layout-independent).
	e.streamStruct(float64(s.Rows) * 2 * float64(dev.IndexBytes))
	e.streamStruct(float64(s.NNZ()) * float64(dev.IndexBytes+dev.ElemBytes))
	e.streamY(float64(s.Rows) * e.rowBytes())

	// Row-wise traversal; accesses are X-plane lines c/32, each
	// hit/miss standing for all K planes at once.
	rpb := dev.RowsPerBlock
	if rpb < 1 {
		rpb = 1
	}
	var blocks [][]int32
	for start := 0; start < len(ord); start += rpb {
		end := start + rpb
		if end > len(ord) {
			end = len(ord)
		}
		var acc []int32
		for _, row := range ord[start:end] {
			for _, c := range s.RowCols(int(row)) {
				acc = append(acc, c/lineElems)
			}
		}
		blocks = append(blocks, acc)
	}
	w := dev.concurrentBlocks()
	planeBytes := lineBytes * float64(k) // all K planes move together
	for start := 0; start < len(blocks); start += w {
		end := start + w
		if end > len(blocks) {
			end = len(blocks)
		}
		wave := blocks[start:end]
		idx := make([]int, len(wave))
		for live := len(wave); live > 0; {
			live = 0
			for b := range wave {
				if idx[b] < len(wave[b]) {
					line := wave[b][idx[b]]
					e.st.XAccesses++
					e.st.L2Bytes += planeBytes
					if e.cache.Access(int64(line)) {
						e.st.L2Hits++
					} else {
						e.st.L2Misses++
						e.st.DRAMBytes += planeBytes
						e.st.XBytes += planeBytes
					}
					idx[b]++
					if idx[b] < len(wave[b]) {
						live++
					}
				}
			}
		}
	}
	e.st.Blocks += int64(len(blocks))

	e.st.Flops = 2 * float64(s.NNZ()) * float64(k)
	e.st.finalize(dev)
	return e.st, nil
}
