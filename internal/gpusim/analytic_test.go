package gpusim

import (
	"testing"

	"repro/internal/aspt"
	"repro/internal/sparse"
)

// Analytic tests: tiny fixtures where every byte of simulated traffic can
// be computed by hand, pinning the traffic model exactly (DESIGN.md §5).

// analyticDevice: one SM, one resident block, one row per block, tiny L2
// (2 rows), so scheduling is strictly sequential and cache behaviour is
// enumerable.
func analyticDevice(k int) Config {
	dev := P100()
	dev.NumSMs = 1
	dev.BlocksPerSM = 1
	dev.RowsPerBlock = 1
	dev.L2Bytes = 2 * k * 4 // exactly two dense rows
	dev.L2Ways = 2
	return dev
}

func TestAnalyticSpMMRowWise(t *testing.T) {
	const k = 16
	// Rows: [a], [b], [a] with a=0, b=1. Sequential processing with a
	// 2-row LRU: a miss, b miss, a HIT.
	m, err := sparse.FromRows(3, 2, [][]int32{{0}, {1}, {0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev := analyticDevice(k)
	st, err := SpMMRowWise(dev, m, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.L2Hits != 1 || st.L2Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", st.L2Hits, st.L2Misses)
	}
	rowBytes := float64(k * 4)
	wantX := 2 * rowBytes                       // two misses
	wantStruct := float64(3*2*4) + float64(3*8) // rowptr + (col+val) per nnz
	wantY := 3 * rowBytes                       // every output row written
	if st.XBytes != wantX {
		t.Fatalf("XBytes = %v, want %v", st.XBytes, wantX)
	}
	if st.StructBytes != wantStruct {
		t.Fatalf("StructBytes = %v, want %v", st.StructBytes, wantStruct)
	}
	if st.YBytes != wantY {
		t.Fatalf("YBytes = %v, want %v", st.YBytes, wantY)
	}
	if st.DRAMBytes != wantX+wantStruct+wantY {
		t.Fatalf("DRAMBytes = %v, want %v", st.DRAMBytes, wantX+wantStruct+wantY)
	}
	// L2 sees all X accesses plus the streams.
	if st.L2Bytes != 3*rowBytes+wantStruct+wantY {
		t.Fatalf("L2Bytes = %v", st.L2Bytes)
	}
	if st.Flops != 2*3*float64(k) {
		t.Fatalf("Flops = %v", st.Flops)
	}
}

func TestAnalyticEvictionOrder(t *testing.T) {
	const k = 16
	// Access pattern a,b,c,a with a 2-row cache: a misses again at the
	// end (evicted by c).
	m, err := sparse.FromRows(4, 3, [][]int32{{0}, {1}, {2}, {0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := SpMMRowWise(analyticDevice(k), m, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.L2Hits != 0 || st.L2Misses != 4 {
		t.Fatalf("hits/misses = %d/%d, want 0/4", st.L2Hits, st.L2Misses)
	}
}

func TestAnalyticOrderChangesTraffic(t *testing.T) {
	const k = 16
	// Rows touch a,b,c,a. Processing order [0,3,1,2] makes the two a-rows
	// adjacent: a miss, a HIT, b miss, c miss.
	m, err := sparse.FromRows(4, 3, [][]int32{{0}, {1}, {2}, {0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := SpMMRowWise(analyticDevice(k), m, k, []int32{0, 3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.L2Hits != 1 || st.L2Misses != 3 {
		t.Fatalf("hits/misses = %d/%d, want 1/3", st.L2Hits, st.L2Misses)
	}
}

func TestAnalyticASpTSharedTraffic(t *testing.T) {
	const k = 16
	// Four identical rows {0,1} in one panel (panel size 4, threshold 2):
	// both columns dense, no rest. Tile staging: 2 X-row fetches; shared
	// reads: 8 nnz × rowBytes.
	sets := [][]int32{{0, 1}, {0, 1}, {0, 1}, {0, 1}}
	m, err := sparse.FromRows(4, 2, sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := aspt.Build(m, aspt.Params{PanelSize: 4, DenseThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Rest.NNZ() != 0 || tl.NNZDense() != 8 {
		t.Fatalf("fixture tiling wrong: dense=%d rest=%d", tl.NNZDense(), tl.Rest.NNZ())
	}
	dev := analyticDevice(k)
	st, err := SpMMASpT(dev, tl, nil, k)
	if err != nil {
		t.Fatal(err)
	}
	rowBytes := float64(k * 4)
	if st.XAccesses != 2 || st.L2Misses != 2 || st.L2Hits != 0 {
		t.Fatalf("staging accesses = %d (h=%d m=%d), want 2 misses",
			st.XAccesses, st.L2Hits, st.L2Misses)
	}
	if st.SharedBytes != 8*rowBytes {
		t.Fatalf("SharedBytes = %v, want %v", st.SharedBytes, 8*rowBytes)
	}
	// Y: tile phase writes 4 rows; no rest rows; no zero-fill needed.
	if st.YBytes != 4*rowBytes {
		t.Fatalf("YBytes = %v, want %v", st.YBytes, 4*rowBytes)
	}
	// Structure: two tile-pointer arrays (rowptr-like, 3 streams of
	// rows*2*4: tile ptr + rest ptr... exactly: tile rowptr 4*8, tile
	// nnz 8*8, rest rowptr 4*8, rest nnz 0.
	wantStruct := float64(4*8 + 8*8 + 4*8)
	if st.StructBytes != wantStruct {
		t.Fatalf("StructBytes = %v, want %v", st.StructBytes, wantStruct)
	}
}

func TestAnalyticSDDMMRowWise(t *testing.T) {
	const k = 16
	// Two rows: {0,1} and {} — Y streamed only for the non-empty row,
	// output values once per nonzero.
	m, err := sparse.FromRows(2, 2, [][]int32{{0, 1}, {}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := SDDMMRowWise(analyticDevice(k), m, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowBytes := float64(k * 4)
	if st.YBytes != 1*rowBytes {
		t.Fatalf("YBytes = %v, want one row", st.YBytes)
	}
	if st.OutBytes != 2*4 {
		t.Fatalf("OutBytes = %v, want 8", st.OutBytes)
	}
	if st.XAccesses != 2 {
		t.Fatalf("XAccesses = %d, want 2", st.XAccesses)
	}
}
