package gpusim

import (
	"fmt"

	"repro/internal/sparse"
)

// engine accumulates traffic for one simulated kernel invocation.
type engine struct {
	dev   Config
	cache *Cache
	st    *Stats
	k     int
}

func newEngine(dev Config, k int, kernel string) (*engine, error) {
	if k <= 0 {
		return nil, fmt.Errorf("gpusim: K must be positive, got %d", k)
	}
	return &engine{
		dev:   dev,
		cache: NewCache(dev.l2RowCapacity(k), dev.L2Ways),
		st:    &Stats{Kernel: kernel},
		k:     k,
	}, nil
}

// rowBytes is the footprint of one dense row: K elements.
func (e *engine) rowBytes() float64 { return float64(e.k * e.dev.ElemBytes) }

// accessX models one dense-operand row read through the L2: all traffic
// passes the L2; misses additionally pay DRAM.
func (e *engine) accessX(row int32) {
	e.st.XAccesses++
	b := e.rowBytes()
	e.st.L2Bytes += b
	if e.cache.Access(int64(row)) {
		e.st.L2Hits++
	} else {
		e.st.L2Misses++
		e.st.DRAMBytes += b
		e.st.XBytes += b
	}
}

// stream models straight-line streaming traffic (CSR arrays, dense output
// rows): compulsory, served by DRAM through the L2 with no reuse. It does
// not occupy row slots in the simulated cache — the GPU's streaming loads
// evict quickly and the row cache models only the reusable X working set.
func (e *engine) stream(bytes float64) {
	e.st.DRAMBytes += bytes
	e.st.L2Bytes += bytes
}

// streamStruct / streamY / streamOut are stream with per-source
// accounting (Stats breakdown).
func (e *engine) streamStruct(bytes float64) { e.stream(bytes); e.st.StructBytes += bytes }
func (e *engine) streamY(bytes float64)      { e.stream(bytes); e.st.YBytes += bytes }
func (e *engine) streamOut(bytes float64)    { e.stream(bytes); e.st.OutBytes += bytes }

// shared models a read served from shared memory.
func (e *engine) shared(bytes float64) { e.st.SharedBytes += bytes }

// runBlocksInterleaved plays the blocks' X-row access lists through the
// L2, interleaving co-resident blocks: blocks issue in waves of
// concurrentBlocks(), and within a wave each live block issues one access
// per round — the round-robin scheduling approximation of DESIGN.md §5.
func (e *engine) runBlocksInterleaved(blocks [][]int32) {
	w := e.dev.concurrentBlocks()
	for start := 0; start < len(blocks); start += w {
		end := start + w
		if end > len(blocks) {
			end = len(blocks)
		}
		wave := blocks[start:end]
		idx := make([]int, len(wave))
		for live := len(wave); live > 0; {
			live = 0
			for b := range wave {
				if idx[b] < len(wave[b]) {
					e.accessX(wave[b][idx[b]])
					idx[b]++
					if idx[b] < len(wave[b]) {
						live++
					}
				}
			}
		}
	}
	e.st.Blocks += int64(len(blocks))
}

// rowWiseBlocks groups the rows of s — visited in the given processing
// order — into thread blocks of RowsPerBlock rows each and returns each
// block's X-row access list (one access per nonzero, rows traversed
// left-to-right as in Alg 1/2). Rows with no nonzeros still occupy a warp
// slot but issue no accesses.
func (e *engine) rowWiseBlocks(s *sparse.CSR, order []int32) [][]int32 {
	rpb := e.dev.RowsPerBlock
	if rpb < 1 {
		rpb = 1
	}
	nblocks := (len(order) + rpb - 1) / rpb
	blocks := make([][]int32, 0, nblocks)
	for start := 0; start < len(order); start += rpb {
		end := start + rpb
		if end > len(order) {
			end = len(order)
		}
		var acc []int32
		for _, row := range order[start:end] {
			acc = append(acc, s.RowCols(int(row))...)
		}
		blocks = append(blocks, acc)
	}
	return blocks
}

// resolveOrder validates a processing order or substitutes the identity.
func resolveOrder(order []int32, rows int) ([]int32, error) {
	if order == nil {
		return sparse.IdentityPermutation(rows), nil
	}
	if !sparse.IsPermutation(order, rows) {
		return nil, fmt.Errorf("gpusim: processing order is not a permutation of %d rows", rows)
	}
	return order, nil
}
