package integrity

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
)

func randCSR(rng *rand.Rand, rows, cols, perRow int) *sparse.CSR {
	m := &sparse.CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for i := 0; i < rows; i++ {
		n := rng.Intn(perRow + 1)
		seen := map[int32]bool{}
		var cs []int32
		for len(cs) < n {
			c := int32(rng.Intn(cols))
			if !seen[c] {
				seen[c] = true
				cs = append(cs, c)
			}
		}
		// sorted strictly increasing
		for i := range cs {
			for j := i + 1; j < len(cs); j++ {
				if cs[j] < cs[i] {
					cs[i], cs[j] = cs[j], cs[i]
				}
			}
		}
		for _, c := range cs {
			m.ColIdx = append(m.ColIdx, c)
			m.Val = append(m.Val, rng.Float32()*2-1)
		}
		m.RowPtr[i+1] = int32(len(m.ColIdx))
	}
	return m
}

func randDense(rng *rand.Rand, rows, cols int) *dense.Matrix {
	d := dense.New(rows, cols)
	for i := range d.Data {
		d.Data[i] = rng.Float32()*2 - 1
	}
	return d
}

func spmmRef(s *sparse.CSR, x *dense.Matrix) *dense.Matrix {
	y := dense.New(s.Rows, x.Cols)
	for r := 0; r < s.Rows; r++ {
		yr := y.Row(r)
		cols, vals := s.RowCols(r), s.RowVals(r)
		for j := range cols {
			xr := x.Row(int(cols[j]))
			for c := range yr {
				yr[c] += vals[j] * xr[c]
			}
		}
	}
	return y
}

func TestMonitorLifecycle(t *testing.T) {
	m := NewMonitor(1.0, 3)
	if st := m.State(); st != Healthy {
		t.Fatalf("initial state %v", st)
	}
	d := m.Route(7)
	if d.Fallback || !d.Verify {
		t.Fatalf("healthy always-verify route = %+v", d)
	}

	// First mismatch opens quarantine and asks the caller to evict.
	if !m.OnMismatch(7) {
		t.Fatal("first OnMismatch should transition")
	}
	if m.State() != Quarantined {
		t.Fatalf("state after mismatch %v", m.State())
	}
	// A racing second mismatch on the same generation must not.
	if m.OnMismatch(7) {
		t.Fatal("second OnMismatch should be a no-op")
	}
	// Same generation still serving: fallback.
	if d := m.Route(7); !d.Fallback {
		t.Fatalf("quarantined route = %+v", d)
	}
	// Rebuild published gen 8: probation, verify everything.
	if d := m.Route(8); d.Fallback || !d.Verify {
		t.Fatalf("probation route = %+v", d)
	}
	if m.State() != Probation {
		t.Fatalf("state %v, want probation", m.State())
	}

	// Probation relapse: back to quarantine, not a new detection.
	if !m.OnMismatch(8) {
		t.Fatal("probation mismatch should transition")
	}
	st := m.Stats()
	if st.Detected != 1 || st.Quarantines != 1 || st.ProbationFailures != 1 {
		t.Fatalf("ledger after relapse: %+v", st)
	}
	// Second rebuild lands as gen 9; three clean checks reinstate.
	if d := m.Route(9); !d.Verify || d.Fallback {
		t.Fatalf("re-probation route = %+v", d)
	}
	m.OnVerified()
	m.OnVerified()
	if m.State() != Probation {
		t.Fatalf("state %v before window closes", m.State())
	}
	m.OnVerified()
	if m.State() != Healthy {
		t.Fatalf("state %v after clean window", m.State())
	}

	st = m.Stats()
	if st.Detected != st.Quarantines {
		t.Fatalf("Detected %d != Quarantines %d", st.Detected, st.Quarantines)
	}
	if st.Reinstated+st.StillQuarantined != st.Quarantines {
		t.Fatalf("Reinstated %d + StillQuarantined %d != Quarantines %d",
			st.Reinstated, st.StillQuarantined, st.Quarantines)
	}
	if st.ChecksClean != 3 || st.ChecksMismatch != 3 {
		t.Fatalf("check counts %+v", st)
	}
}

func TestMonitorSkipsDoNotAdvanceProbation(t *testing.T) {
	m := NewMonitor(1.0, 2)
	m.OnMismatch(1)
	m.Route(2) // enter probation
	m.OnSkipped()
	m.OnSkipped()
	if m.State() != Probation {
		t.Fatalf("skips advanced probation: %v", m.State())
	}
	m.OnVerified()
	m.OnVerified()
	if m.State() != Healthy {
		t.Fatalf("state %v", m.State())
	}
	if st := m.Stats(); st.ChecksSkipped != 2 {
		t.Fatalf("skipped = %d", st.ChecksSkipped)
	}
}

func TestMonitorSampleFraction(t *testing.T) {
	for _, tc := range []struct {
		fraction float64
		lo, hi   int // acceptance band out of 100000
	}{
		{0, 0, 0},
		{0.01, 700, 1300},
		{0.5, 48500, 51500},
		{1.0, 100000, 100000},
	} {
		m := NewMonitor(tc.fraction, 1)
		hits := 0
		for i := 0; i < 100000; i++ {
			if m.Route(0).Verify {
				hits++
			}
		}
		if hits < tc.lo || hits > tc.hi {
			t.Errorf("fraction %g: %d/100000 sampled, want [%d,%d]", tc.fraction, hits, tc.lo, tc.hi)
		}
	}
}

func TestMonitorHealthyRouteZeroAlloc(t *testing.T) {
	m := NewMonitor(0.01, 8)
	if n := testing.AllocsPerRun(1000, func() { m.Route(3) }); n != 0 {
		t.Fatalf("healthy Route allocates %v per call", n)
	}
}

func TestCheckSpMMRows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randCSR(rng, 200, 150, 12)
	x := randDense(rng, 150, 16)
	y := spmmRef(s, x)

	if err := CheckSpMMRows(s, x, y, 32, 99, DefaultRelTol, DefaultAbsTol); err != nil {
		t.Fatalf("clean result flagged: %v", err)
	}
	if err := CheckSpMMRows(s, x, y, -1, 0, DefaultRelTol, DefaultAbsTol); err != nil {
		t.Fatalf("clean full check flagged: %v", err)
	}

	// Reassociation-scale noise must pass: perturb every entry by a
	// relative 1e-6 (well inside the 1e-4 tolerance).
	noisy := dense.New(y.Rows, y.Cols)
	copy(noisy.Data, y.Data)
	for i := range noisy.Data {
		noisy.Data[i] *= 1 + 1e-6
	}
	if err := CheckSpMMRows(s, x, noisy, -1, 0, DefaultRelTol, DefaultAbsTol); err != nil {
		t.Fatalf("reassociation-scale noise flagged: %v", err)
	}

	// A flipped value must be caught by the full check.
	bad := dense.New(y.Rows, y.Cols)
	copy(bad.Data, y.Data)
	bad.Data[len(bad.Data)/2] = bad.Data[len(bad.Data)/2]*2 + 1
	err := CheckSpMMRows(s, x, bad, -1, 0, DefaultRelTol, DefaultAbsTol)
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("flipped value not caught: %v", err)
	}

	// Shape mismatch reports rather than panics.
	if err := CheckSpMMRows(s, x, dense.New(3, 3), -1, 0, DefaultRelTol, DefaultAbsTol); !errors.Is(err, ErrMismatch) {
		t.Fatalf("shape mismatch: %v", err)
	}
}

func TestCheckSpMMRowsZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randCSR(rng, 128, 96, 8)
	x := randDense(rng, 96, 8)
	y := spmmRef(s, x)
	// Warm the scratch pool.
	if err := CheckSpMMRows(s, x, y, 8, 1, DefaultRelTol, DefaultAbsTol); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		if err := CheckSpMMRows(s, x, y, 8, 1, DefaultRelTol, DefaultAbsTol); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("steady-state check allocates %v per call", n)
	}
}

func TestCheckSDDMMRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randCSR(rng, 120, 90, 10)
	x := randDense(rng, 90, 12)  // one row per column of s
	y := randDense(rng, 120, 12) // one row per row of s
	out := make([]float32, s.NNZ())
	for r := 0; r < s.Rows; r++ {
		cols, svals := s.RowCols(r), s.RowVals(r)
		yr := y.Row(r)
		base := int(s.RowPtr[r])
		for j := range cols {
			xr := x.Row(int(cols[j]))
			dot := float32(0)
			for c := range yr {
				dot += yr[c] * xr[c]
			}
			out[base+j] = dot * svals[j]
		}
	}
	if err := CheckSDDMMRows(s, x, y, out, -1, 0, DefaultRelTol, DefaultAbsTol); err != nil {
		t.Fatalf("clean SDDMM flagged: %v", err)
	}
	if s.NNZ() == 0 {
		t.Fatal("test matrix has no nonzeros")
	}
	out[s.NNZ()/2] = out[s.NNZ()/2]*2 + 1
	if err := CheckSDDMMRows(s, x, y, out, -1, 0, DefaultRelTol, DefaultAbsTol); !errors.Is(err, ErrMismatch) {
		t.Fatalf("flipped SDDMM value not caught: %v", err)
	}
}

func TestCheckPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randCSR(rng, 50, 40, 6)
	perm := make([]int32, 50)
	inv := make([]int32, 50)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	for i, p := range perm {
		inv[p] = int32(i)
	}

	if err := CheckPlan(perm, inv, m); err != nil {
		t.Fatalf("valid plan flagged: %v", err)
	}
	if err := CheckPlan(nil, nil, m); err != nil {
		t.Fatalf("identity plan flagged: %v", err)
	}

	// Duplicate entry breaks bijectivity.
	badPerm := append([]int32(nil), perm...)
	badPerm[1] = badPerm[0]
	if err := CheckPlan(badPerm, inv, m); !errors.Is(err, ErrPlanInvariant) {
		t.Fatalf("duplicate perm entry: %v", err)
	}
	// Inverse that does not invert.
	badInv := append([]int32(nil), inv...)
	badInv[int(perm[0])], badInv[int(perm[1])] = badInv[int(perm[1])], badInv[int(perm[0])]
	if err := CheckPlan(perm, badInv, m); !errors.Is(err, ErrPlanInvariant) {
		t.Fatalf("broken inverse: %v", err)
	}
	// Non-monotone RowPtr.
	badM := &sparse.CSR{Rows: m.Rows, Cols: m.Cols,
		RowPtr: append([]int32(nil), m.RowPtr...), ColIdx: m.ColIdx, Val: m.Val}
	if badM.RowPtr[2] > 0 {
		badM.RowPtr[2], badM.RowPtr[1] = badM.RowPtr[1], badM.RowPtr[2]+1
	}
	badM.RowPtr[1] = badM.RowPtr[2] + 1
	if err := CheckPlan(perm, inv, badM); !errors.Is(err, ErrPlanInvariant) {
		t.Fatalf("non-monotone RowPtr: %v", err)
	}
	// Column index out of range.
	badC := &sparse.CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr,
		ColIdx: append([]int32(nil), m.ColIdx...), Val: m.Val}
	if len(badC.ColIdx) > 0 {
		badC.ColIdx[0] = int32(m.Cols)
		if err := CheckPlan(perm, inv, badC); !errors.Is(err, ErrPlanInvariant) {
			t.Fatalf("out-of-range ColIdx: %v", err)
		}
	}
}

func TestCheckGather(t *testing.T) {
	if err := CheckGather([]int32{0, 4, 2}, 5); err != nil {
		t.Fatalf("valid gather flagged: %v", err)
	}
	if err := CheckGather([]int32{0, 5}, 5); !errors.Is(err, ErrPlanInvariant) {
		t.Fatalf("out-of-range gather: %v", err)
	}
	if err := CheckGather([]int32{-1}, 5); !errors.Is(err, ErrPlanInvariant) {
		t.Fatalf("negative gather: %v", err)
	}
}

func TestToleranceScalesWithMagnitude(t *testing.T) {
	// One huge row: |Σ v·x| magnitude dwarfs the result (catastrophic
	// cancellation). The tolerance must scale with the magnitude sum,
	// not the result, or legal kernels would be flagged.
	s := &sparse.CSR{Rows: 1, Cols: 2, RowPtr: []int32{0, 2},
		ColIdx: []int32{0, 1}, Val: []float32{1e6, -1e6}}
	x := dense.New(2, 1)
	x.Data[0], x.Data[1] = 1, 1.0000001
	y := dense.New(1, 1)
	y.Data[0] = float32(1e6*1 - 1e6*1.0000001)
	// A different summation order can shift the result by ~mag·eps ≈
	// 2e6·6e-8 ≈ 0.12; the naive |Δ| ≤ relTol·|result| bound would
	// reject that. Perturb within the magnitude-scaled bound:
	y.Data[0] += 0.05
	if err := CheckSpMMRows(s, x, y, -1, 0, DefaultRelTol, DefaultAbsTol); err != nil {
		t.Fatalf("magnitude-scale deviation flagged: %v", err)
	}
	// But a deviation far beyond the magnitude scale is corruption.
	y.Data[0] += 1e4
	if err := CheckSpMMRows(s, x, y, -1, 0, DefaultRelTol, DefaultAbsTol); !errors.Is(err, ErrMismatch) {
		t.Fatalf("gross deviation not caught: %v", err)
	}
	_ = math.Abs // keep math imported if bounds above change
}
