// Package integrity implements the silent-corruption defense for the
// serving stack: sampled shadow verification of served SpMM/SDDMM
// results against the original, unpermuted matrix; a per-tenant
// quarantine state machine (healthy → quarantined → probation →
// healthy) that routes traffic to the reference path while a suspect
// plan is rebuilt; and cheap structural invariant checks run before a
// rebuilt plan is swapped in or a cached plan is re-skinned.
//
// Every existing check in the stack — CRC'd plan snapshots, chaos-soak
// ledgers, the breaker — verifies control flow, not results. A single
// off-by-one in a permutation, gather map, or overlay produces
// plausible but wrong numbers that all of them pass. This package
// closes that gap: verification recomputes a random subset of output
// rows with the reference row-wise kernel semantics in float64 and
// compares under a tolerance that accounts for float reassociation
// across kernels.
package integrity

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/dense"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// ErrMismatch reports that shadow verification found a served result
// outside tolerance of the reference recomputation. The server treats
// it as transient: the retry path re-serves the request through the
// quarantine fallback, so the caller still receives a correct result.
var ErrMismatch = errors.New("integrity: result mismatch")

// ErrPlanInvariant reports that a plan failed a pre-swap structural
// invariant check (permutation bijectivity, gather-map range, RowPtr
// monotonicity) and must not serve.
var ErrPlanInvariant = errors.New("integrity: plan invariant violated")

// corruptionsInjected counts data corruptions injected by the armed
// "integrity.corrupt.*" fault sites, process-wide: the sites live in
// packages below the Server (pipeline execution, plan-cache re-skin),
// which have no tenant registry in scope.
var corruptionsInjected = obs.Default().Counter(
	"spmmrr_integrity_corruptions_injected_total",
	"Data corruptions injected by armed integrity.corrupt.* fault sites.")

// CorruptionInjected records one injected corruption. Called by the
// integrity.corrupt.* fault sites when their hook matches
// faultinject.ErrCorrupt.
func CorruptionInjected() { corruptionsInjected.Inc() }

// InjectedCount returns the number of corruptions injected so far,
// for soak-test ledger reconciliation.
func InjectedCount() int64 { return corruptionsInjected.Value() }

// State is a quarantine-controller state.
type State int32

const (
	// Healthy: the plan is trusted; requests are shadow-verified at the
	// configured sample fraction.
	Healthy State = iota
	// Quarantined: a mismatch was confirmed against this plan
	// generation; all traffic routes to the reference fallback until a
	// rebuild publishes a new generation.
	Quarantined
	// Probation: a new generation is serving after quarantine; every
	// request is verified until the probation window passes clean.
	Probation
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Quarantined:
		return "quarantined"
	case Probation:
		return "probation"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Decision is the routing verdict for one request.
type Decision struct {
	// Fallback routes the request to the reference (row-wise,
	// unpermuted) path instead of the reordered plan.
	Fallback bool
	// Verify shadow-verifies the request's result after serving.
	Verify bool
}

// Monitor is the per-tenant quarantine controller. The healthy
// unsampled fast path is two atomic operations and zero allocations;
// state transitions take a mutex.
type Monitor struct {
	threshold uint64 // sample when mixed counter < threshold
	always    bool   // fraction >= 1: verify every request
	probation int    // clean verified requests required to reinstate

	state atomic.Int32  // State
	rng   atomic.Uint64 // splitmix64 counter for sampling

	mu            sync.Mutex
	quarGen       uint64 // plan generation the quarantine was declared on
	probationLeft int
	onReinstate   func() // fired under mu when probation completes

	checksClean       atomic.Int64
	checksMismatch    atomic.Int64
	checksSkipped     atomic.Int64
	detected          atomic.Int64
	quarantines       atomic.Int64
	reinstated        atomic.Int64
	probationFailures atomic.Int64
}

// NewMonitor returns a Monitor sampling the given fraction of requests
// for verification while healthy, and requiring probation clean
// verified requests before reinstating after quarantine. fraction <= 0
// disables sampling (quarantine still engages if OnMismatch is called,
// e.g. from an explicitly verified request); fraction >= 1 verifies
// everything. probation < 1 is treated as 1.
func NewMonitor(fraction float64, probation int) *Monitor {
	m := &Monitor{probation: probation}
	if m.probation < 1 {
		m.probation = 1
	}
	switch {
	case fraction >= 1:
		m.always = true
	case fraction > 0:
		// fraction of the uint64 space; below 2^-64 rounds to never.
		m.threshold = uint64(fraction * math.Pow(2, 64))
	}
	return m
}

// sample returns true for ~fraction of calls, using a splitmix64
// sequence over an atomic counter: deterministic-ish, lock-free, and
// allocation-free.
func (m *Monitor) sample() bool {
	if m.always {
		return true
	}
	if m.threshold == 0 {
		return false
	}
	return splitmix64(m.rng.Add(0x9E3779B97F4A7C15)) < m.threshold
}

func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Seed draws a fresh row-sampling seed from the monitor's splitmix64
// stream, so consecutive checks on the same tenant cover different row
// subsets. Consuming the sampling stream is harmless: each draw is an
// independent uniform value, so skipping one cannot bias Route's
// accept rate.
func (m *Monitor) Seed() uint64 {
	return splitmix64(m.rng.Add(0x9E3779B97F4A7C15))
}

// Route decides how to serve one request. gen is the tenant's current
// plan generation (LivePipeline.baseGen); while quarantined, a gen
// different from the one the quarantine was declared on means a
// rebuild has published, so the monitor moves to probation and starts
// verifying every request.
func (m *Monitor) Route(gen uint64) Decision {
	switch State(m.state.Load()) {
	case Healthy:
		return Decision{Verify: m.sample()}
	case Quarantined:
		m.mu.Lock()
		if State(m.state.Load()) == Quarantined && gen != m.quarGen {
			m.probationLeft = m.probation
			m.state.Store(int32(Probation))
			m.mu.Unlock()
			return Decision{Verify: true}
		}
		m.mu.Unlock()
		return Decision{Fallback: true}
	default: // Probation
		return Decision{Verify: true}
	}
}

// OnMismatch records a confirmed verification mismatch observed
// against plan generation gen. It returns true when this call
// transitioned the monitor into quarantine (healthy → quarantined, or
// probation → quarantined on a failed probation) — the caller must
// then evict the suspect plans and kick a rebuild. It returns false
// when the monitor was already quarantined (a concurrent request lost
// the race; the eviction already happened).
func (m *Monitor) OnMismatch(gen uint64) bool {
	m.checksMismatch.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	switch State(m.state.Load()) {
	case Healthy:
		m.detected.Add(1)
		m.quarantines.Add(1)
		m.quarGen = gen
		m.state.Store(int32(Quarantined))
		return true
	case Probation:
		m.probationFailures.Add(1)
		m.quarGen = gen
		m.state.Store(int32(Quarantined))
		return true
	default:
		return false
	}
}

// OnVerified records one clean verification. In probation it advances
// the window; when the window completes the monitor reinstates the
// tenant to healthy.
func (m *Monitor) OnVerified() {
	m.checksClean.Add(1)
	if State(m.state.Load()) != Probation {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if State(m.state.Load()) != Probation {
		return
	}
	m.probationLeft--
	if m.probationLeft <= 0 {
		m.state.Store(int32(Healthy))
		m.reinstated.Add(1)
		if m.onReinstate != nil {
			m.onReinstate()
		}
	}
}

// OnReinstate registers a hook fired exactly once per reinstatement
// (probation window completing), under the monitor's lock — it must
// not call back into the monitor. The serving stack uses it to emit
// reinstate decision events whose count reconciles with Stats().
func (m *Monitor) OnReinstate(fn func()) {
	m.mu.Lock()
	m.onReinstate = fn
	m.mu.Unlock()
}

// OnSkipped records a verification that could not run because the
// serving state changed mid-request (a concurrent mutation or swap
// landed between snapshot and check). Skips never advance probation.
func (m *Monitor) OnSkipped() { m.checksSkipped.Add(1) }

// State returns the monitor's current state.
func (m *Monitor) State() State { return State(m.state.Load()) }

// Stats is a snapshot of the monitor's ledgers. Invariants after
// quiescence: Detected == Quarantines, and
// Reinstated + StillQuarantined == Quarantines.
type Stats struct {
	State             State
	ChecksClean       int64 // verifications that passed
	ChecksMismatch    int64 // verifications that failed (incl. probation failures)
	ChecksSkipped     int64 // verifications skipped (state moved mid-request)
	Detected          int64 // healthy→quarantined transitions (first detections)
	Quarantines       int64 // quarantine episodes opened
	Reinstated        int64 // probation windows completed clean
	ProbationFailures int64 // probation→quarantined relapses
	StillQuarantined  int64 // 1 while an episode is open (quarantined or probation)
}

// Stats returns a snapshot of the monitor's ledgers.
func (m *Monitor) Stats() Stats {
	st := Stats{
		State:             m.State(),
		ChecksClean:       m.checksClean.Load(),
		ChecksMismatch:    m.checksMismatch.Load(),
		ChecksSkipped:     m.checksSkipped.Load(),
		Detected:          m.detected.Load(),
		Quarantines:       m.quarantines.Load(),
		Reinstated:        m.reinstated.Load(),
		ProbationFailures: m.probationFailures.Load(),
	}
	if st.State != Healthy {
		st.StillQuarantined = 1
	}
	return st
}

// Verification tolerances. The executor kernels (merge-based, ELL/HYB,
// ASpT tiles, sharded scatter-gather) accumulate partial products in a
// different order than the reference row-wise kernel, and float32
// addition is not associative — so exact comparison is wrong by
// design. The check recomputes in float64 and bounds the allowed
// deviation by absTol + relTol·Σ|vᵢ·xᵢ|: the magnitude sum is the
// natural scale of reassociation error (each reordering step perturbs
// by at most one ulp of the running magnitude). relTol 1e-4 gives
// ~14 bits of slack over float32's 24-bit mantissa — orders of
// magnitude looser than any legal kernel's error, orders tighter than
// a flipped value or misrouted index.
const (
	DefaultRelTol = 1e-4
	DefaultAbsTol = 1e-6
)

// scratch pools the float64 accumulator/magnitude buffers used by the
// row checks, keeping the verify path allocation-free at steady state.
var scratch = sync.Pool{New: func() any { return new([]float64) }}

func getScratch(n int) (*[]float64, []float64) {
	p := scratch.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	s := (*p)[:n]
	for i := range s {
		s[i] = 0
	}
	return p, s
}

// CheckSpMMRows shadow-verifies y ≈ s·x on a sampled subset of rows:
// rows output rows are chosen by a splitmix64 sequence seeded with
// seed and recomputed in float64 directly from s (the original,
// unpermuted matrix). rows <= 0 or rows >= s.Rows checks every row.
// Returns nil when all checked rows are within tolerance, or an error
// wrapping ErrMismatch identifying the first failing entry.
func CheckSpMMRows(s *sparse.CSR, x, y *dense.Matrix, rows int, seed uint64, relTol, absTol float64) error {
	if y.Rows != s.Rows || x.Rows != s.Cols || y.Cols != x.Cols {
		return fmt.Errorf("%w: result shape %dx%d does not match %dx%d · %dx%d",
			ErrMismatch, y.Rows, y.Cols, s.Rows, s.Cols, x.Rows, x.Cols)
	}
	if s.Rows == 0 || y.Cols == 0 {
		return nil
	}
	k := y.Cols
	p, buf := getScratch(2 * k)
	defer scratch.Put(p)
	acc, mag := buf[:k], buf[k:]
	check := func(r int) error {
		for i := range acc {
			acc[i], mag[i] = 0, 0
		}
		cols, vals := s.RowCols(r), s.RowVals(r)
		for j := range cols {
			v := float64(vals[j])
			xr := x.Row(int(cols[j]))
			for c := 0; c < k; c++ {
				pr := v * float64(xr[c])
				acc[c] += pr
				mag[c] += math.Abs(pr)
			}
		}
		yr := y.Row(r)
		for c := 0; c < k; c++ {
			if d := math.Abs(float64(yr[c]) - acc[c]); d > absTol+relTol*mag[c] {
				return fmt.Errorf("%w: SpMM row %d col %d: got %g want %g (|Δ|=%g, tol=%g)",
					ErrMismatch, r, c, yr[c], acc[c], d, absTol+relTol*mag[c])
			}
		}
		return nil
	}
	if rows <= 0 || rows >= s.Rows {
		for r := 0; r < s.Rows; r++ {
			if err := check(r); err != nil {
				return err
			}
		}
		return nil
	}
	z := seed
	for i := 0; i < rows; i++ {
		z += 0x9E3779B97F4A7C15
		if err := check(int(splitmix64(z) % uint64(s.Rows))); err != nil {
			return err
		}
	}
	return nil
}

// CheckSDDMMRows shadow-verifies an SDDMM result on a sampled subset
// of rows: outVals must hold one value per nonzero of s, laid out by
// s.RowPtr (the result matrix shares s's structure). For each sampled
// row r and nonzero (r,c): reference = s[r,c] · Σₖ y[r,k]·x[c,k],
// recomputed in float64. rows <= 0 or rows >= s.Rows checks every row.
func CheckSDDMMRows(s *sparse.CSR, x, y *dense.Matrix, outVals []float32, rows int, seed uint64, relTol, absTol float64) error {
	if len(outVals) != s.NNZ() || y.Rows != s.Rows || x.Rows != s.Cols || y.Cols != x.Cols {
		return fmt.Errorf("%w: SDDMM result shape mismatch (nnz %d vs %d, y %dx%d, x %dx%d, s %dx%d)",
			ErrMismatch, len(outVals), s.NNZ(), y.Rows, y.Cols, x.Rows, x.Cols, s.Rows, s.Cols)
	}
	if s.Rows == 0 {
		return nil
	}
	k := y.Cols
	check := func(r int) error {
		cols, svals := s.RowCols(r), s.RowVals(r)
		yr := y.Row(r)
		base := int(s.RowPtr[r])
		for j := range cols {
			xr := x.Row(int(cols[j]))
			dot, mag := 0.0, 0.0
			for c := 0; c < k; c++ {
				pr := float64(yr[c]) * float64(xr[c])
				dot += pr
				mag += math.Abs(pr)
			}
			sv := float64(svals[j])
			want := sv * dot
			got := float64(outVals[base+j])
			if d := math.Abs(got - want); d > absTol+relTol*math.Abs(sv)*mag {
				return fmt.Errorf("%w: SDDMM row %d nz %d (col %d): got %g want %g (|Δ|=%g)",
					ErrMismatch, r, j, cols[j], got, want, d)
			}
		}
		return nil
	}
	if rows <= 0 || rows >= s.Rows {
		for r := 0; r < s.Rows; r++ {
			if err := check(r); err != nil {
				return err
			}
		}
		return nil
	}
	z := seed
	for i := 0; i < rows; i++ {
		z += 0x9E3779B97F4A7C15
		if err := check(int(splitmix64(z) % uint64(s.Rows))); err != nil {
			return err
		}
	}
	return nil
}

// CheckPlan validates the cheap structural invariants of a rebuilt or
// re-skinned plan before it is allowed to serve: rowPerm is a
// bijection with invRowPerm its exact inverse (both may be nil for an
// identity/NR plan), and reordered's RowPtr is monotone with the final
// entry matching the index/value array lengths and all column indices
// in range. O(rows + nnz) with no allocations beyond IsPermutation's
// seen bitmap — negligible next to the rebuild it gates.
func CheckPlan(rowPerm, invRowPerm []int32, reordered *sparse.CSR) error {
	if reordered == nil {
		return fmt.Errorf("%w: nil reordered matrix", ErrPlanInvariant)
	}
	if rowPerm != nil || invRowPerm != nil {
		if !sparse.IsPermutation(rowPerm, reordered.Rows) {
			return fmt.Errorf("%w: row permutation is not a bijection on %d rows", ErrPlanInvariant, reordered.Rows)
		}
		if len(invRowPerm) != len(rowPerm) {
			return fmt.Errorf("%w: inverse permutation length %d != %d", ErrPlanInvariant, len(invRowPerm), len(rowPerm))
		}
		for i, p := range rowPerm {
			if invRowPerm[p] != int32(i) {
				return fmt.Errorf("%w: invRowPerm[rowPerm[%d]] = %d, want %d", ErrPlanInvariant, i, invRowPerm[p], i)
			}
		}
	}
	m := reordered
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("%w: RowPtr length %d != rows+1 (%d)", ErrPlanInvariant, len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("%w: RowPtr[0] = %d, want 0", ErrPlanInvariant, m.RowPtr[0])
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i+1] < m.RowPtr[i] {
			return fmt.Errorf("%w: RowPtr not monotone at row %d (%d < %d)", ErrPlanInvariant, i, m.RowPtr[i+1], m.RowPtr[i])
		}
	}
	if n := int(m.RowPtr[m.Rows]); n != len(m.ColIdx) || len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("%w: RowPtr[rows]=%d, len(ColIdx)=%d, len(Val)=%d disagree", ErrPlanInvariant, n, len(m.ColIdx), len(m.Val))
	}
	for j, c := range m.ColIdx {
		if c < 0 || int(c) >= m.Cols {
			return fmt.Errorf("%w: ColIdx[%d] = %d out of range [0,%d)", ErrPlanInvariant, j, c, m.Cols)
		}
	}
	return nil
}

// CheckGather validates that every index of a gather map is in range
// for a value array of length n. Used by the plan cache before
// applying a re-skin.
func CheckGather(idx []int32, n int) error {
	for i, g := range idx {
		if g < 0 || int(g) >= n {
			return fmt.Errorf("%w: gather[%d] = %d out of range [0,%d)", ErrPlanInvariant, i, g, n)
		}
	}
	return nil
}
