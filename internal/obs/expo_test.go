package obs

import (
	"strings"
	"testing"
)

// TestExpositionGolden locks the exact rendered output of a small
// registry — byte-for-byte, since Prometheus scrapers and the diff in
// a code review both benefit from deterministic exposition — and runs
// the grammar validator over it.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests handled.", L("op", "spmm")).Add(3)
	r.Counter("test_requests_total", "Requests handled.", L("op", "sddmm")).Add(1)
	r.Gauge("test_in_flight", "Requests in flight.").Set(2)
	r.GaugeFloat("test_ratio", "A ratio with an escaped\nhelp \\ string.").Set(0.25)
	// Binary-exact observation values, so the rendered _sum is identical
	// regardless of which shards the observations land in.
	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.001, 0.01})
	h.Observe(0.00048828125) // 2^-11
	h.Observe(0.001953125)   // 2^-9
	h.Observe(5)
	r.CounterFunc("test_reads_total", "Func-backed counter.", func() int64 { return 7 },
		L("tier", `disk "primary"`))

	var b strings.Builder
	if err := WriteTo(&b, r); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP test_in_flight Requests in flight.
# TYPE test_in_flight gauge
test_in_flight 2
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.001"} 1
test_latency_seconds_bucket{le="0.01"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5.00244140625
test_latency_seconds_count 3
# HELP test_ratio A ratio with an escaped\nhelp \\ string.
# TYPE test_ratio gauge
test_ratio 0.25
# HELP test_reads_total Func-backed counter.
# TYPE test_reads_total counter
test_reads_total{tier="disk \"primary\""} 7
# HELP test_requests_total Requests handled.
# TYPE test_requests_total counter
test_requests_total{op="sddmm"} 1
test_requests_total{op="spmm"} 3
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if err := ValidateExposition(got); err != nil {
		t.Fatalf("golden output fails the grammar validator: %v", err)
	}
}

// TestExpositionMergesRegistries checks the /metrics gather path:
// families from several registries come out merged and sorted.
func TestExpositionMergesRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("zz_total", "Last family.").Inc()
	b.Counter("aa_total", "First family.").Inc()
	var out strings.Builder
	if err := WriteTo(&out, a, nil, b); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.HasPrefix(text, "# HELP aa_total") {
		t.Fatalf("families not sorted across registries:\n%s", text)
	}
	if err := ValidateExposition(text); err != nil {
		t.Fatal(err)
	}
}

// TestValidateExpositionRejects feeds the validator documents that a
// Prometheus scraper would reject; each must fail.
func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad metric name":     "9metric 1\n",
		"bad value":           "m 1.2.3\n",
		"bad label name":      `m{9l="x"} 1` + "\n",
		"unquoted label":      `m{l=x} 1` + "\n",
		"unterminated label":  `m{l="x} 1` + "\n",
		"bad escape":          `m{l="\q"} 1` + "\n",
		"duplicate TYPE":      "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"unknown type":        "# TYPE m heatmap\nm 1\n",
		"type after sample":   "m 1\n# TYPE m counter\n",
		"interleaved family":  "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na 2\n",
		"negative counter":    "# TYPE m counter\nm -1\n",
		"no inf bucket":       "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"count mismatch":      "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"non-cumulative":      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"descending le":       "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"missing sum":         "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"missing count":       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
		"bucket without le":   "# TYPE h histogram\nh_bucket{x=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"raw hist sample":     "# TYPE h histogram\nh 1\n",
		"fractional bucket":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1.5\nh_sum 1\nh_count 1\n",
		"malformed TYPE line": "# TYPE\n",
	}
	for name, doc := range cases {
		if err := ValidateExposition(doc); err == nil {
			t.Errorf("%s: validator accepted malformed document:\n%s", name, doc)
		}
	}
}

// TestValidateExpositionAccepts covers corners the validator must not
// reject: plain comments, timestamps, NaN gauges, untyped samples.
func TestValidateExpositionAccepts(t *testing.T) {
	doc := "# a free-form comment\n" +
		"# TYPE g gauge\n" +
		"g{a=\"x\",b=\"esc\\\\aped \\\"v\\\" \\n\"} NaN\n" +
		"g{a=\"y\"} -5 1700000000000\n" +
		"untyped_series 42\n"
	if err := ValidateExposition(doc); err != nil {
		t.Fatalf("validator rejected conforming document: %v", err)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m_total as gauge did not panic")
		}
	}()
	r.Gauge("m_total", "")
}

func TestRegistryIdempotentHandles(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "", L("k", "v"))
	c2 := r.Counter("x_total", "", L("k", "v"))
	if c1 != c2 {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c1.Inc()
	if c2.Value() != 1 {
		t.Fatal("handles disagree")
	}
	h1 := r.Histogram("h_seconds", "", []float64{1})
	h2 := r.Histogram("h_seconds", "", []float64{2})
	if h1 != h2 {
		t.Fatal("same histogram name returned distinct histograms")
	}
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d samples, want 2", len(snap))
	}
	for _, s := range snap {
		if s.Name == "x_total" && s.Value != 1 {
			t.Fatalf("snapshot value %v, want 1", s.Value)
		}
	}
}
