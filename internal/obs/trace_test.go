package obs

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

func TestTraceSpansAndAttrs(t *testing.T) {
	tr := NewTrace("spmm")
	outer := tr.StartSpan("attempt")
	inner := tr.StartSpan("kernel_spmm")
	time.Sleep(2 * time.Millisecond)
	inner.End()
	outer.End()
	tr.Annotate("breaker", "closed")
	tr.Annotate("breaker", "open") // overwrite, not duplicate
	tr.Annotate("cache_tier", "memory")
	tr.AddSpan("stage_tiling", tr.start, 500*time.Microsecond)
	tr.Finish(errors.New("boom"))
	tr.Finish(nil) // idempotent: first outcome wins

	s := tr.Snapshot()
	if s.Op != "spmm" || s.Err != "boom" {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(s.Spans))
	}
	if s.Attrs["breaker"] != "open" || s.Attrs["cache_tier"] != "memory" || len(s.Attrs) != 2 {
		t.Fatalf("attrs = %v", s.Attrs)
	}
	if s.WallUS < 2000 {
		t.Fatalf("wall %dus, want >= 2ms", s.WallUS)
	}
	// The nested kernel span must not double-count in the union.
	if cov := s.SpanCoverageUS(); cov > s.WallUS || cov < 2000 {
		t.Fatalf("span coverage %dus of wall %dus", cov, s.WallUS)
	}
}

func TestSpanCoverageUnion(t *testing.T) {
	s := TraceSnapshot{Spans: []SpanSnapshot{
		{Name: "a", StartUS: 0, DurUS: 100},
		{Name: "nested", StartUS: 20, DurUS: 30}, // inside a
		{Name: "b", StartUS: 150, DurUS: 50},
		{Name: "overlap", StartUS: 180, DurUS: 40},
	}}
	if got := s.SpanCoverageUS(); got != 100+70 {
		t.Fatalf("coverage = %d, want 170", got)
	}
	if got := (TraceSnapshot{}).SpanCoverageUS(); got != 0 {
		t.Fatalf("empty coverage = %d", got)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	h := tr.StartSpan("x")
	h.End()
	tr.Annotate("k", "v")
	tr.AddSpan("y", time.Now(), time.Second)
	tr.Finish(nil)
	if n := testing.AllocsPerRun(500, func() {
		sp := tr.StartSpan("x")
		sp.End()
		tr.Annotate("k", "v")
	}); n != 0 {
		t.Fatalf("nil trace ops allocate %v times per run, want 0", n)
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("TraceFrom(background) = %v", got)
	}
}

func TestWithTraceRoundTrip(t *testing.T) {
	tr := NewTrace("op")
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("TraceFrom did not return the installed trace")
	}
}

func TestTraceRingEvictionAndOrder(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		tr := NewTrace("op")
		tr.Annotate("i", string(rune('0'+i)))
		tr.Finish(nil)
		r.Push(tr)
	}
	snaps := r.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("ring holds %d, want 3", len(snaps))
	}
	// Most recent first: 4, 3, 2.
	for i, want := range []string{"4", "3", "2"} {
		if snaps[i].Attrs["i"] != want {
			t.Fatalf("ring[%d] = %v, want i=%s", i, snaps[i].Attrs, want)
		}
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []TraceSnapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("ring JSON does not round-trip: %v\n%s", err, data)
	}
	if len(decoded) != 3 {
		t.Fatalf("decoded %d traces, want 3", len(decoded))
	}
}

// TestTraceRingConcurrentPushSnapshot exercises pooled-trace recycling
// while snapshots race with pushes; run under -race this proves the
// ring's eviction/reuse cycle cannot corrupt a concurrent reader.
func TestTraceRingConcurrentPushSnapshot(t *testing.T) {
	r := NewTraceRing(4)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range r.Snapshot() {
				if s.Op != "op" {
					t.Errorf("corrupt snapshot op %q", s.Op)
					return
				}
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		tr := NewTrace("op")
		tr.StartSpan("s").End()
		tr.Finish(nil)
		r.Push(tr)
	}
	close(stop)
	<-done
}
