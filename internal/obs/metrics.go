// Package obs is the unified observability layer of the serving stack:
// a dependency-free metrics core (lock-free atomic counters and gauges,
// fixed-bucket latency histograms with mergeable shards), a process-wide
// Registry of labeled metric families with hand-rolled Prometheus
// text-format exposition, per-request Traces threaded through
// context.Context, and an HTTP handler exposing /metrics, /healthz,
// /readyz, /debug/traces, and net/http/pprof.
//
// Design constraints, in order:
//
//  1. Hot-path recording must be allocation-free and nearly free in
//     time: Counter.Add and Gauge.Set are single atomic ops;
//     Histogram.Observe is a branchless shard pick, an inlined binary
//     search, and three atomic ops on a padded shard. Trace recording
//     is nil-safe, so un-traced paths (the zero-allocation kernel
//     *Into entry points under context.Background) pay only a context
//     value lookup.
//  2. Exposition can never disagree with programmatic snapshots: the
//     serving layers register the very counter objects they increment
//     (or read-through funcs over their mutex-guarded stats), so
//     /metrics and Server.Stats read the same memory.
//  3. No third-party dependencies: the Prometheus text format v0.0.4
//     encoder (and the grammar validator the tests and CI smoke use)
//     are hand-rolled in this package.
//
// Naming convention (DESIGN.md §11): spmmrr_<subsystem>_<name>_<unit>,
// with _total for counters, _seconds for time, and bare names for
// gauges.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric within a family.
type Label struct{ Name, Value string }

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing int64. The zero value is ready
// to use; a nil *Counter ignores writes and reads as 0, so optional
// instrumentation never needs a guard at the call site.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an int64 value that can go up and down. The zero value is
// ready to use; a nil *Gauge ignores writes and reads as 0.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// GaugeFloat is a float64 gauge stored as atomic bits. The zero value
// is ready to use; a nil *GaugeFloat ignores writes and reads as 0.
type GaugeFloat struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *GaugeFloat) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *GaugeFloat) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// SetDuration stores d in seconds (the Prometheus base unit for time).
func (g *GaugeFloat) SetDuration(d time.Duration) { g.Set(d.Seconds()) }
