package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// famState tracks per-family validation state while scanning an
// exposition document.
type famState struct {
	typ       string
	sawSample bool
	closed    bool // a different family has started since
	hist      map[string]*histCheck
	histSum   map[string]bool
	histCount map[string]uint64
}

// histCheck tracks one labeled histogram series' bucket progression.
type histCheck struct {
	prev     uint64
	prevLe   float64
	any      bool
	sawInf   bool
	infValue uint64
}

// ValidateExposition checks text against the Prometheus text format
// v0.0.4 grammar plus the structural invariants a conforming scraper
// relies on:
//
//   - every line is a HELP/TYPE comment, a plain comment, blank, or a
//     sample with a valid metric name, well-formed escaped labels, and
//     a parseable value;
//   - TYPE appears at most once per family, before that family's
//     samples, with a known type;
//   - all lines of one family are contiguous (a family never resumes
//     after another family's lines);
//   - histogram families have, per label set: cumulative non-decreasing
//     buckets in ascending le order ending at le="+Inf", a _count equal
//     to the +Inf bucket, and a _sum line.
//
// It is used by the obs tests, the mid-soak scrape assertion, and the
// CI obs-smoke step ("fail on malformed exposition output").
func ValidateExposition(text string) error {
	fams := make(map[string]*famState)
	var current string
	enter := func(name string) (*famState, error) {
		f := fams[name]
		if f == nil {
			f = &famState{}
			fams[name] = f
		}
		if f.closed {
			return nil, fmt.Errorf("family %q resumed after another family", name)
		}
		if current != "" && current != name {
			fams[current].closed = true
		}
		current = name
		return f, nil
	}

	lines := strings.Split(text, "\n")
	for i, line := range lines {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // plain comment
			}
			if len(fields) < 3 || !validMetricName(fields[2]) {
				return fmt.Errorf("line %d: malformed %s comment: %q", lineNo, fields[1], line)
			}
			f, err := enter(fields[2])
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			if fields[1] == "TYPE" {
				if f.typ != "" {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[2])
				}
				if f.sawSample {
					return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, fields[2])
				}
				if len(fields) < 4 {
					return fmt.Errorf("line %d: TYPE %q missing type", lineNo, fields[2])
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q for %q", lineNo, fields[3], fields[2])
				}
				f.typ = fields[3]
			}
			continue
		}

		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, sfx); base != name {
				if f := fams[base]; f != nil && f.typ == "histogram" {
					fam, suffix = base, sfx
				}
				break
			}
		}
		f, err := enter(fam)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		f.sawSample = true

		switch f.typ {
		case "histogram":
			if err := f.checkHistogramLine(suffix, labels, value); err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
		case "counter":
			if math.IsNaN(value) || value < 0 {
				return fmt.Errorf("line %d: counter %q has NaN or negative value", lineNo, name)
			}
		}
	}

	for name, f := range fams {
		if f.typ != "histogram" {
			continue
		}
		for key, hc := range f.hist {
			if !hc.sawInf {
				return fmt.Errorf("histogram %q series %s missing le=\"+Inf\" bucket", name, key)
			}
			if !f.histSum[key] {
				return fmt.Errorf("histogram %q series %s missing _sum", name, key)
			}
			cnt, ok := f.histCount[key]
			if !ok {
				return fmt.Errorf("histogram %q series %s missing _count", name, key)
			}
			if cnt != hc.infValue {
				return fmt.Errorf("histogram %q series %s: _count %d != +Inf bucket %d", name, key, cnt, hc.infValue)
			}
		}
	}
	return nil
}

// checkHistogramLine validates one _bucket/_sum/_count sample of a
// histogram family. Buckets are keyed by their labels minus le.
func (f *famState) checkHistogramLine(suffix string, labels []Label, value float64) error {
	if f.hist == nil {
		f.hist = make(map[string]*histCheck)
		f.histSum = make(map[string]bool)
		f.histCount = make(map[string]uint64)
	}
	switch suffix {
	case "_bucket":
		var le string
		rest := labels[:0:0]
		for _, l := range labels {
			if l.Name == "le" {
				le = l.Value
				continue
			}
			rest = append(rest, l)
		}
		if le == "" {
			return fmt.Errorf("histogram bucket missing le label")
		}
		leV, err := parseValue(le)
		if err != nil {
			return fmt.Errorf("unparseable le=%q", le)
		}
		if value != math.Trunc(value) || value < 0 {
			return fmt.Errorf("bucket count %v is not a non-negative integer", value)
		}
		key := formatLabels(rest)
		hc := f.hist[key]
		if hc == nil {
			hc = &histCheck{}
			f.hist[key] = hc
		}
		if hc.sawInf {
			return fmt.Errorf("bucket after le=\"+Inf\" in series %s", key)
		}
		if hc.any && leV <= hc.prevLe {
			return fmt.Errorf("bucket le=%q not ascending in series %s", le, key)
		}
		if hc.any && uint64(value) < hc.prev {
			return fmt.Errorf("bucket counts not cumulative in series %s", key)
		}
		hc.any, hc.prev, hc.prevLe = true, uint64(value), leV
		if math.IsInf(leV, 1) {
			hc.sawInf, hc.infValue = true, uint64(value)
		}
	case "_sum":
		f.histSum[formatLabels(labels)] = true
	case "_count":
		if value != math.Trunc(value) || value < 0 {
			return fmt.Errorf("histogram _count %v is not a non-negative integer", value)
		}
		f.histCount[formatLabels(labels)] = uint64(value)
	default:
		return fmt.Errorf("raw sample in histogram family")
	}
	return nil
}

// ParseSamples parses a Prometheus text exposition into a map from
// series identity — metric name plus its label block, exactly as
// exposed — to sample value. Comment and blank lines are skipped.
// Tests use it to assert counter monotonicity across scrapes; run
// ValidateExposition first when grammar conformance also matters.
func ParseSamples(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for i, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, v, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		out[name+formatLabels(labels)] = v
	}
	return out, nil
}

// parseSampleLine parses `name{labels} value [timestamp]`, validating
// escapes and names.
func parseSampleLine(line string) (name string, labels []Label, value float64, err error) {
	rest := line
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end, ls, perr := parseLabels(rest)
		if perr != nil {
			return "", nil, 0, perr
		}
		labels = ls
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed sample line %q", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parseLabels parses a `{name="value",...}` block starting at s[0]=='{'
// and returns the index just past the closing brace.
func parseLabels(s string) (end int, labels []Label, err error) {
	i := 1
	for {
		for i < len(s) && s[i] == ' ' {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(s) && s[i] != '=' && s[i] != '}' && s[i] != ' ' {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		lname := s[start:i]
		if !validLabelName(lname) {
			return 0, nil, fmt.Errorf("invalid label name %q", lname)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label %q value not quoted", lname)
		}
		i++
		var val strings.Builder
	scan:
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated label value for %q", lname)
			}
			switch s[i] {
			case '\\':
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("dangling escape in label %q", lname)
				}
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("invalid escape \\%c in label %q", s[i+1], lname)
				}
				i += 2
			case '"':
				break scan
			default:
				val.WriteByte(s[i])
				i++
			}
		}
		i++ // closing '"'
		labels = append(labels, Label{lname, val.String()})
		switch {
		case i < len(s) && s[i] == ',':
			i++
		case i < len(s) && s[i] == '}':
			return i + 1, labels, nil
		default:
			return 0, nil, fmt.Errorf("expected ',' or '}' after label %q", lname)
		}
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
