package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteTo renders every series of the given registries in Prometheus
// text exposition format v0.0.4, families sorted by name and merged
// across registries (same-name families must agree on kind). The
// encoder is hand-rolled — the module takes no dependencies — and its
// output is checked against the grammar by ValidateExposition in tests
// and the CI obs smoke.
func WriteTo(w io.Writer, regs ...*Registry) error {
	type famOut struct {
		help    string
		kind    Kind
		samples []Sample
	}
	merged := make(map[string]*famOut)
	var names []string
	for _, r := range regs {
		if r == nil {
			continue
		}
		meta := r.helpAndKind()
		for _, s := range r.Snapshot() {
			f := merged[s.Name]
			if f == nil {
				f = &famOut{help: meta[s.Name].help, kind: meta[s.Name].kind}
				merged[s.Name] = f
				names = append(names, s.Name)
			}
			f.samples = append(f.samples, s)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := merged[name]
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, s := range f.samples {
			if f.kind == KindHistogram {
				writeHistogram(&b, name, s)
				continue
			}
			b.WriteString(name)
			b.WriteString(formatLabels(s.Labels))
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one labeled histogram series: cumulative
// _bucket lines (including the mandatory le="+Inf"), then _sum and
// _count. Because HistogramSnapshot derives Count from its buckets,
// the rendered +Inf bucket always equals _count.
func writeHistogram(b *strings.Builder, name string, s Sample) {
	var cum uint64
	for i, c := range s.Hist.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Hist.Bounds) {
			le = formatValue(s.Hist.Bounds[i])
		}
		b.WriteString(name)
		b.WriteString("_bucket")
		b.WriteString(formatLabels(append(append([]Label(nil), s.Labels...), Label{"le", le})))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(formatLabels(s.Labels))
	b.WriteByte(' ')
	b.WriteString(formatValue(s.Hist.Sum))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(formatLabels(s.Labels))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(s.Hist.Count, 10))
	b.WriteByte('\n')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
