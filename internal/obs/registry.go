package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind discriminates the metric types a family can hold.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// child is one labeled member of a family. Exactly one of the value
// fields is set, matching the family kind (funcs are collect-at-scrape
// read-throughs over externally owned state).
type child struct {
	labels      []Label
	counter     *Counter
	gauge       *Gauge
	gaugeFloat  *GaugeFloat
	hist        *Histogram
	counterFunc func() int64
	gaugeFunc   func() float64
}

// family groups all children sharing one metric name.
type family struct {
	name     string
	help     string
	kind     Kind
	children map[string]*child // key: canonical label serialization
}

// Registry holds metric families and hands out the live metric objects
// the instrumented code updates. Registration is idempotent: asking
// for the same (name, labels) returns the same object, so exposition
// and programmatic stats read identical memory. Kind conflicts on a
// name panic — that is a wiring bug, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry used by subsystems that are not
// tied to a Server instance (kernels, preprocessing, online trials).
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name with the given
// labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.child(name, help, KindCounter, labels)
	if c.counter == nil {
		c.counter = &Counter{}
	}
	return c.counter
}

// Gauge returns the int64 gauge registered under name with the given
// labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c := r.child(name, help, KindGauge, labels)
	if c.gauge == nil && c.gaugeFloat == nil && c.gaugeFunc == nil {
		c.gauge = &Gauge{}
	}
	if c.gauge == nil {
		panic(fmt.Sprintf("obs: gauge %q%s already registered with a different value type", name, formatLabels(labels)))
	}
	return c.gauge
}

// GaugeFloat returns the float64 gauge registered under name with the
// given labels, creating it on first use.
func (r *Registry) GaugeFloat(name, help string, labels ...Label) *GaugeFloat {
	c := r.child(name, help, KindGauge, labels)
	if c.gauge == nil && c.gaugeFloat == nil && c.gaugeFunc == nil {
		c.gaugeFloat = &GaugeFloat{}
	}
	if c.gaugeFloat == nil {
		panic(fmt.Sprintf("obs: gauge %q%s already registered with a different value type", name, formatLabels(labels)))
	}
	return c.gaugeFloat
}

// Histogram returns the histogram registered under name with the given
// labels, creating it with the given bucket bounds on first use.
// Bounds of an already registered histogram are kept (first wins).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	c := r.child(name, help, KindHistogram, labels)
	if c.hist == nil {
		c.hist = NewHistogram(bounds)
	}
	return c.hist
}

// CounterFunc registers a collect-at-scrape counter whose value is
// read from fn. The returned value must be monotone non-decreasing;
// the registry does not enforce it. Used to expose counters owned by
// mutex-guarded subsystems without double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	c := r.child(name, help, KindCounter, labels)
	if c.counter != nil || c.counterFunc != nil {
		panic(fmt.Sprintf("obs: counter %q%s registered twice", name, formatLabels(labels)))
	}
	c.counterFunc = fn
}

// GaugeFunc registers a collect-at-scrape gauge read from fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	c := r.child(name, help, KindGauge, labels)
	if c.gauge != nil || c.gaugeFloat != nil || c.gaugeFunc != nil {
		panic(fmt.Sprintf("obs: gauge %q%s registered twice", name, formatLabels(labels)))
	}
	c.gaugeFunc = fn
}

// child locates or creates the (family, labelset) slot.
func (r *Registry) child(name, help string, kind Kind, labels []Label) *child {
	mustValidName(name)
	for _, l := range labels {
		mustValidLabelName(l.Name)
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	c := f.children[key]
	if c == nil {
		ls := append([]Label(nil), labels...)
		sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
		c = &child{labels: ls}
		f.children[key] = c
	}
	return c
}

// Sample is one exposed series in a Snapshot.
type Sample struct {
	Name   string  // family name (without _bucket/_sum/_count suffixes)
	Labels []Label // sorted by name
	Kind   Kind
	Value  float64           // counter/gauge value; histograms use Hist
	Hist   HistogramSnapshot // valid when Kind == KindHistogram
}

// Key returns the canonical "name{label="v",...}" identity of the
// sample, used by tests to compare scrapes.
func (s Sample) Key() string { return s.Name + formatLabels(s.Labels) }

// Snapshot reads every registered series once, invoking func-backed
// collectors, and returns them sorted by (name, labels). This is the
// single consistent read path programmatic stats and exposition share.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type collectChild struct {
		fam *family
		c   *child
	}
	var collect []collectChild
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			collect = append(collect, collectChild{f, f.children[k]})
		}
	}
	r.mu.Unlock()

	// Funcs run outside the registry lock: they may take subsystem
	// locks of their own, and nothing they touch is registry state.
	out := make([]Sample, 0, len(collect))
	for _, cc := range collect {
		s := Sample{Name: cc.fam.name, Labels: cc.c.labels, Kind: cc.fam.kind}
		switch {
		case cc.c.counter != nil:
			s.Value = float64(cc.c.counter.Value())
		case cc.c.counterFunc != nil:
			s.Value = float64(cc.c.counterFunc())
		case cc.c.gauge != nil:
			s.Value = float64(cc.c.gauge.Value())
		case cc.c.gaugeFloat != nil:
			s.Value = cc.c.gaugeFloat.Value()
		case cc.c.gaugeFunc != nil:
			s.Value = cc.c.gaugeFunc()
		case cc.c.hist != nil:
			s.Hist = cc.c.hist.Snapshot()
		}
		out = append(out, s)
	}
	return out
}

// help returns the registered HELP strings keyed by family name, for
// the exposition writer.
func (r *Registry) helpAndKind() map[string]struct {
	help string
	kind Kind
} {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]struct {
		help string
		kind Kind
	}, len(r.families))
	for name, f := range r.families {
		out[name] = struct {
			help string
			kind Kind
		}{f.help, f.kind}
	}
	return out
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte(0)
		b.WriteString(l.Value)
		b.WriteByte(0)
	}
	return b.String()
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func mustValidName(name string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

func mustValidLabelName(name string) {
	if !validLabelName(name) {
		panic(fmt.Sprintf("obs: invalid label name %q", name))
	}
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
