package obs

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is a per-request record of stage spans and annotations. It is
// carried through the existing context plumbing via WithTrace /
// TraceFrom, so instrumented layers (admission, retry, plan cache,
// preprocessing, kernels) record into the request's trace without any
// signature changes. All methods are nil-safe: code paths that run
// without a trace (the zero-allocation kernel entry points under a
// bare context) see a nil *Trace and record nothing.
type Trace struct {
	mu    sync.Mutex
	id    uint64
	op    string
	start time.Time
	end   time.Time
	err   string
	spans []span
	attrs []Attr
}

// Attr is one key=value annotation on a trace (breaker state at
// decision time, plan-cache tier, outcome class, ...).
type Attr struct{ Key, Value string }

type span struct {
	name  string
	start time.Duration // offset from trace start
	dur   time.Duration
}

var traceIDs atomic.Uint64

var tracePool = sync.Pool{New: func() any { return &Trace{} }}

// NewTrace starts a trace for one operation. Traces are pooled; they
// return to the pool when evicted from the TraceRing they are pushed
// to, so steady-state serving reuses a bounded set of Trace objects.
func NewTrace(op string) *Trace {
	tr := tracePool.Get().(*Trace)
	tr.id = traceIDs.Add(1)
	tr.op = op
	tr.start = time.Now()
	tr.end = time.Time{}
	tr.err = ""
	tr.spans = tr.spans[:0]
	tr.attrs = tr.attrs[:0]
	return tr
}

// SpanHandle ends a span started with StartSpan. The zero value (from
// a nil trace) is a no-op.
type SpanHandle struct {
	tr  *Trace
	idx int
}

// StartSpan opens a named span at the current time. Spans may nest and
// overlap; they are closed by the returned handle's End.
func (t *Trace) StartSpan(name string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	now := time.Since(t.start)
	t.mu.Lock()
	t.spans = append(t.spans, span{name: name, start: now, dur: -1})
	h := SpanHandle{t, len(t.spans) - 1}
	t.mu.Unlock()
	return h
}

// End closes the span at the current time.
func (h SpanHandle) End() {
	if h.tr == nil {
		return
	}
	now := time.Since(h.tr.start)
	h.tr.mu.Lock()
	sp := &h.tr.spans[h.idx]
	if sp.dur < 0 {
		sp.dur = now - sp.start
	}
	h.tr.mu.Unlock()
}

// AddSpan records an already-measured span with an explicit start time
// and duration. Used to lift externally timed stages (for example
// Plan.Stages durations measured by code that has no trace in scope)
// into the trace after the fact.
func (t *Trace) AddSpan(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, span{name: name, start: start.Sub(t.start), dur: d})
	t.mu.Unlock()
}

// Annotate attaches a key=value attribute. Re-annotating a key
// overwrites its value.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.attrs {
		if t.attrs[i].Key == key {
			t.attrs[i].Value = value
			t.mu.Unlock()
			return
		}
	}
	t.attrs = append(t.attrs, Attr{key, value})
	t.mu.Unlock()
}

// Finish stamps the trace end time and the final error outcome ("" on
// success). It is idempotent; the first call wins.
func (t *Trace) Finish(err error) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = time.Now()
		if err != nil {
			t.err = err.Error()
		}
	}
	t.mu.Unlock()
}

// ctxKey is the private context key type for trace propagation.
type ctxKey struct{}

// WithTrace returns a context carrying tr.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// TraceFrom returns the trace carried by ctx, or nil. All Trace
// methods accept the nil result, so callers never need to branch.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// SpanSnapshot is one span in a trace dump. Offsets and durations are
// microseconds from the trace start.
type SpanSnapshot struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// TraceSnapshot is the JSON form of a finished trace served by
// /debug/traces.
type TraceSnapshot struct {
	ID     uint64            `json:"id"`
	Op     string            `json:"op"`
	Start  time.Time         `json:"start"`
	WallUS int64             `json:"wall_us"`
	Err    string            `json:"err,omitempty"`
	Spans  []SpanSnapshot    `json:"spans"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Snapshot deep-copies the trace. Unfinished spans are reported with
// the trace end (or current time) as their implicit end.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

func (t *Trace) snapshotLocked() TraceSnapshot {
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	s := TraceSnapshot{
		ID:     t.id,
		Op:     t.op,
		Start:  t.start,
		WallUS: end.Sub(t.start).Microseconds(),
		Err:    t.err,
		Spans:  make([]SpanSnapshot, len(t.spans)),
	}
	for i, sp := range t.spans {
		d := sp.dur
		if d < 0 {
			d = end.Sub(t.start) - sp.start
		}
		s.Spans[i] = SpanSnapshot{Name: sp.name, StartUS: sp.start.Microseconds(), DurUS: d.Microseconds()}
	}
	if len(t.attrs) > 0 {
		s.Attrs = make(map[string]string, len(t.attrs))
		for _, a := range t.attrs {
			s.Attrs[a.Key] = a.Value
		}
	}
	return s
}

// SpanCoverageUS returns the union length, in microseconds, of all
// span intervals in the snapshot. Nested and overlapping spans count
// once, so the value is comparable against WallUS to ask "how much of
// this request's wall time is accounted for by recorded spans".
func (s TraceSnapshot) SpanCoverageUS() int64 {
	if len(s.Spans) == 0 {
		return 0
	}
	type iv struct{ lo, hi int64 }
	ivs := make([]iv, len(s.Spans))
	for i, sp := range s.Spans {
		ivs[i] = iv{sp.StartUS, sp.StartUS + sp.DurUS}
	}
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].lo < ivs[j-1].lo; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	var total, hi int64
	lo := ivs[0].lo
	hi = ivs[0].hi
	for _, v := range ivs[1:] {
		if v.lo > hi {
			total += hi - lo
			lo, hi = v.lo, v.hi
			continue
		}
		if v.hi > hi {
			hi = v.hi
		}
	}
	return total + hi - lo
}

// TraceRing keeps the most recent finished traces for /debug/traces.
// Push recycles the evicted trace back into the trace pool, so the
// ring also bounds trace object lifetime.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	n    int
}

// NewTraceRing returns a ring holding up to capacity traces.
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]*Trace, capacity)}
}

// Push adds a finished trace, evicting (and pooling) the oldest when
// full. A nil ring or nil trace is a no-op.
func (r *TraceRing) Push(tr *Trace) {
	if r == nil || tr == nil {
		return
	}
	r.mu.Lock()
	if old := r.buf[r.next]; old != nil {
		tracePool.Put(old)
	}
	r.buf[r.next] = tr
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the ring's traces, most recent first.
func (r *TraceRing) Snapshot() []TraceSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSnapshot, 0, r.n)
	for i := 1; i <= r.n; i++ {
		tr := r.buf[(r.next-i+len(r.buf))%len(r.buf)]
		tr.mu.Lock()
		out = append(out, tr.snapshotLocked())
		tr.mu.Unlock()
	}
	return out
}

// MarshalJSON renders the ring as a JSON array of trace snapshots.
func (r *TraceRing) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}
