package obs

import (
	"math"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// histShards is the number of independently updated shards per
// histogram. Power of two so the shard pick is a mask, sized to cover
// typical serving concurrency without contending on one cache line.
const histShards = 16

// histShard holds one shard's bucket counts and running sum. The
// padding keeps concurrent writers on different shards from false
// sharing; counts live in a fixed array so a Histogram is a single
// allocation regardless of bucket count (bounded by maxBuckets).
type histShard struct {
	counts  [maxBuckets]atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	_       [6]uint64     // pad to a cache-line boundary past sumBits
}

// maxBuckets bounds the per-histogram bucket count (excluding the
// implicit +Inf bucket, which is the last slot).
const maxBuckets = 32

// Histogram is a fixed-bucket histogram with per-shard atomic state.
// Observe is lock-free and allocation-free; Snapshot merges the shards
// into a consistent view. Upper bounds are cumulative-le boundaries in
// ascending order; observations above the last bound land in the
// implicit +Inf bucket. A nil *Histogram ignores observations.
type Histogram struct {
	bounds []float64 // ascending, len <= maxBuckets-1
	shards [histShards]histShard
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. It panics on unsorted, non-finite, or oversized bounds —
// bucket layouts are static configuration, not runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 || len(bounds) > maxBuckets-1 {
		panic("obs: histogram needs 1..31 bucket bounds")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram bounds must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	sh := &h.shards[rand.Uint32()&(histShards-1)]
	// Inlined binary search for the first bound >= v (le semantics).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	sh.counts[lo].Add(1)
	for {
		old := sh.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if sh.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the time elapsed since start, in seconds, and
// is the idiomatic way to time a code region:
//
//	defer h.ObserveSince(time.Now())
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// HistogramSnapshot is a merged, self-consistent view of a histogram.
// Counts[i] is the non-cumulative count for bucket i (bounds[i] as
// upper bound), with the final slot being the +Inf bucket. Count is
// always the sum of Counts, so cumulative exposition derived from a
// snapshot satisfies the bucket-sum == _count invariant even while
// writers race with the snapshot.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot merges all shards. Observations that land concurrently may
// or may not be included, but the returned snapshot is internally
// consistent (Count == sum of Counts by construction).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	n := len(h.bounds) + 1 // + the +Inf bucket
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, n),
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < n; b++ {
			s.Counts[b] += sh.counts[b].Load()
		}
		s.Sum += math.Float64frombits(sh.sumBits.Load())
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	return s
}

// LatencyBuckets is the default bucket layout for request and kernel
// latencies: 10µs to ~10s, roughly 3 buckets per decade.
func LatencyBuckets() []float64 {
	return []float64{
		10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
		100e-3, 250e-3, 500e-3, 1, 2.5, 5, 10,
	}
}

// FineLatencyBuckets extends LatencyBuckets downward with
// sub-microsecond bounds (250ns to 5µs) for timings far below request
// granularity — per-chunk kernel wall times in particular, which land
// almost entirely inside LatencyBuckets' first 10µs bucket. Only newly
// registered families use this layout; already-registered families
// keep their first-registered bounds (Registry.Histogram: first wins),
// so golden exposition tests over the original layouts stay valid.
func FineLatencyBuckets() []float64 {
	return append([]float64{
		250e-9, 500e-9, 1e-6, 2.5e-6, 5e-6,
	}, LatencyBuckets()...)
}

// LinearBuckets returns count bounds starting at start, spaced width
// apart.
func LinearBuckets(start, width float64, count int) []float64 {
	b := make([]float64, count)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExponentialBuckets returns count bounds starting at start, each
// factor times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	b := make([]float64, count)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}
