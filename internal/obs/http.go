package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// HandlerConfig wires the observability HTTP surface.
type HandlerConfig struct {
	// Registries are gathered, merged, and exposed at /metrics.
	Registries []*Registry
	// Traces, when non-nil, is served as JSON at /debug/traces.
	Traces *TraceRing
	// Events, when non-nil, is served as JSON at /debug/events.
	Events *EventRing
	// Explain, when non-nil, serves /debug/explain?tenant=X: it
	// returns the JSON-marshalable decision record for one tenant, or
	// an error when the tenant is unknown (rendered as 404).
	Explain func(tenant string) (any, error)
	// Ready reports request-serving readiness for /readyz (for the
	// serving stack: a warm reordered plan has landed or the degraded
	// decision has been made). A nil Ready means always ready.
	Ready func() bool
	// Healthy reports process liveness for /healthz. A nil Healthy
	// means always healthy.
	Healthy func() bool
}

// NewHandler returns the observability endpoint mux:
//
//	/metrics        Prometheus text format v0.0.4
//	/healthz        200 "ok" while Healthy() (liveness)
//	/readyz         200 "ready" once Ready() (readiness)
//	/debug/traces   recent-trace ring as a JSON array
//	/debug/events   recent decision events as a JSON array
//	/debug/explain  per-tenant decision record (?tenant=X)
//	/debug/pprof/   the standard net/http/pprof surface
func NewHandler(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteTo(w, cfg.Registries...)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Healthy != nil && !cfg.Healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Ready != nil && !cfg.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cfg.Traces.Snapshot())
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cfg.Events.Snapshot())
	})
	if cfg.Explain != nil {
		mux.HandleFunc("/debug/explain", func(w http.ResponseWriter, r *http.Request) {
			tenant := r.URL.Query().Get("tenant")
			doc, err := cfg.Explain(tenant)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(doc)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
