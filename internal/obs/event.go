package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Decision-event types recorded by the serving stack. Every event in a
// ring must carry one of these; ValidateEvents rejects anything else,
// the same way ValidateExposition rejects a malformed metrics scrape.
const (
	EventTrialWinner       = "trial_winner"       // online rr-vs-nr trial decided
	EventPlanSwap          = "plan_swap"          // background rebuild published a new plan
	EventOverlayDegraded   = "overlay_degraded"   // live rebuild loop gave up; overlay serving persists
	EventBreakerTransition = "breaker_transition" // circuit breaker changed state
	EventQuarantine        = "quarantine"         // integrity monitor opened (or re-opened) a quarantine
	EventReinstate         = "reinstate"          // probation window completed clean
	EventMispick           = "mispick"            // autotuner feedback: observed throughput contradicts the pick
	EventSLOBurn           = "slo_burn"           // per-tenant error-budget burn rate crossed 1
)

// eventTypes is the closed set of valid Event.Type values.
var eventTypes = map[string]bool{
	EventTrialWinner:       true,
	EventPlanSwap:          true,
	EventOverlayDegraded:   true,
	EventBreakerTransition: true,
	EventQuarantine:        true,
	EventReinstate:         true,
	EventMispick:           true,
	EventSLOBurn:           true,
}

// Event is one structured decision record. Fields beyond Type are
// optional and flat — no nested maps — so emitting an event copies a
// fixed-size value and allocates nothing, keeping Emit legal on the
// zero-allocation serving path. Seq and TimeUS are stamped by Emit.
type Event struct {
	Seq    uint64  `json:"seq"`
	TimeUS int64   `json:"time_us"` // unix microseconds
	Type   string  `json:"type"`
	Tenant string  `json:"tenant,omitempty"`
	Epoch  uint64  `json:"epoch,omitempty"`   // live structural epoch at emit time
	PlanFP string  `json:"plan_fp,omitempty"` // plan-cache fingerprint of the serving plan
	Kernel string  `json:"kernel,omitempty"`
	Detail string  `json:"detail,omitempty"`
	Value  float64 `json:"value,omitempty"` // type-specific scalar (ratio, seconds, ...)
}

// EventRing keeps the most recent decision events in a fixed-capacity
// ring. The slots are the pool: Emit overwrites the oldest slot in
// place, so steady-state emission reuses a bounded set of Event values
// and the ring's memory never grows past its construction size. All
// methods are nil-safe.
type EventRing struct {
	mu   sync.Mutex
	buf  []Event
	next int
	n    int
	seq  uint64
}

// NewEventRing returns a ring holding up to capacity events.
func NewEventRing(capacity int) *EventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &EventRing{buf: make([]Event, capacity)}
}

// Emit records one event, stamping its sequence number and timestamp
// and evicting the oldest event when the ring is full. It performs no
// allocations; a nil ring drops the event.
func (r *EventRing) Emit(e Event) {
	if r == nil {
		return
	}
	now := time.Now().UnixMicro()
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	e.TimeUS = now
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Emitted returns the total number of events ever emitted. When
// Emitted() <= Cap(), nothing has been evicted and a Snapshot is the
// exact ledger; soak tests use this to decide between exact and
// sampled reconciliation against the metric counters.
func (r *EventRing) Emitted() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Cap returns the ring capacity.
func (r *EventRing) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Snapshot returns the ring's events, most recent first.
func (r *EventRing) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// MarshalJSON renders the ring as a JSON array of events, most recent
// first.
func (r *EventRing) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// ValidateEvents checks a /debug/events document against the event
// schema, mirroring what ValidateExposition does for /metrics: the
// body must be a JSON array of events whose types come from the closed
// event-type set, with positive timestamps and strictly descending
// sequence numbers (most recent first, no duplicates).
func ValidateEvents(data []byte) error {
	var evs []Event
	if err := json.Unmarshal(data, &evs); err != nil {
		return fmt.Errorf("events document is not a JSON event array: %w", err)
	}
	for i, e := range evs {
		if !eventTypes[e.Type] {
			return fmt.Errorf("event %d: unknown type %q", i, e.Type)
		}
		if e.Seq == 0 {
			return fmt.Errorf("event %d (%s): missing seq", i, e.Type)
		}
		if e.TimeUS <= 0 {
			return fmt.Errorf("event %d (%s): missing timestamp", i, e.Type)
		}
		if i > 0 && e.Seq >= evs[i-1].Seq {
			return fmt.Errorf("event %d: seq %d not descending after %d", i, e.Seq, evs[i-1].Seq)
		}
	}
	return nil
}
