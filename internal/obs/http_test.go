package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "Demo counter.").Add(2)
	ring := NewTraceRing(4)
	tr := NewTrace("spmm")
	tr.StartSpan("attempt").End()
	tr.Finish(nil)
	ring.Push(tr)
	var ready atomic.Bool
	h := NewHandler(HandlerConfig{
		Registries: []*Registry{reg},
		Traces:     ring,
		Ready:      ready.Load,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "demo_total 2") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if err := ValidateExposition(body); err != nil {
		t.Fatalf("/metrics output malformed: %v", err)
	}

	if code, body = get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ = get("/readyz"); code != 503 {
		t.Fatalf("/readyz before ready = %d, want 503", code)
	}
	ready.Store(true)
	if code, body = get("/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("/readyz = %d %q", code, body)
	}

	code, body = get("/debug/traces")
	if code != 200 {
		t.Fatalf("/debug/traces = %d", code)
	}
	var traces []TraceSnapshot
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/debug/traces not JSON: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].Op != "spmm" || len(traces[0].Spans) != 1 {
		t.Fatalf("/debug/traces = %+v", traces)
	}

	if code, _ = get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}
