package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestEventRingOrderAndEviction(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 7; i++ {
		r.Emit(Event{Type: EventPlanSwap, Epoch: uint64(i)})
	}
	if got := r.Emitted(); got != 7 {
		t.Fatalf("Emitted() = %d, want 7", got)
	}
	s := r.Snapshot()
	if len(s) != 4 {
		t.Fatalf("snapshot length = %d, want cap 4", len(s))
	}
	// Most recent first: seqs 7,6,5,4 — epochs 6,5,4,3.
	for i, e := range s {
		if want := uint64(7 - i); e.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, want)
		}
		if want := uint64(6 - i); e.Epoch != want {
			t.Fatalf("snapshot[%d].Epoch = %d, want %d", i, e.Epoch, want)
		}
		if e.TimeUS <= 0 {
			t.Fatalf("snapshot[%d] missing timestamp", i)
		}
	}
}

func TestEventRingNilSafe(t *testing.T) {
	var r *EventRing
	r.Emit(Event{Type: EventMispick})
	if r.Emitted() != 0 || r.Cap() != 0 || r.Snapshot() != nil {
		t.Fatal("nil ring must be a no-op")
	}
}

// TestEventRingBoundedUnderConcurrency hammers a small ring from many
// producers while snapshots race the writers (run with -race), and
// checks the bounded-memory property: snapshots never exceed the
// capacity, and every observed ledger is strictly seq-descending and
// schema-valid.
func TestEventRingBoundedUnderConcurrency(t *testing.T) {
	r := NewEventRing(8)
	const producers, perProducer = 8, 200
	stop := make(chan struct{})
	scraperDone := make(chan error, 1)
	go func() { // scraper racing the producers
		for {
			select {
			case <-stop:
				scraperDone <- nil
				return
			default:
			}
			if s := r.Snapshot(); len(s) > r.Cap() {
				scraperDone <- fmt.Errorf("snapshot grew past cap: %d > %d", len(s), r.Cap())
				return
			}
			b, err := json.Marshal(r)
			if err != nil {
				scraperDone <- err
				return
			}
			if err := ValidateEvents(b); err != nil {
				scraperDone <- err
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				r.Emit(Event{Type: EventBreakerTransition, Tenant: "t", Value: float64(p)})
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	if err := <-scraperDone; err != nil {
		t.Fatal(err)
	}
	if got := r.Emitted(); got != producers*perProducer {
		t.Fatalf("Emitted() = %d, want %d", got, producers*perProducer)
	}
	if s := r.Snapshot(); len(s) != r.Cap() {
		t.Fatalf("final snapshot = %d events, want %d", len(s), r.Cap())
	}
}

// TestEventJSONSchema pins the wire format of every event type: the
// exact field names dashboards key on, and omitempty behaviour for the
// optional fields.
func TestEventJSONSchema(t *testing.T) {
	r := NewEventRing(16)
	full := map[string]Event{
		EventTrialWinner:       {Type: EventTrialWinner, Tenant: "a", PlanFP: "fp1", Kernel: "csr-rowwise", Detail: "reordered", Value: 1.7},
		EventPlanSwap:          {Type: EventPlanSwap, Tenant: "a", Epoch: 3, PlanFP: "fp2", Kernel: "aspt-tiled"},
		EventOverlayDegraded:   {Type: EventOverlayDegraded, Tenant: "a", Epoch: 3, Detail: "budget exceeded"},
		EventBreakerTransition: {Type: EventBreakerTransition, Detail: "closed->open"},
		EventQuarantine:        {Type: EventQuarantine, Tenant: "a", Epoch: 4, Detail: "row 7 mismatch"},
		EventReinstate:         {Type: EventReinstate, Tenant: "a", Epoch: 5},
		EventMispick:           {Type: EventMispick, Tenant: "a", PlanFP: "fp2", Kernel: "ell", Detail: "serving cost/flop exceeded trial loser", Value: 1.4},
		EventSLOBurn:           {Type: EventSLOBurn, Tenant: "a", Detail: "error budget burning", Value: 2.5},
	}
	for _, e := range full {
		r.Emit(e)
	}
	body, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateEvents(body); err != nil {
		t.Fatalf("ring document invalid: %v\n%s", err, body)
	}
	var docs []map[string]any
	if err := json.Unmarshal(body, &docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(full) {
		t.Fatalf("got %d events, want %d", len(docs), len(full))
	}
	for _, d := range docs {
		typ, _ := d["type"].(string)
		want := full[typ]
		// Required stamps on every event.
		for _, key := range []string{"seq", "time_us", "type"} {
			if _, ok := d[key]; !ok {
				t.Fatalf("%s: missing required field %q: %v", typ, key, d)
			}
		}
		// Optional fields appear exactly when set — no empty strings or
		// zeros leaking into the document.
		optional := map[string]bool{
			"tenant":  want.Tenant != "",
			"epoch":   want.Epoch != 0,
			"plan_fp": want.PlanFP != "",
			"kernel":  want.Kernel != "",
			"detail":  want.Detail != "",
			"value":   want.Value != 0,
		}
		for key, wantPresent := range optional {
			if _, ok := d[key]; ok != wantPresent {
				t.Fatalf("%s: field %q present=%v, want %v: %v", typ, key, ok, wantPresent, d)
			}
		}
		// And nothing beyond the schema.
		for key := range d {
			switch key {
			case "seq", "time_us", "type", "tenant", "epoch", "plan_fp", "kernel", "detail", "value":
			default:
				t.Fatalf("%s: unexpected field %q", typ, key)
			}
		}
	}
}

func TestValidateEventsRejects(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"not an array", `{"seq":1}`, "not a JSON event array"},
		{"unknown type", `[{"seq":1,"time_us":5,"type":"mystery"}]`, "unknown type"},
		{"zero seq", `[{"seq":0,"time_us":5,"type":"plan_swap"}]`, "missing seq"},
		{"zero time", `[{"seq":1,"type":"plan_swap"}]`, "missing timestamp"},
		{"ascending seq", `[{"seq":1,"time_us":5,"type":"plan_swap"},{"seq":2,"time_us":5,"type":"plan_swap"}]`, "not descending"},
		{"duplicate seq", `[{"seq":2,"time_us":5,"type":"plan_swap"},{"seq":2,"time_us":5,"type":"plan_swap"}]`, "not descending"},
	}
	for _, tc := range cases {
		err := ValidateEvents([]byte(tc.body))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
	if err := ValidateEvents([]byte(`[]`)); err != nil {
		t.Fatalf("empty ledger must validate: %v", err)
	}
}
