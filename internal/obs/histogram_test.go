package obs

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

// TestHistogramConcurrentRecordMerge hammers one histogram from many
// goroutines while a reader merges snapshots mid-flight, then checks
// the final merged view accounts for every observation exactly. Run
// under -race this also proves Observe/Snapshot are data-race free.
func TestHistogramConcurrentRecordMerge(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	const goroutines = 8
	const perG = 20000

	// Concurrent reader: snapshots must always be internally consistent
	// even while writers race.
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var sum uint64
			for _, c := range s.Counts {
				sum += c
			}
			if sum != s.Count {
				t.Errorf("mid-flight snapshot: bucket sum %d != count %d", sum, s.Count)
				return
			}
		}
	}()

	var wantSum float64
	var mu sync.Mutex
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
			var local float64
			for i := 0; i < perG; i++ {
				v := rng.Float64() * 2 // spans most latency buckets
				local += v
				h.Observe(v)
			}
			mu.Lock()
			wantSum += local
			mu.Unlock()
		}(uint64(g + 1))
	}
	writers.Wait()
	close(stop)
	<-readerDone

	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
	if math.Abs(s.Sum-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

// TestHistogramBucketSumProperty is the property test from the issue:
// for randomized bucket layouts and observation streams, bucket counts
// always sum to the total observation count, every observation lands
// in the first bucket whose bound is >= the value, and the running sum
// matches.
func TestHistogramBucketSumProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 50; trial++ {
		nb := 1 + rng.IntN(maxBuckets-1)
		bounds := make([]float64, nb)
		v := rng.Float64()*0.01 + 1e-6
		for i := range bounds {
			bounds[i] = v
			v *= 1 + rng.Float64()*3
		}
		h := NewHistogram(bounds)
		n := 1 + rng.IntN(5000)
		want := make([]uint64, nb+1)
		var wantSum float64
		for i := 0; i < n; i++ {
			x := rng.Float64() * bounds[nb-1] * 1.5 // some beyond the last bound
			h.Observe(x)
			wantSum += x
			idx := nb // +Inf
			for b, ub := range bounds {
				if x <= ub {
					idx = b
					break
				}
			}
			want[idx]++
		}
		s := h.Snapshot()
		if s.Count != uint64(n) {
			t.Fatalf("trial %d: count %d != %d", trial, s.Count, n)
		}
		var sum uint64
		for b, c := range s.Counts {
			sum += c
			if c != want[b] {
				t.Fatalf("trial %d: bucket %d = %d, want %d", trial, b, c, want[b])
			}
		}
		if sum != s.Count {
			t.Fatalf("trial %d: bucket sum %d != count %d", trial, sum, s.Count)
		}
		if math.Abs(s.Sum-wantSum) > 1e-9*math.Max(1, wantSum) {
			t.Fatalf("trial %d: sum %v != %v", trial, s.Sum, wantSum)
		}
	}
}

func TestHistogramObserveNoAlloc(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.0042) }); n != 0 {
		t.Fatalf("Observe allocates %v times per call, want 0", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Observe(1); nilH.ObserveSince(time.Time{}) }); n != 0 {
		t.Fatalf("nil-histogram Observe allocates %v times per call, want 0", n)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	var c *Counter
	c.Inc() // nil-safe
	if c.Value() != 0 {
		t.Fatal("nil counter non-zero")
	}
	c = &Counter{}
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	var gf GaugeFloat
	gf.SetDuration(1500 * time.Millisecond)
	if got := gf.Value(); got != 1.5 {
		t.Fatalf("gauge float = %v, want 1.5", got)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); g.Add(1); gf.Set(1) }); n != 0 {
		t.Fatalf("counter/gauge ops allocate %v times per run, want 0", n)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 4)
	if want := []float64{1, 3, 5, 7}; !equalF(lin, want) {
		t.Fatalf("LinearBuckets = %v, want %v", lin, want)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if want := []float64{1, 10, 100}; !equalF(exp, want) {
		t.Fatalf("ExponentialBuckets = %v, want %v", exp, want)
	}
	// Defaults must be valid histogram config.
	NewHistogram(LatencyBuckets())
}

func equalF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
