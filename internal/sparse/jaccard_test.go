package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJaccardBasics(t *testing.T) {
	cases := []struct {
		a, b []int32
		want float64
	}{
		{[]int32{0, 4}, []int32{0, 3, 4}, 2.0 / 3.0}, // the paper's §3.2 example
		{[]int32{1, 2}, []int32{1, 2}, 1},
		{[]int32{1}, []int32{2}, 0},
		{nil, nil, 0},
		{[]int32{1}, nil, 0},
		{[]int32{0, 1, 2, 3}, []int32{2, 3, 4, 5}, 2.0 / 6.0},
	}
	for _, tc := range cases {
		if got := Jaccard(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestIntersectionUnion(t *testing.T) {
	a := []int32{1, 3, 5, 7}
	b := []int32{3, 4, 5, 8, 9}
	if got := IntersectionSize(a, b); got != 2 {
		t.Errorf("IntersectionSize = %d, want 2", got)
	}
	if got := UnionSize(a, b); got != 7 {
		t.Errorf("UnionSize = %d, want 7", got)
	}
}

func TestAvgConsecutiveSimilarity(t *testing.T) {
	// The Fig 7a well-clustered matrix: identical rows in runs of three.
	// J between rows inside a run is 1; across runs it is 0, giving the
	// paper's average of (1+1+0+1+1)/5 = 0.8.
	rows := [][]int32{{0, 1}, {0, 1}, {0, 1}, {4, 5}, {4, 5}, {4, 5}}
	m := mustFromRows(t, 6, 6, rows)
	if got := AvgConsecutiveSimilarity(m); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("AvgConsecutiveSimilarity = %v, want 0.8", got)
	}
}

func TestAvgConsecutiveSimilarityDegenerate(t *testing.T) {
	if got := AvgConsecutiveSimilarity(mustFromRows(t, 1, 3, [][]int32{{0}})); got != 0 {
		t.Errorf("single row: got %v", got)
	}
	var m CSR
	m.RowPtr = []int32{0}
	if got := AvgConsecutiveSimilarity(&m); got != 0 {
		t.Errorf("empty: got %v", got)
	}
}

func TestAvgConsecutiveSimilaritySampled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomCSR(rng, 200, 50, 8)
	exact := AvgConsecutiveSimilarity(m)
	if got := AvgConsecutiveSimilaritySampled(m, 0); got != exact {
		t.Errorf("maxPairs=0 should be exact: %v vs %v", got, exact)
	}
	if got := AvgConsecutiveSimilaritySampled(m, m.Rows*2); got != exact {
		t.Errorf("maxPairs>pairs should be exact: %v vs %v", got, exact)
	}
	// Sampled estimate should be in [0, 1] and in the vicinity of exact.
	got := AvgConsecutiveSimilaritySampled(m, 50)
	if got < 0 || got > 1 {
		t.Fatalf("sampled similarity out of range: %v", got)
	}
	if math.Abs(got-exact) > 0.25 {
		t.Errorf("sampled %v too far from exact %v", got, exact)
	}
}

// Property: Jaccard is symmetric, bounded to [0,1], and 1 iff equal
// non-empty sets.
func TestPropertyJaccard(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 12, 12, 6)
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Rows; j++ {
				s := RowJaccard(m, i, j)
				if s != RowJaccard(m, j, i) || s < 0 || s > 1 {
					return false
				}
				if i == j && m.RowLen(i) > 0 && s != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
