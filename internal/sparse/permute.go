package sparse

import (
	"context"
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/par"
)

// IsPermutation reports whether perm is a valid permutation of [0, n).
func IsPermutation(perm []int32, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// InversePermutation returns inv such that inv[perm[i]] = i.
// It panics if perm is not a permutation (programming error).
func InversePermutation(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for i := range inv {
		inv[i] = -1
	}
	for i, p := range perm {
		if p < 0 || int(p) >= len(perm) || inv[p] != -1 {
			panic(fmt.Sprintf("sparse: not a permutation at position %d (value %d)", i, p))
		}
		inv[p] = int32(i)
	}
	return inv
}

// IdentityPermutation returns [0, 1, ..., n-1].
func IdentityPermutation(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}

// ComposePermutations returns the permutation that applies first then
// second: out[i] = first[second[i]]. With the PermuteRows convention below
// (perm[i] = source row of new row i), PermuteRows(PermuteRows(m, a), b)
// equals PermuteRows(m, ComposePermutations(a, b)).
func ComposePermutations(first, second []int32) []int32 {
	if len(first) != len(second) {
		panic("sparse: composing permutations of different lengths")
	}
	out := make([]int32, len(first))
	for i, s := range second {
		out[i] = first[s]
	}
	return out
}

// PermuteRows returns a new matrix whose row i is row perm[i] of m.
// That is, perm maps destination position -> source row, which is the
// natural output shape of the clustering algorithm ("emit rows in this
// order"). It returns an error if perm is not a permutation of m's rows.
func PermuteRows(m *CSR, perm []int32) (*CSR, error) {
	return PermuteRowsWorkers(m, perm, 0)
}

// PermuteRowsWorkers is PermuteRows with an explicit parallelism bound
// (0 = GOMAXPROCS). The destination offset of every row is fixed by a
// serial O(rows) prefix sum, after which workers gather disjoint
// destination row blocks — the result is bit-identical for every worker
// count.
func PermuteRowsWorkers(m *CSR, perm []int32, workers int) (*CSR, error) {
	return PermuteRowsCtx(context.Background(), m, perm, workers)
}

// PermuteRowsCtx is PermuteRowsWorkers with cooperative cancellation:
// workers observe ctx between row blocks, and a worker panic surfaces
// as a *par.PanicError instead of crashing the process.
func PermuteRowsCtx(ctx context.Context, m *CSR, perm []int32, workers int) (*CSR, error) {
	if !IsPermutation(perm, m.Rows) {
		return nil, fmt.Errorf("%w: row permutation invalid for %d rows", ErrInvalid, m.Rows)
	}
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int32, m.Rows+1),
		ColIdx: make([]int32, m.NNZ()),
		Val:    make([]float32, m.NNZ()),
	}
	pos := int32(0)
	for i, src := range perm {
		pos += m.RowPtr[src+1] - m.RowPtr[src]
		out.RowPtr[i+1] = pos
	}
	// Gather in fixed row blocks so tiny matrices stay on one goroutine
	// and skewed rows load-balance dynamically on large ones.
	const rowBlock = 4 << 10
	if m.NNZ() < 32<<10 {
		workers = 1
	}
	err := par.ForChunksCtx(ctx, m.Rows, rowBlock, workers, func(lo, hi int) error {
		if err := faultinject.Fire("sparse.permute"); err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			src := perm[i]
			dst := out.RowPtr[i]
			copy(out.ColIdx[dst:out.RowPtr[i+1]], m.RowCols(int(src)))
			copy(out.Val[dst:out.RowPtr[i+1]], m.RowVals(int(src)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PermuteCols returns a new matrix whose column perm^-1[c]... precisely:
// new column j holds old column perm[j], mirroring PermuteRows. Column
// indices within each row are re-sorted.
func PermuteCols(m *CSR, perm []int32) (*CSR, error) {
	if !IsPermutation(perm, m.Cols) {
		return nil, fmt.Errorf("%w: column permutation invalid for %d cols", ErrInvalid, m.Cols)
	}
	inv := InversePermutation(perm)
	out := m.Clone()
	for j, c := range out.ColIdx {
		out.ColIdx[j] = inv[c]
	}
	if err := out.SortRows(); err != nil {
		return nil, err
	}
	return out, nil
}

// PermuteSymmetric applies the same permutation to rows and columns,
// which is what vertex reordering (e.g. the METIS baseline) does to an
// adjacency matrix.
func PermuteSymmetric(m *CSR, perm []int32) (*CSR, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("%w: symmetric permutation needs a square matrix, got %dx%d",
			ErrInvalid, m.Rows, m.Cols)
	}
	rp, err := PermuteRows(m, perm)
	if err != nil {
		return nil, err
	}
	return PermuteCols(rp, perm)
}

// SelectRows extracts the submatrix consisting of the given rows (in the
// given order, duplicates allowed — useful for mini-batch sampling in
// GNN-style training loops). Column space is unchanged.
func SelectRows(m *CSR, rows []int32) (*CSR, error) {
	nnz := 0
	for _, r := range rows {
		if r < 0 || int(r) >= m.Rows {
			return nil, fmt.Errorf("%w: selected row %d out of range [0,%d)", ErrInvalid, r, m.Rows)
		}
		nnz += m.RowLen(int(r))
	}
	out := &CSR{
		Rows:   len(rows),
		Cols:   m.Cols,
		RowPtr: make([]int32, len(rows)+1),
		ColIdx: make([]int32, 0, nnz),
		Val:    make([]float32, 0, nnz),
	}
	for i, r := range rows {
		out.ColIdx = append(out.ColIdx, m.RowCols(int(r))...)
		out.Val = append(out.Val, m.RowVals(int(r))...)
		out.RowPtr[i+1] = int32(len(out.ColIdx))
	}
	return out, nil
}

// Transpose returns mᵀ in CSR form (equivalently, m in CSC form).
func Transpose(m *CSR) *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int32, m.Cols+1),
		ColIdx: make([]int32, m.NNZ()),
		Val:    make([]float32, m.NNZ()),
	}
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	cursor := make([]int32, m.Cols)
	copy(cursor, t.RowPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.RowCols(i), m.RowVals(i)
		for j, c := range cols {
			p := cursor[c]
			t.ColIdx[p] = int32(i)
			t.Val[p] = vals[j]
			cursor[c] = p + 1
		}
	}
	return t
}

// ColCounts returns, for each column, the number of nonzeros in it.
func (m *CSR) ColCounts() []int32 {
	counts := make([]int32, m.Cols)
	for _, c := range m.ColIdx {
		counts[c]++
	}
	return counts
}
