package sparse_test

import (
	"fmt"
	"strings"

	"repro/internal/sparse"
)

// ExampleFromRows builds the paper's Fig 1a worked-example matrix and
// walks the CSR arrays exactly as §2.1 does: rowptr[1] = 2 says row 1
// starts at colidx[2].
func ExampleFromRows() {
	m, err := sparse.FromRows(6, 6, [][]int32{
		{0, 4}, {1, 5}, {2, 4}, {1}, {0, 3, 4}, {2, 5},
	}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("rowptr[1] =", m.RowPtr[1])
	fmt.Println("row 1 columns:", m.RowCols(1))
	fmt.Println("nnz:", m.NNZ())
	// Output:
	// rowptr[1] = 2
	// row 1 columns: [1 5]
	// nnz: 12
}

// ExampleJaccard reproduces the §3.2 similarity computation:
// J({0,4}, {0,3,4}) = 2/3.
func ExampleJaccard() {
	s0 := []int32{0, 4}
	s4 := []int32{0, 3, 4}
	fmt.Printf("%.4f\n", sparse.Jaccard(s0, s4))
	// Output: 0.6667
}

// ExamplePermuteRows applies the Fig 6 clustering order to the example
// matrix: new row 1 is original row 2.
func ExamplePermuteRows() {
	m, _ := sparse.FromRows(6, 6, [][]int32{
		{0, 4}, {1, 5}, {2, 4}, {1}, {0, 3, 4}, {2, 5},
	}, nil)
	rm, err := sparse.PermuteRows(m, []int32{0, 2, 4, 1, 3, 5})
	if err != nil {
		panic(err)
	}
	fmt.Println("new row 1 columns:", rm.RowCols(1))
	// Output: new row 1 columns: [2 4]
}

// ExampleReadMTX parses a tiny Matrix Market stream.
func ExampleReadMTX() {
	in := `%%MatrixMarket matrix coordinate real general
2 2 2
1 1 3.5
2 2 -1
`
	m, err := sparse.ReadMTX(strings.NewReader(in))
	if err != nil {
		panic(err)
	}
	fmt.Println(m)
	// Output: CSR(2x2, nnz=2)
}
