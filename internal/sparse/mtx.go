package sparse

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Matrix Market exchange format support (the format SuiteSparse and the
// Network Repository distribute matrices in), so real collection matrices
// can be dropped into the pipeline alongside the synthetic corpus.
//
// Supported header: "%%MatrixMarket matrix coordinate <field> <symmetry>"
// with field in {real, integer, pattern} and symmetry in {general,
// symmetric, skew-symmetric}. Array (dense) and complex matrices are
// rejected with a descriptive error.

// ErrMTX is wrapped by all Matrix Market parse failures.
var ErrMTX = errors.New("matrix market")

// ReadMTX parses a Matrix Market stream into a CSR matrix. Symmetric and
// skew-symmetric inputs are expanded to general form. Pattern matrices get
// value 1 for every stored entry.
func ReadMTX(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)

	header, err := readNonEmptyLine(br)
	if err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrMTX, err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) != 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, fmt.Errorf("%w: bad header %q", ErrMTX, header)
	}
	format, field, symmetry := fields[2], fields[3], fields[4]
	if format != "coordinate" {
		return nil, fmt.Errorf("%w: unsupported format %q (only coordinate)", ErrMTX, format)
	}
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("%w: unsupported field %q", ErrMTX, field)
	}
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("%w: unsupported symmetry %q", ErrMTX, symmetry)
	}

	// Skip comments, read size line.
	line, err := readDataLine(br)
	if err != nil {
		return nil, fmt.Errorf("%w: missing size line: %v", ErrMTX, err)
	}
	var rows, cols, nnz int
	if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
		return nil, fmt.Errorf("%w: bad size line %q: %v", ErrMTX, line, err)
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("%w: negative size in %q", ErrMTX, line)
	}
	// Guard allocation against hostile headers: a declared dimension
	// needs RowPtr storage up front, so bound it well above any matrix
	// this library targets (int32 column indices cap the usable range
	// anyway).
	const maxDim = 1 << 28
	if rows > maxDim || cols > maxDim {
		return nil, fmt.Errorf("%w: dimensions %dx%d exceed the supported maximum %d",
			ErrMTX, rows, cols, maxDim)
	}
	if nnz > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %d entries overflow int32 row pointers", ErrMTX, nnz)
	}
	// The declared count sizes the preallocation, so cap what a 3-line
	// hostile header can reserve; genuinely large streams grow by append.
	preallocate := nnz
	if preallocate > 1<<24 {
		preallocate = 1 << 24
	}

	coo := NewCOO(rows, cols)
	coo.Entries = make([]Entry, 0, preallocate)
	for k := 0; k < nnz; k++ {
		line, err := readDataLine(br)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d/%d: %v", ErrMTX, k+1, nnz, err)
		}
		toks := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(toks) < want {
			return nil, fmt.Errorf("%w: entry %d: short line %q", ErrMTX, k+1, line)
		}
		i, err := strconv.Atoi(toks[0])
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d: bad row %q", ErrMTX, k+1, toks[0])
		}
		j, err := strconv.Atoi(toks[1])
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d: bad col %q", ErrMTX, k+1, toks[1])
		}
		v := 1.0
		if field != "pattern" {
			v, err = strconv.ParseFloat(toks[2], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: entry %d: bad value %q", ErrMTX, k+1, toks[2])
			}
			// Serving-grade ingestion: a NaN/Inf nonzero silently
			// poisons every output row it touches downstream, so reject
			// it here with the offending entry named (FiniteOnly
			// policy). The check runs on the stored float32, catching
			// finite float64 inputs that overflow to Inf on conversion.
			if math.IsNaN(v) || math.IsInf(float64(float32(v)), 0) {
				return nil, fmt.Errorf("%w: entry %d: non-finite value %q", ErrMTX, k+1, toks[2])
			}
		}
		// Matrix Market is 1-based.
		i--
		j--
		if i < 0 || i >= rows || j < 0 || j >= cols {
			return nil, fmt.Errorf("%w: entry %d: index (%d,%d) out of range %dx%d",
				ErrMTX, k+1, i+1, j+1, rows, cols)
		}
		coo.Add(i, j, float32(v))
		if i != j {
			switch symmetry {
			case "symmetric":
				coo.Add(j, i, float32(v))
			case "skew-symmetric":
				coo.Add(j, i, float32(-v))
			}
		}
	}
	return coo.ToCSR()
}

// ReadMTXFile reads a Matrix Market file from disk.
func ReadMTXFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := ReadMTX(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// WriteMTX writes m as a general real coordinate Matrix Market stream.
func WriteMTX(w io.Writer, m *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.RowCols(i), m.RowVals(i)
		for j := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", i+1, cols[j]+1, vals[j]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteMTXFile writes m to a Matrix Market file on disk.
func WriteMTXFile(path string, m *CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteMTX(f, m); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

func readNonEmptyLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		line = strings.TrimSpace(line)
		if line != "" {
			return line, nil
		}
		if err != nil {
			return "", err
		}
	}
}

// readDataLine returns the next line that is neither blank nor a comment.
func readDataLine(br *bufio.Reader) (string, error) {
	for {
		line, err := br.ReadString('\n')
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && !strings.HasPrefix(trimmed, "%") {
			return trimmed, nil
		}
		if err != nil {
			if err == io.EOF && trimmed != "" && !strings.HasPrefix(trimmed, "%") {
				return trimmed, nil
			}
			return "", err
		}
	}
}
