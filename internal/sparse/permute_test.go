package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPerm(rng *rand.Rand, n int) []int32 {
	p := IdentityPermutation(n)
	rng.Shuffle(n, func(a, b int) { p[a], p[b] = p[b], p[a] })
	return p
}

func TestIsPermutation(t *testing.T) {
	cases := []struct {
		perm []int32
		n    int
		want bool
	}{
		{[]int32{0, 1, 2}, 3, true},
		{[]int32{2, 0, 1}, 3, true},
		{[]int32{0, 0, 2}, 3, false},
		{[]int32{0, 1}, 3, false},
		{[]int32{0, 1, 3}, 3, false},
		{[]int32{-1, 1, 2}, 3, false},
		{nil, 0, true},
	}
	for _, tc := range cases {
		if got := IsPermutation(tc.perm, tc.n); got != tc.want {
			t.Errorf("IsPermutation(%v, %d) = %v, want %v", tc.perm, tc.n, got, tc.want)
		}
	}
}

func TestInversePermutation(t *testing.T) {
	p := []int32{2, 0, 3, 1}
	inv := InversePermutation(p)
	for i, v := range p {
		if inv[v] != int32(i) {
			t.Fatalf("inv[%d] = %d, want %d", v, inv[v], i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("InversePermutation accepted a non-permutation")
		}
	}()
	InversePermutation([]int32{0, 0})
}

func TestPermuteRowsBasic(t *testing.T) {
	m := mustFromRows(t, 3, 3, [][]int32{{0}, {1}, {2}})
	p, err := PermuteRows(m, []int32{2, 0, 1})
	if err != nil {
		t.Fatalf("PermuteRows: %v", err)
	}
	// New row 0 is old row 2.
	if cols := p.RowCols(0); len(cols) != 1 || cols[0] != 2 {
		t.Fatalf("row 0 = %v, want [2]", cols)
	}
	if cols := p.RowCols(1); cols[0] != 0 {
		t.Fatalf("row 1 = %v, want [0]", cols)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("permuted invalid: %v", err)
	}
}

func TestPermuteRowsRejectsBadPerm(t *testing.T) {
	m := mustFromRows(t, 2, 2, [][]int32{{0}, {1}})
	if _, err := PermuteRows(m, []int32{0, 0}); err == nil {
		t.Fatalf("accepted non-permutation")
	}
	if _, err := PermuteRows(m, []int32{0}); err == nil {
		t.Fatalf("accepted short permutation")
	}
}

func TestPermuteColsBasic(t *testing.T) {
	m := mustFromRows(t, 1, 3, [][]int32{{0, 2}})
	m.Val[0], m.Val[1] = 10, 30
	// New column j holds old column perm[j]: perm [2,1,0] reverses.
	p, err := PermuteCols(m, []int32{2, 1, 0})
	if err != nil {
		t.Fatalf("PermuteCols: %v", err)
	}
	cols, vals := p.RowCols(0), p.RowVals(0)
	if cols[0] != 0 || cols[1] != 2 {
		t.Fatalf("cols = %v", cols)
	}
	// Old col 2 (val 30) is now col 0; old col 0 (val 10) now col 2.
	if vals[0] != 30 || vals[1] != 10 {
		t.Fatalf("vals = %v, want [30 10]", vals)
	}
}

func TestPermuteSymmetricRequiresSquare(t *testing.T) {
	m := mustFromRows(t, 2, 3, [][]int32{{0}, {1}})
	if _, err := PermuteSymmetric(m, []int32{1, 0}); err == nil {
		t.Fatalf("accepted non-square matrix")
	}
}

func TestTransposeSmall(t *testing.T) {
	m := mustFromRows(t, 2, 3, [][]int32{{0, 2}, {1}})
	m.Val[0], m.Val[1], m.Val[2] = 1, 2, 3
	tr := Transpose(m)
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("transpose invalid: %v", err)
	}
	if cols := tr.RowCols(2); len(cols) != 1 || cols[0] != 0 || tr.RowVals(2)[0] != 2 {
		t.Fatalf("transpose row 2 wrong: %v %v", cols, tr.RowVals(2))
	}
}

func TestColCounts(t *testing.T) {
	m := mustFromRows(t, 3, 3, [][]int32{{0, 1}, {1}, {1, 2}})
	got := m.ColCounts()
	want := []int32{1, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ColCounts = %v, want %v", got, want)
		}
	}
}

func TestSelectRows(t *testing.T) {
	m := mustFromRows(t, 4, 5, [][]int32{{0, 4}, {}, {1, 2}, {3}})
	m.Val[0] = 7
	sub, err := SelectRows(m, []int32{2, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.Rows != 3 || sub.Cols != 5 || sub.NNZ() != 6 {
		t.Fatalf("shape %s", sub)
	}
	if cols := sub.RowCols(0); len(cols) != 2 || cols[0] != 1 {
		t.Fatalf("row 0 = %v", cols)
	}
	// Duplicated selection copies values.
	if sub.RowVals(1)[0] != 7 || sub.RowVals(2)[0] != 7 {
		t.Fatalf("duplicate rows not copied")
	}
	if _, err := SelectRows(m, []int32{4}); err == nil {
		t.Fatalf("out-of-range selection accepted")
	}
	if _, err := SelectRows(m, []int32{-1}); err == nil {
		t.Fatalf("negative selection accepted")
	}
	empty, err := SelectRows(m, nil)
	if err != nil || empty.Rows != 0 {
		t.Fatalf("empty selection: %v %v", empty, err)
	}
}

// Property: permuting rows by p then by inverse(p) restores the matrix.
func TestPropertyPermuteRowsInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 24, 16, 6)
		p := randomPerm(rng, m.Rows)
		pm, err := PermuteRows(m, p)
		if err != nil {
			return false
		}
		back, err := PermuteRows(pm, InversePermutation(p))
		if err != nil {
			return false
		}
		return back.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: double transpose is the identity.
func TestPropertyTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 16, 24, 6)
		return Transpose(Transpose(m)).Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose preserves nnz and swaps row/col counts.
func TestPropertyTransposeCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 16, 24, 6)
		tr := Transpose(m)
		if tr.NNZ() != m.NNZ() || tr.Rows != m.Cols || tr.Cols != m.Rows {
			return false
		}
		tc := tr.ColCounts()
		for i := 0; i < m.Rows; i++ {
			if int(tc[i]) != m.RowLen(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ComposePermutations matches sequential PermuteRows.
func TestPropertyComposePermutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 20, 10, 5)
		a := randomPerm(rng, m.Rows)
		b := randomPerm(rng, m.Rows)
		ma, err := PermuteRows(m, a)
		if err != nil {
			return false
		}
		mab, err := PermuteRows(ma, b)
		if err != nil {
			return false
		}
		mc, err := PermuteRows(m, ComposePermutations(a, b))
		if err != nil {
			return false
		}
		return mab.Equal(mc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
