package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadMTXGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 2.5
3 4 -1
2 2 7
`
	m, err := ReadMTX(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadMTX: %v", err)
	}
	if m.Rows != 3 || m.Cols != 4 || m.NNZ() != 3 {
		t.Fatalf("shape %s", m)
	}
	if v := m.RowVals(0)[0]; v != 2.5 {
		t.Fatalf("(0,0) = %v, want 2.5", v)
	}
	if v := m.RowVals(2)[0]; v != -1 {
		t.Fatalf("(2,3) = %v, want -1", v)
	}
}

func TestReadMTXPattern(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n"
	m, err := ReadMTX(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadMTX: %v", err)
	}
	if m.NNZ() != 2 || m.RowVals(0)[0] != 1 {
		t.Fatalf("pattern values wrong: %v", m.Val)
	}
}

func TestReadMTXSymmetric(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 1\n2 1 5\n3 2 7\n"
	m, err := ReadMTX(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadMTX: %v", err)
	}
	// Off-diagonals mirrored; diagonal not duplicated.
	if m.NNZ() != 5 {
		t.Fatalf("symmetric expansion nnz = %d, want 5", m.NNZ())
	}
	if v := m.RowVals(0); len(v) != 2 || v[1] != 5 {
		t.Fatalf("row 0 = %v", v)
	}
}

func TestReadMTXSkewSymmetric(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3\n"
	m, err := ReadMTX(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadMTX: %v", err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", m.NNZ())
	}
	if v := m.RowVals(0)[0]; v != -3 {
		t.Fatalf("mirrored value = %v, want -3", v)
	}
}

func TestReadMTXErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "%%MatrixMarket tensor coordinate real general\n1 1 0\n",
		"array format":    "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"complex field":   "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad symmetry":    "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
		"bad size":        "%%MatrixMarket matrix coordinate real general\nx y z\n",
		"negative size":   "%%MatrixMarket matrix coordinate real general\n-1 2 0\n",
		"missing entries": "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",
		"row overflow":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"col zero":        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 0 1\n",
		"bad value":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
		"short line":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
		"hostile dims":    "%%MatrixMarket matrix coordinate real general\n999999999 1 0\n",
	}
	for name, in := range cases {
		if _, err := ReadMTX(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted malformed input", name)
		}
	}
}

func TestReadMTXNoTrailingNewline(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 9"
	m, err := ReadMTX(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadMTX without trailing newline: %v", err)
	}
	if m.Val[0] != 9 {
		t.Fatalf("value = %v, want 9", m.Val[0])
	}
}

func TestMTXFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(rng, 20, 30, 5)
	path := t.TempDir() + "/m.mtx"
	if err := WriteMTXFile(path, m); err != nil {
		t.Fatalf("WriteMTXFile: %v", err)
	}
	back, err := ReadMTXFile(path)
	if err != nil {
		t.Fatalf("ReadMTXFile: %v", err)
	}
	if !m.SameStructure(back) {
		t.Fatalf("structure changed through file round-trip")
	}
}

func TestReadMTXFileMissing(t *testing.T) {
	if _, err := ReadMTXFile(t.TempDir() + "/nope.mtx"); err == nil {
		t.Fatalf("missing file accepted")
	}
}

// Property: write-then-read preserves structure and values to float32
// formatting precision.
func TestPropertyMTXRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 16, 16, 5)
		var buf bytes.Buffer
		if err := WriteMTX(&buf, m); err != nil {
			return false
		}
		back, err := ReadMTX(&buf)
		if err != nil {
			return false
		}
		if !m.SameStructure(back) {
			return false
		}
		for j := range m.Val {
			if m.Val[j] != back.Val[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadMTXTestdataFixtures(t *testing.T) {
	m, err := ReadMTXFile("testdata/paperfig1a.mtx")
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 6 || m.NNZ() != 12 {
		t.Fatalf("fig1a fixture: %v", m)
	}
	// Row 4 (0-based) is {0, 3, 4} — the S4 of the worked example.
	cols := m.RowCols(4)
	if len(cols) != 3 || cols[0] != 0 || cols[1] != 3 || cols[2] != 4 {
		t.Fatalf("row 4 = %v", cols)
	}
	s, err := ReadMTXFile("testdata/symm4.mtx")
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric expansion: 2 diagonals + 2 mirrored off-diagonals.
	if s.NNZ() != 6 {
		t.Fatalf("symm fixture nnz = %d, want 6", s.NNZ())
	}
	if v := s.RowVals(0); len(v) != 2 || v[1] != -1 {
		t.Fatalf("row 0 = %v", v)
	}
}
