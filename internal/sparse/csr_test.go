package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mustFromRows builds a CSR matrix or fails the test.
func mustFromRows(t *testing.T, rows, cols int, colIdx [][]int32) *CSR {
	t.Helper()
	m, err := FromRows(rows, cols, colIdx, nil)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return m
}

// randomCSR generates a valid random matrix for property tests.
func randomCSR(rng *rand.Rand, maxRows, maxCols, maxPerRow int) *CSR {
	rows := 1 + rng.Intn(maxRows)
	cols := 1 + rng.Intn(maxCols)
	sets := make([][]int32, rows)
	for i := range sets {
		n := rng.Intn(maxPerRow + 1)
		if n > cols {
			n = cols
		}
		seen := map[int32]bool{}
		for len(seen) < n {
			seen[int32(rng.Intn(cols))] = true
		}
		for c := range seen {
			sets[i] = append(sets[i], c)
		}
	}
	m, err := FromRows(rows, cols, sets, nil)
	if err != nil {
		panic(err)
	}
	// Randomise values.
	for j := range m.Val {
		m.Val[j] = rng.Float32()*2 - 1
	}
	return m
}

func TestCSREmpty(t *testing.T) {
	var m CSR
	m.RowPtr = []int32{0}
	if err := m.Validate(); err != nil {
		t.Fatalf("empty matrix should validate: %v", err)
	}
	if m.NNZ() != 0 || m.Density() != 0 || m.MaxRowLen() != 0 {
		t.Fatalf("empty matrix has nonzero stats")
	}
}

func TestCSRAccessors(t *testing.T) {
	m := mustFromRows(t, 3, 5, [][]int32{{0, 4}, {}, {1, 2, 3}})
	if m.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5", m.NNZ())
	}
	if got := m.RowLen(0); got != 2 {
		t.Errorf("RowLen(0) = %d, want 2", got)
	}
	if got := m.RowLen(1); got != 0 {
		t.Errorf("RowLen(1) = %d, want 0", got)
	}
	if got := m.MaxRowLen(); got != 3 {
		t.Errorf("MaxRowLen = %d, want 3", got)
	}
	cols := m.RowCols(2)
	if len(cols) != 3 || cols[0] != 1 || cols[2] != 3 {
		t.Errorf("RowCols(2) = %v", cols)
	}
	if d := m.Density(); d != 5.0/15.0 {
		t.Errorf("Density = %v", d)
	}
}

func TestCSRRowPtrSemantics(t *testing.T) {
	// The paper's Fig 1b walk-through: rowptr[1]=2 means row 1 starts at
	// colidx[2].
	m := mustFromRows(t, 2, 6, [][]int32{{0, 4}, {1, 3, 5}})
	if m.RowPtr[1] != 2 {
		t.Fatalf("RowPtr[1] = %d, want 2", m.RowPtr[1])
	}
	if m.ColIdx[m.RowPtr[1]] != 1 {
		t.Fatalf("first col of row 1 = %d, want 1", m.ColIdx[m.RowPtr[1]])
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *CSR {
		return mustFromRows(t, 2, 4, [][]int32{{0, 2}, {1, 3}})
	}
	cases := []struct {
		name   string
		mutate func(*CSR)
	}{
		{"negative rows", func(m *CSR) { m.Rows = -1 }},
		{"rowptr length", func(m *CSR) { m.RowPtr = m.RowPtr[:2] }},
		{"rowptr first", func(m *CSR) { m.RowPtr[0] = 1 }},
		{"rowptr decreasing", func(m *CSR) { m.RowPtr[1] = 3; m.RowPtr[2] = 2 }},
		{"rowptr total", func(m *CSR) { m.RowPtr[2] = 3 }},
		{"col out of range", func(m *CSR) { m.ColIdx[0] = 99 }},
		{"col negative", func(m *CSR) { m.ColIdx[0] = -1 }},
		{"cols unsorted", func(m *CSR) { m.ColIdx[0], m.ColIdx[1] = m.ColIdx[1], m.ColIdx[0] }},
		{"dup col", func(m *CSR) { m.ColIdx[1] = m.ColIdx[0] }},
		{"val length", func(m *CSR) { m.Val = m.Val[:3] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := fresh()
			tc.mutate(m)
			if err := m.Validate(); err == nil {
				t.Fatalf("Validate accepted corrupted matrix (%s)", tc.name)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := mustFromRows(t, 2, 4, [][]int32{{0, 2}, {1}})
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatalf("clone not equal")
	}
	c.Val[0] = 42
	c.ColIdx[0] = 3
	if m.Val[0] == 42 || m.ColIdx[0] == 3 {
		t.Fatalf("clone shares storage with original")
	}
	if m.Equal(c) {
		t.Fatalf("Equal missed value difference")
	}
}

func TestSameStructureIgnoresValues(t *testing.T) {
	m := mustFromRows(t, 2, 4, [][]int32{{0, 2}, {1}})
	c := m.Clone()
	c.Val[0] = 42
	if !m.SameStructure(c) {
		t.Fatalf("SameStructure should ignore values")
	}
	c.ColIdx[0] = 1
	if m.SameStructure(c) {
		t.Fatalf("SameStructure missed column difference")
	}
}

func TestSortRowsRejectsDuplicates(t *testing.T) {
	m := &CSR{
		Rows: 1, Cols: 4,
		RowPtr: []int32{0, 2},
		ColIdx: []int32{2, 2},
		Val:    []float32{1, 2},
	}
	if err := m.SortRows(); err == nil {
		t.Fatalf("SortRows accepted duplicate columns")
	}
}

func TestSortRowsSorts(t *testing.T) {
	m := &CSR{
		Rows: 1, Cols: 4,
		RowPtr: []int32{0, 3},
		ColIdx: []int32{3, 0, 2},
		Val:    []float32{30, 0, 20},
	}
	if err := m.SortRows(); err != nil {
		t.Fatalf("SortRows: %v", err)
	}
	if m.ColIdx[0] != 0 || m.ColIdx[1] != 2 || m.ColIdx[2] != 3 {
		t.Fatalf("columns not sorted: %v", m.ColIdx)
	}
	if m.Val[0] != 0 || m.Val[1] != 20 || m.Val[2] != 30 {
		t.Fatalf("values did not follow columns: %v", m.Val)
	}
}

func TestToDense(t *testing.T) {
	m := mustFromRows(t, 2, 3, [][]int32{{0, 2}, {1}})
	m.Val[0], m.Val[1], m.Val[2] = 1, 2, 3
	d := m.ToDense()
	want := [][]float32{{1, 0, 2}, {0, 3, 0}}
	for i := range want {
		for j := range want[i] {
			if d[i][j] != want[i][j] {
				t.Fatalf("dense[%d][%d] = %v, want %v", i, j, d[i][j], want[i][j])
			}
		}
	}
}

func TestPropertyCloneValidates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 20, 20, 8)
		c := m.Clone()
		return c.Validate() == nil && m.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
