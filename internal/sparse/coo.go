package sparse

import (
	"fmt"
	"math"
	"slices"
)

// Entry is one nonzero in coordinate (triplet) form.
type Entry struct {
	Row, Col int32
	Val      float32
}

// COO is a sparse matrix in coordinate format: an unordered bag of
// (row, col, val) triplets. It is the natural intermediate form for
// matrix construction and Matrix Market input.
type COO struct {
	Rows, Cols int
	Entries    []Entry

	// addErr records the first coordinate that could not be stored
	// losslessly (int32 overflow in Add); surfaced by ToCSR so a bad
	// bulk load fails instead of silently wrapping into a valid-looking
	// coordinate.
	addErr error
}

// NewCOO returns an empty COO matrix with the given dimensions.
func NewCOO(rows, cols int) *COO {
	return &COO{Rows: rows, Cols: cols}
}

// Add appends a triplet. Bounds are checked at ToCSR time, not here, so
// bulk loading stays cheap — except coordinates that do not fit int32,
// which would otherwise wrap into a different, possibly in-range
// position; those are recorded and reported by ToCSR.
func (c *COO) Add(row, col int, val float32) {
	r, l := int32(row), int32(col)
	if int(r) != row || int(l) != col {
		if c.addErr == nil {
			c.addErr = fmt.Errorf("%w: entry (%d,%d) overflows int32 coordinates", ErrInvalid, row, col)
		}
		return
	}
	c.Entries = append(c.Entries, Entry{Row: r, Col: l, Val: val})
}

// NNZ returns the number of stored triplets (before coalescing, duplicates
// count separately).
func (c *COO) NNZ() int { return len(c.Entries) }

// Coalesce sorts the triplets into row-major order and merges duplicates
// by summing their values (the conventional semantics for assembled
// finite-element style input). Explicit zeros produced by cancellation are
// kept, matching Matrix Market semantics.
func (c *COO) Coalesce() {
	slices.SortFunc(c.Entries, func(a, b Entry) int {
		if a.Row != b.Row {
			return int(a.Row) - int(b.Row)
		}
		return int(a.Col) - int(b.Col)
	})
	out := c.Entries[:0]
	for _, e := range c.Entries {
		if n := len(out); n > 0 && out[n-1].Row == e.Row && out[n-1].Col == e.Col {
			out[n-1].Val += e.Val
		} else {
			out = append(out, e)
		}
	}
	c.Entries = out
}

// ToCSR coalesces the triplets and converts to CSR. It returns an error if
// the dimensions are negative, any index is out of range, any Add
// overflowed, or the nonzero count exceeds the int32 RowPtr range.
func (c *COO) ToCSR() (*CSR, error) {
	if c.addErr != nil {
		return nil, c.addErr
	}
	if c.Rows < 0 || c.Cols < 0 {
		return nil, fmt.Errorf("%w: negative dimensions %dx%d", ErrInvalid, c.Rows, c.Cols)
	}
	if len(c.Entries) > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %d entries overflow int32 row pointers", ErrInvalid, len(c.Entries))
	}
	for _, e := range c.Entries {
		if e.Row < 0 || int(e.Row) >= c.Rows || e.Col < 0 || int(e.Col) >= c.Cols {
			return nil, fmt.Errorf("%w: entry (%d,%d) out of range %dx%d",
				ErrInvalid, e.Row, e.Col, c.Rows, c.Cols)
		}
	}
	c.Coalesce()
	m := &CSR{
		Rows:   c.Rows,
		Cols:   c.Cols,
		RowPtr: make([]int32, c.Rows+1),
		ColIdx: make([]int32, len(c.Entries)),
		Val:    make([]float32, len(c.Entries)),
	}
	for _, e := range c.Entries {
		m.RowPtr[e.Row+1]++
	}
	for i := 0; i < c.Rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	for j, e := range c.Entries {
		m.ColIdx[j] = e.Col
		m.Val[j] = e.Val
	}
	return m, nil
}

// FromRows builds a CSR matrix from per-row column/value lists. Columns in
// each row need not be sorted; they are sorted during construction.
// Duplicate, negative, or out-of-range columns, negative dimensions,
// and non-finite values are all rejected with descriptive
// ErrInvalid-wrapped errors.
func FromRows(rows, cols int, colIdx [][]int32, vals [][]float32) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("%w: negative dimensions %dx%d", ErrInvalid, rows, cols)
	}
	if len(colIdx) != rows {
		return nil, fmt.Errorf("%w: %d row lists for %d rows", ErrInvalid, len(colIdx), rows)
	}
	if vals != nil && len(vals) != rows {
		return nil, fmt.Errorf("%w: %d value lists for %d rows", ErrInvalid, len(vals), rows)
	}
	nnz := 0
	for _, r := range colIdx {
		nnz += len(r)
	}
	if nnz > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %d nonzeros overflow int32 row pointers", ErrInvalid, nnz)
	}
	m := &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int32, rows+1),
		ColIdx: make([]int32, 0, nnz),
		Val:    make([]float32, 0, nnz),
	}
	for i, r := range colIdx {
		m.ColIdx = append(m.ColIdx, r...)
		if vals == nil {
			for range r {
				m.Val = append(m.Val, 1)
			}
		} else {
			if len(vals[i]) != len(r) {
				return nil, fmt.Errorf("%w: row %d has %d cols but %d vals",
					ErrInvalid, i, len(r), len(vals[i]))
			}
			m.Val = append(m.Val, vals[i]...)
		}
		m.RowPtr[i+1] = int32(len(m.ColIdx))
	}
	if err := m.SortRows(); err != nil {
		return nil, err
	}
	if err := Validate(m, FiniteOnly); err != nil {
		return nil, err
	}
	return m, nil
}

// ToCOO converts a CSR matrix back to triplet form.
func (m *CSR) ToCOO() *COO {
	c := NewCOO(m.Rows, m.Cols)
	c.Entries = make([]Entry, 0, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.RowCols(i), m.RowVals(i)
		for j := range cols {
			c.Entries = append(c.Entries, Entry{Row: int32(i), Col: cols[j], Val: vals[j]})
		}
	}
	return c
}
