package sparse

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestFromRowsRejectsNonFinite(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(-1))
	for name, vals := range map[string][][]float32{
		"nan": {{1, nan}},
		"inf": {{inf, 2}},
	} {
		_, err := FromRows(1, 3, [][]int32{{0, 1}}, vals)
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: FromRows err = %v, want ErrInvalid", name, err)
		}
	}
}

func TestFromRowsErrorsWrapErrInvalid(t *testing.T) {
	for name, call := range map[string]func() (*CSR, error){
		"negative rows": func() (*CSR, error) { return FromRows(-1, 3, nil, nil) },
		"negative cols": func() (*CSR, error) { return FromRows(1, -3, [][]int32{{0}}, nil) },
		"negative col":  func() (*CSR, error) { return FromRows(1, 3, [][]int32{{-1}}, nil) },
		"col overflow":  func() (*CSR, error) { return FromRows(1, 3, [][]int32{{7}}, nil) },
	} {
		if _, err := call(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", name, err)
		}
	}
}

func TestReadMTXRejectsNonFiniteValues(t *testing.T) {
	for name, in := range map[string]string{
		"nan":          "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 nan\n",
		"inf":          "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 inf\n",
		"neg inf":      "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 -infinity\n",
		"f32 overflow": "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1e40\n",
	} {
		if _, err := ReadMTX(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted non-finite value", name)
		}
	}
}

func TestValidateValuesPolicies(t *testing.T) {
	m := &CSR{Rows: 1, Cols: 3, RowPtr: []int32{0, 3}, ColIdx: []int32{0, 1, 2},
		Val: []float32{1, float32(math.Inf(1)), 2}}
	if err := m.ValidateValues(FiniteOnly); !errors.Is(err, ErrInvalid) {
		t.Errorf("FiniteOnly accepted Inf: %v", err)
	}
	if err := m.ValidateValues(AllowInf); err != nil {
		t.Errorf("AllowInf rejected Inf: %v", err)
	}
	m.Val[1] = float32(math.NaN())
	if err := m.ValidateValues(AllowInf); !errors.Is(err, ErrInvalid) {
		t.Errorf("AllowInf accepted NaN: %v", err)
	}
	if err := m.ValidateValues(AllowAll); err != nil {
		t.Errorf("AllowAll rejected NaN: %v", err)
	}
}

func TestValidateRowPtrOverrunDoesNotPanic(t *testing.T) {
	// Regression (found by FuzzValidate): a mid-array RowPtr entry above
	// nnz panicked in RowCols before the monotonicity scan caught it.
	m := &CSR{Rows: 2, Cols: 2, RowPtr: []int32{0, 48, 2},
		ColIdx: []int32{0, 1}, Val: []float32{1, 1}}
	if err := m.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Validate = %v, want ErrInvalid", err)
	}
}

func TestCOOAddOverflowGuard(t *testing.T) {
	c := NewCOO(10, 10)
	c.Add(1<<31, 0, 1) // truncates if cast blindly to int32
	if _, err := c.ToCSR(); err == nil {
		t.Fatalf("ToCSR accepted an index that overflows int32")
	}
}
