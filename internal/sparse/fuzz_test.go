package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMTX drives the Matrix Market parser with arbitrary input: it
// must never panic, and anything it accepts must be a structurally valid
// matrix that survives a write/read round trip.
func FuzzReadMTX(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n")
	f.Add("%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 -3\n")
	f.Add("% comment only")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 nan\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n999999999 1 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadMTX(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("parser accepted invalid matrix: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMTX(&buf, m); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadMTX(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !back.SameStructure(m) {
			t.Fatalf("round trip changed structure")
		}
	})
}
