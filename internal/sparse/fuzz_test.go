package sparse

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

// FuzzReadMTX drives the Matrix Market parser with arbitrary input: it
// must never panic, and anything it accepts must be a structurally valid
// matrix that survives a write/read round trip.
func FuzzReadMTX(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n")
	f.Add("%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 -3\n")
	f.Add("% comment only")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 nan\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n999999999 1 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 inf\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1e40\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 3000000000\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadMTX(strings.NewReader(in))
		if err != nil {
			return
		}
		// Anything the parser accepts must satisfy the full serving-entry
		// contract: structural invariants AND finite values.
		if err := Validate(m, FiniteOnly); err != nil {
			t.Fatalf("parser accepted invalid matrix: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMTX(&buf, m); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadMTX(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !back.SameStructure(m) {
			t.Fatalf("round trip changed structure")
		}
	})
}

// FuzzValidate drives the full validation pass with arbitrary CSR
// field contents decoded from raw bytes: Validate must never panic on
// any input (no matter how inconsistent the arrays are), must reject
// every matrix that breaks an invariant, and everything it accepts must
// be safe to Clone and round-trip through Matrix Market.
func FuzzValidate(f *testing.F) {
	f.Add(2, 2, []byte{0, 1, 2}, []byte{0, 1}, []byte{1, 2})
	f.Add(1, 1, []byte{0, 1}, []byte{0}, []byte{255})        // value decodes non-trivially
	f.Add(2, 2, []byte{0, 2, 1}, []byte{0, 1}, []byte{1, 2}) // RowPtr decreases
	f.Add(2, 2, []byte{0, 1, 2}, []byte{5, 0}, []byte{1, 2}) // col out of range
	f.Add(-1, 3, []byte{}, []byte{}, []byte{})
	f.Add(3, 3, []byte{0}, []byte{}, []byte{})
	f.Fuzz(func(t *testing.T, rows, cols int, rowPtrB, colIdxB, valB []byte) {
		// Keep fuzzed sizes bounded so the harness stays fast.
		if rows > 1<<12 || cols > 1<<12 || len(rowPtrB) > 1<<12 {
			return
		}
		m := &CSR{Rows: rows, Cols: cols}
		m.RowPtr = make([]int32, len(rowPtrB))
		for i, b := range rowPtrB {
			m.RowPtr[i] = int32(b) // small values so offsets can be plausible
		}
		m.ColIdx = make([]int32, len(colIdxB))
		for i, b := range colIdxB {
			m.ColIdx[i] = int32(b) - 8 // shift so negatives occur
		}
		m.Val = make([]float32, len(valB))
		for i, b := range valB {
			v := float32(b) - 128
			if b == 7 {
				v = float32(math.NaN())
			}
			if b == 9 {
				v = float32(math.Inf(1))
			}
			m.Val[i] = v
		}
		err := Validate(m, FiniteOnly)
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("Validate error %v does not wrap ErrInvalid", err)
			}
			return
		}
		// Accepted: the matrix must be fully usable.
		c := m.Clone()
		if err := Validate(c, FiniteOnly); err != nil {
			t.Fatalf("clone of accepted matrix rejected: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMTX(&buf, m); err != nil {
			t.Fatalf("write of accepted matrix failed: %v", err)
		}
		if _, err := ReadMTX(&buf); err != nil {
			t.Fatalf("round trip of accepted matrix failed: %v", err)
		}
	})
}
