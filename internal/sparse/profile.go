package sparse

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// Profile summarises the structural characteristics that determine how a
// matrix responds to tiling and reordering: size, row-length
// distribution, consecutive-row similarity (the §4 indicator), and a
// bandedness measure (range locality that Jaccard similarity cannot
// see — the known blind spot of the similarity heuristics).
type Profile struct {
	Rows, Cols, NNZ int
	Density         float64

	MinRowLen, MaxRowLen int
	AvgRowLen            float64
	// RowLenCV is the coefficient of variation of row lengths (0 =
	// perfectly uniform; >1 = heavy-tailed, ELL-hostile).
	RowLenCV float64
	// RowLenP99 is the 99th-percentile row length.
	RowLenP99 int

	// AvgConsecutiveSim is the §4 well-clusteredness indicator
	// (sampled).
	AvgConsecutiveSim float64
	// Bandedness is the fraction of nonzeros within a diagonal band of
	// half-width 4·AvgRowLen (after scaling the diagonal to rectangular
	// shapes): near 1 for stencil/FEM matrices.
	Bandedness float64
	// EmptyRows counts rows with no nonzeros.
	EmptyRows int
}

// ProfileOf computes a Profile. Cost is O(nnz + sampled similarity).
func ProfileOf(m *CSR) Profile {
	p := Profile{
		Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ(),
		Density:   m.Density(),
		MinRowLen: math.MaxInt,
	}
	if m.Rows == 0 {
		p.MinRowLen = 0
		return p
	}
	lens := make([]int, m.Rows)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < m.Rows; i++ {
		l := m.RowLen(i)
		lens[i] = l
		sum += float64(l)
		sumSq += float64(l) * float64(l)
		if l < p.MinRowLen {
			p.MinRowLen = l
		}
		if l > p.MaxRowLen {
			p.MaxRowLen = l
		}
		if l == 0 {
			p.EmptyRows++
		}
	}
	p.AvgRowLen = sum / float64(m.Rows)
	variance := sumSq/float64(m.Rows) - p.AvgRowLen*p.AvgRowLen
	if variance > 0 && p.AvgRowLen > 0 {
		p.RowLenCV = math.Sqrt(variance) / p.AvgRowLen
	}
	slices.Sort(lens)
	p.RowLenP99 = lens[int(0.99*float64(m.Rows-1))]

	p.AvgConsecutiveSim = AvgConsecutiveSimilaritySampled(m, 1<<16)

	if p.NNZ > 0 {
		halfWidth := 4 * p.AvgRowLen
		if halfWidth < 1 {
			halfWidth = 1
		}
		scale := float64(m.Cols) / float64(m.Rows)
		inBand := 0
		for i := 0; i < m.Rows; i++ {
			center := float64(i) * scale
			for _, c := range m.RowCols(i) {
				if math.Abs(float64(c)-center) <= halfWidth {
					inBand++
				}
			}
		}
		p.Bandedness = float64(inBand) / float64(p.NNZ)
	}
	return p
}

// String renders the profile as an aligned multi-line report.
func (p Profile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d, nnz=%d, density=%.3g\n", p.Rows, p.Cols, p.NNZ, p.Density)
	fmt.Fprintf(&sb, "  row lengths: min=%d avg=%.1f p99=%d max=%d cv=%.2f empty=%d\n",
		p.MinRowLen, p.AvgRowLen, p.RowLenP99, p.MaxRowLen, p.RowLenCV, p.EmptyRows)
	fmt.Fprintf(&sb, "  avg consecutive similarity=%.4f bandedness=%.3f\n",
		p.AvgConsecutiveSim, p.Bandedness)
	return sb.String()
}
