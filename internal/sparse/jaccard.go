package sparse

import (
	"context"

	"repro/internal/par"
)

// Jaccard computes the Jaccard similarity |a ∩ b| / |a ∪ b| of two sorted
// int32 sets. Two empty sets have similarity 0 (the paper never compares
// empty rows; 0 keeps empty rows from being spuriously clustered).
func Jaccard(a, b []int32) float64 {
	inter := IntersectionSize(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// IntersectionSize returns |a ∩ b| for two sorted int32 sets via a linear
// merge.
func IntersectionSize(a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// UnionSize returns |a ∪ b| for two sorted int32 sets.
func UnionSize(a, b []int32) int {
	return len(a) + len(b) - IntersectionSize(a, b)
}

// RowJaccard computes the Jaccard similarity between rows i and j of m,
// treating each row as the set of its column indices (§3.2 of the paper).
func RowJaccard(m *CSR, i, j int) float64 {
	return Jaccard(m.RowCols(i), m.RowCols(j))
}

// AvgConsecutiveSimilarity computes the average Jaccard similarity between
// every pair of contiguous rows, the §4 indicator used to decide whether
// the second round of row-reordering should be skipped. A matrix with
// fewer than two rows has average similarity 0.
func AvgConsecutiveSimilarity(m *CSR) float64 {
	return AvgConsecutiveSimilarityWorkers(m, 0, 1)
}

// AvgConsecutiveSimilaritySampled is AvgConsecutiveSimilarity computed on
// at most maxPairs evenly spaced consecutive pairs, so the §4 heuristic
// stays cheap on very large matrices. maxPairs <= 0 means exact.
func AvgConsecutiveSimilaritySampled(m *CSR, maxPairs int) float64 {
	return AvgConsecutiveSimilarityWorkers(m, maxPairs, 1)
}

// simChunk fixes the accumulation-chunk size of the similarity scan.
// Partial sums are produced per chunk and combined in chunk order, so
// floating-point rounding — and therefore the result — is identical for
// every worker count (including the serial wrappers above).
const simChunk = 1 << 10

// AvgConsecutiveSimilarityWorkers is AvgConsecutiveSimilaritySampled
// with an explicit parallelism bound (workers 0 = GOMAXPROCS).
func AvgConsecutiveSimilarityWorkers(m *CSR, maxPairs, workers int) float64 {
	sim, err := AvgConsecutiveSimilarityCtx(context.Background(), m, maxPairs, workers)
	if err != nil {
		// Unreachable with a background context and panic-free scan;
		// keep the legacy wrapper's signature anyway.
		panic(err)
	}
	return sim
}

// AvgConsecutiveSimilarityCtx is the similarity scan with cooperative
// cancellation between accumulation chunks. The returned value is
// bit-identical to the serial scan for every worker count.
func AvgConsecutiveSimilarityCtx(ctx context.Context, m *CSR, maxPairs, workers int) (float64, error) {
	pairs := m.Rows - 1
	if pairs <= 0 {
		return 0, nil
	}
	sampled := pairs
	stride := 1.0
	if maxPairs > 0 && pairs > maxPairs {
		sampled = maxPairs
		stride = float64(pairs) / float64(maxPairs)
	}
	if sampled <= simChunk {
		workers = 1
	}
	nchunks := (sampled + simChunk - 1) / simChunk
	sums := make([]float64, nchunks)
	err := par.ForChunksCtx(ctx, sampled, simChunk, workers, func(lo, hi int) error {
		s := 0.0
		for k := lo; k < hi; k++ {
			i := k
			if stride != 1.0 {
				i = int(float64(k) * stride)
			}
			s += RowJaccard(m, i, i+1)
		}
		sums[lo/simChunk] = s
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return total / float64(sampled), nil
}
