package sparse

// Jaccard computes the Jaccard similarity |a ∩ b| / |a ∪ b| of two sorted
// int32 sets. Two empty sets have similarity 0 (the paper never compares
// empty rows; 0 keeps empty rows from being spuriously clustered).
func Jaccard(a, b []int32) float64 {
	inter := IntersectionSize(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// IntersectionSize returns |a ∩ b| for two sorted int32 sets via a linear
// merge.
func IntersectionSize(a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// UnionSize returns |a ∪ b| for two sorted int32 sets.
func UnionSize(a, b []int32) int {
	return len(a) + len(b) - IntersectionSize(a, b)
}

// RowJaccard computes the Jaccard similarity between rows i and j of m,
// treating each row as the set of its column indices (§3.2 of the paper).
func RowJaccard(m *CSR, i, j int) float64 {
	return Jaccard(m.RowCols(i), m.RowCols(j))
}

// AvgConsecutiveSimilarity computes the average Jaccard similarity between
// every pair of contiguous rows, the §4 indicator used to decide whether
// the second round of row-reordering should be skipped. A matrix with
// fewer than two rows has average similarity 0.
func AvgConsecutiveSimilarity(m *CSR) float64 {
	if m.Rows < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i+1 < m.Rows; i++ {
		sum += RowJaccard(m, i, i+1)
	}
	return sum / float64(m.Rows-1)
}

// AvgConsecutiveSimilaritySampled is AvgConsecutiveSimilarity computed on
// at most maxPairs evenly spaced consecutive pairs, so the §4 heuristic
// stays cheap on very large matrices. maxPairs <= 0 means exact.
func AvgConsecutiveSimilaritySampled(m *CSR, maxPairs int) float64 {
	pairs := m.Rows - 1
	if pairs <= 0 {
		return 0
	}
	if maxPairs <= 0 || pairs <= maxPairs {
		return AvgConsecutiveSimilarity(m)
	}
	stride := float64(pairs) / float64(maxPairs)
	sum := 0.0
	for k := 0; k < maxPairs; k++ {
		i := int(float64(k) * stride)
		sum += RowJaccard(m, i, i+1)
	}
	return sum / float64(maxPairs)
}
