// Package sparse provides compressed sparse matrix representations and the
// structural operations (permutation, transposition, similarity metrics,
// Matrix Market I/O) that the row-reordering pipeline is built on.
//
// The central type is CSR, the compressed-sparse-row format described in
// §2.1 of the paper: three arrays RowPtr, ColIdx, and Val, where row i's
// nonzeros occupy positions RowPtr[i] .. RowPtr[i+1]-1 of ColIdx/Val.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in compressed-sparse-row format.
//
// Invariants (checked by Validate):
//   - len(RowPtr) == Rows+1, RowPtr[0] == 0, RowPtr is non-decreasing,
//     RowPtr[Rows] == len(ColIdx) == len(Val)
//   - 0 <= ColIdx[j] < Cols for all j
//   - column indices within each row are strictly increasing (sorted,
//     no duplicates)
//
// The zero value is an empty 0×0 matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Val        []float32
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// RowLen returns the number of nonzeros stored in row i.
func (m *CSR) RowLen(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }

// RowCols returns the column indices of row i as a sub-slice of ColIdx.
// The caller must not modify the result.
func (m *CSR) RowCols(i int) []int32 { return m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]] }

// RowVals returns the values of row i as a sub-slice of Val.
// The caller must not modify the result.
func (m *CSR) RowVals(i int) []float32 { return m.Val[m.RowPtr[i]:m.RowPtr[i+1]] }

// MaxRowLen returns the number of nonzeros in the longest row
// (the d_max of the paper's LSH complexity analysis). It is 0 for an
// empty matrix.
func (m *CSR) MaxRowLen() int {
	max := 0
	for i := 0; i < m.Rows; i++ {
		if l := m.RowLen(i); l > max {
			max = l
		}
	}
	return max
}

// Clone returns a deep copy of the matrix.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int32, len(m.RowPtr)),
		ColIdx: make([]int32, len(m.ColIdx)),
		Val:    make([]float32, len(m.Val)),
	}
	copy(c.RowPtr, m.RowPtr)
	copy(c.ColIdx, m.ColIdx)
	copy(c.Val, m.Val)
	return c
}

// Equal reports whether two matrices have identical dimensions, structure,
// and values.
func (m *CSR) Equal(o *CSR) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols || m.NNZ() != o.NNZ() {
		return false
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != o.RowPtr[i] {
			return false
		}
	}
	for j := range m.ColIdx {
		if m.ColIdx[j] != o.ColIdx[j] || m.Val[j] != o.Val[j] {
			return false
		}
	}
	return true
}

// SameStructure reports whether two matrices have the same sparsity
// pattern, ignoring values.
func (m *CSR) SameStructure(o *CSR) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols || m.NNZ() != o.NNZ() {
		return false
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != o.RowPtr[i] {
			return false
		}
	}
	for j := range m.ColIdx {
		if m.ColIdx[j] != o.ColIdx[j] {
			return false
		}
	}
	return true
}

// ErrInvalid is wrapped by all structural validation failures.
var ErrInvalid = errors.New("invalid CSR matrix")

// ValuePolicy governs which floating-point values a validated matrix
// may carry. Structure checks are unconditional; the policy only
// concerns Val entries.
type ValuePolicy int

const (
	// FiniteOnly rejects NaN and ±Inf values — the serving default:
	// a single NaN nonzero silently poisons every SpMM output row it
	// touches, so ingestion is the right place to stop it.
	FiniteOnly ValuePolicy = iota
	// AllowInf rejects NaN but admits ±Inf.
	AllowInf
	// AllowAll performs no value checks.
	AllowAll
)

// ValidateValues checks m.Val against the policy and returns a
// descriptive ErrInvalid-wrapped error for the first violation.
func (m *CSR) ValidateValues(policy ValuePolicy) error {
	if policy == AllowAll {
		return nil
	}
	for j, v := range m.Val {
		f := float64(v)
		if math.IsNaN(f) {
			return fmt.Errorf("%w: NaN value at nonzero %d", ErrInvalid, j)
		}
		if policy == FiniteOnly && math.IsInf(f, 0) {
			return fmt.Errorf("%w: infinite value %v at nonzero %d", ErrInvalid, v, j)
		}
	}
	return nil
}

// Validate checks m's structural invariants and its values against the
// policy — the single validation pass enforced at every construction
// and pipeline entry point. All failures wrap ErrInvalid.
func Validate(m *CSR, policy ValuePolicy) error {
	if err := m.Validate(); err != nil {
		return err
	}
	return m.ValidateValues(policy)
}

// Validate checks all CSR structural invariants and returns a descriptive
// error for the first violation found.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("%w: negative dimensions %dx%d", ErrInvalid, m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("%w: len(RowPtr)=%d, want %d", ErrInvalid, len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("%w: RowPtr[0]=%d, want 0", ErrInvalid, m.RowPtr[0])
	}
	if len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("%w: len(ColIdx)=%d != len(Val)=%d", ErrInvalid, len(m.ColIdx), len(m.Val))
	}
	if int(m.RowPtr[m.Rows]) != len(m.ColIdx) {
		return fmt.Errorf("%w: RowPtr[%d]=%d != nnz=%d", ErrInvalid, m.Rows, m.RowPtr[m.Rows], len(m.ColIdx))
	}
	// Validate the whole RowPtr array before slicing ColIdx with it: a
	// mid-array entry above nnz (or below a predecessor) would otherwise
	// panic in RowCols before the scan reaches the offending step.
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i+1] < m.RowPtr[i] {
			return fmt.Errorf("%w: RowPtr decreases at row %d (%d -> %d)", ErrInvalid, i, m.RowPtr[i], m.RowPtr[i+1])
		}
		if int(m.RowPtr[i+1]) > len(m.ColIdx) {
			return fmt.Errorf("%w: RowPtr[%d]=%d exceeds nnz=%d", ErrInvalid, i+1, m.RowPtr[i+1], len(m.ColIdx))
		}
	}
	for i := 0; i < m.Rows; i++ {
		prev := int32(-1)
		for _, c := range m.RowCols(i) {
			if c < 0 || int(c) >= m.Cols {
				return fmt.Errorf("%w: row %d has column %d out of range [0,%d)", ErrInvalid, i, c, m.Cols)
			}
			if c <= prev {
				return fmt.Errorf("%w: row %d columns not strictly increasing at col %d", ErrInvalid, i, c)
			}
			prev = c
		}
	}
	return nil
}

// SortRows sorts the column indices (and companion values) within every
// row into increasing order. Duplicate column indices within a row are an
// error (CSR requires a coalesced matrix; use COO.Coalesce for raw input).
func (m *CSR) SortRows() error {
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		seg := rowSegment{cols: m.ColIdx[lo:hi], vals: m.Val[lo:hi]}
		sort.Sort(seg)
		for j := 1; j < len(seg.cols); j++ {
			if seg.cols[j] == seg.cols[j-1] {
				return fmt.Errorf("%w: duplicate column %d in row %d", ErrInvalid, seg.cols[j], i)
			}
		}
	}
	return nil
}

type rowSegment struct {
	cols []int32
	vals []float32
}

func (s rowSegment) Len() int           { return len(s.cols) }
func (s rowSegment) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s rowSegment) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// Density returns nnz / (rows*cols), or 0 for a degenerate matrix.
func (m *CSR) Density() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.Rows) * float64(m.Cols))
}

// String summarises the matrix without dumping its contents.
func (m *CSR) String() string {
	return fmt.Sprintf("CSR(%dx%d, nnz=%d)", m.Rows, m.Cols, m.NNZ())
}

// ToDense expands the matrix into a row-major dense [][]float32. Intended
// for tests and tiny examples only.
func (m *CSR) ToDense() [][]float32 {
	d := make([][]float32, m.Rows)
	buf := make([]float32, m.Rows*m.Cols)
	for i := range d {
		d[i] = buf[i*m.Cols : (i+1)*m.Cols]
		cols, vals := m.RowCols(i), m.RowVals(i)
		for j, c := range cols {
			d[i][c] = vals[j]
		}
	}
	return d
}
