package sparse

import (
	"math"
	"strings"
	"testing"
)

func TestProfileBasics(t *testing.T) {
	m := mustFromRows(t, 4, 4, [][]int32{{0, 1}, {}, {1, 2, 3}, {3}})
	p := ProfileOf(m)
	if p.Rows != 4 || p.Cols != 4 || p.NNZ != 6 {
		t.Fatalf("shape: %+v", p)
	}
	if p.MinRowLen != 0 || p.MaxRowLen != 3 || p.EmptyRows != 1 {
		t.Fatalf("row lengths: %+v", p)
	}
	if math.Abs(p.AvgRowLen-1.5) > 1e-12 {
		t.Fatalf("AvgRowLen = %v", p.AvgRowLen)
	}
	if p.String() == "" || !strings.Contains(p.String(), "bandedness") {
		t.Fatalf("String output broken")
	}
}

func TestProfileEmptyMatrix(t *testing.T) {
	m := &CSR{Rows: 0, Cols: 0, RowPtr: []int32{0}}
	p := ProfileOf(m)
	if p.NNZ != 0 || p.MinRowLen != 0 {
		t.Fatalf("empty profile: %+v", p)
	}
}

func TestProfileBandedness(t *testing.T) {
	// A pure diagonal matrix: bandedness 1.
	sets := make([][]int32, 64)
	for i := range sets {
		sets[i] = []int32{int32(i)}
	}
	diag := mustFromRows(t, 64, 64, sets)
	if p := ProfileOf(diag); p.Bandedness != 1 {
		t.Fatalf("diagonal bandedness = %v", p.Bandedness)
	}
	// An anti-diagonal-corner matrix: all mass far from the scaled
	// diagonal.
	sets2 := make([][]int32, 64)
	for i := range sets2 {
		if i < 32 {
			sets2[i] = []int32{63}
		} else {
			sets2[i] = []int32{0}
		}
	}
	corner := mustFromRows(t, 64, 64, sets2)
	if p := ProfileOf(corner); p.Bandedness > 0.3 {
		t.Fatalf("corner bandedness = %v", p.Bandedness)
	}
}

func TestProfileRowLenCV(t *testing.T) {
	// Uniform row lengths: CV = 0.
	sets := make([][]int32, 16)
	for i := range sets {
		sets[i] = []int32{0, 1}
	}
	u := mustFromRows(t, 16, 4, sets)
	if p := ProfileOf(u); p.RowLenCV != 0 {
		t.Fatalf("uniform CV = %v", p.RowLenCV)
	}
	// One heavy row: CV >> 0.
	sets[0] = []int32{0, 1, 2, 3}
	h := mustFromRows(t, 16, 4, sets)
	if p := ProfileOf(h); p.RowLenCV <= 0 {
		t.Fatalf("skewed CV = %v", p.RowLenCV)
	}
}
