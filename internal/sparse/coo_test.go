package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCOOToCSR(t *testing.T) {
	c := NewCOO(3, 4)
	c.Add(2, 1, 5)
	c.Add(0, 3, 1)
	c.Add(0, 0, 2)
	m, err := c.ToCSR()
	if err != nil {
		t.Fatalf("ToCSR: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("result invalid: %v", err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if cols := m.RowCols(0); len(cols) != 2 || cols[0] != 0 || cols[1] != 3 {
		t.Fatalf("row 0 cols = %v", cols)
	}
	if m.RowVals(2)[0] != 5 {
		t.Fatalf("row 2 value = %v, want 5", m.RowVals(2)[0])
	}
}

func TestCOODuplicatesSum(t *testing.T) {
	c := NewCOO(1, 2)
	c.Add(0, 1, 1.5)
	c.Add(0, 1, 2.5)
	c.Add(0, 0, 1)
	m, err := c.ToCSR()
	if err != nil {
		t.Fatalf("ToCSR: %v", err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("duplicates not merged, NNZ = %d", m.NNZ())
	}
	if v := m.RowVals(0)[1]; v != 4 {
		t.Fatalf("duplicate sum = %v, want 4", v)
	}
}

func TestCOOOutOfRange(t *testing.T) {
	for _, e := range []Entry{{Row: 3, Col: 0}, {Row: -1, Col: 0}, {Row: 0, Col: 9}, {Row: 0, Col: -2}} {
		c := NewCOO(3, 3)
		c.Entries = append(c.Entries, e)
		if _, err := c.ToCSR(); err == nil {
			t.Errorf("ToCSR accepted out-of-range entry %+v", e)
		}
	}
}

func TestCOOCancellationKeepsExplicitZero(t *testing.T) {
	c := NewCOO(1, 1)
	c.Add(0, 0, 1)
	c.Add(0, 0, -1)
	m, err := c.ToCSR()
	if err != nil {
		t.Fatalf("ToCSR: %v", err)
	}
	if m.NNZ() != 1 || m.Val[0] != 0 {
		t.Fatalf("cancelled entry should stay as explicit zero, got nnz=%d", m.NNZ())
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(2, 3, [][]int32{{0}}, nil); err == nil {
		t.Errorf("row-count mismatch accepted")
	}
	if _, err := FromRows(1, 3, [][]int32{{0, 5}}, nil); err == nil {
		t.Errorf("column out of range accepted")
	}
	if _, err := FromRows(1, 3, [][]int32{{1, 1}}, nil); err == nil {
		t.Errorf("duplicate column accepted")
	}
	if _, err := FromRows(1, 3, [][]int32{{0, 1}}, [][]float32{{1}}); err == nil {
		t.Errorf("value-length mismatch accepted")
	}
}

func TestFromRowsUnsortedInput(t *testing.T) {
	m, err := FromRows(1, 5, [][]int32{{4, 0, 2}}, [][]float32{{40, 0, 20}})
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	cols, vals := m.RowCols(0), m.RowVals(0)
	if cols[0] != 0 || cols[1] != 2 || cols[2] != 4 {
		t.Fatalf("not sorted: %v", cols)
	}
	if vals[0] != 0 || vals[1] != 20 || vals[2] != 40 {
		t.Fatalf("values did not move with cols: %v", vals)
	}
}

// Property: CSR -> COO -> CSR is the identity.
func TestPropertyCOORoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 16, 16, 6)
		back, err := m.ToCOO().ToCSR()
		if err != nil {
			return false
		}
		return m.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
