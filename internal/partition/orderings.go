package partition

import (
	"sort"

	"repro/internal/sparse"
)

// Classic vertex-reordering baselines from the paper's related work
// (§6: GOrder, ReCALL, and the orderings surveyed by Oliker et al.).
// Like the multilevel partitioner, these exist to reproduce the paper's
// negative result — vertex reordering does not help SpMM — and to give
// downstream users the standard orderings for comparison.

// DegreeOrder returns a vertex permutation sorting vertices by
// non-increasing degree (ties by vertex id). Popular rows first is the
// classic heavy-hitter clustering used by several SpMV schemes.
func DegreeOrder(m *sparse.CSR) ([]int32, error) {
	g, err := FromMatrix(m)
	if err != nil {
		return nil, err
	}
	perm := make([]int32, g.N)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		da, db := g.Degree(perm[a]), g.Degree(perm[b])
		if da != db {
			return da > db
		}
		return perm[a] < perm[b]
	})
	return perm, nil
}

// BFSOrder returns the breadth-first visitation order from the
// lowest-indexed vertex of each component — the simplest locality
// ordering (vertices near each other in the graph get nearby indices).
func BFSOrder(m *sparse.CSR) ([]int32, error) {
	g, err := FromMatrix(m)
	if err != nil {
		return nil, err
	}
	order := make([]int32, 0, g.N)
	visited := make([]bool, g.N)
	queue := make([]int32, 0, g.N)
	for s := 0; s < g.N; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return order, nil
}

// RCMOrder returns the reverse Cuthill–McKee ordering: per component, a
// BFS from a pseudo-peripheral low-degree vertex with neighbours visited
// in increasing-degree order, then the whole order reversed. RCM is the
// canonical bandwidth-reduction reordering for sparse direct solvers.
func RCMOrder(m *sparse.CSR) ([]int32, error) {
	g, err := FromMatrix(m)
	if err != nil {
		return nil, err
	}
	order := make([]int32, 0, g.N)
	visited := make([]bool, g.N)

	// Vertices sorted by degree once; component seeds are the unvisited
	// vertex of minimum degree (a cheap pseudo-peripheral choice).
	byDegree := make([]int32, g.N)
	for i := range byDegree {
		byDegree[i] = int32(i)
	}
	sort.SliceStable(byDegree, func(a, b int) bool {
		da, db := g.Degree(byDegree[a]), g.Degree(byDegree[b])
		if da != db {
			return da < db
		}
		return byDegree[a] < byDegree[b]
	})

	queue := make([]int32, 0, g.N)
	nbrs := make([]int32, 0, 64)
	for _, seed := range byDegree {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbrs = nbrs[:0]
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					nbrs = append(nbrs, u)
				}
			}
			sort.Slice(nbrs, func(a, b int) bool {
				da, db := g.Degree(nbrs[a]), g.Degree(nbrs[b])
				if da != db {
					return da < db
				}
				return nbrs[a] < nbrs[b]
			})
			queue = append(queue, nbrs...)
		}
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// Bandwidth returns the maximum |i - j| over the nonzeros of a square
// matrix — the quantity RCM minimises; exposed for tests and diagnostics.
func Bandwidth(m *sparse.CSR) int {
	max := 0
	for i := 0; i < m.Rows; i++ {
		for _, c := range m.RowCols(i) {
			d := int(c) - i
			if d < 0 {
				d = -d
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}
