package partition

import (
	"math/rand"
)

// coarsening holds one level of the multilevel hierarchy.
type coarsening struct {
	fine  *Graph
	match []int32 // fine vertex -> coarse vertex id
	crs   *Graph
}

// coarsen performs one heavy-edge-matching pass: each unmatched vertex is
// matched with its unmatched neighbour of maximum edge weight; matched
// pairs collapse into one coarse vertex.
func coarsen(g *Graph, rng *rand.Rand) *coarsening {
	match := make([]int32, g.N)
	for i := range match {
		match[i] = -1
	}
	coarseID := int32(0)
	for _, v := range shuffledVertices(g.N, rng) {
		if match[v] >= 0 {
			continue
		}
		best, bestW := int32(-1), int32(-1)
		adj, w := g.Neighbors(v), g.Weights(v)
		for e := range adj {
			u := adj[e]
			if match[u] < 0 && u != v && w[e] > bestW {
				best, bestW = u, w[e]
			}
		}
		match[v] = coarseID
		if best >= 0 {
			match[best] = coarseID
		}
		coarseID++
	}
	// Build the coarse graph by aggregating edges between coarse ids.
	cn := int(coarseID)
	crs := &Graph{N: cn, XAdj: make([]int32, cn+1), VWgt: make([]int32, cn)}
	crs.TotalW = g.TotalW
	// Accumulate coarse adjacency in a map per coarse vertex; fine for
	// the modest graphs this baseline handles.
	nbrs := make([]map[int32]int32, cn)
	for v := int32(0); int(v) < g.N; v++ {
		cv := match[v]
		crs.VWgt[cv] += g.VWgt[v]
		if nbrs[cv] == nil {
			nbrs[cv] = make(map[int32]int32, g.Degree(v))
		}
		adj, w := g.Neighbors(v), g.Weights(v)
		for e := range adj {
			cu := match[adj[e]]
			if cu != cv {
				nbrs[cv][cu] += w[e]
			}
		}
	}
	for i := 0; i < cn; i++ {
		crs.XAdj[i+1] = crs.XAdj[i] + int32(len(nbrs[i]))
	}
	crs.Adj = make([]int32, crs.XAdj[cn])
	crs.EWgt = make([]int32, crs.XAdj[cn])
	for i := 0; i < cn; i++ {
		pos := crs.XAdj[i]
		for u, w := range nbrs[i] {
			crs.Adj[pos] = u
			crs.EWgt[pos] = w
			pos++
		}
	}
	return &coarsening{fine: g, match: match, crs: crs}
}

// initialBisect grows a region from a pseudo-random seed vertex by BFS
// until half the total vertex weight is absorbed; side 0 = grown region.
func initialBisect(g *Graph, rng *rand.Rand) []int8 {
	part := make([]int8, g.N)
	for i := range part {
		part[i] = 1
	}
	if g.N == 0 {
		return part
	}
	target := g.TotalW / 2
	var grown int64
	visited := make([]bool, g.N)
	queue := make([]int32, 0, g.N)
	order := shuffledVertices(g.N, rng)
	oi := 0
	for grown < target {
		// Find an unvisited seed (handles disconnected graphs).
		for oi < len(order) && visited[order[oi]] {
			oi++
		}
		if oi >= len(order) {
			break
		}
		queue = append(queue[:0], order[oi])
		visited[order[oi]] = true
		for len(queue) > 0 && grown < target {
			v := queue[0]
			queue = queue[1:]
			part[v] = 0
			grown += int64(g.VWgt[v])
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return part
}

// refine runs greedy boundary refinement passes (the randomised greedy
// variant METIS uses at large scale): visit boundary vertices in a
// pseudo-random order and move each to the other side when that strictly
// reduces the cut and respects a 10% balance tolerance. Each pass is
// O(E); passes stop early when no move improves the cut.
func refine(g *Graph, part []int8, maxPasses int, rng *rand.Rand) {
	if g.N == 0 {
		return
	}
	var w0, w1 int64
	for v := 0; v < g.N; v++ {
		if part[v] == 0 {
			w0 += int64(g.VWgt[v])
		} else {
			w1 += int64(g.VWgt[v])
		}
	}
	minSide := g.TotalW/2 - (g.TotalW/10 + 1)

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for _, v := range shuffledVertices(g.N, rng) {
			var internal, external int64
			adj, w := g.Neighbors(v), g.Weights(v)
			for e := range adj {
				if part[adj[e]] == part[v] {
					internal += int64(w[e])
				} else {
					external += int64(w[e])
				}
			}
			if external <= internal {
				continue // not a profitable boundary move
			}
			if part[v] == 0 {
				if w0-int64(g.VWgt[v]) < minSide {
					continue
				}
				w0 -= int64(g.VWgt[v])
				w1 += int64(g.VWgt[v])
				part[v] = 1
			} else {
				if w1-int64(g.VWgt[v]) < minSide {
					continue
				}
				w1 -= int64(g.VWgt[v])
				w0 += int64(g.VWgt[v])
				part[v] = 0
			}
			improved = true
		}
		if !improved {
			break
		}
	}
}

// Bisect computes a balanced 2-way partition of g with the multilevel
// scheme and returns the side assignment.
func Bisect(g *Graph, seed int64) []int8 {
	rng := rand.New(rand.NewSource(seed))
	const coarsestSize = 128
	// Coarsening phase.
	var levels []*coarsening
	cur := g
	for cur.N > coarsestSize {
		lv := coarsen(cur, rng)
		// Matching can stall on star-like graphs; stop if reduction is
		// too small to be useful.
		if lv.crs.N > cur.N*9/10 {
			break
		}
		levels = append(levels, lv)
		cur = lv.crs
	}
	// Initial partition at the coarsest level.
	part := initialBisect(cur, rng)
	refine(cur, part, 8, rng)
	// Uncoarsening with refinement.
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fine := make([]int8, lv.fine.N)
		for v := 0; v < lv.fine.N; v++ {
			fine[v] = part[lv.match[v]]
		}
		part = fine
		refine(lv.fine, part, 3, rng)
	}
	return part
}
