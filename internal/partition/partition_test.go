package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
	"repro/internal/synth"
)

func TestFromMatrixRequiresSquare(t *testing.T) {
	m, err := sparse.FromRows(2, 3, [][]int32{{0}, {1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromMatrix(m); err == nil {
		t.Fatalf("accepted non-square matrix")
	}
}

func TestFromMatrixSymmetrises(t *testing.T) {
	// Directed edge 0->1 plus self-loop 2->2: the graph gets the
	// undirected edge {0,1} and drops the loop.
	m, err := sparse.FromRows(3, 3, [][]int32{{1}, {}, {2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees = %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	if g.Neighbors(0)[0] != 1 || g.Neighbors(1)[0] != 0 {
		t.Fatalf("adjacency wrong")
	}
}

func TestFromMatrixMergedEdgeWeight(t *testing.T) {
	// Mutual edge 0<->1 collapses to one edge of weight 2.
	m, err := sparse.FromRows(2, 2, [][]int32{{1}, {0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 1 || g.Weights(0)[0] != 2 {
		t.Fatalf("mutual edge weight = %v", g.Weights(0))
	}
}

func TestBisectBalance(t *testing.T) {
	m, err := synth.RMAT(9, 8, 0.57, 0.19, 0.19, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	part := Bisect(g, 1)
	n0 := 0
	for _, p := range part {
		if p == 0 {
			n0++
		}
	}
	lo, hi := g.N*35/100, g.N*65/100
	if n0 < lo || n0 > hi {
		t.Fatalf("unbalanced bisection: %d of %d on side 0", n0, g.N)
	}
}

func TestBisectCutsLessThanRandom(t *testing.T) {
	// On a block-diagonal community graph, the multilevel bisection must
	// find a far better cut than a random split.
	m, err := synth.BlockDiagonal(512, 512, 64, 0.2, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	part := Bisect(g, 1)
	cut := g.EdgeCut(part)
	rng := rand.New(rand.NewSource(9))
	randPart := make([]int8, g.N)
	for i := range randPart {
		randPart[i] = int8(rng.Intn(2))
	}
	randCut := g.EdgeCut(randPart)
	if cut*4 > randCut {
		t.Fatalf("multilevel cut %d not clearly better than random %d", cut, randCut)
	}
}

func TestVertexOrderIsPermutation(t *testing.T) {
	m, err := synth.RMAT(9, 4, 0.57, 0.19, 0.19, 7)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := VertexOrder(m, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.IsPermutation(perm, m.Rows) {
		t.Fatalf("VertexOrder not a permutation")
	}
	// Default leaf size path.
	perm2, err := VertexOrder(m, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.IsPermutation(perm2, m.Rows) {
		t.Fatalf("default leaf size not a permutation")
	}
}

func TestVertexOrderGroupsCommunities(t *testing.T) {
	// Scrambled block-diagonal graph: after symmetric permutation by the
	// partitioner's order, vertices of the same block should be (much)
	// closer together, i.e. bandwidth-like locality improves.
	m, err := synth.BlockDiagonal(256, 256, 32, 0.4, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Scramble first so the blocks are hidden.
	rng := rand.New(rand.NewSource(13))
	scramble := sparse.IdentityPermutation(256)
	rng.Shuffle(len(scramble), func(a, b int) { scramble[a], scramble[b] = scramble[b], scramble[a] })
	sm, err := sparse.PermuteSymmetric(m, scramble)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := VertexOrder(sm, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := sparse.PermuteSymmetric(sm, perm)
	if err != nil {
		t.Fatal(err)
	}
	if before, after := avgColDistance(sm), avgColDistance(rm); after > before*0.6 {
		t.Fatalf("partition order did not improve locality: %v -> %v", before, after)
	}
}

// avgColDistance measures mean |col - row| over nonzeros: a crude
// bandwidth/locality proxy.
func avgColDistance(m *sparse.CSR) float64 {
	var sum, n float64
	for i := 0; i < m.Rows; i++ {
		for _, c := range m.RowCols(i) {
			d := float64(int(c) - i)
			if d < 0 {
				d = -d
			}
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// Property: VertexOrder always emits a permutation; EdgeCut is symmetric
// under side relabelling.
func TestPropertyPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(200)
		sets := make([][]int32, n)
		for i := range sets {
			d := rng.Intn(4)
			seen := map[int32]bool{}
			for len(seen) < d {
				seen[int32(rng.Intn(n))] = true
			}
			for c := range seen {
				sets[i] = append(sets[i], c)
			}
		}
		m, err := sparse.FromRows(n, n, sets, nil)
		if err != nil {
			return false
		}
		perm, err := VertexOrder(m, 16, seed)
		if err != nil {
			return false
		}
		if !sparse.IsPermutation(perm, n) {
			return false
		}
		g, err := FromMatrix(m)
		if err != nil {
			return false
		}
		part := Bisect(g, seed)
		flipped := make([]int8, len(part))
		for i, p := range part {
			flipped[i] = 1 - p
		}
		return g.EdgeCut(part) == g.EdgeCut(flipped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
