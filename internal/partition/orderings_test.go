package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
	"repro/internal/synth"
)

func TestDegreeOrderSortsByDegree(t *testing.T) {
	m, err := synth.RMAT(9, 8, 0.57, 0.19, 0.19, 2)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := DegreeOrder(m)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.IsPermutation(perm, m.Rows) {
		t.Fatalf("not a permutation")
	}
	g, err := FromMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(perm); i++ {
		if g.Degree(perm[i]) > g.Degree(perm[i-1]) {
			t.Fatalf("degree order violated at %d", i)
		}
	}
}

func TestBFSOrderVisitsComponents(t *testing.T) {
	// Two disjoint triangles.
	sets := [][]int32{{1, 2}, {0, 2}, {0, 1}, {4, 5}, {3, 5}, {3, 4}}
	m, err := sparse.FromRows(6, 6, sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := BFSOrder(m)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.IsPermutation(perm, 6) {
		t.Fatalf("not a permutation: %v", perm)
	}
	// First component (vertices 0-2) is fully visited before the second.
	for i := 0; i < 3; i++ {
		if perm[i] > 2 {
			t.Fatalf("BFS interleaved components: %v", perm)
		}
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A banded matrix scrambled by a random symmetric permutation: RCM
	// should recover a bandwidth far below the scrambled one.
	m, err := synth.Banded(256, 256, 8, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	scramble := sparse.IdentityPermutation(256)
	rng.Shuffle(len(scramble), func(a, b int) { scramble[a], scramble[b] = scramble[b], scramble[a] })
	sm, err := sparse.PermuteSymmetric(m, scramble)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := RCMOrder(sm)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := sparse.PermuteSymmetric(sm, perm)
	if err != nil {
		t.Fatal(err)
	}
	before, after := Bandwidth(sm), Bandwidth(rm)
	if after >= before/2 {
		t.Fatalf("RCM did not reduce bandwidth: %d -> %d", before, after)
	}
}

func TestOrderingsRejectNonSquare(t *testing.T) {
	m, err := sparse.FromRows(2, 3, [][]int32{{0}, {1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DegreeOrder(m); err == nil {
		t.Errorf("DegreeOrder accepted non-square")
	}
	if _, err := BFSOrder(m); err == nil {
		t.Errorf("BFSOrder accepted non-square")
	}
	if _, err := RCMOrder(m); err == nil {
		t.Errorf("RCMOrder accepted non-square")
	}
}

func TestBandwidthSmall(t *testing.T) {
	m, err := sparse.FromRows(3, 3, [][]int32{{0, 2}, {1}, {2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Bandwidth(m); got != 2 {
		t.Fatalf("Bandwidth = %d, want 2", got)
	}
}

// Property: every ordering is a permutation for arbitrary random square
// matrices (including disconnected graphs and isolated vertices).
func TestPropertyOrderingsArePermutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(120)
		sets := make([][]int32, n)
		for i := range sets {
			d := rng.Intn(4)
			seen := map[int32]bool{}
			for len(seen) < d {
				seen[int32(rng.Intn(n))] = true
			}
			for c := range seen {
				sets[i] = append(sets[i], c)
			}
		}
		m, err := sparse.FromRows(n, n, sets, nil)
		if err != nil {
			return false
		}
		for _, fn := range []func(*sparse.CSR) ([]int32, error){DegreeOrder, BFSOrder, RCMOrder} {
			perm, err := fn(m)
			if err != nil || !sparse.IsPermutation(perm, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
