package partition

import (
	"fmt"

	"repro/internal/sparse"
)

// DefaultLeafSize is the block size at which recursive bisection stops.
const DefaultLeafSize = 512

// VertexOrder computes a vertex reordering of the square matrix m by
// recursive multilevel bisection: vertices in the same (recursively
// refined) partition block become contiguous. The returned permutation
// maps new position -> original vertex, suitable for
// sparse.PermuteSymmetric — the METIS-reordering baseline of the paper's
// Fig 9 experiment.
func VertexOrder(m *sparse.CSR, leafSize int, seed int64) ([]int32, error) {
	if leafSize <= 0 {
		leafSize = DefaultLeafSize
	}
	g, err := FromMatrix(m)
	if err != nil {
		return nil, err
	}
	ids := make([]int32, g.N)
	for i := range ids {
		ids[i] = int32(i)
	}
	out := make([]int32, 0, g.N)
	recurseOrder(g, ids, leafSize, seed, &out)
	if !sparse.IsPermutation(out, m.Rows) {
		return nil, fmt.Errorf("partition: recursive bisection produced a non-permutation (internal error)")
	}
	return out, nil
}

// recurseOrder appends the vertices of g (whose original ids are ids) to
// out, recursively bisecting while the block exceeds leafSize.
func recurseOrder(g *Graph, ids []int32, leafSize int, seed int64, out *[]int32) {
	if g.N <= leafSize {
		*out = append(*out, ids...)
		return
	}
	part := Bisect(g, seed)
	// Degenerate split (everything on one side): stop recursing.
	n0 := 0
	for _, p := range part {
		if p == 0 {
			n0++
		}
	}
	if n0 == 0 || n0 == g.N {
		*out = append(*out, ids...)
		return
	}
	g0, ids0 := subgraph(g, ids, part, 0)
	g1, ids1 := subgraph(g, ids, part, 1)
	recurseOrder(g0, ids0, leafSize, seed+1, out)
	recurseOrder(g1, ids1, leafSize, seed+2, out)
}

// subgraph extracts the induced subgraph of the vertices on the given
// side, along with their original ids.
func subgraph(g *Graph, ids []int32, part []int8, side int8) (*Graph, []int32) {
	remap := make([]int32, g.N)
	for i := range remap {
		remap[i] = -1
	}
	var subIDs []int32
	n := int32(0)
	for v := 0; v < g.N; v++ {
		if part[v] == side {
			remap[v] = n
			subIDs = append(subIDs, ids[v])
			n++
		}
	}
	sg := &Graph{N: int(n), XAdj: make([]int32, n+1), VWgt: make([]int32, n)}
	// Count, then fill.
	for v := 0; v < g.N; v++ {
		if remap[v] < 0 {
			continue
		}
		var deg int32
		for _, u := range g.Neighbors(int32(v)) {
			if remap[u] >= 0 {
				deg++
			}
		}
		sg.XAdj[remap[v]+1] = deg
	}
	for i := int32(0); i < n; i++ {
		sg.XAdj[i+1] += sg.XAdj[i]
	}
	sg.Adj = make([]int32, sg.XAdj[n])
	sg.EWgt = make([]int32, sg.XAdj[n])
	for v := 0; v < g.N; v++ {
		sv := remap[v]
		if sv < 0 {
			continue
		}
		sg.VWgt[sv] = g.VWgt[v]
		sg.TotalW += int64(g.VWgt[v])
		pos := sg.XAdj[sv]
		adj, w := g.Neighbors(int32(v)), g.Weights(int32(v))
		for e := range adj {
			if su := remap[adj[e]]; su >= 0 {
				sg.Adj[pos] = su
				sg.EWgt[pos] = w[e]
				pos++
			}
		}
	}
	return sg, subIDs
}
