// Package partition implements a multilevel graph partitioner in the
// style of METIS (Karypis & Kumar): heavy-edge-matching coarsening, greedy
// region-growing initial bisection, and boundary Fiduccia–Mattheyses
// refinement. The paper uses METIS only as the vertex-reordering baseline
// that its §5.2 experiment shows does *not* help SpMM; this package plays
// that role (DESIGN.md §2).
package partition

import (
	"fmt"
	"math/rand"

	"repro/internal/sparse"
)

// Graph is an undirected weighted graph in adjacency (CSR) form.
type Graph struct {
	N      int
	XAdj   []int32 // len N+1
	Adj    []int32 // neighbour vertex ids
	EWgt   []int32 // edge weights, parallel to Adj
	VWgt   []int32 // vertex weights, len N
	TotalW int64   // sum of vertex weights
}

// Degree returns vertex v's neighbour count.
func (g *Graph) Degree(v int32) int { return int(g.XAdj[v+1] - g.XAdj[v]) }

// Neighbors returns vertex v's adjacency slice.
func (g *Graph) Neighbors(v int32) []int32 { return g.Adj[g.XAdj[v]:g.XAdj[v+1]] }

// Weights returns vertex v's edge-weight slice.
func (g *Graph) Weights(v int32) []int32 { return g.EWgt[g.XAdj[v]:g.XAdj[v+1]] }

// FromMatrix builds the undirected graph of the symmetrised sparsity
// pattern A ∪ Aᵀ of a square sparse matrix, dropping self-loops and
// collapsing duplicate edges (edge weight = multiplicity). This is the
// standard graph model METIS is applied to for matrix reordering.
func FromMatrix(m *sparse.CSR) (*Graph, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("partition: vertex reordering needs a square matrix, got %dx%d",
			m.Rows, m.Cols)
	}
	n := m.Rows
	deg := make([]int32, n)
	t := sparse.Transpose(m)
	// First pass: count merged neighbours per vertex (union of row i of
	// m and row i of t, excluding i itself).
	countRow := func(i int) int32 {
		a, b := m.RowCols(i), t.RowCols(i)
		var c int32
		x, y := 0, 0
		for x < len(a) || y < len(b) {
			var v int32
			switch {
			case x >= len(a):
				v = b[y]
				y++
			case y >= len(b):
				v = a[x]
				x++
			case a[x] < b[y]:
				v = a[x]
				x++
			case a[x] > b[y]:
				v = b[y]
				y++
			default:
				v = a[x]
				x++
				y++
			}
			if int(v) != i {
				c++
			}
		}
		return c
	}
	for i := 0; i < n; i++ {
		deg[i] = countRow(i)
	}
	g := &Graph{N: n, XAdj: make([]int32, n+1), VWgt: make([]int32, n)}
	for i := 0; i < n; i++ {
		g.XAdj[i+1] = g.XAdj[i] + deg[i]
		g.VWgt[i] = 1
	}
	g.TotalW = int64(n)
	g.Adj = make([]int32, g.XAdj[n])
	g.EWgt = make([]int32, g.XAdj[n])
	for i := 0; i < n; i++ {
		a, b := m.RowCols(i), t.RowCols(i)
		pos := g.XAdj[i]
		x, y := 0, 0
		emit := func(v int32, w int32) {
			if int(v) == i {
				return
			}
			g.Adj[pos] = v
			g.EWgt[pos] = w
			pos++
		}
		for x < len(a) || y < len(b) {
			switch {
			case x >= len(a):
				emit(b[y], 1)
				y++
			case y >= len(b):
				emit(a[x], 1)
				x++
			case a[x] < b[y]:
				emit(a[x], 1)
				x++
			case a[x] > b[y]:
				emit(b[y], 1)
				y++
			default:
				emit(a[x], 2)
				x++
				y++
			}
		}
	}
	return g, nil
}

// EdgeCut returns the weight of edges crossing the given 2-way partition
// assignment (each edge counted once).
func (g *Graph) EdgeCut(part []int8) int64 {
	var cut int64
	for v := int32(0); int(v) < g.N; v++ {
		adj, w := g.Neighbors(v), g.Weights(v)
		for e := range adj {
			if adj[e] > v && part[v] != part[adj[e]] {
				cut += int64(w[e])
			}
		}
	}
	return cut
}

// shuffledVertices returns a deterministic pseudo-random vertex order.
func shuffledVertices(n int, rng *rand.Rand) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
	return order
}
