package kernels

import (
	"testing"

	"repro/internal/aspt"
	"repro/internal/dense"
	"repro/internal/ellpack"
	"repro/internal/sparse"
	"repro/internal/synth"
)

// Kernel-corpus bench: every SpMM execution strategy on the three
// structural families the autotuner discriminates between — a skewed
// R-MAT (power-law rows, where nnz-split merge should win), a banded
// matrix (moderate, regular rows), and a uniform matrix (ELL-friendly,
// zero padding). `make bench-kernels` converts the output to
// BENCH_kernels.json; the autotuner thresholds in
// internal/reorder/autotune.go were set against these numbers (see
// DESIGN.md §12).
//
// Wall-clock speedups from nnz-splitting only materialise with real
// parallelism; on a 1-CPU runner the per-kernel times converge. The
// "imb@32" metric is the hardware-independent signal: the nnz load
// imbalance of row-granular chunking at 32 chunks (max chunk nnz over
// mean). Merge's flat nnz split is 1.0 by construction, so imb@32 is
// the factor row-granular chunking loses on the critical path at 32
// workers — deterministic regardless of GOMAXPROCS.

// rowImbalance builds nchunks row-granular chunks targeting equal nnz
// (the best any row-aligned partitioner can do) and returns max chunk
// nnz over mean chunk nnz. A single row longer than nnz/nchunks forces
// imbalance > 1 no matter how rows are packed.
func rowImbalance(m *sparse.CSR, nchunks int) float64 {
	nnz := m.NNZ()
	if nnz == 0 || nchunks <= 0 {
		return 1
	}
	mean := float64(nnz) / float64(nchunks)
	maxChunk, cur := 0, 0
	for i := 0; i < m.Rows; i++ {
		rl := m.RowLen(i)
		// Close the chunk before this row once it met its target, so an
		// oversized row lands in a chunk by itself.
		if cur > 0 && float64(cur)+float64(rl)/2 > mean {
			if cur > maxChunk {
				maxChunk = cur
			}
			cur = 0
		}
		cur += rl
	}
	if cur > maxChunk {
		maxChunk = cur
	}
	return float64(maxChunk) / mean
}

type benchFamily struct {
	name  string
	build func(short bool) (*sparse.CSR, error)
}

var benchFamilies = []benchFamily{
	{"rmat", func(short bool) (*sparse.CSR, error) {
		if short {
			return synth.RMAT(10, 16, 0.57, 0.19, 0.19, 21)
		}
		return synth.RMAT(13, 24, 0.57, 0.19, 0.19, 21)
	}},
	{"banded", func(short bool) (*sparse.CSR, error) {
		if short {
			return synth.Banded(1024, 1024, 64, 16, 7)
		}
		return synth.Banded(8192, 8192, 64, 16, 7)
	}},
	{"uniform", func(short bool) (*sparse.CSR, error) {
		if short {
			return synth.Uniform(1024, 1024, 16, 11)
		}
		return synth.Uniform(8192, 8192, 16, 11)
	}},
}

func BenchmarkKernelCorpus(b *testing.B) {
	const k = 64
	for _, fam := range benchFamilies {
		m, err := fam.build(testing.Short())
		if err != nil {
			b.Fatal(err)
		}
		hyb, err := ellpack.FromCSRHybrid(m, 0)
		if err != nil {
			b.Fatal(err)
		}
		tl, err := aspt.Build(m, aspt.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		x := dense.NewRandom(m.Cols, k, 1)
		y := dense.New(m.Rows, k)
		imb := rowImbalance(m, 32)
		imbGPU := rowImbalance(m, 1024)
		run := func(name string, fn func() error) {
			b.Run(fam.name+"/"+name, func(b *testing.B) {
				b.SetBytes(int64(Flops(m.NNZ(), k) / 2))
				b.ReportAllocs()
				// Warm the pooled state (job structs, merge carry slabs,
				// worker pool) before the clock starts: the kernels'
				// contract is zero allocations at *steady state*, and
				// without this warmup a -benchtime 1x smoke run reports
				// the first call's one-time pool misses as if the hot
				// path allocated (BENCH_kernels.json once showed the
				// merge kernel at 10 allocs/op this way).
				for i := 0; i < 2; i++ {
					if err := fn(); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := fn(); err != nil {
						b.Fatal(err)
					}
				}
				// After the loop: ResetTimer deletes user metrics.
				b.ReportMetric(imb, "imb@32")
				b.ReportMetric(imbGPU, "imb@1k")
			})
		}
		run("rowwise", func() error { return SpMMRowWiseInto(y, m, x) })
		run("merge", func() error { return SpMMMergeInto(y, m, x) })
		run("hyb", func() error { return SpMMHybridInto(y, hyb, x) })
		run("aspt", func() error { return SpMMASpTInto(y, tl, x) })
	}
}
