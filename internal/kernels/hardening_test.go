package kernels

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/aspt"
	"repro/internal/dense"
	"repro/internal/faultinject"
	"repro/internal/par"
	"repro/internal/synth"
)

func TestKernelFaultInjection(t *testing.T) {
	s, err := synth.Uniform(2048, 512, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	x := dense.NewRandom(512, 32, 1)
	y := dense.New(2048, 32)

	defer faultinject.ErrorAt("kernels.exec")()
	if err := SpMMRowWiseIntoCtx(context.Background(), y, s, x); !errors.Is(err, faultinject.Err) {
		t.Fatalf("SpMM with fault = %v, want faultinject.Err", err)
	}
	faultinject.Reset()

	// A panicking kernel chunk must surface as *par.PanicError without
	// crashing or wedging the shared worker pool.
	defer faultinject.PanicAt("kernels.exec")()
	err = SpMMRowWiseIntoCtx(context.Background(), y, s, x)
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("kernel panic surfaced as %v, want *par.PanicError", err)
	}
	faultinject.Reset()

	// The pool must be fully reusable after both failure modes.
	if err := SpMMRowWiseIntoCtx(context.Background(), y, s, x); err != nil {
		t.Fatalf("clean SpMM after faults: %v", err)
	}
}

func TestKernelCancellation(t *testing.T) {
	s, err := synth.Uniform(2048, 512, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	x := dense.NewRandom(512, 32, 1)
	y := dense.New(2048, 32)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SpMMRowWiseIntoCtx(ctx, y, s, x); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled SpMM = %v, want context.Canceled", err)
	}

	// Cancel mid-run from a kernel chunk; remaining chunk claims must
	// observe ctx and the call must report its error. Force the
	// multi-chunk dispatch path so there IS a "between chunks" even on a
	// single-CPU machine.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	ctx2, cancel2 := context.WithCancel(context.Background())
	var calls atomic.Int64
	defer faultinject.Set("kernels.exec", func() error {
		if calls.Add(1) == 1 {
			cancel2()
		}
		return nil
	})()
	if err := SpMMRowWiseIntoCtx(ctx2, y, s, x); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancelled SpMM = %v, want context.Canceled", err)
	}
}

func TestASpTKernelFaultInjection(t *testing.T) {
	s, err := synth.Uniform(1024, 512, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := aspt.Build(s, aspt.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	x := dense.NewRandom(512, 16, 2)
	yk := dense.NewRandom(1024, 16, 3)
	y := dense.New(1024, 16)
	out := s.Clone()

	defer faultinject.ErrorAt("kernels.exec")()
	if err := SpMMASpTIntoCtx(context.Background(), y, tm, x); !errors.Is(err, faultinject.Err) {
		t.Fatalf("ASpT SpMM with fault = %v, want faultinject.Err", err)
	}
	if err := SDDMMASpTIntoCtx(context.Background(), out, tm, x, yk); !errors.Is(err, faultinject.Err) {
		t.Fatalf("ASpT SDDMM with fault = %v, want faultinject.Err", err)
	}
	if err := SDDMMRowWiseIntoCtx(context.Background(), out, s, x, yk); !errors.Is(err, faultinject.Err) {
		t.Fatalf("row-wise SDDMM with fault = %v, want faultinject.Err", err)
	}
}
