package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/aspt"
	"repro/internal/dense"
	"repro/internal/sparse"
	"repro/internal/synth"
)

// TestBalancedChunksTile checks the partitioning invariant: for any
// non-decreasing prefix-sum function, the chunks tile [0, rows) exactly
// — no gaps, no overlaps, in order.
func TestBalancedChunksTile(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(200)
		// Random per-row work, including long zero stretches and hubs.
		prefix := make([]int64, rows+1)
		for i := 0; i < rows; i++ {
			w := int64(0)
			switch rng.Intn(4) {
			case 0: // empty row
			case 1:
				w = int64(rng.Intn(5))
			default:
				w = int64(rng.Intn(1000))
			}
			prefix[i+1] = prefix[i] + w
		}
		nchunks := 1 + rng.Intn(40)
		chunks := appendBalancedChunks(nil, rows, func(i int) int64 { return prefix[i] }, nchunks)
		if len(chunks) == 0 || len(chunks) > nchunks {
			return false
		}
		next := 0
		for _, c := range chunks {
			if c.lo != next || c.hi <= c.lo || c.hi > rows {
				return false
			}
			next = c.hi
		}
		return next == rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBalancedChunksBalance checks that on a skewed distribution no
// chunk (other than one forced by a single giant row) carries more than
// a couple of equal shares of the total work.
func TestBalancedChunksBalance(t *testing.T) {
	rows := 1000
	prefix := make([]int64, rows+1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < rows; i++ {
		w := int64(1 + rng.Intn(4))
		if i%97 == 0 {
			w = 500 // hubs
		}
		prefix[i+1] = prefix[i] + w
	}
	nchunks := 16
	chunks := appendBalancedChunks(nil, rows, func(i int) int64 { return prefix[i] }, nchunks)
	total := prefix[rows]
	share := total / int64(nchunks)
	maxRowWork := int64(500)
	for _, c := range chunks {
		work := prefix[c.hi] - prefix[c.lo]
		if work > share+maxRowWork {
			t.Fatalf("chunk [%d,%d) carries %d work, share is %d (max row %d)",
				c.lo, c.hi, work, share, maxRowWork)
		}
	}
}

// hubMatrix builds a power-law-style matrix: most rows tiny, a few hub
// rows holding a large share of the nonzeros — the regime where
// equal-row chunking collapses to one worker doing most of the work.
func hubMatrix(t testing.TB) *sparse.CSR {
	t.Helper()
	m, err := synth.RMAT(11, 16, 0.57, 0.19, 0.19, 99)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSkewedSpMMMatchesNaive pins the nnz-balanced engine's results on
// a power-law matrix against the naive dense reference and against the
// seed's equal-row chunking — identical outputs, any partitioning.
func TestSkewedSpMMMatchesNaive(t *testing.T) {
	m := hubMatrix(t)
	x := dense.NewRandom(m.Cols, 8, 1)
	got, err := SpMMRowWise(m, x)
	if err != nil {
		t.Fatal(err)
	}
	// Seed engine: contiguous equal-row chunks.
	old := dense.New(m.Rows, x.Cols)
	parallelRows(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yi := old.Row(i)
			cols, vals := m.RowCols(i), m.RowVals(i)
			for j := range cols {
				v := vals[j]
				xr := x.Row(int(cols[j]))
				for k := range yi {
					yi[k] += v * xr[k]
				}
			}
		}
	})
	// Bitwise identical: both engines accumulate each row sequentially
	// in the same order, only the row->worker assignment differs.
	for i := range got.Data {
		if got.Data[i] != old.Data[i] {
			t.Fatalf("balanced vs equal-row chunking diverge at %d: %v vs %v",
				i, got.Data[i], old.Data[i])
		}
	}
	if d := dense.MaxAbsDiff(got, naiveSpMM(m, x)); d > 1e-3 {
		t.Fatalf("balanced SpMM differs from naive by %v", d)
	}
}

// TestSkewedASpTMatches runs the ASpT kernels on the same power-law
// matrix: tile+rest balanced execution must equal row-wise execution.
func TestSkewedASpTMatches(t *testing.T) {
	m := hubMatrix(t)
	tl, err := aspt.Build(m, aspt.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	x := dense.NewRandom(m.Cols, 8, 2)
	y := dense.NewRandom(m.Rows, 8, 3)
	ya, err := SpMMASpT(tl, x)
	if err != nil {
		t.Fatal(err)
	}
	yr, err := SpMMRowWise(m, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := dense.MaxAbsDiff(ya, yr); d > 1e-3 {
		t.Fatalf("ASpT SpMM differs from row-wise by %v on skewed matrix", d)
	}
	oa, err := SDDMMASpT(tl, x, y)
	if err != nil {
		t.Fatal(err)
	}
	or, err := SDDMMRowWise(m, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !oa.SameStructure(or) {
		t.Fatalf("SDDMM structure diverges on skewed matrix")
	}
	for j := range oa.Val {
		d := float64(oa.Val[j] - or.Val[j])
		if d > 1e-3 || d < -1e-3 {
			t.Fatalf("SDDMM values diverge at %d", j)
		}
	}
}

// TestIntoVariantsMatchAllocating checks each *Into kernel against its
// allocating counterpart, including reuse of the same destination
// across calls (stale contents must be overwritten).
func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := randomMatrix(rng, 64, 48, 8)
	tl, err := aspt.Build(m, aspt.Params{PanelSize: 8, DenseThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := dense.NewRandom(m.Cols, 8, 4)
	yin := dense.NewRandom(m.Rows, 8, 5)

	y := dense.New(m.Rows, 8)
	y.Fill(123) // stale garbage must not leak into results
	if err := SpMMRowWiseInto(y, m, x); err != nil {
		t.Fatal(err)
	}
	want, _ := SpMMRowWise(m, x)
	if d := dense.MaxAbsDiff(y, want); d != 0 {
		t.Fatalf("SpMMRowWiseInto differs by %v", d)
	}

	y.Fill(-7)
	if err := SpMMASpTInto(y, tl, x); err != nil {
		t.Fatal(err)
	}
	if d := dense.MaxAbsDiff(y, want); d > 1e-4 {
		t.Fatalf("SpMMASpTInto differs by %v", d)
	}

	wantO, _ := SDDMMRowWise(m, x, yin)
	out := m.Clone()
	for j := range out.Val {
		out.Val[j] = 99
	}
	if err := SDDMMRowWiseInto(out, m, x, yin); err != nil {
		t.Fatal(err)
	}
	for j := range out.Val {
		if out.Val[j] != wantO.Val[j] {
			t.Fatalf("SDDMMRowWiseInto differs at %d", j)
		}
	}
	out2 := m.Clone()
	if err := SDDMMASpTInto(out2, tl, x, yin); err != nil {
		t.Fatal(err)
	}
	for j := range out2.Val {
		d := float64(out2.Val[j] - wantO.Val[j])
		if d > 1e-4 || d < -1e-4 {
			t.Fatalf("SDDMMASpTInto differs at %d", j)
		}
	}
}

// TestIntoValidation checks the *Into entry points reject bad outputs.
func TestIntoValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := randomMatrix(rng, 20, 20, 5)
	tl, _ := aspt.Build(m, aspt.DefaultParams())
	x := dense.NewRandom(m.Cols, 4, 1)
	yin := dense.NewRandom(m.Rows, 4, 2)

	if err := SpMMRowWiseInto(dense.New(m.Rows+1, 4), m, x); err == nil {
		t.Fatalf("accepted wrong output rows")
	}
	if err := SpMMRowWiseInto(dense.New(m.Rows, 5), m, x); err == nil {
		t.Fatalf("accepted wrong output cols")
	}
	if err := SpMMASpTInto(dense.New(m.Rows, 5), tl, x); err == nil {
		t.Fatalf("ASpT accepted wrong output cols")
	}
	other := randomMatrix(rng, 20, 20, 5)
	if other.SameStructure(m) {
		t.Skip("random matrices collided")
	}
	if err := SDDMMRowWiseInto(other, m, x, yin); err == nil {
		t.Fatalf("accepted structurally different SDDMM output")
	}
	if err := SDDMMASpTInto(other, tl, x, yin); err == nil {
		t.Fatalf("ASpT accepted structurally different SDDMM output")
	}
	// In-place over the source is explicitly allowed.
	inPlace := m.Clone()
	tl2, _ := aspt.Build(inPlace, aspt.DefaultParams())
	if err := SDDMMASpTInto(inPlace, tl2, x, yin); err != nil {
		t.Fatalf("rejected in-place SDDMM: %v", err)
	}
}

// TestIntoSteadyStateAllocations checks the zero-allocation contract of
// the *Into kernels. The bound is lenient (< 2 averaged allocations) to
// tolerate a GC emptying the sync.Pools mid-run; the benchmarks report
// the exact steady-state number (0).
func TestIntoSteadyStateAllocations(t *testing.T) {
	m := hubMatrix(t)
	tl, err := aspt.Build(m, aspt.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	x := dense.NewRandom(m.Cols, 16, 1)
	y := dense.New(m.Rows, 16)
	// Warm the job pool and worker pool.
	for i := 0; i < 3; i++ {
		if err := SpMMASpTInto(y, tl, x); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := SpMMASpTInto(y, tl, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= 2 {
		t.Fatalf("SpMMASpTInto allocates %v objects per call at steady state, want ~0", allocs)
	}
}
