// Package kernels provides the native (CPU, goroutine-parallel) SpMM and
// SDDMM implementations. They are the correctness ground truth for the GPU
// simulator and the executable backend of the examples: the row-wise
// variants implement Alg 1 and Alg 2 of the paper verbatim; the ASpT
// variants execute the tiled representation (dense tiles, then the
// leftover sparse part) and must produce bit-identical structure and
// numerically equal values.
package kernels

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/aspt"
	"repro/internal/dense"
	"repro/internal/sparse"
)

// parallelRows runs fn over [0, rows) split into contiguous chunks across
// GOMAXPROCS workers.
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func checkSpMMShapes(s *sparse.CSR, x *dense.Matrix) error {
	if s.Cols != x.Rows {
		return fmt.Errorf("kernels: SpMM shape mismatch: S is %dx%d, X is %dx%d",
			s.Rows, s.Cols, x.Rows, x.Cols)
	}
	return nil
}

// SpMMRowWise computes Y = S·X with the row-wise algorithm (Alg 1),
// parallelised over rows. It allocates and returns Y (S.Rows × X.Cols).
func SpMMRowWise(s *sparse.CSR, x *dense.Matrix) (*dense.Matrix, error) {
	if err := checkSpMMShapes(s, x); err != nil {
		return nil, err
	}
	y := dense.New(s.Rows, x.Cols)
	parallelRows(s.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yi := y.Row(i)
			cols, vals := s.RowCols(i), s.RowVals(i)
			for j := range cols {
				v := vals[j]
				xr := x.Row(int(cols[j]))
				for k := range yi {
					yi[k] += v * xr[k]
				}
			}
		}
	})
	return y, nil
}

// SpMMASpT computes Y = S·X from the ASpT representation: dense-tile
// nonzeros and leftover nonzeros are accumulated separately per row (the
// two GPU kernels of §2.3), then summed — both traversals write the same
// output row, so a single pass per row suffices on the CPU.
func SpMMASpT(t *aspt.Matrix, x *dense.Matrix) (*dense.Matrix, error) {
	if err := checkSpMMShapes(t.Src, x); err != nil {
		return nil, err
	}
	y := dense.New(t.Src.Rows, x.Cols)
	parallelRows(t.Src.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yi := y.Row(i)
			// Dense-tile part.
			tcols, tvals := t.TileRowCols(i), t.TileRowVals(i)
			for j := range tcols {
				v := tvals[j]
				xr := x.Row(int(tcols[j]))
				for k := range yi {
					yi[k] += v * xr[k]
				}
			}
			// Leftover sparse part.
			rcols, rvals := t.Rest.RowCols(i), t.Rest.RowVals(i)
			for j := range rcols {
				v := rvals[j]
				xr := x.Row(int(rcols[j]))
				for k := range yi {
					yi[k] += v * xr[k]
				}
			}
		}
	})
	return y, nil
}

func checkSDDMMShapes(s *sparse.CSR, x, y *dense.Matrix) error {
	if x.Cols != y.Cols {
		return fmt.Errorf("kernels: SDDMM K mismatch: X has %d cols, Y has %d", x.Cols, y.Cols)
	}
	if y.Rows != s.Rows {
		return fmt.Errorf("kernels: SDDMM shape mismatch: Y has %d rows, S has %d", y.Rows, s.Rows)
	}
	if x.Rows != s.Cols {
		return fmt.Errorf("kernels: SDDMM shape mismatch: X has %d rows, S has %d cols", x.Rows, s.Cols)
	}
	return nil
}

// SDDMMRowWise computes O = S ⊙ (Y·Xᵀ) with the row-wise algorithm
// (Alg 2): O has the sparsity pattern of S, and O[i][c] =
// S[i][c] · Σ_k Y[i][k]·X[c][k]. The result reuses S's structure with
// fresh values.
func SDDMMRowWise(s *sparse.CSR, x, y *dense.Matrix) (*sparse.CSR, error) {
	if err := checkSDDMMShapes(s, x, y); err != nil {
		return nil, err
	}
	out := s.Clone()
	parallelRows(s.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yi := y.Row(i)
			cols := s.RowCols(i)
			svals := s.RowVals(i)
			ovals := out.Val[s.RowPtr[i]:s.RowPtr[i+1]]
			for j := range cols {
				xr := x.Row(int(cols[j]))
				dot := float32(0)
				for k := range yi {
					dot += yi[k] * xr[k]
				}
				ovals[j] = dot * svals[j]
			}
		}
	})
	return out, nil
}

// SDDMMASpT computes SDDMM from the ASpT representation. The output keeps
// the *source* matrix's CSR structure (ASpT preserves CSR compatibility,
// one of its selling points); tile and rest nonzeros are scattered back to
// their source positions.
func SDDMMASpT(t *aspt.Matrix, x, y *dense.Matrix) (*sparse.CSR, error) {
	if err := checkSDDMMShapes(t.Src, x, y); err != nil {
		return nil, err
	}
	s := t.Src
	out := s.Clone()
	// The tile/rest partition changes *where* each nonzero's X row is
	// read from on the GPU (shared memory vs global), not the arithmetic:
	// every nonzero is scaled by its own source value regardless of
	// partition. The partition-aware traffic accounting lives in gpusim;
	// here the two partitions are walked to mirror the execution order.
	parallelRows(s.Rows, func(lo, hi int) {
		dot := func(yi, xr []float32) float32 {
			d := float32(0)
			for k := range yi {
				d += yi[k] * xr[k]
			}
			return d
		}
		for i := lo; i < hi; i++ {
			yi := y.Row(i)
			base := s.RowPtr[i]
			ovals := out.Val[base:s.RowPtr[i+1]]
			svals := s.RowVals(i)
			cols := s.RowCols(i)
			// Tile nonzeros first (the dense-tile kernel), then the rest
			// (the row-wise kernel); position within the source row is
			// recovered by column index, which is unique per row.
			for pass := 0; pass < 2; pass++ {
				var pcols []int32
				if pass == 0 {
					pcols = t.TileRowCols(i)
				} else {
					pcols = t.Rest.RowCols(i)
				}
				for _, c := range pcols {
					j := searchInt32(cols, c)
					ovals[j] = dot(yi, x.Row(int(c))) * svals[j]
				}
			}
		}
	})
	return out, nil
}

// searchInt32 returns the index of c in the sorted slice cols. The caller
// guarantees presence (CSR rows have unique, sorted columns).
func searchInt32(cols []int32, c int32) int {
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := (lo + hi) / 2
		if cols[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Flops returns the floating-point operation count of an SpMM or SDDMM on
// a matrix with nnz nonzeros and K dense columns: 2·nnz·K (one multiply
// and one add per nonzero per column), the normalisation used for the
// paper's GFLOP/s plots.
func Flops(nnz, k int) float64 { return 2 * float64(nnz) * float64(k) }
