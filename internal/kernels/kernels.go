// Package kernels provides the native (CPU, goroutine-parallel) SpMM and
// SDDMM implementations. They are the correctness ground truth for the GPU
// simulator and the executable backend of the examples: the row-wise
// variants implement Alg 1 and Alg 2 of the paper verbatim; the ASpT
// variants execute the tiled representation (dense tiles, then the
// leftover sparse part) and must produce bit-identical structure and
// numerically equal values.
//
// Execution is load-balanced by nonzero count rather than row count (see
// executor.go), and every kernel has an allocation-free *Into variant
// that writes a caller-provided output — the building blocks of the
// zero-allocation serving path exposed by the repro package.
package kernels

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/aspt"
	"repro/internal/dense"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// parallelRows runs fn over [0, rows) split into contiguous equal-row
// chunks across GOMAXPROCS workers — the seed engine, kept as the
// baseline for the load-balance tests and benchmarks. New code should
// go through job.dispatch, which balances by nonzeros.
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func checkSpMMShapes(s *sparse.CSR, x *dense.Matrix) error {
	if s.Cols != x.Rows {
		return fmt.Errorf("kernels: SpMM shape mismatch: S is %dx%d, X is %dx%d",
			s.Rows, s.Cols, x.Rows, x.Cols)
	}
	return nil
}

func checkSpMMOut(s *sparse.CSR, x, y *dense.Matrix) error {
	if y.Rows != s.Rows || y.Cols != x.Cols {
		return fmt.Errorf("kernels: SpMM output is %dx%d, want %dx%d",
			y.Rows, y.Cols, s.Rows, x.Cols)
	}
	return nil
}

// SpMMRowWise computes Y = S·X with the row-wise algorithm (Alg 1),
// parallelised over rows. It allocates and returns Y (S.Rows × X.Cols).
func SpMMRowWise(s *sparse.CSR, x *dense.Matrix) (*dense.Matrix, error) {
	if err := checkSpMMShapes(s, x); err != nil {
		return nil, err
	}
	y := dense.New(s.Rows, x.Cols)
	return y, SpMMRowWiseInto(y, s, x)
}

// SpMMRowWiseInto computes Y = S·X into the caller-provided y
// (S.Rows × X.Cols), overwriting its contents. At steady state the call
// performs no heap allocations.
func SpMMRowWiseInto(y *dense.Matrix, s *sparse.CSR, x *dense.Matrix) error {
	return SpMMRowWiseIntoCtx(context.Background(), y, s, x)
}

// SpMMRowWiseIntoCtx is SpMMRowWiseInto with cooperative cancellation
// between chunks and panic isolation (a kernel panic returns as a
// *par.PanicError). On error the output contents are unspecified.
func SpMMRowWiseIntoCtx(ctx context.Context, y *dense.Matrix, s *sparse.CSR, x *dense.Matrix) error {
	if err := checkSpMMShapes(s, x); err != nil {
		return err
	}
	if err := checkSpMMOut(s, x, y); err != nil {
		return err
	}
	start := time.Now()
	sp := obs.TraceFrom(ctx).StartSpan("kernel_spmm_rowwise")
	j := getJob()
	j.run = runSpMMRowWise
	j.ctx = ctx
	j.attr = attrSpMMRowWise
	j.csr, j.x, j.y = s, x, y
	err := j.dispatch(s.Rows, func(i int) int64 { return int64(s.RowPtr[i]) })
	if err == nil {
		attrSpMMRowWise.recordPass(j, s.NNZ(), s.Rows, x.Cols)
	}
	putJob(j)
	sp.End()
	kernelSpMMRowWise.ObserveSince(start)
	return err
}

func runSpMMRowWise(j *job, lo, hi int) {
	s, x, y := j.csr, j.x, j.y
	for i := lo; i < hi; i++ {
		yi := y.Row(i)
		clear(yi)
		cols, vals := s.RowCols(i), s.RowVals(i)
		for jj := range cols {
			v := vals[jj]
			xr := x.Row(int(cols[jj]))
			for k := range yi {
				yi[k] += v * xr[k]
			}
		}
	}
}

// SpMMASpT computes Y = S·X from the ASpT representation: dense-tile
// nonzeros and leftover nonzeros are accumulated separately per row (the
// two GPU kernels of §2.3), then summed — both traversals write the same
// output row, so a single pass per row suffices on the CPU.
func SpMMASpT(t *aspt.Matrix, x *dense.Matrix) (*dense.Matrix, error) {
	if err := checkSpMMShapes(t.Src, x); err != nil {
		return nil, err
	}
	y := dense.New(t.Src.Rows, x.Cols)
	return y, SpMMASpTInto(y, t, x)
}

// SpMMASpTInto computes Y = S·X from the ASpT representation into the
// caller-provided y, overwriting its contents. Work is balanced by each
// row's combined tile+rest nonzero count. At steady state the call
// performs no heap allocations.
func SpMMASpTInto(y *dense.Matrix, t *aspt.Matrix, x *dense.Matrix) error {
	return SpMMASpTIntoCtx(context.Background(), y, t, x)
}

// SpMMASpTIntoCtx is SpMMASpTInto with cooperative cancellation between
// chunks and panic isolation. On error the output contents are
// unspecified.
func SpMMASpTIntoCtx(ctx context.Context, y *dense.Matrix, t *aspt.Matrix, x *dense.Matrix) error {
	if err := checkSpMMShapes(t.Src, x); err != nil {
		return err
	}
	if err := checkSpMMOut(t.Src, x, y); err != nil {
		return err
	}
	start := time.Now()
	sp := obs.TraceFrom(ctx).StartSpan("kernel_spmm_aspt")
	j := getJob()
	j.run = runSpMMASpT
	j.ctx = ctx
	j.attr = attrSpMMASpT
	j.tile, j.x, j.y = t, x, y
	err := j.dispatch(t.Src.Rows, t.CumWork)
	if err == nil {
		attrSpMMASpT.recordPass(j, t.Src.NNZ(), t.Src.Rows, x.Cols)
	}
	putJob(j)
	sp.End()
	kernelSpMMASpT.ObserveSince(start)
	return err
}

func runSpMMASpT(j *job, lo, hi int) {
	t, x, y := j.tile, j.x, j.y
	for i := lo; i < hi; i++ {
		yi := y.Row(i)
		clear(yi)
		// Dense-tile part.
		tcols, tvals := t.TileRowCols(i), t.TileRowVals(i)
		for jj := range tcols {
			v := tvals[jj]
			xr := x.Row(int(tcols[jj]))
			for k := range yi {
				yi[k] += v * xr[k]
			}
		}
		// Leftover sparse part.
		rcols, rvals := t.Rest.RowCols(i), t.Rest.RowVals(i)
		for jj := range rcols {
			v := rvals[jj]
			xr := x.Row(int(rcols[jj]))
			for k := range yi {
				yi[k] += v * xr[k]
			}
		}
	}
}

func checkSDDMMShapes(s *sparse.CSR, x, y *dense.Matrix) error {
	if x.Cols != y.Cols {
		return fmt.Errorf("kernels: SDDMM K mismatch: X has %d cols, Y has %d", x.Cols, y.Cols)
	}
	if y.Rows != s.Rows {
		return fmt.Errorf("kernels: SDDMM shape mismatch: Y has %d rows, S has %d", y.Rows, s.Rows)
	}
	if x.Rows != s.Cols {
		return fmt.Errorf("kernels: SDDMM shape mismatch: X has %d rows, S has %d cols", x.Rows, s.Cols)
	}
	return nil
}

// checkSDDMMOut verifies the output matrix mirrors s's structure. The
// full pattern comparison is O(nnz) with no allocations — negligible
// next to the O(nnz·K) kernel.
func checkSDDMMOut(s, out *sparse.CSR) error {
	if out == s {
		return nil // writing values in place over the source is allowed
	}
	if !out.SameStructure(s) {
		return fmt.Errorf("kernels: SDDMM output structure differs from S (%s vs %s)", out, s)
	}
	return nil
}

// SDDMMRowWise computes O = S ⊙ (Y·Xᵀ) with the row-wise algorithm
// (Alg 2): O has the sparsity pattern of S, and O[i][c] =
// S[i][c] · Σ_k Y[i][k]·X[c][k]. The result reuses S's structure with
// fresh values.
func SDDMMRowWise(s *sparse.CSR, x, y *dense.Matrix) (*sparse.CSR, error) {
	if err := checkSDDMMShapes(s, x, y); err != nil {
		return nil, err
	}
	out := s.Clone()
	return out, SDDMMRowWiseInto(out, s, x, y)
}

// SDDMMRowWiseInto computes O = S ⊙ (Y·Xᵀ) into the caller-provided
// out, which must have S's sparsity structure (e.g. S.Clone(), a
// previous result, or S itself for in-place value rewriting). Only
// out.Val is written. At steady state the call performs no heap
// allocations.
func SDDMMRowWiseInto(out, s *sparse.CSR, x, y *dense.Matrix) error {
	return SDDMMRowWiseIntoCtx(context.Background(), out, s, x, y)
}

// SDDMMRowWiseIntoCtx is SDDMMRowWiseInto with cooperative cancellation
// between chunks and panic isolation. On error the output values are
// unspecified.
func SDDMMRowWiseIntoCtx(ctx context.Context, out, s *sparse.CSR, x, y *dense.Matrix) error {
	if err := checkSDDMMShapes(s, x, y); err != nil {
		return err
	}
	if err := checkSDDMMOut(s, out); err != nil {
		return err
	}
	start := time.Now()
	sp := obs.TraceFrom(ctx).StartSpan("kernel_sddmm_rowwise")
	j := getJob()
	j.run = runSDDMMRowWise
	j.ctx = ctx
	j.attr = attrSDDMMRowWise
	j.csr, j.x, j.y, j.out = s, x, y, out.Val
	err := j.dispatch(s.Rows, func(i int) int64 { return int64(s.RowPtr[i]) })
	if err == nil {
		attrSDDMMRowWise.recordPass(j, s.NNZ(), s.Rows, x.Cols)
	}
	putJob(j)
	sp.End()
	kernelSDDMMRowWise.ObserveSince(start)
	return err
}

func runSDDMMRowWise(j *job, lo, hi int) {
	s, x, y := j.csr, j.x, j.y
	for i := lo; i < hi; i++ {
		yi := y.Row(i)
		cols := s.RowCols(i)
		svals := s.RowVals(i)
		ovals := j.out[s.RowPtr[i]:s.RowPtr[i+1]]
		for jj := range cols {
			xr := x.Row(int(cols[jj]))
			dot := float32(0)
			for k := range yi {
				dot += yi[k] * xr[k]
			}
			ovals[jj] = dot * svals[jj]
		}
	}
}

// SDDMMASpT computes SDDMM from the ASpT representation. The output keeps
// the *source* matrix's CSR structure (ASpT preserves CSR compatibility,
// one of its selling points); tile and rest nonzeros are scattered back to
// their source positions.
func SDDMMASpT(t *aspt.Matrix, x, y *dense.Matrix) (*sparse.CSR, error) {
	if err := checkSDDMMShapes(t.Src, x, y); err != nil {
		return nil, err
	}
	out := t.Src.Clone()
	return out, SDDMMASpTInto(out, t, x, y)
}

// SDDMMASpTInto computes SDDMM from the ASpT representation into the
// caller-provided out, which must have the source matrix's structure.
// Only out.Val is written. At steady state the call performs no heap
// allocations.
func SDDMMASpTInto(out *sparse.CSR, t *aspt.Matrix, x, y *dense.Matrix) error {
	return SDDMMASpTIntoCtx(context.Background(), out, t, x, y)
}

// SDDMMASpTIntoCtx is SDDMMASpTInto with cooperative cancellation
// between chunks and panic isolation. On error the output values are
// unspecified.
func SDDMMASpTIntoCtx(ctx context.Context, out *sparse.CSR, t *aspt.Matrix, x, y *dense.Matrix) error {
	if err := checkSDDMMShapes(t.Src, x, y); err != nil {
		return err
	}
	if err := checkSDDMMOut(t.Src, out); err != nil {
		return err
	}
	start := time.Now()
	sp := obs.TraceFrom(ctx).StartSpan("kernel_sddmm_aspt")
	j := getJob()
	j.run = runSDDMMASpT
	j.ctx = ctx
	j.attr = attrSDDMMASpT
	j.tile, j.x, j.y, j.out = t, x, y, out.Val
	err := j.dispatch(t.Src.Rows, t.CumWork)
	if err == nil {
		attrSDDMMASpT.recordPass(j, t.Src.NNZ(), t.Src.Rows, x.Cols)
	}
	putJob(j)
	sp.End()
	kernelSDDMMASpT.ObserveSince(start)
	return err
}

func runSDDMMASpT(j *job, lo, hi int) {
	t, x, y := j.tile, j.x, j.y
	s := t.Src
	// The tile/rest partition changes *where* each nonzero's X row is
	// read from on the GPU (shared memory vs global), not the arithmetic:
	// every nonzero is scaled by its own source value regardless of
	// partition. The partition-aware traffic accounting lives in gpusim;
	// here the two partitions are walked to mirror the execution order.
	for i := lo; i < hi; i++ {
		yi := y.Row(i)
		ovals := j.out[s.RowPtr[i]:s.RowPtr[i+1]]
		svals := s.RowVals(i)
		cols := s.RowCols(i)
		// Tile nonzeros first (the dense-tile kernel), then the rest
		// (the row-wise kernel); position within the source row is
		// recovered by column index, which is unique per row.
		for pass := 0; pass < 2; pass++ {
			var pcols []int32
			if pass == 0 {
				pcols = t.TileRowCols(i)
			} else {
				pcols = t.Rest.RowCols(i)
			}
			for _, c := range pcols {
				xr := x.Row(int(c))
				dot := float32(0)
				for k := range yi {
					dot += yi[k] * xr[k]
				}
				jj := searchInt32(cols, c)
				ovals[jj] = dot * svals[jj]
			}
		}
	}
}

// searchInt32 returns the index of c in the sorted slice cols. The caller
// guarantees presence (CSR rows have unique, sorted columns).
func searchInt32(cols []int32, c int32) int {
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := (lo + hi) / 2
		if cols[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Flops returns the floating-point operation count of an SpMM or SDDMM on
// a matrix with nnz nonzeros and K dense columns: 2·nnz·K (one multiply
// and one add per nonzero per column), the normalisation used for the
// paper's GFLOP/s plots.
func Flops(nnz, k int) float64 { return 2 * float64(nnz) * float64(k) }
