package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/aspt"
	"repro/internal/dense"
	"repro/internal/paperex"
	"repro/internal/sparse"
)

// naiveSpMM is the O(M·N·K) dense reference.
func naiveSpMM(s *sparse.CSR, x *dense.Matrix) *dense.Matrix {
	sd := s.ToDense()
	y := dense.New(s.Rows, x.Cols)
	for i := 0; i < s.Rows; i++ {
		for c := 0; c < s.Cols; c++ {
			v := sd[i][c]
			if v == 0 {
				continue
			}
			for k := 0; k < x.Cols; k++ {
				y.Data[i*x.Cols+k] += v * x.At(c, k)
			}
		}
	}
	return y
}

// naiveSDDMM is the dense reference for Alg 2.
func naiveSDDMM(s *sparse.CSR, x, y *dense.Matrix) *sparse.CSR {
	out := s.Clone()
	for i := 0; i < s.Rows; i++ {
		cols, svals := s.RowCols(i), s.RowVals(i)
		ovals := out.Val[s.RowPtr[i]:s.RowPtr[i+1]]
		for j := range cols {
			dot := float32(0)
			for k := 0; k < x.Cols; k++ {
				dot += y.At(i, k) * x.At(int(cols[j]), k)
			}
			ovals[j] = dot * svals[j]
		}
	}
	return out
}

func randomMatrix(rng *rand.Rand, rows, cols, maxPerRow int) *sparse.CSR {
	sets := make([][]int32, rows)
	vals := make([][]float32, rows)
	for i := range sets {
		n := rng.Intn(maxPerRow + 1)
		if n > cols {
			n = cols
		}
		seen := map[int32]bool{}
		for len(seen) < n {
			seen[int32(rng.Intn(cols))] = true
		}
		for c := range seen {
			sets[i] = append(sets[i], c)
			vals[i] = append(vals[i], rng.Float32()*2-1)
		}
	}
	m, err := sparse.FromRows(rows, cols, sets, vals)
	if err != nil {
		panic(err)
	}
	return m
}

func TestSpMMPaperExample(t *testing.T) {
	m := paperex.Matrix()
	x := dense.NewRandom(m.Cols, 8, 1)
	y, err := SpMMRowWise(m, x)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveSpMM(m, x)
	if d := dense.MaxAbsDiff(y, want); d > 1e-5 {
		t.Fatalf("SpMM differs from naive by %v", d)
	}
}

func TestSpMMShapeErrors(t *testing.T) {
	m := paperex.Matrix() // 6x6
	x := dense.New(5, 4)  // wrong inner dimension
	if _, err := SpMMRowWise(m, x); err == nil {
		t.Fatalf("accepted shape mismatch")
	}
	tl, err := aspt.Build(m, aspt.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SpMMASpT(tl, x); err == nil {
		t.Fatalf("ASpT accepted shape mismatch")
	}
}

func TestSDDMMShapeErrors(t *testing.T) {
	m := paperex.Matrix() // 6x6
	okX, okY := dense.New(6, 4), dense.New(6, 4)
	if _, err := SDDMMRowWise(m, okX, okY); err != nil {
		t.Fatalf("rejected valid shapes: %v", err)
	}
	if _, err := SDDMMRowWise(m, dense.New(6, 4), dense.New(6, 5)); err == nil {
		t.Fatalf("accepted K mismatch")
	}
	if _, err := SDDMMRowWise(m, dense.New(5, 4), okY); err == nil {
		t.Fatalf("accepted X row mismatch")
	}
	if _, err := SDDMMRowWise(m, okX, dense.New(5, 4)); err == nil {
		t.Fatalf("accepted Y row mismatch")
	}
	tl, _ := aspt.Build(m, aspt.DefaultParams())
	if _, err := SDDMMASpT(tl, dense.New(5, 4), okY); err == nil {
		t.Fatalf("ASpT SDDMM accepted shape mismatch")
	}
}

func TestSpMMEmptyMatrix(t *testing.T) {
	m := &sparse.CSR{Rows: 3, Cols: 4, RowPtr: []int32{0, 0, 0, 0}}
	x := dense.NewRandom(4, 5, 2)
	y, err := SpMMRowWise(m, x)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range y.Data {
		if v != 0 {
			t.Fatalf("empty matrix produced nonzero output")
		}
	}
}

func TestSDDMMScalesByValues(t *testing.T) {
	// SDDMM must multiply by the sparse values (the Hadamard product),
	// not just sample the dot products.
	m, err := sparse.FromRows(1, 2, [][]int32{{0, 1}}, [][]float32{{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	x := dense.New(2, 1)
	x.Set(0, 0, 5)
	x.Set(1, 0, 7)
	y := dense.New(1, 1)
	y.Set(0, 0, 1)
	out, err := SDDMMRowWise(m, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if out.Val[0] != 10 || out.Val[1] != 21 {
		t.Fatalf("SDDMM values = %v, want [10 21]", out.Val)
	}
}

func TestFlops(t *testing.T) {
	if got := Flops(100, 512); got != 102400 {
		t.Fatalf("Flops = %v", got)
	}
}

// Property: row-wise SpMM matches the naive dense reference.
func TestPropertySpMMMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 1+rng.Intn(30), 1+rng.Intn(20), 6)
		x := dense.NewRandom(m.Cols, 1+rng.Intn(16), seed)
		y, err := SpMMRowWise(m, x)
		if err != nil {
			return false
		}
		return dense.MaxAbsDiff(y, naiveSpMM(m, x)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ASpT SpMM equals row-wise SpMM for any tiling parameters.
func TestPropertySpMMASpTEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 1+rng.Intn(60), 1+rng.Intn(30), 8)
		p := aspt.Params{PanelSize: 1 + rng.Intn(8), DenseThreshold: 2 + rng.Intn(3)}
		tl, err := aspt.Build(m, p)
		if err != nil {
			return false
		}
		x := dense.NewRandom(m.Cols, 1+rng.Intn(12), seed)
		ya, err := SpMMASpT(tl, x)
		if err != nil {
			return false
		}
		yr, err := SpMMRowWise(m, x)
		if err != nil {
			return false
		}
		return dense.MaxAbsDiff(ya, yr) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ASpT SDDMM equals row-wise SDDMM (same structure, same
// values).
func TestPropertySDDMMASpTEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 1+rng.Intn(60), 1+rng.Intn(30), 8)
		p := aspt.Params{PanelSize: 1 + rng.Intn(8), DenseThreshold: 2 + rng.Intn(3)}
		tl, err := aspt.Build(m, p)
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(12)
		x := dense.NewRandom(m.Cols, k, seed)
		y := dense.NewRandom(m.Rows, k, seed+1)
		oa, err := SDDMMASpT(tl, x, y)
		if err != nil {
			return false
		}
		or, err := SDDMMRowWise(m, x, y)
		if err != nil {
			return false
		}
		if !oa.SameStructure(or) {
			return false
		}
		for j := range oa.Val {
			if math.Abs(float64(oa.Val[j]-or.Val[j])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: SDDMM row-wise matches the naive reference.
func TestPropertySDDMMMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 1+rng.Intn(25), 1+rng.Intn(20), 5)
		k := 1 + rng.Intn(10)
		x := dense.NewRandom(m.Cols, k, seed)
		y := dense.NewRandom(m.Rows, k, seed+1)
		got, err := SDDMMRowWise(m, x, y)
		if err != nil {
			return false
		}
		want := naiveSDDMM(m, x, y)
		for j := range got.Val {
			if math.Abs(float64(got.Val[j]-want.Val[j])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: SpMM is linear in the sparse values: SpMM(2S, X) = 2·SpMM(S, X).
func TestPropertySpMMLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 1+rng.Intn(20), 1+rng.Intn(20), 5)
		x := dense.NewRandom(m.Cols, 4, seed)
		y1, err := SpMMRowWise(m, x)
		if err != nil {
			return false
		}
		m2 := m.Clone()
		for j := range m2.Val {
			m2.Val[j] *= 2
		}
		y2, err := SpMMRowWise(m2, x)
		if err != nil {
			return false
		}
		for i := range y1.Data {
			if math.Abs(float64(y2.Data[i]-2*y1.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
