package kernels

import (
	"testing"

	"repro/internal/aspt"
	"repro/internal/dense"
	"repro/internal/ellpack"
)

// TestIntoZeroAllocsAfterWarmup pins every *Into kernel to exactly zero
// steady-state allocations — the regression test behind the
// BENCH_kernels.json numbers. The earlier lenient bound (< 2) let the
// bench harness's missing warmup masquerade as a hot-path leak: with
// -benchtime 1x the merge kernel reported 10 allocs/op that were all
// first-call pool misses (job struct, merge chunk and carry slabs).
// After a warmup the contract is exact; assertZeroAllocsAfterWarmup
// retries a couple of times so a GC emptying the sync.Pools
// mid-measurement cannot flake the pin.
func TestIntoZeroAllocsAfterWarmup(t *testing.T) {
	m := hubMatrix(t)
	tl, err := aspt.Build(m, aspt.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ell, err := ellpack.FromCSR(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := ellpack.FromCSRHybrid(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := dense.NewRandom(m.Cols, 16, 1)
	y := dense.New(m.Rows, 16)
	out := m.Clone()
	yd := dense.NewRandom(m.Rows, 16, 2)
	for name, call := range map[string]func() error{
		"SpMMRowWiseInto":  func() error { return SpMMRowWiseInto(y, m, x) },
		"SpMMMergeInto":    func() error { return SpMMMergeInto(y, m, x) },
		"SpMMELLInto":      func() error { return SpMMELLInto(y, ell, x) },
		"SpMMHybridInto":   func() error { return SpMMHybridInto(y, hyb, x) },
		"SpMMASpTInto":     func() error { return SpMMASpTInto(y, tl, x) },
		"SDDMMRowWiseInto": func() error { return SDDMMRowWiseInto(out, m, x, yd) },
		"SDDMMASpTInto":    func() error { return SDDMMASpTInto(out, tl, x, yd) },
	} {
		call := call
		assertZeroAllocsAfterWarmup(t, name, func() {
			if err := call(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
