package kernels

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"

	"repro/internal/dense"
	"repro/internal/ellpack"
	"repro/internal/faultinject"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/synth"
)

// approxEqual compares two dense outputs with a floating-point
// tolerance: the merge kernel sums a split row's fragments in a
// different association order than the row-wise kernel, so bit equality
// is not guaranteed (or expected).
func approxEqual(t *testing.T, name string, got, want *dense.Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, w := range want.Data {
		g := got.Data[i]
		tol := 1e-3 * math.Max(1, math.Abs(float64(w)))
		if math.Abs(float64(g-w)) > tol {
			t.Fatalf("%s: element %d = %v, want %v", name, i, g, w)
		}
	}
}

// edgeMatrices are the hand-built shapes ISSUE calls out: empty rows in
// every position, a matrix with no rows, an all-empty matrix, and a hub
// row holding >50% of all nonzeros (the row-wise straggler case).
func edgeMatrices(t *testing.T) map[string]*sparse.CSR {
	t.Helper()
	build := func(rows, cols int, sets [][]int32) *sparse.CSR {
		m, err := sparse.FromRows(rows, cols, sets, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	hub := make([]int32, 40) // row 2 holds 40 of 76 nonzeros
	for i := range hub {
		hub[i] = int32(i)
	}
	sets := make([][]int32, 64)
	sets[2] = hub
	for i := 4; i < 40; i++ {
		sets[i] = []int32{int32(i % 41)}
	}
	return map[string]*sparse.CSR{
		"zero-rows":      build(0, 8, nil),
		"all-empty":      build(16, 8, make([][]int32, 16)),
		"leading-empty":  build(6, 8, [][]int32{{}, {}, {0, 3}, {1}, {}, {2, 5, 7}}),
		"trailing-empty": build(6, 8, [][]int32{{0, 3}, {1}, {2, 5, 7}, {}, {}, {}}),
		"hub-majority":   build(64, 41, sets),
		"single-row":     build(1, 8, [][]int32{{0, 2, 4, 6}}),
		"single-nonzero": build(5, 5, [][]int32{{}, {}, {3}, {}, {}}),
		"dense-tiny":     build(3, 3, [][]int32{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}),
	}
}

// TestKernelsAgreeAcrossCorpus is the cross-kernel property test: ELL,
// HYB, merge, and row-wise SpMM must produce identical output (within
// float tolerance) on every synth corpus family and on the edge shapes
// above.
func TestKernelsAgreeAcrossCorpus(t *testing.T) {
	mats := edgeMatrices(t)
	entries, err := synth.Corpus(synth.Options{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		mats["corpus/"+e.Name] = e.M
	}
	for name, m := range mats {
		for _, k := range []int{1, 8} {
			x := dense.NewRandom(m.Cols, k, 7)
			want, err := SpMMRowWise(m, x)
			if err != nil {
				t.Fatalf("%s: rowwise: %v", name, err)
			}

			got, err := SpMMMerge(m, x)
			if err != nil {
				t.Fatalf("%s: merge: %v", name, err)
			}
			approxEqual(t, name+"/merge", got, want)

			ell, err := ellpack.FromCSR(m, 0)
			if err != nil {
				t.Fatalf("%s: FromCSR: %v", name, err)
			}
			got, err = SpMMELL(ell, x)
			if err != nil {
				t.Fatalf("%s: ell: %v", name, err)
			}
			approxEqual(t, name+"/ell", got, want)

			hyb, err := ellpack.FromCSRHybrid(m, 0)
			if err != nil {
				t.Fatalf("%s: FromCSRHybrid: %v", name, err)
			}
			got, err = SpMMHybrid(hyb, x)
			if err != nil {
				t.Fatalf("%s: hyb: %v", name, err)
			}
			approxEqual(t, name+"/hyb", got, want)
		}
	}
}

// TestMergeManyChunksOneRow forces far more chunks than rows so a
// single row is split across many carry slots — the pure carry path.
func TestMergeManyChunksOneRow(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	cols := 4096
	set := make([]int32, cols)
	for i := range set {
		set[i] = int32(i)
	}
	m, err := sparse.FromRows(1, cols, [][]int32{set}, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := dense.NewRandom(cols, 8, 3)
	want, err := SpMMRowWise(m, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SpMMMerge(m, x)
	if err != nil {
		t.Fatal(err)
	}
	approxEqual(t, "one-row", got, want)
}

func TestFormatShapeErrors(t *testing.T) {
	m := hubMatrix(t)
	ell, err := ellpack.FromCSR(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := ellpack.FromCSRHybrid(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	badX := dense.New(m.Cols+1, 4)
	if _, err := SpMMMerge(m, badX); err == nil {
		t.Fatal("merge accepted mismatched X")
	}
	if _, err := SpMMELL(ell, badX); err == nil {
		t.Fatal("ELL accepted mismatched X")
	}
	if _, err := SpMMHybrid(hyb, badX); err == nil {
		t.Fatal("HYB accepted mismatched X")
	}
	x := dense.New(m.Cols, 4)
	badY := dense.New(m.Rows+1, 4)
	if err := SpMMMergeInto(badY, m, x); err == nil {
		t.Fatal("merge accepted mismatched Y")
	}
	if err := SpMMELLInto(badY, ell, x); err == nil {
		t.Fatal("ELL accepted mismatched Y")
	}
	if err := SpMMHybridInto(badY, hyb, x); err == nil {
		t.Fatal("HYB accepted mismatched Y")
	}
}

// TestNewIntoSteadyStateAllocations extends the zero-allocation
// contract to the merge, ELL, and HYB paths.
func TestNewIntoSteadyStateAllocations(t *testing.T) {
	m := hubMatrix(t)
	ell, err := ellpack.FromCSR(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := ellpack.FromCSRHybrid(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := dense.NewRandom(m.Cols, 16, 1)
	y := dense.New(m.Rows, 16)
	for name, call := range map[string]func() error{
		"merge": func() error { return SpMMMergeInto(y, m, x) },
		"ell":   func() error { return SpMMELLInto(y, ell, x) },
		"hyb":   func() error { return SpMMHybridInto(y, hyb, x) },
	} {
		for i := 0; i < 3; i++ { // warm the job and worker pools
			if err := call(); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(20, func() {
			if err := call(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs >= 2 {
			t.Fatalf("%s Into allocates %v objects per call at steady state, want ~0", name, allocs)
		}
	}
}

// TestNewKernelHardening checks the fault-injection and cancellation
// contract on the merge, ELL, and HYB paths.
func TestNewKernelHardening(t *testing.T) {
	m := hubMatrix(t)
	ell, err := ellpack.FromCSR(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := ellpack.FromCSRHybrid(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := dense.NewRandom(m.Cols, 8, 1)
	y := dense.New(m.Rows, 8)
	calls := map[string]func(context.Context) error{
		"merge": func(ctx context.Context) error { return SpMMMergeIntoCtx(ctx, y, m, x) },
		"ell":   func(ctx context.Context) error { return SpMMELLIntoCtx(ctx, y, ell, x) },
		"hyb":   func(ctx context.Context) error { return SpMMHybridIntoCtx(ctx, y, hyb, x) },
	}
	for name, call := range calls {
		undo := faultinject.ErrorAt("kernels.exec")
		if err := call(context.Background()); !errors.Is(err, faultinject.Err) {
			t.Fatalf("%s with fault = %v, want faultinject.Err", name, err)
		}
		undo()
		faultinject.Reset()

		undo = faultinject.PanicAt("kernels.exec")
		err := call(context.Background())
		var pe *par.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%s panic surfaced as %v, want *par.PanicError", name, err)
		}
		undo()
		faultinject.Reset()

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := call(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-cancelled %s = %v, want context.Canceled", name, err)
		}

		if err := call(context.Background()); err != nil {
			t.Fatalf("clean %s after faults: %v", name, err)
		}
	}
}
