package kernels

// Merge-based (nonzero-split) SpMM, after "Merge-Based Parallel Sparse
// Matrix-Vector Multiplication" (Merrill & Garland) and the nonzero-split
// SpMM of "Design Principles for Sparse Matrix Multiplication on the
// GPU" (Yang, Buluç & Owens, cited in PAPERS.md).
//
// The row-wise kernel balances *chunks* by nonzeros but still assigns
// whole rows to chunks, so a hub row holding half the matrix serialises
// inside one chunk. The merge kernel removes the row granularity
// entirely: the flat nonzero range [0, nnz) is cut into equal slices,
// and a row crossing a cut is computed piecewise — each chunk
// accumulates the fragment it owns, head fragments land in a per-chunk
// carry slot, and a serial O(chunks·K) fix-up adds the carries back.
// Per-chunk work is bounded by ⌈nnz/chunks⌉ regardless of skew.
//
// Ownership: for each slice boundary b, ownStart(b) is the first row
// whose output this side of the cut owns — rowOf(b) when row rowOf(b)
// starts exactly at b, rowOf(b)+1 otherwise (its head belongs to the
// chunk on the left). Chunk c owns rows [ownStart(b_c), ownStart(b_c+1)),
// clearing and accumulating them directly; the spans of all chunks tile
// [0, rows) exactly (boundaries 0 and nnz are pinned to rows 0 and
// Rows), so every output row — including empty ones — is cleared exactly
// once, with no atomics and no write races. The only cross-chunk rows
// are chunk heads whose row began in an earlier slice: their partial
// sums go to the chunk's carry slot and are added serially after the
// join, in chunk order.

import (
	"context"
	"runtime"
	"time"

	"repro/internal/dense"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// mergeChunk is one slice of the flat nonzero range: entries [s, e) of
// ColIdx/Val, with firstRow = rowOf(s) and the owned row span
// [zLo, zHi) this chunk clears and writes directly.
type mergeChunk struct {
	s, e     int
	firstRow int
	zLo, zHi int
}

// SpMMMerge computes Y = S·X with the merge-based (nonzero-split)
// kernel. It allocates and returns Y (S.Rows × X.Cols).
func SpMMMerge(s *sparse.CSR, x *dense.Matrix) (*dense.Matrix, error) {
	if err := checkSpMMShapes(s, x); err != nil {
		return nil, err
	}
	y := dense.New(s.Rows, x.Cols)
	return y, SpMMMergeInto(y, s, x)
}

// SpMMMergeInto computes Y = S·X into the caller-provided y
// (S.Rows × X.Cols), overwriting its contents. At steady state the call
// performs no heap allocations.
func SpMMMergeInto(y *dense.Matrix, s *sparse.CSR, x *dense.Matrix) error {
	return SpMMMergeIntoCtx(context.Background(), y, s, x)
}

// SpMMMergeIntoCtx is SpMMMergeInto with cooperative cancellation
// between chunks and panic isolation (a kernel panic returns as a
// *par.PanicError). On error the output contents are unspecified.
func SpMMMergeIntoCtx(ctx context.Context, y *dense.Matrix, s *sparse.CSR, x *dense.Matrix) error {
	if err := checkSpMMShapes(s, x); err != nil {
		return err
	}
	if err := checkSpMMOut(s, x, y); err != nil {
		return err
	}
	start := time.Now()
	sp := obs.TraceFrom(ctx).StartSpan("kernel_spmm_merge")
	j := getJob()
	j.ctx = ctx
	j.attr = attrSpMMMerge
	j.csr, j.x, j.y = s, x, y
	var err error
	if s.NNZ() == 0 {
		// Nothing to split on: the row-wise kernel degenerates to a
		// parallel clear of every output row, which is exactly the answer.
		j.run = runSpMMRowWise
		err = j.dispatch(s.Rows, func(int) int64 { return 0 })
	} else {
		j.run = runSpMMMerge
		workers := mergeWorkers(s.NNZ())
		buildMergeChunks(j, workers*chunksPerWorker)
		err = j.dispatchChunks(workers)
		if err == nil {
			mergeFixup(j)
		}
	}
	if err == nil {
		attrSpMMMerge.recordPass(j, s.NNZ(), s.Rows, x.Cols)
	}
	putJob(j)
	sp.End()
	kernelSpMMMerge.ObserveSince(start)
	return err
}

// mergeWorkers bounds dispatch width by available parallelism and the
// nonzero count (a chunk needs at least one nonzero to be useful).
func mergeWorkers(nnz int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > nnz {
		workers = nnz
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// buildMergeChunks slices [0, nnz) into up to nchunks equal parts and
// precomputes each chunk's first row and owned span. The generic chunk
// list is filled with {i, i+1} indices so the executor's stealing loop
// claims merge chunks without knowing their shape. Carry state is sized
// for nchunks slots of K floats each; all slices retain capacity across
// pooled reuse, so a steady-state call allocates nothing.
func buildMergeChunks(j *job, nchunks int) {
	s := j.csr
	nnz := s.NNZ()
	if nchunks > nnz {
		nchunks = nnz
	}
	if nchunks < 1 {
		nchunks = 1
	}
	k := j.x.Cols
	j.mergeChunks = j.mergeChunks[:0]
	j.chunks = j.chunks[:0]
	j.carryRow = growInt32(j.carryRow, nchunks)
	j.carryVal = growFloat32(j.carryVal, nchunks*k)
	prevB := 0
	prevRow := rowOfNZ(s.RowPtr, 0)
	prevOwn := 0 // boundary 0 owns from row 0: leading empty rows included
	for c := 0; c < nchunks; c++ {
		b := int(int64(nnz) * int64(c+1) / int64(nchunks))
		var row, own int
		if c == nchunks-1 {
			row, own = s.Rows, s.Rows // trailing empty rows included
		} else {
			row = rowOfNZ(s.RowPtr, b)
			own = row
			if int(s.RowPtr[row]) < b {
				own = row + 1 // row's head belongs to this chunk
			}
		}
		j.mergeChunks = append(j.mergeChunks, mergeChunk{
			s: prevB, e: b, firstRow: prevRow, zLo: prevOwn, zHi: own,
		})
		j.chunks = append(j.chunks, rowChunk{c, c + 1})
		j.carryRow[c] = -1
		prevB, prevRow, prevOwn = b, row, own
	}
}

// rowOfNZ returns the row containing flat nonzero index k: the largest
// i with rowPtr[i] <= k. Runs of equal rowPtr entries (empty rows)
// resolve to the last duplicate, the row that actually stores entry k.
func rowOfNZ(rowPtr []int32, k int) int {
	lo, hi := 0, len(rowPtr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(rowPtr[mid]) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

func runSpMMMerge(j *job, lo, hi int) {
	s, x, y := j.csr, j.x, j.y
	k := x.Cols
	for ci := lo; ci < hi; ci++ {
		mc := j.mergeChunks[ci]
		for r := mc.zLo; r < mc.zHi; r++ {
			clear(y.Row(r))
		}
		r := mc.firstRow
		nz := mc.s
		if int(s.RowPtr[r]) < mc.s {
			// Head fragment of a row owned by an earlier chunk: accumulate
			// into this chunk's private carry slot, fixed up after the join.
			acc := j.carryVal[ci*k : (ci+1)*k]
			clear(acc)
			end := int(s.RowPtr[r+1])
			if end > mc.e {
				end = mc.e
			}
			for ; nz < end; nz++ {
				v := s.Val[nz]
				xr := x.Row(int(s.ColIdx[nz]))
				for kk := range acc {
					acc[kk] += v * xr[kk]
				}
			}
			j.carryRow[ci] = int32(r)
			r++
		}
		// Remaining rows start at or after mc.s, so they are owned here:
		// their output was cleared by the span pass above.
		for nz < mc.e {
			end := int(s.RowPtr[r+1])
			if end > mc.e {
				end = mc.e
			}
			if end > nz {
				yi := y.Row(r)
				for ; nz < end; nz++ {
					v := s.Val[nz]
					xr := x.Row(int(s.ColIdx[nz]))
					for kk := range yi {
						yi[kk] += v * xr[kk]
					}
				}
			}
			r++
		}
	}
}

// mergeFixup serially folds each chunk's carried head fragment into its
// row. The owning chunk already cleared and wrote the row's other
// fragments, so the carry is a pure addition; consecutive chunks inside
// one hub row each contribute their own slot.
func mergeFixup(j *job) {
	k := j.x.Cols
	for c := range j.mergeChunks {
		r := j.carryRow[c]
		if r < 0 {
			continue
		}
		yr := j.y.Row(int(r))
		acc := j.carryVal[c*k : (c+1)*k]
		for kk := range yr {
			yr[kk] += acc[kk]
		}
	}
}

// growInt32 resizes b to n entries, reusing capacity when possible.
func growInt32(b []int32, n int) []int32 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int32, n)
}

// growFloat32 resizes b to n entries, reusing capacity when possible.
func growFloat32(b []float32, n int) []float32 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]float32, n)
}
