package kernels

import (
	"runtime"
	"testing"

	"repro/internal/aspt"
	"repro/internal/dense"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func benchSetup(b *testing.B, k int) (*sparse.CSR, *aspt.Matrix, *dense.Matrix, *dense.Matrix) {
	b.Helper()
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 8192, Cols: 8192, Clusters: 1024, PrototypeNNZ: 20,
		Keep: 0.8, Noise: 2, Seed: 4, Scrambled: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	tl, err := aspt.Build(m, aspt.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	x := dense.NewRandom(m.Cols, k, 1)
	y := dense.NewRandom(m.Rows, k, 2)
	return m, tl, x, y
}

// Native (CPU, goroutine-parallel) kernel throughput. These are the
// correctness-substrate numbers, not the paper's GPU numbers.
func BenchmarkNativeSpMMRowWiseK64(b *testing.B) {
	m, _, x, _ := benchSetup(b, 64)
	b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SpMMRowWise(m, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNativeSpMMASpTK64(b *testing.B) {
	m, tl, x, _ := benchSetup(b, 64)
	b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SpMMASpT(tl, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNativeSDDMMRowWiseK64(b *testing.B) {
	m, _, x, y := benchSetup(b, 64)
	b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SDDMMRowWise(m, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNativeSDDMMASpTK64(b *testing.B) {
	m, tl, x, y := benchSetup(b, 64)
	b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SDDMMASpT(tl, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSkewSetup builds a power-law (R-MAT) matrix whose row lengths are
// heavily skewed — the workload where equal-row chunking loses to
// nnz-balanced partitioning.
func benchSkewSetup(b *testing.B, k int) (*sparse.CSR, *dense.Matrix) {
	b.Helper()
	m, err := synth.RMAT(13, 24, 0.57, 0.19, 0.19, 21)
	if err != nil {
		b.Fatal(err)
	}
	return m, dense.NewRandom(m.Cols, k, 1)
}

// spmmEqualRows is the seed's execution strategy — equal-row chunks via
// parallelRows — kept here as the benchmark baseline for the
// nnz-balanced engine.
func spmmEqualRows(y *dense.Matrix, s *sparse.CSR, x *dense.Matrix) {
	parallelRows(s.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yi := y.Row(i)
			clear(yi)
			cols, vals := s.RowCols(i), s.RowVals(i)
			for jj := range cols {
				v := vals[jj]
				xr := x.Row(int(cols[jj]))
				for k := range yi {
					yi[k] += v * xr[k]
				}
			}
		}
	})
}

// BenchmarkSpMMSkewEqualRows vs BenchmarkSpMMSkewBalanced: the same
// row-wise kernel on the same R-MAT matrix under the seed's equal-row
// chunking and the nnz-balanced work-stealing engine.
func BenchmarkSpMMSkewEqualRows(b *testing.B) {
	m, x := benchSkewSetup(b, 64)
	y := dense.New(m.Rows, x.Cols)
	b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmmEqualRows(y, m, x)
	}
}

func BenchmarkSpMMSkewBalanced(b *testing.B) {
	m, x := benchSkewSetup(b, 64)
	y := dense.New(m.Rows, x.Cols)
	b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SpMMRowWiseInto(y, m, x); err != nil {
			b.Fatal(err)
		}
	}
}

// Into-variant benches: same kernels as the allocating benches above, but
// through the zero-allocation path. -benchmem (or ReportAllocs here)
// should show 0 allocs/op at steady state.
func BenchmarkNativeSpMMRowWiseIntoK64(b *testing.B) {
	m, _, x, _ := benchSetup(b, 64)
	y := dense.New(m.Rows, x.Cols)
	b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SpMMRowWiseInto(y, m, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNativeSpMMASpTIntoK64(b *testing.B) {
	m, tl, x, _ := benchSetup(b, 64)
	y := dense.New(m.Rows, x.Cols)
	b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SpMMASpTInto(y, tl, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNativeSDDMMASpTIntoK64(b *testing.B) {
	m, tl, x, y := benchSetup(b, 64)
	out := m.Clone()
	b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SDDMMASpTInto(out, tl, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNativeSpMMScaling measures the native kernel across worker
// counts (GOMAXPROCS), showing the shared-memory scaling of the
// correctness substrate.
func BenchmarkNativeSpMMScaling(b *testing.B) {
	m, _, x, _ := benchSetup(b, 64)
	for _, procs := range []int{1, 2, 4, 8} {
		name := map[int]string{1: "p1", 2: "p2", 4: "p4", 8: "p8"}[procs]
		b.Run(name, func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SpMMRowWise(m, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
