package kernels

import (
	"runtime"
	"testing"

	"repro/internal/aspt"
	"repro/internal/dense"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func benchSetup(b *testing.B, k int) (*sparse.CSR, *aspt.Matrix, *dense.Matrix, *dense.Matrix) {
	b.Helper()
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 8192, Cols: 8192, Clusters: 1024, PrototypeNNZ: 20,
		Keep: 0.8, Noise: 2, Seed: 4, Scrambled: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	tl, err := aspt.Build(m, aspt.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	x := dense.NewRandom(m.Cols, k, 1)
	y := dense.NewRandom(m.Rows, k, 2)
	return m, tl, x, y
}

// Native (CPU, goroutine-parallel) kernel throughput. These are the
// correctness-substrate numbers, not the paper's GPU numbers.
func BenchmarkNativeSpMMRowWiseK64(b *testing.B) {
	m, _, x, _ := benchSetup(b, 64)
	b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SpMMRowWise(m, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNativeSpMMASpTK64(b *testing.B) {
	m, tl, x, _ := benchSetup(b, 64)
	b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SpMMASpT(tl, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNativeSDDMMRowWiseK64(b *testing.B) {
	m, _, x, y := benchSetup(b, 64)
	b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SDDMMRowWise(m, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNativeSDDMMASpTK64(b *testing.B) {
	m, tl, x, y := benchSetup(b, 64)
	b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SDDMMASpT(tl, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNativeSpMMScaling measures the native kernel across worker
// counts (GOMAXPROCS), showing the shared-memory scaling of the
// correctness substrate.
func BenchmarkNativeSpMMScaling(b *testing.B) {
	m, _, x, _ := benchSetup(b, 64)
	for _, procs := range []int{1, 2, 4, 8} {
		name := map[int]string{1: "p1", 2: "p2", 4: "p4", 8: "p8"}[procs]
		b.Run(name, func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			b.SetBytes(int64(Flops(m.NNZ(), 64) / 2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SpMMRowWise(m, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
