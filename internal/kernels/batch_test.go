package kernels

import (
	"context"
	"testing"

	"repro/internal/dense"
	"repro/internal/synth"
)

// TestSpMMBatchMatchesIndependent checks that one batched pass over N
// operands is numerically identical to N independent passes: stacking
// only rearranges which columns a pass computes, never the arithmetic
// per column, so the comparison is bit-exact.
func TestSpMMBatchMatchesIndependent(t *testing.T) {
	m, err := synth.RMAT(9, 8, 0.57, 0.19, 0.19, 3)
	if err != nil {
		t.Fatal(err)
	}
	pass := SpMMRowWisePass(m)
	for _, n := range []int{1, 2, 3, 7} {
		ops := make([]BatchOp, n)
		wants := make([]*dense.Matrix, n)
		for i := range ops {
			x := dense.NewRandom(m.Cols, 1+i%3, int64(10*n+i))
			ops[i] = BatchOp{Y: dense.New(m.Rows, x.Cols), X: x}
			w := dense.New(m.Rows, x.Cols)
			if err := SpMMRowWiseInto(w, m, x); err != nil {
				t.Fatal(err)
			}
			wants[i] = w
		}
		if err := SpMMBatchIntoCtx(context.Background(), pass, ops); err != nil {
			t.Fatalf("batch of %d: %v", n, err)
		}
		for i := range ops {
			for j := range wants[i].Data {
				if ops[i].Y.Data[j] != wants[i].Data[j] {
					t.Fatalf("batch of %d: op %d differs from the independent pass at %d", n, i, j)
				}
			}
		}
	}
}

func TestSpMMBatchShapeErrors(t *testing.T) {
	m, err := synth.Uniform(64, 64, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	pass := SpMMRowWisePass(m)
	ok := BatchOp{Y: dense.New(64, 2), X: dense.NewRandom(64, 2, 1)}
	cases := map[string][]BatchOp{
		"nil-x":        {ok, {Y: dense.New(64, 2)}},
		"nil-y":        {ok, {X: dense.NewRandom(64, 2, 1)}},
		"yk-mismatch":  {ok, {Y: dense.New(64, 3), X: dense.NewRandom(64, 2, 1)}},
		"xrows-differ": {ok, {Y: dense.New(64, 2), X: dense.NewRandom(32, 2, 1)}},
		"yrows-differ": {ok, {Y: dense.New(32, 2), X: dense.NewRandom(64, 2, 1)}},
		"single-bad":   {{Y: dense.New(64, 1), X: dense.NewRandom(64, 2, 1)}},
	}
	for name, ops := range cases {
		if err := SpMMBatchIntoCtx(context.Background(), pass, ops); err == nil {
			t.Errorf("%s: batched pass accepted a bad shape", name)
		}
	}
	if err := SpMMBatchIntoCtx(context.Background(), pass, nil); err != nil {
		t.Errorf("empty batch should be a no-op, got %v", err)
	}
}

// TestSpMMBatchCancellation checks that a cancelled context surfaces
// from the underlying pass and leaves no wedged state behind.
func TestSpMMBatchCancellation(t *testing.T) {
	m, err := synth.Uniform(256, 256, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ops := []BatchOp{
		{Y: dense.New(256, 2), X: dense.NewRandom(256, 2, 1)},
		{Y: dense.New(256, 2), X: dense.NewRandom(256, 2, 2)},
	}
	if err := SpMMBatchIntoCtx(ctx, SpMMRowWisePass(m), ops); err != context.Canceled {
		t.Fatalf("cancelled batch = %v, want context.Canceled", err)
	}
}

// TestSpMMBatchAllocFree pins the batched hot path to zero allocations
// after warmup — the batched serving contract: pooled stacked scratch,
// pooled operand slices, pooled kernel job state.
func TestSpMMBatchAllocFree(t *testing.T) {
	m, err := synth.Uniform(512, 512, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	pass := SpMMRowWisePass(m)
	ops := make([]BatchOp, 4)
	for i := range ops {
		ops[i] = BatchOp{Y: dense.New(m.Rows, 2), X: dense.NewRandom(m.Cols, 2, int64(i))}
	}
	ctx := context.Background()
	call := func() {
		if err := SpMMBatchIntoCtx(ctx, pass, ops); err != nil {
			t.Fatal(err)
		}
	}
	assertZeroAllocsAfterWarmup(t, "SpMMBatchIntoCtx", call)
}

// assertZeroAllocsAfterWarmup warms pooled state with a few calls, then
// requires a steady-state call to allocate nothing. A GC can empty the
// sync.Pools mid-measurement, so a nonzero reading is retried a couple
// of times before failing; a genuine per-call allocation fails every
// attempt.
func assertZeroAllocsAfterWarmup(t *testing.T, name string, call func()) {
	t.Helper()
	for i := 0; i < 3; i++ {
		call()
	}
	var allocs float64
	for attempt := 0; attempt < 3; attempt++ {
		allocs = testing.AllocsPerRun(20, call)
		if allocs == 0 {
			return
		}
	}
	t.Fatalf("%s allocates %v objects per call at steady state, want 0", name, allocs)
}
