package kernels

// ELL and HYB SpMM on the shared executor. ellpack's own SpMM methods
// are single-threaded reference loops; these entry points give the
// formats the same contract as SpMMRowWiseIntoCtx — nnz-balanced
// chunking over the pooled worker set, cooperative cancellation, panic
// isolation, obs spans, and zero steady-state allocations — so the
// pipeline can select them per matrix (see the kernel autotuner in
// internal/reorder).
//
// The ELL kernel walks the slab column-major (slot-major), mirroring
// the coalesced GPU access pattern: within a chunk the slab reads at
// slot s are contiguous (Cols/Vals[s*rows+lo : s*rows+hi]) while the
// chunk's output rows stay cache-resident. The HYB kernel runs the ELL
// slab first, then folds in the spill entries whose rows fall inside
// the chunk — Spill is row-major sorted and chunk row ranges tile
// [0, rows), so no two chunks write the same output row.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dense"
	"repro/internal/ellpack"
	"repro/internal/obs"
	"repro/internal/sparse"
)

func checkELLShapes(e *ellpack.Matrix, x *dense.Matrix) error {
	if e.NCols != x.Rows {
		return fmt.Errorf("kernels: SpMM shape mismatch: E is %dx%d, X is %dx%d",
			e.Rows, e.NCols, x.Rows, x.Cols)
	}
	return nil
}

func checkELLOut(e *ellpack.Matrix, x, y *dense.Matrix) error {
	if y.Rows != e.Rows || y.Cols != x.Cols {
		return fmt.Errorf("kernels: SpMM output is %dx%d, want %dx%d",
			y.Rows, y.Cols, e.Rows, x.Cols)
	}
	return nil
}

// SpMMELL computes Y = E·X from the ELLPACK-R slab. It allocates and
// returns Y (E.Rows × X.Cols).
func SpMMELL(e *ellpack.Matrix, x *dense.Matrix) (*dense.Matrix, error) {
	if err := checkELLShapes(e, x); err != nil {
		return nil, err
	}
	y := dense.New(e.Rows, x.Cols)
	return y, SpMMELLInto(y, e, x)
}

// SpMMELLInto computes Y = E·X into the caller-provided y
// (E.Rows × X.Cols), overwriting its contents. At steady state the call
// performs no heap allocations.
func SpMMELLInto(y *dense.Matrix, e *ellpack.Matrix, x *dense.Matrix) error {
	return SpMMELLIntoCtx(context.Background(), y, e, x)
}

// SpMMELLIntoCtx is SpMMELLInto with cooperative cancellation between
// chunks and panic isolation. On error the output contents are
// unspecified.
func SpMMELLIntoCtx(ctx context.Context, y *dense.Matrix, e *ellpack.Matrix, x *dense.Matrix) error {
	if err := checkELLShapes(e, x); err != nil {
		return err
	}
	if err := checkELLOut(e, x, y); err != nil {
		return err
	}
	start := time.Now()
	sp := obs.TraceFrom(ctx).StartSpan("kernel_spmm_ell")
	j := getJob()
	j.run = runSpMMELL
	j.ctx = ctx
	j.attr = attrSpMMELL
	j.ell, j.x, j.y = e, x, y
	err := j.dispatch(e.Rows, e.CumWork)
	if err == nil {
		attrSpMMELL.recordPass(j, int(e.CumWork(e.Rows)), e.Rows, x.Cols)
	}
	putJob(j)
	sp.End()
	kernelSpMMELL.ObserveSince(start)
	return err
}

func runSpMMELL(j *job, lo, hi int) {
	e, x, y := j.ell, j.x, j.y
	for i := lo; i < hi; i++ {
		clear(y.Row(i))
	}
	rows := e.Rows
	for s := 0; s < e.Width; s++ {
		base := s * rows
		for i := lo; i < hi; i++ {
			if s >= int(e.RowLen[i]) {
				continue
			}
			v := e.Vals[base+i]
			xr := x.Row(int(e.Cols[base+i]))
			yi := y.Row(i)
			for k := range yi {
				yi[k] += v * xr[k]
			}
		}
	}
}

// SpMMHybrid computes Y = H·X from the HYB (ELL + COO spill)
// representation. It allocates and returns Y (H.ELL.Rows × X.Cols).
func SpMMHybrid(h *ellpack.Hybrid, x *dense.Matrix) (*dense.Matrix, error) {
	if err := checkELLShapes(h.ELL, x); err != nil {
		return nil, err
	}
	y := dense.New(h.ELL.Rows, x.Cols)
	return y, SpMMHybridInto(y, h, x)
}

// SpMMHybridInto computes Y = H·X into the caller-provided y
// (H.ELL.Rows × X.Cols), overwriting its contents. At steady state the
// call performs no heap allocations.
func SpMMHybridInto(y *dense.Matrix, h *ellpack.Hybrid, x *dense.Matrix) error {
	return SpMMHybridIntoCtx(context.Background(), y, h, x)
}

// SpMMHybridIntoCtx is SpMMHybridInto with cooperative cancellation
// between chunks and panic isolation. On error the output contents are
// unspecified.
func SpMMHybridIntoCtx(ctx context.Context, y *dense.Matrix, h *ellpack.Hybrid, x *dense.Matrix) error {
	if err := checkELLShapes(h.ELL, x); err != nil {
		return err
	}
	if err := checkELLOut(h.ELL, x, y); err != nil {
		return err
	}
	start := time.Now()
	sp := obs.TraceFrom(ctx).StartSpan("kernel_spmm_hyb")
	j := getJob()
	j.run = runSpMMHybrid
	j.ctx = ctx
	j.attr = attrSpMMHybrid
	j.ell, j.hyb, j.x, j.y = h.ELL, h, x, y
	err := j.dispatch(h.ELL.Rows, h.CumWork)
	if err == nil {
		attrSpMMHybrid.recordPass(j, int(h.CumWork(h.ELL.Rows)), h.ELL.Rows, x.Cols)
	}
	putJob(j)
	sp.End()
	kernelSpMMHybrid.ObserveSince(start)
	return err
}

func runSpMMHybrid(j *job, lo, hi int) {
	runSpMMELL(j, lo, hi)
	h, x, y := j.hyb, j.x, j.y
	for i := searchSpillRow(h.Spill, int32(lo)); i < len(h.Spill); i++ {
		e := h.Spill[i]
		if int(e.Row) >= hi {
			break
		}
		xr := x.Row(int(e.Col))
		yr := y.Row(int(e.Row))
		for k := range yr {
			yr[k] += e.Val * xr[k]
		}
	}
}

// searchSpillRow returns the index of the first spill entry with
// Row >= r (spill is row-major sorted by construction).
func searchSpillRow(spill []sparse.Entry, r int32) int {
	lo, hi := 0, len(spill)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if spill[mid].Row < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
