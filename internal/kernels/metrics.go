package kernels

import (
	"sort"
	"sync/atomic"

	"repro/internal/obs"
)

// Kernel metrics live in the process-wide registry and are created once
// at init: the hot path only touches pre-registered histograms, whose
// Observe is lock-free and allocation-free, preserving the *Into
// kernels' zero-allocation guarantee.
var (
	kernelSpMMRowWise = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "spmm_rowwise"))
	kernelSpMMASpT = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "spmm_aspt"))
	kernelSpMMMerge = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "spmm_merge"))
	kernelSpMMELL = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "spmm_ell"))
	kernelSpMMHybrid = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "spmm_hyb"))
	kernelSDDMMRowWise = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "sddmm_rowwise"))
	kernelSDDMMASpT = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "sddmm_aspt"))

	kernelSpMMBatch = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "spmm_batch"))
	// Operands per batched pass: the effective-K amplification the
	// coalescing layer actually achieved (1 = nothing coalesced).
	kernelSpMMBatchOps = obs.Default().Histogram("spmmrr_kernel_batch_ops",
		"Operand pairs computed per batched SpMM pass.",
		obs.ExponentialBuckets(1, 2, 8))

	executorChunks = obs.Default().Histogram("spmmrr_executor_chunks_per_call",
		"nnz-balanced chunks produced per kernel dispatch.",
		obs.ExponentialBuckets(1, 2, 10))
	// The caller participates in stealing alongside the pool workers; the
	// fraction of chunks it ends up running measures work-stealing
	// balance (≈1/workers when balanced, →1 when the pool is saturated
	// and the caller drains everything itself).
	executorCallerRatio = obs.Default().Histogram("spmmrr_executor_caller_chunk_ratio",
		"Fraction of a dispatch's chunks executed by the calling goroutine.",
		obs.LinearBuckets(0.1, 0.1, 10))
)

// ---- Per-kernel performance attribution ----
//
// Each executor-backed kernel owns a kernelAttr aggregate: the chunked
// executor feeds it per-chunk wall times while a pass runs, and the
// entry point flushes pass totals (nnz processed, flops, modeled bytes,
// busy time) on success. Everything on the recording side is a
// pre-registered histogram Observe or an atomic add — lock-free and
// allocation-free, preserving the *Into kernels' zero-allocation
// contract. Derived rates (GFLOP/s, GB/s) are computed at scrape time
// by func-backed collectors.

// attrBytes models the effective memory traffic of one SpMM/SDDMM
// pass: 8 bytes per nonzero (float32 value + int32 column index),
// 4·K bytes of dense X read per nonzero, and 4·K bytes of dense output
// written per row. A coarse roofline-style estimate — it ignores cache
// reuse — but consistent across kernels, so relative GB/s is
// meaningful (see DESIGN.md §16).
func attrBytes(nnz, rows, k int) int64 {
	return int64(nnz)*int64(8+4*k) + int64(rows)*int64(4*k)
}

// imbalanceBuckets spans the max/mean chunk-time ratio: 1 is perfect
// balance, the chunksPerWorker=4 oversubscription should keep steady
// passes under ~4, and a pathological hub row shows up far right.
func imbalanceBuckets() []float64 {
	return []float64{1, 1.1, 1.25, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32}
}

// kernelAttr is the lock-free attribution aggregate for one kernel
// label.
type kernelAttr struct {
	label  string
	passes atomic.Int64
	chunks atomic.Int64
	nnz    atomic.Int64
	flops  atomic.Int64
	bytes  atomic.Int64
	busyNS atomic.Int64 // sum of per-chunk wall times across workers

	imbalance    *obs.Histogram // max/mean chunk wall time per pass
	chunkSeconds *obs.Histogram // individual chunk wall times
}

// attrs collects every kernel aggregate for Attribution(), in
// registration order.
var attrs []*kernelAttr

func newKernelAttr(label string) *kernelAttr {
	a := &kernelAttr{label: label}
	l := obs.L("kernel", label)
	a.imbalance = obs.Default().Histogram("spmmrr_kernel_imbalance",
		"Load-imbalance ratio (max/mean chunk wall time) per executor pass.",
		imbalanceBuckets(), l)
	a.chunkSeconds = obs.Default().Histogram("spmmrr_kernel_chunk_seconds",
		"Wall time of individual executor chunks.",
		obs.FineLatencyBuckets(), l)
	obs.Default().CounterFunc("spmmrr_kernel_passes_total",
		"Completed executor passes by kernel.", a.passes.Load, l)
	obs.Default().CounterFunc("spmmrr_kernel_nnz_total",
		"Nonzeros processed by completed executor passes.", a.nnz.Load, l)
	obs.Default().GaugeFunc("spmmrr_kernel_gflops",
		"Effective GFLOP/s over all completed passes (2·nnz·K / busy time).",
		a.gflops, l)
	obs.Default().GaugeFunc("spmmrr_kernel_gbps",
		"Effective GB/s over all completed passes (modeled bytes / busy time).",
		a.gbps, l)
	attrs = append(attrs, a)
	return a
}

// gflops returns cumulative flops per busy nanosecond, which is
// numerically GFLOP/s (1e9 flops / 1e9 ns).
func (a *kernelAttr) gflops() float64 {
	ns := a.busyNS.Load()
	if ns == 0 {
		return 0
	}
	return float64(a.flops.Load()) / float64(ns)
}

// gbps returns cumulative modeled bytes per busy nanosecond (GB/s).
func (a *kernelAttr) gbps() float64 {
	ns := a.busyNS.Load()
	if ns == 0 {
		return 0
	}
	return float64(a.bytes.Load()) / float64(ns)
}

// recordPass flushes one completed pass from the job's chunk
// accumulators into the aggregate: entry points call it after a
// successful dispatch, before the job returns to the pool. Atomic adds
// only — no allocations.
func (a *kernelAttr) recordPass(j *job, nnz, rows, k int) {
	n := j.chunkCount.Load()
	if n == 0 {
		return
	}
	sum := j.chunkNS.Load()
	if sum > 0 {
		a.imbalance.Observe(float64(j.chunkMax.Load()) * float64(n) / float64(sum))
	}
	a.passes.Add(1)
	a.chunks.Add(n)
	a.busyNS.Add(sum)
	a.nnz.Add(int64(nnz))
	a.flops.Add(int64(Flops(nnz, k)))
	a.bytes.Add(attrBytes(nnz, rows, k))
}

// Per-kernel attribution aggregates, one per executor-backed kernel
// label. The batched pass is attributed through the kernel it
// delegates to.
var (
	attrSpMMRowWise  = newKernelAttr("spmm_rowwise")
	attrSpMMASpT     = newKernelAttr("spmm_aspt")
	attrSpMMMerge    = newKernelAttr("spmm_merge")
	attrSpMMELL      = newKernelAttr("spmm_ell")
	attrSpMMHybrid   = newKernelAttr("spmm_hyb")
	attrSDDMMRowWise = newKernelAttr("sddmm_rowwise")
	attrSDDMMASpT    = newKernelAttr("sddmm_aspt")
)

// AttributionSummary is one kernel's realized-performance aggregate,
// as served by /debug/explain.
type AttributionSummary struct {
	Kernel        string  `json:"kernel"`
	Passes        int64   `json:"passes"`
	Chunks        int64   `json:"chunks"`
	NNZ           int64   `json:"nnz"`
	BusySeconds   float64 `json:"busy_seconds"`
	GFLOPS        float64 `json:"gflops"`
	GBPS          float64 `json:"gbps"`
	MeanImbalance float64 `json:"mean_imbalance"`
}

// Attribution returns the attribution summary of every kernel that has
// completed at least one pass this process, sorted by kernel label.
func Attribution() []AttributionSummary {
	out := make([]AttributionSummary, 0, len(attrs))
	for _, a := range attrs {
		p := a.passes.Load()
		if p == 0 {
			continue
		}
		s := AttributionSummary{
			Kernel:      a.label,
			Passes:      p,
			Chunks:      a.chunks.Load(),
			NNZ:         a.nnz.Load(),
			BusySeconds: float64(a.busyNS.Load()) / 1e9,
			GFLOPS:      a.gflops(),
			GBPS:        a.gbps(),
		}
		if h := a.imbalance.Snapshot(); h.Count > 0 {
			s.MeanImbalance = h.Sum / float64(h.Count)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}
