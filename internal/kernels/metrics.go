package kernels

import (
	"repro/internal/obs"
)

// Kernel metrics live in the process-wide registry and are created once
// at init: the hot path only touches pre-registered histograms, whose
// Observe is lock-free and allocation-free, preserving the *Into
// kernels' zero-allocation guarantee.
var (
	kernelSpMMRowWise = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "spmm_rowwise"))
	kernelSpMMASpT = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "spmm_aspt"))
	kernelSpMMMerge = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "spmm_merge"))
	kernelSpMMELL = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "spmm_ell"))
	kernelSpMMHybrid = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "spmm_hyb"))
	kernelSDDMMRowWise = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "sddmm_rowwise"))
	kernelSDDMMASpT = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "sddmm_aspt"))

	kernelSpMMBatch = obs.Default().Histogram("spmmrr_kernel_seconds",
		"Kernel execution latency by kernel variant.",
		obs.LatencyBuckets(), obs.L("kernel", "spmm_batch"))
	// Operands per batched pass: the effective-K amplification the
	// coalescing layer actually achieved (1 = nothing coalesced).
	kernelSpMMBatchOps = obs.Default().Histogram("spmmrr_kernel_batch_ops",
		"Operand pairs computed per batched SpMM pass.",
		obs.ExponentialBuckets(1, 2, 8))

	executorChunks = obs.Default().Histogram("spmmrr_executor_chunks_per_call",
		"nnz-balanced chunks produced per kernel dispatch.",
		obs.ExponentialBuckets(1, 2, 10))
	// The caller participates in stealing alongside the pool workers; the
	// fraction of chunks it ends up running measures work-stealing
	// balance (≈1/workers when balanced, →1 when the pool is saturated
	// and the caller drains everything itself).
	executorCallerRatio = obs.Default().Histogram("spmmrr_executor_caller_chunk_ratio",
		"Fraction of a dispatch's chunks executed by the calling goroutine.",
		obs.LinearBuckets(0.1, 0.1, 10))
)
