package kernels

// Multi-operand batched SpMM: the serving-layer entry point behind
// request coalescing. N independent (Y_i, X_i) operand pairs against
// the same sparse matrix are column-stacked into one wide pair and
// computed by a single kernel pass, so the sparse operand's index
// structure is traversed once for the combined width instead of once
// per request — arithmetic intensity (and therefore throughput on a
// bandwidth-bound kernel) rises with the effective K, exactly the
// K-scaling behaviour of Yang–Buluç–Owens (PAPERS.md).
//
// The pass itself is abstracted as an SpMMPass so the same batching
// works over a raw kernel, a preprocessed Pipeline (whose autotuned
// kernel dispatch then runs once for the whole batch), or a sharded
// pipeline. Stacked scratch comes from the dense pool and the operand
// slices from a local pool, so a steady-state batched call performs no
// heap allocations.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// BatchOp is one coalesced request: compute Y = S·X for this operand
// pair as part of a single batched pass.
type BatchOp struct {
	// Y receives the result (S.Rows × X.Cols), fully overwritten.
	Y *dense.Matrix
	// X is the dense right-hand operand.
	X *dense.Matrix
}

// SpMMPass executes one SpMM into a caller-provided output. Pipeline,
// OnlinePipeline, and ShardedPipeline all implement it, as does any
// raw kernel wrapped in a small adapter (see SpMMRowWisePass).
type SpMMPass interface {
	SpMMIntoCtx(ctx context.Context, y *dense.Matrix, x *dense.Matrix) error
}

// batchState pools the per-batch operand slice headers so assembling a
// batch stays allocation-free at steady state.
type batchState struct {
	xs []*dense.Matrix
	ys []*dense.Matrix
}

var batchPool = sync.Pool{New: func() any { return new(batchState) }}

// SpMMBatchIntoCtx computes every op's Y = S·X through pass in a
// single kernel execution: the X operands are column-stacked into one
// pooled scratch dense, pass runs once at the combined width, and each
// op's columns are scattered back into its own Y. A single-op batch
// bypasses the stack/unstack copies entirely.
//
// All operands must agree on row counts (every X the same number of
// rows, every Y the same number of rows) and each op must have
// Y.Cols == X.Cols; pass itself enforces its matrix's shape contract.
// On error the outputs' contents are unspecified. Steady-state calls
// perform no heap allocations.
func SpMMBatchIntoCtx(ctx context.Context, pass SpMMPass, ops []BatchOp) error {
	switch len(ops) {
	case 0:
		return nil
	case 1:
		if err := checkBatchOp(ops[0], 0); err != nil {
			return err
		}
		return pass.SpMMIntoCtx(ctx, ops[0].Y, ops[0].X)
	}
	ksum := 0
	for i, op := range ops {
		if err := checkBatchOp(op, i); err != nil {
			return err
		}
		if op.X.Rows != ops[0].X.Rows {
			return fmt.Errorf("kernels: batch op %d has %d X rows, want %d", i, op.X.Rows, ops[0].X.Rows)
		}
		if op.Y.Rows != ops[0].Y.Rows {
			return fmt.Errorf("kernels: batch op %d has %d Y rows, want %d", i, op.Y.Rows, ops[0].Y.Rows)
		}
		ksum += op.X.Cols
	}
	start := time.Now()
	st := batchPool.Get().(*batchState)
	st.xs, st.ys = st.xs[:0], st.ys[:0]
	for _, op := range ops {
		st.xs = append(st.xs, op.X)
		st.ys = append(st.ys, op.Y)
	}
	xst := dense.Get(ops[0].X.Rows, ksum)
	yst := dense.Get(ops[0].Y.Rows, ksum)
	err := dense.StackColsInto(xst, st.xs)
	if err == nil {
		err = pass.SpMMIntoCtx(ctx, yst, xst)
	}
	if err == nil {
		err = dense.UnstackColsInto(st.ys, yst)
	}
	dense.Put(yst)
	dense.Put(xst)
	clear(st.xs)
	clear(st.ys)
	batchPool.Put(st)
	if err == nil {
		kernelSpMMBatch.ObserveSince(start)
		kernelSpMMBatchOps.Observe(float64(len(ops)))
	}
	return err
}

func checkBatchOp(op BatchOp, i int) error {
	if op.X == nil || op.Y == nil {
		return fmt.Errorf("kernels: batch op %d has a nil operand", i)
	}
	if op.Y.Cols != op.X.Cols {
		return fmt.Errorf("kernels: batch op %d output has %d cols, want %d", i, op.Y.Cols, op.X.Cols)
	}
	return nil
}

// spmmRowWisePass adapts the raw row-wise kernel to SpMMPass for
// batching without a pipeline (the no-preprocessing baseline).
type spmmRowWisePass struct{ s *sparse.CSR }

func (p spmmRowWisePass) SpMMIntoCtx(ctx context.Context, y, x *dense.Matrix) error {
	return SpMMRowWiseIntoCtx(ctx, y, p.s, x)
}

// SpMMRowWisePass returns an SpMMPass executing the plain row-wise
// kernel on s — the batching adapter for unpreprocessed serving.
func SpMMRowWisePass(s *sparse.CSR) SpMMPass { return spmmRowWisePass{s: s} }
