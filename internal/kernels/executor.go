package kernels

// The execution engine: nnz-balanced chunking plus a persistent worker
// pool, shared by every kernel in this package.
//
// The seed implementation split [0, rows) into equal-row contiguous
// chunks, which breaks down on power-law matrices: one hub row with 10⁴
// nonzeros stalls its whole chunk while other workers idle. Instead the
// engine splits rows so each chunk carries roughly equal *work*
// (nonzeros, from the CSR RowPtr prefix sums — for ASpT, tile+rest
// nonzeros), the same idea as merge-based CSR partitioning
// (Merrill & Garland) and row-swizzle load balancing (Gale et al.).
// Chunks are oversubscribed (several per worker) and claimed with an
// atomic counter, so a skewed tail dynamically rebalances across
// workers instead of being pinned to a static assignment.
//
// Work is dispatched to a fixed pool of long-lived goroutines through a
// buffered channel, and per-call state lives in pooled job structs, so
// a steady-state kernel call performs no heap allocations — the
// property the *Into entry points advertise.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aspt"
	"repro/internal/dense"
	"repro/internal/ellpack"
	"repro/internal/faultinject"
	"repro/internal/par"
	"repro/internal/sparse"
)

// chunksPerWorker is the oversubscription factor: more chunks per
// worker means finer-grained stealing for skewed tails at slightly more
// dispatch overhead.
const chunksPerWorker = 4

// rowChunk is a half-open row range [lo, hi).
type rowChunk struct{ lo, hi int }

// job carries one kernel invocation across the worker pool. All
// operand fields a particular kernel does not use stay nil. Jobs are
// pooled; reset clears operands but keeps the chunks slice capacity.
type job struct {
	run    func(j *job, lo, hi int) // a top-level function, never a closure
	chunks []rowChunk
	next   atomic.Int64
	wg     sync.WaitGroup

	// Failure state. ctx (nil = never cancelled) is observed between
	// chunk claims; the first worker error — an injected fault, a
	// recovered chunk panic, or the observed cancellation — parks in
	// fail and flips stop so the remaining chunks are skipped, and
	// dispatch returns it after the join. All of this costs two atomic
	// loads per chunk claim on the happy path, so the steady-state
	// zero-allocation property of the *Into kernels is preserved
	// (failure boxes allocate only on the failure path).
	ctx  context.Context
	stop atomic.Bool
	fail atomic.Pointer[failure]

	// Operands, interpreted by run.
	csr  *sparse.CSR
	tile *aspt.Matrix
	ell  *ellpack.Matrix
	hyb  *ellpack.Hybrid
	x    *dense.Matrix
	y    *dense.Matrix
	out  []float32 // SDDMM output values

	// Attribution state (see metrics.go): attr is the per-kernel
	// aggregate selected by the entry point (nil disables chunk
	// timing); chunkNS/chunkMax/chunkCount accumulate per-chunk wall
	// times across the workers stealing from this job, and the entry
	// point flushes them via attr.recordPass after a successful
	// dispatch.
	attr       *kernelAttr
	chunkNS    atomic.Int64
	chunkMax   atomic.Int64
	chunkCount atomic.Int64

	// Merge-kernel state (see merge.go): when run is runSpMMMerge the
	// generic chunks slice holds {i, i+1} indices into mergeChunks, and
	// each chunk's head-fragment partial sums land in its carry slot
	// (carryRow[c] == -1 when chunk c carries nothing). The slices keep
	// their capacity across pooled reuse so steady-state calls stay
	// allocation-free.
	mergeChunks []mergeChunk
	carryRow    []int32
	carryVal    []float32
}

// failure boxes the first error of a job (atomic.Pointer needs a
// concrete type).
type failure struct{ err error }

// recordFail parks the job's first error and stops chunk claiming.
func (j *job) recordFail(err error) {
	if err == nil {
		return
	}
	j.fail.CompareAndSwap(nil, &failure{err: err})
	j.stop.Store(true)
}

// err returns the job's recorded failure, if any.
func (j *job) err() error {
	if f := j.fail.Load(); f != nil {
		return f.err
	}
	return nil
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

func getJob() *job { return jobPool.Get().(*job) }

func putJob(j *job) {
	j.run = nil
	j.csr = nil
	j.tile = nil
	j.ell = nil
	j.hyb = nil
	j.x = nil
	j.y = nil
	j.out = nil
	j.chunks = j.chunks[:0]
	j.mergeChunks = j.mergeChunks[:0]
	j.next.Store(0)
	j.ctx = nil
	j.stop.Store(false)
	j.fail.Store(nil)
	j.attr = nil
	j.chunkNS.Store(0)
	j.chunkMax.Store(0)
	j.chunkCount.Store(0)
	jobPool.Put(j)
}

// workerPool is the process-wide executor: NumCPU long-lived goroutines
// draining a buffered job queue. Goroutines are parked in channel
// receive when idle and are additionally throttled by GOMAXPROCS, so a
// reduced GOMAXPROCS still serialises execution as expected.
var (
	workersOnce sync.Once
	jobQueue    chan *job
	poolSize    int
)

func startWorkers() {
	workersOnce.Do(func() {
		poolSize = runtime.NumCPU()
		if poolSize < 1 {
			poolSize = 1
		}
		jobQueue = make(chan *job, 8*poolSize)
		for w := 0; w < poolSize; w++ {
			go func() {
				for j := range jobQueue {
					j.steal()
					j.wg.Done()
				}
			}()
		}
	})
}

// steal claims chunks off the job's atomic cursor until none remain,
// the job has failed, or its context is cancelled, and reports how many
// chunks this goroutine ran (the work-stealing balance signal).
func (j *job) steal() int {
	n := int64(len(j.chunks))
	claimed := 0
	for {
		if j.stop.Load() {
			return claimed
		}
		if err := par.CtxErr(j.ctx); err != nil {
			j.recordFail(err)
			return claimed
		}
		i := j.next.Add(1) - 1
		if i >= n {
			return claimed
		}
		c := j.chunks[i]
		j.runChunk(c.lo, c.hi)
		claimed++
	}
}

// runChunk executes one chunk with panic isolation: a panic in the
// kernel body is recovered into a *par.PanicError and recorded as the
// job's failure instead of killing a pool goroutine (which would leak
// the pool slot and crash the process).
func (j *job) runChunk(lo, hi int) {
	defer j.recoverChunk()
	if err := faultinject.Fire("kernels.exec"); err != nil {
		j.recordFail(err)
		return
	}
	if j.attr == nil {
		j.run(j, lo, hi)
		return
	}
	start := time.Now()
	j.run(j, lo, hi)
	j.observeChunk(time.Since(start))
}

// observeChunk folds one chunk's wall time into the job's attribution
// accumulators and the kernel's chunk-latency histogram: two atomic
// adds, a CAS max, and one lock-free histogram Observe.
func (j *job) observeChunk(d time.Duration) {
	ns := int64(d)
	j.chunkNS.Add(ns)
	j.chunkCount.Add(1)
	for {
		old := j.chunkMax.Load()
		if ns <= old || j.chunkMax.CompareAndSwap(old, ns) {
			break
		}
	}
	j.attr.chunkSeconds.Observe(d.Seconds())
}

func (j *job) recoverChunk() {
	if r := recover(); r != nil {
		j.recordFail(par.NewPanicError(r))
	}
}

// appendBalancedChunks splits [0, rows) into at most nchunks contiguous
// chunks of roughly equal cumulative work, appending to dst. cum(i)
// must be the non-decreasing total work of rows [0, i) with cum(0) == 0
// (a CSR RowPtr is exactly this). Zero-work matrices fall back to
// equal-row chunks so every row is still visited (outputs must be
// zeroed). The returned chunks tile [0, rows) exactly.
func appendBalancedChunks(dst []rowChunk, rows int, cum func(int) int64, nchunks int) []rowChunk {
	if rows <= 0 {
		return dst
	}
	if nchunks > rows {
		nchunks = rows
	}
	if nchunks <= 1 {
		return append(dst, rowChunk{0, rows})
	}
	total := cum(rows)
	if total <= 0 {
		// No work anywhere: equal-row split.
		per := (rows + nchunks - 1) / nchunks
		for lo := 0; lo < rows; lo += per {
			hi := lo + per
			if hi > rows {
				hi = rows
			}
			dst = append(dst, rowChunk{lo, hi})
		}
		return dst
	}
	lo := 0
	for c := 1; c <= nchunks && lo < rows; c++ {
		var hi int
		if c == nchunks {
			hi = rows
		} else {
			// Smallest row index whose cumulative work reaches the c-th
			// equal share; never behind lo+1 so every chunk advances.
			target := total * int64(c) / int64(nchunks)
			hi = lo + 1 + searchCum(cum, lo+1, rows, target)
			if hi > rows {
				hi = rows
			}
		}
		dst = append(dst, rowChunk{lo, hi})
		lo = hi
	}
	return dst
}

// searchCum binary-searches the smallest i in [lo, hi] with
// cum(i) >= target, returned relative to lo.
func searchCum(cum func(int) int64, lo, hi int, target int64) int {
	base := lo
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cum(mid) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - base
}

// dispatch partitions [0, rows) by cum and runs j.run over the chunks,
// the caller participating alongside up to GOMAXPROCS-1 pool workers.
// When the queue is saturated by concurrent callers the extra shares
// are simply not enqueued — the caller (and any worker that did accept)
// still drains every chunk, so saturation degrades to less parallelism,
// never to blocking or deadlock.
// An error return carries the job's first failure: the context's error,
// an injected fault, or a recovered worker panic (*par.PanicError).
func (j *job) dispatch(rows int, cum func(int) int64) error {
	if rows <= 0 {
		return par.CtxErr(j.ctx)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		if err := par.CtxErr(j.ctx); err != nil {
			return err
		}
		executorChunks.Observe(1)
		executorCallerRatio.Observe(1)
		j.runChunk(0, rows)
		return j.err()
	}
	j.chunks = appendBalancedChunks(j.chunks[:0], rows, cum, workers*chunksPerWorker)
	return j.dispatchChunks(workers)
}

// dispatchChunks runs j.run over the already-prepared j.chunks with up
// to workers participants (the caller plus pool goroutines). dispatch
// builds nnz-balanced row chunks and delegates here; kernels with a
// custom partition (the merge kernel splits on flat nonzero index, not
// rows) fill j.chunks themselves and call this directly. A single
// worker still drains every chunk — serially, with the same per-chunk
// cancellation and panic isolation as the parallel path.
func (j *job) dispatchChunks(workers int) error {
	if len(j.chunks) == 0 {
		return par.CtxErr(j.ctx)
	}
	executorChunks.Observe(float64(len(j.chunks)))
	if len(j.chunks) == 1 {
		c := j.chunks[0]
		if err := par.CtxErr(j.ctx); err != nil {
			return err
		}
		executorCallerRatio.Observe(1)
		j.runChunk(c.lo, c.hi)
		return j.err()
	}
	if workers > 1 {
		startWorkers()
		for w := 0; w < workers-1; w++ {
			j.wg.Add(1)
			select {
			case jobQueue <- j:
			default:
				j.wg.Done()
				w = workers // queue full; run with whoever already joined
			}
		}
	}
	mine := j.steal()
	j.wg.Wait()
	executorCallerRatio.Observe(float64(mine) / float64(len(j.chunks)))
	return j.err()
}
