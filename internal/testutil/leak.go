// Package testutil holds shared test helpers. It must only be imported
// from _test.go files.
package testutil

import (
	"fmt"
	"runtime"
	"time"
)

// CheckNoGoroutineLeak snapshots the goroutine count and returns a
// function for the caller to defer: it polls (goroutines wind down
// asynchronously after wg.Wait returns) and fails the test if the count
// has not returned to the baseline within ~2s.
//
// Callers must warm any persistent worker pools (e.g. the kernels
// executor pool, which keeps NumCPU goroutines parked for the process
// lifetime) *before* taking the baseline, so only leaks attributable to
// the code under test are counted.
func CheckNoGoroutineLeak(t interface {
	Helper()
	Errorf(format string, args ...any)
}) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d goroutines, baseline %d\n%s",
			n, base, truncate(string(buf), 8<<10))
	}
}

func truncate(s string, max int) string {
	if len(s) <= max {
		return s
	}
	return s[:max] + fmt.Sprintf("\n... (%d bytes truncated)", len(s)-max)
}
