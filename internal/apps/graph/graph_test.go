package graph

import (
	"math"
	"testing"

	"repro/internal/dense"
	"repro/internal/kernels"
	"repro/internal/sparse"
)

type plainAgg struct{ s *sparse.CSR }

func (a plainAgg) SpMM(x *dense.Matrix) (*dense.Matrix, error) {
	return kernels.SpMMRowWise(a.s, x)
}

// pathGraph builds the undirected path 0-1-2-...-(n-1).
func pathGraph(t *testing.T, n int) *sparse.CSR {
	t.Helper()
	sets := make([][]int32, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			sets[i] = append(sets[i], int32(i-1))
		}
		if i+1 < n {
			sets[i] = append(sets[i], int32(i+1))
		}
	}
	m, err := sparse.FromRows(n, n, sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// cycleGraph builds the undirected n-cycle.
func cycleGraph(t *testing.T, n int) *sparse.CSR {
	t.Helper()
	sets := make([][]int32, n)
	for i := 0; i < n; i++ {
		sets[i] = []int32{int32((i + n - 1) % n), int32((i + 1) % n)}
	}
	m, err := sparse.FromRows(n, n, sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBFSPathDepths(t *testing.T) {
	const n = 10
	g := pathGraph(t, n)
	depth, err := MultiSourceBFS(plainAgg{g}, n, []int32{0, 9}, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := depth.At(i, 0); got != float32(i) {
			t.Fatalf("depth from 0 to %d = %v, want %d", i, got, i)
		}
		if got := depth.At(i, 1); got != float32(n-1-i) {
			t.Fatalf("depth from 9 to %d = %v, want %d", i, got, n-1-i)
		}
	}
}

func TestBFSUnreachableAndDepthCap(t *testing.T) {
	// Two disconnected edges: 0-1 and 2-3.
	sets := [][]int32{{1}, {0}, {3}, {2}}
	g, err := sparse.FromRows(4, 4, sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	depth, err := MultiSourceBFS(plainAgg{g}, 4, []int32{0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if depth.At(1, 0) != 1 || depth.At(2, 0) != -1 || depth.At(3, 0) != -1 {
		t.Fatalf("disconnected depths wrong: %v", depth.Data)
	}
	// Depth cap truncates the search.
	capped, err := MultiSourceBFS(plainAgg{pathGraph(t, 10)}, 10, []int32{0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if capped.At(3, 0) != 3 || capped.At(4, 0) != -1 {
		t.Fatalf("depth cap wrong: %v %v", capped.At(3, 0), capped.At(4, 0))
	}
}

func TestBFSValidation(t *testing.T) {
	g := pathGraph(t, 4)
	if _, err := MultiSourceBFS(plainAgg{g}, 4, []int32{7}, 2); err == nil {
		t.Fatalf("out-of-range source accepted")
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	const n = 32
	g := cycleGraph(t, n)
	trans := TransitionMatrix(g)
	scores, err := PageRank(plainAgg{trans}, n, 2, 50, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	// A regular graph's PageRank is uniform; mass stays 1.
	for c := 0; c < 2; c++ {
		if mass := ColumnMass(scores, c); math.Abs(mass-1) > 1e-3 {
			t.Fatalf("column %d mass = %v", c, mass)
		}
	}
	for i := 0; i < n; i++ {
		if math.Abs(float64(scores.At(i, 0))-1.0/n) > 1e-4 {
			t.Fatalf("cycle PageRank not uniform at %d: %v", i, scores.At(i, 0))
		}
	}
}

func TestPageRankFavoursHub(t *testing.T) {
	// A star: hub 0 connected to all others (undirected). The hub must
	// out-rank every leaf.
	const n = 16
	sets := make([][]int32, n)
	for i := 1; i < n; i++ {
		sets[0] = append(sets[0], int32(i))
		sets[i] = []int32{0}
	}
	g, err := sparse.FromRows(n, n, sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := PageRank(plainAgg{TransitionMatrix(g)}, n, 1, 60, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	hub := scores.At(0, 0)
	for i := 1; i < n; i++ {
		if scores.At(i, 0) >= hub {
			t.Fatalf("leaf %d (%v) >= hub (%v)", i, scores.At(i, 0), hub)
		}
	}
}

func TestPageRankValidation(t *testing.T) {
	g := cycleGraph(t, 4)
	agg := plainAgg{TransitionMatrix(g)}
	if _, err := PageRank(agg, 4, 1, 5, 1.5); err == nil {
		t.Fatalf("damping > 1 accepted")
	}
	if _, err := PageRank(agg, 4, 0, 5, 0.85); err == nil {
		t.Fatalf("0 chains accepted")
	}
}

func TestTransitionMatrixStochastic(t *testing.T) {
	g := pathGraph(t, 6)
	trans := TransitionMatrix(g)
	// Column sums of the transition matrix are 1 (no dangling vertices
	// in a path graph).
	colSum := make([]float64, 6)
	for i := 0; i < 6; i++ {
		cols, vals := trans.RowCols(i), trans.RowVals(i)
		for j := range cols {
			colSum[cols[j]] += float64(vals[j])
		}
	}
	for c, s := range colSum {
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("column %d sum = %v", c, s)
		}
	}
}
