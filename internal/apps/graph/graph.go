// Package graph implements multi-source graph analytics expressed as
// repeated SpMM over a frontier/score matrix — the "graph centrality
// calculations" application class of §2.2. Each BFS level or power-
// iteration round is one SpMM with K = number of simultaneous sources,
// so the row-reordering pipeline accelerates every iteration once the
// adjacency has been preprocessed.
package graph

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// SpMMer computes S·X for the fixed adjacency (the plain kernels and the
// root package's Pipeline both satisfy it).
type SpMMer interface {
	SpMM(x *dense.Matrix) (*dense.Matrix, error)
}

// MultiSourceBFS runs breadth-first reachability from the given source
// vertices simultaneously (one column per source) and returns, for each
// (vertex, source) pair, the BFS depth at which the vertex was first
// reached (-1 if unreachable within maxDepth; 0 for the source itself).
func MultiSourceBFS(agg SpMMer, n int, sources []int32, maxDepth int) (*dense.Matrix, error) {
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("graph: source %d out of range [0,%d)", s, n)
		}
	}
	depth := dense.New(n, len(sources))
	depth.Fill(-1)
	frontier := dense.New(n, len(sources))
	for k, s := range sources {
		depth.Set(int(s), k, 0)
		frontier.Set(int(s), k, 1)
	}
	for d := 1; d <= maxDepth; d++ {
		next, err := agg.SpMM(frontier)
		if err != nil {
			return nil, err
		}
		any := false
		for i := 0; i < n; i++ {
			nr, dr := next.Row(i), depth.Row(i)
			for k := range nr {
				if nr[k] > 0 && dr[k] < 0 {
					dr[k] = float32(d)
					nr[k] = 1
					any = true
				} else {
					nr[k] = 0
				}
			}
		}
		if !any {
			break
		}
		frontier = next
	}
	return depth, nil
}

// PageRank runs the damped power iteration on a column-stochastic
// transition matrix for the given number of rounds over `chains`
// independent score columns (all initialised uniformly; multiple columns
// model e.g. personalised restarts — here they exercise the SpMM width).
// It returns the final score matrix.
func PageRank(trans SpMMer, n, chains, rounds int, damping float32) (*dense.Matrix, error) {
	if damping < 0 || damping > 1 {
		return nil, fmt.Errorf("graph: damping %v outside [0,1]", damping)
	}
	if chains <= 0 || n <= 0 {
		return nil, fmt.Errorf("graph: need positive n and chains")
	}
	scores := dense.New(n, chains)
	scores.Fill(1 / float32(n))
	for it := 0; it < rounds; it++ {
		next, err := trans.SpMM(scores)
		if err != nil {
			return nil, err
		}
		base := (1 - damping) / float32(n)
		for i := range next.Data {
			next.Data[i] = damping*next.Data[i] + base
		}
		scores = next
	}
	return scores, nil
}

// TransitionMatrix converts an adjacency matrix into the
// column-stochastic transition matrix used by PageRank: entry (i, j)
// becomes 1/outdeg(j) (dangling columns stay zero; the damping term
// redistributes their mass).
func TransitionMatrix(adj *sparse.CSR) *sparse.CSR {
	out := adj.Clone()
	colDeg := out.ColCounts()
	for i := 0; i < out.Rows; i++ {
		cols := out.RowCols(i)
		vals := out.Val[out.RowPtr[i]:out.RowPtr[i+1]]
		for j := range cols {
			if d := colDeg[cols[j]]; d > 0 {
				vals[j] = 1 / float32(d)
			}
		}
	}
	return out
}

// ColumnMass returns the sum of one score column (diagnostic: with no
// dangling vertices the PageRank mass stays 1).
func ColumnMass(m *dense.Matrix, col int) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += float64(m.At(i, col))
	}
	return s
}
