// Package eigen implements a block power iteration with orthonormalised
// iterates — a simplified stand-in for the LOBPCG eigensolver cited in
// §2.2 as a primary SpMM consumer ("SpMM is widely used in many
// applications such as LOBPCG for finding eigenvalues of a matrix").
// Every iteration is one SpMM of the sparse operator against the block
// of K candidate eigenvectors, so a preprocessed pipeline accelerates
// each of the (many) iterations.
package eigen

import (
	"fmt"
	"math"

	"repro/internal/dense"
)

// SpMMer applies the (symmetric) sparse operator to a block of vectors.
type SpMMer interface {
	SpMM(x *dense.Matrix) (*dense.Matrix, error)
}

// Result holds the converged approximation.
type Result struct {
	// Vectors holds the orthonormal eigenvector approximations
	// (n × block).
	Vectors *dense.Matrix
	// Values holds the Rayleigh-quotient eigenvalue estimates, one per
	// block column, in the block's column order (descending magnitude
	// after convergence).
	Values []float64
	// Iterations actually performed.
	Iterations int
}

// BlockPowerIteration computes approximations to the `block` largest-
// magnitude eigenpairs of the symmetric operator via subspace iteration:
// X ← orth(A·X) until the Rayleigh quotients move less than tol between
// iterations (or maxIter is reached).
func BlockPowerIteration(op SpMMer, n, block, maxIter int, tol float64, seed int64) (*Result, error) {
	if block <= 0 || block > n {
		return nil, fmt.Errorf("eigen: block %d out of range (0, %d]", block, n)
	}
	if maxIter <= 0 {
		return nil, fmt.Errorf("eigen: maxIter must be positive")
	}
	x := dense.NewRandom(n, block, seed)
	if err := orthonormalize(x); err != nil {
		return nil, err
	}
	prev := make([]float64, block)
	res := &Result{}
	for it := 1; it <= maxIter; it++ {
		ax, err := op.SpMM(x)
		if err != nil {
			return nil, err
		}
		// Rayleigh quotients before re-orthonormalisation: λ_j ≈ x_jᵀAx_j.
		vals := make([]float64, block)
		for j := 0; j < block; j++ {
			var num float64
			for i := 0; i < n; i++ {
				num += float64(x.At(i, j)) * float64(ax.At(i, j))
			}
			vals[j] = num
		}
		if err := orthonormalize(ax); err != nil {
			return nil, err
		}
		x = ax
		res.Iterations = it
		res.Values = vals
		done := true
		for j := range vals {
			if math.Abs(vals[j]-prev[j]) > tol*(1+math.Abs(vals[j])) {
				done = false
			}
		}
		copy(prev, vals)
		if done && it > 1 {
			break
		}
	}
	res.Vectors = x
	return res, nil
}

// orthonormalize runs modified Gram-Schmidt over the columns in place.
// It fails if a column collapses to (numerical) zero — an eigenvalue
// multiplicity degeneracy the caller should handle by reducing the
// block.
func orthonormalize(x *dense.Matrix) error {
	n, k := x.Rows, x.Cols
	for j := 0; j < k; j++ {
		for p := 0; p < j; p++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += float64(x.At(i, p)) * float64(x.At(i, j))
			}
			for i := 0; i < n; i++ {
				x.Set(i, j, x.At(i, j)-float32(dot)*x.At(i, p))
			}
		}
		var norm float64
		for i := 0; i < n; i++ {
			v := float64(x.At(i, j))
			norm += v * v
		}
		norm = math.Sqrt(norm)
		// Columns enter with O(1) magnitude; anything this small after
		// removing projections is float32 rounding noise, not a real
		// independent component.
		if norm < 1e-5 {
			return fmt.Errorf("eigen: column %d collapsed during orthonormalisation", j)
		}
		inv := float32(1 / norm)
		for i := 0; i < n; i++ {
			x.Set(i, j, x.At(i, j)*inv)
		}
	}
	return nil
}
