package eigen

import (
	"math"
	"testing"

	"repro/internal/dense"
	"repro/internal/kernels"
	"repro/internal/sparse"
)

type plainOp struct{ s *sparse.CSR }

func (o plainOp) SpMM(x *dense.Matrix) (*dense.Matrix, error) {
	return kernels.SpMMRowWise(o.s, x)
}

// diagMatrix builds a diagonal matrix with the given entries.
func diagMatrix(t *testing.T, d []float32) *sparse.CSR {
	t.Helper()
	sets := make([][]int32, len(d))
	vals := make([][]float32, len(d))
	for i := range d {
		sets[i] = []int32{int32(i)}
		vals[i] = []float32{d[i]}
	}
	m, err := sparse.FromRows(len(d), len(d), sets, vals)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDiagonalEigenvalues(t *testing.T) {
	// Diagonal operator: eigenvalues are the diagonal entries; the block
	// converges onto the largest ones.
	d := make([]float32, 50)
	for i := range d {
		d[i] = float32(i + 1) // eigenvalues 1..50
	}
	m := diagMatrix(t, d)
	res, err := BlockPowerIteration(plainOp{m}, 50, 3, 500, 1e-10, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{50, 49, 48}
	got := append([]float64(nil), res.Values...)
	// The block spans the top-3 invariant subspace; the Rayleigh
	// quotients converge to the top eigenvalues (any column order).
	for _, w := range want {
		found := false
		for _, g := range got {
			if math.Abs(g-w) < 0.05 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("eigenvalue %v not found in %v (iters %d)", w, got, res.Iterations)
		}
	}
}

func TestEigenvectorsOrthonormal(t *testing.T) {
	d := make([]float32, 30)
	for i := range d {
		d[i] = float32(30 - i)
	}
	m := diagMatrix(t, d)
	res, err := BlockPowerIteration(plainOp{m}, 30, 4, 300, 1e-9, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Vectors
	for a := 0; a < v.Cols; a++ {
		for b := 0; b < v.Cols; b++ {
			var dot float64
			for i := 0; i < v.Rows; i++ {
				dot += float64(v.At(i, a)) * float64(v.At(i, b))
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-4 {
				t.Fatalf("vᵀv[%d][%d] = %v, want %v", a, b, dot, want)
			}
		}
	}
}

func TestResidualSmall(t *testing.T) {
	// ‖A·v − λ·v‖ should be small for the dominant pair.
	d := []float32{10, 3, 2, 1, 0.5, 0.1}
	m := diagMatrix(t, d)
	res, err := BlockPowerIteration(plainOp{m}, 6, 1, 400, 1e-12, 3)
	if err != nil {
		t.Fatal(err)
	}
	av, err := kernels.SpMMRowWise(m, res.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	lambda := res.Values[0]
	var resid float64
	for i := 0; i < 6; i++ {
		r := float64(av.At(i, 0)) - lambda*float64(res.Vectors.At(i, 0))
		resid += r * r
	}
	if math.Sqrt(resid) > 1e-3 {
		t.Fatalf("residual %v too large (λ=%v)", math.Sqrt(resid), lambda)
	}
}

func TestValidation(t *testing.T) {
	m := diagMatrix(t, []float32{1, 2})
	if _, err := BlockPowerIteration(plainOp{m}, 2, 0, 10, 1e-6, 1); err == nil {
		t.Fatalf("block 0 accepted")
	}
	if _, err := BlockPowerIteration(plainOp{m}, 2, 3, 10, 1e-6, 1); err == nil {
		t.Fatalf("block > n accepted")
	}
	if _, err := BlockPowerIteration(plainOp{m}, 2, 1, 0, 1e-6, 1); err == nil {
		t.Fatalf("maxIter 0 accepted")
	}
}

func TestOrthonormalizeCollapse(t *testing.T) {
	// Two identical columns collapse in MGS.
	x := dense.New(3, 2)
	for i := 0; i < 3; i++ {
		x.Set(i, 0, 1)
		x.Set(i, 1, 1)
	}
	if err := orthonormalize(x); err == nil {
		t.Fatalf("collapsed column accepted")
	}
}
