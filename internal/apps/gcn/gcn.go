// Package gcn implements a small graph convolutional network — forward
// and backward pass — on top of any SpMM provider. Graph convolution is
// the paper's first motivating application ("the most basic operation in
// Graph Neural Networks is an SpMM"); this package is the tested
// substrate behind examples/gnn and demonstrates that the reordering
// pipeline drops into a real training loop (the aggregation SpMM runs
// through the preprocessed matrix, gradients through its transpose).
package gcn

import (
	"fmt"

	"repro/internal/dense"
)

// SpMMer computes S·X for a fixed sparse matrix S. Both the plain
// kernels and the root package's Pipeline satisfy it.
type SpMMer interface {
	SpMM(x *dense.Matrix) (*dense.Matrix, error)
}

// Model is an L-layer GCN: H_l = ReLU(A·(H_{l-1}·W_l)), with no
// activation after the final layer.
type Model struct {
	// Agg aggregates over the (normalised) adjacency A; AggT over Aᵀ
	// (needed by backprop; for symmetric normalised adjacencies the two
	// may be the same object).
	Agg, AggT SpMMer
	// Weights holds one weight matrix per layer.
	Weights []*dense.Matrix
}

// New initialises a model with the given layer widths (len(widths) =
// layers+1) and deterministic small random weights.
func New(agg, aggT SpMMer, widths []int, seed int64) (*Model, error) {
	if len(widths) < 2 {
		return nil, fmt.Errorf("gcn: need at least input and output widths, got %v", widths)
	}
	m := &Model{Agg: agg, AggT: aggT}
	for l := 0; l+1 < len(widths); l++ {
		w := dense.NewRandom(widths[l], widths[l+1], seed+int64(l))
		w.Scale(0.1)
		m.Weights = append(m.Weights, w)
	}
	return m, nil
}

// forwardState caches the per-layer intermediates backprop needs.
type forwardState struct {
	inputs []*dense.Matrix // H_{l-1} per layer
	pre    []*dense.Matrix // Z_l = A·(H_{l-1}·W_l) per layer
	out    *dense.Matrix
}

// Forward runs the network on node features X and returns the output
// embedding (rows = nodes).
func (m *Model) Forward(x *dense.Matrix) (*dense.Matrix, error) {
	st, err := m.forward(x)
	if err != nil {
		return nil, err
	}
	return st.out, nil
}

func (m *Model) forward(x *dense.Matrix) (*forwardState, error) {
	st := &forwardState{}
	h := x
	for l, w := range m.Weights {
		st.inputs = append(st.inputs, h)
		hw, err := dense.MatMul(h, w)
		if err != nil {
			return nil, fmt.Errorf("gcn: layer %d: %w", l, err)
		}
		z, err := m.Agg.SpMM(hw)
		if err != nil {
			return nil, fmt.Errorf("gcn: layer %d aggregation: %w", l, err)
		}
		st.pre = append(st.pre, z)
		if l+1 < len(m.Weights) {
			h = z.Clone()
			h.ReLU()
		} else {
			h = z
		}
	}
	st.out = h
	return st, nil
}

// Loss returns the mean-squared-error ½‖out − target‖²/n between the
// forward output and a target embedding.
func (m *Model) Loss(x, target *dense.Matrix) (float64, error) {
	out, err := m.Forward(x)
	if err != nil {
		return 0, err
	}
	diff := out.Clone()
	diff.AddScaled(target, -1)
	n := float64(len(diff.Data))
	fn := diff.FrobeniusNorm()
	return fn * fn / (2 * n), nil
}

// Step runs one full forward/backward pass against the MSE loss and
// applies a gradient step with learning rate lr. It returns the loss
// before the update.
func (m *Model) Step(x, target *dense.Matrix, lr float32) (float64, error) {
	grads, loss, err := m.Gradients(x, target)
	if err != nil {
		return 0, err
	}
	for l := range m.Weights {
		m.Weights[l].AddScaled(grads[l], -lr)
	}
	return loss, nil
}

// Gradients computes ∂Loss/∂W_l for every layer by backpropagation and
// returns them with the current loss.
func (m *Model) Gradients(x, target *dense.Matrix) ([]*dense.Matrix, float64, error) {
	st, err := m.forward(x)
	if err != nil {
		return nil, 0, err
	}
	n := float64(len(st.out.Data))
	diff := st.out.Clone()
	diff.AddScaled(target, -1)
	fn := diff.FrobeniusNorm()
	loss := fn * fn / (2 * n)

	grads := make([]*dense.Matrix, len(m.Weights))
	// dZ for the output layer: (out - target)/n.
	dZ := diff
	dZ.Scale(float32(1 / n))
	for l := len(m.Weights) - 1; l >= 0; l-- {
		// Z_l = A · (H_{l-1} W_l):
		//   dM = Aᵀ·dZ, with M = H_{l-1} W_l
		dM, err := m.AggT.SpMM(dZ)
		if err != nil {
			return nil, 0, fmt.Errorf("gcn: layer %d transpose aggregation: %w", l, err)
		}
		//   dW_l = H_{l-1}ᵀ · dM
		hT := transpose(st.inputs[l])
		dW, err := dense.MatMul(hT, dM)
		if err != nil {
			return nil, 0, err
		}
		grads[l] = dW
		if l == 0 {
			break
		}
		//   dH_{l-1} = dM · W_lᵀ, gated by ReLU'(Z_{l-1}).
		dH, err := dense.MatMul(dM, transpose(m.Weights[l]))
		if err != nil {
			return nil, 0, err
		}
		prev := st.pre[l-1]
		for i := range dH.Data {
			if prev.Data[i] <= 0 {
				dH.Data[i] = 0
			}
		}
		dZ = dH
	}
	return grads, loss, nil
}

// transpose returns a dense transpose (narrow matrices only; weights and
// activations here are node×features).
func transpose(m *dense.Matrix) *dense.Matrix {
	t := dense.New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}
