package gcn

import (
	"math"
	"testing"

	"repro/internal/dense"
	"repro/internal/kernels"
	"repro/internal/sparse"
	"repro/internal/synth"
)

// plainAgg adapts the row-wise kernel to the SpMMer interface.
type plainAgg struct{ s *sparse.CSR }

func (a plainAgg) SpMM(x *dense.Matrix) (*dense.Matrix, error) {
	return kernels.SpMMRowWise(a.s, x)
}

func testGraph(t *testing.T, n int) (SpMMer, SpMMer, *sparse.CSR) {
	t.Helper()
	adj, err := synth.RMAT(6, 4, 0.57, 0.19, 0.19, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = n
	return plainAgg{adj}, plainAgg{sparse.Transpose(adj)}, adj
}

func TestNewValidation(t *testing.T) {
	a, at, _ := testGraph(t, 64)
	if _, err := New(a, at, []int{8}, 1); err == nil {
		t.Fatalf("single width accepted")
	}
	m, err := New(a, at, []int{8, 16, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Weights) != 2 || m.Weights[0].Rows != 8 || m.Weights[1].Cols != 4 {
		t.Fatalf("weights shaped wrong")
	}
}

func TestForwardShapes(t *testing.T) {
	a, at, adj := testGraph(t, 64)
	m, err := New(a, at, []int{8, 16, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := dense.NewRandom(adj.Rows, 8, 2)
	out, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows != adj.Rows || out.Cols != 4 {
		t.Fatalf("output %v", out)
	}
}

// TestGradientCheck verifies backprop against numerical differentiation
// on a small model: the definitive correctness test for the backward
// pass through the SpMM aggregation.
func TestGradientCheck(t *testing.T) {
	a, at, adj := testGraph(t, 64)
	model, err := New(a, at, []int{4, 6, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	x := dense.NewRandom(adj.Rows, 4, 6)
	target := dense.NewRandom(adj.Rows, 3, 7)

	grads, _, err := model.Gradients(x, target)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-3
	for l, w := range model.Weights {
		// Spot-check a handful of entries per layer.
		for _, idx := range []int{0, 1, len(w.Data) / 2, len(w.Data) - 1} {
			orig := w.Data[idx]
			w.Data[idx] = orig + eps
			lp, err := model.Loss(x, target)
			if err != nil {
				t.Fatal(err)
			}
			w.Data[idx] = orig - eps
			lm, err := model.Loss(x, target)
			if err != nil {
				t.Fatal(err)
			}
			w.Data[idx] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(grads[l].Data[idx])
			denom := math.Max(1e-6, math.Abs(numeric)+math.Abs(analytic))
			if rel := math.Abs(numeric-analytic) / denom; rel > 0.05 {
				t.Fatalf("layer %d entry %d: numeric %v vs analytic %v (rel %v)",
					l, idx, numeric, analytic, rel)
			}
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	a, at, adj := testGraph(t, 64)
	model, err := New(a, at, []int{4, 8, 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	x := dense.NewRandom(adj.Rows, 4, 10)
	target := dense.NewRandom(adj.Rows, 2, 11)
	first, err := model.Loss(x, target)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	prev := first
	for i := 0; i < 300; i++ {
		last, err = model.Step(x, target, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if last > prev*1.5 {
			t.Fatalf("training diverged at step %d: %v -> %v", i, prev, last)
		}
		prev = last
	}
	if last >= first*0.9 {
		t.Fatalf("training did not reduce loss: %v -> %v", first, last)
	}
}
