// Package als implements regularised Alternating Least Squares matrix
// factorisation — the collaborative-filtering workload the paper's §2.2
// cites for SDDMM (Koren et al.'s "Matrix Factorization Techniques for
// Recommender Systems"). Ratings R (users×items, sparse) are factored as
// U·Vᵀ; each half-step solves an independent k×k normal-equation system
// per user (or item) over the observed ratings, and the training-error
// evaluation is an SDDMM over the ratings support.
package als

import (
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/kernels"
	"repro/internal/sparse"
)

// SDDMMer samples Y·Xᵀ on the ratings support: it must be bound to a
// matrix with R's sparsity pattern and *unit values*, so the SDDMM's
// Hadamard scaling leaves the raw dot products (predicted ratings). Both
// the plain kernels and the root package's Pipeline satisfy it when
// constructed over PatternOf(R). It is the per-epoch SDDMM the paper
// accelerates.
type SDDMMer interface {
	SDDMM(x, y *dense.Matrix) (*sparse.CSR, error)
}

// PatternOf returns a copy of r with every stored value set to 1 — the
// matrix an SDDMMer for this model must be bound to.
func PatternOf(r *sparse.CSR) *sparse.CSR {
	p := r.Clone()
	for i := range p.Val {
		p.Val[i] = 1
	}
	return p
}

// Model holds the factorisation state.
type Model struct {
	R  *sparse.CSR // users × items ratings
	RT *sparse.CSR // items × users (transpose, for the item half-step)
	U  *dense.Matrix
	V  *dense.Matrix
	// Lambda is the L2 regularisation weight.
	Lambda float32
	// Eval computes the sampled prediction U·Vᵀ on R's support.
	Eval SDDMMer
}

// plainEval is the default SDDMM provider (row-wise kernel).
type plainEval struct{ s *sparse.CSR }

func (p plainEval) SDDMM(x, y *dense.Matrix) (*sparse.CSR, error) {
	return kernels.SDDMMRowWise(p.s, x, y)
}

// New initialises a rank-k model with deterministic random factors.
// eval may be nil, in which case the plain row-wise SDDMM is used.
func New(r *sparse.CSR, k int, lambda float32, seed int64, eval SDDMMer) (*Model, error) {
	if k <= 0 {
		return nil, fmt.Errorf("als: rank must be positive, got %d", k)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("als: ratings: %w", err)
	}
	if eval == nil {
		eval = plainEval{PatternOf(r)}
	}
	u := dense.NewRandom(r.Rows, k, seed)
	u.Scale(0.1)
	v := dense.NewRandom(r.Cols, k, seed+1)
	v.Scale(0.1)
	return &Model{
		R: r, RT: sparse.Transpose(r),
		U: u, V: v, Lambda: lambda, Eval: eval,
	}, nil
}

// Epoch runs one full alternation (solve U given V, then V given U) and
// returns the RMSE over the observed ratings *after* the update.
func (m *Model) Epoch() (float64, error) {
	if err := solveSide(m.R, m.U, m.V, m.Lambda); err != nil {
		return 0, fmt.Errorf("als: user step: %w", err)
	}
	if err := solveSide(m.RT, m.V, m.U, m.Lambda); err != nil {
		return 0, fmt.Errorf("als: item step: %w", err)
	}
	return m.RMSE()
}

// RMSE evaluates the root-mean-square error over the ratings support
// using the model's SDDMM provider (which samples raw predictions; see
// SDDMMer).
func (m *Model) RMSE() (float64, error) {
	pred, err := m.Eval.SDDMM(m.V, m.U)
	if err != nil {
		return 0, err
	}
	if !pred.SameStructure(m.R) {
		return 0, fmt.Errorf("als: evaluator structure does not match ratings")
	}
	if m.R.NNZ() == 0 {
		return 0, nil
	}
	var s float64
	for j := range pred.Val {
		e := float64(m.R.Val[j] - pred.Val[j])
		s += e * e
	}
	return math.Sqrt(s / float64(m.R.NNZ())), nil
}

// solveSide updates each row u_i of `solve` by ridge regression against
// the fixed factor: u_i = (Vᵢᵀ Vᵢ + λ n_i I)⁻¹ Vᵢᵀ r_i, where Vᵢ stacks
// the fixed factor rows of the items user i rated.
func solveSide(r *sparse.CSR, solve, fixed *dense.Matrix, lambda float32) error {
	k := solve.Cols
	ata := make([]float64, k*k)
	atb := make([]float64, k)
	for i := 0; i < r.Rows; i++ {
		cols, vals := r.RowCols(i), r.RowVals(i)
		if len(cols) == 0 {
			continue
		}
		for x := range ata {
			ata[x] = 0
		}
		for x := range atb {
			atb[x] = 0
		}
		for j, c := range cols {
			f := fixed.Row(int(c))
			for a := 0; a < k; a++ {
				fa := float64(f[a])
				atb[a] += fa * float64(vals[j])
				for b := a; b < k; b++ {
					ata[a*k+b] += fa * float64(f[b])
				}
			}
		}
		reg := float64(lambda) * float64(len(cols))
		for a := 0; a < k; a++ {
			ata[a*k+a] += reg
			for b := 0; b < a; b++ {
				ata[a*k+b] = ata[b*k+a] // symmetrise lower triangle
			}
		}
		sol, err := choleskySolve(ata, atb, k)
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		row := solve.Row(i)
		for a := 0; a < k; a++ {
			row[a] = float32(sol[a])
		}
	}
	return nil
}

// choleskySolve solves the SPD system A·x = b (A row-major k×k,
// overwritten) via Cholesky decomposition.
func choleskySolve(a, b []float64, k int) ([]float64, error) {
	// Decompose A = L·Lᵀ in place (lower triangle).
	for c := 0; c < k; c++ {
		d := a[c*k+c]
		for s := 0; s < c; s++ {
			d -= a[c*k+s] * a[c*k+s]
		}
		if d <= 0 {
			return nil, fmt.Errorf("als: normal matrix not positive definite (pivot %d: %g)", c, d)
		}
		a[c*k+c] = math.Sqrt(d)
		for r := c + 1; r < k; r++ {
			v := a[r*k+c]
			for s := 0; s < c; s++ {
				v -= a[r*k+s] * a[c*k+s]
			}
			a[r*k+c] = v / a[c*k+c]
		}
	}
	// Forward substitution L·y = b.
	y := make([]float64, k)
	for r := 0; r < k; r++ {
		v := b[r]
		for s := 0; s < r; s++ {
			v -= a[r*k+s] * y[s]
		}
		y[r] = v / a[r*k+r]
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, k)
	for r := k - 1; r >= 0; r-- {
		v := y[r]
		for s := r + 1; s < k; s++ {
			v -= a[s*k+r] * x[s]
		}
		x[r] = v / a[r*k+r]
	}
	return x, nil
}
