package als

import (
	"math"
	"testing"

	"repro/internal/sparse"
	"repro/internal/synth"
)

func TestCholeskySolve(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
	a := []float64{4, 2, 2, 3}
	b := []float64{10, 9}
	x, err := choleskySolve(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1.5) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Fatalf("x = %v, want [1.5 2]", x)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := []float64{1, 2, 2, 1} // eigenvalues 3, -1
	if _, err := choleskySolve(a, []float64{1, 1}, 2); err == nil {
		t.Fatalf("indefinite matrix accepted")
	}
}

func TestNewValidation(t *testing.T) {
	r, err := synth.Bipartite(40, 30, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(r, 0, 0.1, 1, nil); err == nil {
		t.Fatalf("rank 0 accepted")
	}
	m, err := New(r, 4, 0.1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.U.Rows != 40 || m.V.Rows != 30 || m.U.Cols != 4 {
		t.Fatalf("factor shapes wrong")
	}
}

func TestALSConvergence(t *testing.T) {
	r, err := synth.Bipartite(120, 80, 8, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(r, 8, 0.05, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := m.RMSE()
	if err != nil {
		t.Fatal(err)
	}
	prev := initial
	for epoch := 0; epoch < 8; epoch++ {
		rmse, err := m.Epoch()
		if err != nil {
			t.Fatal(err)
		}
		// Regularised ALS decreases the *regularised* objective
		// monotonically; the observed RMSE may tick up marginally, but
		// never blow up.
		if rmse > prev*1.05 {
			t.Fatalf("epoch %d: rmse increased %v -> %v", epoch, prev, rmse)
		}
		prev = rmse
	}
	if prev > initial*0.5 {
		t.Fatalf("ALS did not fit: rmse %v -> %v", initial, prev)
	}
}

func TestALSPerfectlyFactorableData(t *testing.T) {
	// A fully observed rank-2 matrix must be recovered to (near) machine
	// precision — with every entry observed, both half-steps are exact
	// least-squares solves and ALS converges in one alternation. (On a
	// sparse Zipf-skewed support, exact recovery is not identifiable;
	// TestALSConvergence covers that regime.)
	users, items, rank := 20, 15, 2
	sets := make([][]int32, users)
	vals := make([][]float32, users)
	for i := 0; i < users; i++ {
		for j := 0; j < items; j++ {
			u := []float64{1 + float64(i%5)/5, float64(i%3) / 3}
			v := []float64{float64(j%4) / 4, 1 + float64(j%7)/7}
			sets[i] = append(sets[i], int32(j))
			vals[i] = append(vals[i], float32(u[0]*v[0]+u[1]*v[1]))
		}
	}
	r, err := sparse.FromRows(users, items, sets, vals)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(r, rank, 1e-9, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := m.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 1e-5 {
		t.Fatalf("rank-2 data not recovered in one alternation: rmse %v", rmse)
	}
}

func TestPatternOf(t *testing.T) {
	r, err := synth.Bipartite(10, 10, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := PatternOf(r)
	if !p.SameStructure(r) {
		t.Fatalf("pattern structure differs")
	}
	for _, v := range p.Val {
		if v != 1 {
			t.Fatalf("pattern value %v", v)
		}
	}
	// Original untouched.
	changed := false
	for _, v := range r.Val {
		if v != 1 {
			changed = true
		}
	}
	if !changed {
		t.Skip("fixture happened to be all ones")
	}
}
