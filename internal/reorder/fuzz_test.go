package reorder

import (
	"bytes"
	"testing"
)

// withReservedFlagBits returns a copy of a serialised v1 plan with the
// given reserved flag bits ORed into the flag word and the CRC footer
// recomputed, so everything except the reserved-bits check sees a
// perfectly intact file.
func withReservedFlagBits(plan []byte, bits byte) []byte {
	b := append([]byte(nil), plan...)
	b[12] |= bits // flag word is little-endian at offset 12; bits 2-7 live in its low byte
	recomputePlanCRC(b)
	return b
}

// FuzzReadPlan drives the plan deserialiser with arbitrary bytes: it
// must never panic or over-allocate, and anything accepted must carry
// valid permutations and a resolvable kernel choice.
func FuzzReadPlan(f *testing.F) {
	// A valid legacy v0-header plan (2 rows) as seed.
	var valid bytes.Buffer
	valid.Write([]byte{0x31, 0x50, 0x52, 0x52}) // v0 magic
	valid.Write([]byte{2, 0, 0, 0})             // rows
	valid.Write([]byte{3, 0, 0, 0})             // flags
	valid.Write([]byte{1, 0, 0, 0, 0, 0, 0, 0}) // RowPerm [1,0]
	valid.Write([]byte{0, 0, 0, 0, 1, 0, 0, 0}) // RestOrder [0,1]
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x50, 0x52, 0x52, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	// A valid v1 plan (current format, CRC footer), plus truncated and
	// bit-flipped mutations of it.
	var v1 bytes.Buffer
	if err := WritePlan(&v1, &Plan{
		RowPerm:       []int32{2, 0, 1},
		RestOrder:     []int32{1, 2, 0},
		Round1Applied: true,
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v1.Bytes()[:len(v1.Bytes())-5]) // truncated mid-footer
	f.Add(v1.Bytes()[:17])                // truncated mid-permutation
	flipped := append([]byte(nil), v1.Bytes()...)
	flipped[20] ^= 0x10 // bit flip inside RowPerm
	f.Add(flipped)
	// Seeds exercising the upper flag-word fields: the kernel choice in
	// bits 8-11 and the structural epoch in bits 12-31, alone and
	// together, including the all-ones epoch boundary.
	for _, p := range []*Plan{
		{RowPerm: []int32{1, 0, 2}, RestOrder: []int32{0, 2, 1}, Round1Applied: true, Kernel: KernelMerge},
		{RowPerm: []int32{1, 0, 2}, RestOrder: []int32{0, 2, 1}, Kernel: KernelELLHybrid, Cfg: Config{Epoch: 0xABCDE}},
		{RowPerm: []int32{0, 1}, RestOrder: []int32{1, 0}, Round1Applied: true, Round2Applied: true,
			Kernel: KernelASpT, Cfg: Config{Epoch: 0xFFFFF}},
	} {
		var b bytes.Buffer
		if err := WritePlan(&b, p); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}
	// Reserved bits 2-7 set, with the CRC recomputed so only the flag
	// check can reject it — the deserialiser must not half-understand a
	// future format revision.
	f.Add(withReservedFlagBits(v1.Bytes(), 0x04))
	f.Add(withReservedFlagBits(v1.Bytes(), 0xFC))
	f.Fuzz(func(t *testing.T, in []byte) {
		sp, err := ReadPlan(bytes.NewReader(in))
		if err != nil {
			return
		}
		if !sp.Kernel.Valid() {
			t.Fatalf("accepted plan with invalid kernel %v", sp.Kernel)
		}
		if len(sp.RowPerm) != sp.Rows || len(sp.RestOrder) != sp.Rows {
			t.Fatalf("accepted plan with inconsistent lengths")
		}
		// Accepted permutations must be bijective (ReadPlan checks this;
		// re-verify independently).
		seen := make([]bool, sp.Rows)
		for _, v := range sp.RowPerm {
			if v < 0 || int(v) >= sp.Rows || seen[v] {
				t.Fatalf("accepted non-permutation RowPerm")
			}
			seen[v] = true
		}
	})
}
