package reorder

import (
	"testing"

	"repro/internal/paperex"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.ASpT.PanelSize = paperex.PanelSize
	cfg.ASpT.DenseThreshold = paperex.DenseThreshold
	return cfg
}

func TestPreprocessValidatesInput(t *testing.T) {
	bad := &sparse.CSR{Rows: 2, Cols: 2, RowPtr: []int32{0, 1}} // wrong lengths
	if _, err := Preprocess(bad, DefaultConfig()); err == nil {
		t.Fatalf("accepted invalid matrix")
	}
}

func TestPreprocessDoesNotMutateInput(t *testing.T) {
	m := paperex.Matrix()
	orig := m.Clone()
	plan, err := Preprocess(m, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(orig) {
		t.Fatalf("input mutated")
	}
	// Plan never aliases the input.
	if plan.Reordered == m || plan.Tiled.Src == m {
		t.Fatalf("plan aliases input matrix")
	}
	plan.Reordered.Val[0] = 99
	if m.Val[0] == 99 {
		t.Fatalf("plan shares storage with input")
	}
}

func TestPreprocessPaperExample(t *testing.T) {
	m := paperex.Matrix()
	cfg := smallConfig()
	plan, err := Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dense ratio of the original is 2/12 = 16.7% > 10%: round 1 is
	// skipped by the heuristic.
	if plan.Round1Applied {
		t.Fatalf("round 1 should be skipped at dense ratio %.3f", plan.DenseRatioBefore)
	}
	// Forcing applies both rounds. With threshold_size 3 the clusters
	// retire at {0,2,4} and {1,3,5}, recovering exactly the Fig 6 order
	// (with the paper's default threshold of 256 all six rows of this
	// toy merge into one cluster and the order is unchanged).
	cfg.Force = true
	cfg.ThresholdSize = 3
	plan, err = Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Round1Applied || !plan.Round2Applied {
		t.Fatalf("force did not apply both rounds")
	}
	if plan.DenseRatioAfter <= plan.DenseRatioBefore {
		t.Fatalf("forced reordering did not improve dense ratio: %.3f -> %.3f",
			plan.DenseRatioBefore, plan.DenseRatioAfter)
	}
	if !sparse.IsPermutation(plan.RowPerm, m.Rows) || !sparse.IsPermutation(plan.RestOrder, m.Rows) {
		t.Fatalf("plan permutations invalid")
	}
}

func TestPreprocessNRIsPlainASpT(t *testing.T) {
	m := paperex.Matrix()
	plan, err := PreprocessNR(m, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Round1Applied || plan.Round2Applied || plan.NeedsReordering() {
		t.Fatalf("NR plan applied reordering")
	}
	for i, p := range plan.RowPerm {
		if p != int32(i) {
			t.Fatalf("NR RowPerm not identity")
		}
	}
	if plan.DeltaDenseRatio() != 0 {
		t.Fatalf("NR changed dense ratio")
	}
}

// runsMatrix builds a matrix of consecutive runs of identical rows, each
// run with its own random column set — the Fig 7a "already well
// clustered" regime.
func runsMatrix(t *testing.T, rows, cols, runLen, rowNNZ int, seed int64) *sparse.CSR {
	t.Helper()
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: rows, Cols: cols, Clusters: rows / runLen,
		PrototypeNNZ: rowNNZ, Keep: 1.0, Noise: 0, Seed: seed, Scrambled: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestHeuristicSkipsWellClustered(t *testing.T) {
	// Runs of 8 identical rows: every touched column has 8 nonzeros in
	// its panel (>= dense threshold 4), so the dense ratio is ~1 and
	// round 1 is skipped; the leftover is (near) empty, so round 2 is
	// skipped by the MinRestRatio guard.
	m := runsMatrix(t, 512, 512, 8, 12, 7)
	cfg := DefaultConfig()
	plan, err := Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Round1Applied {
		t.Fatalf("round 1 applied to well-clustered matrix (dense ratio %.3f)", plan.DenseRatioBefore)
	}
	if plan.Round2Applied {
		t.Fatalf("round 2 applied with empty rest (rest nnz %d)", plan.Tiled.Rest.NNZ())
	}
	if plan.NeedsReordering() {
		t.Fatalf("well-clustered matrix selected for reordering")
	}
}

func TestHeuristicSkipsRound2SimilarRest(t *testing.T) {
	// Runs of 3 identical rows stay below the dense threshold of 4, so
	// the whole matrix lands in the leftover part; round 1 fires (dense
	// ratio 0) and groups the runs, after which the rest's consecutive
	// similarity is ~2/3 > 0.1 and round 2 is skipped.
	// Columns are spread over a wide space so distinct runs rarely share
	// a column within a panel (which would create dense tiles).
	m := runsMatrix(t, 513, 8192, 3, 12, 9)
	cfg := DefaultConfig()
	plan, err := Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Round1Applied {
		t.Fatalf("round 1 skipped (dense ratio %.3f)", plan.DenseRatioBefore)
	}
	if plan.Round2Applied {
		t.Fatalf("round 2 applied to similar rest (avg sim after round 1: %.3f)",
			sparse.AvgConsecutiveSimilaritySampled(plan.Tiled.Rest, 0))
	}
}

func TestHeuristicAppliesToScrambled(t *testing.T) {
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 1024, Cols: 1024, Clusters: 128, PrototypeNNZ: 16,
		Keep: 0.8, Noise: 1, Seed: 5, Scrambled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Preprocess(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !plan.NeedsReordering() {
		t.Fatalf("scrambled clusters not selected for reordering (dense %.3f, sim %.3f)",
			plan.DenseRatioBefore, plan.AvgSimBefore)
	}
	if plan.Preprocess <= 0 {
		t.Fatalf("preprocessing time not recorded")
	}
}

func TestDisableOverridesForce(t *testing.T) {
	m := paperex.Matrix()
	cfg := smallConfig()
	cfg.Force = true
	cfg.Disable = true
	plan, err := Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NeedsReordering() {
		t.Fatalf("Disable did not win over Force")
	}
}

func TestRound2ReordersRestOnly(t *testing.T) {
	// A matrix whose tiles capture nothing (diagonal-ish, scattered):
	// round 2's RestOrder must be a permutation while RowPerm stays
	// identity when round 1 is skipped by Force=false + high ratio...
	// Use force to guarantee both rounds run, then check RestOrder is
	// applied to the Rest matrix's row space.
	m, err := synth.Uniform(256, 256, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Force = true
	plan, err := Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.IsPermutation(plan.RestOrder, plan.Tiled.Rest.Rows) {
		t.Fatalf("RestOrder invalid")
	}
	// AvgSimAfter is measured on the rest matrix in RestOrder.
	rp, err := sparse.PermuteRows(plan.Tiled.Rest, plan.RestOrder)
	if err != nil {
		t.Fatal(err)
	}
	got := sparse.AvgConsecutiveSimilaritySampled(rp, cfg.SimSamplePairs)
	if got != plan.AvgSimAfter {
		t.Fatalf("AvgSimAfter %v does not match recomputation %v", plan.AvgSimAfter, got)
	}
}

func TestInvRowPermInvertsRowPerm(t *testing.T) {
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 512, Cols: 512, Clusters: 64, PrototypeNNZ: 12,
		Keep: 0.9, Noise: 1, Seed: 11, Scrambled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Force = true
	plan, err := Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range plan.RowPerm {
		if plan.InvRowPerm[p] != int32(i) {
			t.Fatalf("InvRowPerm broken at %d", i)
		}
	}
	// Reordered really is the permuted input.
	pm, err := sparse.PermuteRows(m, plan.RowPerm)
	if err != nil {
		t.Fatal(err)
	}
	if !pm.Equal(plan.Reordered) {
		t.Fatalf("Reordered != PermuteRows(m, RowPerm)")
	}
}
