package reorder

import (
	"context"
	"fmt"
	"time"

	"repro/internal/aspt"
	"repro/internal/lsh"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sparse"
)

// Config drives the two-round workflow of Fig 5.
type Config struct {
	// LSH parameterises candidate-pair generation (paper: siglen=128,
	// bsize=2).
	LSH lsh.Params
	// ThresholdSize is the cluster emission size (paper: 256).
	ThresholdSize int
	// ASpT parameterises the tiling applied after round 1.
	ASpT aspt.Params
	// DenseRatioSkip: if the dense-tile nonzero ratio of the *original*
	// matrix is above this, round 1 is skipped (paper: 0.10 — "for all
	// matrices that show slowdown after row-reordering, the origin
	// ratios of nonzeros in the dense tiles are greater than 10%").
	DenseRatioSkip float64
	// AvgSimSkip: if the average consecutive-row Jaccard similarity of
	// the leftover sparse part is above this, round 2 is skipped
	// (paper: 0.1).
	AvgSimSkip float64
	// SimSamplePairs caps the number of consecutive pairs sampled when
	// evaluating AvgSimSkip (0 = exact).
	SimSamplePairs int
	// MinRestRatio skips round 2 when the leftover sparse part holds
	// less than this fraction of the nonzeros — with (almost) everything
	// in dense tiles there is nothing for the second round to improve.
	MinRestRatio float64
	// PanelAlign bin-packs emitted clusters into ASpT panel-sized bins
	// so cluster boundaries coincide with panel boundaries where
	// possible (extension; see PackGroups and
	// BenchmarkAblationPanelAlign). Default false = paper-faithful
	// concatenation.
	PanelAlign bool
	// EmitMergeOrder emits rows of each cluster in join order instead of
	// the paper's ascending-index order — an extension that preserves
	// intra-cluster adjacency when weak candidate pairs chain latent
	// clusters into threshold-sized blobs (see ClusterOrdered and
	// BenchmarkAblationEmitOrder). Default false = paper-faithful.
	EmitMergeOrder bool
	// Force disables both skip heuristics, always applying both rounds
	// (used by the Fig 9 "what happens if you always reorder" sweep).
	Force bool
	// Disable turns the pipeline into plain ASpT-NR: no reordering at
	// all, only tiling.
	Disable bool
	// Kernel overrides the per-matrix kernel autotuner: KernelAuto (the
	// zero value) lets ChooseKernel pick from the matrix's structural
	// features; any other value is used as-is. Participates in the
	// plan-cache fingerprint like every Config field.
	Kernel Kernel
	// Workers bounds the parallelism of the whole preprocessing engine
	// (tiling, row permutation, similarity scans; LSH inherits it when
	// LSH.Workers is 0, and tiling when ASpT.Workers is 0). 0 means
	// runtime.GOMAXPROCS(0). The produced Plan is bit-identical for
	// every value — Workers only changes how fast it is computed.
	Workers int
	// PreprocessBudget bounds the wall-clock time the *background*
	// reordered-plan build of an online pipeline may spend before the
	// pipeline permanently degrades to the no-reorder plan (see
	// repro.NewOnlinePipelineCtx). 0 or negative means no budget. It
	// does not affect Preprocess itself and — like Workers — never
	// changes what a successful build produces, so plan-cache
	// fingerprints ignore it.
	PreprocessBudget time.Duration
	// Epoch is the structural epoch of a live (mutable) matrix: each
	// structural mutation of a served matrix bumps it before the fused
	// matrix is re-preprocessed. It is semantic — unlike Workers or
	// PreprocessBudget it is NOT normalised out of plan-cache
	// fingerprints, and it is stored in the v1 plan-file flag bits
	// (see planFlag* in serialize.go) so a stale snapshot can never be
	// re-skinned onto mutated structure. 0 for immutable pipelines.
	Epoch uint32
}

// withWorkers propagates the pipeline-wide Workers bound into the
// nested stage configurations that did not set their own.
func (cfg Config) withWorkers() Config {
	if cfg.LSH.Workers == 0 {
		cfg.LSH.Workers = cfg.Workers
	}
	if cfg.ASpT.Workers == 0 {
		cfg.ASpT.Workers = cfg.Workers
	}
	return cfg
}

// DefaultConfig returns the paper's experimental configuration.
func DefaultConfig() Config {
	return Config{
		LSH:            lsh.DefaultParams(),
		ThresholdSize:  DefaultThresholdSize,
		ASpT:           aspt.DefaultParams(),
		DenseRatioSkip: 0.10,
		AvgSimSkip:     0.1,
		SimSamplePairs: 1 << 16,
		MinRestRatio:   0.05,
	}
}

// Plan is the output of preprocessing: everything a kernel (native or
// simulated) needs to execute SpMM/SDDMM on the transformed matrix, plus
// the metrics the paper's figures are built from.
type Plan struct {
	Cfg Config

	// RowPerm maps new row position -> original row (identity when round
	// 1 was skipped). The tiled matrix's row i is original row
	// RowPerm[i].
	RowPerm []int32
	// InvRowPerm maps original row -> new position.
	InvRowPerm []int32
	// Reordered is the row-reordered matrix (== the input when round 1
	// was skipped; always a distinct value, never aliasing the input).
	Reordered *sparse.CSR
	// Tiled is the ASpT representation of Reordered.
	Tiled *aspt.Matrix
	// RestOrder is the order in which leftover-part rows are processed
	// by the row-wise kernel (a permutation of [0, Rows) in *reordered*
	// row space; identity when round 2 was skipped).
	RestOrder []int32

	Round1Applied bool
	Round2Applied bool

	// Kernel is the SpMM execution strategy selected for this plan —
	// Cfg.Kernel when overridden, otherwise the autotuner's choice from
	// the reordered matrix's structure. Never KernelAuto in a Plan
	// returned by Preprocess or SavedPlan.Apply.
	Kernel Kernel

	// Features are the structural signals the kernel decision was made
	// on (captured even when Cfg.Kernel overrides the autotuner), kept
	// for decision observability: /debug/explain replays
	// ChooseKernel(Features) against Kernel, and the autotuner feedback
	// loop compares realized throughput to the structural prediction.
	Features KernelFeatures

	// Fig 9 metrics. "Before" values describe plain ASpT-NR on the
	// original matrix; "After" the final plan.
	DenseRatioBefore float64
	DenseRatioAfter  float64
	AvgSimBefore     float64
	AvgSimAfter      float64

	// Preprocess is the wall-clock preprocessing time (LSH + clustering
	// + tiling, both rounds), the quantity of Fig 12 and Tables 3-4.
	Preprocess time.Duration

	// Stages breaks Preprocess down by pipeline stage (accumulated over
	// both rounds), the data behind the amortization analysis: it shows
	// where preprocessing time goes and which stages a plan-cache hit
	// avoids entirely.
	Stages StageTimings

	Round1Stats ClusterStats
	Round2Stats ClusterStats
}

// StageTimings is the per-stage wall-clock breakdown of Preprocess.
// Signatures/Banding/Scoring are the paper's three LSH cost-model terms;
// Clustering is Alg 3 (plus panel packing when enabled); Tiling covers
// every aspt.Build; Permute covers row-permutation application; and
// Heuristics the §4 skip-decision similarity scans.
type StageTimings struct {
	Signatures time.Duration
	Banding    time.Duration
	Scoring    time.Duration
	Clustering time.Duration
	Tiling     time.Duration
	Permute    time.Duration
	Heuristics time.Duration
}

// Total sums all stage durations (Preprocess minus untracked glue).
func (s StageTimings) Total() time.Duration {
	return s.Signatures + s.Banding + s.Scoring + s.Clustering + s.Tiling + s.Permute + s.Heuristics
}

// String renders the breakdown in stage order.
func (s StageTimings) String() string {
	return fmt.Sprintf("sig=%v band=%v score=%v cluster=%v tile=%v permute=%v heur=%v",
		s.Signatures.Round(time.Microsecond), s.Banding.Round(time.Microsecond),
		s.Scoring.Round(time.Microsecond), s.Clustering.Round(time.Microsecond),
		s.Tiling.Round(time.Microsecond), s.Permute.Round(time.Microsecond),
		s.Heuristics.Round(time.Microsecond))
}

func (s *StageTimings) addLSH(t lsh.StageTimings) {
	s.Signatures += t.Signatures
	s.Banding += t.Banding
	s.Scoring += t.Scoring
}

// DeltaDenseRatio is Fig 9's x-axis: the change in dense-tile nonzero
// ratio caused by reordering.
func (p *Plan) DeltaDenseRatio() float64 { return p.DenseRatioAfter - p.DenseRatioBefore }

// DeltaAvgSim is Fig 9's y-axis: the change in average consecutive-row
// similarity of the sparse leftover part.
func (p *Plan) DeltaAvgSim() float64 { return p.AvgSimAfter - p.AvgSimBefore }

// NeedsReordering reports whether the §4 heuristics would apply at least
// one round to this matrix — the criterion that selects the paper's 416
// evaluation matrices.
func (p *Plan) NeedsReordering() bool { return p.Round1Applied || p.Round2Applied }

// Describe renders a human-readable plan summary (used by the CLIs).
func (p *Plan) Describe() string {
	return fmt.Sprintf(
		"round1=%v round2=%v kernel=%v preprocess=%v\n"+
			"  dense-tile ratio %.3f -> %.3f (Δ%+.3f)\n"+
			"  rest avg similarity %.3f -> %.3f (Δ%+.3f)\n"+
			"  round1: %d candidate pairs, %d merges; round2: %d pairs, %d merges",
		p.Round1Applied, p.Round2Applied, p.Kernel, p.Preprocess.Round(time.Millisecond),
		p.DenseRatioBefore, p.DenseRatioAfter, p.DeltaDenseRatio(),
		p.AvgSimBefore, p.AvgSimAfter, p.DeltaAvgSim(),
		p.Round1Stats.CandidatePairs, p.Round1Stats.Merges,
		p.Round2Stats.CandidatePairs, p.Round2Stats.Merges)
}

// reorderWithConfig runs one reordering round under the full Config —
// LSH, clustering with the configured emission order, and (optionally)
// panel-aligned packing of the emitted clusters — accumulating the
// stage breakdown into st.
func reorderWithConfig(ctx context.Context, m *sparse.CSR, cfg Config, st *StageTimings) ([]int32, ClusterStats, error) {
	pairs, lt, err := lsh.CandidatePairsTimedCtx(ctx, m, cfg.LSH)
	if err != nil {
		return nil, ClusterStats{}, err
	}
	st.addLSH(lt)
	t0 := time.Now()
	defer func() { st.Clustering += time.Since(t0) }()
	if !cfg.PanelAlign {
		return ClusterOrderedCtx(ctx, m, pairs, cfg.ThresholdSize, cfg.EmitMergeOrder)
	}
	groups, stats, err := ClusterGroupsCtx(ctx, m, pairs, cfg.ThresholdSize, cfg.EmitMergeOrder)
	if err != nil {
		return nil, stats, err
	}
	order := PackGroups(groups, cfg.ASpT.PanelSize)
	if !sparse.IsPermutation(order, m.Rows) {
		return nil, stats, fmt.Errorf("reorder: panel packing produced a non-permutation (internal error)")
	}
	return order, stats, nil
}

// buildTiled tiles a matrix with the plan's ASpT parameters.
func buildTiled(m *sparse.CSR, cfg Config) (*aspt.Matrix, error) {
	return aspt.Build(m, cfg.ASpT)
}

// Preprocess runs the full Fig 5 workflow on m and returns the Plan.
// The input matrix is never mutated. Every stage runs on up to
// cfg.Workers goroutines; the Plan is bit-identical for every worker
// count.
func Preprocess(m *sparse.CSR, cfg Config) (*Plan, error) {
	return PreprocessCtx(context.Background(), m, cfg)
}

// PreprocessCtx is Preprocess with cooperative cancellation and panic
// isolation: every parallel stage (LSH, clustering, tiling, permutation,
// similarity scans) observes ctx between work units and converts worker
// panics into a *par.PanicError returned from this call. A cancelled
// build returns ctx's error with no partial Plan.
func PreprocessCtx(ctx context.Context, m *sparse.CSR, cfg Config) (*Plan, error) {
	if err := sparse.Validate(m, sparse.FiniteOnly); err != nil {
		return nil, fmt.Errorf("reorder: input: %w", err)
	}
	if err := par.CtxErr(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	p := &Plan{Cfg: cfg}
	cfg = cfg.withWorkers()
	st := &p.Stages

	// Baseline tiling of the original matrix: needed both for the
	// round-1 heuristic and for the Before metrics.
	t0 := time.Now()
	baseTiled, err := aspt.BuildCtx(ctx, m, cfg.ASpT)
	if err != nil {
		return nil, err
	}
	st.Tiling += time.Since(t0)
	p.DenseRatioBefore = baseTiled.DenseRatio()
	t0 = time.Now()
	p.AvgSimBefore, err = sparse.AvgConsecutiveSimilarityCtx(ctx, baseTiled.Rest, cfg.SimSamplePairs, cfg.Workers)
	if err != nil {
		return nil, err
	}
	st.Heuristics += time.Since(t0)

	// Round 1: reorder the whole matrix to enlarge the dense tiles.
	doRound1 := !cfg.Disable && (cfg.Force || p.DenseRatioBefore <= cfg.DenseRatioSkip)
	if doRound1 {
		perm, stats, err := reorderWithConfig(ctx, m, cfg, st)
		if err != nil {
			return nil, err
		}
		p.RowPerm = perm
		p.Round1Stats = stats
		p.Round1Applied = true
		t0 = time.Now()
		p.Reordered, err = sparse.PermuteRowsCtx(ctx, m, perm, cfg.Workers)
		if err != nil {
			return nil, err
		}
		st.Permute += time.Since(t0)
		t0 = time.Now()
		p.Tiled, err = aspt.BuildCtx(ctx, p.Reordered, cfg.ASpT)
		if err != nil {
			return nil, err
		}
		st.Tiling += time.Since(t0)
	} else {
		p.RowPerm = sparse.IdentityPermutation(m.Rows)
		p.Reordered = m.Clone()
		p.Tiled = baseTiled
		// Retarget the tiling at the clone so the Plan never aliases the
		// caller's matrix.
		p.Tiled.Src = p.Reordered
		p.Tiled.Rest.Rows = p.Reordered.Rows
	}
	p.InvRowPerm = sparse.InversePermutation(p.RowPerm)
	p.DenseRatioAfter = p.Tiled.DenseRatio()

	// Round 2: reorder the processing order of the leftover sparse part.
	t0 = time.Now()
	restSim, err := sparse.AvgConsecutiveSimilarityCtx(ctx, p.Tiled.Rest, cfg.SimSamplePairs, cfg.Workers)
	if err != nil {
		return nil, err
	}
	st.Heuristics += time.Since(t0)
	restRatio := 1.0
	if m.NNZ() > 0 {
		restRatio = float64(p.Tiled.Rest.NNZ()) / float64(m.NNZ())
	}
	doRound2 := !cfg.Disable &&
		(cfg.Force || (restSim <= cfg.AvgSimSkip && restRatio >= cfg.MinRestRatio))
	if doRound2 {
		perm, stats, err := reorderWithConfig(ctx, p.Tiled.Rest, cfg, st)
		if err != nil {
			return nil, err
		}
		p.RestOrder = perm
		p.Round2Stats = stats
		p.Round2Applied = true
		t0 = time.Now()
		restPerm, err := sparse.PermuteRowsCtx(ctx, p.Tiled.Rest, perm, cfg.Workers)
		if err != nil {
			return nil, err
		}
		st.Permute += time.Since(t0)
		t0 = time.Now()
		p.AvgSimAfter, err = sparse.AvgConsecutiveSimilarityCtx(ctx, restPerm, cfg.SimSamplePairs, cfg.Workers)
		if err != nil {
			return nil, err
		}
		st.Heuristics += time.Since(t0)
	} else {
		p.RestOrder = sparse.IdentityPermutation(m.Rows)
		p.AvgSimAfter = restSim
	}

	p.Kernel = resolveKernel(p)
	p.Preprocess = time.Since(start)
	recordBuild(p, start)
	traceStages(obs.TraceFrom(ctx), p.Stages, start)
	return p, nil
}

// PreprocessNR returns the no-reordering plan (plain ASpT-NR), the
// baseline the paper compares against.
func PreprocessNR(m *sparse.CSR, cfg Config) (*Plan, error) {
	cfg.Disable = true
	return Preprocess(m, cfg)
}

// PreprocessNRCtx is PreprocessNR with cooperative cancellation and
// panic isolation (see PreprocessCtx).
func PreprocessNRCtx(ctx context.Context, m *sparse.CSR, cfg Config) (*Plan, error) {
	cfg.Disable = true
	return PreprocessCtx(ctx, m, cfg)
}
