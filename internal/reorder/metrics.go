package reorder

import (
	"time"

	"repro/internal/obs"
)

// Build metrics live in the process-wide registry: preprocessing is a
// package-level capability (several pipelines and caches share it), so
// per-instance registries would fragment the numbers. Registered at
// init so the families appear in /metrics from the first scrape.
var (
	buildsFull = obs.Default().Counter("spmmrr_preprocess_builds_total",
		"Completed preprocessing builds by workflow variant.", obs.L("variant", "full"))
	buildsNR = obs.Default().Counter("spmmrr_preprocess_builds_total",
		"Completed preprocessing builds by workflow variant.", obs.L("variant", "nr"))
	buildSecondsFull = obs.Default().Histogram("spmmrr_preprocess_seconds",
		"End-to-end preprocessing build latency by workflow variant.",
		obs.LatencyBuckets(), obs.L("variant", "full"))
	buildSecondsNR = obs.Default().Histogram("spmmrr_preprocess_seconds",
		"End-to-end preprocessing build latency by workflow variant.",
		obs.LatencyBuckets(), obs.L("variant", "nr"))
	denseTileRatio = obs.Default().GaugeFloat("spmmrr_preprocess_dense_tile_ratio",
		"Dense-tile nonzero fraction of the most recent build (after reordering).")
	avgConsecSim = obs.Default().GaugeFloat("spmmrr_preprocess_avg_consecutive_similarity",
		"Average consecutive-row similarity of the most recent build's leftover part.")
	stageSeconds = func() map[string]*obs.Histogram {
		m := make(map[string]*obs.Histogram, len(stageNames))
		for _, name := range stageNames {
			m[name] = obs.Default().Histogram("spmmrr_preprocess_stage_seconds",
				"Per-stage preprocessing time (the paper's cost-model stages).",
				obs.LatencyBuckets(), obs.L("stage", name))
		}
		return m
	}()
)

var stageNames = []string{
	"signatures", "banding", "scoring", "clustering", "tiling", "permute", "heuristics",
}

// stageDurations returns the breakdown in stageNames order.
func (s StageTimings) stageDurations() [7]time.Duration {
	return [7]time.Duration{
		s.Signatures, s.Banding, s.Scoring, s.Clustering, s.Tiling, s.Permute, s.Heuristics,
	}
}

// recordBuild publishes a finished build to the process registry and,
// when the build ran under a trace, lifts the stage breakdown into it
// as spans laid out sequentially from the build's start (the stages
// execute serially, interleaved with glue; the layout keeps every span
// inside the build's wall-clock window).
func recordBuild(p *Plan, start time.Time) {
	if p.Cfg.Disable {
		buildsNR.Inc()
		buildSecondsNR.ObserveSince(start)
	} else {
		buildsFull.Inc()
		buildSecondsFull.ObserveSince(start)
	}
	denseTileRatio.Set(p.DenseRatioAfter)
	avgConsecSim.Set(p.AvgSimAfter)
	durs := p.Stages.stageDurations()
	for i, name := range stageNames {
		if durs[i] > 0 {
			stageSeconds[name].Observe(durs[i].Seconds())
		}
	}
}

// traceStages appends one span per non-zero stage to tr, consecutive
// from start. Split out from recordBuild so callers without a trace
// pay nothing.
func traceStages(tr *obs.Trace, s StageTimings, start time.Time) {
	if tr == nil {
		return
	}
	durs := s.stageDurations()
	at := start
	for i, name := range stageNames {
		if durs[i] <= 0 {
			continue
		}
		tr.AddSpan("stage_"+name, at, durs[i])
		at = at.Add(durs[i])
	}
}
