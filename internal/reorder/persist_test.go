package reorder

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/synth"
)

// permPlan builds a minimal serialisable plan carrying the given row
// permutation (RestOrder is its reverse, so the two blocks differ).
func permPlan(perm []int32) *Plan {
	rest := make([]int32, len(perm))
	for i, v := range perm {
		rest[len(perm)-1-i] = v
	}
	return &Plan{RowPerm: perm, RestOrder: rest, Round1Applied: true}
}

func rotatedPerm(n, shift int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32((i + shift) % n)
	}
	return p
}

func TestWritePlanV1RoundTrip(t *testing.T) {
	p := permPlan(rotatedPerm(7, 3))
	p.Round2Applied = true
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if got := binary.LittleEndian.Uint32(raw[0:]); got != planMagicV1 {
		t.Fatalf("magic = %#x, want v1 %#x", got, planMagicV1)
	}
	if got := binary.LittleEndian.Uint32(raw[4:]); got != planVersion {
		t.Fatalf("version = %d, want %d", got, planVersion)
	}
	if want := 16 + 8*7 + 8; len(raw) != want {
		t.Fatalf("file is %d bytes, want %d", len(raw), want)
	}
	sp, err := ReadPlan(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Rows != 7 || !sp.Round1Applied || !sp.Round2Applied {
		t.Fatalf("metadata mismatch: %+v", sp)
	}
	for i := range p.RowPerm {
		if sp.RowPerm[i] != p.RowPerm[i] || sp.RestOrder[i] != p.RestOrder[i] {
			t.Fatalf("permutation mismatch at %d", i)
		}
	}
}

// TestReadPlanDetectsEveryByteFlip flips each byte of a valid v1 file
// in turn: every mutation must be rejected. The CRC footer is what
// makes this exhaustive — a flipped permutation entry can still encode
// a valid permutation, which the structural checks alone would accept.
func TestReadPlanDetectsEveryByteFlip(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePlan(&buf, permPlan(rotatedPerm(5, 2))); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		if _, err := ReadPlan(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte %d flipped: accepted", i)
		} else if !errors.Is(err, ErrPlanFormat) {
			t.Fatalf("byte %d flipped: error not ErrPlanFormat: %v", i, err)
		}
	}
}

// TestReadPlanDetectsTruncation cuts a valid v1 file at every length
// shorter than the original: all must fail with ErrPlanFormat.
func TestReadPlanDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePlan(&buf, permPlan(rotatedPerm(6, 1))); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for n := 0; n < len(raw); n++ {
		if _, err := ReadPlan(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncated to %d bytes: accepted", n)
		} else if !errors.Is(err, ErrPlanFormat) {
			t.Fatalf("truncated to %d bytes: error not ErrPlanFormat: %v", n, err)
		}
	}
}

func TestReadPlanLegacyV0StillReadable(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0x31, 0x50, 0x52, 0x52}) // "RRP1" magic LE
	buf.Write([]byte{2, 0, 0, 0})             // rows
	buf.Write([]byte{3, 0, 0, 0})             // flags
	buf.Write([]byte{1, 0, 0, 0, 0, 0, 0, 0}) // RowPerm [1,0]
	buf.Write([]byte{0, 0, 0, 0, 1, 0, 0, 0}) // RestOrder [0,1]
	sp, err := ReadPlan(&buf)
	if err != nil {
		t.Fatalf("v0 plan rejected: %v", err)
	}
	if sp.Rows != 2 || sp.RowPerm[0] != 1 || sp.RestOrder[1] != 1 {
		t.Fatalf("v0 plan misparsed: %+v", sp)
	}
}

func TestReadPlanFileRejectsTrailingGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.plan")
	if err := WritePlanFile(path, permPlan(rotatedPerm(4, 1))); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPlanFile(path); err != nil {
		t.Fatalf("clean file rejected: %v", err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad})
	f.Close()
	if _, err := ReadPlanFile(path); !errors.Is(err, ErrPlanFormat) {
		t.Fatalf("trailing garbage: err = %v, want ErrPlanFormat", err)
	}
}

func TestWritePlanFileLeavesNoTempOnSuccess(t *testing.T) {
	dir := t.TempDir()
	if err := WritePlanFile(filepath.Join(dir, "p.plan"), permPlan(rotatedPerm(4, 2))); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "p.plan" {
		t.Fatalf("directory not clean after write: %v", entries)
	}
}

// TestPlanFileRoundTripUnderConcurrentWriters is the round-trip
// property test: several writers race WritePlanFile on the *same* path
// while readers continuously ReadPlanFile it. Atomic rename means every
// successful read must be the complete file of exactly one writer —
// WritePlan→ReadPlan→Apply is identity for that writer's plan — and a
// torn or interleaved file must never be observed.
func TestPlanFileRoundTripUnderConcurrentWriters(t *testing.T) {
	const rows = 64
	m, err := synth.Uniform(rows, rows, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	plans := make([]*Plan, 4)
	for i := range plans {
		plans[i] = permPlan(rotatedPerm(rows, i*13+1))
	}
	path := filepath.Join(t.TempDir(), "shared.plan")
	if err := WritePlanFile(path, plans[0]); err != nil {
		t.Fatal(err)
	}

	var (
		stop     atomic.Bool
		writeErr atomic.Pointer[error]
		wg       sync.WaitGroup
	)
	for i := range plans {
		wg.Add(1)
		go func(p *Plan) {
			defer wg.Done()
			for !stop.Load() {
				if err := WritePlanFile(path, p); err != nil {
					writeErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}(plans[i])
	}

	matchesOneWriter := func(sp *SavedPlan) int {
		for i, p := range plans {
			ok := true
			for j := range p.RowPerm {
				if sp.RowPerm[j] != p.RowPerm[j] || sp.RestOrder[j] != p.RestOrder[j] {
					ok = false
					break
				}
			}
			if ok {
				return i
			}
		}
		return -1
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	reads, applied := 0, 0
	for time.Now().Before(deadline) {
		sp, err := ReadPlanFile(path)
		if err != nil {
			t.Fatalf("read %d: torn or corrupt plan observed: %v", reads, err)
		}
		i := matchesOneWriter(sp)
		if i < 0 {
			t.Fatalf("read %d: plan matches no writer (interleaved write)", reads)
		}
		reads++
		// Spot-check the full identity through Apply on a sample of
		// reads (Apply re-tiles, which is the expensive part).
		if reads%50 == 1 {
			plan, err := sp.Apply(m, cfg)
			if err != nil {
				t.Fatalf("read %d: Apply failed: %v", reads, err)
			}
			for j := range plans[i].RowPerm {
				if plan.RowPerm[j] != plans[i].RowPerm[j] {
					t.Fatalf("read %d: Apply round-trip lost the permutation", reads)
				}
			}
			applied++
		}
	}
	stop.Store(true)
	wg.Wait()
	if e := writeErr.Load(); e != nil {
		t.Fatalf("concurrent writer failed: %v", *e)
	}
	if reads == 0 || applied == 0 {
		t.Fatalf("property test made no observations (reads=%d applied=%d)", reads, applied)
	}
}
