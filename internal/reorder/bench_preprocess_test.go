package reorder

import (
	"fmt"
	"testing"

	"repro/internal/sparse"
	"repro/internal/synth"
)

// benchRMAT returns the scaling-study input: a scale-free R-MAT graph
// around one million nonzeros (the regime where the paper reports
// preprocessing cost, Fig 12). Short mode shrinks it so CI smoke runs
// stay in milliseconds.
func benchRMAT(b *testing.B) *sparse.CSR {
	b.Helper()
	scale := 17 // 2^17 rows × edgeFactor 8 ≈ 1M nnz
	if testing.Short() {
		scale = 11
	}
	m, err := synth.RMAT(scale, 8, 0.57, 0.19, 0.19, 42)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// reportStages attaches the per-stage wall-clock breakdown of the last
// plan to the benchmark, so `make bench-preprocess` captures where the
// time goes (and which stages a plan-cache hit eliminates).
func reportStages(b *testing.B, p *Plan) {
	b.Helper()
	b.ReportMetric(float64(p.Stages.Signatures.Nanoseconds()), "sig-ns/op")
	b.ReportMetric(float64(p.Stages.Banding.Nanoseconds()), "band-ns/op")
	b.ReportMetric(float64(p.Stages.Scoring.Nanoseconds()), "score-ns/op")
	b.ReportMetric(float64(p.Stages.Clustering.Nanoseconds()), "cluster-ns/op")
	b.ReportMetric(float64(p.Stages.Tiling.Nanoseconds()), "tile-ns/op")
	b.ReportMetric(float64(p.Stages.Permute.Nanoseconds()), "permute-ns/op")
	b.ReportMetric(float64(p.Stages.Heuristics.Nanoseconds()), "heur-ns/op")
}

// BenchmarkPreprocessWorkers is the parallel-preprocessing scaling
// study: the full Fig 5 workflow on a ~1M-nnz R-MAT graph at 1, 2, 4,
// and 8 workers. On a multi-core machine the ns/op ratio between w=1
// and w=8 is the engine's speedup; per-stage metrics expose which
// stages scale.
func BenchmarkPreprocessWorkers(b *testing.B) {
	m := benchRMAT(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Workers = w
			var last *Plan
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := Preprocess(m, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = p
			}
			b.StopTimer()
			reportStages(b, last)
		})
	}
}

// BenchmarkTilingWorkers isolates the parallel two-pass ASpT build.
func BenchmarkTilingWorkers(b *testing.B) {
	m := benchRMAT(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Workers = w
			cfg.Disable = true // tiling only (ASpT-NR)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Preprocess(m, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
