package reorder

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func scrambledMatrix(t testing.TB) *sparse.CSR {
	t.Helper()
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 1024, Cols: 1024, Clusters: 128, PrototypeNNZ: 16,
		Keep: 0.8, Noise: 1, Seed: 5, Scrambled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A fault injected into any parallel preprocessing stage must surface
// from PreprocessCtx as an error, never a crash. The scrambled-cluster
// matrix exercises every stage: LSH, clustering, permutation, tiling,
// and the similarity scans.
func TestPreprocessCtxFaultAtEveryStage(t *testing.T) {
	m := scrambledMatrix(t)
	cfg := DefaultConfig()
	cfg.Workers = 4
	for _, site := range []string{
		"lsh.signatures", "lsh.banding", "lsh.pairmerge", "lsh.scoring",
		"reorder.cluster", "aspt.build", "sparse.permute",
	} {
		t.Run(site, func(t *testing.T) {
			defer faultinject.ErrorAt(site)()
			if _, err := PreprocessCtx(context.Background(), m, cfg); !errors.Is(err, faultinject.Err) {
				t.Fatalf("PreprocessCtx with fault at %s = %v, want faultinject.Err", site, err)
			}
		})
	}
	// And each stage recovers: a clean run after all faults succeeds and
	// still decides to reorder.
	plan, err := PreprocessCtx(context.Background(), m, cfg)
	if err != nil {
		t.Fatalf("clean PreprocessCtx after faults: %v", err)
	}
	if !plan.NeedsReordering() {
		t.Fatalf("clean plan unexpectedly skipped reordering")
	}
}

func TestPreprocessCtxPanicIsolation(t *testing.T) {
	m := scrambledMatrix(t)
	cfg := DefaultConfig()
	cfg.Workers = 4
	for _, site := range []string{"reorder.cluster", "aspt.build", "sparse.permute"} {
		t.Run(site, func(t *testing.T) {
			defer faultinject.PanicAt(site)()
			_, err := PreprocessCtx(context.Background(), m, cfg)
			var pe *par.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("panic at %s surfaced as %v, want *par.PanicError", site, err)
			}
		})
	}
}

func TestPreprocessCtxCancellation(t *testing.T) {
	m := scrambledMatrix(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PreprocessCtx(ctx, m, DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled PreprocessCtx = %v, want context.Canceled", err)
	}
	// Mid-flight: cancel from inside the clustering stage.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer faultinject.Set("reorder.cluster", func() error { cancel2(); return nil })()
	if _, err := PreprocessCtx(ctx2, m, DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancelled PreprocessCtx = %v, want context.Canceled", err)
	}
}

func TestPreprocessRejectsNonFiniteValues(t *testing.T) {
	m := scrambledMatrix(t)
	bad := m.Clone()
	bad.Val[len(bad.Val)/2] = float32(math.NaN())
	if _, err := Preprocess(bad, DefaultConfig()); !errors.Is(err, sparse.ErrInvalid) {
		t.Fatalf("Preprocess accepted NaN value: %v", err)
	}
	if _, err := PreprocessNR(bad, DefaultConfig()); !errors.Is(err, sparse.ErrInvalid) {
		t.Fatalf("PreprocessNR accepted NaN value: %v", err)
	}
}
