package reorder

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/sparse"
)

// Plan serialization for the paper's offline scenario (§5.4: "reordering
// a graph for graph neural network inference ... incurs little overhead
// at compile-time"): the permutations and decision bits of a Plan are
// written to a compact binary file at preprocessing time and re-applied
// at deployment time without re-running LSH or clustering.
//
// Format v1 (little-endian), written by WritePlan:
//
//	magic   uint32 = 0x52525032 ("2PRR")
//	version uint32 = 1
//	rows    uint32
//	flags   uint32 (layout below — planFlag* is the single source of truth)
//	rowPerm   [rows]uint32
//	restOrder [rows]uint32
//	crc32   uint32 (IEEE, over everything above)
//	footer  uint32 = 0x444E4531 ("1END")
//
// The CRC-checksummed footer lets ReadPlan distinguish a complete,
// intact file from a truncated or bit-flipped one — a corrupted plan is
// rejected with ErrPlanFormat instead of being applied (a flipped bit
// inside a permutation can still yield a *valid* permutation, which the
// structural checks alone would accept). The legacy v0 format (magic
// "1PRR", no version field, no footer) is still readable.
const (
	planMagicV0     = 0x52525031
	planMagicV1     = 0x52525032
	planVersion     = 1
	planFooterMagic = 0x444E4531
)

// v1 flag-word layout — the single place the bit assignments live.
// Every producer (WritePlan) and consumer (ReadPlan, Apply) goes
// through these constants, and any bit not assigned a meaning here is
// corruption: ReadPlan rejects it with ErrPlanFormat instead of
// silently ignoring it, so a future format revision cannot be
// half-understood by an old reader.
//
//	bit  0       round 1 (row reordering) applied
//	bit  1       round 2 (rest ordering) applied
//	bits 2-7     reserved — must be zero
//	bits 8-11    kernel choice (Kernel; 0 = KernelAuto, re-resolve at Apply)
//	bits 12-31   structural epoch (low 20 bits of Config.Epoch)
//
// Legacy v0 files predate everything past bit 1; a v0 flags word with
// any higher bit set is likewise rejected.
const (
	planFlagRound1       = 1 << 0
	planFlagRound2       = 1 << 1
	planFlagReservedMask = 0xFC // bits 2-7
	planFlagKernelShift  = 8
	planFlagKernelMask   = 0xF // 4 bits, after shift
	planFlagEpochShift   = 12
	planFlagEpochMask    = 0xFFFFF // 20 bits, after shift
	planFlagV0Known      = planFlagRound1 | planFlagRound2
)

// ErrPlanFormat is wrapped by all plan-deserialization failures.
var ErrPlanFormat = errors.New("reorder: bad plan file")

// WritePlan serialises the plan's permutations to w in format v1. The
// whole file is encoded into one buffer and written with a single
// Write, so an io.Writer that either fully succeeds or fully fails
// (e.g. a bytes.Buffer, or a pipe with one reader) never observes a
// torn plan; for crash-durable on-disk atomicity use WritePlanFile.
func WritePlan(w io.Writer, p *Plan) error {
	rows := len(p.RowPerm)
	if len(p.RestOrder) != rows {
		return fmt.Errorf("reorder: plan permutations of unequal length")
	}
	var flags uint32
	if p.Round1Applied {
		flags |= planFlagRound1
	}
	if p.Round2Applied {
		flags |= planFlagRound2
	}
	if !p.Kernel.Valid() {
		return fmt.Errorf("reorder: plan has invalid kernel %v", p.Kernel)
	}
	// The tuned kernel choice rides along so a deployed plan replays the
	// kernel it was tuned for. Zero (KernelAuto, and every pre-kernel v1
	// file) means "re-resolve at Apply time".
	flags |= uint32(p.Kernel) << planFlagKernelShift
	// The structural epoch of a live matrix is stamped into the high
	// bits so a snapshot taken at epoch N is rejected at Apply time for
	// any other epoch — a crash between mutation and snapshot can leave
	// a stale file on disk, and "stale" must read as a miss, never as a
	// plan for the wrong structure.
	flags |= (p.Cfg.Epoch & planFlagEpochMask) << planFlagEpochShift
	buf := make([]byte, 16+8*rows+8)
	binary.LittleEndian.PutUint32(buf[0:], planMagicV1)
	binary.LittleEndian.PutUint32(buf[4:], planVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(rows))
	binary.LittleEndian.PutUint32(buf[12:], flags)
	off := 16
	for _, perm := range [][]int32{p.RowPerm, p.RestOrder} {
		for _, v := range perm {
			binary.LittleEndian.PutUint32(buf[off:], uint32(v))
			off += 4
		}
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	binary.LittleEndian.PutUint32(buf[off+4:], planFooterMagic)
	_, err := w.Write(buf)
	return err
}

// WritePlanFile writes the plan to path atomically and durably: the
// bytes go to a temporary file in path's directory, which is fsynced,
// renamed over path, and the directory entry is fsynced too. A reader
// (or a crash) therefore observes either the previous file or the
// complete new one — never a torn mixture — and a concurrent
// WritePlanFile to the same path is safe: one of the writers wins
// whole.
func WritePlanFile(path string, p *Plan) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".plan-tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = WritePlan(tmp, p); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself: fsync the containing directory. Best
	// effort on filesystems that refuse to sync directories.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// SavedPlan is the deserialised form of a plan file: just the decisions
// and permutations, without the matrices.
type SavedPlan struct {
	Rows          int
	Round1Applied bool
	Round2Applied bool
	// Kernel is the stored kernel choice; KernelAuto for legacy files
	// written before kernel tuning existed (Apply re-resolves it).
	Kernel Kernel
	// Epoch is the structural epoch (low 20 bits of Config.Epoch) the
	// snapshot was taken at; 0 for immutable pipelines and legacy files.
	// Apply rejects a mismatch against the target Config's epoch.
	Epoch   uint32
	RowPerm []int32
	// RestOrder is the leftover-part processing order.
	RestOrder []int32
}

// ReadPlan parses a plan file in format v1 (with CRC verification) or
// the legacy v0 format. Each permutation is read with bulk io.ReadFull
// calls over a bounded chunk buffer (no per-element binary.Read, and no
// huge up-front byte allocation for a corrupt header claiming billions
// of rows: the permutation slices grow only as bytes actually arrive).
// Truncation, a bad checksum, a missing footer, or a stored order that
// is not a permutation all fail with a wrapped ErrPlanFormat — a
// corrupted plan is never returned for Apply to act on.
func ReadPlan(r io.Reader) (*SavedPlan, error) {
	var head [16]byte
	if _, err := io.ReadFull(r, head[:4]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrPlanFormat, err)
	}
	var (
		rows   int
		flags  uint32
		crc    hash.Hash32
		legacy bool
	)
	switch magic := binary.LittleEndian.Uint32(head[0:]); magic {
	case planMagicV0:
		legacy = true
		if _, err := io.ReadFull(r, head[4:12]); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrPlanFormat, err)
		}
		rows = int(binary.LittleEndian.Uint32(head[4:]))
		flags = binary.LittleEndian.Uint32(head[8:])
	case planMagicV1:
		if _, err := io.ReadFull(r, head[4:16]); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrPlanFormat, err)
		}
		if v := binary.LittleEndian.Uint32(head[4:]); v != planVersion {
			return nil, fmt.Errorf("%w: unsupported version %d", ErrPlanFormat, v)
		}
		rows = int(binary.LittleEndian.Uint32(head[8:]))
		flags = binary.LittleEndian.Uint32(head[12:])
		crc = crc32.NewIEEE()
		crc.Write(head[:16])
	default:
		return nil, fmt.Errorf("%w: bad magic %#x", ErrPlanFormat, magic)
	}
	if rows < 0 || rows > 1<<30 {
		return nil, fmt.Errorf("%w: implausible row count %d", ErrPlanFormat, rows)
	}
	if legacy && flags&^uint32(planFlagV0Known) != 0 {
		return nil, fmt.Errorf("%w: unknown v0 flag bits %#x", ErrPlanFormat, flags)
	}
	if !legacy && flags&planFlagReservedMask != 0 {
		return nil, fmt.Errorf("%w: reserved flag bits set %#x", ErrPlanFormat, flags)
	}
	sp := &SavedPlan{
		Rows:          rows,
		Round1Applied: flags&planFlagRound1 != 0,
		Round2Applied: flags&planFlagRound2 != 0,
		Kernel:        Kernel(flags >> planFlagKernelShift & planFlagKernelMask),
		Epoch:         flags >> planFlagEpochShift & planFlagEpochMask,
	}
	if !sp.Kernel.Valid() {
		return nil, fmt.Errorf("%w: unknown kernel %d", ErrPlanFormat, uint8(sp.Kernel))
	}
	for _, dst := range []*[]int32{&sp.RowPerm, &sp.RestOrder} {
		perm, err := readPermutation(r, rows, crc)
		if err != nil {
			return nil, err
		}
		if !sparse.IsPermutation(perm, rows) {
			return nil, fmt.Errorf("%w: stored order is not a permutation", ErrPlanFormat)
		}
		*dst = perm
	}
	if crc != nil {
		var foot [8]byte
		if _, err := io.ReadFull(r, foot[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated footer: %v", ErrPlanFormat, err)
		}
		if got, want := binary.LittleEndian.Uint32(foot[0:]), crc.Sum32(); got != want {
			return nil, fmt.Errorf("%w: checksum mismatch (file %#x, computed %#x)", ErrPlanFormat, got, want)
		}
		if m := binary.LittleEndian.Uint32(foot[4:]); m != planFooterMagic {
			return nil, fmt.Errorf("%w: bad footer magic %#x", ErrPlanFormat, m)
		}
	}
	return sp, nil
}

// ReadPlanFile opens and parses path with ReadPlan, additionally
// rejecting trailing garbage after the footer (a concatenation or
// copy-paste accident is corruption for a file, even though a stream
// may legitimately carry further records).
func ReadPlanFile(path string) (*SavedPlan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sp, err := ReadPlan(f)
	if err != nil {
		return nil, err
	}
	var one [1]byte
	if n, _ := f.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("%w: trailing bytes after footer", ErrPlanFormat)
	}
	return sp, nil
}

// readPermutation reads n little-endian uint32s in bounded chunks,
// growing the result incrementally so a lying header cannot force a
// gigantic allocation before the stream runs dry. When crc is non-nil
// every consumed byte is folded into it.
func readPermutation(r io.Reader, n int, crc hash.Hash32) ([]int32, error) {
	const chunkWords = 16 << 10
	perm := make([]int32, 0, min(n, chunkWords))
	var buf [4 * chunkWords]byte
	for len(perm) < n {
		words := min(n-len(perm), chunkWords)
		if _, err := io.ReadFull(r, buf[:4*words]); err != nil {
			return nil, fmt.Errorf("%w: truncated permutation: %v", ErrPlanFormat, err)
		}
		if crc != nil {
			crc.Write(buf[:4*words])
		}
		for i := 0; i < words; i++ {
			perm = append(perm, int32(binary.LittleEndian.Uint32(buf[4*i:])))
		}
	}
	return perm, nil
}

// Apply rebuilds a full executable Plan for matrix m from the saved
// permutations: the matrix is permuted and re-tiled (cheap, O(nnz)), but
// LSH and clustering are skipped. It fails with a wrapped ErrPlanFormat
// if m's row count does not match the saved plan or if either stored
// order is not a valid permutation of [0, rows) — a hand-constructed or
// tampered SavedPlan is rejected here instead of panicking later in
// InversePermutation.
func (sp *SavedPlan) Apply(m *sparse.CSR, cfg Config) (*Plan, error) {
	if m.Rows != sp.Rows {
		return nil, fmt.Errorf("%w: saved plan is for %d rows, matrix has %d",
			ErrPlanFormat, sp.Rows, m.Rows)
	}
	// A snapshot is only valid for the structural epoch it was taken at:
	// a live matrix that has mutated since the snapshot must treat the
	// file as a miss, not as a plan (the row count and even both
	// permutations can coincidentally still validate after a structural
	// delta). Compared under the 20-bit mask the file format stores.
	if want := cfg.Epoch & planFlagEpochMask; sp.Epoch != want {
		return nil, fmt.Errorf("%w: saved plan is for structural epoch %d, want %d",
			ErrPlanFormat, sp.Epoch, want)
	}
	if !sparse.IsPermutation(sp.RowPerm, sp.Rows) {
		return nil, fmt.Errorf("%w: RowPerm is not a permutation of [0,%d)", ErrPlanFormat, sp.Rows)
	}
	if !sparse.IsPermutation(sp.RestOrder, sp.Rows) {
		return nil, fmt.Errorf("%w: RestOrder is not a permutation of [0,%d)", ErrPlanFormat, sp.Rows)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ecfg := cfg.withWorkers()
	reordered, err := sparse.PermuteRowsWorkers(m, sp.RowPerm, ecfg.Workers)
	if err != nil {
		return nil, err
	}
	tiled, err := buildTiled(reordered, ecfg)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Cfg:           cfg,
		RowPerm:       append([]int32(nil), sp.RowPerm...),
		InvRowPerm:    sparse.InversePermutation(sp.RowPerm),
		Reordered:     reordered,
		Tiled:         tiled,
		RestOrder:     append([]int32(nil), sp.RestOrder...),
		Round1Applied: sp.Round1Applied,
		Round2Applied: sp.Round2Applied,
	}
	p.DenseRatioAfter = tiled.DenseRatio()
	// Features are recomputed from the rebuilt matrix regardless of how
	// the kernel is picked below, so explain/feedback observability has
	// them even for snapshot-carried and overridden choices.
	p.Features = kernelFeaturesOf(p.Reordered, p.DenseRatioAfter)
	// Kernel precedence: an explicit Config override wins, then the
	// choice stored with the snapshot; legacy files with no stored
	// choice re-run the autotuner on the rebuilt plan.
	switch {
	case cfg.Kernel != KernelAuto && cfg.Kernel.Valid():
		p.Kernel = cfg.Kernel
	case sp.Kernel != KernelAuto:
		p.Kernel = sp.Kernel
	default:
		p.Kernel = ChooseKernel(p.Features)
	}
	return p, nil
}
