package reorder

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/sparse"
)

// Plan serialization for the paper's offline scenario (§5.4: "reordering
// a graph for graph neural network inference ... incurs little overhead
// at compile-time"): the permutations and decision bits of a Plan are
// written to a compact binary file at preprocessing time and re-applied
// at deployment time without re-running LSH or clustering.
//
// Format (little-endian):
//
//	magic  uint32 = 0x52525031 ("RRP1")
//	rows   uint32
//	flags  uint32 (bit0 round1, bit1 round2)
//	rowPerm   [rows]uint32
//	restOrder [rows]uint32

const planMagic = 0x52525031

// ErrPlanFormat is wrapped by all plan-deserialization failures.
var ErrPlanFormat = errors.New("reorder: bad plan file")

// WritePlan serialises the plan's permutations to w. The whole file is
// encoded into one buffer and written with a single Write per
// permutation block, instead of one reflective binary.Write per
// element.
func WritePlan(w io.Writer, p *Plan) error {
	rows := len(p.RowPerm)
	if len(p.RestOrder) != rows {
		return fmt.Errorf("reorder: plan permutations of unequal length")
	}
	var flags uint32
	if p.Round1Applied {
		flags |= 1
	}
	if p.Round2Applied {
		flags |= 2
	}
	buf := make([]byte, 12+8*rows)
	binary.LittleEndian.PutUint32(buf[0:], planMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(rows))
	binary.LittleEndian.PutUint32(buf[8:], flags)
	off := 12
	for _, perm := range [][]int32{p.RowPerm, p.RestOrder} {
		for _, v := range perm {
			binary.LittleEndian.PutUint32(buf[off:], uint32(v))
			off += 4
		}
	}
	_, err := w.Write(buf)
	return err
}

// SavedPlan is the deserialised form of a plan file: just the decisions
// and permutations, without the matrices.
type SavedPlan struct {
	Rows          int
	Round1Applied bool
	Round2Applied bool
	RowPerm       []int32
	RestOrder     []int32
}

// ReadPlan parses a plan file. Each permutation is read with bulk
// io.ReadFull calls over a bounded chunk buffer (no per-element
// binary.Read, and no huge up-front byte allocation for a corrupt
// header claiming billions of rows: the permutation slices grow only as
// bytes actually arrive).
func ReadPlan(r io.Reader) (*SavedPlan, error) {
	var head [12]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrPlanFormat, err)
	}
	if magic := binary.LittleEndian.Uint32(head[0:]); magic != planMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrPlanFormat, magic)
	}
	rows := int(binary.LittleEndian.Uint32(head[4:]))
	if rows < 0 || rows > 1<<30 {
		return nil, fmt.Errorf("%w: implausible row count %d", ErrPlanFormat, rows)
	}
	flags := binary.LittleEndian.Uint32(head[8:])
	sp := &SavedPlan{
		Rows:          rows,
		Round1Applied: flags&1 != 0,
		Round2Applied: flags&2 != 0,
	}
	for _, dst := range []*[]int32{&sp.RowPerm, &sp.RestOrder} {
		perm, err := readPermutation(r, rows)
		if err != nil {
			return nil, err
		}
		if !sparse.IsPermutation(perm, rows) {
			return nil, fmt.Errorf("%w: stored order is not a permutation", ErrPlanFormat)
		}
		*dst = perm
	}
	return sp, nil
}

// readPermutation reads n little-endian uint32s in bounded chunks,
// growing the result incrementally so a lying header cannot force a
// gigantic allocation before the stream runs dry.
func readPermutation(r io.Reader, n int) ([]int32, error) {
	const chunkWords = 16 << 10
	perm := make([]int32, 0, min(n, chunkWords))
	var buf [4 * chunkWords]byte
	for len(perm) < n {
		words := min(n-len(perm), chunkWords)
		if _, err := io.ReadFull(r, buf[:4*words]); err != nil {
			return nil, fmt.Errorf("%w: truncated permutation: %v", ErrPlanFormat, err)
		}
		for i := 0; i < words; i++ {
			perm = append(perm, int32(binary.LittleEndian.Uint32(buf[4*i:])))
		}
	}
	return perm, nil
}

// Apply rebuilds a full executable Plan for matrix m from the saved
// permutations: the matrix is permuted and re-tiled (cheap, O(nnz)), but
// LSH and clustering are skipped. It fails with a wrapped ErrPlanFormat
// if m's row count does not match the saved plan or if either stored
// order is not a valid permutation of [0, rows) — a hand-constructed or
// tampered SavedPlan is rejected here instead of panicking later in
// InversePermutation.
func (sp *SavedPlan) Apply(m *sparse.CSR, cfg Config) (*Plan, error) {
	if m.Rows != sp.Rows {
		return nil, fmt.Errorf("%w: saved plan is for %d rows, matrix has %d",
			ErrPlanFormat, sp.Rows, m.Rows)
	}
	if !sparse.IsPermutation(sp.RowPerm, sp.Rows) {
		return nil, fmt.Errorf("%w: RowPerm is not a permutation of [0,%d)", ErrPlanFormat, sp.Rows)
	}
	if !sparse.IsPermutation(sp.RestOrder, sp.Rows) {
		return nil, fmt.Errorf("%w: RestOrder is not a permutation of [0,%d)", ErrPlanFormat, sp.Rows)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ecfg := cfg.withWorkers()
	reordered, err := sparse.PermuteRowsWorkers(m, sp.RowPerm, ecfg.Workers)
	if err != nil {
		return nil, err
	}
	tiled, err := buildTiled(reordered, ecfg)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Cfg:           cfg,
		RowPerm:       append([]int32(nil), sp.RowPerm...),
		InvRowPerm:    sparse.InversePermutation(sp.RowPerm),
		Reordered:     reordered,
		Tiled:         tiled,
		RestOrder:     append([]int32(nil), sp.RestOrder...),
		Round1Applied: sp.Round1Applied,
		Round2Applied: sp.Round2Applied,
	}
	p.DenseRatioAfter = tiled.DenseRatio()
	return p, nil
}
