package reorder

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/sparse"
)

// Plan serialization for the paper's offline scenario (§5.4: "reordering
// a graph for graph neural network inference ... incurs little overhead
// at compile-time"): the permutations and decision bits of a Plan are
// written to a compact binary file at preprocessing time and re-applied
// at deployment time without re-running LSH or clustering.
//
// Format (little-endian):
//
//	magic  uint32 = 0x52525031 ("RRP1")
//	rows   uint32
//	flags  uint32 (bit0 round1, bit1 round2)
//	rowPerm   [rows]uint32
//	restOrder [rows]uint32

const planMagic = 0x52525031

// ErrPlanFormat is wrapped by all plan-deserialization failures.
var ErrPlanFormat = errors.New("reorder: bad plan file")

// WritePlan serialises the plan's permutations to w.
func WritePlan(w io.Writer, p *Plan) error {
	bw := bufio.NewWriter(w)
	head := []uint32{planMagic, uint32(len(p.RowPerm)), 0}
	if p.Round1Applied {
		head[2] |= 1
	}
	if p.Round2Applied {
		head[2] |= 2
	}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, perm := range [][]int32{p.RowPerm, p.RestOrder} {
		if len(perm) != len(p.RowPerm) {
			return fmt.Errorf("reorder: plan permutations of unequal length")
		}
		for _, v := range perm {
			if err := binary.Write(bw, binary.LittleEndian, uint32(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SavedPlan is the deserialised form of a plan file: just the decisions
// and permutations, without the matrices.
type SavedPlan struct {
	Rows          int
	Round1Applied bool
	Round2Applied bool
	RowPerm       []int32
	RestOrder     []int32
}

// ReadPlan parses a plan file.
func ReadPlan(r io.Reader) (*SavedPlan, error) {
	br := bufio.NewReader(r)
	var head [3]uint32
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrPlanFormat, err)
		}
	}
	if head[0] != planMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrPlanFormat, head[0])
	}
	rows := int(head[1])
	if rows < 0 || rows > 1<<30 {
		return nil, fmt.Errorf("%w: implausible row count %d", ErrPlanFormat, rows)
	}
	sp := &SavedPlan{
		Rows:          rows,
		Round1Applied: head[2]&1 != 0,
		Round2Applied: head[2]&2 != 0,
		RowPerm:       make([]int32, rows),
		RestOrder:     make([]int32, rows),
	}
	for _, perm := range [][]int32{sp.RowPerm, sp.RestOrder} {
		for i := range perm {
			var v uint32
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return nil, fmt.Errorf("%w: truncated permutation: %v", ErrPlanFormat, err)
			}
			perm[i] = int32(v)
		}
		if !sparse.IsPermutation(perm, rows) {
			return nil, fmt.Errorf("%w: stored order is not a permutation", ErrPlanFormat)
		}
	}
	return sp, nil
}

// Apply rebuilds a full executable Plan for matrix m from the saved
// permutations: the matrix is permuted and re-tiled (cheap, O(nnz)), but
// LSH and clustering are skipped. It fails if m's row count does not
// match the saved plan.
func (sp *SavedPlan) Apply(m *sparse.CSR, cfg Config) (*Plan, error) {
	if m.Rows != sp.Rows {
		return nil, fmt.Errorf("reorder: saved plan is for %d rows, matrix has %d", sp.Rows, m.Rows)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	reordered, err := sparse.PermuteRows(m, sp.RowPerm)
	if err != nil {
		return nil, err
	}
	tiled, err := buildTiled(reordered, cfg)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Cfg:           cfg,
		RowPerm:       append([]int32(nil), sp.RowPerm...),
		InvRowPerm:    sparse.InversePermutation(sp.RowPerm),
		Reordered:     reordered,
		Tiled:         tiled,
		RestOrder:     append([]int32(nil), sp.RestOrder...),
		Round1Applied: sp.Round1Applied,
		Round2Applied: sp.Round2Applied,
	}
	p.DenseRatioAfter = tiled.DenseRatio()
	return p, nil
}
