// Package reorder implements the paper's primary contribution: the
// LSH-accelerated hierarchical-clustering row reordering (Alg 3) and the
// two-round reordering workflow of Fig 5, including the §4 skip
// heuristics and the trial-and-error selector.
package reorder

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/faultinject"
	"repro/internal/lsh"
	"repro/internal/pairheap"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/unionfind"
)

// DefaultThresholdSize is the cluster size at which a cluster is emitted
// and retired from further merging (the paper uses 256 everywhere).
const DefaultThresholdSize = 256

// ClusterStats records what the clustering loop did, for tests,
// diagnostics, and the preprocessing-cost experiments.
type ClusterStats struct {
	// CandidatePairs is the number of pairs LSH proposed (E in the
	// paper's complexity analysis).
	CandidatePairs int
	// Merges counts successful cluster merges ("then" branch of Alg 3).
	Merges int
	// Requeues counts re-inserted root pairs ("else" branch).
	Requeues int
	// Retired counts clusters that reached ThresholdSize and were
	// removed from consideration.
	Retired int
	// Clusters is the number of clusters at output time (including
	// singletons).
	Clusters int
}

// Cluster runs Alg 3 on the candidate pairs and returns the reordered row
// permutation: perm[newPos] = original row index, rows grouped cluster by
// cluster (clusters in order of their smallest member, members ascending —
// the paper's realisation of "output the row indices cluster by cluster",
// matching the Fig 6 trace, which emits {0,2,4} in index order).
//
// thresholdSize <= 0 selects DefaultThresholdSize.
func Cluster(m *sparse.CSR, pairs []pairheap.Pair, thresholdSize int) ([]int32, ClusterStats, error) {
	return ClusterOrdered(m, pairs, thresholdSize, false)
}

// ClusterOrdered is Cluster with a choice of within-cluster emission
// order. mergeOrder=false reproduces the paper exactly (Alg 3 lines
// 30-34: members ascending by row index). mergeOrder=true is this
// reproduction's extension: members are emitted in the order they joined
// the cluster, so rows merged through high-similarity pairs stay
// adjacent even inside a large cluster — which matters when weak
// candidate pairs chain several latent clusters into one
// threshold-sized blob (see BenchmarkAblationEmitOrder).
func ClusterOrdered(m *sparse.CSR, pairs []pairheap.Pair, thresholdSize int, mergeOrder bool) ([]int32, ClusterStats, error) {
	return ClusterOrderedCtx(context.Background(), m, pairs, thresholdSize, mergeOrder)
}

// ClusterOrderedCtx is ClusterOrdered with cooperative cancellation:
// the (serial) Alg 3 loop observes ctx periodically, and a panic inside
// it surfaces as a *par.PanicError instead of crashing the process.
func ClusterOrderedCtx(ctx context.Context, m *sparse.CSR, pairs []pairheap.Pair, thresholdSize int, mergeOrder bool) ([]int32, ClusterStats, error) {
	groups, stats, err := ClusterGroupsCtx(ctx, m, pairs, thresholdSize, mergeOrder)
	if err != nil {
		return nil, stats, err
	}
	order := make([]int32, 0, m.Rows)
	for _, g := range groups {
		order = append(order, g...)
	}
	if !sparse.IsPermutation(order, m.Rows) {
		return nil, stats, fmt.Errorf("reorder: clustering produced a non-permutation (internal error)")
	}
	return order, stats, nil
}

// ClusterGroups is ClusterOrdered exposing the cluster boundaries: it
// returns one slice of row indices per emitted cluster, in emission
// order. Useful for panel-aligned packing (PackGroups).
func ClusterGroups(m *sparse.CSR, pairs []pairheap.Pair, thresholdSize int, mergeOrder bool) ([][]int32, ClusterStats, error) {
	return ClusterGroupsCtx(context.Background(), m, pairs, thresholdSize, mergeOrder)
}

// ClusterGroupsCtx is ClusterGroups with cooperative cancellation and
// panic isolation. The clustering loop is serial, so ctx is checked
// every clusterCtxStride queue pops — frequent enough for prompt
// cancellation, rare enough to be free.
func ClusterGroupsCtx(ctx context.Context, m *sparse.CSR, pairs []pairheap.Pair, thresholdSize int, mergeOrder bool) (groups [][]int32, stats ClusterStats, err error) {
	err = par.Guard(func() error {
		groups, stats, err = clusterGroups(ctx, m, pairs, thresholdSize, mergeOrder)
		return err
	})
	if err != nil {
		return nil, stats, err
	}
	return groups, stats, nil
}

// clusterCtxStride is the number of Alg 3 queue pops between
// cancellation checkpoints.
const clusterCtxStride = 4 << 10

func clusterGroups(ctx context.Context, m *sparse.CSR, pairs []pairheap.Pair, thresholdSize int, mergeOrder bool) ([][]int32, ClusterStats, error) {
	if thresholdSize <= 0 {
		thresholdSize = DefaultThresholdSize
	}
	var stats ClusterStats
	stats.CandidatePairs = len(pairs)
	if err := faultinject.Fire("reorder.cluster"); err != nil {
		return nil, stats, err
	}

	queue := pairheap.New(pairs)
	uf := unionfind.New(m.Rows)
	deleted := make([]bool, m.Rows)
	nclusters := m.Rows

	// In merge-order mode, members[root] tracks the join order of each
	// live cluster; merged lists concatenate winner-then-loser, which is
	// O(N log N) total because the loser is always the smaller cluster.
	var members map[int32][]int32
	if mergeOrder {
		members = make(map[int32][]int32, m.Rows)
	}
	merge := func(i, j int32) int32 {
		root := uf.Union(i, j)
		if mergeOrder {
			lose := i
			if root == i {
				lose = j
			}
			mw, ok := members[root]
			if !ok {
				mw = []int32{root}
			}
			ml, ok := members[lose]
			if !ok {
				ml = []int32{lose}
			}
			members[root] = append(mw, ml...)
			delete(members, lose)
		}
		return root
	}

	pops := 0
	for !queue.Empty() && nclusters > 0 {
		if pops++; pops%clusterCtxStride == 0 {
			if err := par.CtxErr(ctx); err != nil {
				return nil, stats, err
			}
		}
		p := queue.Pop()
		i, j := p.I, p.J
		if uf.IsRoot(i) && uf.IsRoot(j) && i != j {
			// Both are representing rows: merge smaller into larger
			// (ties keep the smaller index, Alg 3 lines 16-23).
			if deleted[i] || deleted[j] {
				continue
			}
			root := merge(i, j)
			nclusters--
			stats.Merges++
			if int(uf.Size(root)) >= thresholdSize {
				deleted[root] = true
				nclusters--
				stats.Retired++
			}
			continue
		}
		// At least one of i, j has been absorbed: retarget to the
		// representing rows (Alg 3 lines 24-29).
		ri, rj := uf.Find(i), uf.Find(j)
		if deleted[ri] || deleted[rj] {
			continue
		}
		if ri != rj && !queue.Contains(ri, rj) {
			sim := sparse.RowJaccard(m, int(ri), int(rj))
			if queue.Push(pairheap.Pair{Sim: sim, I: ri, J: rj}) {
				stats.Requeues++
			}
		}
	}

	// Emit rows cluster by cluster: clusters ordered by smallest member;
	// members ascending (paper) or in join order (extension).
	buckets := make(map[int32][]int32)
	var rootOrder []int32
	for i := 0; i < m.Rows; i++ {
		r := uf.Find(int32(i))
		if _, seen := buckets[r]; !seen {
			rootOrder = append(rootOrder, r)
		}
		buckets[r] = append(buckets[r], int32(i))
	}
	groups := make([][]int32, 0, len(rootOrder))
	for _, r := range rootOrder {
		if mergeOrder {
			if mo, ok := members[r]; ok {
				groups = append(groups, mo)
				continue
			}
		}
		groups = append(groups, buckets[r])
	}
	stats.Clusters = len(rootOrder)
	return groups, stats, nil
}

// PackGroups arranges emitted clusters so that cluster boundaries align
// with ASpT panel boundaries where possible (an extension beyond the
// paper, which concatenates clusters in emission order and lets panels
// straddle them): clusters at least one panel long are emitted first and
// padded conceptually by following smaller clusters; the remaining
// clusters are bin-packed first-fit-decreasing into panel-sized bins so
// that few panels mix unrelated clusters. The result is a permutation of
// all rows.
func PackGroups(groups [][]int32, panelSize int) []int32 {
	if panelSize <= 1 {
		out := make([]int32, 0)
		for _, g := range groups {
			out = append(out, g...)
		}
		return out
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	out := make([]int32, 0, total)
	// Large clusters first (their tails fill whole panels anyway).
	var small [][]int32
	for _, g := range groups {
		if len(g) >= panelSize {
			out = append(out, g...)
		} else {
			small = append(small, g)
		}
	}
	// First-fit-decreasing packing of small clusters into panel bins.
	slices.SortStableFunc(small, func(a, b []int32) int { return len(b) - len(a) })
	type bin struct {
		rows []int32
		free int
	}
	var bins []*bin
	for _, g := range small {
		placed := false
		for _, b := range bins {
			if b.free >= len(g) {
				b.rows = append(b.rows, g...)
				b.free -= len(g)
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, &bin{rows: append([]int32(nil), g...), free: panelSize - len(g)})
		}
	}
	// Align the bin region to a panel boundary: the large-cluster prefix
	// may end mid-panel; pad it with the fullest bin contents first so
	// the boundary effect stays small.
	for _, b := range bins {
		out = append(out, b.rows...)
	}
	return out
}

// ReorderRows runs the complete single-round reordering: LSH candidate
// generation followed by Alg 3 clustering. It returns the row permutation
// (perm[newPos] = original row).
func ReorderRows(m *sparse.CSR, lp lsh.Params, thresholdSize int) ([]int32, ClusterStats, error) {
	return ReorderRowsOrdered(m, lp, thresholdSize, false)
}

// ReorderRowsOrdered is ReorderRows with a choice of within-cluster
// emission order (see ClusterOrdered).
func ReorderRowsOrdered(m *sparse.CSR, lp lsh.Params, thresholdSize int, mergeOrder bool) ([]int32, ClusterStats, error) {
	pairs, err := lsh.CandidatePairs(m, lp)
	if err != nil {
		return nil, ClusterStats{}, err
	}
	return ClusterOrdered(m, pairs, thresholdSize, mergeOrder)
}
