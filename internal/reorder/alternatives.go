package reorder

import (
	"fmt"

	"repro/internal/pairheap"
	"repro/internal/sparse"
)

// Alternative row-ordering strategies used as ablation baselines for the
// LSH-accelerated clustering (DESIGN.md §4):
//
//   - ExactCluster is the quality ceiling the paper's §3.2 rejects as
//     infeasible at scale: hierarchical clustering over *all* row pairs
//     (O(N²·d) similarity computations). Feasible only for small N; the
//     ablation compares how much tiling quality LSH candidate generation
//     sacrifices.
//   - GreedyOrder is a GOrder/ReCALL-flavoured alternative applied to
//     rows instead of vertices: starting from row 0, repeatedly append
//     the unplaced row most similar to the last placed one, restricted
//     to LSH candidates so it stays near-linear. It shows what the
//     clustering's merge-by-global-max policy buys over a local chain.

// ExactClusterLimit bounds the matrix size ExactCluster accepts; beyond
// this the quadratic pair generation is exactly the blow-up the paper's
// LSH avoids.
const ExactClusterLimit = 4096

// ExactCluster runs Alg 3 on every nonzero-similarity row pair.
func ExactCluster(m *sparse.CSR, thresholdSize int) ([]int32, ClusterStats, error) {
	if m.Rows > ExactClusterLimit {
		return nil, ClusterStats{}, fmt.Errorf(
			"reorder: ExactCluster limited to %d rows (got %d); use ReorderRows",
			ExactClusterLimit, m.Rows)
	}
	var pairs []pairheap.Pair
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Rows; j++ {
			if sim := sparse.RowJaccard(m, i, j); sim > 0 {
				pairs = append(pairs, pairheap.Pair{Sim: sim, I: int32(i), J: int32(j)})
			}
		}
	}
	return Cluster(m, pairs, thresholdSize)
}

// GreedyOrder chains rows by local similarity: maintain, per row, its
// LSH candidate neighbours sorted by similarity; walk from the first
// unplaced row, always hopping to the most similar unplaced neighbour,
// starting a new chain when none remains.
func GreedyOrder(m *sparse.CSR, pairs []pairheap.Pair) ([]int32, error) {
	type nb struct {
		row int32
		sim float64
	}
	neighbours := make([][]nb, m.Rows)
	for _, p := range pairs {
		neighbours[p.I] = append(neighbours[p.I], nb{p.J, p.Sim})
		neighbours[p.J] = append(neighbours[p.J], nb{p.I, p.Sim})
	}
	placed := make([]bool, m.Rows)
	order := make([]int32, 0, m.Rows)
	for start := 0; start < m.Rows; start++ {
		if placed[start] {
			continue
		}
		cur := int32(start)
		placed[cur] = true
		order = append(order, cur)
		for {
			best, bestSim := int32(-1), 0.0
			for _, n := range neighbours[cur] {
				if !placed[n.row] && n.sim > bestSim {
					best, bestSim = n.row, n.sim
				}
			}
			if best < 0 {
				break
			}
			placed[best] = true
			order = append(order, best)
			cur = best
		}
	}
	if !sparse.IsPermutation(order, m.Rows) {
		return nil, fmt.Errorf("reorder: greedy ordering produced a non-permutation (internal error)")
	}
	return order, nil
}
