package reorder

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/sparse"
	"repro/internal/synth"
)

// The parallel preprocessing engine promises bit-identical plans for
// every worker count: work units (panels, row blocks, similarity
// chunks, candidate keys) are fixed by the input alone, and
// floating-point accumulation is combined in a fixed order. These tests
// pin that contract on structurally different inputs.

func workerCounts() []int {
	counts := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		counts = append(counts, p)
	}
	return counts
}

func planEqual(t *testing.T, want, got *Plan, workers int) {
	t.Helper()
	check := func(name string, ok bool) {
		if !ok {
			t.Errorf("workers=%d: %s differs from serial plan", workers, name)
		}
	}
	check("RowPerm", sliceEq(want.RowPerm, got.RowPerm))
	check("InvRowPerm", sliceEq(want.InvRowPerm, got.InvRowPerm))
	check("RestOrder", sliceEq(want.RestOrder, got.RestOrder))
	check("Round1Applied", want.Round1Applied == got.Round1Applied)
	check("Round2Applied", want.Round2Applied == got.Round2Applied)
	check("Reordered.RowPtr", sliceEq(want.Reordered.RowPtr, got.Reordered.RowPtr))
	check("Reordered.ColIdx", sliceEq(want.Reordered.ColIdx, got.Reordered.ColIdx))
	check("Reordered.Val", sliceEq(want.Reordered.Val, got.Reordered.Val))
	check("TileRowPtr", sliceEq(want.Tiled.TileRowPtr, got.Tiled.TileRowPtr))
	check("TileLocal", sliceEq(want.Tiled.TileLocal, got.Tiled.TileLocal))
	check("TileCol", sliceEq(want.Tiled.TileCol, got.Tiled.TileCol))
	check("TileVal", sliceEq(want.Tiled.TileVal, got.Tiled.TileVal))
	check("Rest.RowPtr", sliceEq(want.Tiled.Rest.RowPtr, got.Tiled.Rest.RowPtr))
	check("Rest.ColIdx", sliceEq(want.Tiled.Rest.ColIdx, got.Tiled.Rest.ColIdx))
	check("Rest.Val", sliceEq(want.Tiled.Rest.Val, got.Tiled.Rest.Val))
	check("len(Panels)", len(want.Tiled.Panels) == len(got.Tiled.Panels))
	for pi := range want.Tiled.Panels {
		if !sliceEq(want.Tiled.Panels[pi].DenseCols, got.Tiled.Panels[pi].DenseCols) {
			t.Errorf("workers=%d: panel %d DenseCols differs", workers, pi)
		}
	}
	// Exact float equality is the point: heuristics and metrics must not
	// depend on summation order.
	check("DenseRatioBefore", want.DenseRatioBefore == got.DenseRatioBefore)
	check("DenseRatioAfter", want.DenseRatioAfter == got.DenseRatioAfter)
	check("AvgSimBefore", want.AvgSimBefore == got.AvgSimBefore)
	check("AvgSimAfter", want.AvgSimAfter == got.AvgSimAfter)

	// The serialized decision bytes must match too (the §5.4 offline
	// artifact a deployment ships).
	var wb, gb bytes.Buffer
	if err := WritePlan(&wb, want); err != nil {
		t.Fatalf("WritePlan(serial): %v", err)
	}
	if err := WritePlan(&gb, got); err != nil {
		t.Fatalf("WritePlan(workers=%d): %v", workers, err)
	}
	check("WritePlan bytes", bytes.Equal(wb.Bytes(), gb.Bytes()))
}

func sliceEq[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func testDeterminism(t *testing.T, m *sparse.CSR) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = 1
	serial, err := Preprocess(m, cfg)
	if err != nil {
		t.Fatalf("serial Preprocess: %v", err)
	}
	for _, w := range workerCounts()[1:] {
		cfg.Workers = w
		p, err := Preprocess(m, cfg)
		if err != nil {
			t.Fatalf("Preprocess(workers=%d): %v", w, err)
		}
		planEqual(t, serial, p, w)
	}
}

func TestPreprocessDeterministicAcrossWorkersRMAT(t *testing.T) {
	scale := 12
	if testing.Short() {
		scale = 10
	}
	m, err := synth.RMAT(scale, 8, 0.57, 0.19, 0.19, 42)
	if err != nil {
		t.Fatal(err)
	}
	testDeterminism(t, m)
}

func TestPreprocessDeterministicAcrossWorkersBanded(t *testing.T) {
	m, err := synth.Banded(4096, 4096, 48, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	testDeterminism(t, m)
}

func TestPreprocessDeterministicAcrossWorkersClustered(t *testing.T) {
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 4096, Cols: 2048, Clusters: 16,
		PrototypeNNZ: 24, Keep: 0.8, Noise: 2, Seed: 3, Scrambled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	testDeterminism(t, m)
}

// TestPreprocessWorkersDefaultMatchesSerial pins that leaving Workers
// at 0 (GOMAXPROCS) also matches the explicit serial plan.
func TestPreprocessWorkersDefaultMatchesSerial(t *testing.T) {
	m, err := synth.RMAT(10, 8, 0.57, 0.19, 0.19, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 1
	serial, err := Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 0
	auto, err := Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	planEqual(t, serial, auto, 0)
}

// TestStageTimingsRecorded pins that the per-stage breakdown is
// populated: preprocessing always tiles (baseline + final), so Tiling
// must be nonzero, and Total must not exceed the wall-clock figure by
// more than rounding.
func TestStageTimingsRecorded(t *testing.T) {
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 2048, Cols: 1024, Clusters: 8,
		PrototypeNNZ: 24, Keep: 0.8, Noise: 2, Seed: 1, Scrambled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Preprocess(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stages.Tiling <= 0 {
		t.Errorf("Stages.Tiling = %v, want > 0", plan.Stages.Tiling)
	}
	if plan.Round1Applied && plan.Stages.Signatures <= 0 {
		t.Errorf("round 1 ran but Stages.Signatures = %v", plan.Stages.Signatures)
	}
	if tot := plan.Stages.Total(); tot > plan.Preprocess {
		t.Errorf("Stages.Total() = %v exceeds Preprocess = %v", tot, plan.Preprocess)
	}
	if plan.Stages.String() == "" {
		t.Error("Stages.String() is empty")
	}
}
