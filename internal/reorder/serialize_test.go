package reorder

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"

	"repro/internal/dense"
	"repro/internal/kernels"
	"repro/internal/synth"
)

func TestPlanRoundTrip(t *testing.T) {
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 512, Cols: 512, Clusters: 64, PrototypeNNZ: 12,
		Keep: 0.8, Noise: 1, Seed: 3, Scrambled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Force = true
	plan, err := Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	sp, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Rows != m.Rows || sp.Round1Applied != plan.Round1Applied || sp.Round2Applied != plan.Round2Applied {
		t.Fatalf("metadata mismatch: %+v", sp)
	}
	for i := range plan.RowPerm {
		if sp.RowPerm[i] != plan.RowPerm[i] || sp.RestOrder[i] != plan.RestOrder[i] {
			t.Fatalf("permutation mismatch at %d", i)
		}
	}

	// Applying the saved plan reproduces the tiled execution exactly.
	rebuilt, err := sp.Apply(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt.Reordered.Equal(plan.Reordered) {
		t.Fatalf("rebuilt reordered matrix differs")
	}
	if rebuilt.Tiled.NNZDense() != plan.Tiled.NNZDense() {
		t.Fatalf("rebuilt tiling differs: %d vs %d", rebuilt.Tiled.NNZDense(), plan.Tiled.NNZDense())
	}
	x := dense.NewRandom(m.Cols, 8, 1)
	a, err := kernels.SpMMASpT(plan.Tiled, x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := kernels.SpMMASpT(rebuilt.Tiled, x)
	if err != nil {
		t.Fatal(err)
	}
	if dense.MaxAbsDiff(a, b) != 0 {
		t.Fatalf("rebuilt plan computes different results")
	}
}

func TestReadPlanRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     {1, 2, 3},
		"bad magic": append([]byte{0, 0, 0, 0}, make([]byte, 8)...),
	}
	for name, in := range cases {
		if _, err := ReadPlan(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Valid header, truncated permutation.
	var buf bytes.Buffer
	buf.Write([]byte{0x31, 0x50, 0x52, 0x52}) // magic LE
	buf.Write([]byte{4, 0, 0, 0})             // rows = 4
	buf.Write([]byte{3, 0, 0, 0})             // flags
	buf.Write([]byte{0, 0, 0, 0})             // only one perm entry
	if _, err := ReadPlan(&buf); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncated file accepted: %v", err)
	}
}

// recomputePlanCRC rewrites the CRC32 footer of a serialised v1 plan in
// place, so tests can mutate header fields and still present a file
// whose checksum is clean — isolating the semantic check under test
// from the integrity check.
func recomputePlanCRC(b []byte) {
	off := len(b) - 8
	binary.LittleEndian.PutUint32(b[off:], crc32.ChecksumIEEE(b[:off]))
}

// TestPlanFlagBitFields covers the upper flag-word fields end to end:
// the kernel choice (bits 8-11) and structural epoch (bits 12-31)
// round-trip, the epoch is truncated to its 20 stored bits, and
// reserved bits 2-7 are rejected even when the CRC has been recomputed
// — a structurally perfect file from a future format revision must
// read as corruption, never be half-understood.
func TestPlanFlagBitFields(t *testing.T) {
	p := &Plan{
		RowPerm:       []int32{2, 0, 1},
		RestOrder:     []int32{1, 2, 0},
		Round1Applied: true,
		Kernel:        KernelMerge,
		Cfg:           Config{Epoch: 0xABCDE},
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	sp, err := ReadPlan(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kernel != KernelMerge || sp.Epoch != 0xABCDE || !sp.Round1Applied || sp.Round2Applied {
		t.Fatalf("flag fields did not round-trip: %+v", sp)
	}

	// An epoch over 20 bits is stored truncated (documented by the
	// format comment; Apply compares the truncated values).
	var big bytes.Buffer
	p.Cfg.Epoch = 0x1FFFFF
	if err := WritePlan(&big, p); err != nil {
		t.Fatal(err)
	}
	if sp, err := ReadPlan(&big); err != nil {
		t.Fatal(err)
	} else if sp.Epoch != 0xFFFFF {
		t.Fatalf("epoch stored as %#x, want low 20 bits %#x", sp.Epoch, 0xFFFFF)
	}

	for _, bits := range []byte{0x04, 0x80, 0xFC} {
		in := withReservedFlagBits(raw, bits)
		if _, err := ReadPlan(bytes.NewReader(in)); !errors.Is(err, ErrPlanFormat) ||
			!strings.Contains(err.Error(), "reserved") {
			t.Errorf("reserved bits %#x: got %v, want reserved-bit ErrPlanFormat", bits, err)
		}
	}

	// An out-of-range kernel nibble is rejected even with a clean CRC.
	badKernel := append([]byte(nil), raw...)
	badKernel[13] = 0x0F // kernel nibble = 15, past kernelCount
	recomputePlanCRC(badKernel)
	if _, err := ReadPlan(bytes.NewReader(badKernel)); !errors.Is(err, ErrPlanFormat) ||
		!strings.Contains(err.Error(), "kernel") {
		t.Errorf("invalid kernel nibble: got %v, want kernel ErrPlanFormat", err)
	}
}

func TestReadPlanRejectsNonPermutation(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0x31, 0x50, 0x52, 0x52})
	buf.Write([]byte{2, 0, 0, 0})
	buf.Write([]byte{0, 0, 0, 0})
	// RowPerm = [0, 0] (invalid), RestOrder = [0, 1].
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	buf.Write([]byte{0, 0, 0, 0, 1, 0, 0, 0})
	if _, err := ReadPlan(&buf); err == nil {
		t.Fatalf("non-permutation accepted")
	}
}

// TestApplyRejectsTamperedPlan checks that a SavedPlan whose
// permutations were corrupted after deserialisation (or constructed by
// hand) fails Apply with a wrapped ErrPlanFormat instead of panicking
// later in InversePermutation.
func TestApplyRejectsTamperedPlan(t *testing.T) {
	m, err := synth.Uniform(16, 16, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	mkPlan := func() *SavedPlan {
		sp := &SavedPlan{Rows: 16}
		for i := int32(0); i < 16; i++ {
			sp.RowPerm = append(sp.RowPerm, i)
			sp.RestOrder = append(sp.RestOrder, i)
		}
		return sp
	}
	cases := map[string]func(*SavedPlan){
		"duplicate row":      func(sp *SavedPlan) { sp.RowPerm[3] = sp.RowPerm[4] },
		"out of range row":   func(sp *SavedPlan) { sp.RowPerm[0] = 16 },
		"negative row":       func(sp *SavedPlan) { sp.RowPerm[0] = -1 },
		"short rest order":   func(sp *SavedPlan) { sp.RestOrder = sp.RestOrder[:8] },
		"duplicate rest row": func(sp *SavedPlan) { sp.RestOrder[0] = 5; sp.RestOrder[1] = 5 },
	}
	for name, corrupt := range cases {
		sp := mkPlan()
		corrupt(sp)
		_, err := sp.Apply(m, DefaultConfig())
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrPlanFormat) {
			t.Errorf("%s: error not wrapped as ErrPlanFormat: %v", name, err)
		}
	}
	// The untampered plan still applies.
	if _, err := mkPlan().Apply(m, DefaultConfig()); err != nil {
		t.Fatalf("valid identity plan rejected: %v", err)
	}
}

func TestApplyRowCountMismatch(t *testing.T) {
	m, err := synth.Uniform(64, 64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PreprocessNR(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	sp, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	other, err := synth.Uniform(32, 64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Apply(other, DefaultConfig()); err == nil {
		t.Fatalf("row-count mismatch accepted")
	}
}
