package reorder

import (
	"testing"

	"repro/internal/lsh"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func benchMatrix(b *testing.B) *sparse.CSR {
	b.Helper()
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 8192, Cols: 8192, Clusters: 1024, PrototypeNNZ: 20,
		Keep: 0.8, Noise: 2, Seed: 2, Scrambled: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkCluster isolates Alg 3 (the "inherently sequential but fast"
// part, §5.4) on precomputed candidate pairs.
func BenchmarkCluster(b *testing.B) {
	m := benchMatrix(b)
	pairs, err := lsh.CandidatePairs(m, lsh.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Cluster(m, pairs, DefaultThresholdSize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreprocess measures the full Fig 5 workflow (both rounds +
// tiling), i.e. one Fig 12 data point.
func BenchmarkPreprocess(b *testing.B) {
	m := benchMatrix(b)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Preprocess(m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreprocessNR is the tiling-only baseline cost.
func BenchmarkPreprocessNR(b *testing.B) {
	m := benchMatrix(b)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PreprocessNR(m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
