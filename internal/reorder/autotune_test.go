package reorder

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/synth"
)

func TestChooseKernel(t *testing.T) {
	cases := []struct {
		name string
		f    KernelFeatures
		want Kernel
	}{
		{"empty", KernelFeatures{Rows: 10}, KernelRowWise},
		{"dense-tiles", KernelFeatures{Rows: 10, NNZ: 100, DenseRatio: 0.5}, KernelASpT},
		{"dense-boundary", KernelFeatures{Rows: 10, NNZ: 100, DenseRatio: autotuneASpTDenseRatio}, KernelASpT},
		{"skewed-cv", KernelFeatures{Rows: 10, NNZ: 100, RowLenCV: 2.5, MaxOverMean: 4}, KernelMerge},
		{"hub-row", KernelFeatures{Rows: 10, NNZ: 100, RowLenCV: 0.9, MaxOverMean: 40}, KernelMerge},
		{"uniform", KernelFeatures{Rows: 10, NNZ: 100, RowLenCV: 0.05, MaxOverMean: 1.2}, KernelELLHybrid},
		{"moderate", KernelFeatures{Rows: 10, NNZ: 100, RowLenCV: 0.6, MaxOverMean: 3}, KernelRowWise},
	}
	for _, c := range cases {
		if got := ChooseKernel(c.f); got != c.want {
			t.Errorf("%s: ChooseKernel = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestKernelParseAndString(t *testing.T) {
	for k := KernelAuto; k < kernelCount; k++ {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKernel(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKernel("vulkan"); err == nil {
		t.Fatal("ParseKernel accepted an unknown name")
	}
	if Kernel(200).Valid() {
		t.Fatal("Kernel(200) reported valid")
	}
}

func TestPreprocessResolvesKernel(t *testing.T) {
	// A power-law matrix with reordering disabled keeps a low dense
	// ratio and high skew: the autotuner must land on merge — and must
	// never return Auto.
	m, err := synth.RMAT(9, 16, 0.57, 0.19, 0.19, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Disable = true
	plan, err := Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kernel == KernelAuto {
		t.Fatal("Preprocess returned an unresolved kernel")
	}
	if plan.DenseRatioAfter < autotuneASpTDenseRatio && plan.Kernel != KernelMerge {
		t.Fatalf("skewed matrix chose %v, want merge", plan.Kernel)
	}

	cfg.Kernel = KernelRowWise
	plan, err = Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kernel != KernelRowWise {
		t.Fatalf("override ignored: got %v", plan.Kernel)
	}
}

func TestPlanKernelSnapshotRoundTrip(t *testing.T) {
	m, err := synth.Uniform(256, 256, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Disable = true
	cfg.Kernel = KernelMerge // force a non-default choice through the file
	plan, err := Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	sp, err := ReadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kernel != KernelMerge {
		t.Fatalf("stored kernel = %v, want merge", sp.Kernel)
	}

	// The stored choice survives Apply under an auto config...
	autoCfg := DefaultConfig()
	autoCfg.Disable = true
	rebuilt, err := sp.Apply(m, autoCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Kernel != KernelMerge {
		t.Fatalf("Apply kernel = %v, want stored merge", rebuilt.Kernel)
	}
	// ...an explicit config override beats the stored choice...
	autoCfg.Kernel = KernelASpT
	rebuilt, err = sp.Apply(m, autoCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Kernel != KernelASpT {
		t.Fatalf("Apply override kernel = %v, want aspt", rebuilt.Kernel)
	}
	// ...and a legacy snapshot with no stored choice re-runs the tuner.
	sp.Kernel = KernelAuto
	autoCfg.Kernel = KernelAuto
	rebuilt, err = sp.Apply(m, autoCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Kernel == KernelAuto {
		t.Fatal("Apply left a legacy plan unresolved")
	}

	// A corrupt kernel field in the flags is rejected at read time.
	raw := buf.Bytes()
	bad := append([]byte(nil), raw...)
	bad[13] |= 0x0F // flags bits 8-11 = 15: out of range
	if _, err := ReadPlan(bytes.NewReader(bad)); !errors.Is(err, ErrPlanFormat) {
		t.Fatalf("corrupt kernel field accepted: %v", err)
	}
}
