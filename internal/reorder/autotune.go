package reorder

// Per-matrix kernel selection. The executor in internal/kernels offers
// four SpMM strategies — row-wise CSR, merge-based nonzero splitting,
// the ELL+COO hybrid, and the ASpT tiled kernel — whose relative speed
// is decided by matrix structure, not size: skew (nnz/row coefficient
// of variation, max/mean row length) rewards the merge kernel, near
// uniformity tolerates the hybrid slab, and a high dense-tile ratio is
// the precondition for ASpT (the paper's Fig 9 skip heuristic, in
// reverse). The choice is made once at preprocessing time from features
// already computed (or O(rows) to compute), stored in the Plan beside
// the permutations, serialised into plan snapshots, and keyed into the
// plan-cache fingerprint via Config — so a cached or deployed plan
// replays the same kernel it was tuned for.
//
// reorder deliberately does not import internal/kernels (kernels' tests
// depend on reorder); the enum here is mapped to actual kernel entry
// points by the top-level repro package.

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// Kernel identifies the SpMM execution strategy of a Plan.
type Kernel uint8

const (
	// KernelAuto resolves to a concrete kernel during Preprocess (or
	// SavedPlan.Apply) via ChooseKernel. It never appears in a returned
	// Plan.
	KernelAuto Kernel = iota
	// KernelRowWise is the row-wise CSR kernel (paper Alg 1).
	KernelRowWise
	// KernelMerge is the merge-based (nonzero-split) CSR kernel.
	KernelMerge
	// KernelELLHybrid is the ELL+COO hybrid slab kernel.
	KernelELLHybrid
	// KernelASpT executes the plan's tiled representation.
	KernelASpT

	kernelCount // sentinel for validation
)

var kernelNames = [...]string{"auto", "rowwise", "merge", "ellhybrid", "aspt"}

func (k Kernel) String() string {
	if int(k) < len(kernelNames) {
		return kernelNames[k]
	}
	return fmt.Sprintf("kernel(%d)", uint8(k))
}

// Valid reports whether k is a defined kernel value (including Auto).
func (k Kernel) Valid() bool { return k < kernelCount }

// ParseKernel maps a name ("auto", "rowwise", "merge", "ellhybrid",
// "aspt") to its Kernel value.
func ParseKernel(s string) (Kernel, error) {
	for i, n := range kernelNames {
		if s == n {
			return Kernel(i), nil
		}
	}
	return KernelAuto, fmt.Errorf("reorder: unknown kernel %q", s)
}

// KernelFeatures are the structural signals ChooseKernel decides on.
// All are O(rows) from a CSR plus the plan's dense-tile ratio.
type KernelFeatures struct {
	Rows, NNZ int
	// RowLenCV is the coefficient of variation of row lengths.
	RowLenCV float64
	// MaxOverMean is MaxRowLen / AvgRowLen (1 = perfectly uniform).
	MaxOverMean float64
	// DenseRatio is the fraction of nonzeros inside dense tiles after
	// reordering (Plan.DenseRatioAfter).
	DenseRatio float64
}

// kernelFeaturesOf extracts features from the reordered matrix without
// touching the nonzeros: row lengths come from RowPtr.
func kernelFeaturesOf(m *sparse.CSR, denseRatio float64) KernelFeatures {
	f := KernelFeatures{Rows: m.Rows, NNZ: m.NNZ(), DenseRatio: denseRatio}
	if m.Rows == 0 || f.NNZ == 0 {
		return f
	}
	sum, sumSq, maxLen := 0.0, 0.0, 0
	for i := 0; i < m.Rows; i++ {
		l := m.RowLen(i)
		sum += float64(l)
		sumSq += float64(l) * float64(l)
		if l > maxLen {
			maxLen = l
		}
	}
	mean := sum / float64(m.Rows)
	if variance := sumSq/float64(m.Rows) - mean*mean; variance > 0 && mean > 0 {
		f.RowLenCV = math.Sqrt(variance) / mean
	}
	if mean > 0 {
		f.MaxOverMean = float64(maxLen) / mean
	}
	return f
}

// Autotuner thresholds. Tuned against `make bench-kernels` (see
// DESIGN.md §12): the regimes where each kernel measurably wins, with
// the tie regions resolved toward the row-wise baseline, whose
// nnz-balanced chunking is within noise of the alternatives on
// non-pathological inputs.
const (
	// autotuneASpTDenseRatio: above this dense-tile nonzero fraction the
	// tiled kernel's X-reuse wins — the same 10% boundary the paper uses
	// to decide whether reordering (whose whole point is raising this
	// ratio) pays.
	autotuneASpTDenseRatio = 0.10
	// autotuneMergeCV / autotuneMergeMaxOverMean: either strong overall
	// skew or a single dominating hub row serialises a row-granular
	// chunk; the merge kernel bounds per-chunk work at ~nnz/chunks
	// regardless.
	autotuneMergeCV          = 1.5
	autotuneMergeMaxOverMean = 16.0
	// autotuneHybridCV: near-uniform row lengths keep the ELL slab
	// padding (and the spill) negligible, making the slab's
	// branch-light column sweep competitive; beyond this CV the slab
	// pads or spills too much to bother.
	autotuneHybridCV = 0.25
)

// ChooseKernel picks the execution strategy for a matrix with the given
// features. The decision order mirrors specificity: the dense-tile
// ratio (the paper's own signal) first, then skew extremes, then the
// row-wise default.
func ChooseKernel(f KernelFeatures) Kernel {
	if f.NNZ == 0 {
		return KernelRowWise
	}
	if f.DenseRatio >= autotuneASpTDenseRatio {
		return KernelASpT
	}
	if f.RowLenCV >= autotuneMergeCV || f.MaxOverMean >= autotuneMergeMaxOverMean {
		return KernelMerge
	}
	if f.RowLenCV <= autotuneHybridCV {
		return KernelELLHybrid
	}
	return KernelRowWise
}

// resolveKernel applies the Config override or the autotuner to a
// freshly built plan, capturing the structural features the decision
// was made on into the plan so observability layers can replay the
// verdict (Plan.Features feeds /debug/explain and the autotuner
// feedback loop). Features are captured even under an explicit Config
// override — that is exactly the case where predicted-vs-configured
// disagreement is worth surfacing.
func resolveKernel(p *Plan) Kernel {
	p.Features = kernelFeaturesOf(p.Reordered, p.DenseRatioAfter)
	if k := p.Cfg.Kernel; k != KernelAuto && k.Valid() {
		return k
	}
	return ChooseKernel(p.Features)
}
