package reorder_test

import (
	"fmt"

	"repro/internal/pairheap"
	"repro/internal/paperex"
	"repro/internal/reorder"
)

// ExampleCluster replays the paper's Fig 6 walk-through: LSH proposes
// the pairs (0,4) with similarity 2/3 and (2,4) with 1/4; the clustering
// merges {0,4}, retargets (2,4) to (2,0), merges again, and emits
// [0 2 4 1 3 5].
func ExampleCluster() {
	m := paperex.Matrix()
	pairs := []pairheap.Pair{
		{Sim: 2.0 / 3.0, I: 0, J: 4},
		{Sim: 0.25, I: 2, J: 4},
	}
	order, stats, err := reorder.Cluster(m, pairs, reorder.DefaultThresholdSize)
	if err != nil {
		panic(err)
	}
	fmt.Println("order:", order)
	fmt.Println("merges:", stats.Merges, "requeues:", stats.Requeues)
	// Output:
	// order: [0 2 4 1 3 5]
	// merges: 2 requeues: 1
}

// ExamplePreprocess shows the Fig 5 workflow on the worked example with
// the paper's dense-ratio heuristic in action: 2 of 12 nonzeros (16.7%)
// already sit in dense tiles, which is above the 10% threshold, so the
// first round is skipped.
func ExamplePreprocess() {
	m := paperex.Matrix()
	cfg := reorder.DefaultConfig()
	cfg.ASpT.PanelSize = paperex.PanelSize
	cfg.ASpT.DenseThreshold = paperex.DenseThreshold
	plan, err := reorder.Preprocess(m, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("dense ratio before: %.3f\n", plan.DenseRatioBefore)
	fmt.Println("round 1 applied:", plan.Round1Applied)
	// Output:
	// dense ratio before: 0.167
	// round 1 applied: false
}
