package reorder

import (
	"testing"

	"repro/internal/aspt"
	"repro/internal/lsh"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func scrambledFixture(t *testing.T, rows, clusters int) *sparse.CSR {
	t.Helper()
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: rows, Cols: rows, Clusters: clusters, PrototypeNNZ: 16,
		Keep: 0.8, Noise: 1, Seed: 21, Scrambled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func denseRatioOf(t *testing.T, m *sparse.CSR, order []int32) float64 {
	t.Helper()
	pm, err := sparse.PermuteRows(m, order)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := aspt.Build(pm, aspt.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return tl.DenseRatio()
}

func TestExactClusterLimit(t *testing.T) {
	m, err := synth.Uniform(ExactClusterLimit+1, 16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExactCluster(m, 0); err == nil {
		t.Fatalf("oversized matrix accepted")
	}
}

// TestLSHNearExactQuality quantifies the paper's central efficiency
// claim: clustering restricted to LSH candidates achieves (nearly) the
// tiling quality of clustering over all pairs, at a fraction of the
// pairs.
func TestLSHNearExactQuality(t *testing.T) {
	m := scrambledFixture(t, 1024, 128)
	exactOrder, exactStats, err := ExactCluster(m, DefaultThresholdSize)
	if err != nil {
		t.Fatal(err)
	}
	lshOrder, lshStats, err := ReorderRows(m, lsh.DefaultParams(), DefaultThresholdSize)
	if err != nil {
		t.Fatal(err)
	}
	if lshStats.CandidatePairs >= exactStats.CandidatePairs {
		t.Fatalf("LSH generated %d pairs, exact %d — no saving",
			lshStats.CandidatePairs, exactStats.CandidatePairs)
	}
	base := denseRatioOf(t, m, sparse.IdentityPermutation(m.Rows))
	exact := denseRatioOf(t, m, exactOrder)
	lshR := denseRatioOf(t, m, lshOrder)
	if exact <= base {
		t.Fatalf("exact clustering did not improve tiling: %v <= %v", exact, base)
	}
	// LSH must capture at least 80% of the exact gain.
	if (lshR - base) < 0.8*(exact-base) {
		t.Fatalf("LSH quality too far below exact: base %.3f, lsh %.3f, exact %.3f",
			base, lshR, exact)
	}
}

func TestGreedyOrder(t *testing.T) {
	m := scrambledFixture(t, 512, 64)
	pairs, err := lsh.CandidatePairs(m, lsh.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	order, err := GreedyOrder(m, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.IsPermutation(order, m.Rows) {
		t.Fatalf("greedy order invalid")
	}
	// Greedy chaining should also beat the identity on scrambled input.
	base := denseRatioOf(t, m, sparse.IdentityPermutation(m.Rows))
	greedy := denseRatioOf(t, m, order)
	if greedy <= base {
		t.Fatalf("greedy ordering did not improve tiling: %v <= %v", greedy, base)
	}
}

func TestGreedyOrderNoPairs(t *testing.T) {
	m, err := synth.Uniform(64, 64, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	order, err := GreedyOrder(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != int32(i) {
			t.Fatalf("no-pair greedy should be identity")
		}
	}
}

func TestPackGroupsIsPermutation(t *testing.T) {
	groups := [][]int32{{0, 1, 2}, {3}, {4, 5}, {6, 7, 8, 9, 10}, {11}}
	out := PackGroups(groups, 4)
	if !sparse.IsPermutation(out, 12) {
		t.Fatalf("packed order not a permutation: %v", out)
	}
	// Large group (>= panel) is emitted before the bin-packed smalls.
	if out[0] != 6 {
		t.Fatalf("large cluster not first: %v", out)
	}
	// panelSize <= 1 degrades to plain concatenation.
	flat := PackGroups(groups, 1)
	want := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flat packing = %v", flat)
		}
	}
}

func TestPackGroupsKeepsClustersContiguous(t *testing.T) {
	// Small clusters must stay contiguous inside their bins.
	groups := [][]int32{{0, 1}, {2, 3}, {4, 5, 6}, {7}}
	out := PackGroups(groups, 4)
	pos := make(map[int32]int, len(out))
	for p, v := range out {
		pos[v] = p
	}
	for _, g := range groups {
		for i := 1; i < len(g); i++ {
			if pos[g[i]] != pos[g[i-1]]+1 {
				t.Fatalf("cluster %v split in %v", g, out)
			}
		}
	}
}

func TestPanelAlignPipeline(t *testing.T) {
	m := scrambledFixture(t, 1024, 128)
	cfg := DefaultConfig()
	cfg.Force = true
	cfg.PanelAlign = true
	plan, err := Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.IsPermutation(plan.RowPerm, m.Rows) || !sparse.IsPermutation(plan.RestOrder, m.Rows) {
		t.Fatalf("panel-aligned plan permutations invalid")
	}
	// Panel-aligned packing must not reduce the dense ratio versus the
	// plain concatenation on this clusterable fixture.
	cfg.PanelAlign = false
	base, err := Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.DenseRatioAfter < base.DenseRatioAfter*0.95 {
		t.Fatalf("panel alignment hurt the dense ratio: %.3f vs %.3f",
			plan.DenseRatioAfter, base.DenseRatioAfter)
	}
}
