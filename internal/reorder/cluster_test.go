package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lsh"
	"repro/internal/pairheap"
	"repro/internal/paperex"
	"repro/internal/sparse"
)

// TestPaperWorkedExampleClustering reproduces the Fig 6 trace: candidate
// pairs (0,4) sim 2/3 and (2,4) sim 1/4 cluster the Fig 1a matrix into
// [0 2 4], leaving rows 1, 3, 5 as singletons — output order
// [0 2 4 1 3 5].
func TestPaperWorkedExampleClustering(t *testing.T) {
	m := paperex.Matrix()
	idx, sims := paperex.CandidatePairs()
	pairs := make([]pairheap.Pair, len(idx))
	for i := range idx {
		pairs[i] = pairheap.Pair{Sim: sims[i], I: idx[i][0], J: idx[i][1]}
	}
	order, stats, err := Cluster(m, pairs, DefaultThresholdSize)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range paperex.ReorderedRows {
		if order[i] != want {
			t.Fatalf("order = %v, want %v", order, paperex.ReorderedRows)
		}
	}
	// Fig 6 trace: two merges ({0,4} then {0,2,4}) and one requeue
	// ((2,4) retargeted to (2,0)).
	if stats.Merges != 2 {
		t.Errorf("merges = %d, want 2", stats.Merges)
	}
	if stats.Requeues != 1 {
		t.Errorf("requeues = %d, want 1", stats.Requeues)
	}
	if stats.Clusters != 4 {
		t.Errorf("clusters = %d, want 4", stats.Clusters)
	}
}

// TestClusterOrderedMergeOrder checks the extension emission mode: when
// weak pairs chain two latent clusters into one, merge-order emission
// keeps each latent cluster's rows adjacent while index-order emission
// interleaves them.
func TestClusterOrderedMergeOrder(t *testing.T) {
	// Two latent groups {0,2,4} (cols 0-2) and {1,3,5} (cols 10-12)
	// interleaved by index, plus one weak bridge pair.
	sets := [][]int32{
		{0, 1, 2}, {10, 11, 12}, {0, 1, 2}, {10, 11, 12}, {0, 1, 2}, {10, 11, 12, 2},
	}
	m, err := sparse.FromRows(6, 16, sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []pairheap.Pair{
		{Sim: 1, I: 0, J: 2},
		{Sim: 1, I: 0, J: 4},
		{Sim: 1, I: 1, J: 3},
		{Sim: 0.75, I: 1, J: 5},
		{Sim: 0.1, I: 0, J: 5}, // weak bridge merges the groups
	}
	ascending, _, err := ClusterOrdered(m, pairs, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	mergeOrd, _, err := ClusterOrdered(m, pairs, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	// Ascending: one cluster of all six rows -> identity-ish interleave.
	for i, v := range []int32{0, 1, 2, 3, 4, 5} {
		if ascending[i] != v {
			t.Fatalf("ascending emission = %v", ascending)
		}
	}
	// Merge order keeps the two groups contiguous.
	rm, err := sparse.PermuteRows(m, mergeOrd)
	if err != nil {
		t.Fatal(err)
	}
	ascM, err := sparse.PermuteRows(m, ascending)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.AvgConsecutiveSimilarity(rm) <= sparse.AvgConsecutiveSimilarity(ascM) {
		t.Fatalf("merge-order emission did not improve adjacency: %v vs %v (order %v)",
			sparse.AvgConsecutiveSimilarity(rm), sparse.AvgConsecutiveSimilarity(ascM), mergeOrd)
	}
}

func TestClusterOrderedBothModesPermutations(t *testing.T) {
	m := paperex.Matrix()
	idx, sims := paperex.CandidatePairs()
	pairs := make([]pairheap.Pair, len(idx))
	for i := range idx {
		pairs[i] = pairheap.Pair{Sim: sims[i], I: idx[i][0], J: idx[i][1]}
	}
	for _, mo := range []bool{false, true} {
		order, _, err := ClusterOrdered(m, pairs, 0, mo)
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.IsPermutation(order, m.Rows) {
			t.Fatalf("mergeOrder=%v produced non-permutation %v", mo, order)
		}
	}
}

func TestClusterNoPairsIsIdentity(t *testing.T) {
	m := paperex.Matrix()
	order, stats, err := Cluster(m, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != int32(i) {
			t.Fatalf("no-pair clustering should be identity, got %v", order)
		}
	}
	if stats.Merges != 0 || stats.Clusters != m.Rows {
		t.Fatalf("stats wrong: %+v", stats)
	}
}

func TestClusterThresholdRetires(t *testing.T) {
	// Four identical rows, all pairs proposed, threshold 2: after one
	// merge each cluster is retired, so we get two pairs of rows, not
	// one cluster of four.
	sets := [][]int32{{0, 1}, {0, 1}, {0, 1}, {0, 1}}
	m, err := sparse.FromRows(4, 4, sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []pairheap.Pair{
		{Sim: 1, I: 0, J: 1},
		{Sim: 1, I: 0, J: 2},
		{Sim: 1, I: 0, J: 3},
		{Sim: 1, I: 1, J: 2},
		{Sim: 1, I: 1, J: 3},
		{Sim: 1, I: 2, J: 3},
	}
	order, stats, err := Cluster(m, pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retired == 0 {
		t.Fatalf("no cluster retired at threshold 2: %+v", stats)
	}
	if !sparse.IsPermutation(order, 4) {
		t.Fatalf("order not a permutation: %v", order)
	}
	// Merges stop at size 2, so exactly 2 merges happen.
	if stats.Merges != 2 {
		t.Fatalf("merges = %d, want 2", stats.Merges)
	}
}

func TestClusterDefaultThreshold(t *testing.T) {
	m := paperex.Matrix()
	if _, _, err := Cluster(m, nil, -5); err != nil {
		t.Fatalf("negative threshold should fall back to default: %v", err)
	}
}

func TestReorderRowsEndToEnd(t *testing.T) {
	// Two latent groups of identical rows, interleaved; the full
	// LSH+clustering stack must group them.
	sets := [][]int32{
		{0, 1, 2}, {7, 8, 9}, {0, 1, 2}, {7, 8, 9}, {0, 1, 2}, {7, 8, 9},
	}
	m, err := sparse.FromRows(6, 12, sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	order, _, err := ReorderRows(m, lsh.DefaultParams(), DefaultThresholdSize)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.IsPermutation(order, 6) {
		t.Fatalf("not a permutation: %v", order)
	}
	rm, err := sparse.PermuteRows(m, order)
	if err != nil {
		t.Fatal(err)
	}
	// After reordering, consecutive-row similarity should be (near)
	// maximal: 5 gaps, at least 4 with similarity 1.
	if sim := sparse.AvgConsecutiveSimilarity(rm); sim < 0.79 {
		t.Fatalf("grouping failed: avg consecutive sim %v", sim)
	}
}

// Property: clustering always emits a permutation, never merges beyond
// 2*threshold, and is deterministic.
func TestPropertyClusterPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(60)
		cols := 4 + rng.Intn(30)
		sets := make([][]int32, rows)
		for i := range sets {
			n := rng.Intn(5)
			seen := map[int32]bool{}
			for len(seen) < n && len(seen) < cols {
				seen[int32(rng.Intn(cols))] = true
			}
			for c := range seen {
				sets[i] = append(sets[i], c)
			}
		}
		m, err := sparse.FromRows(rows, cols, sets, nil)
		if err != nil {
			return false
		}
		var pairs []pairheap.Pair
		for k := 0; k < rows; k++ {
			i, j := int32(rng.Intn(rows)), int32(rng.Intn(rows))
			if i == j {
				continue
			}
			pairs = append(pairs, pairheap.Pair{
				Sim: sparse.RowJaccard(m, int(i), int(j)), I: i, J: j,
			})
		}
		threshold := 2 + rng.Intn(8)
		o1, _, err1 := Cluster(m, pairs, threshold)
		o2, _, err2 := Cluster(m, pairs, threshold)
		if err1 != nil || err2 != nil {
			return false
		}
		if !sparse.IsPermutation(o1, rows) {
			return false
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				return false // non-deterministic
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: cluster sizes in the emitted order respect the threshold —
// once a cluster reaches threshold_size it stops growing, so no cluster
// exceeds 2*threshold-1 (worst case: two just-under-threshold clusters
// merge).
func TestPropertyClusterSizeBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 8 + rng.Intn(60)
		// All rows identical => everything wants to merge.
		sets := make([][]int32, rows)
		for i := range sets {
			sets[i] = []int32{0, 1, 2}
		}
		m, err := sparse.FromRows(rows, 4, sets, nil)
		if err != nil {
			return false
		}
		var pairs []pairheap.Pair
		for i := int32(0); int(i) < rows; i++ {
			for j := i + 1; int(j) < rows; j++ {
				pairs = append(pairs, pairheap.Pair{Sim: 1, I: i, J: j})
			}
		}
		threshold := 2 + rng.Intn(6)
		_, stats, err := Cluster(m, pairs, threshold)
		if err != nil {
			return false
		}
		// With every pair proposed at sim 1 and rows > threshold, the
		// first cluster must grow to threshold and be retired; merges
		// can never exceed rows-1.
		return stats.Merges <= rows-1 && stats.Retired >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
