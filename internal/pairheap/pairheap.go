// Package pairheap provides the max-heap of candidate row pairs keyed by
// Jaccard similarity (Alg 3's sim_queue) together with the candidate-pair
// membership set used to avoid re-inserting a pair (Alg 3 line 27).
package pairheap

import "container/heap"

// Pair is a candidate row pair with its similarity score.
type Pair struct {
	Sim  float64
	I, J int32
}

// Key returns a canonical (ordered) identity for the pair, used for
// membership testing: the pair (i, j) and (j, i) share a key.
func (p Pair) Key() uint64 {
	a, b := uint64(uint32(p.I)), uint64(uint32(p.J))
	if a > b {
		a, b = b, a
	}
	return a<<32 | b
}

// Queue is a max-heap of Pairs by Sim with a membership set over pair
// identities. Ties on Sim are broken by (I, J) ascending so the clustering
// trace is deterministic, which the paper's worked example (Fig 6)
// implicitly relies on.
type Queue struct {
	h       pairSlice
	present map[uint64]struct{}
}

// New builds a queue from an initial set of candidate pairs in O(E).
func New(pairs []Pair) *Queue {
	q := &Queue{
		h:       make(pairSlice, 0, len(pairs)),
		present: make(map[uint64]struct{}, len(pairs)),
	}
	for _, p := range pairs {
		if _, dup := q.present[p.Key()]; dup {
			continue
		}
		q.present[p.Key()] = struct{}{}
		q.h = append(q.h, p)
	}
	heap.Init(&q.h)
	return q
}

// Len returns the number of pairs currently queued.
func (q *Queue) Len() int { return len(q.h) }

// Empty reports whether no pairs remain.
func (q *Queue) Empty() bool { return len(q.h) == 0 }

// Pop removes and returns the pair with the largest similarity.
// It panics on an empty queue (programming error).
func (q *Queue) Pop() Pair {
	return heap.Pop(&q.h).(Pair)
}

// Push inserts a pair if an identical pair (in either orientation) has not
// been seen before; it reports whether the pair was inserted. Note that
// membership is remembered across Pops, matching Alg 3's candidate_pairs
// set, which only ever grows.
func (q *Queue) Push(p Pair) bool {
	if _, dup := q.present[p.Key()]; dup {
		return false
	}
	q.present[p.Key()] = struct{}{}
	heap.Push(&q.h, p)
	return true
}

// Contains reports whether the pair (in either orientation) has ever been
// queued.
func (q *Queue) Contains(i, j int32) bool {
	_, ok := q.present[Pair{I: i, J: j}.Key()]
	return ok
}

type pairSlice []Pair

func (s pairSlice) Len() int { return len(s) }
func (s pairSlice) Less(a, b int) bool {
	if s[a].Sim != s[b].Sim {
		return s[a].Sim > s[b].Sim // max-heap
	}
	if s[a].I != s[b].I {
		return s[a].I < s[b].I
	}
	return s[a].J < s[b].J
}
func (s pairSlice) Swap(a, b int) { s[a], s[b] = s[b], s[a] }
func (s *pairSlice) Push(x any)   { *s = append(*s, x.(Pair)) }
func (s *pairSlice) Pop() any {
	old := *s
	n := len(old)
	p := old[n-1]
	*s = old[:n-1]
	return p
}
