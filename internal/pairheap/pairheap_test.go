package pairheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPairKeyCanonical(t *testing.T) {
	a := Pair{I: 3, J: 7}
	b := Pair{I: 7, J: 3}
	if a.Key() != b.Key() {
		t.Fatalf("key not orientation-independent")
	}
	c := Pair{I: 3, J: 8}
	if a.Key() == c.Key() {
		t.Fatalf("distinct pairs share a key")
	}
}

func TestQueuePopsByDescendingSim(t *testing.T) {
	q := New([]Pair{
		{Sim: 0.25, I: 2, J: 4},
		{Sim: 0.9, I: 0, J: 4},
		{Sim: 0.5, I: 1, J: 3},
	})
	want := []float64{0.9, 0.5, 0.25}
	for _, w := range want {
		if q.Empty() {
			t.Fatalf("queue empty early")
		}
		if p := q.Pop(); p.Sim != w {
			t.Fatalf("popped %v, want sim %v", p, w)
		}
	}
	if !q.Empty() {
		t.Fatalf("queue should be empty")
	}
}

func TestQueueTieBreakDeterministic(t *testing.T) {
	q := New([]Pair{
		{Sim: 0.5, I: 5, J: 6},
		{Sim: 0.5, I: 1, J: 2},
		{Sim: 0.5, I: 1, J: 9},
	})
	p1 := q.Pop()
	p2 := q.Pop()
	p3 := q.Pop()
	if p1.I != 1 || p1.J != 2 || p2.I != 1 || p2.J != 9 || p3.I != 5 {
		t.Fatalf("tie-break order wrong: %v %v %v", p1, p2, p3)
	}
}

func TestQueueDedup(t *testing.T) {
	q := New([]Pair{{Sim: 0.5, I: 1, J: 2}, {Sim: 0.7, I: 2, J: 1}})
	if q.Len() != 1 {
		t.Fatalf("constructor kept duplicate, len=%d", q.Len())
	}
	if ok := q.Push(Pair{Sim: 0.3, I: 1, J: 2}); ok {
		t.Fatalf("Push accepted duplicate")
	}
	if !q.Contains(2, 1) {
		t.Fatalf("Contains missed pair")
	}
	q.Pop()
	// Membership persists across pops (Alg 3's candidate_pairs set).
	if ok := q.Push(Pair{Sim: 0.3, I: 1, J: 2}); ok {
		t.Fatalf("Push re-accepted popped pair")
	}
	if ok := q.Push(Pair{Sim: 0.3, I: 4, J: 5}); !ok {
		t.Fatalf("Push rejected new pair")
	}
}

func TestPopPanicsWhenEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Pop on empty did not panic")
		}
	}()
	New(nil).Pop()
}

// Property: popping everything yields sims in non-increasing order and
// exactly the deduplicated input multiset.
func TestPropertyHeapOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100)
		pairs := make([]Pair, n)
		uniq := map[uint64]float64{}
		for i := range pairs {
			p := Pair{
				Sim: float64(rng.Intn(10)) / 10,
				I:   int32(rng.Intn(20)),
				J:   int32(rng.Intn(20)),
			}
			pairs[i] = p
			if _, dup := uniq[p.Key()]; !dup {
				uniq[p.Key()] = p.Sim
			}
		}
		q := New(pairs)
		if q.Len() != len(uniq) {
			return false
		}
		var popped []float64
		for !q.Empty() {
			popped = append(popped, q.Pop().Sim)
		}
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(popped))) {
			return false
		}
		var want []float64
		for _, s := range uniq {
			want = append(want, s)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		for i := range want {
			if popped[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
