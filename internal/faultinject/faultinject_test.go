package faultinject

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strings"
	"testing"
)

func TestFireDisabled(t *testing.T) {
	Reset()
	if err := Fire("anything"); err != nil {
		t.Fatalf("Fire with no hooks = %v", err)
	}
}

func TestErrorAtAndRestore(t *testing.T) {
	Reset()
	restore := ErrorAt("site.a")
	if err := Fire("site.a"); !errors.Is(err, Err) {
		t.Fatalf("Fire(site.a) = %v, want Err", err)
	}
	if err := Fire("site.b"); err != nil {
		t.Fatalf("Fire(site.b) = %v, want nil (unarmed site)", err)
	}
	restore()
	if err := Fire("site.a"); err != nil {
		t.Fatalf("after restore Fire(site.a) = %v, want nil", err)
	}
}

func TestSetCustomHookNthCall(t *testing.T) {
	Reset()
	n := 0
	restore := Set("site.n", func() error {
		n++
		if n == 3 {
			return Err
		}
		return nil
	})
	defer restore()
	if err := Fire("site.n"); err != nil {
		t.Fatalf("call 1 = %v", err)
	}
	if err := Fire("site.n"); err != nil {
		t.Fatalf("call 2 = %v", err)
	}
	if err := Fire("site.n"); !errors.Is(err, Err) {
		t.Fatalf("call 3 = %v, want Err", err)
	}
}

func TestPanicAt(t *testing.T) {
	Reset()
	restore := PanicAt("site.p")
	defer restore()
	defer func() {
		if r := recover(); r == nil {
			t.Fatalf("Fire(site.p) did not panic")
		}
	}()
	_ = Fire("site.p")
}

// TestKnownSitesMatchSource walks the module source and checks that the
// set of literal site names passed to Fire equals Sites(): a new
// injection point must be registered (so chaos tests cover it), and a
// removed one must be dropped.
func TestKnownSitesMatchSource(t *testing.T) {
	root := filepath.Join("..", "..")
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	fire := regexp.MustCompile(`faultinject\.Fire\("([^"]+)"\)`)
	found := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range fire.FindAllStringSubmatch(string(src), -1) {
			found[m[1]] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var inSource []string
	for s := range found {
		inSource = append(inSource, s)
	}
	slices.Sort(inSource)
	if want := Sites(); !slices.Equal(inSource, want) {
		t.Fatalf("Fire sites in source %v != Sites() %v — update the known list", inSource, want)
	}
}

func TestNestedRestoreOrder(t *testing.T) {
	Reset()
	r1 := ErrorAt("x")
	r2 := ErrorAt("y")
	r2()
	if err := Fire("x"); !errors.Is(err, Err) {
		t.Fatalf("x disarmed by y's restore: %v", err)
	}
	if err := Fire("y"); err != nil {
		t.Fatalf("y still armed after restore: %v", err)
	}
	r1()
	if err := Fire("x"); err != nil {
		t.Fatalf("x still armed after restore: %v", err)
	}
}
