package faultinject

import (
	"errors"
	"testing"
)

func TestFireDisabled(t *testing.T) {
	Reset()
	if err := Fire("anything"); err != nil {
		t.Fatalf("Fire with no hooks = %v", err)
	}
}

func TestErrorAtAndRestore(t *testing.T) {
	Reset()
	restore := ErrorAt("site.a")
	if err := Fire("site.a"); !errors.Is(err, Err) {
		t.Fatalf("Fire(site.a) = %v, want Err", err)
	}
	if err := Fire("site.b"); err != nil {
		t.Fatalf("Fire(site.b) = %v, want nil (unarmed site)", err)
	}
	restore()
	if err := Fire("site.a"); err != nil {
		t.Fatalf("after restore Fire(site.a) = %v, want nil", err)
	}
}

func TestSetCustomHookNthCall(t *testing.T) {
	Reset()
	n := 0
	restore := Set("site.n", func() error {
		n++
		if n == 3 {
			return Err
		}
		return nil
	})
	defer restore()
	if err := Fire("site.n"); err != nil {
		t.Fatalf("call 1 = %v", err)
	}
	if err := Fire("site.n"); err != nil {
		t.Fatalf("call 2 = %v", err)
	}
	if err := Fire("site.n"); !errors.Is(err, Err) {
		t.Fatalf("call 3 = %v, want Err", err)
	}
}

func TestPanicAt(t *testing.T) {
	Reset()
	restore := PanicAt("site.p")
	defer restore()
	defer func() {
		if r := recover(); r == nil {
			t.Fatalf("Fire(site.p) did not panic")
		}
	}()
	_ = Fire("site.p")
}

func TestNestedRestoreOrder(t *testing.T) {
	Reset()
	r1 := ErrorAt("x")
	r2 := ErrorAt("y")
	r2()
	if err := Fire("x"); !errors.Is(err, Err) {
		t.Fatalf("x disarmed by y's restore: %v", err)
	}
	if err := Fire("y"); err != nil {
		t.Fatalf("y still armed after restore: %v", err)
	}
	r1()
	if err := Fire("x"); err != nil {
		t.Fatalf("x still armed after restore: %v", err)
	}
}
