// Package faultinject provides deterministic fault-injection hooks for
// tests. Production code calls Fire(site) at the top of each unit of
// work in a parallel (or long-running serial) stage; with no hooks
// registered — the default, and the only state production code ever
// runs with — Fire is a single atomic pointer load returning nil.
//
// Tests register a hook for a named site to force that stage to fail in
// a controlled way: returning an error exercises the error path, and
// panicking from the hook exercises panic isolation (the hook panics on
// whichever worker goroutine happens to execute the unit, exactly like
// a real bug would). Hooks are process-global; tests that install them
// must not run in parallel with each other and must restore on exit.
package faultinject

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Err is the canned error injected by ErrorAt hooks; tests match it
// with errors.Is.
var Err = errors.New("faultinject: injected fault")

// ErrCorrupt is the sentinel returned by CorruptAt hooks. Corruption
// sites (the "integrity.corrupt.*" family) flip data only when the
// hook's error matches ErrCorrupt via errors.Is; any other hook error
// (e.g. the generic chaos soak's ErrorAt sweep over all Sites()) is a
// deliberate no-op at those sites, so arming them with plain Err never
// corrupts results.
var ErrCorrupt = errors.New("faultinject: injected corruption")

// known lists every site name that appears in a production Fire call.
// Chaos tests iterate over Sites() so that adding a fault-injection
// point automatically widens their coverage; TestKnownSitesMatchSource
// fails the build when this list and the source drift apart.
var known = []string{
	"aspt.build",
	"dense.pool",
	"integrity.corrupt.gather",
	"integrity.corrupt.overlay",
	"integrity.corrupt.plan",
	"kernels.exec",
	"live.overlay.append",
	"live.rebuild.start",
	"live.swap.publish",
	"lsh.banding",
	"lsh.pairmerge",
	"lsh.scoring",
	"lsh.signatures",
	"obs.listen",
	"plancache.disk.load",
	"plancache.disk.save",
	"plancache.get",
	"plancache.put",
	"reorder.cluster",
	"sparse.permute",
}

// Sites returns the names of every registered fault-injection site, in
// sorted order. The slice is a copy; callers may reorder it freely.
func Sites() []string {
	return append([]string(nil), known...)
}

// hooks is a copy-on-write site -> hook map; nil when no hook is
// installed anywhere (the production state).
var (
	mu    sync.Mutex
	hooks atomic.Pointer[map[string]func() error]
)

// Fire invokes the hook registered for site, if any. Sites are
// dot-separated "package.stage" names (e.g. "lsh.banding",
// "kernels.exec"). With no hook registered it returns nil at the cost
// of one atomic load.
func Fire(site string) error {
	m := hooks.Load()
	if m == nil {
		return nil
	}
	if fn, ok := (*m)[site]; ok {
		return fn()
	}
	return nil
}

// Set installs fn as the hook for site and returns a function that
// removes exactly that hook. Intended to be called from tests only:
//
//	defer faultinject.Set("aspt.build", func() error { return faultinject.Err })()
func Set(site string, fn func() error) (restore func()) {
	update(func(m map[string]func() error) { m[site] = fn })
	return func() {
		update(func(m map[string]func() error) { delete(m, site) })
	}
}

// ErrorAt installs a hook at site that always returns Err.
func ErrorAt(site string) (restore func()) {
	return Set(site, func() error { return Err })
}

// CorruptAt installs a hook at site that always returns ErrCorrupt,
// arming one of the "integrity.corrupt.*" silent-corruption sites.
func CorruptAt(site string) (restore func()) {
	return Set(site, func() error { return ErrCorrupt })
}

// PanicAt installs a hook at site that always panics, simulating a bug
// in the stage's worker code.
func PanicAt(site string) (restore func()) {
	return Set(site, func() error { panic("faultinject: injected panic at " + site) })
}

// Reset removes every hook, returning the package to the production
// state.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks.Store(nil)
}

// update applies edit to a copy of the hook map and publishes it (or
// nil when the result is empty).
func update(edit func(map[string]func() error)) {
	mu.Lock()
	defer mu.Unlock()
	next := make(map[string]func() error)
	if cur := hooks.Load(); cur != nil {
		for k, v := range *cur {
			next[k] = v
		}
	}
	edit(next)
	if len(next) == 0 {
		hooks.Store(nil)
		return
	}
	hooks.Store(&next)
}
