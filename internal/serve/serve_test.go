package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionImmediateAndRelease(t *testing.T) {
	a := NewAdmission(4, 2)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := a.Acquire(ctx, 1); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	st := a.Stats()
	if st.InFlight != 4 || st.InUse != 4 || st.Admitted != 4 {
		t.Fatalf("stats = %+v", st)
	}
	a.Release(1)
	if err := a.Acquire(ctx, 1); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	a := NewAdmission(1, 1)
	ctx := context.Background()
	if err := a.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// One waiter fills the queue.
	queued := make(chan error, 1)
	go func() { queued <- a.Acquire(ctx, 1) }()
	waitFor(t, func() bool { return a.Stats().QueueLen == 1 })
	// The next request must shed with a typed, stat-carrying error.
	err := a.Acquire(ctx, 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var ov *Overload
	if !errors.As(err, &ov) {
		t.Fatalf("err %T does not carry *Overload", err)
	}
	if ov.QueueLen != 1 || ov.QueueCap != 1 || ov.InUse != 1 {
		t.Fatalf("overload stats = %+v", ov)
	}
	if st := a.Stats(); st.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", st.Shed)
	}
	a.Release(1)
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestAdmissionFIFONoBarging(t *testing.T) {
	a := NewAdmission(4, 8)
	ctx := context.Background()
	if err := a.Acquire(ctx, 4); err != nil { // saturate
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	enqueue := func(id int, weight int64) {
		waitFor(t, func() bool { return a.Stats().QueueLen == id })
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Acquire(ctx, weight); err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			a.Release(weight)
		}()
	}
	// Heavy first, light second: after the release the heavy waiter
	// fills the whole gate, so the light one — which would fit right
	// now — must NOT overtake it, and the grant order is serialized.
	enqueue(0, 4)
	enqueue(1, 1)
	waitFor(t, func() bool { return a.Stats().QueueLen == 2 })
	a.Release(4)
	wg.Wait()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("wakeup order = %v, want [0 1]", order)
	}
}

func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	a := NewAdmission(1, 4)
	if err := a.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.Acquire(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	st := a.Stats()
	if st.Expired != 1 || st.QueueLen != 0 {
		t.Fatalf("stats = %+v, want Expired 1, empty queue", st)
	}
	a.Release(1)
	if err := a.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("gate wedged after expiry: %v", err)
	}
}

func TestAdmissionWeightClamping(t *testing.T) {
	a := NewAdmission(4, 0)
	// An outsized request degrades to whole-gate exclusivity, not deadlock.
	if err := a.Acquire(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want overload while clamped giant holds the gate", err)
	}
	a.Release(100)
	if err := a.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionCloseAndDrain(t *testing.T) {
	a := NewAdmission(2, 4)
	ctx := context.Background()
	if err := a.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- a.Acquire(ctx, 2) }()
	waitFor(t, func() bool { return a.Stats().QueueLen == 1 })

	a.Close()
	if err := <-queued; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued waiter after Close: %v, want ErrClosed", err)
	}
	if err := a.Acquire(ctx, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("new acquire after Close: %v, want ErrClosed", err)
	}

	// Drain blocks until the in-flight request releases.
	drained := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(ctx, time.Second)
		defer cancel()
		drained <- a.Drain(dctx)
	}()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v before the in-flight request finished", err)
	case <-time.After(20 * time.Millisecond):
	}
	a.Release(1)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestAdmissionConcurrentStress(t *testing.T) {
	a := NewAdmission(8, 16)
	var peak atomic.Int64
	var inUse atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 200; i++ {
				w := int64(g%3 + 1)
				if err := a.Acquire(ctx, w); err != nil {
					if errors.Is(err, ErrOverloaded) {
						continue
					}
					t.Errorf("acquire: %v", err)
					return
				}
				cur := inUse.Add(w)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				inUse.Add(-w)
				a.Release(w)
			}
		}(g)
	}
	wg.Wait()
	if p := peak.Load(); p > 8 {
		t.Fatalf("weighted capacity violated: peak in-use weight %d > 8", p)
	}
	st := a.Stats()
	if st.InUse != 0 || st.InFlight != 0 || st.QueueLen != 0 {
		t.Fatalf("gate not empty after stress: %+v", st)
	}
}

func TestBreakerTripHalfOpenCloseCycle(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	clock := time.Now()
	b.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker rejected")
		}
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	b.Allow()
	b.Failure() // third consecutive: trip
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted before cooldown")
	}

	clock = clock.Add(2 * time.Hour) // cooldown elapses
	if !b.Allow() {
		t.Fatal("probe not admitted after cooldown")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second probe admitted while one is in flight")
	}
	b.Failure() // probe fails: back to open
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}

	clock = clock.Add(2 * time.Hour)
	if !b.Allow() {
		t.Fatal("second probe not admitted")
	}
	b.Success() // probe succeeds: closed
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}

	st := b.Stats()
	if st.Trips != 2 || st.HalfOpens != 2 || st.Closes != 1 {
		t.Fatalf("stats = %+v, want 2 trips, 2 half-opens, 1 close", st)
	}
	if st.Rejected < 2 {
		t.Fatalf("rejected = %d, want >= 2", st.Rejected)
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	b := NewBreaker(3, time.Minute)
	for i := 0; i < 10; i++ {
		b.Allow()
		b.Failure()
		b.Allow()
		b.Failure()
		b.Allow()
		b.Success() // never three in a row
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed (failures never consecutive)", b.State())
	}
	if st := b.Stats(); st.Trips != 0 {
		t.Fatalf("trips = %d, want 0", st.Trips)
	}
}

func TestBreakerCounterInvariants(t *testing.T) {
	b := NewBreaker(2, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if !b.Allow() {
					continue
				}
				if (g+i)%3 == 0 {
					b.Failure()
				} else {
					b.Success()
				}
			}
		}(g)
	}
	wg.Wait()
	st := b.Stats()
	if st.HalfOpens > st.Trips {
		t.Fatalf("half-opens %d > trips %d", st.HalfOpens, st.Trips)
	}
	if st.Closes > st.HalfOpens {
		t.Fatalf("closes %d > half-opens %d", st.Closes, st.HalfOpens)
	}
	if st.Trips > st.Failures {
		t.Fatalf("trips %d > failures %d", st.Trips, st.Failures)
	}
}

func TestRetryTransientThenSuccess(t *testing.T) {
	errTransient := errors.New("transient")
	calls := 0
	retries, err := Retry(context.Background(),
		RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond},
		func(error) bool { return true },
		func(int) error {
			calls++
			if calls < 3 {
				return errTransient
			}
			return nil
		})
	if err != nil || retries != 2 || calls != 3 {
		t.Fatalf("retries=%d calls=%d err=%v, want 2/3/nil", retries, calls, err)
	}
}

func TestRetryNonTransientStops(t *testing.T) {
	permanent := errors.New("permanent")
	calls := 0
	retries, err := Retry(context.Background(),
		RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond},
		func(err error) bool { return false },
		func(int) error { calls++; return permanent })
	if !errors.Is(err, permanent) || retries != 0 || calls != 1 {
		t.Fatalf("retries=%d calls=%d err=%v, want 0/1/permanent", retries, calls, err)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	transient := errors.New("transient")
	calls := 0
	retries, err := Retry(context.Background(),
		RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond},
		func(error) bool { return true },
		func(int) error { calls++; return transient })
	if !errors.Is(err, transient) || retries != 3 || calls != 4 {
		t.Fatalf("retries=%d calls=%d err=%v, want 3/4/transient", retries, calls, err)
	}
}

func TestRetryNeverRetriesContextErrors(t *testing.T) {
	calls := 0
	_, err := Retry(context.Background(),
		RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond},
		func(error) bool { return true }, // even a lying classifier
		func(int) error { calls++; return context.DeadlineExceeded })
	if !errors.Is(err, context.DeadlineExceeded) || calls != 1 {
		t.Fatalf("calls=%d err=%v, want 1/DeadlineExceeded", calls, err)
	}
}

func TestRetryCancelledDuringBackoff(t *testing.T) {
	transient := errors.New("transient")
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Retry(ctx,
			RetryPolicy{MaxAttempts: 1000, BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
			func(error) bool { return true },
			func(int) error { calls++; return transient })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want Canceled", err)
		}
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("retry loop did not observe cancellation")
	}
}

func TestRetryBackoffBounded(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 50, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}.withDefaults()
	for n := 1; n < 64; n++ {
		for i := 0; i < 32; i++ {
			if d := p.backoff(n); d < 0 || d > 8*time.Millisecond {
				t.Fatalf("backoff(%d) = %v outside [0, 8ms]", n, d)
			}
		}
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(time.Millisecond)
	}
}
