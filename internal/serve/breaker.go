package serve

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int32

const (
	// Closed: traffic flows; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: traffic is rejected (routed to the fallback) until the
	// cooldown elapses.
	Open
	// HalfOpen: the cooldown elapsed and exactly one probe request is
	// in flight; its outcome closes or re-opens the circuit.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerStats is a snapshot of the breaker's counters.
type BreakerStats struct {
	State     BreakerState
	Trips     int64 // Closed/HalfOpen → Open transitions
	HalfOpens int64 // Open → HalfOpen transitions (probe admitted)
	Closes    int64 // HalfOpen → Closed transitions (probe succeeded)
	Rejected  int64 // Allow() == false while Open or probing
	Failures  int64 // Failure() calls
	Successes int64 // Success() calls
}

// Breaker is a consecutive-failure circuit breaker. Closed, it admits
// everything and trips to Open after `threshold` consecutive failures;
// Open, it rejects until `cooldown` has elapsed, then admits exactly
// one probe (HalfOpen); the probe's success closes the circuit, its
// failure re-opens it for another cooldown. All methods are safe for
// concurrent use.
//
// The caller contract is: if Allow returns true, report the outcome of
// exactly that one attempt with Success or Failure; if it returns
// false, route to the fallback and report nothing.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	state       BreakerState
	consecutive int
	openedAt    time.Time
	probing     bool // a HalfOpen probe is in flight

	trips     int64
	halfOpens int64
	closes    int64
	rejected  int64
	failures  int64
	successes int64
}

// NewBreaker returns a closed breaker tripping after threshold
// consecutive failures (min 1) and cooling down for cooldown (min 1ms)
// before probing.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Millisecond
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether the protected path may serve this attempt.
// While Open it returns false until the cooldown elapses, at which
// point the calling attempt becomes the half-open probe (true); while
// a probe is in flight every other attempt is rejected.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = HalfOpen
			b.probing = true
			b.halfOpens++
			return true
		}
		b.rejected++
		return false
	default: // HalfOpen
		if b.probing {
			b.rejected++
			return false
		}
		// The previous probe resolved but a racer arrived between its
		// report and the state change becoming visible; admit as a new
		// probe.
		b.probing = true
		return true
	}
}

// Success reports a successful attempt on the protected path.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.successes++
	b.consecutive = 0
	if b.state == HalfOpen {
		b.state = Closed
		b.probing = false
		b.closes++
	}
}

// Failure reports a failed attempt on the protected path.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case HalfOpen:
		// The probe failed: straight back to Open for another cooldown.
		b.state = Open
		b.openedAt = b.now()
		b.probing = false
		b.consecutive = 0
		b.trips++
	case Closed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.state = Open
			b.openedAt = b.now()
			b.consecutive = 0
			b.trips++
		}
	}
	// Open: a straggler attempt admitted before the trip reported late;
	// it changes nothing.
}

// State returns the current automaton state (Open may lazily become
// HalfOpen only on the next Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns a snapshot of the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State: b.state, Trips: b.trips, HalfOpens: b.halfOpens, Closes: b.closes,
		Rejected: b.rejected, Failures: b.failures, Successes: b.successes,
	}
}
