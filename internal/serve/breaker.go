package serve

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int32

const (
	// Closed: traffic flows; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: traffic is rejected (routed to the fallback) until the
	// cooldown elapses.
	Open
	// HalfOpen: the cooldown elapsed and exactly one probe request is
	// in flight; its outcome closes or re-opens the circuit.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerStats is a snapshot of the breaker's counters.
type BreakerStats struct {
	State     BreakerState
	Trips     int64 // Closed/HalfOpen → Open transitions
	HalfOpens int64 // Open → HalfOpen transitions (probe admitted)
	Closes    int64 // HalfOpen → Closed transitions (probe succeeded)
	Rejected  int64 // Allow() == false while Open or probing
	Failures  int64 // Failure() calls
	Successes int64 // Success() calls
}

// Breaker is a consecutive-failure circuit breaker. Closed, it admits
// everything and trips to Open after `threshold` consecutive failures;
// Open, it rejects until `cooldown` has elapsed, then admits exactly
// one probe (HalfOpen); the probe's success closes the circuit, its
// failure re-opens it for another cooldown. All methods are safe for
// concurrent use.
//
// The caller contract is: if Allow returns true, report the outcome of
// exactly that one attempt with Success or Failure; if it returns
// false, route to the fallback and report nothing.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	state       BreakerState
	consecutive int
	openedAt    time.Time
	probing     bool // a HalfOpen probe is in flight

	// onTransition, when set, is invoked under mu at every state
	// change (see OnTransition).
	onTransition func(from, to BreakerState)

	// Counters are obs objects (updated under mu) so a registry-backed
	// breaker serves /metrics from the same memory Stats reads.
	trips     *obs.Counter
	halfOpens *obs.Counter
	closes    *obs.Counter
	rejected  *obs.Counter
	failures  *obs.Counter
	successes *obs.Counter
}

// OnTransition registers a hook invoked at every state change with the
// old and new state, exactly once per transition (it runs under the
// breaker's lock, so it sees transitions in order and must not call
// back into the breaker). The serving stack uses it to emit
// breaker_transition decision events whose count reconciles exactly
// with the trips/half-opens/closes counters.
func (b *Breaker) OnTransition(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.onTransition = fn
	b.mu.Unlock()
}

// transitionLocked records a state change and fires the hook. Callers
// hold b.mu.
func (b *Breaker) transitionLocked(to BreakerState) {
	from := b.state
	b.state = to
	if b.onTransition != nil && from != to {
		b.onTransition(from, to)
	}
}

// NewBreaker returns a closed breaker tripping after threshold
// consecutive failures (min 1) and cooling down for cooldown (min 1ms)
// before probing.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return NewBreakerObs(threshold, cooldown, nil)
}

// NewBreakerObs is NewBreaker with the breaker's counters and a state
// gauge registered in reg (metric families spmmrr_breaker_*). A nil
// reg keeps the counters private.
func NewBreakerObs(threshold int, cooldown time.Duration, reg *obs.Registry) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Millisecond
	}
	b := &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
	if reg == nil {
		b.trips, b.halfOpens, b.closes = &obs.Counter{}, &obs.Counter{}, &obs.Counter{}
		b.rejected, b.failures, b.successes = &obs.Counter{}, &obs.Counter{}, &obs.Counter{}
		return b
	}
	b.trips = reg.Counter("spmmrr_breaker_trips_total",
		"Transitions into the Open state.")
	b.halfOpens = reg.Counter("spmmrr_breaker_half_opens_total",
		"Cooldown expiries that admitted a half-open probe.")
	b.closes = reg.Counter("spmmrr_breaker_closes_total",
		"Successful probes that closed the circuit.")
	b.rejected = reg.Counter("spmmrr_breaker_rejected_total",
		"Attempts rejected while Open or while a probe was in flight.")
	b.failures = reg.Counter("spmmrr_breaker_failures_total",
		"Failure reports from the protected path.")
	b.successes = reg.Counter("spmmrr_breaker_successes_total",
		"Success reports from the protected path.")
	reg.GaugeFunc("spmmrr_breaker_state",
		"Breaker automaton state (0=closed, 1=open, 2=half-open).",
		func() float64 { return float64(b.State()) })
	return b
}

// Allow reports whether the protected path may serve this attempt.
// While Open it returns false until the cooldown elapses, at which
// point the calling attempt becomes the half-open probe (true); while
// a probe is in flight every other attempt is rejected.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.transitionLocked(HalfOpen)
			b.probing = true
			b.halfOpens.Inc()
			return true
		}
		b.rejected.Inc()
		return false
	default: // HalfOpen
		if b.probing {
			b.rejected.Inc()
			return false
		}
		// The previous probe resolved but a racer arrived between its
		// report and the state change becoming visible; admit as a new
		// probe.
		b.probing = true
		return true
	}
}

// Success reports a successful attempt on the protected path.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.successes.Inc()
	b.consecutive = 0
	if b.state == HalfOpen {
		b.transitionLocked(Closed)
		b.probing = false
		b.closes.Inc()
	}
}

// Failure reports a failed attempt on the protected path.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures.Inc()
	switch b.state {
	case HalfOpen:
		// The probe failed: straight back to Open for another cooldown.
		b.transitionLocked(Open)
		b.openedAt = b.now()
		b.probing = false
		b.consecutive = 0
		b.trips.Inc()
	case Closed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.transitionLocked(Open)
			b.openedAt = b.now()
			b.consecutive = 0
			b.trips.Inc()
		}
	}
	// Open: a straggler attempt admitted before the trip reported late;
	// it changes nothing.
}

// State returns the current automaton state (Open may lazily become
// HalfOpen only on the next Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns a snapshot of the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State: b.state, Trips: b.trips.Value(), HalfOpens: b.halfOpens.Value(), Closes: b.closes.Value(),
		Rejected: b.rejected.Value(), Failures: b.failures.Value(), Successes: b.successes.Value(),
	}
}
