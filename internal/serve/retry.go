package serve

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"

	"repro/internal/obs"
)

// RetryPolicy bounds a retry loop: at most MaxAttempts tries, sleeping
// an exponentially growing, fully jittered delay between them. Full
// jitter (delay drawn uniformly from [0, base·2ⁿ), capped at MaxDelay)
// decorrelates retry storms: when many requests fail together — the
// exact situation a fault burst creates — their retries spread out
// instead of hammering the recovering path in lockstep.
type RetryPolicy struct {
	MaxAttempts int           // total attempts, including the first (min 1)
	BaseDelay   time.Duration // backoff scale for attempt 1 (min 1µs when retrying)
	MaxDelay    time.Duration // cap on any single delay (0 = 100·BaseDelay)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Microsecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * p.BaseDelay
	}
	return p
}

// backoff returns the jittered sleep before retry attempt n (1-based
// count of completed attempts).
func (p RetryPolicy) backoff(n int) time.Duration {
	ceil := p.BaseDelay << min(n-1, 20)
	if ceil > p.MaxDelay || ceil <= 0 {
		ceil = p.MaxDelay
	}
	return time.Duration(rand.Int64N(int64(ceil) + 1))
}

// Retry runs f until it succeeds, returns a non-transient error, or
// the policy's attempts are exhausted — whichever comes first — and
// reports the number of *re*tries performed (0 when the first attempt
// settled it) alongside f's final error. The context bounds the whole
// loop: its cancellation cuts a backoff sleep short and is returned
// immediately, and a context error from f itself is never retried
// (retrying cannot outlive the caller's deadline).
func Retry(ctx context.Context, p RetryPolicy, transient func(error) bool, f func(attempt int) error) (retries int, err error) {
	p = p.withDefaults()
	for attempt := 1; ; attempt++ {
		err = f(attempt)
		if err == nil || attempt >= p.MaxAttempts ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			!transient(err) {
			return attempt - 1, err
		}
		sp := obs.TraceFrom(ctx).StartSpan("retry_backoff")
		cerr := sleep(ctx, p.backoff(attempt))
		sp.End()
		if cerr != nil {
			return attempt - 1, cerr
		}
	}
}

// sleep waits for d or until ctx is done, returning ctx's error in the
// latter case.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
