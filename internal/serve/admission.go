// Package serve holds the serving-resilience building blocks composed
// by the top-level Server: weighted admission control with a bounded
// FIFO wait queue, a circuit breaker, and retry with exponential
// backoff and jitter. The package is deliberately free of any matrix
// or pipeline types — it bounds and routes *work*, whatever the work
// is — so each piece is testable in isolation and reusable by any
// entry point that needs server-grade behaviour.
package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrOverloaded is the sentinel matched (with errors.Is) by every
// load-shedding rejection. The concrete error is an *Overload carrying
// the queue-depth statistics at the moment of rejection.
var ErrOverloaded = errors.New("serve: overloaded")

// ErrClosed is returned by Acquire after Close: the admission gate no
// longer admits work.
var ErrClosed = errors.New("serve: admission gate closed")

// Overload is the typed load-shedding error: the request was rejected
// because the in-flight capacity was exhausted and the wait queue was
// full. It wraps ErrOverloaded (test with errors.Is) and reports the
// gate's state at rejection time so callers can export or log it.
type Overload struct {
	InFlight int   // requests currently executing
	InUse    int64 // weight units currently held
	Capacity int64 // total weight capacity
	QueueLen int   // waiters queued at rejection time
	QueueCap int   // wait-queue bound
}

func (e *Overload) Error() string {
	return fmt.Sprintf("serve: overloaded (%d in flight, %d/%d weight, queue %d/%d)",
		e.InFlight, e.InUse, e.Capacity, e.QueueLen, e.QueueCap)
}

// Is makes errors.Is(err, ErrOverloaded) true for *Overload.
func (e *Overload) Is(target error) bool { return target == ErrOverloaded }

// AdmissionStats is a snapshot of the gate's counters and gauges.
type AdmissionStats struct {
	Admitted int64 // requests admitted (immediately or after queueing)
	Shed     int64 // rejected with *Overload (queue full)
	Expired  int64 // left the queue on context deadline/cancellation
	InFlight int   // currently admitted requests
	InUse    int64 // weight units currently held
	Capacity int64
	QueueLen int // currently queued waiters
	QueueCap int
}

// waiter is one queued Acquire. ready is buffered so a grant never
// blocks the releasing goroutine; state is written under the gate's
// lock and disambiguates the grant / close / cancellation races.
type waiter struct {
	weight int64
	ready  chan struct{}
	state  waiterState
}

type waiterState uint8

const (
	waiting  waiterState = iota
	granted              // capacity handed over; holder must Release
	rejected             // woken by Close without a grant
)

// Admission is a weighted semaphore with a bounded FIFO wait queue.
// A request that fits runs immediately; one that does not waits in
// arrival order (no barging: a small request cannot overtake a large
// one, so heavy requests cannot starve). When the queue is full the
// request is shed instantly with *Overload — goroutines never pile up
// behind an overloaded server, they get a typed error to act on.
type Admission struct {
	mu       sync.Mutex
	capacity int64
	queueCap int
	inUse    int64
	inFlight int
	queue    *list.List // of *waiter, front = oldest
	closed   bool
	idle     []chan struct{} // closed when the gate drains empty

	// Counters are obs objects (updated under mu, read atomically), so
	// a registry-backed gate exposes the very objects Stats reads —
	// /metrics and AdmissionStats can never disagree.
	admitted *obs.Counter
	shed     *obs.Counter
	expired  *obs.Counter
	waitHist *obs.Histogram // time from Acquire to admission
}

// NewAdmission returns a gate with the given weight capacity and wait
// queue bound. capacity < 1 is raised to 1; queueCap < 0 is treated as
// 0 (shed immediately when saturated).
func NewAdmission(capacity int64, queueCap int) *Admission {
	return NewAdmissionObs(capacity, queueCap, nil)
}

// NewAdmissionObs is NewAdmission with the gate's counters, gauges,
// and admission-wait histogram registered in reg (metric families
// spmmrr_admission_*). A nil reg keeps the counters private.
func NewAdmissionObs(capacity int64, queueCap int, reg *obs.Registry) *Admission {
	if capacity < 1 {
		capacity = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	a := &Admission{capacity: capacity, queueCap: queueCap, queue: list.New()}
	if reg == nil {
		a.admitted, a.shed, a.expired = &obs.Counter{}, &obs.Counter{}, &obs.Counter{}
		return a
	}
	a.admitted = reg.Counter("spmmrr_admission_admitted_total",
		"Requests admitted through the gate (immediately or after queueing).")
	a.shed = reg.Counter("spmmrr_admission_shed_total",
		"Requests shed with an overload error because the wait queue was full.")
	a.expired = reg.Counter("spmmrr_admission_expired_total",
		"Requests that left the gate on context expiry or shutdown before running.")
	a.waitHist = reg.Histogram("spmmrr_admission_wait_seconds",
		"Time from Acquire to admission, including queueing.", obs.LatencyBuckets())
	reg.GaugeFunc("spmmrr_admission_in_flight",
		"Requests currently admitted and executing.",
		func() float64 { return float64(a.Stats().InFlight) })
	reg.GaugeFunc("spmmrr_admission_weight_in_use",
		"Weight units currently held by admitted requests.",
		func() float64 { return float64(a.Stats().InUse) })
	reg.GaugeFunc("spmmrr_admission_queue_depth",
		"Requests currently waiting in the FIFO queue.",
		func() float64 { return float64(a.Stats().QueueLen) })
	reg.Gauge("spmmrr_admission_weight_capacity",
		"Total weight capacity of the gate.").Set(capacity)
	reg.Gauge("spmmrr_admission_queue_capacity",
		"Bound on the FIFO wait queue.").Set(int64(queueCap))
	return a
}

// Acquire admits a request of the given weight, blocking in FIFO order
// while the gate is saturated. Weights are clamped to [1, capacity] so
// an outsized request degrades to "needs the whole gate" instead of
// deadlocking. It returns nil on admission (pair with Release),
// *Overload when the wait queue is full, ctx.Err() when the context
// expires while queued, and ErrClosed after Close.
func (a *Admission) Acquire(ctx context.Context, weight int64) error {
	if weight < 1 {
		weight = 1
	}
	if weight > a.capacity {
		weight = a.capacity
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	start := time.Now()
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrClosed
	}
	if a.inUse+weight <= a.capacity && a.queue.Len() == 0 {
		a.inUse += weight
		a.inFlight++
		a.admitted.Inc()
		a.mu.Unlock()
		a.waitHist.ObserveSince(start)
		return nil
	}
	if a.queue.Len() >= a.queueCap {
		a.shed.Inc()
		ov := &Overload{
			InFlight: a.inFlight, InUse: a.inUse, Capacity: a.capacity,
			QueueLen: a.queue.Len(), QueueCap: a.queueCap,
		}
		a.mu.Unlock()
		return ov
	}
	w := &waiter{weight: weight, ready: make(chan struct{}, 1)}
	el := a.queue.PushBack(w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		a.mu.Lock()
		defer a.mu.Unlock()
		if w.state == rejected { // woken by Close, not by a grant
			return ErrClosed
		}
		// Admission is counted here — by the waiter that will actually
		// run — not at grant time in releaseLocked, so the counter is
		// monotone even when a grant races a cancellation.
		a.admitted.Inc()
		a.waitHist.ObserveSince(start)
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		defer a.mu.Unlock()
		switch w.state {
		case granted:
			// The grant raced the cancellation: give the capacity back
			// (waking successors) and report the cancellation. The
			// request was never counted admitted (see above).
			a.releaseLocked(weight)
			a.expired.Inc()
		case rejected: // Close got here first; already counted
			return ErrClosed
		default:
			a.queue.Remove(el)
			a.expired.Inc()
		}
		return ctx.Err()
	}
}

// Release returns weight units taken by a successful Acquire. The
// weight must match the clamped weight Acquire charged (callers that
// pass the same value they passed to Acquire are always correct).
func (a *Admission) Release(weight int64) {
	if weight < 1 {
		weight = 1
	}
	if weight > a.capacity {
		weight = a.capacity
	}
	a.mu.Lock()
	a.releaseLocked(weight)
	a.mu.Unlock()
}

// releaseLocked hands freed capacity to queued waiters in FIFO order
// and signals idleness when the gate empties. Caller holds a.mu.
func (a *Admission) releaseLocked(weight int64) {
	a.inUse -= weight
	a.inFlight--
	if a.inUse < 0 { // defensive: mismatched Release
		a.inUse = 0
	}
	if a.inFlight < 0 {
		a.inFlight = 0
	}
	for a.queue.Len() > 0 {
		w := a.queue.Front().Value.(*waiter)
		if a.inUse+w.weight > a.capacity {
			break // strict FIFO: successors must not overtake
		}
		a.queue.Remove(a.queue.Front())
		a.inUse += w.weight
		a.inFlight++
		w.state = granted
		w.ready <- struct{}{}
	}
	if a.inUse == 0 && a.queue.Len() == 0 {
		for _, ch := range a.idle {
			close(ch)
		}
		a.idle = nil
	}
}

// Close stops admitting: queued waiters are woken with ErrClosed-like
// rejection (they observe a closed gate via their context or the next
// Acquire), future Acquires fail fast, and in-flight requests are left
// to finish — pair with Drain to wait for them.
func (a *Admission) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.closed = true
	// Reject everyone still queued: draining means finishing what is
	// *running*, not starting more. The waiter wakes via its ready
	// channel and observes the rejected state.
	for a.queue.Len() > 0 {
		w := a.queue.Front().Value.(*waiter)
		a.queue.Remove(a.queue.Front())
		a.expired.Inc()
		w.state = rejected
		w.ready <- struct{}{}
	}
	if a.inUse == 0 {
		for _, ch := range a.idle {
			close(ch)
		}
		a.idle = nil
	}
}

// Drain blocks until every admitted request has released (and the
// queue is empty) or ctx expires.
func (a *Admission) Drain(ctx context.Context) error {
	a.mu.Lock()
	if a.inUse == 0 && a.queue.Len() == 0 {
		a.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	a.idle = append(a.idle, ch)
	a.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// OverlayWeight scales an admission weight for a request that will be
// served through a live-mutation overlay: the overlay rows are computed
// serially on top of the base kernel pass, so a mutated tenant consumes
// proportionally more of the gate per request. The surcharge is the
// overlay's nonzero fraction of the base, rounded up, so a tiny overlay
// costs one extra unit and an overlay comparable to the base doubles
// the weight. weight passes through unchanged when there is no overlay.
func OverlayWeight(weight, overlayNNZ, baseNNZ int64) int64 {
	if overlayNNZ <= 0 || weight <= 0 {
		return weight
	}
	if baseNNZ <= 0 {
		return 2 * weight
	}
	return weight + (weight*overlayNNZ+baseNNZ-1)/baseNNZ
}

// Stats returns a snapshot of the gate's counters and gauges.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		Admitted: a.admitted.Value(), Shed: a.shed.Value(), Expired: a.expired.Value(),
		InFlight: a.inFlight, InUse: a.inUse, Capacity: a.capacity,
		QueueLen: a.queue.Len(), QueueCap: a.queueCap,
	}
}
