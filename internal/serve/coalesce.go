package serve

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
)

// Coalescer batches concurrent requests for the same downstream
// resource into one execution. The first arrival opens a batch and
// arms the coalescing window; requests landing inside the window join
// the batch; when the window elapses — or the batch hits its operand
// cap — the whole batch runs as a single call to the run function.
// Like the rest of this package it is generic over the work: T is
// whatever per-request operand the caller's run function consumes
// (the Server uses one Y/X operand pair per request, so a batch is
// one wide column-stacked kernel pass).
//
// Per-waiter contract:
//
//   - Every waiter keeps its own context. A waiter whose context dies
//     *before* the batch launches is excised: it returns ctx.Err()
//     immediately and its operand is dropped from the batch without
//     poisoning the other waiters.
//   - Once the batch has launched, a waiter rides to completion even
//     if its context dies — its operand is already being written by
//     the running batch, so returning early would hand the caller a
//     buffer the batch is still mutating. All waiters of a launched
//     batch share the batch's outcome.
//
// The zero Coalescer is not usable; construct with NewCoalescer.
type Coalescer[T any] struct {
	window   time.Duration
	maxOps   int
	run      func([]T) error
	validate func(T) error // optional per-operand launch-time gate

	mu  sync.Mutex
	cur *cbatch[T]

	leads   *obs.Counter
	joins   *obs.Counter
	excised *obs.Counter
	invalid *obs.Counter
	sizes   *obs.Histogram // operands per launched batch (after excision)
}

// cbatch is one coalescing batch. items/dead are guarded by the
// coalescer's mu until launch; err is written before done closes, so
// waiters reading err after <-done observe it without locking.
type cbatch[T any] struct {
	items    []T
	dead     []bool
	opErr    []error // per-slot validate failure, set at launch under mu
	launched bool
	err      error
	done     chan struct{}
	timer    *time.Timer
}

// CoalescerStats is a snapshot of a coalescer's counters.
type CoalescerStats struct {
	Leads   int64 // batches opened (first arrival in a window)
	Joins   int64 // requests that joined an open batch
	Excised int64 // waiters removed pre-launch by context expiry
	Invalid int64 // operands rejected at launch by the validate hook
}

// NewCoalescer returns a coalescer batching up to maxOps requests per
// window. window <= 0 disables coalescing (every request runs alone,
// immediately); maxOps < 1 means an unbounded batch (window-only).
func NewCoalescer[T any](window time.Duration, maxOps int, run func([]T) error) *Coalescer[T] {
	return NewCoalescerObs(window, maxOps, run, nil)
}

// NewCoalescerObs is NewCoalescer with the coalescer's counters and
// batch-size histogram registered in reg (metric families
// spmmrr_coalesce_*). A nil reg keeps the counters private.
func NewCoalescerObs[T any](window time.Duration, maxOps int, run func([]T) error, reg *obs.Registry) *Coalescer[T] {
	c := &Coalescer[T]{window: window, maxOps: maxOps, run: run}
	if reg == nil {
		c.leads, c.joins, c.excised, c.invalid = &obs.Counter{}, &obs.Counter{}, &obs.Counter{}, &obs.Counter{}
		return c
	}
	c.leads = reg.Counter("spmmrr_coalesce_batches_total",
		"Coalescing batches opened (one per window with traffic).")
	c.joins = reg.Counter("spmmrr_coalesce_joins_total",
		"Requests that joined an already-open coalescing batch.")
	c.excised = reg.Counter("spmmrr_coalesce_excised_total",
		"Waiters excised from a batch pre-launch by context expiry.")
	c.invalid = reg.Counter("spmmrr_coalesce_invalid_total",
		"Operands rejected at batch launch by the validate hook.")
	c.sizes = reg.Histogram("spmmrr_coalesce_batch_ops",
		"Operands per launched coalescing batch (after excision).",
		obs.ExponentialBuckets(1, 2, 8))
	return c
}

// SetValidate installs a per-operand gate evaluated at batch launch,
// under the same lock that seals the batch: a mutation that lands
// between submit and launch (e.g. a live matrix changing shape) is
// caught at the last possible moment, the stale operand is excised with
// its own error, and the rest of the batch runs untouched. Call before
// the coalescer receives traffic; a nil fn disables the gate.
func (c *Coalescer[T]) SetValidate(fn func(T) error) {
	c.mu.Lock()
	c.validate = fn
	c.mu.Unlock()
}

// Stats returns a snapshot of the coalescer's counters.
func (c *Coalescer[T]) Stats() CoalescerStats {
	return CoalescerStats{
		Leads:   c.leads.Value(),
		Joins:   c.joins.Value(),
		Excised: c.excised.Value(),
		Invalid: c.invalid.Value(),
	}
}

// Do submits one operand and blocks until its batch has run (or the
// caller's context dies pre-launch). The error is the batch's: nil
// when the batched run succeeded, the run's error for every waiter of
// a failed batch, or ctx.Err() for an excised waiter.
func (c *Coalescer[T]) Do(ctx context.Context, item T) error {
	if c.window <= 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		v := c.validate
		c.mu.Unlock()
		if v != nil {
			if err := v(item); err != nil {
				c.invalid.Inc()
				return err
			}
		}
		c.leads.Inc()
		c.sizes.Observe(1)
		return c.run([]T{item})
	}
	c.mu.Lock()
	b := c.cur
	var idx int
	full := false
	if b == nil {
		b = &cbatch[T]{done: make(chan struct{})}
		c.cur = b
		// The window timer launches the batch; a full batch launches
		// early via the filling waiter below. launch() resolves the race
		// (first in wins) and stops the loser.
		b.timer = time.AfterFunc(c.window, func() { c.launch(b) })
		c.leads.Inc()
	} else {
		c.joins.Inc()
	}
	idx = len(b.items)
	b.items = append(b.items, item)
	b.dead = append(b.dead, false)
	if c.maxOps > 0 && len(b.items) >= c.maxOps {
		// Detach under the lock so no further request can join, then
		// launch synchronously: the waiter that filled the batch pays
		// the launch, not a timer goroutine.
		c.cur = nil
		full = true
	}
	c.mu.Unlock()
	if full {
		c.launch(b)
	}

	select {
	case <-b.done:
		return b.waiterErr(idx)
	case <-ctx.Done():
		c.mu.Lock()
		if !b.launched {
			// Pre-launch: excise this waiter. Its slot is marked dead and
			// skipped at launch; the batch itself is unharmed.
			b.dead[idx] = true
			c.excised.Inc()
			c.mu.Unlock()
			return ctx.Err()
		}
		c.mu.Unlock()
		// Launched: the batch is writing into this waiter's operand.
		// Ride to completion and report the batch's outcome.
		<-b.done
		return b.waiterErr(idx)
	}
}

// waiterErr is the outcome for the waiter holding slot idx: its own
// validate failure when the launch-time gate rejected it, otherwise the
// batch's shared result. Safe to call only after <-done (opErr and err
// are sealed before done closes).
func (b *cbatch[T]) waiterErr(idx int) error {
	if idx < len(b.opErr) && b.opErr[idx] != nil {
		return b.opErr[idx]
	}
	return b.err
}

// launch runs a batch exactly once: the timer path and the
// batch-full path race here, first in wins. Live operands are
// compacted under the lock; the run executes outside it.
func (c *Coalescer[T]) launch(b *cbatch[T]) {
	c.mu.Lock()
	if b.launched {
		c.mu.Unlock()
		return
	}
	b.launched = true
	if c.cur == b {
		c.cur = nil
	}
	// Launch-time validation, under the same lock that seals the batch:
	// no mutation can slip between the check and the run's snapshot of
	// the live slots. A rejected operand fails alone — its slot records
	// the error and is compacted away with the dead ones.
	if v := c.validate; v != nil {
		for i := range b.items {
			if b.dead[i] {
				continue
			}
			if err := v(b.items[i]); err != nil {
				if b.opErr == nil {
					b.opErr = make([]error, len(b.items))
				}
				b.opErr[i] = err
				b.dead[i] = true
				c.invalid.Inc()
			}
		}
	}
	n := 0
	for i := range b.items {
		if !b.dead[i] {
			b.items[n] = b.items[i]
			n++
		}
	}
	live := b.items[:n]
	c.mu.Unlock()
	if b.timer != nil {
		b.timer.Stop()
	}
	if n > 0 {
		c.sizes.Observe(float64(n))
		b.err = c.run(live)
	}
	close(b.done)
}
