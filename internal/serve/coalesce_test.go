package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// batchRecorder collects the batches a coalescer launches.
type batchRecorder struct {
	mu      sync.Mutex
	batches [][]int
	err     error
}

func (r *batchRecorder) run(items []int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := append([]int(nil), items...)
	r.batches = append(r.batches, cp)
	return r.err
}

func (r *batchRecorder) snapshot() [][]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]int(nil), r.batches...)
}

// TestCoalescerWindowBatches: concurrent arrivals inside one window
// coalesce into a single run.
func TestCoalescerWindowBatches(t *testing.T) {
	rec := &batchRecorder{}
	c := NewCoalescer(200*time.Millisecond, 0, rec.run)
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Do(context.Background(), i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	batches := rec.snapshot()
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	if total != n {
		t.Fatalf("processed %d operands, want %d", total, n)
	}
	if len(batches) != 1 {
		t.Fatalf("a 200ms window split %d concurrent arrivals into %d batches", n, len(batches))
	}
	st := c.Stats()
	if st.Leads != 1 || st.Joins != int64(n-1) {
		t.Fatalf("stats = %+v, want 1 lead and %d joins", st, n-1)
	}
}

// TestCoalescerMaxOpsLaunchesEarly: a full batch does not wait out the
// window — the filling waiter launches it synchronously.
func TestCoalescerMaxOpsLaunchesEarly(t *testing.T) {
	rec := &batchRecorder{}
	c := NewCoalescer(time.Hour, 4, rec.run)
	const n = 8
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.Do(context.Background(), i); err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > time.Minute {
		t.Fatalf("full batches waited for the window (%v)", elapsed)
	}
	total := 0
	for _, b := range rec.snapshot() {
		if len(b) > 4 {
			t.Fatalf("batch of %d exceeds maxOps 4", len(b))
		}
		total += len(b)
	}
	if total != n {
		t.Fatalf("processed %d operands, want %d", total, n)
	}
}

// TestCoalescerDisabled: window <= 0 runs every request alone,
// immediately, with no timer in the path.
func TestCoalescerDisabled(t *testing.T) {
	rec := &batchRecorder{}
	c := NewCoalescer(0, 0, rec.run)
	for i := 0; i < 3; i++ {
		if err := c.Do(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	batches := rec.snapshot()
	if len(batches) != 3 {
		t.Fatalf("disabled coalescer ran %d batches, want 3 solo runs", len(batches))
	}
	for _, b := range batches {
		if len(b) != 1 {
			t.Fatalf("disabled coalescer batched %d operands", len(b))
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Do(ctx, 9); err != context.Canceled {
		t.Fatalf("cancelled solo Do = %v, want context.Canceled", err)
	}
}

// TestCoalescerExcisePreLaunch: a waiter whose context dies before
// launch returns its context error promptly, and the batch runs with
// only the surviving operands.
func TestCoalescerExcisePreLaunch(t *testing.T) {
	rec := &batchRecorder{}
	c := NewCoalescer(400*time.Millisecond, 0, rec.run)
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	errA := make(chan error, 1)
	go func() { errA <- c.Do(ctxA, 1) }()
	waitFor(t, func() bool { return c.Stats().Leads == 1 })
	errB := make(chan error, 1)
	go func() { errB <- c.Do(context.Background(), 2) }()
	waitFor(t, func() bool { return c.Stats().Joins == 1 })
	cancelA()
	select {
	case err := <-errA:
		if err != context.Canceled {
			t.Fatalf("excised waiter = %v, want context.Canceled", err)
		}
	case <-time.After(300 * time.Millisecond):
		t.Fatal("excised waiter did not return before the window elapsed")
	}
	if err := <-errB; err != nil {
		t.Fatalf("surviving waiter: %v", err)
	}
	batches := rec.snapshot()
	if len(batches) != 1 || len(batches[0]) != 1 || batches[0][0] != 2 {
		t.Fatalf("batch after excision = %v, want [[2]]", batches)
	}
	if st := c.Stats(); st.Excised != 1 {
		t.Fatalf("excised counter = %d, want 1", st.Excised)
	}
}

// TestCoalescerEmptyBatchSkipsRun: if every waiter is excised, the
// window fires on an empty batch and the run function never executes.
func TestCoalescerEmptyBatchSkipsRun(t *testing.T) {
	rec := &batchRecorder{}
	c := NewCoalescer(50*time.Millisecond, 0, rec.run)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- c.Do(ctx, 1) }()
	waitFor(t, func() bool { return c.Stats().Leads == 1 })
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("excised lead = %v, want context.Canceled", err)
	}
	time.Sleep(120 * time.Millisecond) // let the window fire on the empty batch
	if batches := rec.snapshot(); len(batches) != 0 {
		t.Fatalf("empty batch still ran: %v", batches)
	}
}

// TestCoalescerErrorFansOut: a failed batch reports the same error to
// every waiter.
func TestCoalescerErrorFansOut(t *testing.T) {
	sentinel := errors.New("kernel exploded")
	rec := &batchRecorder{err: sentinel}
	c := NewCoalescer(100*time.Millisecond, 0, rec.run)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Do(context.Background(), i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != sentinel {
			t.Fatalf("waiter %d got %v, want the batch error", i, err)
		}
	}
}

// TestCoalescerPostLaunchCancelRides: once the batch has launched, a
// cancelled waiter must NOT return while the run is still writing its
// operand — it rides to completion and reports the batch's outcome.
func TestCoalescerPostLaunchCancelRides(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	c := NewCoalescer(10*time.Millisecond, 0, func(items []int) error {
		close(entered)
		<-release
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- c.Do(ctx, 1) }()
	<-entered
	cancel()
	select {
	case err := <-errCh:
		t.Fatalf("waiter returned %v while its batch was still running", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-errCh; err != nil {
		t.Fatalf("riding waiter = %v, want the batch's nil", err)
	}
}

// TestCoalescerChaos hammers the coalescer with concurrent waiters and
// aggressive deadlines; run under -race this is the memory-model check
// for the join/excise/launch races. Every operand must be either
// processed exactly once or excised exactly once.
func TestCoalescerChaos(t *testing.T) {
	var mu sync.Mutex
	processed := map[int]int{}
	c := NewCoalescer(500*time.Microsecond, 8, func(items []int) error {
		mu.Lock()
		for _, it := range items {
			processed[it]++
		}
		mu.Unlock()
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	const n = 256
	var wg sync.WaitGroup
	excised := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%3 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%7)*200*time.Microsecond)
				defer cancel()
			}
			err := c.Do(ctx, i)
			switch err {
			case nil:
			case context.DeadlineExceeded, context.Canceled:
				excised[i] = true
			default:
				t.Errorf("waiter %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		got := processed[i]
		if excised[i] {
			if got != 0 {
				t.Fatalf("operand %d was excised yet processed %d times", i, got)
			}
		} else if got != 1 {
			t.Fatalf("operand %d processed %d times, want exactly once", i, got)
		}
	}
	st := c.Stats()
	if st.Leads+st.Joins != n {
		t.Fatalf("leads %d + joins %d != %d submissions", st.Leads, st.Joins, n)
	}
	_ = fmt.Sprintf("%+v", st)
}
