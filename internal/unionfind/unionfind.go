// Package unionfind implements the disjoint-set forest used by the
// clustering algorithm (Alg 3 of the paper). It follows the paper's
// variant exactly: path halving during Find (Alg 3 line 9's "update of the
// parents"), union by cluster size with "merge the smaller cluster into
// the larger one", and tie-breaking toward the smaller representative
// index so the representing-row rule of §3.2 holds ("if the clusters are
// of the same size, choose the row with the smaller index").
package unionfind

import "fmt"

// Forest is a disjoint-set forest over the integers [0, n).
type Forest struct {
	parent []int32
	size   []int32
	sets   int
}

// New returns a forest of n singleton sets.
func New(n int) *Forest {
	f := &Forest{
		parent: make([]int32, n),
		size:   make([]int32, n),
		sets:   n,
	}
	for i := range f.parent {
		f.parent[i] = int32(i)
		f.size[i] = 1
	}
	return f
}

// Len returns the number of elements in the forest.
func (f *Forest) Len() int { return len(f.parent) }

// Sets returns the current number of disjoint sets.
func (f *Forest) Sets() int { return f.sets }

// Find returns the representative of x's set, applying path halving:
// every other node on the path is re-pointed at its grandparent, exactly
// the cluster_id[i] = cluster_id[cluster_id[i]] update in Alg 3.
func (f *Forest) Find(x int32) int32 {
	for f.parent[x] != x {
		f.parent[x] = f.parent[f.parent[x]]
		x = f.parent[x]
	}
	return x
}

// IsRoot reports whether x is currently the representative of its set
// (Alg 3's "i == cluster_id[i]" test) without mutating the forest.
func (f *Forest) IsRoot(x int32) bool { return f.parent[x] == x }

// Size returns the size of the set containing x.
func (f *Forest) Size(x int32) int32 { return f.size[f.Find(x)] }

// Union merges the sets containing a and b and returns the representative
// of the merged set. The smaller set is merged into the larger; on a size
// tie the smaller representative index wins (the paper's representing-row
// rule). If a and b are already in the same set it returns their root
// unchanged.
func (f *Forest) Union(a, b int32) int32 {
	ra, rb := f.Find(a), f.Find(b)
	if ra == rb {
		return ra
	}
	// Keep ra as the survivor: larger size, or smaller index on a tie.
	if f.size[ra] < f.size[rb] || (f.size[ra] == f.size[rb] && ra > rb) {
		ra, rb = rb, ra
	}
	f.parent[rb] = ra
	f.size[ra] += f.size[rb]
	f.sets--
	return ra
}

// Members returns, for every current root, the sorted-by-insertion list of
// elements in its set. Roots are keyed by representative index. Intended
// for emitting clusters at the end of Alg 3 ("output the row indices
// cluster by cluster").
func (f *Forest) Members() map[int32][]int32 {
	m := make(map[int32][]int32, f.sets)
	for i := range f.parent {
		r := f.Find(int32(i))
		m[r] = append(m[r], int32(i))
	}
	return m
}

// Validate checks internal invariants (sizes sum to n at the roots, parent
// pointers in range). It is used by property tests.
func (f *Forest) Validate() error {
	total := int32(0)
	roots := 0
	for i := range f.parent {
		p := f.parent[i]
		if p < 0 || int(p) >= len(f.parent) {
			return fmt.Errorf("unionfind: parent[%d]=%d out of range", i, p)
		}
		if p == int32(i) {
			roots++
			total += f.size[i]
		}
	}
	if roots != f.sets {
		return fmt.Errorf("unionfind: %d roots but sets=%d", roots, f.sets)
	}
	if int(total) != len(f.parent) {
		return fmt.Errorf("unionfind: root sizes sum to %d, want %d", total, len(f.parent))
	}
	return nil
}
