package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	f := New(5)
	if f.Len() != 5 || f.Sets() != 5 {
		t.Fatalf("Len=%d Sets=%d", f.Len(), f.Sets())
	}
	for i := int32(0); i < 5; i++ {
		if !f.IsRoot(i) || f.Find(i) != i || f.Size(i) != 1 {
			t.Fatalf("element %d not a singleton root", i)
		}
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnionBySize(t *testing.T) {
	f := New(6)
	// Build {0,1,2} rooted at 0 (ties keep smaller index).
	if r := f.Union(0, 1); r != 0 {
		t.Fatalf("Union(0,1) root = %d, want 0 (tie -> smaller index)", r)
	}
	if r := f.Union(0, 2); r != 0 {
		t.Fatalf("Union(0,2) root = %d, want 0 (larger set wins)", r)
	}
	// Merging singleton 5 into the size-3 cluster keeps root 0 even
	// though 5 > 0 was the first argument.
	if r := f.Union(5, 0); r != 0 {
		t.Fatalf("Union(5,0) root = %d, want 0", r)
	}
	if f.Size(5) != 4 {
		t.Fatalf("Size = %d, want 4", f.Size(5))
	}
	if f.Sets() != 3 {
		t.Fatalf("Sets = %d, want 3", f.Sets())
	}
}

func TestUnionSmallerRootWinsTies(t *testing.T) {
	f := New(4)
	// Equal sizes: representative is the smaller index, matching the
	// paper's representing-row rule.
	if r := f.Union(3, 1); r != 1 {
		t.Fatalf("Union(3,1) root = %d, want 1", r)
	}
	f2 := New(4)
	f2.Union(0, 1) // root 0, size 2
	f2.Union(2, 3) // root 2, size 2
	if r := f2.Union(2, 0); r != 0 {
		t.Fatalf("size-tie root = %d, want 0", r)
	}
}

func TestUnionSameSetNoop(t *testing.T) {
	f := New(3)
	f.Union(0, 1)
	sets := f.Sets()
	if r := f.Union(1, 0); r != f.Find(0) {
		t.Fatalf("same-set union returned %d", r)
	}
	if f.Sets() != sets {
		t.Fatalf("same-set union changed set count")
	}
}

func TestMembers(t *testing.T) {
	f := New(5)
	f.Union(0, 3)
	f.Union(1, 4)
	m := f.Members()
	if len(m) != 3 {
		t.Fatalf("Members returned %d sets, want 3", len(m))
	}
	r0 := f.Find(0)
	if got := m[r0]; len(got) != 2 {
		t.Fatalf("set of 0 = %v", got)
	}
}

func TestPathHalvingFlattens(t *testing.T) {
	f := New(8)
	// Chain unions to build depth, then Find should flatten.
	for i := int32(1); i < 8; i++ {
		f.Union(0, i)
	}
	root := f.Find(7)
	for i := int32(0); i < 8; i++ {
		f.Find(i)
	}
	// After finds, every parent pointer is at most one hop from the root.
	for i := int32(0); i < 8; i++ {
		if p := f.parent[i]; p != root && f.parent[p] != root {
			t.Fatalf("path not halved at %d", i)
		}
	}
}

// Property: after arbitrary unions, Validate holds, set count matches the
// number of distinct roots, and Find is idempotent.
func TestPropertyUnionFind(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		uf := New(n)
		for k := 0; k < n*2; k++ {
			uf.Union(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		if uf.Validate() != nil {
			return false
		}
		roots := map[int32]bool{}
		for i := 0; i < n; i++ {
			r := uf.Find(int32(i))
			if uf.Find(r) != r {
				return false
			}
			roots[r] = true
		}
		return len(roots) == uf.Sets()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative in its effect on membership.
func TestPropertyUnionMembership(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a, b := New(n), New(n)
		type pair struct{ x, y int32 }
		var ops []pair
		for k := 0; k < n; k++ {
			ops = append(ops, pair{int32(rng.Intn(n)), int32(rng.Intn(n))})
		}
		for _, op := range ops {
			a.Union(op.x, op.y)
			b.Union(op.y, op.x)
		}
		// Same partition (possibly different representatives).
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (a.Find(int32(i)) == a.Find(int32(j))) != (b.Find(int32(i)) == b.Find(int32(j))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
