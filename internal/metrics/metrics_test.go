package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	// Non-positive entries are ignored.
	if got := GeoMean([]float64{0, -1, 4}); got != 4 {
		t.Errorf("GeoMean with non-positives = %v, want 4", got)
	}
}

func TestMeanMedianPercentile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 2 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Errorf("even Median = %v", Median([]float64{1, 2, 3, 4}))
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 3 {
		t.Errorf("percentile extremes wrong")
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Errorf("empty inputs not zero")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{5, -2, 9}
	if Min(xs) != -2 || Max(xs) != 9 {
		t.Errorf("Min/Max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Errorf("empty Min/Max not zero")
	}
}

func TestSpeedupBuckets(t *testing.T) {
	sp := []float64{0.5, 0.95, 1.05, 1.2, 1.7, 3.0}
	bs := SpeedupBuckets(sp)
	wantCounts := []int{1, 1, 1, 1, 1, 1}
	for i, b := range bs {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %q = %d, want %d", b.Label, b.Count, wantCounts[i])
		}
	}
	total := 0
	for _, b := range bs {
		total += b.Count
	}
	if total != len(sp) {
		t.Errorf("buckets lose entries: %d != %d", total, len(sp))
	}
}

func TestRatioBuckets(t *testing.T) {
	bs := RatioBuckets([]float64{1, 7, 50, 500})
	for i, want := range []int{1, 1, 1, 1} {
		if bs[i].Count != want {
			t.Errorf("ratio bucket %d = %d", i, bs[i].Count)
		}
	}
}

func TestFig8Buckets(t *testing.T) {
	bs := Fig8Buckets([]float64{0.8, 0.95, 1.05, 1.3, 1.7, 2.5})
	for i := range bs {
		if bs[i].Count != 1 {
			t.Errorf("fig8 bucket %d = %d, want 1", i, bs[i].Count)
		}
	}
}

func TestFormatBuckets(t *testing.T) {
	out := FormatBuckets("title", SpeedupBuckets([]float64{1.2}))
	if !strings.Contains(out, "title") || !strings.Contains(out, "10%~50%") {
		t.Errorf("FormatBuckets output: %q", out)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 4})
	if s.N != 3 || s.Max != 4 || s.Median != 2 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.GeoMean-2) > 1e-12 {
		t.Errorf("GeoMean = %v", s.GeoMean)
	}
	if s.String() == "" {
		t.Errorf("empty String")
	}
}

// Property: bucket counts always sum to the population and percentages to
// ~100.
func TestPropertyBucketsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 4
		}
		for _, bs := range [][]Bucket{SpeedupBuckets(xs), RatioBuckets(xs), Fig8Buckets(xs)} {
			total := 0
			pct := 0.0
			for _, b := range bs {
				total += b.Count
				pct += b.Pct
			}
			if total != n {
				return false
			}
			if n > 0 && math.Abs(pct-100) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: GeoMean(xs) lies between Min and Max for positive inputs, and
// Percentile is monotone in p.
func TestPropertyStatsOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 0.1 + rng.Float64()*5
		}
		g := GeoMean(xs)
		if g < Min(xs)-1e-9 || g > Max(xs)+1e-9 {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("dist:", []float64{1, 1, 2, 9}, 4)
	if !strings.Contains(out, "dist:") || !strings.Contains(out, "#") {
		t.Fatalf("histogram output: %q", out)
	}
	if Histogram("x", nil, 4) != "" {
		t.Fatalf("empty input should yield empty histogram")
	}
	if Histogram("x", []float64{1}, 0) != "" {
		t.Fatalf("zero bins should yield empty histogram")
	}
	// Constant input: all mass in one bucket, no panic.
	out = Histogram("c:", []float64{5, 5, 5}, 3)
	if !strings.Contains(out, "3") {
		t.Fatalf("constant histogram: %q", out)
	}
}
