// Package metrics provides the summary statistics and bucketing schemes
// the paper's tables and figures are built from: geometric means, medians,
// the Table 1/2 speedup buckets, and the Table 3/4 preprocessing-ratio
// buckets.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GeoMean returns the geometric mean of xs, ignoring non-positive values
// (which have no geometric mean); it returns 0 for an empty input.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the middle value (average of the two middles for even
// lengths), 0 for empty input.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between order statistics; 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Min and Max return the extrema, 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Bucket is one row of a bucketed summary table.
type Bucket struct {
	Label string
	Count int
	// Pct is Count as a percentage of the population.
	Pct float64
}

// SpeedupBuckets classifies speedup values into the paper's Table 1
// scheme: slowdown 0%~10% (speedup in [0.9, 1)), slowdown >10%
// (below 0.9 — the paper reports none, we keep the row for honesty),
// speedup 0%~10% ([1, 1.1)), 10%~50% ([1.1, 1.5)), 50%~100% ([1.5, 2)),
// and >100% ([2, ∞)).
func SpeedupBuckets(speedups []float64) []Bucket {
	bounds := []struct {
		label    string
		lo, hi   float64
		inclusiv bool
	}{
		{"slowdown >10%", 0, 0.9, false},
		{"slowdown 0%~10%", 0.9, 1.0, false},
		{"speedup 0%~10%", 1.0, 1.1, false},
		{"speedup 10%~50%", 1.1, 1.5, false},
		{"speedup 50%~100%", 1.5, 2.0, false},
		{"speedup >100%", 2.0, math.Inf(1), true},
	}
	out := make([]Bucket, len(bounds))
	for i, b := range bounds {
		out[i].Label = b.label
	}
	for _, s := range speedups {
		for i, b := range bounds {
			if s >= b.lo && (s < b.hi || (b.inclusiv && s >= b.lo)) {
				out[i].Count++
				break
			}
		}
	}
	fillPct(out, len(speedups))
	return out
}

// RatioBuckets classifies preprocessing/compute-time ratios into the
// Table 3/4 scheme: 0x~5x, 5x~10x, 10x~100x, >100x.
func RatioBuckets(ratios []float64) []Bucket {
	out := []Bucket{
		{Label: "0x~5x"},
		{Label: "5x~10x"},
		{Label: "10x~100x"},
		{Label: ">100x"},
	}
	for _, r := range ratios {
		switch {
		case r < 5:
			out[0].Count++
		case r < 10:
			out[1].Count++
		case r < 100:
			out[2].Count++
		default:
			out[3].Count++
		}
	}
	fillPct(out, len(ratios))
	return out
}

// Fig8Buckets classifies speedups-over-cuSPARSE into the histogram bins
// of Fig 8: <0.9, 0.9–1.0, 1.0–1.1, 1.1–1.5, 1.5–2.0, >2.0.
func Fig8Buckets(speedups []float64) []Bucket {
	out := []Bucket{
		{Label: "<0.9x"},
		{Label: "0.9x~1.0x"},
		{Label: "1.0x~1.1x"},
		{Label: "1.1x~1.5x"},
		{Label: "1.5x~2.0x"},
		{Label: ">2.0x"},
	}
	for _, s := range speedups {
		switch {
		case s < 0.9:
			out[0].Count++
		case s < 1.0:
			out[1].Count++
		case s < 1.1:
			out[2].Count++
		case s < 1.5:
			out[3].Count++
		case s < 2.0:
			out[4].Count++
		default:
			out[5].Count++
		}
	}
	fillPct(out, len(speedups))
	return out
}

func fillPct(bs []Bucket, n int) {
	if n == 0 {
		return
	}
	for i := range bs {
		bs[i].Pct = 100 * float64(bs[i].Count) / float64(n)
	}
}

// FormatBuckets renders buckets as an aligned two-column ASCII table.
func FormatBuckets(title string, bs []Bucket) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	width := 0
	for _, b := range bs {
		if len(b.Label) > width {
			width = len(b.Label)
		}
	}
	for _, b := range bs {
		fmt.Fprintf(&sb, "  %-*s  %5.1f%%  (%d)\n", width, b.Label, b.Pct, b.Count)
	}
	return sb.String()
}

// Histogram bins xs into `bins` equal-width buckets over [min, max] and
// renders a compact ASCII bar chart — used for Fig 12-style
// distributions. Empty input yields an empty string.
func Histogram(title string, xs []float64, bins int) string {
	if len(xs) == 0 || bins <= 0 {
		return ""
	}
	lo, hi := Min(xs), Max(xs)
	width := (hi - lo) / float64(bins)
	if width <= 0 {
		width = 1
	}
	counts := make([]int, bins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for b, c := range counts {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*40/maxCount)
		}
		fmt.Fprintf(&sb, "  [%8.3g, %8.3g) %4d %s\n", lo+float64(b)*width, lo+float64(b+1)*width, c, bar)
	}
	return sb.String()
}

// Summary holds the headline aggregates the paper quotes per experiment.
type Summary struct {
	N       int
	Max     float64
	Median  float64
	GeoMean float64
	Mean    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:       len(xs),
		Max:     Max(xs),
		Median:  Median(xs),
		GeoMean: GeoMean(xs),
		Mean:    Mean(xs),
	}
}

// String renders the summary in the paper's phrasing.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d max=%.2fx median=%.2fx geomean=%.2fx mean=%.2fx",
		s.N, s.Max, s.Median, s.GeoMean, s.Mean)
}
