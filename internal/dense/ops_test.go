package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScale(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	m.Scale(2)
	for _, v := range m.Data {
		if v != 6 {
			t.Fatalf("Scale failed: %v", m.Data)
		}
	}
}

func TestAddScaled(t *testing.T) {
	a := New(2, 2)
	a.Fill(1)
	b := New(2, 2)
	b.Fill(4)
	a.AddScaled(b, 0.5)
	for _, v := range a.Data {
		if v != 3 {
			t.Fatalf("AddScaled failed: %v", a.Data)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("shape mismatch accepted")
		}
	}()
	a.AddScaled(New(1, 2), 1)
}

func TestMatMul(t *testing.T) {
	a := New(2, 3)
	b := New(3, 2)
	// a = [[1 2 3],[4 5 6]], b = [[7 8],[9 10],[11 12]]
	copy(a.Data, []float32{1, 2, 3, 4, 5, 6})
	copy(b.Data, []float32{7, 8, 9, 10, 11, 12})
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
	if _, err := MatMul(a, New(2, 2)); err == nil {
		t.Fatalf("shape mismatch accepted")
	}
}

func TestReLU(t *testing.T) {
	m := New(1, 4)
	copy(m.Data, []float32{-1, 0, 2, -0.5})
	m.ReLU()
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("ReLU = %v", m.Data)
		}
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := New(1, 2)
	copy(m.Data, []float32{3, 4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
	if New(2, 2).FrobeniusNorm() != 0 {
		t.Fatalf("zero matrix norm != 0")
	}
}

// Property: MatMul distributes over AddScaled on the left operand:
// (A + ηΔ)·B == A·B + η(Δ·B).
func TestPropertyMatMulLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k, p := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := NewRandom(n, k, seed)
		d := NewRandom(n, k, seed+1)
		b := NewRandom(k, p, seed+2)
		eta := rng.Float32()
		left := a.Clone()
		left.AddScaled(d, eta)
		lhs, err := MatMul(left, b)
		if err != nil {
			return false
		}
		ab, err := MatMul(a, b)
		if err != nil {
			return false
		}
		db, err := MatMul(d, b)
		if err != nil {
			return false
		}
		rhs := ab.Clone()
		rhs.AddScaled(db, eta)
		return MaxAbsDiff(lhs, rhs) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
