package dense

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("not zeroed")
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New accepted negative dimensions")
		}
	}()
	New(-1, 2)
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At/Set broken")
	}
	r := m.Row(1)
	if r[2] != 7 {
		t.Fatalf("Row slice wrong: %v", r)
	}
	r[0] = 3 // mutation visible
	if m.At(1, 0) != 3 {
		t.Fatalf("Row not aliased")
	}
}

func TestNewRandomDeterministic(t *testing.T) {
	a := NewRandom(5, 5, 42)
	b := NewRandom(5, 5, 42)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatalf("same seed differs")
	}
	c := NewRandom(5, 5, 43)
	if MaxAbsDiff(a, c) == 0 {
		t.Fatalf("different seeds identical")
	}
	for _, v := range a.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("value %v out of [-1,1)", v)
		}
	}
}

func TestCloneZeroFill(t *testing.T) {
	m := NewRandom(3, 3, 1)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatalf("clone shares storage")
	}
	m.Fill(2)
	for _, v := range m.Data {
		if v != 2 {
			t.Fatalf("Fill failed")
		}
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("Zero failed")
		}
	}
}

func TestPermuteRows(t *testing.T) {
	m := New(3, 2)
	for i := 0; i < 3; i++ {
		m.Set(i, 0, float32(i))
	}
	p, err := m.PermuteRows([]int32{2, 0, 1})
	if err != nil {
		t.Fatalf("PermuteRows: %v", err)
	}
	if p.At(0, 0) != 2 || p.At(1, 0) != 0 || p.At(2, 0) != 1 {
		t.Fatalf("permutation wrong: %v", p.Data)
	}
	if _, err := m.PermuteRows([]int32{0, 0, 1}); err == nil {
		t.Fatalf("accepted non-permutation")
	}
	if _, err := m.PermuteRows([]int32{0}); err == nil {
		t.Fatalf("accepted short permutation")
	}
}

func TestMaxAbsDiffPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("shape mismatch accepted")
		}
	}()
	MaxAbsDiff(New(1, 2), New(2, 1))
}

func TestAlmostEqual(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	b.Set(1, 1, 1e-7)
	if !AlmostEqual(a, b, 1e-6) {
		t.Fatalf("AlmostEqual too strict")
	}
	if AlmostEqual(a, b, 1e-9) {
		t.Fatalf("AlmostEqual too lax")
	}
	if AlmostEqual(a, New(1, 4), 1) {
		t.Fatalf("AlmostEqual ignored shape")
	}
}

// Property: permuting by p then inverse(p) restores the matrix.
func TestPropertyPermuteInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		m := NewRandom(n, 1+rng.Intn(8), seed)
		perm := make([]int32, n)
		inv := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for i, p := range perm {
			inv[p] = int32(i)
		}
		pm, err := m.PermuteRows(perm)
		if err != nil {
			return false
		}
		back, err := pm.PermuteRows(inv)
		if err != nil {
			return false
		}
		return MaxAbsDiff(m, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
