package dense

import "testing"

func TestPoolGetPutReuse(t *testing.T) {
	m := Get(8, 4)
	if m.Rows != 8 || m.Cols != 4 || len(m.Data) != 32 {
		t.Fatalf("Get returned wrong shape: %v", m)
	}
	m.Fill(3)
	Put(m)
	// Same-or-smaller request should be able to reuse the pooled slice;
	// either way the shape must be exact.
	n := Get(4, 4)
	if n.Rows != 4 || n.Cols != 4 || len(n.Data) != 16 {
		t.Fatalf("reused matrix has wrong shape: %v", n)
	}
	Put(n)
	// Larger than anything pooled: fresh allocation, still correct.
	big := Get(100, 100)
	if big.Rows != 100 || big.Cols != 100 || len(big.Data) != 100*100 {
		t.Fatalf("oversized Get wrong shape: %v", big)
	}
	Put(big)
	Put(nil) // must not panic
}

func TestPoolContentsAreOverwritable(t *testing.T) {
	// Pool contents are unspecified; Zero must give a clean matrix.
	m := Get(3, 3)
	m.Fill(9)
	Put(m)
	n := Get(3, 3)
	n.Zero()
	for _, v := range n.Data {
		if v != 0 {
			t.Fatalf("Zero left %v", v)
		}
	}
	Put(n)
}

func TestPermuteRowsInto(t *testing.T) {
	src := New(3, 2)
	for i := range src.Data {
		src.Data[i] = float32(i)
	}
	perm := []int32{2, 0, 1}
	want, err := src.PermuteRows(perm)
	if err != nil {
		t.Fatal(err)
	}
	dst := New(3, 2)
	if err := PermuteRowsInto(dst, src, perm); err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(dst, want) != 0 {
		t.Fatalf("PermuteRowsInto differs from PermuteRows")
	}
	if err := PermuteRowsInto(New(2, 2), src, perm); err == nil {
		t.Fatalf("accepted shape mismatch")
	}
	if err := PermuteRowsInto(dst, src, []int32{0, 1}); err == nil {
		t.Fatalf("accepted short permutation")
	}
	if err := PermuteRowsInto(dst, src, []int32{0, 1, 3}); err == nil {
		t.Fatalf("accepted out-of-range entry")
	}
}

func TestPermuteRowsIntoZeroAlloc(t *testing.T) {
	src := NewRandom(64, 16, 1)
	dst := New(64, 16)
	perm := make([]int32, 64)
	for i := range perm {
		perm[i] = int32(63 - i)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := PermuteRowsInto(dst, src, perm); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PermuteRowsInto allocates %v per call", allocs)
	}
}
