package dense

import (
	"fmt"
	"math"
)

// Dense helper operations used by the example applications (GNN layers,
// gradient steps) — small, allocation-conscious, and tested so the
// examples stay free of ad-hoc numeric code.

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled performs m += eta·delta element-wise in place. It panics on
// shape mismatch (programming error).
func (m *Matrix) AddScaled(delta *Matrix, eta float32) {
	if m.Rows != delta.Rows || m.Cols != delta.Cols {
		panic(fmt.Sprintf("dense: AddScaled shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, delta.Rows, delta.Cols))
	}
	for i := range m.Data {
		m.Data[i] += eta * delta.Data[i]
	}
}

// MatMul computes A·B for dense matrices (ikj loop order, skipping zero
// multipliers — adequate for the narrow weight matrices in the
// examples).
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("dense: MatMul shape mismatch %dx%d · %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for l, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(l)
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out, nil
}

// ReLU clamps negative elements to zero in place.
func (m *Matrix) ReLU() {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

// FrobeniusNorm returns sqrt(Σ m_ij²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}
