// Package dense provides the row-major dense matrix used as the second
// operand of SpMM and SDDMM. Storage is a single contiguous float32 slice,
// matching how the GPU kernels in the paper address X and Y.
package dense

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix: element (i, j) lives at
// Data[i*Cols+j].
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dense: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewRandom returns a rows×cols matrix with entries uniform in [-1, 1),
// deterministically seeded.
func NewRandom(rows, cols int, seed int64) *Matrix {
	m := New(rows, cols)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a sub-slice of Data (mutations are visible).
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// PermuteRows returns a new matrix whose row i is row perm[i] of m,
// mirroring sparse.PermuteRows' convention.
func (m *Matrix) PermuteRows(perm []int32) (*Matrix, error) {
	if len(perm) != m.Rows {
		return nil, fmt.Errorf("dense: permutation length %d for %d rows", len(perm), m.Rows)
	}
	out := New(m.Rows, m.Cols)
	seen := make([]bool, m.Rows)
	for i, p := range perm {
		if p < 0 || int(p) >= m.Rows || seen[p] {
			return nil, fmt.Errorf("dense: invalid permutation at position %d (value %d)", i, p)
		}
		seen[p] = true
		copy(out.Row(i), m.Row(int(p)))
	}
	return out, nil
}

// PermuteRowsInto writes src's rows into dst with dst row i = src row
// perm[i], the allocation-free form of PermuteRows. perm must be a
// permutation of [0, src.Rows) (validate with sparse.IsPermutation if it
// is untrusted); out-of-range entries error, but bijectivity is not
// re-checked on this hot path, so a duplicated in-range entry silently
// duplicates a row. dst and src must not alias.
func PermuteRowsInto(dst, src *Matrix, perm []int32) error {
	if len(perm) != src.Rows {
		return fmt.Errorf("dense: permutation length %d for %d rows", len(perm), src.Rows)
	}
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		return fmt.Errorf("dense: PermuteRowsInto shape mismatch %dx%d vs %dx%d",
			dst.Rows, dst.Cols, src.Rows, src.Cols)
	}
	for i, p := range perm {
		if p < 0 || int(p) >= src.Rows {
			return fmt.Errorf("dense: invalid permutation at position %d (value %d)", i, p)
		}
		copy(dst.Row(i), src.Row(int(p)))
	}
	return nil
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// two same-shaped matrices. It panics on a shape mismatch (programming
// error in tests).
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	max := 0.0
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

// AlmostEqual reports whether all elements differ by at most tol.
func AlmostEqual(a, b *Matrix, tol float64) bool {
	return a.Rows == b.Rows && a.Cols == b.Cols && MaxAbsDiff(a, b) <= tol
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// String summarises the matrix without dumping its contents.
func (m *Matrix) String() string {
	return fmt.Sprintf("Dense(%dx%d)", m.Rows, m.Cols)
}
