package dense

import "fmt"

// Column stacking for the batched serving path: N dense operands with
// the same row count are laid side by side into one wider matrix, so a
// single SpMM pass computes all of them at once. Because storage is
// row-major, stacking is a per-row copy of contiguous segments — the
// unstack direction is the same copy in reverse, and both directions
// are allocation-free.
//
// The win is arithmetic intensity: an SpMM pass walks the sparse
// operand's RowPtr/ColIdx/Val once regardless of the dense width K, so
// serving N width-k requests as one width N·k pass amortises the index
// traversal N ways (the K-scaling analysis of Yang–Buluç–Owens,
// PAPERS.md). The serving layer stacks into pooled scratch (Get/Put),
// runs one kernel pass, and unstacks each caller's columns back out.

// StackColsInto writes [srcs[0] | srcs[1] | ...] into dst: dst row r is
// the concatenation of every source's row r, in order. Every source
// must have dst.Rows rows and the column counts must sum to dst.Cols.
func StackColsInto(dst *Matrix, srcs []*Matrix) error {
	if err := checkStackShapes(dst, srcs); err != nil {
		return err
	}
	for r := 0; r < dst.Rows; r++ {
		dr := dst.Row(r)
		off := 0
		for _, s := range srcs {
			copy(dr[off:off+s.Cols], s.Row(r))
			off += s.Cols
		}
	}
	return nil
}

// UnstackColsInto is the inverse of StackColsInto: each destination
// receives its column band of src. Every destination must have src.Rows
// rows and the column counts must sum to src.Cols.
func UnstackColsInto(dsts []*Matrix, src *Matrix) error {
	if err := checkStackShapes(src, dsts); err != nil {
		return err
	}
	for r := 0; r < src.Rows; r++ {
		sr := src.Row(r)
		off := 0
		for _, d := range dsts {
			copy(d.Row(r), sr[off:off+d.Cols])
			off += d.Cols
		}
	}
	return nil
}

// checkStackShapes validates one wide matrix against the narrow band
// matrices it stacks to (or unstacks from).
func checkStackShapes(wide *Matrix, bands []*Matrix) error {
	if len(bands) == 0 {
		return fmt.Errorf("dense: empty stack operand list")
	}
	total := 0
	for i, b := range bands {
		if b == nil {
			return fmt.Errorf("dense: stack operand %d is nil", i)
		}
		if b.Rows != wide.Rows {
			return fmt.Errorf("dense: stack operand %d has %d rows, want %d", i, b.Rows, wide.Rows)
		}
		total += b.Cols
	}
	if total != wide.Cols {
		return fmt.Errorf("dense: stacked width %d does not match %d", total, wide.Cols)
	}
	return nil
}
