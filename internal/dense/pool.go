package dense

import (
	"sync"

	"repro/internal/faultinject"
)

// Scratch-matrix pooling for the zero-allocation serving path: the
// pipeline-level SpMM/SDDMM need a temporary matrix in reordered row
// space before permuting into the caller's output. Pooling those
// temporaries (and the kernels' pooled job state) makes a steady-state
// *Into call allocation-free.
//
// The pool is capacity-based: Get reuses any pooled matrix whose
// backing slice is large enough, so serving workloads with a stable
// shape hit the pool every time. Wildly varying shapes degrade to
// fresh allocations, never to incorrect reuse.

var matrixPool sync.Pool

// Get returns a rows×cols scratch matrix, reusing pooled storage when
// possible. The contents are unspecified (kernels overwrite their
// destination); call Zero if zeroed memory is needed. Return the matrix
// with Put when done.
func Get(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		return New(rows, cols) // panics with the standard message
	}
	n := rows * cols
	// A pool failure is recoverable by construction: serving simply
	// falls back to a fresh allocation, trading steady-state
	// allocation-freedom for availability.
	if faultinject.Fire("dense.pool") != nil {
		return New(rows, cols)
	}
	if v := matrixPool.Get(); v != nil {
		m := v.(*Matrix)
		if cap(m.Data) >= n {
			m.Rows, m.Cols = rows, cols
			m.Data = m.Data[:n]
			return m
		}
		// Too small for this request; let it be collected rather than
		// cycling undersized buffers through the pool.
	}
	return New(rows, cols)
}

// Put returns a matrix obtained from Get (or any matrix the caller no
// longer needs) to the scratch pool. The caller must not use m after
// Put. Put(nil) is a no-op.
func Put(m *Matrix) {
	if m == nil || m.Data == nil {
		return
	}
	// Mirror of the Get site: an injected failure drops the matrix on
	// the floor (collected by the GC) instead of pooling it.
	if faultinject.Fire("dense.pool") != nil {
		return
	}
	matrixPool.Put(m)
}
