package dense

import (
	"testing"
)

func TestStackUnstackRoundTrip(t *testing.T) {
	srcs := []*Matrix{
		NewRandom(5, 1, 1),
		NewRandom(5, 3, 2),
		NewRandom(5, 2, 3),
	}
	wide := New(5, 6)
	if err := StackColsInto(wide, srcs); err != nil {
		t.Fatal(err)
	}
	// Spot-check the layout: wide row r = concat of source rows.
	for r := 0; r < 5; r++ {
		off := 0
		for i, s := range srcs {
			for c := 0; c < s.Cols; c++ {
				if wide.At(r, off+c) != s.At(r, c) {
					t.Fatalf("wide(%d,%d) != src%d(%d,%d)", r, off+c, i, r, c)
				}
			}
			off += s.Cols
		}
	}
	dsts := []*Matrix{New(5, 1), New(5, 3), New(5, 2)}
	if err := UnstackColsInto(dsts, wide); err != nil {
		t.Fatal(err)
	}
	for i := range srcs {
		if MaxAbsDiff(srcs[i], dsts[i]) != 0 {
			t.Fatalf("operand %d did not round-trip", i)
		}
	}
}

func TestStackShapeErrors(t *testing.T) {
	wide := New(4, 3)
	cases := map[string][]*Matrix{
		"empty":      {},
		"nil":        {nil},
		"rows":       {New(3, 3)},
		"width":      {New(4, 2)},
		"width-sum":  {New(4, 2), New(4, 2)},
		"rows-mixed": {New(4, 2), New(5, 1)},
	}
	for name, bands := range cases {
		if err := StackColsInto(wide, bands); err == nil {
			t.Errorf("StackColsInto(%s) accepted a bad shape", name)
		}
		if err := UnstackColsInto(bands, wide); err == nil {
			t.Errorf("UnstackColsInto(%s) accepted a bad shape", name)
		}
	}
}

func TestStackAllocFree(t *testing.T) {
	srcs := []*Matrix{NewRandom(64, 4, 1), NewRandom(64, 4, 2)}
	dsts := []*Matrix{New(64, 4), New(64, 4)}
	wide := New(64, 8)
	allocs := testing.AllocsPerRun(20, func() {
		if err := StackColsInto(wide, srcs); err != nil {
			t.Fatal(err)
		}
		if err := UnstackColsInto(dsts, wide); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("stack/unstack allocates %v per call, want 0", allocs)
	}
}
