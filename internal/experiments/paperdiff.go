package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// The paper's published aggregates (§5.2/§5.3), encoded so the headline
// comparison of EXPERIMENTS.md can be regenerated mechanically against a
// fresh run.
var paperClaims = []struct {
	name string
	// paper value and the measured extractor
	paper   float64
	measure func(map[string]*Report) (float64, bool)
	// within is the acceptance band for the "same regime" verdict
	// (multiplicative, generous: a simulator reproduces shape, not
	// digits).
	within float64
}{
	{"SpMM max speedup, K=512 (paper 2.73x)", 2.73, maxOf("tab1", "k512"), 2.0},
	{"SpMM max speedup, K=1024 (paper 2.91x)", 2.91, maxOf("tab1", "k1024"), 2.0},
	{"SpMM geomean, K=512 (paper 1.17x)", 1.17, geoOf("tab1", "k512"), 1.25},
	{"SpMM geomean, K=1024 (paper 1.19x)", 1.19, geoOf("tab1", "k1024"), 1.25},
	{"SpMM median, K=512 (paper 1.12x)", 1.12, medOf("tab1", "k512"), 1.25},
	{"SDDMM max speedup, K=512 (paper 3.19x)", 3.19, maxOf("tab2", "k512"), 2.0},
	{"SDDMM max speedup, K=1024 (paper 2.95x)", 2.95, maxOf("tab2", "k1024"), 2.0},
	{"SDDMM geomean, K=512 (paper 1.48x)", 1.48, geoOf("tab2", "k512"), 1.25},
	{"SDDMM geomean, K=1024 (paper 1.49x)", 1.49, geoOf("tab2", "k1024"), 1.25},
	{"ASpT-NR geomean vs cuSPARSE, K=512 (paper 1.35x)", 1.35, geoOf("fig8", "nr-k512"), 1.35},
}

func maxOf(id, series string) func(map[string]*Report) (float64, bool) {
	return func(rs map[string]*Report) (float64, bool) {
		r, ok := rs[id]
		if !ok || len(r.Values[series]) == 0 {
			return 0, false
		}
		return metrics.Max(r.Values[series]), true
	}
}

func geoOf(id, series string) func(map[string]*Report) (float64, bool) {
	return func(rs map[string]*Report) (float64, bool) {
		r, ok := rs[id]
		if !ok || len(r.Values[series]) == 0 {
			return 0, false
		}
		return metrics.GeoMean(r.Values[series]), true
	}
}

func medOf(id, series string) func(map[string]*Report) (float64, bool) {
	return func(rs map[string]*Report) (float64, bool) {
		r, ok := rs[id]
		if !ok || len(r.Values[series]) == 0 {
			return 0, false
		}
		return metrics.Median(r.Values[series]), true
	}
}

// PaperComparison renders the measured-vs-published headline table from a
// set of reports (needs at least fig8, tab1 and tab2). A claim is marked
// "same regime" when the measured value is within the claim's
// multiplicative band of the paper's — the shape criterion of
// EXPERIMENTS.md, not a digit match.
func PaperComparison(reports map[string]*Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %-50s %8s %9s %s\n", "quantity", "paper", "measured", "verdict")
	for _, c := range paperClaims {
		got, ok := c.measure(reports)
		if !ok {
			fmt.Fprintf(&sb, "  %-50s %8.2f %9s %s\n", c.name, c.paper, "-", "(missing report)")
			continue
		}
		verdict := "same regime"
		ratio := got / c.paper
		if ratio < 1/c.within || ratio > c.within {
			verdict = "DIVERGES"
		}
		fmt.Fprintf(&sb, "  %-50s %8.2f %9.2f %s\n", c.name, c.paper, got, verdict)
	}
	return sb.String()
}
