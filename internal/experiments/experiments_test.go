package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/synth"
)

// testOptions is a miniature configuration that keeps the full drivers
// fast enough for unit testing.
func testOptions() Options {
	opts := DefaultOptions()
	opts.Ks = []int{64, 128}
	// Shrink the simulated device in proportion to the miniature corpus
	// so the locality effects the paper studies are visible (the real L2
	// would hold the entire dense operand of a 0.05-scale matrix, and
	// 224 co-resident blocks would interleave away all temporal reuse of
	// an 800-row matrix).
	opts.Device.L2Bytes = 64 << 10
	opts.Device.NumSMs = 4
	opts.Device.BlocksPerSM = 2
	opts.Corpus = synth.Options{
		Scale:    0.05,
		Families: []string{"uniform", "banded", "scrambled", "clustered", "diagonal"},
	}
	return opts
}

func testEvals(t *testing.T) []*MatrixEval {
	t.Helper()
	evals, err := EvaluateCorpus(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) == 0 {
		t.Fatal("empty corpus")
	}
	return evals
}

// TestEvaluateCorpusParallelDeterministic pins the guarantee the
// parallel evaluator makes: worker count does not change any result.
func TestEvaluateCorpusParallelDeterministic(t *testing.T) {
	opts := testOptions()
	opts.Corpus.Families = []string{"scrambled", "uniform"}
	opts.Parallel = 1
	seq, err := EvaluateCorpus(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 8
	par, err := EvaluateCorpus(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Entry.Name != par[i].Entry.Name {
			t.Fatalf("order differs at %d", i)
		}
		for key, st := range seq[i].Results {
			pst := par[i].Results[key]
			if pst == nil || pst.Time != st.Time || pst.DRAMBytes != st.DRAMBytes {
				t.Fatalf("%s %v differs between worker counts", seq[i].Entry.Name, key)
			}
		}
	}
}

func TestEvaluateFillsAllKeys(t *testing.T) {
	opts := testOptions()
	entries, err := synth.Corpus(opts.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(entries[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []Op{SpMM, SDDMM} {
		for _, sys := range []System{CuSPARSE, ASpTNR, ASpTRR} {
			for _, k := range opts.Ks {
				st := ev.Results[Key{op, sys, k}]
				if st == nil || st.Time <= 0 {
					t.Fatalf("missing result %v/%v/K=%d", op, sys, k)
				}
			}
		}
	}
	if sp := ev.Speedup(SpMM, opts.Ks[0], ASpTRR, CuSPARSE); sp <= 0 {
		t.Fatalf("speedup = %v", sp)
	}
	if ev.BestBaseline(SpMM, opts.Ks[0]) == nil {
		t.Fatalf("no best baseline")
	}
}

func TestScrambledFamilyGains(t *testing.T) {
	evals := testEvals(t)
	gained := 0
	for _, ev := range evals {
		if ev.Entry.Family != "scrambled" {
			continue
		}
		if ev.Speedup(SpMM, 128, ASpTRR, ASpTNR) > 1.02 {
			gained++
		}
	}
	if gained == 0 {
		t.Fatalf("no scrambled-cluster matrix gained from reordering")
	}
}

func TestNeedsReorderingSelection(t *testing.T) {
	evals := testEvals(t)
	sel := NeedsReordering(evals)
	if len(sel) == 0 || len(sel) == len(evals) {
		t.Fatalf("selection degenerate: %d of %d", len(sel), len(evals))
	}
	// Well-clustered banded matrices should generally not be selected.
	for _, ev := range sel {
		if !ev.RR.NeedsReordering() {
			t.Fatalf("selection filter broken")
		}
	}
}

func TestFig8Report(t *testing.T) {
	evals := testEvals(t)
	r := Fig8(evals, []int{64, 128})
	if len(r.Values["nr-k64"]) != len(evals) || len(r.Values["rr-k128"]) != len(evals) {
		t.Fatalf("fig8 series sizes wrong")
	}
	if !strings.Contains(r.Text, "ASpT-RR vs cuSPARSE") {
		t.Fatalf("fig8 text: %q", r.Text)
	}
}

func TestFig9Report(t *testing.T) {
	evals := testEvals(t)[:6]
	r, pts, err := Fig9(evals, 128, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("fig9 points = %d", len(pts))
	}
	for _, p := range pts {
		if p.SpeedupOverNR <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	if !strings.Contains(r.Text, "ΔDenseRatio") {
		t.Fatalf("fig9 text missing quadrants")
	}
}

func TestMetisReport(t *testing.T) {
	evals := testEvals(t)
	// Restrict to a handful to keep the partitioner fast.
	var square []*MatrixEval
	for _, ev := range evals {
		if ev.Entry.M.Rows == ev.Entry.M.Cols {
			square = append(square, ev)
			if len(square) == 4 {
				break
			}
		}
	}
	r, err := Fig9Metis(square, 128, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Values["speedup"]) != len(square) {
		t.Fatalf("metis speedups = %d, want %d", len(r.Values["speedup"]), len(square))
	}
}

func TestTableReports(t *testing.T) {
	evals := testEvals(t)
	ks := []int{64, 128}
	t1 := Table1(evals, ks)
	if len(t1.Values["k64"]) == 0 {
		t.Fatalf("table1 empty")
	}
	t2 := Table2(evals, ks)
	if len(t2.Values["k128"]) == 0 {
		t.Fatalf("table2 empty")
	}
	t3 := Table3(evals, ks)
	t4 := Table4(evals, ks)
	for _, r := range []*Report{t1, t2, t3, t4} {
		if r.Text == "" {
			t.Fatalf("%s text empty", r.ID)
		}
	}
	for _, ratio := range t3.Values["k64"] {
		if ratio < 0 {
			t.Fatalf("negative preprocessing ratio")
		}
	}
	_ = t4
}

func TestThroughputFigs(t *testing.T) {
	evals := testEvals(t)
	f10 := Fig10(evals, 128)
	f11 := Fig11(evals, 128)
	if len(f10.Values[string(ASpTRR)]) == 0 || len(f11.Values[string(ASpTNR)]) == 0 {
		t.Fatalf("throughput figs empty")
	}
	// Fig 10 x-axis is sorted by ASpT-NR throughput.
	nr := f10.Values[string(ASpTNR)]
	for i := 1; i < len(nr); i++ {
		if nr[i] < nr[i-1] {
			t.Fatalf("fig10 not sorted by ASpT-NR throughput")
		}
	}
}

func TestFig12Report(t *testing.T) {
	evals := testEvals(t)
	r := Fig12(evals)
	if len(r.Values["seconds"]) != len(NeedsReordering(evals)) {
		t.Fatalf("fig12 counts wrong")
	}
	for _, s := range r.Values["seconds"] {
		if s <= 0 {
			t.Fatalf("non-positive preprocessing time")
		}
	}
}

func TestRunAllSubset(t *testing.T) {
	var buf bytes.Buffer
	reports, err := RunAll(testOptions(), []string{"fig8", "tab1", "fig12"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	out := buf.String()
	for _, want := range []string{"Fig 8", "Table 1", "Fig 12", "evaluated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

// TestRunAllEveryID exercises every registered experiment id through
// RunAll on a micro corpus, including the extension drivers and the
// paper-comparison epilogue.
func TestRunAllEveryID(t *testing.T) {
	opts := testOptions()
	opts.Corpus.Scale = 0.04
	opts.Corpus.Families = []string{"scrambled", "banded"}
	var buf bytes.Buffer
	reports, err := RunAll(opts, nil, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range All {
		if reports[id] == nil {
			t.Errorf("id %s produced no report", id)
		}
	}
	if !strings.Contains(buf.String(), "Paper headline comparison") {
		t.Errorf("paper comparison epilogue missing")
	}
}

func TestVertexReorderHelper(t *testing.T) {
	entries, err := synth.Corpus(synth.Options{Scale: 0.05, Families: []string{"blockdiag"}})
	if err != nil {
		t.Fatal(err)
	}
	perm, err := VertexReorder(entries[0].M)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != entries[0].M.Rows {
		t.Fatalf("perm length wrong")
	}
}
