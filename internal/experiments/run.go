package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/gpusim"
	"repro/internal/partition"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

// VertexReorder computes the METIS-baseline vertex permutation for a
// square matrix using the multilevel partitioner.
func VertexReorder(m *sparse.CSR) ([]int32, error) {
	return partition.VertexOrder(m, partition.DefaultLeafSize, 42)
}

// simulateSpMMASpTPlan runs the simulated ASpT SpMM for an arbitrary plan.
func simulateSpMMASpTPlan(opts Options, plan *reorder.Plan, k int) (*gpusim.Stats, error) {
	return gpusim.SpMMASpT(opts.Device, plan.Tiled, plan.RestOrder, k)
}

// All lists the experiment ids RunAll knows: the paper's artifacts in
// paper order, then the extension experiments.
var All = []string{"fig8", "fig9", "metis", "tab1", "fig10", "tab2", "fig11", "fig12", "tab3", "tab4", "tab34app", "ksweep", "families", "orderings", "heuristics"}

// RunAll evaluates the corpus once and regenerates the selected
// experiments (nil or empty = all), writing each report to w as it
// completes and returning them keyed by id.
func RunAll(opts Options, ids []string, w io.Writer) (map[string]*Report, error) {
	opts.fill()
	if len(ids) == 0 {
		ids = All
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	start := time.Now()
	evals, err := EvaluateCorpus(opts)
	if err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintf(w, "evaluated %d matrices in %v (%d need reordering)\n\n",
			len(evals), time.Since(start).Round(time.Millisecond), len(NeedsReordering(evals)))
	}
	reports := make(map[string]*Report)
	emit := func(r *Report) {
		reports[r.ID] = r
		if w != nil {
			fmt.Fprintf(w, "== %s ==\n%s\n", r.Title, r.Text)
		}
	}
	k0 := opts.Ks[0]
	if want["fig8"] {
		emit(Fig8(evals, opts.Ks))
	}
	if want["fig9"] {
		r, _, err := Fig9(evals, k0, opts)
		if err != nil {
			return nil, err
		}
		emit(r)
	}
	if want["metis"] {
		// The multilevel partitioner is the most expensive baseline;
		// a representative square subset reproduces the (universal)
		// slowdown claim without dominating the run.
		sel := evals
		var square []*MatrixEval
		for _, ev := range sel {
			if ev.Entry.M.Rows == ev.Entry.M.Cols {
				square = append(square, ev)
			}
			if len(square) == 24 {
				break
			}
		}
		r, err := Fig9Metis(square, k0, opts)
		if err != nil {
			return nil, err
		}
		emit(r)
	}
	if want["tab1"] {
		emit(Table1(evals, opts.Ks))
	}
	if want["fig10"] {
		emit(Fig10(evals, k0))
	}
	if want["tab2"] {
		emit(Table2(evals, opts.Ks))
	}
	if want["fig11"] {
		emit(Fig11(evals, k0))
	}
	if want["fig12"] {
		emit(Fig12(evals))
	}
	if want["tab3"] {
		emit(Table3(evals, opts.Ks))
	}
	if want["tab4"] {
		emit(Table4(evals, opts.Ks))
	}
	if want["tab34app"] {
		emit(Table34App(evals, SpMM, k0))
	}
	if want["ksweep"] {
		r, err := KSweep(evals, opts)
		if err != nil {
			return nil, err
		}
		emit(r)
	}
	if want["families"] {
		emit(FamilySummary(evals, k0))
	}
	if want["orderings"] {
		// The orderings sweep is the most expensive driver: take a
		// family-stratified sample so every structural regime appears.
		sel := stratifiedSample(NeedsReordering(evals), 2)
		r, err := OrderingSweep(sel, k0, opts)
		if err != nil {
			return nil, err
		}
		emit(r)
	}
	if want["heuristics"] {
		r, err := HeuristicsValidation(evals, k0, opts)
		if err != nil {
			return nil, err
		}
		emit(r)
	}
	// When the headline reports are present, close with the published-
	// vs-measured comparison table.
	if reports["fig8"] != nil && reports["tab1"] != nil && reports["tab2"] != nil && w != nil {
		fmt.Fprintf(w, "== Paper headline comparison ==\n%s\n", PaperComparison(reports))
	}
	return reports, nil
}

// stratifiedSample keeps up to perFamily evals of each corpus family,
// preserving order.
func stratifiedSample(evals []*MatrixEval, perFamily int) []*MatrixEval {
	count := make(map[string]int)
	var out []*MatrixEval
	for _, ev := range evals {
		if count[ev.Entry.Family] < perFamily {
			count[ev.Entry.Family]++
			out = append(out, ev)
		}
	}
	return out
}
