package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// Table34App reinterprets Tables 3/4 at application level (id
// "tab34app"): the paper's preprocessing-to-compute ratios only land in
// its 0–10× buckets if "computation time" means a whole application run,
// not one kernel launch (§5.4 argues amortisation over "hundreds of
// iterations"). This driver makes that explicit: for each matrix needing
// reordering it reports (a) the ratio of preprocessing to `iters` kernel
// executions for representative iteration counts, and (b) the *effective*
// end-to-end speedup including preprocessing,
//
//	eff(iters) = iters·t_base / (t_preprocess + iters·t_rr).
func Table34App(evals []*MatrixEval, op Op, k int) *Report {
	sel := NeedsReordering(evals)
	r := newReport("tab34app",
		fmt.Sprintf("Tables 3/4 (application-level): %s amortisation, K=%d, %d matrices", op, k, len(sel)))
	var sb strings.Builder
	iterCounts := []int{1, 10, 100, 1000, 10000}
	for _, iters := range iterCounts {
		var ratios, eff []float64
		for _, ev := range sel {
			rr := ev.Results[Key{op, ASpTRR, k}]
			base := ev.BestBaseline(op, k)
			if rr == nil || base == nil || rr.Time <= 0 {
				continue
			}
			pre := ev.RR.Preprocess.Seconds()
			tRR := rr.Time.Seconds()
			tBase := base.Time.Seconds()
			ratios = append(ratios, pre/(float64(iters)*tRR))
			eff = append(eff, float64(iters)*tBase/(pre+float64(iters)*tRR))
		}
		r.Values[fmt.Sprintf("ratio-%d", iters)] = ratios
		r.Values[fmt.Sprintf("eff-%d", iters)] = eff
		sb.WriteString(metrics.FormatBuckets(
			fmt.Sprintf("iters=%d: preprocessing / (iters × kernel) — median %.1fx, effective speedup geomean %.2fx",
				iters, metrics.Median(ratios), metrics.GeoMean(eff)),
			metrics.RatioBuckets(ratios)))
	}
	sb.WriteString("  (the paper's 0-10x buckets correspond to the iters>=100 rows:\n" +
		"   its \"actual computation time\" is an application-level quantity)\n")
	r.Text = sb.String()
	return r
}
