// Package experiments contains one driver per table and figure of the
// paper's evaluation section (§5), each regenerating the corresponding
// artifact on the synthetic corpus through the GPU simulator
// (DESIGN.md §4 maps experiment ids to drivers).
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/gpusim"
	"repro/internal/reorder"
	"repro/internal/synth"
)

// Op identifies the kernel under test.
type Op string

// The two kernels of the paper.
const (
	SpMM  Op = "spmm"
	SDDMM Op = "sddmm"
)

// System identifies one of the three compared implementations.
type System string

// The paper's three systems: the cuSPARSE-like row-wise baseline, ASpT
// without reordering, and ASpT with row-reordering.
const (
	CuSPARSE System = "cusparse"
	ASpTNR   System = "aspt-nr"
	ASpTRR   System = "aspt-rr"
)

// Key addresses one simulated kernel run.
type Key struct {
	Op  Op
	Sys System
	K   int
}

// MatrixEval holds every simulated result for one corpus matrix.
type MatrixEval struct {
	Entry synth.Entry
	// NR is the no-reordering plan (plain ASpT); RR the full Fig 5
	// pipeline with the §4 heuristics.
	NR, RR *reorder.Plan
	// Results maps (op, system, K) to simulator stats.
	Results map[Key]*gpusim.Stats
}

// Speedup returns time(base)/time(sys) for the given op and K.
func (ev *MatrixEval) Speedup(op Op, k int, sys, base System) float64 {
	s, b := ev.Results[Key{op, sys, k}], ev.Results[Key{op, base, k}]
	if s == nil || b == nil || s.Time <= 0 {
		return 0
	}
	return float64(b.Time) / float64(s.Time)
}

// BestBaseline returns the faster of cuSPARSE and ASpT-NR for the op/K —
// Table 1 compares ASpT-RR against this.
func (ev *MatrixEval) BestBaseline(op Op, k int) *gpusim.Stats {
	c, n := ev.Results[Key{op, CuSPARSE, k}], ev.Results[Key{op, ASpTNR, k}]
	switch {
	case c == nil:
		return n
	case n == nil:
		return c
	case c.Time <= n.Time:
		return c
	default:
		return n
	}
}

// Options configures an experiment run.
type Options struct {
	// Device is the simulated GPU (default: gpusim.P100()).
	Device gpusim.Config
	// Reorder is the preprocessing configuration (default: the paper's).
	Reorder reorder.Config
	// Ks lists the dense-matrix widths (paper: 512 and 1024).
	Ks []int
	// Corpus parameterises matrix generation.
	Corpus synth.Options
	// Verbose, when non-nil, receives per-matrix progress lines.
	Verbose io.Writer
	// Parallel bounds how many matrices are evaluated concurrently
	// (0 = half the CPUs; evaluation of one matrix is itself parallel
	// inside LSH, so full-width nesting oversubscribes).
	Parallel int
}

// DefaultOptions mirrors the paper's experimental setup.
func DefaultOptions() Options {
	return Options{
		Device:  gpusim.P100(),
		Reorder: reorder.DefaultConfig(),
		Ks:      []int{512, 1024},
		Corpus:  synth.Options{Scale: 1},
	}
}

func (o *Options) fill() {
	if o.Device.NumSMs == 0 {
		o.Device = gpusim.P100()
	}
	if o.Reorder.ThresholdSize == 0 && o.Reorder.LSH.SigLen == 0 {
		o.Reorder = reorder.DefaultConfig()
	}
	if len(o.Ks) == 0 {
		o.Ks = []int{512, 1024}
	}
}

// Evaluate preprocesses one matrix with and without reordering and
// simulates all (op, system, K) combinations.
func Evaluate(e synth.Entry, opts Options) (*MatrixEval, error) {
	opts.fill()
	nr, err := reorder.PreprocessNR(e.M, opts.Reorder)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: NR plan: %w", e.Name, err)
	}
	rr, err := reorder.Preprocess(e.M, opts.Reorder)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: RR plan: %w", e.Name, err)
	}
	ev := &MatrixEval{Entry: e, NR: nr, RR: rr, Results: make(map[Key]*gpusim.Stats)}
	if err := ev.simulate(opts); err != nil {
		return nil, err
	}
	return ev, nil
}

// simulate fills ev.Results for every op/system/K.
func (ev *MatrixEval) simulate(opts Options) error {
	dev := opts.Device
	for _, k := range opts.Ks {
		type run struct {
			key Key
			fn  func() (*gpusim.Stats, error)
		}
		runs := []run{
			{Key{SpMM, CuSPARSE, k}, func() (*gpusim.Stats, error) {
				return gpusim.SpMMRowWise(dev, ev.Entry.M, k, nil)
			}},
			{Key{SpMM, ASpTNR, k}, func() (*gpusim.Stats, error) {
				return gpusim.SpMMASpT(dev, ev.NR.Tiled, ev.NR.RestOrder, k)
			}},
			{Key{SpMM, ASpTRR, k}, func() (*gpusim.Stats, error) {
				return gpusim.SpMMASpT(dev, ev.RR.Tiled, ev.RR.RestOrder, k)
			}},
			{Key{SDDMM, CuSPARSE, k}, func() (*gpusim.Stats, error) {
				// cuSPARSE has no SDDMM (§5.3); the row-wise kernel
				// stands in as the reference point where one is needed.
				return gpusim.SDDMMRowWise(dev, ev.Entry.M, k, nil)
			}},
			{Key{SDDMM, ASpTNR, k}, func() (*gpusim.Stats, error) {
				return gpusim.SDDMMASpT(dev, ev.NR.Tiled, ev.NR.RestOrder, k)
			}},
			{Key{SDDMM, ASpTRR, k}, func() (*gpusim.Stats, error) {
				return gpusim.SDDMMASpT(dev, ev.RR.Tiled, ev.RR.RestOrder, k)
			}},
		}
		for _, r := range runs {
			st, err := r.fn()
			if err != nil {
				return fmt.Errorf("experiments: %s: %v/%s K=%d: %w",
					ev.Entry.Name, r.key.Op, r.key.Sys, k, err)
			}
			ev.Results[r.key] = st
		}
	}
	return nil
}

// EvaluateCorpus generates the corpus and evaluates every matrix,
// Parallel-wide across matrices. Results are ordered like the corpus and
// identical to a sequential run (each evaluation is deterministic).
func EvaluateCorpus(opts Options) ([]*MatrixEval, error) {
	opts.fill()
	entries, err := synth.Corpus(opts.Corpus)
	if err != nil {
		return nil, err
	}
	workers := opts.Parallel
	if workers <= 0 {
		workers = (runtime.GOMAXPROCS(0) + 1) / 2
	}
	if workers > len(entries) {
		workers = len(entries)
	}
	if workers < 1 {
		workers = 1
	}

	evals := make([]*MatrixEval, len(entries))
	errs := make([]error, len(entries))
	var mu sync.Mutex // serialises Verbose output
	var done int
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				start := time.Now()
				ev, err := Evaluate(entries[i], opts)
				evals[i], errs[i] = ev, err
				if opts.Verbose != nil && err == nil {
					mu.Lock()
					done++
					fmt.Fprintf(opts.Verbose, "[%3d/%3d] %-28s %9s nnz=%-8d dense %5.1f%%->%5.1f%%  r1=%-5v r2=%-5v (%v)\n",
						done, len(entries), entries[i].Name, entries[i].Family, entries[i].M.NNZ(),
						100*ev.RR.DenseRatioBefore, 100*ev.RR.DenseRatioAfter,
						ev.RR.Round1Applied, ev.RR.Round2Applied, time.Since(start).Round(time.Millisecond))
					mu.Unlock()
				}
			}
		}()
	}
	for i := range entries {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return evals, nil
}

// evaluateAll re-evaluates a set of already-evaluated matrices under a
// different Options (e.g. forced reordering), in parallel, preserving
// order.
func evaluateAll(evals []*MatrixEval, opts Options) ([]*MatrixEval, error) {
	opts.fill()
	workers := opts.Parallel
	if workers <= 0 {
		workers = (runtime.GOMAXPROCS(0) + 1) / 2
	}
	if workers > len(evals) {
		workers = len(evals)
	}
	if workers < 1 {
		workers = 1
	}
	out := make([]*MatrixEval, len(evals))
	errs := make([]error, len(evals))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = Evaluate(evals[i].Entry, opts)
			}
		}()
	}
	for i := range evals {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// NeedsReordering filters the evals to those the §4 heuristics selected
// for at least one round — the paper's "416 matrices" subset.
func NeedsReordering(evals []*MatrixEval) []*MatrixEval {
	var out []*MatrixEval
	for _, ev := range evals {
		if ev.RR.NeedsReordering() {
			out = append(out, ev)
		}
	}
	return out
}

// squareEntries filters corpus entries to square matrices (the METIS
// baseline needs an adjacency interpretation).
func squareEntries(entries []synth.Entry) []synth.Entry {
	var out []synth.Entry
	for _, e := range entries {
		if e.M.Rows == e.M.Cols {
			out = append(out, e)
		}
	}
	return out
}
