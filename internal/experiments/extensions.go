package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

// Extension experiments beyond the paper's artifacts (DESIGN.md §4
// ablations): a sweep of classic vertex orderings, and a validation of
// the §4 skip heuristics against exhaustive trial-and-error.

// OrderingSweep compares the classic vertex reorderings (multilevel
// partition, RCM, BFS, degree) against the paper's row reordering on the
// square corpus matrices: each ordering is applied symmetrically, plain
// ASpT is run on the result, and the speedup over ASpT-NR on the original
// order is reported. The paper's claim is that none of these vertex
// orderings helps SpMM the way row reordering does.
func OrderingSweep(evals []*MatrixEval, k int, opts Options) (*Report, error) {
	opts.fill()
	r := newReport("orderings", fmt.Sprintf("Extension: vertex orderings vs row reordering (SpMM, K=%d)", k))
	orderings := []struct {
		name string
		fn   func(*sparse.CSR) ([]int32, error)
	}{
		{"metis-like", func(m *sparse.CSR) ([]int32, error) {
			return partition.VertexOrder(m, partition.DefaultLeafSize, 42)
		}},
		{"rcm", partition.RCMOrder},
		{"bfs", partition.BFSOrder},
		{"degree", partition.DegreeOrder},
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %-28s", "matrix")
	for _, o := range orderings {
		fmt.Fprintf(&sb, " %10s", o.name)
	}
	fmt.Fprintf(&sb, " %10s\n", "row-reord")
	for _, ev := range evals {
		m := ev.Entry.M
		if m.Rows != m.Cols {
			continue
		}
		base := ev.Results[Key{SpMM, ASpTNR, k}]
		if base == nil {
			continue
		}
		fmt.Fprintf(&sb, "  %-28s", ev.Entry.Name)
		for _, o := range orderings {
			perm, err := o.fn(m)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", o.name, ev.Entry.Name, err)
			}
			pm, err := sparse.PermuteSymmetric(m, perm)
			if err != nil {
				return nil, err
			}
			plan, err := reorder.PreprocessNR(pm, opts.Reorder)
			if err != nil {
				return nil, err
			}
			st, err := gpusim.SpMMASpT(opts.Device, plan.Tiled, plan.RestOrder, k)
			if err != nil {
				return nil, err
			}
			sp := float64(base.Time) / float64(st.Time)
			r.Values[o.name] = append(r.Values[o.name], sp)
			fmt.Fprintf(&sb, " %10.3f", sp)
		}
		rrSp := ev.Speedup(SpMM, k, ASpTRR, ASpTNR)
		r.Values["row-reordering"] = append(r.Values["row-reordering"], rrSp)
		fmt.Fprintf(&sb, " %10.3f\n", rrSp)
	}
	fmt.Fprintf(&sb, "  geomean:")
	for _, o := range orderings {
		fmt.Fprintf(&sb, " %s=%.3f", o.name, metrics.GeoMean(r.Values[o.name]))
	}
	fmt.Fprintf(&sb, " row-reordering=%.3f\n", metrics.GeoMean(r.Values["row-reordering"]))
	r.Text = sb.String()
	return r, nil
}

// FamilySummary breaks the headline speedups down by corpus family (id
// "families"): which structural regimes the transformation helps, which
// it leaves alone — the population-level interpretation of Fig 8/9.
func FamilySummary(evals []*MatrixEval, k int) *Report {
	r := newReport("families", fmt.Sprintf("Extension: speedup by corpus family (K=%d)", k))
	type agg struct {
		spmmRR, sddmmRR []float64
		selected, total int
	}
	families := map[string]*agg{}
	var names []string
	for _, ev := range evals {
		a, ok := families[ev.Entry.Family]
		if !ok {
			a = &agg{}
			families[ev.Entry.Family] = a
			names = append(names, ev.Entry.Family)
		}
		a.total++
		if ev.RR.NeedsReordering() {
			a.selected++
		}
		a.spmmRR = append(a.spmmRR, ev.Speedup(SpMM, k, ASpTRR, CuSPARSE))
		a.sddmmRR = append(a.sddmmRR, ev.Speedup(SDDMM, k, ASpTRR, ASpTNR))
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %-12s %9s %16s %16s\n", "family", "selected", "spmm-rr/cusparse", "sddmm-rr/nr")
	for _, name := range names {
		a := families[name]
		spmm := metrics.GeoMean(a.spmmRR)
		sddmm := metrics.GeoMean(a.sddmmRR)
		fmt.Fprintf(&sb, "  %-12s %5d/%-3d %16.3f %16.3f\n", name, a.selected, a.total, spmm, sddmm)
		r.Values["spmm-"+name] = a.spmmRR
		r.Values["sddmm-"+name] = a.sddmmRR
	}
	r.Text = sb.String()
	return r
}

// KSweep measures how the reordering speedup depends on the dense-matrix
// width K (id "ksweep") — the paper fixes K ∈ {512, 1024}; the sweep
// shows the effect growing with K as the L2 holds fewer dense rows
// (fewer rows fit → misses rise → reuse engineering pays more), and
// vanishing once the whole operand fits in cache.
func KSweep(evals []*MatrixEval, opts Options) (*Report, error) {
	opts.fill()
	ks := []int{32, 64, 128, 256, 512, 1024, 2048}
	r := newReport("ksweep", "Extension: speedup vs dense width K (ASpT-RR vs best baseline, SpMM)")
	sel := stratifiedSample(NeedsReordering(evals), 2)
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %-28s", "matrix")
	for _, k := range ks {
		fmt.Fprintf(&sb, " %8s", fmt.Sprintf("K=%d", k))
	}
	sb.WriteByte('\n')
	for _, ev := range sel {
		fmt.Fprintf(&sb, "  %-28s", ev.Entry.Name)
		for _, k := range ks {
			base, err := gpusim.SpMMRowWise(opts.Device, ev.Entry.M, k, nil)
			if err != nil {
				return nil, err
			}
			nr, err := gpusim.SpMMASpT(opts.Device, ev.NR.Tiled, ev.NR.RestOrder, k)
			if err != nil {
				return nil, err
			}
			rr, err := gpusim.SpMMASpT(opts.Device, ev.RR.Tiled, ev.RR.RestOrder, k)
			if err != nil {
				return nil, err
			}
			best := base.Time
			if nr.Time < best {
				best = nr.Time
			}
			sp := float64(best) / float64(rr.Time)
			r.Values[fmt.Sprintf("k%d", k)] = append(r.Values[fmt.Sprintf("k%d", k)], sp)
			fmt.Fprintf(&sb, " %8.3f", sp)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "  geomean:")
	for _, k := range ks {
		fmt.Fprintf(&sb, " K=%d:%.3f", k, metrics.GeoMean(r.Values[fmt.Sprintf("k%d", k)]))
	}
	sb.WriteByte('\n')
	r.Text = sb.String()
	return r, nil
}

// HeuristicsValidation checks the §4 skip heuristics against ground
// truth: for every matrix it compares the heuristic plan's simulated SpMM
// time with both the always-reorder (forced) and never-reorder plans, and
// counts how often the heuristic choice is within `slack` of the best of
// the three (the trial-and-error oracle).
func HeuristicsValidation(evals []*MatrixEval, k int, opts Options) (*Report, error) {
	opts.fill()
	r := newReport("heuristics", fmt.Sprintf("Extension: §4 heuristics vs trial-and-error oracle (SpMM, K=%d)", k))
	const slack = 1.02 // within 2% of the oracle counts as correct
	correct, total := 0, 0
	var regret []float64
	var sb strings.Builder
	forced := opts
	forced.Reorder.Force = true
	fevals, err := evaluateAll(evals, forced)
	if err != nil {
		return nil, err
	}
	for i, ev := range evals {
		fev := fevals[i]
		heuristic := ev.Results[Key{SpMM, ASpTRR, k}] // heuristic plan
		never := ev.Results[Key{SpMM, ASpTNR, k}]     // never reorder
		always := fev.Results[Key{SpMM, ASpTRR, k}]   // both rounds forced
		if heuristic == nil || never == nil || always == nil {
			continue
		}
		best := never.Time
		if always.Time < best {
			best = always.Time
		}
		if heuristic.Time < best {
			best = heuristic.Time
		}
		total++
		ratio := float64(heuristic.Time) / float64(best)
		regret = append(regret, ratio)
		if ratio <= slack {
			correct++
		} else {
			fmt.Fprintf(&sb, "  miss: %-28s heuristic %v vs oracle %v (%.2fx regret)\n",
				ev.Entry.Name, heuristic.Time, best, ratio)
		}
	}
	r.Values["regret"] = regret
	fmt.Fprintf(&sb, "  heuristics within %.0f%% of oracle on %d/%d matrices (mean regret %.3fx)\n",
		(slack-1)*100, correct, total, metrics.Mean(regret))
	r.Text = sb.String()
	return r, nil
}
