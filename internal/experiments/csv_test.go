package experiments

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	r := newReport("demo", "demo")
	r.Values["alpha"] = []float64{1, 2, 3}
	r.Values["beta"] = []float64{4.5}
	dir := t.TempDir()
	path, err := r.WriteCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want header+3", len(rows))
	}
	if rows[0][0] != "alpha" || rows[0][1] != "beta" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][1] != "4.5" || rows[2][1] != "" {
		t.Fatalf("padding wrong: %v", rows)
	}
}

func TestWriteCSVEmptyReport(t *testing.T) {
	r := newReport("empty", "empty")
	if _, err := r.WriteCSV(t.TempDir()); err == nil {
		t.Fatalf("empty report accepted")
	}
}

func TestWriteAllCSV(t *testing.T) {
	a := newReport("a", "a")
	a.Values["x"] = []float64{1}
	b := newReport("b", "b")
	b.Values["y"] = []float64{2}
	empty := newReport("c", "c")
	dir := filepath.Join(t.TempDir(), "sub") // exercises MkdirAll
	paths, err := WriteAllCSV(map[string]*Report{"a": a, "b": b, "c": empty}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
}

func TestStratifiedSample(t *testing.T) {
	evals := testEvals(t)
	sample := stratifiedSample(evals, 1)
	seen := map[string]int{}
	for _, ev := range sample {
		seen[ev.Entry.Family]++
	}
	for fam, n := range seen {
		if n > 1 {
			t.Fatalf("family %s sampled %d times, want <= 1", fam, n)
		}
	}
	if len(sample) < 3 {
		t.Fatalf("sample too small: %d", len(sample))
	}
}

func TestWriteMarkdown(t *testing.T) {
	a := newReport("fig8", "Figure Eight")
	a.Text = "bucket table\n"
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, map[string]*Report{"fig8": a}, []string{"fig8", "missing"}, "hdr"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Experiment results", "hdr", "## Figure Eight", "bucket table"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
