package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

// Report is the output of one experiment driver: a rendered text table
// plus the underlying numbers for programmatic checks.
type Report struct {
	ID    string
	Title string
	Text  string
	// Values holds named series of per-matrix numbers (speedups,
	// throughputs, ratios...) keyed by series name.
	Values map[string][]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Values: make(map[string][]float64)}
}

// Fig8 regenerates Figure 8: the distribution of SpMM speedups of ASpT-NR
// and ASpT-RR over cuSPARSE across the whole corpus, per K.
func Fig8(evals []*MatrixEval, ks []int) *Report {
	r := newReport("fig8", "Fig 8: SpMM speedup over cuSPARSE, all matrices")
	var sb strings.Builder
	for _, k := range ks {
		var nr, rr []float64
		for _, ev := range evals {
			nr = append(nr, ev.Speedup(SpMM, k, ASpTNR, CuSPARSE))
			rr = append(rr, ev.Speedup(SpMM, k, ASpTRR, CuSPARSE))
		}
		r.Values[fmt.Sprintf("nr-k%d", k)] = nr
		r.Values[fmt.Sprintf("rr-k%d", k)] = rr
		sb.WriteString(metrics.FormatBuckets(
			fmt.Sprintf("ASpT-NR vs cuSPARSE (K=%d): %s", k, metrics.Summarize(nr)),
			metrics.Fig8Buckets(nr)))
		sb.WriteString(metrics.FormatBuckets(
			fmt.Sprintf("ASpT-RR vs cuSPARSE (K=%d): %s", k, metrics.Summarize(rr)),
			metrics.Fig8Buckets(rr)))
	}
	r.Text = sb.String()
	return r
}

// Fig9Point is one matrix's coordinates in the Fig 9 scatter.
type Fig9Point struct {
	Name          string
	Family        string
	DeltaDense    float64
	DeltaSim      float64
	SpeedupOverNR float64
}

// Fig9 regenerates Figure 9: for every matrix, with reordering *forced*
// (both rounds, no heuristics — as the paper does to expose the
// correlation), the change in dense-tile ratio, the change in
// consecutive-row similarity of the sparse part, and the resulting SpMM
// speedup over plain ASpT-NR at the given K.
func Fig9(evals []*MatrixEval, k int, opts Options) (*Report, []Fig9Point, error) {
	opts.fill()
	forced := opts
	forced.Reorder.Force = true
	r := newReport("fig9", fmt.Sprintf("Fig 9: reordering effect vs structure change (K=%d, forced reordering)", k))
	fevals, err := evaluateAll(evals, forced)
	if err != nil {
		return nil, nil, err
	}
	pts := make([]Fig9Point, 0, len(evals))
	var improved, degraded int
	for i, ev := range evals {
		fev := fevals[i]
		sp := fev.Speedup(SpMM, k, ASpTRR, ASpTNR)
		pts = append(pts, Fig9Point{
			Name:          ev.Entry.Name,
			Family:        ev.Entry.Family,
			DeltaDense:    fev.RR.DeltaDenseRatio(),
			DeltaSim:      fev.RR.DeltaAvgSim(),
			SpeedupOverNR: sp,
		})
		if sp > 1 {
			improved++
		} else if sp < 1 {
			degraded++
		}
	}
	var quad [4]struct{ up, down int } // quadrant x speedup sign
	for _, p := range pts {
		q := 0
		if p.DeltaDense >= 0 && p.DeltaSim >= 0 {
			q = 0
		} else if p.DeltaDense < 0 && p.DeltaSim < 0 {
			q = 1
		} else if p.DeltaDense >= 0 {
			q = 2
		} else {
			q = 3
		}
		if p.SpeedupOverNR >= 1 {
			quad[q].up++
		} else {
			quad[q].down++
		}
		r.Values["speedup"] = append(r.Values["speedup"], p.SpeedupOverNR)
		r.Values["ddense"] = append(r.Values["ddense"], p.DeltaDense)
		r.Values["dsim"] = append(r.Values["dsim"], p.DeltaSim)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d matrices: %d improved, %d degraded, %d neutral\n",
		len(pts), improved, degraded, len(pts)-improved-degraded)
	labels := []string{
		"ΔDenseRatio>=0, ΔAvgSim>=0 (paper: improved)",
		"ΔDenseRatio<0,  ΔAvgSim<0  (paper: degraded)",
		"ΔDenseRatio>=0, ΔAvgSim<0  (paper: mixed)",
		"ΔDenseRatio<0,  ΔAvgSim>=0 (paper: mixed)",
	}
	for q, lbl := range labels {
		fmt.Fprintf(&sb, "  %-46s speedup>=1: %3d   speedup<1: %3d\n", lbl, quad[q].up, quad[q].down)
	}
	fmt.Fprintf(&sb, "  name, family, dDenseRatio, dAvgSim, speedup\n")
	for _, p := range pts {
		fmt.Fprintf(&sb, "  %-28s %-10s %+7.4f %+7.4f %6.3f\n",
			p.Name, p.Family, p.DeltaDense, p.DeltaSim, p.SpeedupOverNR)
	}
	r.Text = sb.String()
	return r, pts, nil
}

// Fig9Metis regenerates the METIS comparison inside §5.2: square corpus
// matrices are vertex-reordered by the multilevel partitioner and run
// through plain ASpT; the paper reports that *all* matrices slow down,
// validating that vertex reordering does not help SpMM.
func Fig9Metis(evals []*MatrixEval, k int, opts Options) (*Report, error) {
	opts.fill()
	r := newReport("metis", fmt.Sprintf("§5.2 METIS baseline: vertex reordering + ASpT vs ASpT-NR (K=%d)", k))
	var sb strings.Builder
	slow, fast := 0, 0
	for _, ev := range evals {
		m := ev.Entry.M
		if m.Rows != m.Cols {
			continue
		}
		perm, err := VertexReorder(m)
		if err != nil {
			return nil, fmt.Errorf("experiments: metis %s: %w", ev.Entry.Name, err)
		}
		pm, err := sparse.PermuteSymmetric(m, perm)
		if err != nil {
			return nil, err
		}
		plan, err := reorder.PreprocessNR(pm, opts.Reorder)
		if err != nil {
			return nil, err
		}
		st, err := simulateSpMMASpTPlan(opts, plan, k)
		if err != nil {
			return nil, err
		}
		base := ev.Results[Key{SpMM, ASpTNR, k}]
		sp := float64(base.Time) / float64(st.Time)
		r.Values["speedup"] = append(r.Values["speedup"], sp)
		if sp < 1 {
			slow++
		} else {
			fast++
		}
		fmt.Fprintf(&sb, "  %-28s metis+aspt/aspt-nr speedup %6.3f\n", ev.Entry.Name, sp)
	}
	fmt.Fprintf(&sb, "  => %d/%d matrices slow down under vertex reordering (paper: all)\n",
		slow, slow+fast)
	r.Text = sb.String()
	return r, nil
}

// Table1 regenerates Table 1: SpMM speedups of ASpT-RR over the faster of
// cuSPARSE and ASpT-NR, on the matrices that need reordering.
func Table1(evals []*MatrixEval, ks []int) *Report {
	sel := NeedsReordering(evals)
	r := newReport("tab1", fmt.Sprintf("Table 1: SpMM, ASpT-RR vs max(cuSPARSE, ASpT-NR), %d/%d matrices need reordering", len(sel), len(evals)))
	var sb strings.Builder
	for _, k := range ks {
		var sp, trial []float64
		for _, ev := range sel {
			rrStats := ev.Results[Key{SpMM, ASpTRR, k}]
			base := ev.BestBaseline(SpMM, k)
			if rrStats == nil || base == nil || rrStats.Time <= 0 {
				continue
			}
			s := float64(base.Time) / float64(rrStats.Time)
			sp = append(sp, s)
			// §4 trial-and-error: run both once, keep the faster — the
			// deployed configuration can never lose to the baseline.
			if s < 1 {
				s = 1
			}
			trial = append(trial, s)
		}
		r.Values[fmt.Sprintf("k%d", k)] = sp
		r.Values[fmt.Sprintf("trial-k%d", k)] = trial
		sb.WriteString(metrics.FormatBuckets(
			fmt.Sprintf("K=%d: %s", k, metrics.Summarize(sp)),
			metrics.SpeedupBuckets(sp)))
		fmt.Fprintf(&sb, "  with §4 trial-and-error: %s\n", metrics.Summarize(trial))
	}
	r.Text = sb.String()
	return r
}

// Table2 regenerates Table 2: SDDMM speedups of ASpT-RR over ASpT-NR on
// the matrices that need reordering.
func Table2(evals []*MatrixEval, ks []int) *Report {
	sel := NeedsReordering(evals)
	r := newReport("tab2", fmt.Sprintf("Table 2: SDDMM, ASpT-RR vs ASpT-NR, %d matrices", len(sel)))
	var sb strings.Builder
	for _, k := range ks {
		var sp []float64
		for _, ev := range sel {
			sp = append(sp, ev.Speedup(SDDMM, k, ASpTRR, ASpTNR))
		}
		r.Values[fmt.Sprintf("k%d", k)] = sp
		sb.WriteString(metrics.FormatBuckets(
			fmt.Sprintf("K=%d: %s", k, metrics.Summarize(sp)),
			metrics.SpeedupBuckets(sp)))
	}
	r.Text = sb.String()
	return r
}

// throughputFig renders a Fig 10/11-style table: per-matrix GFLOP/s for
// each system, matrices sorted by the ASpT-NR throughput (the paper sorts
// the x-axis the same way so the lines separate).
func throughputFig(id, title string, evals []*MatrixEval, op Op, k int, systems []System) *Report {
	sel := NeedsReordering(evals)
	r := newReport(id, title)
	type row struct {
		name string
		tp   map[System]float64
	}
	rows := make([]row, 0, len(sel))
	for _, ev := range sel {
		t := row{name: ev.Entry.Name, tp: make(map[System]float64)}
		for _, sys := range systems {
			if st := ev.Results[Key{op, sys, k}]; st != nil {
				t.tp[sys] = st.Throughput
			}
		}
		rows = append(rows, t)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].tp[ASpTNR] < rows[b].tp[ASpTNR] })
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %-28s", "matrix")
	for _, sys := range systems {
		fmt.Fprintf(&sb, " %10s", sys)
	}
	sb.WriteByte('\n')
	for _, t := range rows {
		fmt.Fprintf(&sb, "  %-28s", t.name)
		for _, sys := range systems {
			fmt.Fprintf(&sb, " %10.1f", t.tp[sys])
			r.Values[string(sys)] = append(r.Values[string(sys)], t.tp[sys])
		}
		sb.WriteByte('\n')
	}
	r.Text = sb.String()
	return r
}

// Fig10 regenerates Figure 10: SpMM throughput of cuSPARSE, ASpT-NR, and
// ASpT-RR (GFLOP/s) on the matrices that need reordering.
func Fig10(evals []*MatrixEval, k int) *Report {
	return throughputFig("fig10",
		fmt.Sprintf("Fig 10: SpMM throughput (GFLOP/s), K=%d", k),
		evals, SpMM, k, []System{CuSPARSE, ASpTNR, ASpTRR})
}

// Fig11 regenerates Figure 11: SDDMM throughput of ASpT-NR and ASpT-RR.
func Fig11(evals []*MatrixEval, k int) *Report {
	return throughputFig("fig11",
		fmt.Sprintf("Fig 11: SDDMM throughput (GFLOP/s), K=%d", k),
		evals, SDDMM, k, []System{ASpTNR, ASpTRR})
}

// Fig12 regenerates Figure 12: the distribution of preprocessing
// wall-clock times over the matrices that need reordering.
func Fig12(evals []*MatrixEval) *Report {
	sel := NeedsReordering(evals)
	r := newReport("fig12", fmt.Sprintf("Fig 12: preprocessing time, %d matrices needing reordering", len(sel)))
	var secs []float64
	var sb strings.Builder
	type row struct {
		name string
		d    time.Duration
	}
	rows := make([]row, 0, len(sel))
	for _, ev := range sel {
		secs = append(secs, ev.RR.Preprocess.Seconds())
		rows = append(rows, row{ev.Entry.Name, ev.RR.Preprocess})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].d < rows[b].d })
	for _, t := range rows {
		fmt.Fprintf(&sb, "  %-28s %12v\n", t.name, t.d.Round(time.Microsecond))
	}
	fmt.Fprintf(&sb, "  min=%.3fs max=%.3fs mean=%.3fs median=%.3fs\n",
		metrics.Min(secs), metrics.Max(secs), metrics.Mean(secs), metrics.Median(secs))
	sb.WriteString(metrics.Histogram("  distribution (seconds):", secs, 8))
	r.Values["seconds"] = secs
	r.Text = sb.String()
	return r
}

// ratioTable regenerates Table 3 (SpMM) or Table 4 (SDDMM): the ratio of
// preprocessing time to one simulated kernel execution, bucketed.
func ratioTable(id, title string, evals []*MatrixEval, op Op, ks []int) *Report {
	sel := NeedsReordering(evals)
	r := newReport(id, title)
	var sb strings.Builder
	for _, k := range ks {
		var ratios, breakEven []float64
		for _, ev := range sel {
			st := ev.Results[Key{op, ASpTRR, k}]
			if st == nil || st.Time <= 0 {
				continue
			}
			ratios = append(ratios, ev.RR.Preprocess.Seconds()/st.Time.Seconds())
			// Break-even: iterations of the kernel needed before the
			// preprocessing pays for itself (the §5.4 amortisation
			// argument), infinite when reordering does not win.
			base := ev.BestBaseline(op, k)
			if base != nil && base.Time > st.Time {
				saved := base.Time.Seconds() - st.Time.Seconds()
				breakEven = append(breakEven, ev.RR.Preprocess.Seconds()/saved)
			}
		}
		r.Values[fmt.Sprintf("k%d", k)] = ratios
		r.Values[fmt.Sprintf("breakeven-k%d", k)] = breakEven
		sb.WriteString(metrics.FormatBuckets(
			fmt.Sprintf("K=%d: median ratio %.1fx", k, metrics.Median(ratios)),
			metrics.RatioBuckets(ratios)))
		fmt.Fprintf(&sb, "  break-even iterations (where reordering wins, n=%d): median %.0f, p90 %.0f\n",
			len(breakEven), metrics.Median(breakEven), metrics.Percentile(breakEven, 90))
	}
	r.Text = sb.String()
	return r
}

// Table3 regenerates Table 3 (preprocessing/compute ratio, SpMM).
func Table3(evals []*MatrixEval, ks []int) *Report {
	return ratioTable("tab3", "Table 3: preprocessing/compute time ratio, SpMM", evals, SpMM, ks)
}

// Table4 regenerates Table 4 (preprocessing/compute ratio, SDDMM).
func Table4(evals []*MatrixEval, ks []int) *Report {
	return ratioTable("tab4", "Table 4: preprocessing/compute time ratio, SDDMM", evals, SDDMM, ks)
}
