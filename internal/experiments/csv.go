package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// WriteCSV dumps a report's value series to <dir>/<id>.csv, one column
// per series (rows padded with empty cells where series lengths differ),
// so the figures can be re-plotted with any external tool.
func (r *Report) WriteCSV(dir string) (string, error) {
	if len(r.Values) == 0 {
		return "", fmt.Errorf("experiments: report %s has no value series", r.ID)
	}
	names := make([]string, 0, len(r.Values))
	for name := range r.Values {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := 0
	for _, name := range names {
		if n := len(r.Values[name]); n > rows {
			rows = n
		}
	}

	path := filepath.Join(dir, r.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	w := csv.NewWriter(f)
	if err := w.Write(names); err != nil {
		f.Close()
		return "", err
	}
	record := make([]string, len(names))
	for i := 0; i < rows; i++ {
		for c, name := range names {
			series := r.Values[name]
			if i < len(series) {
				record[c] = strconv.FormatFloat(series[i], 'g', -1, 64)
			} else {
				record[c] = ""
			}
		}
		if err := w.Write(record); err != nil {
			f.Close()
			return "", err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// WriteAllCSV writes every report in the map to dir, returning the file
// paths written.
func WriteAllCSV(reports map[string]*Report, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(reports))
	for id := range reports {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var paths []string
	for _, id := range ids {
		if len(reports[id].Values) == 0 {
			continue
		}
		p, err := reports[id].WriteCSV(dir)
		if err != nil {
			return paths, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}
