package experiments

import (
	"strings"
	"testing"
)

func TestOrderingSweep(t *testing.T) {
	evals := testEvals(t)
	var square []*MatrixEval
	for _, ev := range evals {
		if ev.Entry.M.Rows == ev.Entry.M.Cols {
			square = append(square, ev)
		}
		if len(square) == 3 {
			break
		}
	}
	r, err := OrderingSweep(square, 128, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"metis-like", "rcm", "bfs", "degree", "row-reordering"} {
		if len(r.Values[name]) != len(square) {
			t.Fatalf("%s series has %d entries, want %d", name, len(r.Values[name]), len(square))
		}
		for _, sp := range r.Values[name] {
			if sp <= 0 {
				t.Fatalf("%s speedup %v", name, sp)
			}
		}
	}
	if !strings.Contains(r.Text, "geomean:") {
		t.Fatalf("missing summary line")
	}
}

func TestTable34App(t *testing.T) {
	evals := testEvals(t)
	r := Table34App(evals, SpMM, 128)
	n := len(NeedsReordering(evals))
	for _, iters := range []int{1, 10, 100, 1000, 10000} {
		ratios := r.Values["ratio-"+itoa(iters)]
		eff := r.Values["eff-"+itoa(iters)]
		if len(ratios) != n || len(eff) != n {
			t.Fatalf("iters=%d series sizes %d/%d, want %d", iters, len(ratios), len(eff), n)
		}
	}
	// Ratios shrink and effective speedups grow with iteration count.
	r1 := r.Values["ratio-1"]
	r4 := r.Values["ratio-10000"]
	e1 := r.Values["eff-1"]
	e4 := r.Values["eff-10000"]
	for i := range r1 {
		if r4[i] >= r1[i] {
			t.Fatalf("ratio did not shrink with iterations")
		}
		if e4[i] < e1[i] {
			t.Fatalf("effective speedup decreased with iterations")
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestHeuristicsValidation(t *testing.T) {
	evals := testEvals(t)[:6]
	r, err := HeuristicsValidation(evals, 128, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Values["regret"]) != len(evals) {
		t.Fatalf("regret series = %d, want %d", len(r.Values["regret"]), len(evals))
	}
	for _, g := range r.Values["regret"] {
		if g < 1 {
			t.Fatalf("regret below 1 is impossible: %v", g)
		}
	}
	if !strings.Contains(r.Text, "oracle") {
		t.Fatalf("missing summary: %q", r.Text)
	}
}

func TestKSweep(t *testing.T) {
	evals := testEvals(t)
	r, err := KSweep(evals, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := len(r.Values["k32"])
	if n == 0 {
		t.Fatalf("ksweep empty")
	}
	for _, k := range []string{"k32", "k64", "k128", "k256", "k512", "k1024", "k2048"} {
		if len(r.Values[k]) != n {
			t.Fatalf("series %s has %d entries, want %d", k, len(r.Values[k]), n)
		}
		for _, sp := range r.Values[k] {
			if sp <= 0 {
				t.Fatalf("speedup %v in %s", sp, k)
			}
		}
	}
}

func TestFamilySummary(t *testing.T) {
	evals := testEvals(t)
	r := FamilySummary(evals, 128)
	if len(r.Values) == 0 || r.Text == "" {
		t.Fatalf("family summary empty")
	}
	total := 0
	for name, series := range r.Values {
		if len(series) == 0 {
			t.Fatalf("series %s empty", name)
		}
		if name[:5] == "spmm-" {
			total += len(series)
		}
	}
	if total != len(evals) {
		t.Fatalf("families cover %d of %d evals", total, len(evals))
	}
}

func TestPaperComparison(t *testing.T) {
	evals := testEvals(t)
	reports := map[string]*Report{
		"fig8": Fig8(evals, []int{512, 1024}),
		"tab1": Table1(evals, []int{512, 1024}),
		"tab2": Table2(evals, []int{512, 1024}),
	}
	out := PaperComparison(reports)
	if !strings.Contains(out, "SpMM max speedup") || !strings.Contains(out, "paper") {
		t.Fatalf("comparison table wrong:\n%s", out)
	}
	// Missing reports degrade gracefully.
	partial := PaperComparison(map[string]*Report{})
	if !strings.Contains(partial, "missing report") {
		t.Fatalf("missing-report path broken:\n%s", partial)
	}
}
