package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sparse"
)

// Geometric generates a k-nearest-neighbour graph of n uniform random
// points in the unit square — the mesh-like structure of FEM and point
// cloud matrices in SuiteSparse. With sorted=true the points (and hence
// the rows) are ordered by spatial grid cell, giving the naturally
// clustered layout a mesh generator would emit; with sorted=false rows
// arrive in generation order, hiding the spatial locality — the
// scrambled regime row reordering recovers.
//
// Neighbour search uses a uniform grid: exact k-NN within an expanding
// cell neighbourhood, O(n·k) expected time.
func Geometric(n, k int, sorted bool, seed int64) (*sparse.CSR, error) {
	if n <= 0 || k <= 0 {
		return nil, fmt.Errorf("synth: geometric needs positive n and k, got n=%d k=%d", n, k)
	}
	if k >= n {
		return nil, fmt.Errorf("synth: geometric k=%d must be below n=%d", k, n)
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}

	// Grid with ~1 point per cell on average.
	side := 1
	for side*side < n {
		side++
	}
	cellOf := func(i int) (int, int) {
		cx := int(xs[i] * float64(side))
		cy := int(ys[i] * float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return cx, cy
	}
	grid := make([][]int32, side*side)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		grid[cy*side+cx] = append(grid[cy*side+cx], int32(i))
	}

	if sorted {
		// Renumber points by grid cell (row-major over cells) so
		// spatially close points get nearby indices. Build the
		// permutation and relabel the coordinates.
		perm := make([]int32, 0, n)
		for _, cell := range grid {
			perm = append(perm, cell...)
		}
		nx := make([]float64, n)
		ny := make([]float64, n)
		for newID, oldID := range perm {
			nx[newID] = xs[oldID]
			ny[newID] = ys[oldID]
		}
		xs, ys = nx, ny
		for i := range grid {
			grid[i] = grid[i][:0]
		}
		for i := 0; i < n; i++ {
			cx, cy := cellOf(i)
			grid[cy*side+cx] = append(grid[cy*side+cx], int32(i))
		}
	}

	type cand struct {
		id int32
		d2 float64
	}
	sets := make([][]int32, n)
	vals := make([][]float32, n)
	var cands []cand
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		cands = cands[:0]
		// Expand the search ring by ring; once k candidates are in
		// hand, scan one extra ring so the k nearest cannot hide in an
		// unvisited cell, then stop.
		extraRings := -1
		for r := 0; r <= side && extraRings != 0; r++ {
			if extraRings > 0 {
				extraRings--
			}
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					if r > 0 && abs(dx) != r && abs(dy) != r {
						continue // interior already visited
					}
					gx, gy := cx+dx, cy+dy
					if gx < 0 || gy < 0 || gx >= side || gy >= side {
						continue
					}
					for _, j := range grid[gy*side+gx] {
						if int(j) == i {
							continue
						}
						ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
						cands = append(cands, cand{j, ddx*ddx + ddy*ddy})
					}
				}
			}
			if extraRings < 0 && len(cands) >= k {
				extraRings = 2
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].d2 < cands[b].d2 })
		if len(cands) > k {
			cands = cands[:k]
		}
		for _, c := range cands {
			sets[i] = append(sets[i], c.id)
			vals[i] = append(vals[i], 0.1+0.9*rng.Float32())
		}
	}
	return sparse.FromRows(n, n, sets, vals)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
