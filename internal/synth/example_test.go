package synth_test

import (
	"fmt"

	"repro/internal/sparse"
	"repro/internal/synth"
)

// ExampleClustered contrasts the two regimes the corpus is built around:
// the same latent clusters, once naturally grouped (high consecutive-row
// similarity, the Fig 7a case) and once scrambled (the paper's target
// case — similarity invisible to position-based tiling).
func ExampleClustered() {
	params := synth.ClusterParams{
		Rows: 512, Cols: 2048, Clusters: 64,
		PrototypeNNZ: 12, Keep: 0.9, Noise: 1, Seed: 8,
	}
	grouped, err := synth.Clustered(params)
	if err != nil {
		panic(err)
	}
	params.Scrambled = true
	scrambled, err := synth.Clustered(params)
	if err != nil {
		panic(err)
	}
	g := sparse.AvgConsecutiveSimilarity(grouped)
	s := sparse.AvgConsecutiveSimilarity(scrambled)
	fmt.Println("grouped similarity clearly higher:", g > 5*s && g > 0.3)
	// Output: grouped similarity clearly higher: true
}

// ExampleCorpus shows corpus generation at reduced scale.
func ExampleCorpus() {
	entries, err := synth.Corpus(synth.Options{Scale: 0.05, Families: []string{"diagonal"}})
	if err != nil {
		panic(err)
	}
	fmt.Println("entries:", len(entries), "family:", entries[0].Family)
	// Output: entries: 4 family: diagonal
}
