package synth

import (
	"fmt"
	"strings"

	"repro/internal/sparse"
)

// Entry is one corpus matrix with its provenance.
type Entry struct {
	Name   string
	Family string
	M      *sparse.CSR
}

// Options scales and filters corpus generation.
type Options struct {
	// Scale multiplies matrix dimensions (1.0 = the default population
	// used by the experiment drivers; tests use ~0.1).
	Scale float64
	// Families, when non-empty, keeps only entries whose family matches
	// one of the given names.
	Families []string
	// SeedOffset shifts every generator seed, producing an independent
	// corpus draw.
	SeedOffset int64
}

// Families lists the family names in the corpus.
var Families = []string{
	"uniform", "diagonal", "banded", "rmat", "blockdiag",
	"clustered", "scrambled", "bipartite", "geometric",
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 64 {
		v = 64
	}
	return v
}

// scaledClusters shrinks a cluster count with the corpus scale so the
// latent cluster size (rows/clusters) stays roughly constant.
func scaledClusters(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 8 {
		v = 8
	}
	return v
}

// Corpus deterministically generates the evaluation population described
// in DESIGN.md §2: a mix of structural regimes mirroring the SuiteSparse
// and Network Repository collections. The scrambled-cluster family — the
// paper's motivating case — is intentionally over-represented, as it is
// in the paper's 416 "need reordering" subset.
func Corpus(opts Options) ([]Entry, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	sc := opts.Scale
	so := opts.SeedOffset
	var entries []Entry

	add := func(family, name string, m *sparse.CSR, err error) error {
		if err != nil {
			return fmt.Errorf("synth: corpus %s/%s: %w", family, name, err)
		}
		entries = append(entries, Entry{Name: name, Family: family, M: m})
		return nil
	}

	// Scattered regimes: little latent similarity; reordering should be
	// skipped or harmless.
	for si, seed := range []int64{101, 102} {
		for _, rows := range []int{8192, 16384} {
			for _, npr := range []int{8, 32} {
				m, err := Uniform(scaled(rows, sc), scaled(rows, sc), npr, seed+so)
				if err2 := add("uniform", fmt.Sprintf("uniform-r%d-n%d-s%d", rows, npr, si), m, err); err2 != nil {
					return nil, err2
				}
			}
		}
	}
	for _, n := range []int{10000, 20000} {
		for _, w := range []int{1, 3} {
			m, err := Diagonal(scaled(n, sc), w, 201+so)
			if err2 := add("diagonal", fmt.Sprintf("diagonal-n%d-w%d", n, w), m, err); err2 != nil {
				return nil, err2
			}
		}
	}

	// Well-clustered regimes: reordering should be skipped by the §4
	// heuristics (or at least not help).
	for si, seed := range []int64{301, 302} {
		for _, rows := range []int{8192, 16384} {
			for _, bw := range []int{64, 512} {
				m, err := Banded(scaled(rows, sc), scaled(rows, sc), scaled(bw, sc), 16, seed+so)
				if err2 := add("banded", fmt.Sprintf("banded-r%d-b%d-s%d", rows, bw, si), m, err); err2 != nil {
					return nil, err2
				}
			}
		}
	}
	for si, seed := range []int64{401, 402} {
		for _, bs := range []int{64, 256} {
			for _, density := range []float64{0.1, 0.3} {
				rows := scaled(16384, sc)
				m, err := BlockDiagonal(rows, rows, bs, density, 0.1, seed+so)
				name := fmt.Sprintf("blockdiag-b%d-d%02.0f-s%d", bs, density*100, si)
				if err2 := add("blockdiag", name, m, err); err2 != nil {
					return nil, err2
				}
			}
		}
	}
	for si, seed := range []int64{501, 502} {
		for _, clusters := range []int{64, 256} {
			for _, keep := range []float64{0.7, 0.9} {
				rows := scaled(16384, sc)
				m, err := Clustered(ClusterParams{
					Rows: rows, Cols: rows, Clusters: scaledClusters(clusters, sc),
					PrototypeNNZ: 24, Keep: keep, Noise: 2,
					Seed: seed + so, Scrambled: false,
				})
				name := fmt.Sprintf("clustered-c%d-k%02.0f-s%d", clusters, keep*100, si)
				if err2 := add("clustered", name, m, err); err2 != nil {
					return nil, err2
				}
			}
		}
	}

	// Power-law graphs: mixed latent similarity.
	for si, seed := range []int64{601, 602} {
		for _, scale := range []int{13, 14} {
			for _, ef := range []int{8, 16} {
				rscale := scale
				if sc < 0.5 {
					rscale = scale - 3
				}
				m, err := RMAT(rscale, ef, 0.57, 0.19, 0.19, seed+so)
				if err2 := add("rmat", fmt.Sprintf("rmat-s%d-e%d-i%d", scale, ef, si), m, err); err2 != nil {
					return nil, err2
				}
			}
		}
	}

	// The paper's target regime: latent clusters hidden by row order.
	// Over-represented (4 seeds) as in the paper's selected subset.
	for si, seed := range []int64{701, 702, 703, 704} {
		for _, clusters := range []int{256, 2048} {
			for _, keep := range []float64{0.7, 0.9} {
				rows := scaled(16384, sc)
				m, err := Clustered(ClusterParams{
					Rows: rows, Cols: rows, Clusters: scaledClusters(clusters, sc),
					PrototypeNNZ: 24, Keep: keep, Noise: 2,
					Seed: seed + so, Scrambled: true,
				})
				name := fmt.Sprintf("scrambled-c%d-k%02.0f-s%d", clusters, keep*100, si)
				if err2 := add("scrambled", name, m, err); err2 != nil {
					return nil, err2
				}
			}
		}
	}
	for si, seed := range []int64{801, 802} {
		for _, groups := range []int{8, 32} {
			for _, npr := range []int{16, 48} {
				users := scaled(16384, sc)
				m, err := Bipartite(users, scaled(8192, sc), npr, groups, seed+so)
				name := fmt.Sprintf("bipartite-g%d-n%d-s%d", groups, npr, si)
				if err2 := add("bipartite", name, m, err); err2 != nil {
					return nil, err2
				}
			}
		}
	}

	// Mesh-like k-NN graphs: sorted = naturally clustered mesh
	// numbering, unsorted = arrival order hiding the spatial locality.
	for si, seed := range []int64{901, 902} {
		for _, knn := range []int{6, 12} {
			for _, ordered := range []bool{true, false} {
				n := scaled(16384, sc)
				m, err := Geometric(n, knn, ordered, seed+so)
				tag := "rand"
				if ordered {
					tag = "sorted"
				}
				name := fmt.Sprintf("geometric-k%d-%s-s%d", knn, tag, si)
				if err2 := add("geometric", name, m, err); err2 != nil {
					return nil, err2
				}
			}
		}
	}

	if len(opts.Families) > 0 {
		keep := make(map[string]bool, len(opts.Families))
		for _, f := range opts.Families {
			keep[strings.ToLower(f)] = true
		}
		filtered := entries[:0]
		for _, e := range entries {
			if keep[e.Family] {
				filtered = append(filtered, e)
			}
		}
		entries = filtered
	}
	return entries, nil
}
