package synth

import (
	"math"
	"testing"

	"repro/internal/sparse"
)

func TestGeometricShape(t *testing.T) {
	m, err := Geometric(500, 6, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Rows != 500 || m.Cols != 500 {
		t.Fatalf("shape %s", m)
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowLen(i) != 6 {
			t.Fatalf("row %d has %d neighbours, want 6", i, m.RowLen(i))
		}
		for _, c := range m.RowCols(i) {
			if int(c) == i {
				t.Fatalf("self-loop at %d", i)
			}
		}
	}
}

func TestGeometricValidation(t *testing.T) {
	if _, err := Geometric(0, 3, false, 1); err == nil {
		t.Errorf("n=0 accepted")
	}
	if _, err := Geometric(10, 0, false, 1); err == nil {
		t.Errorf("k=0 accepted")
	}
	if _, err := Geometric(5, 5, false, 1); err == nil {
		t.Errorf("k>=n accepted")
	}
}

func TestGeometricDeterministic(t *testing.T) {
	a, err := Geometric(300, 4, false, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Geometric(300, 4, false, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("same seed differs")
	}
}

func TestGeometricKNNExactOnSmall(t *testing.T) {
	// Brute-force verify the k nearest on a small instance by checking
	// that every selected neighbour is at least as close as every
	// unselected point (allowing distance ties).
	const n, k = 120, 5
	m, err := Geometric(n, k, false, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the same points (same rng consumption order as Geometric:
	// x,y interleaved first).
	// Instead of replaying rng internals, verify a weaker exactness
	// property that is rng-independent: neighbour sets are mutual-ish —
	// the graph's symmetrised degree stays near 2k, which fails if the
	// grid search returned arbitrary far points.
	tr := sparse.Transpose(m)
	totalUnion := 0
	for i := 0; i < n; i++ {
		totalUnion += sparse.UnionSize(m.RowCols(i), tr.RowCols(i))
	}
	avg := float64(totalUnion) / float64(n)
	if avg < float64(k) || avg > 2*float64(k) {
		t.Fatalf("symmetrised degree %v outside [k, 2k]", avg)
	}
}

func TestGeometricSortedIsClustered(t *testing.T) {
	sortedM, err := Geometric(2000, 8, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	randomM, err := Geometric(2000, 8, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	ss := sparse.AvgConsecutiveSimilarity(sortedM)
	rs := sparse.AvgConsecutiveSimilarity(randomM)
	if ss < 2*rs {
		t.Fatalf("sorted geometric not more clustered: sorted %v vs random %v", ss, rs)
	}
	if math.IsNaN(ss) || math.IsNaN(rs) {
		t.Fatalf("NaN similarity")
	}
}
