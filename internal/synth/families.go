// Package synth generates the synthetic matrix corpus that substitutes
// for the paper's 1084 SuiteSparse / Network Repository matrices
// (DESIGN.md §2). Each family mirrors a structural regime found in the
// collections; what varies across families — and what the paper's result
// is about — is how much latent row similarity exists and whether the
// natural row order already exposes it.
//
// All generators are deterministic functions of their parameters and
// seed.
package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sparse"
)

// rowSetsToCSR converts per-row column sets into a CSR matrix with
// uniform(0.1, 1] values (values are irrelevant to locality; nonzero
// values keep SDDMM outputs meaningful).
func rowSetsToCSR(rows, cols int, sets [][]int32, rng *rand.Rand) (*sparse.CSR, error) {
	vals := make([][]float32, rows)
	for i := range sets {
		sort.Slice(sets[i], func(a, b int) bool { return sets[i][a] < sets[i][b] })
		// Drop duplicates defensively; generators normally avoid them.
		sets[i] = dedupSorted(sets[i])
		vals[i] = make([]float32, len(sets[i]))
		for j := range vals[i] {
			vals[i][j] = 0.1 + 0.9*rng.Float32()
		}
	}
	return sparse.FromRows(rows, cols, sets, vals)
}

func dedupSorted(s []int32) []int32 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// sampleDistinct draws n distinct values from [0, limit) into dst.
func sampleDistinct(rng *rand.Rand, n, limit int, dst []int32) []int32 {
	if n > limit {
		n = limit
	}
	seen := make(map[int32]struct{}, n)
	for len(dst) < n {
		c := int32(rng.Intn(limit))
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		dst = append(dst, c)
	}
	return dst
}

// Uniform generates an Erdős–Rényi-style matrix: every row draws
// nnzPerRow distinct uniform columns. Rows share almost no columns when
// cols >> nnzPerRow — the "extremely scattered" regime of Fig 7b where
// reordering cannot help and LSH finds few candidates.
func Uniform(rows, cols, nnzPerRow int, seed int64) (*sparse.CSR, error) {
	if err := checkDims(rows, cols, nnzPerRow); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]int32, rows)
	for i := range sets {
		sets[i] = sampleDistinct(rng, nnzPerRow, cols, nil)
	}
	return rowSetsToCSR(rows, cols, sets, rng)
}

// Diagonal generates a square matrix with ones on the main diagonal plus
// width-1 extra bands — the degenerate no-reuse case of Fig 7b.
func Diagonal(n, width int, seed int64) (*sparse.CSR, error) {
	if err := checkDims(n, n, width); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]int32, n)
	for i := range sets {
		for w := 0; w < width; w++ {
			c := i + w
			if c < n {
				sets[i] = append(sets[i], int32(c))
			}
		}
	}
	return rowSetsToCSR(n, n, sets, rng)
}

// Banded generates a stencil/FEM-style matrix: each row's nonzeros are
// drawn from a band of the given bandwidth around the diagonal.
// Consecutive rows overlap heavily — the "already well clustered" regime
// of Fig 7a where the §4 heuristics skip reordering.
func Banded(rows, cols, bandwidth, nnzPerRow int, seed int64) (*sparse.CSR, error) {
	if err := checkDims(rows, cols, nnzPerRow); err != nil {
		return nil, err
	}
	if bandwidth < nnzPerRow {
		bandwidth = nnzPerRow
	}
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]int32, rows)
	for i := range sets {
		center := int(float64(i) / float64(rows) * float64(cols))
		lo := center - bandwidth/2
		if lo < 0 {
			lo = 0
		}
		if lo+bandwidth > cols {
			lo = cols - bandwidth
		}
		picks := sampleDistinct(rng, nnzPerRow, bandwidth, nil)
		for j := range picks {
			picks[j] += int32(lo)
		}
		sets[i] = picks
	}
	return rowSetsToCSR(rows, cols, sets, rng)
}

// RMAT generates a scale-free directed graph adjacency matrix with the
// recursive R-MAT procedure (a, b, c, d quadrant probabilities summing to
// 1; the Graph500 values 0.57/0.19/0.19/0.05 by default via NewRMAT).
// Power-law degree structure mirrors web/social graphs in the Network
// Repository.
func RMAT(scale, edgeFactor int, a, b, c float64, seed int64) (*sparse.CSR, error) {
	n := 1 << scale
	if scale <= 0 || scale > 26 {
		return nil, fmt.Errorf("synth: RMAT scale %d out of range (1..26)", scale)
	}
	if edgeFactor <= 0 {
		return nil, fmt.Errorf("synth: RMAT edgeFactor must be positive, got %d", edgeFactor)
	}
	d := 1 - a - b - c
	if a < 0 || b < 0 || c < 0 || d < 0 {
		return nil, fmt.Errorf("synth: RMAT probabilities (%.2f,%.2f,%.2f) invalid", a, b, c)
	}
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n)
	edges := n * edgeFactor
	for e := 0; e < edges; e++ {
		row, col := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant
			case r < a+b:
				col |= 1 << bit
			case r < a+b+c:
				row |= 1 << bit
			default:
				row |= 1 << bit
				col |= 1 << bit
			}
		}
		coo.Add(row, col, 0.1+0.9*rng.Float32())
	}
	return coo.ToCSR()
}

// BlockDiagonal generates a community-structured matrix: square blocks on
// the diagonal, each filled at the given density, plus sparse
// inter-block noise. Rows within a block are similar and adjacent —
// well-clustered input.
func BlockDiagonal(rows, cols, blockSize int, density, noise float64, seed int64) (*sparse.CSR, error) {
	if err := checkDims(rows, cols, 1); err != nil {
		return nil, err
	}
	if blockSize <= 0 || density <= 0 || density > 1 {
		return nil, fmt.Errorf("synth: bad block parameters size=%d density=%g", blockSize, density)
	}
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]int32, rows)
	for i := range sets {
		block := i / blockSize
		lo := block * blockSize
		if lo >= cols {
			lo = cols - blockSize
			if lo < 0 {
				lo = 0
			}
		}
		hi := lo + blockSize
		if hi > cols {
			hi = cols
		}
		want := int(density * float64(hi-lo))
		if want < 1 {
			want = 1
		}
		picks := sampleDistinct(rng, want, hi-lo, nil)
		for j := range picks {
			picks[j] += int32(lo)
		}
		if noise > 0 {
			extra := int(noise * float64(want))
			for e := 0; e < extra; e++ {
				picks = append(picks, int32(rng.Intn(cols)))
			}
		}
		sets[i] = picks
	}
	return rowSetsToCSR(rows, cols, sets, rng)
}

// ClusterParams configures the prototype-cluster families.
type ClusterParams struct {
	Rows, Cols int
	// Clusters is the number of latent row prototypes.
	Clusters int
	// PrototypeNNZ is each prototype's column-set size.
	PrototypeNNZ int
	// Keep is the probability a row inherits each prototype column.
	Keep float64
	// Noise is the number of extra uniform columns added per row.
	Noise int
	Seed  int64
	// Scrambled randomly permutes the rows after generation, hiding the
	// clusters from position — the paper's target regime, where
	// row-reordering recovers the structure.
	Scrambled bool
}

// Clustered generates rows as noisy copies of latent prototypes. With
// Scrambled=false rows of a cluster are contiguous (the Fig 7a
// "already clustered" case); with Scrambled=true the same matrix is
// row-permuted uniformly at random (high latent similarity, invisible to
// plain ASpT — exactly the case row-reordering fixes).
func Clustered(p ClusterParams) (*sparse.CSR, error) {
	if err := checkDims(p.Rows, p.Cols, p.PrototypeNNZ); err != nil {
		return nil, err
	}
	if p.Clusters <= 0 || p.Keep <= 0 || p.Keep > 1 {
		return nil, fmt.Errorf("synth: bad cluster parameters %+v", p)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	prototypes := make([][]int32, p.Clusters)
	for c := range prototypes {
		prototypes[c] = sampleDistinct(rng, p.PrototypeNNZ, p.Cols, nil)
	}
	sets := make([][]int32, p.Rows)
	perCluster := (p.Rows + p.Clusters - 1) / p.Clusters
	for i := range sets {
		proto := prototypes[i/perCluster%p.Clusters]
		var row []int32
		for _, c := range proto {
			if rng.Float64() < p.Keep {
				row = append(row, c)
			}
		}
		for e := 0; e < p.Noise; e++ {
			row = append(row, int32(rng.Intn(p.Cols)))
		}
		if len(row) == 0 {
			row = append(row, proto[rng.Intn(len(proto))])
		}
		sets[i] = row
	}
	m, err := rowSetsToCSR(p.Rows, p.Cols, sets, rng)
	if err != nil {
		return nil, err
	}
	if p.Scrambled {
		perm := make([]int32, p.Rows)
		for i := range perm {
			perm[i] = int32(i)
		}
		rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		return sparse.PermuteRows(m, perm)
	}
	return m, nil
}

// Bipartite generates a recommender-style user×item matrix: item
// popularity follows a Zipf distribution and users belong to latent taste
// groups that bias which item range they draw from.
func Bipartite(users, items, nnzPerUser, tasteGroups int, seed int64) (*sparse.CSR, error) {
	if err := checkDims(users, items, nnzPerUser); err != nil {
		return nil, err
	}
	if tasteGroups <= 0 {
		tasteGroups = 1
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(items-1))
	sets := make([][]int32, users)
	groupSpan := items / tasteGroups
	if groupSpan < 1 {
		groupSpan = 1
	}
	for u := range sets {
		group := rng.Intn(tasteGroups)
		base := group * groupSpan
		seen := make(map[int32]struct{}, nnzPerUser)
		for len(seen) < nnzPerUser {
			var c int32
			if rng.Float64() < 0.6 {
				// in-group pick, Zipf-popular within the group span
				c = int32(base + int(zipf.Uint64())%groupSpan)
			} else {
				c = int32(zipf.Uint64())
			}
			seen[c] = struct{}{}
		}
		row := make([]int32, 0, len(seen))
		for c := range seen {
			row = append(row, c)
		}
		sets[u] = row
	}
	m, err := rowSetsToCSR(users, items, sets, rng)
	if err != nil {
		return nil, err
	}
	// Users arrive in arbitrary order in real logs: scramble.
	perm := make([]int32, users)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
	return sparse.PermuteRows(m, perm)
}

func checkDims(rows, cols, nnzPerRow int) error {
	if rows <= 0 || cols <= 0 {
		return fmt.Errorf("synth: non-positive dimensions %dx%d", rows, cols)
	}
	if nnzPerRow <= 0 {
		return fmt.Errorf("synth: non-positive nnz per row %d", nnzPerRow)
	}
	return nil
}
