package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func TestGeneratorsValidateAndDeterministic(t *testing.T) {
	type gen struct {
		name string
		fn   func(seed int64) (*sparse.CSR, error)
	}
	gens := []gen{
		{"uniform", func(s int64) (*sparse.CSR, error) { return Uniform(200, 150, 5, s) }},
		{"diagonal", func(s int64) (*sparse.CSR, error) { return Diagonal(100, 2, s) }},
		{"banded", func(s int64) (*sparse.CSR, error) { return Banded(200, 200, 32, 8, s) }},
		{"rmat", func(s int64) (*sparse.CSR, error) { return RMAT(8, 8, 0.57, 0.19, 0.19, s) }},
		{"blockdiag", func(s int64) (*sparse.CSR, error) { return BlockDiagonal(128, 128, 16, 0.3, 0.1, s) }},
		{"clustered", func(s int64) (*sparse.CSR, error) {
			return Clustered(ClusterParams{Rows: 128, Cols: 128, Clusters: 16, PrototypeNNZ: 8, Keep: 0.8, Noise: 1, Seed: s})
		}},
		{"scrambled", func(s int64) (*sparse.CSR, error) {
			return Clustered(ClusterParams{Rows: 128, Cols: 128, Clusters: 16, PrototypeNNZ: 8, Keep: 0.8, Noise: 1, Seed: s, Scrambled: true})
		}},
		{"bipartite", func(s int64) (*sparse.CSR, error) { return Bipartite(128, 96, 6, 4, s) }},
	}
	for _, g := range gens {
		t.Run(g.name, func(t *testing.T) {
			a, err := g.fn(42)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("invalid matrix: %v", err)
			}
			if a.NNZ() == 0 {
				t.Fatalf("empty matrix")
			}
			b, err := g.fn(42)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("same seed differs")
			}
			c, err := g.fn(43)
			if err != nil {
				t.Fatal(err)
			}
			if a.Equal(c) {
				t.Fatalf("different seed identical")
			}
		})
	}
}

func TestGeneratorParameterValidation(t *testing.T) {
	if _, err := Uniform(0, 10, 2, 1); err == nil {
		t.Errorf("Uniform accepted 0 rows")
	}
	if _, err := Uniform(10, 10, 0, 1); err == nil {
		t.Errorf("Uniform accepted 0 nnz/row")
	}
	if _, err := RMAT(0, 8, 0.5, 0.2, 0.2, 1); err == nil {
		t.Errorf("RMAT accepted scale 0")
	}
	if _, err := RMAT(8, 0, 0.5, 0.2, 0.2, 1); err == nil {
		t.Errorf("RMAT accepted edgeFactor 0")
	}
	if _, err := RMAT(8, 8, 0.9, 0.2, 0.2, 1); err == nil {
		t.Errorf("RMAT accepted probabilities > 1")
	}
	if _, err := BlockDiagonal(10, 10, 0, 0.5, 0, 1); err == nil {
		t.Errorf("BlockDiagonal accepted block size 0")
	}
	if _, err := BlockDiagonal(10, 10, 4, 1.5, 0, 1); err == nil {
		t.Errorf("BlockDiagonal accepted density > 1")
	}
	if _, err := Clustered(ClusterParams{Rows: 10, Cols: 10, Clusters: 0, PrototypeNNZ: 2, Keep: 0.5}); err == nil {
		t.Errorf("Clustered accepted 0 clusters")
	}
	if _, err := Clustered(ClusterParams{Rows: 10, Cols: 10, Clusters: 2, PrototypeNNZ: 2, Keep: 1.5}); err == nil {
		t.Errorf("Clustered accepted Keep > 1")
	}
}

func TestBandedLocality(t *testing.T) {
	m, err := Banded(500, 500, 24, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive rows draw from nearly identical windows: similarity
	// must be clearly above the scattered regime.
	if sim := sparse.AvgConsecutiveSimilarity(m); sim < 0.1 {
		t.Fatalf("banded similarity too low: %v", sim)
	}
	// Every nonzero within the band.
	for i := 0; i < m.Rows; i++ {
		for _, c := range m.RowCols(i) {
			if int(c) < i-40 || int(c) > i+40 {
				t.Fatalf("row %d has out-of-band column %d", i, c)
			}
		}
	}
}

func TestUniformScattered(t *testing.T) {
	m, err := Uniform(500, 5000, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sim := sparse.AvgConsecutiveSimilarity(m); sim > 0.02 {
		t.Fatalf("uniform matrix too similar: %v", sim)
	}
}

func TestClusteredVsScrambledSimilarity(t *testing.T) {
	p := ClusterParams{Rows: 512, Cols: 2048, Clusters: 64, PrototypeNNZ: 12, Keep: 0.9, Noise: 1, Seed: 8}
	grouped, err := Clustered(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Scrambled = true
	scrambled, err := Clustered(p)
	if err != nil {
		t.Fatal(err)
	}
	gs := sparse.AvgConsecutiveSimilarity(grouped)
	ss := sparse.AvgConsecutiveSimilarity(scrambled)
	if gs < 4*ss || gs < 0.3 {
		t.Fatalf("scrambling did not hide similarity: grouped %v scrambled %v", gs, ss)
	}
}

func TestRMATPowerLaw(t *testing.T) {
	m, err := RMAT(10, 16, 0.57, 0.19, 0.19, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The max in-degree of an R-MAT graph is far above the mean (heavy
	// tail).
	counts := m.ColCounts()
	max, sum := int32(0), int64(0)
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += int64(c)
	}
	mean := float64(sum) / float64(len(counts))
	if float64(max) < 8*mean {
		t.Fatalf("no heavy tail: max %d vs mean %.1f", max, mean)
	}
}

func TestDiagonalShape(t *testing.T) {
	m, err := Diagonal(50, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 47; i++ {
		cols := m.RowCols(i)
		if len(cols) != 3 || cols[0] != int32(i) {
			t.Fatalf("row %d = %v", i, cols)
		}
	}
	// Tail rows truncate at the boundary.
	if got := m.RowLen(49); got != 1 {
		t.Fatalf("last row len = %d, want 1", got)
	}
}

func TestBipartiteShape(t *testing.T) {
	m, err := Bipartite(200, 100, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 200 || m.Cols != 100 {
		t.Fatalf("shape %s", m)
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowLen(i) != 8 {
			t.Fatalf("user %d has %d items, want 8", i, m.RowLen(i))
		}
	}
}

func TestCorpusGeneration(t *testing.T) {
	entries, err := Corpus(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 40 {
		t.Fatalf("corpus too small: %d", len(entries))
	}
	families := map[string]int{}
	names := map[string]bool{}
	for _, e := range entries {
		if err := e.M.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", e.Name, err)
		}
		if names[e.Name] {
			t.Fatalf("duplicate name %s", e.Name)
		}
		names[e.Name] = true
		families[e.Family]++
	}
	for _, f := range Families {
		if families[f] == 0 {
			t.Errorf("family %s missing from corpus", f)
		}
	}
}

func TestCorpusFamilyFilter(t *testing.T) {
	entries, err := Corpus(Options{Scale: 0.05, Families: []string{"uniform", "RMAT"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("filter removed everything")
	}
	for _, e := range entries {
		if e.Family != "uniform" && e.Family != "rmat" {
			t.Fatalf("unexpected family %s", e.Family)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a, err := Corpus(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Corpus(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("corpus sizes differ")
	}
	for i := range a {
		if a[i].Name != b[i].Name || !a[i].M.Equal(b[i].M) {
			t.Fatalf("corpus entry %d differs", i)
		}
	}
	c, err := Corpus(Options{Scale: 0.05, SeedOffset: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a[0].M.Equal(c[0].M) {
		t.Fatalf("seed offset had no effect")
	}
}

// Property: every generator produces matrices whose rows have unique,
// in-range, sorted columns (Validate), for arbitrary seeds.
func TestPropertyGeneratorsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := Uniform(10+rng.Intn(100), 10+rng.Intn(100), 1+rng.Intn(6), seed)
		if err != nil || m.Validate() != nil {
			return false
		}
		m, err = Clustered(ClusterParams{
			Rows: 10 + rng.Intn(100), Cols: 10 + rng.Intn(100),
			Clusters: 1 + rng.Intn(10), PrototypeNNZ: 1 + rng.Intn(8),
			Keep: 0.1 + 0.9*rng.Float64(), Noise: rng.Intn(3),
			Seed: seed, Scrambled: seed%2 == 0,
		})
		if err != nil || m.Validate() != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
