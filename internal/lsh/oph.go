package lsh

import (
	"context"
	"math"

	"repro/internal/faultinject"
	"repro/internal/par"
	"repro/internal/sparse"
)

// One-permutation hashing (Li, Owen & Zhang, NIPS'12): instead of
// evaluating SigLen independent hash functions per element (cost
// SigLen·nnz), hash each element once, partition the hash space into
// SigLen bins, and take the minimum per bin — cost nnz, a SigLen× cheaper
// signature stage with comparable banding behaviour. Empty bins are
// filled by "densification" (borrowing the nearest non-empty bin's value,
// rotating right), which keeps the collision probability unbiased for
// sparse rows.
//
// This is an extension to the paper's preprocessing (which uses plain
// MinHash); BenchmarkAblationScheme quantifies the trade.

// ComputeSignaturesOPH builds a signature matrix compatible with
// Signatures (same banding code) using one-permutation hashing.
func ComputeSignaturesOPH(m *sparse.CSR, p Params) (*Signatures, error) {
	return ComputeSignaturesOPHCtx(context.Background(), m, p)
}

// ComputeSignaturesOPHCtx is ComputeSignaturesOPH with cooperative
// cancellation between row blocks; a worker panic surfaces as a
// *par.PanicError instead of crashing the process.
func ComputeSignaturesOPHCtx(ctx context.Context, m *sparse.CSR, p Params) (*Signatures, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	signatureOps.Add(1)
	fam := newHashFamily(1, p.Seed)
	sigs := &Signatures{
		SigLen: p.SigLen,
		Rows:   m.Rows,
		Sig:    make([]uint32, m.Rows*p.SigLen),
	}
	binWidth := uint64(math.MaxUint32)/uint64(p.SigLen) + 1
	err := par.ForChunksCtx(ctx, m.Rows, sigRowBlock, p.Workers, func(lo, hi int) error {
		if err := faultinject.Fire("lsh.signatures"); err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			row := sigs.Row(i)
			for k := range row {
				row[k] = math.MaxUint32
			}
			for _, c := range m.RowCols(i) {
				h := fam.hash(0, uint32(c))
				bin := int(uint64(h) / binWidth)
				// Store the within-bin offset so bins are comparable.
				v := h - uint32(uint64(bin)*binWidth)
				if v < row[bin] {
					row[bin] = v
				}
			}
			densify(row)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sigs, nil
}

// densify fills each empty bin (MaxUint32) from the nearest non-empty
// bin to its right (circularly), mixing in the borrow distance — the
// densified one-permutation hashing scheme: two rows that agree on the
// donor bin then also agree on every bin borrowed from it at equal
// distance, keeping the per-bin collision probability close to the
// Jaccard similarity. A row with no nonzeros keeps all-max signatures
// (it never collides, matching ComputeSignatures). Bins are few
// (SigLen), so the circular scan is cheap.
func densify(row []uint32) {
	n := len(row)
	anyFilled := false
	for _, v := range row {
		if v != math.MaxUint32 {
			anyFilled = true
			break
		}
	}
	if !anyFilled {
		return
	}
	src := make([]uint32, n)
	copy(src, row)
	for k := 0; k < n; k++ {
		if src[k] != math.MaxUint32 {
			continue
		}
		for d := 1; d <= n; d++ {
			donor := src[(k+d)%n]
			if donor != math.MaxUint32 {
				row[k] = borrowTag(donor, uint32(d))
				break
			}
		}
	}
}

// borrowTag mixes the borrow distance into a donated value so distinct
// borrow chains do not spuriously collide.
func borrowTag(v, dist uint32) uint32 {
	x := uint64(v)*0x9e3779b1 + uint64(dist)*0x85ebca77
	x ^= x >> 16
	t := uint32(x)
	if t == math.MaxUint32 {
		t--
	}
	return t
}
