package lsh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pairheap"
	"repro/internal/sparse"
)

func mustMatrix(t *testing.T, rows, cols int, sets [][]int32) *sparse.CSR {
	t.Helper()
	m, err := sparse.FromRows(rows, cols, sets, nil)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return m
}

func TestParamsValidation(t *testing.T) {
	m := mustMatrix(t, 2, 4, [][]int32{{0}, {1}})
	bad := []Params{
		{SigLen: 0, BandSize: 2},
		{SigLen: -4, BandSize: 2},
		{SigLen: 8, BandSize: 0},
		{SigLen: 8, BandSize: 3}, // does not divide
	}
	for _, p := range bad {
		if _, err := ComputeSignatures(m, p); err == nil {
			t.Errorf("accepted invalid params %+v", p)
		}
		if _, err := CandidatePairs(m, p); err == nil {
			t.Errorf("CandidatePairs accepted invalid params %+v", p)
		}
	}
}

func TestSignaturesDeterministic(t *testing.T) {
	m := mustMatrix(t, 4, 16, [][]int32{{0, 3, 5}, {0, 3, 5}, {7, 9}, {1}})
	p := DefaultParams()
	a, err := ComputeSignatures(m, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeSignatures(m, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sig {
		if a.Sig[i] != b.Sig[i] {
			t.Fatalf("signatures differ at %d", i)
		}
	}
	// Different seed should give different signatures.
	p2 := p
	p2.Seed++
	c, _ := ComputeSignatures(m, p2)
	same := true
	for i := range a.Sig {
		if a.Sig[i] != c.Sig[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical signatures")
	}
}

func TestIdenticalRowsIdenticalSignatures(t *testing.T) {
	m := mustMatrix(t, 3, 32, [][]int32{{1, 8, 20}, {1, 8, 20}, {2, 9}})
	sigs, err := ComputeSignatures(m, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := sigs.EstimateJaccard(0, 1); got != 1 {
		t.Fatalf("identical rows estimate %v, want 1", got)
	}
	if got := sigs.EstimateJaccard(0, 2); got == 1 {
		t.Fatalf("disjoint rows estimated as identical")
	}
}

func TestEstimateConcentratesOnJaccard(t *testing.T) {
	// Two rows with known Jaccard 0.5 (|∩|=8 of |∪|=16); with siglen 512
	// the MinHash estimate should be within ±0.15 of truth.
	a := make([]int32, 0, 12)
	b := make([]int32, 0, 12)
	for i := int32(0); i < 8; i++ {
		a = append(a, i)
		b = append(b, i)
	}
	for i := int32(100); i < 104; i++ {
		a = append(a, i)
	}
	for i := int32(200); i < 204; i++ {
		b = append(b, i)
	}
	m := mustMatrix(t, 2, 256, [][]int32{a, b})
	truth := sparse.RowJaccard(m, 0, 1)
	if math.Abs(truth-8.0/16.0) > 1e-9 {
		t.Fatalf("fixture Jaccard = %v", truth)
	}
	p := Params{SigLen: 512, BandSize: 2, Seed: 1}
	sigs, err := ComputeSignatures(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if est := sigs.EstimateJaccard(0, 1); math.Abs(est-truth) > 0.15 {
		t.Fatalf("estimate %v too far from %v", est, truth)
	}
}

func TestCandidatePairsFindSimilarRows(t *testing.T) {
	// Rows 0 and 1 identical, row 2 disjoint: LSH must propose (0,1)
	// with sim 1 and nothing pairing row 2.
	m := mustMatrix(t, 3, 64, [][]int32{{3, 17, 40}, {3, 17, 40}, {5, 22}})
	pairs, err := CandidatePairs(m, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	found01 := false
	for _, p := range pairs {
		if p.I == 0 && p.J == 1 {
			found01 = true
			if p.Sim != 1 {
				t.Fatalf("pair (0,1) sim = %v, want 1", p.Sim)
			}
		}
		if p.I == 2 || p.J == 2 {
			t.Fatalf("row 2 paired: %+v", p)
		}
	}
	if !found01 {
		t.Fatalf("identical rows not proposed")
	}
}

func TestCandidatePairsEmptyRowsIgnored(t *testing.T) {
	m := mustMatrix(t, 4, 8, [][]int32{{}, {}, {1, 2}, {}})
	pairs, err := CandidatePairs(m, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if m.RowLen(int(p.I)) == 0 || m.RowLen(int(p.J)) == 0 {
			t.Fatalf("empty row in pair %+v", p)
		}
	}
}

func TestCandidatePairsScatteredMatrixFew(t *testing.T) {
	// A diagonal matrix has no similar rows; LSH must propose zero
	// pairs (the paper's §4 automatic detection of the scattered case).
	sets := make([][]int32, 64)
	for i := range sets {
		sets[i] = []int32{int32(i)}
	}
	m := mustMatrix(t, 64, 64, sets)
	pairs, err := CandidatePairs(m, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Fatalf("diagonal matrix produced %d candidate pairs", len(pairs))
	}
}

func TestMinSimFilters(t *testing.T) {
	m := mustMatrix(t, 2, 16, [][]int32{{0, 1, 2, 9}, {0, 1, 2, 12}})
	p := DefaultParams()
	pairs, err := CandidatePairs(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("expected 1 pair, got %d", len(pairs))
	}
	p.MinSim = 0.9 // J = 3/5 = 0.6 < 0.9 -> filtered
	pairs, err = CandidatePairs(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Fatalf("MinSim filter kept %d pairs", len(pairs))
	}
}

func TestMaxBucketCapsPairBlowup(t *testing.T) {
	// 100 identical rows: all collide in every band. With MaxBucket
	// below 100, only consecutive chains are emitted, so pair count is
	// linear, not quadratic.
	sets := make([][]int32, 100)
	for i := range sets {
		sets[i] = []int32{1, 5, 9}
	}
	m := mustMatrix(t, 100, 16, sets)
	p := DefaultParams()
	p.MaxBucket = 8
	pairs, err := CandidatePairs(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 || len(pairs) > 200 {
		t.Fatalf("chained bucket produced %d pairs, want linear count", len(pairs))
	}
}

func TestWorkersParameter(t *testing.T) {
	m := mustMatrix(t, 10, 32, [][]int32{
		{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10},
	})
	p := DefaultParams()
	for _, w := range []int{1, 2, 100} {
		p.Workers = w
		sigs, err := ComputeSignatures(m, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		p1 := p
		p1.Workers = 1
		ref, _ := ComputeSignatures(m, p1)
		for i := range sigs.Sig {
			if sigs.Sig[i] != ref.Sig[i] {
				t.Fatalf("workers=%d changes signatures", w)
			}
		}
	}
}

func TestPairsFromSignaturesReuse(t *testing.T) {
	// A signature matrix computed once can be banded at different band
	// sizes; results must match fresh end-to-end runs.
	m := mustMatrix(t, 8, 64, [][]int32{
		{1, 2, 3}, {1, 2, 3}, {9, 10}, {9, 10, 11},
		{20, 30, 40}, {20, 30, 41}, {50}, {51},
	})
	base := DefaultParams()
	sigs, err := ComputeSignatures(m, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, bsize := range []int{1, 2, 4} {
		p := base
		p.BandSize = bsize
		reused, err := PairsFromSignatures(m, sigs, p)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := CandidatePairs(m, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(reused) != len(fresh) {
			t.Fatalf("bsize=%d: reuse %d pairs vs fresh %d", bsize, len(reused), len(fresh))
		}
		for i := range fresh {
			if reused[i] != fresh[i] {
				t.Fatalf("bsize=%d: pair %d differs", bsize, i)
			}
		}
	}
}

func TestParallelBandingDeterministic(t *testing.T) {
	m := mustMatrix(t, 40, 128, func() [][]int32 {
		sets := make([][]int32, 40)
		for i := range sets {
			sets[i] = []int32{int32(i % 8 * 10), int32(i%8*10 + 1), int32(80 + i)}
		}
		return sets
	}())
	p := DefaultParams()
	var ref []pairheap.Pair
	for _, workers := range []int{1, 2, 7, 32} {
		p.Workers = workers
		got, err := CandidatePairs(m, p)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d changed pair count: %d vs %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d changed pair %d", workers, i)
			}
		}
	}
}

// Property: candidate pairs are canonical (I<J), deduplicated, reference
// valid rows, and carry exact Jaccard sims in (0, 1].
func TestPropertyCandidatePairsWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(40)
		cols := 4 + rng.Intn(40)
		sets := make([][]int32, rows)
		for i := range sets {
			n := rng.Intn(5)
			seen := map[int32]bool{}
			for len(seen) < n {
				seen[int32(rng.Intn(cols))] = true
			}
			for c := range seen {
				sets[i] = append(sets[i], c)
			}
		}
		m, err := sparse.FromRows(rows, cols, sets, nil)
		if err != nil {
			return false
		}
		p := Params{SigLen: 32, BandSize: 2, Seed: uint64(seed)}
		pairs, err := CandidatePairs(m, p)
		if err != nil {
			return false
		}
		seen := map[[2]int32]bool{}
		for _, pr := range pairs {
			if pr.I >= pr.J || pr.I < 0 || int(pr.J) >= rows {
				return false
			}
			k := [2]int32{pr.I, pr.J}
			if seen[k] {
				return false
			}
			seen[k] = true
			if pr.Sim <= 0 || pr.Sim > 1 {
				return false
			}
			if math.Abs(pr.Sim-sparse.RowJaccard(m, int(pr.I), int(pr.J))) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LSH recall — rows with Jaccard >= 0.8 are found with the
// paper's parameters (siglen=128, bsize=2 makes missing an 0.8-similar
// pair astronomically unlikely: (1-0.64)^64 ≈ 4e-29).
func TestPropertyLSHRecallHighSim(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := []int32{}
		for len(base) < 10 {
			c := int32(rng.Intn(64))
			dup := false
			for _, b := range base {
				if b == c {
					dup = true
				}
			}
			if !dup {
				base = append(base, c)
			}
		}
		// Row 1 = row 0 with one column replaced: J = 9/11 ≈ 0.82.
		other := append([]int32(nil), base...)
		for {
			c := int32(rng.Intn(64))
			conflict := false
			for _, b := range base {
				if b == c {
					conflict = true
				}
			}
			if !conflict {
				other[0] = c
				break
			}
		}
		m, err := sparse.FromRows(2, 64, [][]int32{base, other}, nil)
		if err != nil {
			return false
		}
		p := DefaultParams()
		p.Seed = uint64(seed)
		pairs, err := CandidatePairs(m, p)
		if err != nil {
			return false
		}
		return len(pairs) == 1 && pairs[0].I == 0 && pairs[0].J == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
