package lsh

import (
	"context"
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func hardeningMatrix(t testing.TB) *sparse.CSR {
	t.Helper()
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 512, Cols: 512, Clusters: 64, PrototypeNNZ: 16,
		Keep: 0.8, Noise: 2, Seed: 7, Scrambled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Every parallel stage of the LSH pipeline must surface an injected
// error as a returned error (never a crash) regardless of which worker
// hits it.
func TestFaultInjectionAllLSHSites(t *testing.T) {
	m := hardeningMatrix(t)
	p := DefaultParams()
	p.Workers = 4
	for _, site := range []string{"lsh.signatures", "lsh.banding", "lsh.pairmerge", "lsh.scoring"} {
		t.Run(site, func(t *testing.T) {
			defer faultinject.ErrorAt(site)()
			_, err := CandidatePairsCtx(context.Background(), m, p)
			if !errors.Is(err, faultinject.Err) {
				t.Fatalf("CandidatePairsCtx with fault at %s = %v, want faultinject.Err", site, err)
			}
		})
	}
}

// A panic in any stage worker must come back as a *par.PanicError, not
// crash the process or deadlock the join.
func TestPanicIsolationLSH(t *testing.T) {
	m := hardeningMatrix(t)
	p := DefaultParams()
	p.Workers = 4
	for _, site := range []string{"lsh.signatures", "lsh.banding", "lsh.scoring"} {
		t.Run(site, func(t *testing.T) {
			defer faultinject.PanicAt(site)()
			_, err := CandidatePairsCtx(context.Background(), m, p)
			var pe *par.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("panic at %s surfaced as %v, want *par.PanicError", site, err)
			}
		})
	}
}

func TestCandidatePairsCtxCancelled(t *testing.T) {
	m := hardeningMatrix(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CandidatePairsCtx(ctx, m, DefaultParams()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled CandidatePairsCtx = %v, want context.Canceled", err)
	}
}

func TestOPHSignatureFault(t *testing.T) {
	m := hardeningMatrix(t)
	p := DefaultParams()
	p.OPH = true
	p.Workers = 4
	defer faultinject.ErrorAt("lsh.signatures")()
	if _, err := ComputeSignaturesOPHCtx(context.Background(), m, p); !errors.Is(err, faultinject.Err) {
		t.Fatalf("OPH signatures with fault = %v, want faultinject.Err", err)
	}
}

// After a faulted run, the same inputs must succeed once the hook is
// removed: failures leave no sticky state behind.
func TestLSHRecoversAfterFault(t *testing.T) {
	m := hardeningMatrix(t)
	p := DefaultParams()
	p.Workers = 4
	restore := faultinject.ErrorAt("lsh.banding")
	if _, err := CandidatePairsCtx(context.Background(), m, p); err == nil {
		t.Fatalf("armed fault did not fire")
	}
	restore()
	pairs, err := CandidatePairsCtx(context.Background(), m, p)
	if err != nil {
		t.Fatalf("clean run after fault: %v", err)
	}
	if len(pairs) == 0 {
		t.Fatalf("clean run found no pairs on a clustered matrix")
	}
}
