package lsh

import (
	"testing"

	"repro/internal/sparse"
	"repro/internal/synth"
)

func benchMatrix(b *testing.B) *sparse.CSR {
	b.Helper()
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 8192, Cols: 8192, Clusters: 1024, PrototypeNNZ: 20,
		Keep: 0.8, Noise: 2, Seed: 1, Scrambled: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkComputeSignatures measures the siglen·nnz MinHash stage (the
// embarrassingly parallel part of the paper's preprocessing).
func BenchmarkComputeSignatures(b *testing.B) {
	m := benchMatrix(b)
	p := DefaultParams()
	b.SetBytes(int64(m.NNZ() * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeSignatures(m, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCandidatePairs measures the full LSH stage: signatures,
// banding, and exact-Jaccard scoring of candidates.
func BenchmarkCandidatePairs(b *testing.B) {
	m := benchMatrix(b)
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CandidatePairs(m, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBandingOnly isolates banding+scoring on precomputed
// signatures.
func BenchmarkBandingOnly(b *testing.B) {
	m := benchMatrix(b)
	p := DefaultParams()
	sigs, err := ComputeSignatures(m, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PairsFromSignatures(m, sigs, p); err != nil {
			b.Fatal(err)
		}
	}
}
