package lsh

import (
	"math"
	"testing"

	"repro/internal/sparse"
)

func TestOPHIdenticalRowsCollide(t *testing.T) {
	m := mustMatrix(t, 3, 64, [][]int32{{3, 17, 40}, {3, 17, 40}, {5, 22}})
	sigs, err := ComputeSignaturesOPH(m, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := sigs.EstimateJaccard(0, 1); got != 1 {
		t.Fatalf("identical rows estimate %v, want 1", got)
	}
	if got := sigs.EstimateJaccard(0, 2); got > 0.2 {
		t.Fatalf("disjoint rows estimate too high: %v", got)
	}
}

func TestOPHEmptyRowAllMax(t *testing.T) {
	m := mustMatrix(t, 2, 8, [][]int32{{}, {1}})
	sigs, err := ComputeSignaturesOPH(m, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sigs.Row(0) {
		if v != math.MaxUint32 {
			t.Fatalf("empty row signature filled: %v", v)
		}
	}
	// The non-empty row must be fully densified (no empty bins).
	for _, v := range sigs.Row(1) {
		if v == math.MaxUint32 {
			t.Fatalf("non-empty row has undensified bin")
		}
	}
}

func TestOPHValidatesParams(t *testing.T) {
	m := mustMatrix(t, 1, 4, [][]int32{{0}})
	if _, err := ComputeSignaturesOPH(m, Params{SigLen: 7, BandSize: 2}); err == nil {
		t.Fatalf("invalid params accepted")
	}
}

func TestOPHEstimateTracksJaccard(t *testing.T) {
	// Rows with true Jaccard 0.5: the OPH estimate should land within
	// ±0.2 at siglen 256 (OPH has a slightly higher variance than plain
	// MinHash at equal length).
	a := make([]int32, 0, 16)
	b := make([]int32, 0, 16)
	for i := int32(0); i < 8; i++ {
		a = append(a, i*13)
		b = append(b, i*13)
	}
	for i := int32(0); i < 4; i++ {
		a = append(a, 500+i)
		b = append(b, 600+i)
	}
	m := mustMatrix(t, 2, 1024, [][]int32{a, b})
	truth := sparse.RowJaccard(m, 0, 1)
	p := Params{SigLen: 256, BandSize: 2, Seed: 5}
	sigs, err := ComputeSignaturesOPH(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if est := sigs.EstimateJaccard(0, 1); math.Abs(est-truth) > 0.2 {
		t.Fatalf("estimate %v too far from %v", est, truth)
	}
}

func TestOPHWorksWithBanding(t *testing.T) {
	// The OPH signature matrix feeds the same banding code and must find
	// the similar pair and not the dissimilar one.
	m := mustMatrix(t, 4, 256, [][]int32{
		{1, 20, 40, 60, 80}, {1, 20, 40, 60, 81}, {100, 120}, {140, 160},
	})
	p := DefaultParams()
	sigs, err := ComputeSignaturesOPH(m, p)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := PairsFromSignatures(m, sigs, p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pr := range pairs {
		if pr.I == 0 && pr.J == 1 {
			found = true
		}
		if int(pr.I) >= 2 || int(pr.J) >= 2 {
			// Pairs touching rows 2/3 must at least not involve row 0/1.
			if pr.I < 2 {
				t.Fatalf("spurious pair %+v", pr)
			}
		}
	}
	if !found {
		t.Fatalf("similar pair not found; pairs=%v", pairs)
	}
}

func TestDensify(t *testing.T) {
	row := []uint32{5, math.MaxUint32, math.MaxUint32, 9}
	densify(row)
	for k, v := range row {
		if v == math.MaxUint32 {
			t.Fatalf("bin %d left empty", k)
		}
	}
	// Donors unchanged.
	if row[0] != 5 || row[3] != 9 {
		t.Fatalf("donor bins modified: %v", row)
	}
	// Equal rows densify identically.
	a := []uint32{5, math.MaxUint32, 7, math.MaxUint32}
	b := []uint32{5, math.MaxUint32, 7, math.MaxUint32}
	densify(a)
	densify(b)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("densify not deterministic at %d", k)
		}
	}
	// All-empty rows stay empty.
	e := []uint32{math.MaxUint32, math.MaxUint32}
	densify(e)
	if e[0] != math.MaxUint32 {
		t.Fatalf("all-empty row densified")
	}
}
