// Package lsh implements the locality-sensitive hashing stage of the
// paper's preprocessing (§3.2): MinHash signatures over the column-index
// set of each sparse row, banded bucketing, and candidate-pair generation.
//
// The paper uses LSH as a black box with two parameters: siglen (signature
// length; longer = more accurate) and bsize (band size; smaller = more
// candidate pairs), citing ch. 3 of Mining of Massive Datasets. The total
// cost is siglen·nnz for signatures, (siglen/bsize)·N for banding, and
// d_max·E for scoring the E candidate pairs — matching the complexity
// stated in the paper. Signature computation is embarrassingly parallel
// (the paper uses OpenMP; we use goroutines).
package lsh

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/pairheap"
	"repro/internal/sparse"
)

// Params configures the LSH stage.
type Params struct {
	// SigLen is the MinHash signature length (paper default: 128).
	SigLen int
	// BandSize is the number of signature entries per band (paper
	// default: 2). SigLen must be divisible by BandSize.
	BandSize int
	// Seed makes the hash family deterministic.
	Seed uint64
	// MaxBucket caps the number of rows in one band bucket that are
	// expanded into pairs; buckets larger than this contribute only
	// MaxBucket consecutive-pair links instead of all O(B²) pairs. This
	// bounds E on pathological inputs (e.g. many identical rows).
	// 0 means DefaultMaxBucket.
	MaxBucket int
	// MinSim drops candidate pairs whose exact Jaccard similarity is
	// below this threshold (0 keeps all pairs found).
	MinSim float64
	// Workers bounds signature-computation parallelism; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// OPH switches signature computation to one-permutation hashing
	// (cost nnz instead of SigLen·nnz; see ComputeSignaturesOPH) — an
	// extension over the paper's plain MinHash.
	OPH bool
}

// DefaultMaxBucket bounds per-bucket pair expansion.
const DefaultMaxBucket = 64

// DefaultParams returns the configuration the paper uses in all its
// experiments: siglen=128, bsize=2.
func DefaultParams() Params {
	return Params{SigLen: 128, BandSize: 2, Seed: 0x5eed1e55, MaxBucket: DefaultMaxBucket}
}

func (p Params) validate() error {
	if p.SigLen <= 0 {
		return fmt.Errorf("lsh: SigLen must be positive, got %d", p.SigLen)
	}
	if p.BandSize <= 0 || p.SigLen%p.BandSize != 0 {
		return fmt.Errorf("lsh: BandSize %d must be positive and divide SigLen %d", p.BandSize, p.SigLen)
	}
	return nil
}

// Signatures holds the MinHash signature matrix: row i's signature is
// Sig[i*SigLen : (i+1)*SigLen]. Rows with no nonzeros have all-max
// signatures and never collide with non-empty rows.
type Signatures struct {
	SigLen int
	Rows   int
	Sig    []uint32
}

// Row returns row i's signature.
func (s *Signatures) Row(i int) []uint32 { return s.Sig[i*s.SigLen : (i+1)*s.SigLen] }

// EstimateJaccard returns the fraction of matching signature positions
// between rows i and j — an unbiased estimator of their Jaccard
// similarity.
func (s *Signatures) EstimateJaccard(i, j int) float64 {
	a, b := s.Row(i), s.Row(j)
	n := 0
	for k := range a {
		if a[k] == b[k] {
			n++
		}
	}
	return float64(n) / float64(s.SigLen)
}

// splitmix64 advances and hashes a 64-bit state; used to derive the hash
// family deterministically from the seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashFamily holds per-function multiply-shift constants. h_k(c) =
// (a_k*c + b_k) mixed to 32 bits; distinct odd multipliers give a family
// of near-universal hashes over column indices.
type hashFamily struct {
	a, b []uint64
}

func newHashFamily(n int, seed uint64) hashFamily {
	f := hashFamily{a: make([]uint64, n), b: make([]uint64, n)}
	s := seed
	for k := 0; k < n; k++ {
		s = splitmix64(s)
		f.a[k] = s | 1 // odd multiplier
		s = splitmix64(s)
		f.b[k] = s
	}
	return f
}

func (f hashFamily) hash(k int, c uint32) uint32 {
	x := f.a[k]*uint64(c) + f.b[k]
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return uint32(x)
}

// ComputeSignatures builds MinHash signatures for every row of m in
// parallel.
func ComputeSignatures(m *sparse.CSR, p Params) (*Signatures, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	fam := newHashFamily(p.SigLen, p.Seed)
	sigs := &Signatures{
		SigLen: p.SigLen,
		Rows:   m.Rows,
		Sig:    make([]uint32, m.Rows*p.SigLen),
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m.Rows {
		workers = m.Rows
	}
	if workers == 0 {
		return sigs, nil
	}
	var wg sync.WaitGroup
	chunk := (m.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > m.Rows {
			hi = m.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				row := sigs.Row(i)
				cols := m.RowCols(i)
				for k := 0; k < p.SigLen; k++ {
					min := uint32(math.MaxUint32)
					for _, c := range cols {
						if h := fam.hash(k, uint32(c)); h < min {
							min = h
						}
					}
					row[k] = min
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return sigs, nil
}

// CandidatePairs runs the full LSH stage on m: signatures (MinHash, or
// OPH when p.OPH is set), banded bucketing, per-bucket pair expansion,
// exact Jaccard scoring, and MinSim filtering. The result is
// deduplicated and deterministic for a fixed Params.
func CandidatePairs(m *sparse.CSR, p Params) ([]pairheap.Pair, error) {
	var sigs *Signatures
	var err error
	if p.OPH {
		sigs, err = ComputeSignaturesOPH(m, p)
	} else {
		sigs, err = ComputeSignatures(m, p)
	}
	if err != nil {
		return nil, err
	}
	return PairsFromSignatures(m, sigs, p)
}

// PairsFromSignatures performs banding and scoring on precomputed
// signatures. Exposed separately so parameter sweeps can reuse
// signatures. Like signature computation, banding and scoring are
// embarrassingly parallel (per band / per pair) and run across Workers
// goroutines; the result is deduplicated and deterministic for a fixed
// Params regardless of worker count.
func PairsFromSignatures(m *sparse.CSR, sigs *Signatures, p Params) ([]pairheap.Pair, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	maxBucket := p.MaxBucket
	if maxBucket <= 0 {
		maxBucket = DefaultMaxBucket
	}
	nbands := p.SigLen / p.BandSize
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nbands {
		workers = nbands
	}
	if workers < 1 {
		workers = 1
	}

	// Phase 1 (parallel over bands): each worker buckets its bands and
	// emits locally-deduplicated candidate keys.
	keyCh := make(chan map[uint64]struct{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make(map[uint64]struct{})
			buckets := make(map[uint64][]int32)
			addKey := func(i, j int32) {
				if i == j {
					return
				}
				if i > j {
					i, j = j, i
				}
				local[uint64(uint32(i))<<32|uint64(uint32(j))] = struct{}{}
			}
			for b := w; b < nbands; b += workers {
				for k := range buckets {
					delete(buckets, k)
				}
				for i := 0; i < m.Rows; i++ {
					// Empty rows are skipped: their all-max signatures
					// would otherwise all collide.
					if m.RowLen(i) == 0 {
						continue
					}
					sig := sigs.Row(i)[b*p.BandSize : (b+1)*p.BandSize]
					h := uint64(0xcbf29ce484222325)
					for _, v := range sig {
						h ^= uint64(v)
						h *= 0x100000001b3
					}
					buckets[h] = append(buckets[h], int32(i))
				}
				for _, rows := range buckets {
					if len(rows) < 2 {
						continue
					}
					if len(rows) > maxBucket {
						// Chain consecutive members only: similar rows
						// stay connected transitively through the
						// clustering while avoiding O(B²) pair blowup.
						for k := 0; k+1 < len(rows); k++ {
							addKey(rows[k], rows[k+1])
						}
						continue
					}
					for a := 0; a < len(rows); a++ {
						for b2 := a + 1; b2 < len(rows); b2++ {
							addKey(rows[a], rows[b2])
						}
					}
				}
			}
			keyCh <- local
		}(w)
	}
	wg.Wait()
	close(keyCh)
	seen := make(map[uint64]struct{})
	for local := range keyCh {
		for k := range local {
			seen[k] = struct{}{}
		}
	}

	// Phase 2 (parallel over candidates): exact Jaccard scoring — the
	// d_max·E term of the paper's cost model.
	keys := make([]uint64, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	pairs := make([]pairheap.Pair, len(keys))
	keep := make([]bool, len(keys))
	var swg sync.WaitGroup
	chunk := (len(keys) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		if lo >= hi {
			break
		}
		swg.Add(1)
		go func(lo, hi int) {
			defer swg.Done()
			for idx := lo; idx < hi; idx++ {
				i := int32(keys[idx] >> 32)
				j := int32(keys[idx] & 0xffffffff)
				sim := sparse.RowJaccard(m, int(i), int(j))
				if sim >= p.MinSim && sim > 0 {
					pairs[idx] = pairheap.Pair{Sim: sim, I: i, J: j}
					keep[idx] = true
				}
			}
		}(lo, hi)
	}
	swg.Wait()
	out := pairs[:0]
	for idx := range pairs {
		if keep[idx] {
			out = append(out, pairs[idx])
		}
	}

	sort.Slice(out, func(a, b int) bool {
		if out[a].Sim != out[b].Sim {
			return out[a].Sim > out[b].Sim
		}
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out, nil
}
