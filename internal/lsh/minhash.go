// Package lsh implements the locality-sensitive hashing stage of the
// paper's preprocessing (§3.2): MinHash signatures over the column-index
// set of each sparse row, banded bucketing, and candidate-pair generation.
//
// The paper uses LSH as a black box with two parameters: siglen (signature
// length; longer = more accurate) and bsize (band size; smaller = more
// candidate pairs), citing ch. 3 of Mining of Massive Datasets. The total
// cost is siglen·nnz for signatures, (siglen/bsize)·N for banding, and
// d_max·E for scoring the E candidate pairs — matching the complexity
// stated in the paper. Signature computation is embarrassingly parallel
// (the paper uses OpenMP; we use goroutines).
package lsh

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pairheap"
	"repro/internal/par"
	"repro/internal/sparse"
)

// Params configures the LSH stage.
type Params struct {
	// SigLen is the MinHash signature length (paper default: 128).
	SigLen int
	// BandSize is the number of signature entries per band (paper
	// default: 2). SigLen must be divisible by BandSize.
	BandSize int
	// Seed makes the hash family deterministic.
	Seed uint64
	// MaxBucket caps the number of rows in one band bucket that are
	// expanded into pairs; buckets larger than this contribute only
	// MaxBucket consecutive-pair links instead of all O(B²) pairs. This
	// bounds E on pathological inputs (e.g. many identical rows).
	// 0 means DefaultMaxBucket.
	MaxBucket int
	// MinSim drops candidate pairs whose exact Jaccard similarity is
	// below this threshold (0 keeps all pairs found).
	MinSim float64
	// Workers bounds signature-computation parallelism; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// OPH switches signature computation to one-permutation hashing
	// (cost nnz instead of SigLen·nnz; see ComputeSignaturesOPH) — an
	// extension over the paper's plain MinHash.
	OPH bool
}

// DefaultMaxBucket bounds per-bucket pair expansion.
const DefaultMaxBucket = 64

// DefaultParams returns the configuration the paper uses in all its
// experiments: siglen=128, bsize=2.
func DefaultParams() Params {
	return Params{SigLen: 128, BandSize: 2, Seed: 0x5eed1e55, MaxBucket: DefaultMaxBucket}
}

func (p Params) validate() error {
	if p.SigLen <= 0 {
		return fmt.Errorf("lsh: SigLen must be positive, got %d", p.SigLen)
	}
	if p.BandSize <= 0 || p.SigLen%p.BandSize != 0 {
		return fmt.Errorf("lsh: BandSize %d must be positive and divide SigLen %d", p.BandSize, p.SigLen)
	}
	return nil
}

// Signatures holds the MinHash signature matrix: row i's signature is
// Sig[i*SigLen : (i+1)*SigLen]. Rows with no nonzeros have all-max
// signatures and never collide with non-empty rows.
type Signatures struct {
	SigLen int
	Rows   int
	Sig    []uint32
}

// Row returns row i's signature.
func (s *Signatures) Row(i int) []uint32 { return s.Sig[i*s.SigLen : (i+1)*s.SigLen] }

// EstimateJaccard returns the fraction of matching signature positions
// between rows i and j — an unbiased estimator of their Jaccard
// similarity.
func (s *Signatures) EstimateJaccard(i, j int) float64 {
	a, b := s.Row(i), s.Row(j)
	n := 0
	for k := range a {
		if a[k] == b[k] {
			n++
		}
	}
	return float64(n) / float64(s.SigLen)
}

// StageTimings is the wall-clock breakdown of the LSH stage, matching
// the three terms of the paper's preprocessing cost model: siglen·nnz
// signature computation, (siglen/bsize)·N banding (including candidate
// deduplication), and d_max·E exact scoring (including the final
// deterministic pair ordering).
type StageTimings struct {
	Signatures time.Duration
	Banding    time.Duration
	Scoring    time.Duration
}

// Total sums the stage durations.
func (t StageTimings) Total() time.Duration { return t.Signatures + t.Banding + t.Scoring }

// signatureOps counts signature-matrix computations process-wide. The
// plan cache's tests use it to prove a cache hit performs no signature
// work; it has no other role.
var signatureOps atomic.Int64

// SignatureOps returns the number of signature-matrix computations
// (MinHash or OPH) performed by this process so far.
func SignatureOps() int64 { return signatureOps.Load() }

// splitmix64 advances and hashes a 64-bit state; used to derive the hash
// family deterministically from the seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashFamily holds per-function multiply-shift constants. h_k(c) =
// (a_k*c + b_k) mixed to 32 bits; distinct odd multipliers give a family
// of near-universal hashes over column indices.
type hashFamily struct {
	a, b []uint64
}

func newHashFamily(n int, seed uint64) hashFamily {
	f := hashFamily{a: make([]uint64, n), b: make([]uint64, n)}
	s := seed
	for k := 0; k < n; k++ {
		s = splitmix64(s)
		f.a[k] = s | 1 // odd multiplier
		s = splitmix64(s)
		f.b[k] = s
	}
	return f
}

func (f hashFamily) hash(k int, c uint32) uint32 {
	x := f.a[k]*uint64(c) + f.b[k]
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return uint32(x)
}

// sigRowBlock is the signature stage's unit of work (rows per claim):
// coarse enough that the per-unit cancellation checkpoint and fault
// hook are free, fine enough that cancellation lands promptly.
const sigRowBlock = 512

// ComputeSignatures builds MinHash signatures for every row of m in
// parallel.
func ComputeSignatures(m *sparse.CSR, p Params) (*Signatures, error) {
	return ComputeSignaturesCtx(context.Background(), m, p)
}

// ComputeSignaturesCtx is ComputeSignatures with cooperative
// cancellation between row blocks; a worker panic surfaces as a
// *par.PanicError instead of crashing the process.
func ComputeSignaturesCtx(ctx context.Context, m *sparse.CSR, p Params) (*Signatures, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	signatureOps.Add(1)
	fam := newHashFamily(p.SigLen, p.Seed)
	sigs := &Signatures{
		SigLen: p.SigLen,
		Rows:   m.Rows,
		Sig:    make([]uint32, m.Rows*p.SigLen),
	}
	err := par.ForChunksCtx(ctx, m.Rows, sigRowBlock, p.Workers, func(lo, hi int) error {
		if err := faultinject.Fire("lsh.signatures"); err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			row := sigs.Row(i)
			cols := m.RowCols(i)
			for k := 0; k < p.SigLen; k++ {
				min := uint32(math.MaxUint32)
				for _, c := range cols {
					if h := fam.hash(k, uint32(c)); h < min {
						min = h
					}
				}
				row[k] = min
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sigs, nil
}

// CandidatePairs runs the full LSH stage on m: signatures (MinHash, or
// OPH when p.OPH is set), banded bucketing, per-bucket pair expansion,
// exact Jaccard scoring, and MinSim filtering. The result is
// deduplicated and deterministic for a fixed Params.
func CandidatePairs(m *sparse.CSR, p Params) ([]pairheap.Pair, error) {
	pairs, _, err := CandidatePairsTimed(m, p)
	return pairs, err
}

// CandidatePairsCtx is CandidatePairs with cooperative cancellation and
// panic isolation across every internal stage.
func CandidatePairsCtx(ctx context.Context, m *sparse.CSR, p Params) ([]pairheap.Pair, error) {
	pairs, _, err := CandidatePairsTimedCtx(ctx, m, p)
	return pairs, err
}

// CandidatePairsTimed is CandidatePairs reporting the per-stage
// wall-clock breakdown (signatures / banding / scoring).
func CandidatePairsTimed(m *sparse.CSR, p Params) ([]pairheap.Pair, StageTimings, error) {
	return CandidatePairsTimedCtx(context.Background(), m, p)
}

// CandidatePairsTimedCtx is CandidatePairsTimed with cooperative
// cancellation: signature computation, banding, pair merging, and
// scoring all observe ctx between work units, and a worker panic in any
// of them surfaces as a *par.PanicError from this call instead of
// crashing the process.
func CandidatePairsTimedCtx(ctx context.Context, m *sparse.CSR, p Params) ([]pairheap.Pair, StageTimings, error) {
	var st StageTimings
	t0 := time.Now()
	var sigs *Signatures
	var err error
	if p.OPH {
		sigs, err = ComputeSignaturesOPHCtx(ctx, m, p)
	} else {
		sigs, err = ComputeSignaturesCtx(ctx, m, p)
	}
	if err != nil {
		return nil, st, err
	}
	st.Signatures = time.Since(t0)
	pairs, err := pairsFromSignatures(ctx, m, sigs, p, &st)
	return pairs, st, err
}

// PairsFromSignatures performs banding and scoring on precomputed
// signatures. Exposed separately so parameter sweeps can reuse
// signatures. Like signature computation, banding and scoring are
// embarrassingly parallel (per band / per pair) and run across Workers
// goroutines; the result is deduplicated and deterministic for a fixed
// Params regardless of worker count.
func PairsFromSignatures(m *sparse.CSR, sigs *Signatures, p Params) ([]pairheap.Pair, error) {
	return pairsFromSignatures(context.Background(), m, sigs, p, nil)
}

// PairsFromSignaturesCtx is PairsFromSignatures with cooperative
// cancellation and panic isolation.
func PairsFromSignaturesCtx(ctx context.Context, m *sparse.CSR, sigs *Signatures, p Params) ([]pairheap.Pair, error) {
	return pairsFromSignatures(ctx, m, sigs, p, nil)
}

// pairsFromSignatures is the banding+scoring engine; st (optional)
// receives the Banding/Scoring wall-clock split.
//
// The candidate set is deduplicated without any shared map: every
// worker keeps its candidate keys as a sorted unique slice (per band it
// appends into a reusable scratch slice, sorts, compacts, and merges
// into its accumulator), and the workers' slices meet in a k-way merge.
// The union of per-band key sets is independent of how bands were dealt
// to workers, so the merged sequence — and everything downstream — is
// identical for every worker count.
func pairsFromSignatures(ctx context.Context, m *sparse.CSR, sigs *Signatures, p Params, st *StageTimings) ([]pairheap.Pair, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	maxBucket := p.MaxBucket
	if maxBucket <= 0 {
		maxBucket = DefaultMaxBucket
	}
	nbands := p.SigLen / p.BandSize
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nbands {
		workers = nbands
	}
	if workers < 1 {
		workers = 1
	}
	tBand := time.Now()

	// Phase 1 (parallel over bands): bucket rows per band and emit each
	// band's candidate keys; per-worker results stay sorted and unique.
	// Bands are dealt to workers in stride-w order (deterministic, so
	// the per-worker key sets — and their union — never depend on
	// scheduling); each worker checks ctx between bands.
	workerKeys := make([][]uint64, workers)
	err := par.DoCtx(ctx, workers, func(w int) error {
		var acc, band, mergeBuf []uint64
		buckets := make(map[uint64][]int32)
		addKey := func(i, j int32) {
			if i == j {
				return
			}
			if i > j {
				i, j = j, i
			}
			band = append(band, uint64(uint32(i))<<32|uint64(uint32(j)))
		}
		for b := w; b < nbands; b += workers {
			if err := par.CtxErr(ctx); err != nil {
				return err
			}
			if err := faultinject.Fire("lsh.banding"); err != nil {
				return err
			}
			clear(buckets)
			band = band[:0] // reuse the band scratch's backing storage
			for i := 0; i < m.Rows; i++ {
				// Empty rows are skipped: their all-max signatures
				// would otherwise all collide.
				if m.RowLen(i) == 0 {
					continue
				}
				sig := sigs.Row(i)[b*p.BandSize : (b+1)*p.BandSize]
				h := uint64(0xcbf29ce484222325)
				for _, v := range sig {
					h ^= uint64(v)
					h *= 0x100000001b3
				}
				buckets[h] = append(buckets[h], int32(i))
			}
			for _, rows := range buckets {
				if len(rows) < 2 {
					continue
				}
				if len(rows) > maxBucket {
					// Chain consecutive members only: similar rows
					// stay connected transitively through the
					// clustering while avoiding O(B²) pair blowup.
					for k := 0; k+1 < len(rows); k++ {
						addKey(rows[k], rows[k+1])
					}
					continue
				}
				for a := 0; a < len(rows); a++ {
					for b2 := a + 1; b2 < len(rows); b2++ {
						addKey(rows[a], rows[b2])
					}
				}
			}
			slices.Sort(band)
			band = slices.Compact(band)
			acc, mergeBuf = mergeSortedUnique(mergeBuf[:0], acc, band), acc
		}
		workerKeys[w] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	keys, err := mergeWorkerKeys(ctx, workerKeys)
	if err != nil {
		return nil, err
	}
	if st != nil {
		st.Banding = time.Since(tBand)
	}
	tScore := time.Now()

	// Phase 2 (parallel over candidates): exact Jaccard scoring — the
	// d_max·E term of the paper's cost model. Results land at their
	// key's index, so scoring order cannot reorder the output.
	const scoreChunk = 4 << 10
	pairs := make([]pairheap.Pair, len(keys))
	keep := make([]bool, len(keys))
	err = par.ForChunksCtx(ctx, len(keys), scoreChunk, workers, func(lo, hi int) error {
		if err := faultinject.Fire("lsh.scoring"); err != nil {
			return err
		}
		for idx := lo; idx < hi; idx++ {
			i := int32(keys[idx] >> 32)
			j := int32(keys[idx] & 0xffffffff)
			sim := sparse.RowJaccard(m, int(i), int(j))
			if sim >= p.MinSim && sim > 0 {
				pairs[idx] = pairheap.Pair{Sim: sim, I: i, J: j}
				keep[idx] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := pairs[:0]
	for idx := range pairs {
		if keep[idx] {
			out = append(out, pairs[idx])
		}
	}
	sortPairs(out, workers)
	if st != nil {
		st.Scoring = time.Since(tScore)
	}
	return out, nil
}

// mergeSortedUnique merges two sorted unique slices into dst (reset by
// the caller), dropping cross-slice duplicates.
func mergeSortedUnique(dst, a, b []uint64) []uint64 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// mergeWorkerKeys k-way merges the workers' sorted unique key slices by
// parallel pairwise rounds; the result is the sorted union. Each round
// observes ctx and the merge fault site before doing work.
func mergeWorkerKeys(ctx context.Context, parts [][]uint64) ([]uint64, error) {
	for len(parts) > 1 {
		npairs := len(parts) / 2
		merged := make([][]uint64, (len(parts)+1)/2)
		err := par.ForUnitsCtx(ctx, npairs, npairs, func(u int) error {
			if err := faultinject.Fire("lsh.pairmerge"); err != nil {
				return err
			}
			i := 2 * u
			merged[u] = mergeSortedUnique(
				make([]uint64, 0, len(parts[i])+len(parts[i+1])), parts[i], parts[i+1])
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(parts)%2 == 1 {
			merged[len(merged)-1] = parts[len(parts)-1]
		}
		parts = merged
	}
	if len(parts) == 0 {
		return nil, nil
	}
	return parts[0], nil
}

// cmpPair is the canonical candidate-pair order: similarity descending,
// then (I, J) ascending — a total order because (I, J) keys are unique.
func cmpPair(a, b pairheap.Pair) int {
	switch {
	case a.Sim > b.Sim:
		return -1
	case a.Sim < b.Sim:
		return 1
	case a.I != b.I:
		return int(a.I - b.I)
	default:
		return int(a.J - b.J)
	}
}

// sortPairs sorts ps by cmpPair with a parallel merge sort: equal chunks
// are slices.SortFunc-ed concurrently, then merged in parallel pairwise
// rounds. The comparator is a total order, so the result is identical
// for every worker count (and to a plain serial sort).
func sortPairs(ps []pairheap.Pair, workers int) {
	const minParallelSort = 1 << 14
	if workers > len(ps)/minParallelSort {
		workers = len(ps) / minParallelSort
	}
	if workers <= 1 {
		slices.SortFunc(ps, cmpPair)
		return
	}
	chunk := (len(ps) + workers - 1) / workers
	bounds := make([][2]int, 0, workers)
	var wg sync.WaitGroup
	for lo := 0; lo < len(ps); lo += chunk {
		hi := lo + chunk
		if hi > len(ps) {
			hi = len(ps)
		}
		bounds = append(bounds, [2]int{lo, hi})
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			slices.SortFunc(ps[lo:hi], cmpPair)
		}(lo, hi)
	}
	wg.Wait()
	scratch := make([]pairheap.Pair, len(ps))
	src, dst := ps, scratch
	for len(bounds) > 1 {
		next := make([][2]int, 0, (len(bounds)+1)/2)
		var mwg sync.WaitGroup
		for i := 0; i+1 < len(bounds); i += 2 {
			a, b := bounds[i], bounds[i+1]
			next = append(next, [2]int{a[0], b[1]})
			mwg.Add(1)
			go func(a, b [2]int) {
				defer mwg.Done()
				mergePairs(dst[a[0]:b[1]], src[a[0]:a[1]], src[b[0]:b[1]])
			}(a, b)
		}
		if len(bounds)%2 == 1 {
			last := bounds[len(bounds)-1]
			copy(dst[last[0]:last[1]], src[last[0]:last[1]])
			next = append(next, last)
		}
		mwg.Wait()
		bounds = next
		src, dst = dst, src
	}
	if &src[0] != &ps[0] {
		copy(ps, src)
	}
}

// mergePairs merges two cmpPair-sorted runs into dst (len(dst) ==
// len(a)+len(b)).
func mergePairs(dst, a, b []pairheap.Pair) {
	k := 0
	for len(a) > 0 && len(b) > 0 {
		if cmpPair(a[0], b[0]) <= 0 {
			dst[k] = a[0]
			a = a[1:]
		} else {
			dst[k] = b[0]
			b = b[1:]
		}
		k++
	}
	copy(dst[k:], a)
	copy(dst[k+len(a):], b)
}
