// Package paperex holds the worked example that runs through the paper's
// §2-§3 (Figs 1, 3, 4, 6): a 6×6 sparse matrix whose stated properties —
// Jaccard similarities, ASpT tiling before and after reordering, and the
// clustering trace — are asserted by the test suite and demonstrated by
// examples.
//
// The figure images are not part of the text, so the matrix below is
// reconstructed from every numeric claim the prose makes:
//
//   - S0 = {0, 4}, S4 = {0, 3, 4}, J(S0, S4) = 2/3  (§3.2)
//   - J(S2, S4) = 1/4                                (Fig 6 caption)
//   - row 1 shares exactly one column with row 5     (§3.1)
//   - with panel size 3 and dense threshold 2, the original matrix has
//     exactly one dense column (column 4 of panel 0) holding 2 nonzeros
//     (§2.3), and panel 1 has none
//   - after exchanging rows 1 and 4, the dense tiles hold 9 nonzeros and
//     the first dense column of panel 0 has 3 nonzeros (§3.1)
//   - LSH candidates {(0,4), (2,4)} cluster to the row order
//     [0, 2, 4, 1, 3, 5] (Fig 6)
package paperex

import "repro/internal/sparse"

// PanelSize and DenseThreshold are the worked example's ASpT parameters.
const (
	PanelSize      = 3
	DenseThreshold = 2
)

// Rows are the column sets of the example matrix.
var Rows = [][]int32{
	{0, 4},    // row 0
	{1, 5},    // row 1
	{2, 4},    // row 2
	{1},       // row 3
	{0, 3, 4}, // row 4
	{2, 5},    // row 5
}

// Matrix builds the example as a CSR matrix with value 1 at every
// nonzero.
func Matrix() *sparse.CSR {
	m, err := sparse.FromRows(6, 6, Rows, nil)
	if err != nil {
		panic("paperex: invalid fixture: " + err.Error())
	}
	return m
}

// ReorderedRows is the clustering output of Fig 6.
var ReorderedRows = []int32{0, 2, 4, 1, 3, 5}

// SwappedRows is the §3.1 illustration order (rows 1 and 4 exchanged).
var SwappedRows = []int32{0, 4, 2, 3, 1, 5}

// CandidatePairs are the LSH candidates the paper's Fig 6 walk-through
// assumes: (0,4) with similarity 2/3 and (2,4) with similarity 1/4.
func CandidatePairs() (pairs [][2]int32, sims []float64) {
	return [][2]int32{{0, 4}, {2, 4}}, []float64{2.0 / 3.0, 0.25}
}
