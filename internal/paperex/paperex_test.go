package paperex

import (
	"math"
	"testing"

	"repro/internal/sparse"
)

// TestFixtureClaims pins every numeric claim the paper's prose makes
// about the worked example to the reconstructed matrix (see the package
// comment for the sources).
func TestFixtureClaims(t *testing.T) {
	m := Matrix()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Rows != 6 || m.Cols != 6 {
		t.Fatalf("shape %s", m)
	}
	// §3.2: S0 = {0,4}, S4 = {0,3,4}, J = 2/3.
	if got := sparse.RowJaccard(m, 0, 4); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("J(S0,S4) = %v, want 2/3", got)
	}
	// Fig 6: J(S2,S4) = 1/4.
	if got := sparse.RowJaccard(m, 2, 4); got != 0.25 {
		t.Fatalf("J(S2,S4) = %v, want 1/4", got)
	}
	// §3.1: row 1 shares exactly one column with row 5.
	if got := sparse.IntersectionSize(m.RowCols(1), m.RowCols(5)); got != 1 {
		t.Fatalf("|S1 ∩ S5| = %d, want 1", got)
	}
	// §3.1: row 0 has two identical columns with row 4.
	if got := sparse.IntersectionSize(m.RowCols(0), m.RowCols(4)); got != 2 {
		t.Fatalf("|S0 ∩ S4| = %d, want 2", got)
	}
}

func TestSwappedRowsIsSwap(t *testing.T) {
	// SwappedRows must be exactly "exchange rows 1 and 4".
	want := []int32{0, 4, 2, 3, 1, 5}
	for i := range want {
		if SwappedRows[i] != want[i] {
			t.Fatalf("SwappedRows = %v", SwappedRows)
		}
	}
	if !sparse.IsPermutation(SwappedRows, 6) || !sparse.IsPermutation(ReorderedRows, 6) {
		t.Fatalf("fixture orders are not permutations")
	}
}

func TestCandidatePairSims(t *testing.T) {
	m := Matrix()
	pairs, sims := CandidatePairs()
	for i, p := range pairs {
		got := sparse.RowJaccard(m, int(p[0]), int(p[1]))
		if math.Abs(got-sims[i]) > 1e-12 {
			t.Fatalf("pair %v sim %v, want %v", p, got, sims[i])
		}
	}
}
