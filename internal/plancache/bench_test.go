package plancache

import (
	"testing"

	"repro/internal/reorder"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func benchMatrix(b *testing.B) *sparse.CSR {
	b.Helper()
	scale := 15
	if testing.Short() {
		scale = 10
	}
	m, err := synth.RMAT(scale, 8, 0.57, 0.19, 0.19, 7)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkCacheHitSameValues is the best case: structure and values
// already cached, so a hit costs two O(nnz) hashes and a struct copy.
func BenchmarkCacheHitSameValues(b *testing.B) {
	c := New(4)
	m := benchMatrix(b)
	cfg := reorder.DefaultConfig()
	if _, err := c.Preprocess(m, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(m, cfg, Full); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkCacheHitNewValues measures the re-skin path — the serving
// scenario where the same structure arrives with fresh nonzero values:
// fingerprint + three O(nnz) gathers, no LSH/clustering/tiling.
func BenchmarkCacheHitNewValues(b *testing.B) {
	c := New(4)
	m := benchMatrix(b)
	cfg := reorder.DefaultConfig()
	if _, err := c.Preprocess(m, cfg); err != nil {
		b.Fatal(err)
	}
	m2 := &sparse.CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr, ColIdx: m.ColIdx,
		Val: make([]float32, m.NNZ())}
	for i := range m2.Val {
		m2.Val[i] = float32(i%31) - 15
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(m2, cfg, Full); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkCacheMissFingerprint isolates the overhead a cold miss adds
// on top of the preprocessing it cannot avoid: one structural
// fingerprint of an uncached matrix.
func BenchmarkCacheMissFingerprint(b *testing.B) {
	c := New(4)
	m := benchMatrix(b)
	cfg := reorder.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(m, cfg, Full); ok {
			b.Fatal("unexpected hit")
		}
	}
}

// BenchmarkColdPreprocess is the uncached baseline the hit benchmarks
// are read against: the full workflow on the same matrix.
func BenchmarkColdPreprocess(b *testing.B) {
	m := benchMatrix(b)
	cfg := reorder.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reorder.Preprocess(m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
