// Package plancache is a content-addressed cache of preprocessing
// plans. The paper's preprocessing (LSH signatures, clustering, tiling)
// depends only on a matrix's sparsity *structure* and the preprocessing
// configuration — never on the nonzero values. In a serving system the
// same structures recur constantly (the same graph re-queried with new
// feature values, the same interaction pattern re-scored with updated
// weights), so preprocessing a structure twice is pure waste.
//
// The cache is keyed by a 128-bit structural fingerprint hashed over
// shape, RowPtr, ColIdx and the semantic preprocessing configuration
// (worker-count knobs are normalised away: they change how fast a plan
// is computed, not which plan). On a hit with identical values the
// cached *reorder.Plan is returned as-is; on a hit with different
// values the plan is "re-skinned": the structural decisions and every
// structure array are shared, and only the three value arrays
// (reordered matrix, dense tiles, leftover CSR) are regathered from the
// new matrix through index maps precomputed at insertion time — an
// O(nnz) copy with no LSH, clustering, or tiling work. Entries are
// evicted least-recently-used, bounding memory.
package plancache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/integrity"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

// Tier names which cache tier satisfied a lookup (or that none did).
type Tier int

const (
	TierMiss   Tier = iota // neither tier had the plan
	TierMemory             // in-memory LRU hit
	TierDisk               // served from the snapshot directory
)

func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	}
	return "miss"
}

// key is a 128-bit content fingerprint. Two independently seeded
// 64-bit lanes make accidental collisions (which would silently serve a
// wrong plan) negligible at any realistic cache size.
type key [2]uint64

// digest accumulates 64-bit words into both lanes.
type digest key

func newDigest() digest { return digest{0x243f6a8885a308d3, 0x13198a2e03707344} }

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (d *digest) word(w uint64) {
	d[0] = mix64(d[0] ^ w)
	d[1] = mix64(d[1] + w + 0x9e3779b97f4a7c15)
}

func (d *digest) int32s(s []int32) {
	d.word(uint64(len(s)))
	i := 0
	for ; i+1 < len(s); i += 2 {
		d.word(uint64(uint32(s[i])) | uint64(uint32(s[i+1]))<<32)
	}
	if i < len(s) {
		d.word(uint64(uint32(s[i])))
	}
}

func (d *digest) float32s(s []float32) {
	d.word(uint64(len(s)))
	i := 0
	for ; i+1 < len(s); i += 2 {
		d.word(uint64(math.Float32bits(s[i])) | uint64(math.Float32bits(s[i+1]))<<32)
	}
	if i < len(s) {
		d.word(uint64(math.Float32bits(s[i])))
	}
}

func (d *digest) bytes(s string) {
	d.word(uint64(len(s)))
	var w uint64
	n := 0
	for i := 0; i < len(s); i++ {
		w |= uint64(s[i]) << (8 * n)
		if n++; n == 8 {
			d.word(w)
			w, n = 0, 0
		}
	}
	if n > 0 {
		d.word(w)
	}
}

// configSignature renders the semantic part of a preprocessing
// configuration. Worker-count knobs are zeroed first: they are
// execution hints, and the engine guarantees bit-identical plans for
// every worker count. Config is a flat value struct (no pointers, no
// maps), so %v is a stable, total rendering.
func configSignature(cfg reorder.Config) string {
	cfg.Workers = 0
	cfg.LSH.Workers = 0
	cfg.ASpT.Workers = 0
	// The preprocessing budget bounds how long a background build may
	// run, never what a successful build produces, so it is normalised
	// away too — otherwise two online pipelines differing only in
	// budget would never share plans.
	cfg.PreprocessBudget = 0
	// cfg.Epoch is deliberately NOT normalised: the structural epoch of
	// a live matrix is semantic. Two epochs can transiently share the
	// same structure arrays (e.g. a row replaced and later restored), and
	// a plan skinned for the old epoch must never satisfy a lookup for
	// the new one — staleness has to read as a miss.
	return fmt.Sprintf("%v", cfg)
}

// Variant names which preprocessing workflow produced a plan. The full
// Fig-5 workflow and the no-reordering (ASpT-NR) baseline yield
// different plans for the same structure and configuration — an online
// pipeline caches both — so the variant is part of the cache key.
type Variant uint64

const (
	// Full is the complete workflow: both reordering rounds, skip
	// heuristics, and tiling (reorder.Preprocess).
	Full Variant = 1
	// NR is the no-reordering ASpT baseline (reorder.PreprocessNR).
	NR Variant = 2
)

// fingerprint hashes everything that determines a plan: shape, the two
// structure arrays, the semantic configuration, and the workflow
// variant.
func fingerprint(m *sparse.CSR, cfg reorder.Config, v Variant) key {
	d := newDigest()
	d.word(uint64(v))
	d.word(uint64(m.Rows))
	d.word(uint64(m.Cols))
	d.int32s(m.RowPtr)
	d.int32s(m.ColIdx)
	d.bytes(configSignature(cfg))
	return key(d)
}

// Fingerprint renders the cache key of (matrix, config, variant) as
// the 32-hex-digit string used in snapshot file names. It is the
// stable plan identity that decision events and /debug/explain carry:
// two tenants (or two points in time) serving the same fingerprint are
// provably executing the same plan. O(nnz) — cheap next to any build,
// but callers on serving paths should compute it once and cache the
// string.
func Fingerprint(m *sparse.CSR, cfg reorder.Config, v Variant) string {
	k := fingerprint(m, cfg, v)
	return fmt.Sprintf("%016x%016x", k[0], k[1])
}

// valueHash fingerprints the nonzero values alone (bit patterns, so
// NaNs and -0 are distinguished exactly like the kernels see them).
func valueHash(vals []float32) key {
	d := newDigest()
	d.float32s(vals)
	return key(d)
}

// entry pins one cached plan plus the index maps that let a hit with
// different values rebuild the three value arrays by pure gathers.
// All fields are immutable after construction.
type entry struct {
	k       key
	valHash key
	plan    *reorder.Plan
	// Gather maps: position in the derived array -> position in the
	// *original* (caller-order) Val array.
	reorderFrom []int32 // -> Plan.Reordered.Val
	tileFrom    []int32 // -> Plan.Tiled.TileVal
	restFrom    []int32 // -> Plan.Tiled.Rest.Val
}

// Stats reports cache effectiveness counters. Hits and Misses count
// the in-memory tier; DiskHits counts misses that were served from the
// attached snapshot directory instead of recomputing (each such hit
// also repopulates the memory tier), and DiskMisses counts disk probes
// that found nothing usable — absent, truncated, corrupt, or
// mismatched plan files all fall back to recomputation.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	DiskHits   int64
	DiskMisses int64
	Entries    int
}

// Cache is a bounded, concurrency-safe, content-addressed LRU of
// preprocessing plans. The zero value is not usable; call New. A nil
// *Cache is valid and behaves as an always-miss cache, so callers can
// treat "caching disabled" uniformly.
type Cache struct {
	mu         sync.Mutex
	capacity   int
	ll         *list.List // front = most recently used; values are *entry
	byKey      map[key]*list.Element
	dir        string // "" = no disk tier
	hits       int64
	misses     int64
	evictions  int64
	diskHits   int64
	diskMisses int64
}

// New returns a cache holding at most capacity plans. capacity <= 0
// returns nil — the always-miss cache.
func New(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{capacity: capacity, ll: list.New(), byKey: make(map[key]*list.Element)}
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		DiskHits: c.diskHits, DiskMisses: c.diskMisses, Entries: c.ll.Len()}
}

// SetDir attaches dir as the cache's disk tier (creating it if needed):
// Snapshot writes every cached plan there as a content-addressed
// `<fingerprint>.plan` file, and a memory miss probes it for a
// previously snapshotted plan before recomputing — the warm-start path
// a restarted server takes. An empty dir detaches the tier.
func (c *Cache) SetDir(dir string) error {
	if c == nil {
		return nil
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.dir = dir
	c.mu.Unlock()
	return nil
}

// Dir returns the attached snapshot directory ("" when detached).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir
}

// planFileName is the content-addressed snapshot name for a cache key;
// the fingerprint already folds in structure, configuration, and
// workflow variant, so distinct plans never collide on a name.
func planFileName(k key) string {
	return fmt.Sprintf("%016x%016x.plan", k[0], k[1])
}

// Snapshot writes every currently cached plan to the attached directory
// (atomically, via reorder.WritePlanFile) and returns how many were
// written. With no directory attached it is a no-op. Individual write
// failures skip that entry and the first one is returned after the
// sweep completes — a snapshot is best-effort by design: the disk tier
// is an accelerator, never a correctness dependency.
func (c *Cache) Snapshot() (int, error) {
	if c == nil {
		return 0, nil
	}
	c.mu.Lock()
	dir := c.dir
	if dir == "" {
		c.mu.Unlock()
		return 0, nil
	}
	type item struct {
		k key
		p *reorder.Plan
	}
	items := make([]item, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		items = append(items, item{e.k, e.plan})
	}
	c.mu.Unlock()
	written := 0
	var firstErr error
	for _, it := range items {
		err := faultinject.Fire("plancache.disk.save")
		if err == nil {
			err = reorder.WritePlanFile(filepath.Join(dir, planFileName(it.k)), it.p)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		written++
	}
	return written, firstErr
}

// diskLoad probes the disk tier for a snapshotted plan matching k and,
// on success, applies it to m (O(nnz): permute + re-tile, no LSH or
// clustering) and repopulates the memory tier. Every failure — injected
// fault, absent file, truncation, corruption (ReadPlan's CRC check), or
// a plan that no longer matches m — is a silent miss: the caller
// recomputes from scratch, so a damaged snapshot can degrade only
// startup latency, never correctness.
func (c *Cache) diskLoad(dir string, k key, m *sparse.CSR, cfg reorder.Config, v Variant) (*reorder.Plan, bool) {
	bump := func(hit bool) {
		c.mu.Lock()
		if hit {
			c.diskHits++
		} else {
			c.diskMisses++
		}
		c.mu.Unlock()
	}
	if faultinject.Fire("plancache.disk.load") != nil {
		bump(false)
		return nil, false
	}
	sp, err := reorder.ReadPlanFile(filepath.Join(dir, planFileName(k)))
	if err != nil {
		bump(false)
		return nil, false
	}
	plan, err := sp.Apply(m, cfg)
	if err != nil {
		bump(false)
		return nil, false
	}
	c.Put(m, cfg, v, plan)
	bump(true)
	return plan, true
}

// Purge drops every entry (counters are kept).
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.byKey)
}

// Get returns a plan for m under cfg if one with the same structural
// fingerprint is cached. The returned plan is always a fresh *Plan
// header carrying the caller's cfg; its slices are shared with the
// cache (and with other hits) and must be treated as read-only — the
// same contract Pipeline already obeys. The second result reports a
// hit. Get performs no signature, clustering, or tiling work: a hit
// costs one O(nnz) hash (plus O(nnz) value gathers when m's values
// differ from the cached ones).
func (c *Cache) Get(m *sparse.CSR, cfg reorder.Config, v Variant) (*reorder.Plan, bool) {
	p, tier := c.GetTier(m, cfg, v)
	return p, tier != TierMiss
}

// GetTier is Get reporting which tier satisfied the lookup, so callers
// (traces, metrics) can distinguish a memory hit from a disk reload.
func (c *Cache) GetTier(m *sparse.CSR, cfg reorder.Config, v Variant) (*reorder.Plan, Tier) {
	if c == nil {
		return nil, TierMiss
	}
	// An injected lookup failure is indistinguishable from a miss: the
	// caller recomputes, which is always correct.
	if faultinject.Fire("plancache.get") != nil {
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		return nil, TierMiss
	}
	start := time.Now()
	k := fingerprint(m, cfg, v)
	c.mu.Lock()
	el, ok := c.byKey[k]
	if !ok {
		c.misses++
		dir := c.dir
		c.mu.Unlock()
		if dir != "" {
			if p, hit := c.diskLoad(dir, k, m, cfg, v); hit {
				if p.Preprocess = time.Since(start); p.Preprocess <= 0 {
					p.Preprocess = time.Nanosecond
				}
				return p, TierDisk
			}
		}
		return nil, TierMiss
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*entry)
	c.mu.Unlock()

	np := *e.plan // shallow copy: cached contents are immutable
	np.Cfg = cfg
	np.Stages = reorder.StageTimings{}
	if valueHash(m.Val) != e.valHash {
		if err := reskin(&np, e, m, cfg.Workers); err != nil {
			// The entry's gather maps are structurally invalid — a
			// poisoned entry must not serve and must not stay cached.
			// Drop it (from the disk tier too) and report a miss; the
			// caller recomputes, which is always correct.
			c.mu.Lock()
			if el2, ok := c.byKey[k]; ok && el2 == el {
				delete(c.byKey, k)
				c.ll.Remove(el2)
				c.evictions++
			}
			c.misses++
			dir := c.dir
			c.mu.Unlock()
			if dir != "" {
				os.Remove(filepath.Join(dir, planFileName(k)))
			}
			return nil, TierMiss
		}
	}
	c.mu.Lock()
	c.hits++ // counted only once the plan is actually servable
	c.mu.Unlock()
	if np.Preprocess = time.Since(start); np.Preprocess <= 0 {
		np.Preprocess = time.Nanosecond
	}
	return &np, TierMemory
}

// Evict removes the plan for (m, cfg, v) from both cache tiers — the
// in-memory LRU entry and the content-addressed snapshot file in the
// attached directory — so a later lookup is a guaranteed recompute.
// This is the integrity quarantine controller's hammer: once a served
// result traced back to this plan fails shadow verification, every
// copy of the plan is suspect (the entry's gather maps, its value
// arrays, and the on-disk snapshot all derive from the same build).
// It reports whether anything was removed.
func (c *Cache) Evict(m *sparse.CSR, cfg reorder.Config, v Variant) bool {
	if c == nil {
		return false
	}
	k := fingerprint(m, cfg, v)
	removed := false
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		delete(c.byKey, k)
		c.ll.Remove(el)
		c.evictions++
		removed = true
	}
	dir := c.dir
	c.mu.Unlock()
	if dir != "" {
		if err := os.Remove(filepath.Join(dir, planFileName(k))); err == nil {
			removed = true
		}
	}
	return removed
}

// reskin replaces the three value arrays of the shallow-copied plan
// with gathers from m through the entry's index maps, sharing every
// structure array with the cached plan. It fails (and the caller must
// drop the entry) when any gather index is out of range for m's value
// array — the cheap structural gate; in-range misdirection is the
// silent kind only shadow verification catches.
func reskin(np *reorder.Plan, e *entry, m *sparse.CSR, workers int) error {
	t0 := time.Now()
	// Corruption fault site: silently misroute one pair of in-range
	// gather indices in the *cached entry* — persistent until the entry
	// is evicted, exactly like a real poisoned cache. Only an armed
	// CorruptAt hook (errors.Is ErrCorrupt) corrupts; the generic chaos
	// soak's ErrorAt sweep is a no-op here.
	if err := faultinject.Fire("integrity.corrupt.gather"); errors.Is(err, faultinject.ErrCorrupt) {
		// Every map is misrouted so the corruption reaches serving no
		// matter which representation the panel's autotuned kernel reads
		// (Reordered feeds the row-wise, merge, and hybrid kernels; the
		// tile/rest maps feed ASpT).
		hit := false
		for _, from := range [][]int32{e.reorderFrom, e.tileFrom, e.restFrom} {
			if n := len(from); n >= 3 && from[n/3] != from[2*n/3] {
				from[n/3], from[2*n/3] = from[2*n/3], from[n/3]
				hit = true
			}
		}
		if hit {
			integrity.CorruptionInjected()
		}
	}
	nv := len(m.Val)
	if err := integrity.CheckGather(e.reorderFrom, nv); err != nil {
		return err
	}
	if err := integrity.CheckGather(e.tileFrom, nv); err != nil {
		return err
	}
	if err := integrity.CheckGather(e.restFrom, nv); err != nil {
		return err
	}
	old := e.plan
	re := &sparse.CSR{
		Rows:   old.Reordered.Rows,
		Cols:   old.Reordered.Cols,
		RowPtr: old.Reordered.RowPtr,
		ColIdx: old.Reordered.ColIdx,
		Val:    gather(m.Val, e.reorderFrom, workers),
	}
	tiled := *old.Tiled
	tiled.Src = re
	tiled.TileVal = gather(m.Val, e.tileFrom, workers)
	rest := *old.Tiled.Rest
	rest.Val = gather(m.Val, e.restFrom, workers)
	tiled.Rest = &rest
	np.Reordered = re
	np.Tiled = &tiled
	np.Stages.Permute = time.Since(t0)
	return nil
}

func gather(src []float32, from []int32, workers int) []float32 {
	out := make([]float32, len(from))
	if len(from) < 32<<10 {
		workers = 1
	}
	par.ForChunks(len(from), 16<<10, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = src[from[i]]
		}
	})
	return out
}

// Put caches plan as the preprocessing result for m's structure under
// cfg, computing the value-gather index maps. The plan must have been
// produced by reorder.Preprocess (or an equivalent) for exactly this
// matrix; mismatched inputs are ignored rather than cached wrongly.
func (c *Cache) Put(m *sparse.CSR, cfg reorder.Config, v Variant, plan *reorder.Plan) {
	if c == nil || plan == nil || plan.Reordered == nil || plan.Tiled == nil ||
		plan.Tiled.Rest == nil || plan.Reordered.Rows != m.Rows || plan.Reordered.NNZ() != m.NNZ() ||
		len(plan.RowPerm) != m.Rows {
		return
	}
	// An injected store failure simply skips caching; the next call for
	// this structure recomputes (or reloads from disk).
	if faultinject.Fire("plancache.put") != nil {
		return
	}
	e := &entry{
		k:       fingerprint(m, cfg, v),
		valHash: valueHash(m.Val),
		plan:    plan,
	}
	e.buildGatherMaps(m)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.k]; ok {
		// Same structure cached twice (e.g. two goroutines raced the
		// same cold miss): keep the freshest plan.
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[e.k] = c.ll.PushFront(e)
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		delete(c.byKey, back.Value.(*entry).k)
		c.ll.Remove(back)
		c.evictions++
	}
}

// buildGatherMaps derives, for every value slot of the plan's three
// value arrays, its source position in the caller-order Val array. The
// tile/rest split preserves within-row column order (both partitions
// are increasing subsequences of the row), so a two-pointer walk
// against the tile columns classifies every nonzero.
func (e *entry) buildGatherMaps(m *sparse.CSR) {
	p := e.plan
	re := p.Reordered
	t := p.Tiled
	e.reorderFrom = make([]int32, re.NNZ())
	e.tileFrom = make([]int32, len(t.TileVal))
	e.restFrom = make([]int32, t.Rest.NNZ())
	for i := 0; i < re.Rows; i++ {
		src := p.RowPerm[i]
		srcBase := m.RowPtr[src]
		dstBase := re.RowPtr[i]
		n := int32(re.RowLen(i))
		for j := int32(0); j < n; j++ {
			e.reorderFrom[dstBase+j] = srcBase + j
		}
		tp, te := t.TileRowPtr[i], t.TileRowPtr[i+1]
		rp := t.Rest.RowPtr[i]
		for j := int32(0); j < n; j++ {
			if tp < te && t.TileCol[tp] == re.ColIdx[dstBase+j] {
				e.tileFrom[tp] = srcBase + j
				tp++
			} else {
				e.restFrom[rp] = srcBase + j
				rp++
			}
		}
	}
}

// Preprocess is the get-or-compute entry point: a structural hit
// returns (a re-skin of) the cached plan without any LSH, clustering,
// or tiling work; a miss runs reorder.Preprocess and caches the result.
// Concurrent misses on the same structure may compute the plan more
// than once; all of them store equivalent plans, so the race is benign.
func (c *Cache) Preprocess(m *sparse.CSR, cfg reorder.Config) (*reorder.Plan, error) {
	return c.preprocess(context.Background(), m, cfg, Full, reorder.PreprocessCtx)
}

// PreprocessNR is Preprocess for the no-reordering ASpT baseline. It
// shares the cache (under a distinct variant key) so an online pipeline
// replayed on a known structure skips both builds.
func (c *Cache) PreprocessNR(m *sparse.CSR, cfg reorder.Config) (*reorder.Plan, error) {
	return c.preprocess(context.Background(), m, cfg, NR, reorder.PreprocessNRCtx)
}

// PreprocessCtx is Preprocess with cooperative cancellation. A build
// that fails — including one cancelled mid-flight — is never cached, so
// a cancelled build cannot poison the cache with a partial plan; the
// next caller recomputes from scratch.
func (c *Cache) PreprocessCtx(ctx context.Context, m *sparse.CSR, cfg reorder.Config) (*reorder.Plan, error) {
	return c.preprocess(ctx, m, cfg, Full, reorder.PreprocessCtx)
}

// PreprocessNRCtx is PreprocessNR with cooperative cancellation (see
// PreprocessCtx).
func (c *Cache) PreprocessNRCtx(ctx context.Context, m *sparse.CSR, cfg reorder.Config) (*reorder.Plan, error) {
	return c.preprocess(ctx, m, cfg, NR, reorder.PreprocessNRCtx)
}

func (c *Cache) preprocess(ctx context.Context, m *sparse.CSR, cfg reorder.Config, v Variant,
	compute func(context.Context, *sparse.CSR, reorder.Config) (*reorder.Plan, error)) (*reorder.Plan, error) {
	getSpan, computeSpan, tierAttr := "plancache_get_full", "preprocess_compute_full", "plancache_full"
	if v == NR {
		getSpan, computeSpan, tierAttr = "plancache_get_nr", "preprocess_compute_nr", "plancache_nr"
	}
	tr := obs.TraceFrom(ctx)
	sp := tr.StartSpan(getSpan)
	p, tier := c.GetTier(m, cfg, v)
	sp.End()
	tr.Annotate(tierAttr, tier.String())
	if tier != TierMiss {
		return p, nil
	}
	sp = tr.StartSpan(computeSpan)
	p, err := compute(ctx, m, cfg)
	sp.End()
	if err != nil {
		return nil, err
	}
	c.Put(m, cfg, v, p)
	return p, nil
}
