package plancache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

func planFilesIn(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".plan") {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestSnapshotAndWarmStart is the restart story: cache A preprocesses,
// snapshots to disk, and a fresh cache B (a new process, conceptually)
// serves the same structure from the snapshot — disk hit, no LSH or
// clustering — with the plan repopulated into B's memory tier.
func TestSnapshotAndWarmStart(t *testing.T) {
	dir := t.TempDir()
	m := clusteredMatrix(t, 1024, 512, 3)
	cfg := reorder.DefaultConfig()

	a := New(4)
	if err := a.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	cold, err := a.Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := a.Snapshot()
	if err != nil || n != 1 {
		t.Fatalf("Snapshot = (%d, %v), want (1, nil)", n, err)
	}
	if files := planFilesIn(t, dir); len(files) != 1 {
		t.Fatalf("snapshot dir holds %v, want one .plan file", files)
	}

	b := New(4)
	if err := b.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	warm, ok := b.Get(m, cfg, Full)
	if !ok {
		t.Fatal("warm start: expected a disk hit")
	}
	for i := range cold.RowPerm {
		if warm.RowPerm[i] != cold.RowPerm[i] {
			t.Fatalf("warm plan permutation differs at %d", i)
		}
	}
	st := b.Stats()
	if st.DiskHits != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want DiskHits 1 and the plan repopulated", st)
	}
	// Second Get is a pure memory hit — the disk tier is touched once.
	if _, ok := b.Get(m, cfg, Full); !ok {
		t.Fatal("repopulated entry missed")
	}
	if st := b.Stats(); st.DiskHits != 1 || st.Hits != 1 {
		t.Errorf("after memory hit: stats = %+v", st)
	}
}

// TestCorruptSnapshotFallsBack truncates and bit-flips the snapshot
// file: both must be detected (never applied) and degrade to a plain
// recompute.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	m := clusteredMatrix(t, 1024, 512, 4)
	cfg := reorder.DefaultConfig()
	a := New(4)
	if err := a.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Preprocess(m, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Snapshot(); err != nil {
		t.Fatal(err)
	}
	name := planFilesIn(t, dir)[0]
	raw, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(t *testing.T, mutate func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), mutate(append([]byte(nil), raw...)), 0o644); err != nil {
			t.Fatal(err)
		}
		b := New(4)
		if err := b.SetDir(dir); err != nil {
			t.Fatal(err)
		}
		if _, ok := b.Get(m, cfg, Full); ok {
			t.Fatal("corrupted snapshot served as a hit")
		}
		if st := b.Stats(); st.DiskMisses != 1 {
			t.Errorf("stats = %+v, want DiskMisses 1", st)
		}
		// The fallback path still works: recompute from scratch.
		if _, err := b.Preprocess(m, cfg); err != nil {
			t.Fatalf("recompute after corrupt snapshot: %v", err)
		}
	}
	t.Run("truncated", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { return b[:len(b)/2] })
	})
	t.Run("bitflip", func(t *testing.T) {
		corrupt(t, func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b })
	})
}

// TestEvictRemovesDiskSnapshot is the quarantine controller's property:
// once a plan is evicted for failing shadow verification, every copy is
// gone — the memory entry, the snapshot file, AND the file must stay
// gone across a later Snapshot sweep (nothing resurrects a condemned
// plan from a stale memory copy). A second, healthy plan sharing the
// cache must be untouched throughout.
func TestEvictRemovesDiskSnapshot(t *testing.T) {
	dir := t.TempDir()
	bad := clusteredMatrix(t, 1024, 512, 7)
	good := clusteredMatrix(t, 1024, 512, 8)
	cfg := reorder.DefaultConfig()
	c := New(4)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, m := range []*sparse.CSR{bad, good} {
		if _, err := c.Preprocess(m, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := c.Snapshot(); n != 2 || err != nil {
		t.Fatalf("Snapshot = (%d, %v), want (2, nil)", n, err)
	}
	if files := planFilesIn(t, dir); len(files) != 2 {
		t.Fatalf("snapshot dir holds %v, want two .plan files", files)
	}

	if !c.Evict(bad, cfg, Full) {
		t.Fatal("Evict removed nothing")
	}
	if files := planFilesIn(t, dir); len(files) != 1 {
		t.Fatalf("after evict, snapshot dir holds %v, want one .plan file", files)
	}
	if st := c.Stats(); st.Entries != 1 || st.Evictions != 1 {
		t.Errorf("after evict: stats = %+v, want one surviving entry, one eviction", st)
	}
	// A condemned plan is a guaranteed recompute: no memory hit, no disk
	// resurrection.
	if _, tier := c.GetTier(bad, cfg, Full); tier != TierMiss {
		t.Fatalf("evicted plan served from tier %v", tier)
	}

	// The next snapshot sweep writes only the survivor and must not
	// bring the evicted file back.
	if n, err := c.Snapshot(); n != 1 || err != nil {
		t.Fatalf("post-evict Snapshot = (%d, %v), want (1, nil)", n, err)
	}
	if files := planFilesIn(t, dir); len(files) != 1 {
		t.Fatalf("post-evict snapshot resurrected files: %v", files)
	}
	// The healthy plan still round-trips from disk in a fresh cache.
	b := New(4)
	if err := b.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get(good, cfg, Full); !ok {
		t.Error("healthy plan lost its snapshot")
	}
	if _, ok := b.Get(bad, cfg, Full); ok {
		t.Error("evicted plan served from a fresh cache")
	}

	// Evicting again (nothing left anywhere) reports false.
	if c.Evict(bad, cfg, Full) {
		t.Error("second Evict of the same plan reported a removal")
	}
}

// TestDiskTierFaultInjection exercises every plancache fault site:
// each one must degrade (skip cache, skip disk, skip snapshot) without
// affecting correctness.
func TestDiskTierFaultInjection(t *testing.T) {
	dir := t.TempDir()
	m := clusteredMatrix(t, 1024, 512, 5)
	cfg := reorder.DefaultConfig()
	c := New(4)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Preprocess(m, cfg); err != nil {
		t.Fatal(err)
	}

	t.Run("disk.save", func(t *testing.T) {
		defer faultinject.ErrorAt("plancache.disk.save")()
		n, err := c.Snapshot()
		if n != 0 || err == nil {
			t.Fatalf("Snapshot under fault = (%d, %v), want (0, injected error)", n, err)
		}
	})
	if _, err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}

	t.Run("get", func(t *testing.T) {
		defer faultinject.ErrorAt("plancache.get")()
		if _, ok := c.Get(m, cfg, Full); ok {
			t.Fatal("Get under injected lookup fault returned a hit")
		}
	})

	t.Run("disk.load", func(t *testing.T) {
		defer faultinject.ErrorAt("plancache.disk.load")()
		b := New(4)
		if err := b.SetDir(dir); err != nil {
			t.Fatal(err)
		}
		if _, ok := b.Get(m, cfg, Full); ok {
			t.Fatal("disk load under fault returned a hit")
		}
		if st := b.Stats(); st.DiskMisses != 1 {
			t.Errorf("stats = %+v, want DiskMisses 1", st)
		}
	})

	t.Run("put", func(t *testing.T) {
		defer faultinject.ErrorAt("plancache.put")()
		b := New(4)
		if _, err := b.Preprocess(m, cfg); err != nil {
			t.Fatalf("Preprocess under put fault: %v", err)
		}
		if st := b.Stats(); st.Entries != 0 {
			t.Errorf("entry cached despite injected put fault: %+v", st)
		}
	})
}

// TestSnapshotRestartServesNRVariantToo: an online pipeline caches both
// variants; both must round-trip through the disk tier under their
// distinct fingerprints.
func TestSnapshotBothVariants(t *testing.T) {
	dir := t.TempDir()
	m := clusteredMatrix(t, 1024, 512, 6)
	cfg := reorder.DefaultConfig()
	a := New(4)
	if err := a.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Preprocess(m, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := a.PreprocessNR(m, cfg); err != nil {
		t.Fatal(err)
	}
	if n, err := a.Snapshot(); n != 2 || err != nil {
		t.Fatalf("Snapshot = (%d, %v), want (2, nil)", n, err)
	}
	b := New(4)
	if err := b.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get(m, cfg, Full); !ok {
		t.Error("Full variant not served from disk")
	}
	if _, ok := b.Get(m, cfg, NR); !ok {
		t.Error("NR variant not served from disk")
	}
	if st := b.Stats(); st.DiskHits != 2 {
		t.Errorf("stats = %+v, want DiskHits 2", st)
	}
}
