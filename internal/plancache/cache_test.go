package plancache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/lsh"
	"repro/internal/reorder"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func clusteredMatrix(t testing.TB, rows, cols int, seed int64) *sparse.CSR {
	t.Helper()
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: rows, Cols: cols, Clusters: 8,
		PrototypeNNZ: 24, Keep: 0.8, Noise: 2, Seed: seed, Scrambled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// withValues clones m's structure with fresh deterministic values.
func withValues(m *sparse.CSR, scale float32) *sparse.CSR {
	vals := make([]float32, m.NNZ())
	for i := range vals {
		vals[i] = scale * float32(i%17+1)
	}
	return &sparse.CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr, ColIdx: m.ColIdx, Val: vals}
}

func TestHitIdenticalValuesSharesPlanArrays(t *testing.T) {
	c := New(4)
	m := clusteredMatrix(t, 1024, 512, 1)
	cfg := reorder.DefaultConfig()
	cold, err := c.Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hit, ok := c.Get(m, cfg, Full)
	if !ok {
		t.Fatal("expected a structural hit on the same matrix")
	}
	if &hit.Reordered.Val[0] != &cold.Reordered.Val[0] {
		t.Error("identical values: hit should share the cached Reordered.Val")
	}
	if hit.Preprocess <= 0 {
		t.Errorf("hit Preprocess = %v, want > 0", hit.Preprocess)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

// TestHitDifferentValuesSkipsSignatures is the acceptance test of the
// issue: a structural hit with different nonzero values must perform
// zero signature computations (no LSH at all), yet return a plan whose
// value arrays equal what a from-scratch Preprocess would produce.
func TestHitDifferentValuesSkipsSignatures(t *testing.T) {
	c := New(4)
	m1 := withValues(clusteredMatrix(t, 1024, 512, 2), 1)
	m2 := withValues(m1, -3) // same structure, different values
	cfg := reorder.DefaultConfig()
	if _, err := c.Preprocess(m1, cfg); err != nil {
		t.Fatal(err)
	}

	before := lsh.SignatureOps()
	hit, ok := c.Get(m2, cfg, Full)
	after := lsh.SignatureOps()
	if !ok {
		t.Fatal("expected a structural hit for same structure, new values")
	}
	if after != before {
		t.Errorf("cache hit computed %d signature batches, want 0", after-before)
	}

	want, err := reorder.Preprocess(m2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(hit.RowPerm, want.RowPerm) || !eq(hit.RestOrder, want.RestOrder) {
		t.Fatal("re-skinned plan's permutations differ from a fresh preprocess")
	}
	if !eq(hit.Reordered.Val, want.Reordered.Val) {
		t.Error("re-skinned Reordered.Val differs from fresh preprocess")
	}
	if !eq(hit.Tiled.TileVal, want.Tiled.TileVal) {
		t.Error("re-skinned TileVal differs from fresh preprocess")
	}
	if !eq(hit.Tiled.Rest.Val, want.Tiled.Rest.Val) {
		t.Error("re-skinned Rest.Val differs from fresh preprocess")
	}
	// Structure arrays must be shared, not copied.
	if &hit.Reordered.ColIdx[0] != &want.Reordered.ColIdx[0] {
		// want was computed fresh; compare against the cached entry via a
		// second identical-value get instead.
		same, _ := c.Get(m2, cfg, Full)
		if &hit.Reordered.ColIdx[0] != &same.Reordered.ColIdx[0] {
			t.Error("re-skin should share structure arrays with the cached plan")
		}
	}
}

func TestMissOnStructureOrConfigChange(t *testing.T) {
	c := New(8)
	m := clusteredMatrix(t, 1024, 512, 3)
	cfg := reorder.DefaultConfig()
	if _, err := c.Preprocess(m, cfg); err != nil {
		t.Fatal(err)
	}

	// Different shape (extra empty row).
	taller := &sparse.CSR{Rows: m.Rows + 1, Cols: m.Cols,
		RowPtr: append(append([]int32{}, m.RowPtr...), m.RowPtr[m.Rows]),
		ColIdx: m.ColIdx, Val: m.Val}
	if _, ok := c.Get(taller, cfg, Full); ok {
		t.Error("hit despite different row count")
	}

	// Different RowPtr (move one nonzero between rows), same ColIdx.
	rp := append([]int32{}, m.RowPtr...)
	rp[1]++ // row 0 steals row 1's first nonzero
	if _, ok := c.Get(&sparse.CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: rp, ColIdx: m.ColIdx, Val: m.Val}, cfg, Full); ok {
		t.Error("hit despite different RowPtr")
	}

	// Different ColIdx.
	ci := append([]int32{}, m.ColIdx...)
	ci[0] ^= 1
	if _, ok := c.Get(&sparse.CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr, ColIdx: ci, Val: m.Val}, cfg, Full); ok {
		t.Error("hit despite different ColIdx")
	}

	// Different semantic config.
	cfg2 := cfg
	cfg2.ThresholdSize = cfg.ThresholdSize + 1
	if _, ok := c.Get(m, cfg2, Full); ok {
		t.Error("hit despite different config")
	}

	// Different variant.
	if _, ok := c.Get(m, cfg, NR); ok {
		t.Error("full-workflow plan served for the NR variant")
	}

	// Worker knobs are execution hints, not plan semantics: still a hit.
	cfg3 := cfg
	cfg3.Workers = 7
	cfg3.LSH.Workers = 3
	cfg3.ASpT.Workers = 2
	if _, ok := c.Get(m, cfg3, Full); !ok {
		t.Error("miss on a worker-count-only config change")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	cfg := reorder.DefaultConfig()
	ms := []*sparse.CSR{
		clusteredMatrix(t, 512, 256, 10),
		clusteredMatrix(t, 512, 256, 11),
		clusteredMatrix(t, 512, 256, 12),
	}
	for _, m := range ms[:2] {
		if _, err := c.Preprocess(m, cfg); err != nil {
			t.Fatal(err)
		}
	}
	// Touch ms[0] so ms[1] is the LRU victim.
	if _, ok := c.Get(ms[0], cfg, Full); !ok {
		t.Fatal("expected hit on ms[0]")
	}
	if _, err := c.Preprocess(ms[2], cfg); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(ms[0], cfg, Full); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Get(ms[1], cfg, Full); ok {
		t.Error("LRU entry survived past capacity")
	}
	if _, ok := c.Get(ms[2], cfg, Full); !ok {
		t.Error("newest entry missing")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction / 2 entries", st)
	}
}

func TestNilCacheAlwaysMisses(t *testing.T) {
	var c *Cache = New(0)
	if c != nil {
		t.Fatal("New(0) should return the nil always-miss cache")
	}
	m := clusteredMatrix(t, 256, 128, 20)
	cfg := reorder.DefaultConfig()
	if _, ok := c.Get(m, cfg, Full); ok {
		t.Error("nil cache reported a hit")
	}
	c.Put(m, cfg, Full, nil)
	c.Purge()
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v, want zero", st)
	}
	p, err := c.Preprocess(m, cfg)
	if err != nil || p == nil {
		t.Fatalf("nil cache Preprocess = (%v, %v), want a computed plan", p, err)
	}
	if c.Len() != 0 {
		t.Error("nil cache stored an entry")
	}
}

func TestPurge(t *testing.T) {
	c := New(4)
	m := clusteredMatrix(t, 512, 256, 30)
	cfg := reorder.DefaultConfig()
	if _, err := c.Preprocess(m, cfg); err != nil {
		t.Fatal(err)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("Len = %d after Purge, want 0", c.Len())
	}
	if _, ok := c.Get(m, cfg, Full); ok {
		t.Error("hit after Purge")
	}
}

// TestConcurrentGetPut exercises the cache from many goroutines under
// -race: concurrent cold misses, hits, re-skins, and evictions on a
// small-capacity cache.
func TestConcurrentGetPut(t *testing.T) {
	c := New(3)
	cfg := reorder.DefaultConfig()
	bases := []*sparse.CSR{
		clusteredMatrix(t, 512, 256, 40),
		clusteredMatrix(t, 512, 256, 41),
		clusteredMatrix(t, 512, 256, 42),
		clusteredMatrix(t, 512, 256, 43),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				m := withValues(bases[(g+i)%len(bases)], float32(g+1))
				p, err := c.Preprocess(m, cfg)
				if err != nil {
					errs <- err
					return
				}
				if p.Reordered.NNZ() != m.NNZ() {
					errs <- fmt.Errorf("goroutine %d: plan nnz %d != matrix nnz %d",
						g, p.Reordered.NNZ(), m.NNZ())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := c.Len(); n > 3 {
		t.Errorf("Len = %d, exceeds capacity 3", n)
	}
}

func eq[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKernelChoiceCached checks the autotuned kernel is part of plan
// identity: a cached plan replays its kernel choice, and a config with
// a different kernel override is a different cache entry.
func TestKernelChoiceCached(t *testing.T) {
	c := New(8)
	m := clusteredMatrix(t, 1024, 512, 9)
	cfg := reorder.DefaultConfig()
	cfg.Kernel = reorder.KernelMerge
	plan, err := c.Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kernel != reorder.KernelMerge {
		t.Fatalf("preprocessed kernel = %v, want merge", plan.Kernel)
	}
	hit, ok := c.Get(m, cfg, Full)
	if !ok {
		t.Fatal("miss on identical matrix+config")
	}
	if hit.Kernel != reorder.KernelMerge {
		t.Fatalf("cached kernel = %v, want merge", hit.Kernel)
	}
	// A hit on the same structure with different values must keep the
	// kernel too (the reskin path).
	hit, ok = c.Get(withValues(m, 2), cfg, Full)
	if !ok {
		t.Fatal("miss on same-structure matrix")
	}
	if hit.Kernel != reorder.KernelMerge {
		t.Fatalf("reskinned kernel = %v, want merge", hit.Kernel)
	}
	// A different kernel override is a different plan.
	cfg2 := cfg
	cfg2.Kernel = reorder.KernelRowWise
	if _, ok := c.Get(m, cfg2, Full); ok {
		t.Error("hit despite different kernel override")
	}
}
