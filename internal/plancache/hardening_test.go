package plancache

import (
	"context"
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/reorder"
)

// A cancelled or faulted build must never be cached: the failed call
// counts as a miss, leaves no entry behind, and the next (clean) call
// recomputes and caches normally — so failure cannot poison the cache
// and hit rates for successful builds are unaffected.
func TestFailedBuildDoesNotPoisonCache(t *testing.T) {
	m := clusteredMatrix(t, 256, 256, 9)
	cfg := reorder.DefaultConfig()
	c := New(4)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.PreprocessCtx(ctx, m, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build = %v, want context.Canceled", err)
	}
	if c.Len() != 0 {
		t.Fatalf("cancelled build was cached (%d entries)", c.Len())
	}

	restore := faultinject.ErrorAt("aspt.build")
	if _, err := c.PreprocessCtx(context.Background(), m, cfg); !errors.Is(err, faultinject.Err) {
		t.Fatalf("faulted build = %v, want faultinject.Err", err)
	}
	restore()
	if c.Len() != 0 {
		t.Fatalf("faulted build was cached (%d entries)", c.Len())
	}

	// Clean build succeeds, caches, and the next call is a pure hit.
	p1, err := c.PreprocessCtx(context.Background(), m, cfg)
	if err != nil {
		t.Fatalf("clean build: %v", err)
	}
	p2, err := c.PreprocessCtx(context.Background(), m, cfg)
	if err != nil {
		t.Fatalf("hit after clean build: %v", err)
	}
	if &p1.Reordered.Val[0] != &p2.Reordered.Val[0] {
		t.Fatalf("second call did not reuse the cached plan's arrays")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 3 misses / 1 entry", st)
	}
}

// The budget knob is an execution hint: two configurations differing
// only in PreprocessBudget must map to the same cache entry.
func TestBudgetDoesNotChangeFingerprint(t *testing.T) {
	m := clusteredMatrix(t, 256, 256, 10)
	c := New(4)
	cfg := reorder.DefaultConfig()
	if _, err := c.Preprocess(m, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.PreprocessBudget = 1 << 30
	if _, err := c.Preprocess(m, cfg); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want the budgeted config to hit the unbudgeted entry", st)
	}
}
