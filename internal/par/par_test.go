package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 1000); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers capped = %d, want 3", got)
	}
	if got := Workers(4, 0); got != 1 {
		t.Fatalf("Workers floor = %d, want 1", got)
	}
	if got := Workers(-1, 16); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}

func TestDoRunsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		var seen atomic.Int64
		Do(workers, func(w int) { seen.Add(1 << uint(w)) })
		if want := int64(1<<uint(workers)) - 1; seen.Load() != want {
			t.Fatalf("Do(%d) ran mask %b, want %b", workers, seen.Load(), want)
		}
	}
}

func TestForUnitsCoversEveryUnitOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 1001
		counts := make([]atomic.Int32, n)
		ForUnits(n, workers, func(u int) { counts[u].Add(1) })
		for u := range counts {
			if counts[u].Load() != 1 {
				t.Fatalf("workers=%d unit %d ran %d times", workers, u, counts[u].Load())
			}
		}
	}
}

func TestForChunksBoundariesIndependentOfWorkers(t *testing.T) {
	const n, size = 1000, 64
	collect := func(workers int) map[int]int {
		mu := make(chan struct{}, 1)
		mu <- struct{}{}
		got := map[int]int{}
		ForChunks(n, size, workers, func(lo, hi int) {
			<-mu
			got[lo] = hi
			mu <- struct{}{}
		})
		return got
	}
	a, b := collect(1), collect(5)
	if len(a) != len(b) || len(a) != (n+size-1)/size {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	total := 0
	for lo, hi := range a {
		if b[lo] != hi {
			t.Fatalf("chunk [%d,%d) vs [%d,%d)", lo, hi, lo, b[lo])
		}
		total += hi - lo
	}
	if total != n {
		t.Fatalf("chunks cover %d elements, want %d", total, n)
	}
}

func TestForChunksEmpty(t *testing.T) {
	ran := false
	ForChunks(0, 16, 4, func(lo, hi int) { ran = true })
	if ran {
		t.Fatalf("ForChunks ran on empty range")
	}
}
