package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 1000); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers capped = %d, want 3", got)
	}
	if got := Workers(4, 0); got != 1 {
		t.Fatalf("Workers floor = %d, want 1", got)
	}
	if got := Workers(-1, 16); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}

func TestDoRunsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		var seen atomic.Int64
		Do(workers, func(w int) { seen.Add(1 << uint(w)) })
		if want := int64(1<<uint(workers)) - 1; seen.Load() != want {
			t.Fatalf("Do(%d) ran mask %b, want %b", workers, seen.Load(), want)
		}
	}
}

func TestForUnitsCoversEveryUnitOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 1001
		counts := make([]atomic.Int32, n)
		ForUnits(n, workers, func(u int) { counts[u].Add(1) })
		for u := range counts {
			if counts[u].Load() != 1 {
				t.Fatalf("workers=%d unit %d ran %d times", workers, u, counts[u].Load())
			}
		}
	}
}

func TestForChunksBoundariesIndependentOfWorkers(t *testing.T) {
	const n, size = 1000, 64
	collect := func(workers int) map[int]int {
		mu := make(chan struct{}, 1)
		mu <- struct{}{}
		got := map[int]int{}
		ForChunks(n, size, workers, func(lo, hi int) {
			<-mu
			got[lo] = hi
			mu <- struct{}{}
		})
		return got
	}
	a, b := collect(1), collect(5)
	if len(a) != len(b) || len(a) != (n+size-1)/size {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	total := 0
	for lo, hi := range a {
		if b[lo] != hi {
			t.Fatalf("chunk [%d,%d) vs [%d,%d)", lo, hi, lo, b[lo])
		}
		total += hi - lo
	}
	if total != n {
		t.Fatalf("chunks cover %d elements, want %d", total, n)
	}
}

func TestForChunksEmpty(t *testing.T) {
	ran := false
	ForChunks(0, 16, 4, func(lo, hi int) { ran = true })
	if ran {
		t.Fatalf("ForChunks ran on empty range")
	}
}

func TestDoPanicDoesNotDeadlock(t *testing.T) {
	// Regression: a panicking worker used to unwind past wg.Done only by
	// luck of defer ordering; a panic escaping the goroutine crashed the
	// process outright. Now the panic must join all workers and re-raise
	// on the caller's goroutine as a *PanicError.
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		Do(4, func(w int) {
			if w == 1 {
				panic("boom")
			}
		})
	}()
	select {
	case r := <-done:
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicError", r, r)
		}
		if pe.Value != "boom" {
			t.Fatalf("PanicError.Value = %v, want boom", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("PanicError.Stack is empty")
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("Do deadlocked after worker panic")
	}
}

func TestDoCtxReturnsFirstError(t *testing.T) {
	sentinel := errors.New("sentinel")
	err := DoCtx(context.Background(), 4, func(w int) error {
		if w == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("DoCtx error = %v, want sentinel", err)
	}
}

func TestDoCtxPanicSurfacesAsError(t *testing.T) {
	err := DoCtx(context.Background(), 3, func(w int) error {
		if w == 0 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Fatalf("DoCtx error = %v, want *PanicError{kaboom}", err)
	}
}

func TestForUnitsCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForUnitsCtx(ctx, 1<<20, 4, func(u int) error {
		if ran.Add(1) == 8 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForUnitsCtx error = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1<<20 {
		t.Fatalf("cancellation did not stop the loop (ran all %d units)", n)
	}
}

func TestForUnitsCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForUnitsCtx(ctx, 100, 4, func(u int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatalf("pre-cancelled context still ran units")
	}
}

func TestForUnitsCtxSerialPanic(t *testing.T) {
	err := ForUnitsCtx(nil, 10, 1, func(u int) error {
		if u == 3 {
			panic(42)
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != 42 {
		t.Fatalf("serial ForUnitsCtx error = %v, want *PanicError{42}", err)
	}
}

func TestForChunksCtxErrorStopsClaims(t *testing.T) {
	sentinel := errors.New("stop")
	var after atomic.Int64
	err := ForChunksCtx(nil, 1<<16, 16, 4, func(lo, hi int) error {
		if lo == 0 {
			return sentinel
		}
		after.Add(1)
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if n := after.Load(); n >= (1<<16)/16-1 {
		t.Fatalf("error did not stop chunk claiming (%d chunks ran)", n)
	}
}

func TestGuard(t *testing.T) {
	if err := Guard(func() error { return nil }); err != nil {
		t.Fatalf("Guard(nil fn) = %v", err)
	}
	err := Guard(func() error { panic("g") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "g" {
		t.Fatalf("Guard panic = %v, want *PanicError{g}", err)
	}
	// A *PanicError panicked through Guard passes through unchanged.
	orig := &PanicError{Value: "orig", Stack: []byte("s")}
	err = Guard(func() error { panic(orig) })
	if !errors.As(err, &pe) || pe != orig {
		t.Fatalf("Guard re-wrapped an existing PanicError: %v", err)
	}
}

func TestCtxErrNil(t *testing.T) {
	if err := CtxErr(nil); err != nil {
		t.Fatalf("CtxErr(nil) = %v", err)
	}
}
