// Package par holds the small shared scaffolding of the parallel
// preprocessing engine: worker-count resolution and deterministic
// fork-join loops. Every parallel stage built on it is required to be
// *output-deterministic*: the bytes it produces must not depend on the
// worker count or on scheduling. The helpers here make that easy by
// fixing the unit of work (a chunk index range) independently of the
// number of workers and letting workers race only for *which* unit they
// execute, never for what a unit computes or where it writes.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean
// runtime.GOMAXPROCS(0). The result is additionally capped at units (the
// number of independent work units available) and floored at 1.
func Workers(requested, units int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > units {
		w = units
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Do runs fn(w) for w in [0, workers), each on its own goroutine (the
// caller's goroutine runs the last one), and waits for all of them.
// workers <= 1 runs fn(0) inline with no goroutine overhead.
func Do(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 0; w < workers-1; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	fn(workers - 1)
	wg.Wait()
}

// ForUnits executes fn(u) for every unit u in [0, n), distributing units
// dynamically over workers through an atomic ticket counter — skewed
// units (e.g. sparse-matrix panels of very different nnz) self-balance.
// fn must write only to unit-u-owned state so the output is identical
// for every worker count.
func ForUnits(n, workers int, fn func(u int)) {
	workers = Workers(workers, n)
	if workers <= 1 {
		for u := 0; u < n; u++ {
			fn(u)
		}
		return
	}
	var next atomic.Int64
	Do(workers, func(int) {
		for {
			u := int(next.Add(1)) - 1
			if u >= n {
				return
			}
			fn(u)
		}
	})
}

// ForChunks splits [0, n) into runs of the given fixed size and executes
// fn(lo, hi) for each run, dynamically balanced across workers. The
// chunk boundaries depend only on n and size — never on the worker
// count — so chunk-indexed accumulation (e.g. per-chunk float sums later
// combined in chunk order) is bit-identical for any parallelism.
func ForChunks(n, size, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if size < 1 {
		size = 1
	}
	nchunks := (n + size - 1) / size
	ForUnits(nchunks, workers, func(u int) {
		lo := u * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}
