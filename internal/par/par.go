// Package par holds the small shared scaffolding of the parallel
// preprocessing engine: worker-count resolution and deterministic
// fork-join loops. Every parallel stage built on it is required to be
// *output-deterministic*: the bytes it produces must not depend on the
// worker count or on scheduling. The helpers here make that easy by
// fixing the unit of work (a chunk index range) independently of the
// number of workers and letting workers race only for *which* unit they
// execute, never for what a unit computes or where it writes.
//
// The *Ctx variants additionally make every stage cancellable and
// panic-isolated: workers observe ctx between units and abort promptly,
// and a panicking unit is recovered into a typed *PanicError that is
// returned as an ordinary error after every worker has stopped — a
// worker failure can therefore never crash the process, leak a
// goroutine, or leave the fork-join caller blocked in wg.Wait.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a worker panic converted into an error: the recovered
// value plus the stack of the panicking goroutine, captured at the
// panic site. It satisfies errors.As-style matching via the usual
// `var pe *par.PanicError; errors.As(err, &pe)` pattern.
type PanicError struct {
	// Value is the value the worker panicked with.
	Value any
	// Stack is the panicking goroutine's stack trace, captured before
	// unwinding.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", e.Value, e.Stack)
}

// NewPanicError wraps a recovered panic value (as returned by
// recover()) with the current goroutine's stack. Call it from inside
// the deferred recover handler so the stack still shows the panic site.
// A value that already is a *PanicError passes through unchanged.
func NewPanicError(recovered any) *PanicError {
	if pe, ok := recovered.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: recovered, Stack: debug.Stack()}
}

// Guard runs fn on the calling goroutine and converts a panic into a
// *PanicError, so serial stages get the same failure contract as the
// fork-join loops below.
func Guard(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = NewPanicError(r)
		}
	}()
	return fn()
}

// CtxErr returns ctx.Err(), treating a nil context as never-cancelled.
// Stage loops use it as their cooperative cancellation checkpoint.
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Workers resolves a requested worker count: values <= 0 mean
// runtime.GOMAXPROCS(0). The result is additionally capped at units (the
// number of independent work units available) and floored at 1.
func Workers(requested, units int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > units {
		w = units
	}
	if w < 1 {
		w = 1
	}
	return w
}

// group collects the first failure across a fork-join and signals the
// remaining workers to wind down.
type group struct {
	stop atomic.Bool
	mu   sync.Mutex
	err  error
}

func (g *group) record(err error) {
	if err == nil {
		return
	}
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
	g.stop.Store(true)
}

// DoCtx runs fn(w) for w in [0, workers), each on its own goroutine
// (the caller's goroutine runs the last one), and waits for all of
// them. It returns the first non-nil error any worker produced; a
// panicking worker is recovered into a *PanicError and reported the
// same way, after every other worker has finished — the join can never
// be left hanging. ctx is checked once before the fork; long-running fn
// bodies are expected to poll CtxErr(ctx) themselves (ForUnitsCtx and
// ForChunksCtx do this between units). workers <= 1 runs fn(0) inline
// with no goroutine overhead.
func DoCtx(ctx context.Context, workers int, fn func(w int) error) error {
	if err := CtxErr(ctx); err != nil {
		return err
	}
	var g group
	run := func(w int) { g.record(Guard(func() error { return fn(w) })) }
	if workers <= 1 {
		run(0)
		return g.err
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 0; w < workers-1; w++ {
		go func(w int) {
			defer wg.Done()
			run(w)
		}(w)
	}
	run(workers - 1)
	wg.Wait()
	return g.err
}

// Do runs fn(w) for w in [0, workers), each on its own goroutine (the
// caller's goroutine runs the last one), and waits for all of them.
// workers <= 1 runs fn(0) inline with no goroutine overhead.
//
// A panicking worker no longer crashes the process from inside its
// goroutine: the panic is recovered, every worker is joined, and the
// panic is then re-raised on the *caller's* goroutine as a *PanicError
// carrying the original stack. Callers can recover it; the join itself
// can never deadlock on a lost wg.Done.
func Do(workers int, fn func(w int)) {
	if err := DoCtx(nil, workers, func(w int) error { fn(w); return nil }); err != nil {
		panic(err)
	}
}

// ForUnitsCtx executes fn(u) for every unit u in [0, n), distributing
// units dynamically over workers through an atomic ticket counter.
// Workers re-check ctx before claiming each unit, so cancellation
// aborts within one unit's latency; the first error (or recovered
// *PanicError) stops further claims and is returned after all workers
// have parked. fn must write only to unit-u-owned state so the output
// of a completed call is identical for every worker count.
func ForUnitsCtx(ctx context.Context, n, workers int, fn func(u int) error) error {
	workers = Workers(workers, n)
	if workers <= 1 {
		return Guard(func() error {
			for u := 0; u < n; u++ {
				if err := CtxErr(ctx); err != nil {
					return err
				}
				if err := fn(u); err != nil {
					return err
				}
			}
			return nil
		})
	}
	var next atomic.Int64
	var stop atomic.Bool
	return DoCtx(ctx, workers, func(int) error {
		for {
			if stop.Load() {
				return nil
			}
			if err := CtxErr(ctx); err != nil {
				stop.Store(true)
				return err
			}
			u := int(next.Add(1)) - 1
			if u >= n {
				return nil
			}
			if err := Guard(func() error { return fn(u) }); err != nil {
				stop.Store(true)
				return err
			}
		}
	})
}

// ForUnits executes fn(u) for every unit u in [0, n), distributing units
// dynamically over workers through an atomic ticket counter — skewed
// units (e.g. sparse-matrix panels of very different nnz) self-balance.
// fn must write only to unit-u-owned state so the output is identical
// for every worker count. A panicking unit is re-raised on the caller's
// goroutine as a *PanicError after all workers have stopped (see Do).
func ForUnits(n, workers int, fn func(u int)) {
	if err := ForUnitsCtx(nil, n, workers, func(u int) error { fn(u); return nil }); err != nil {
		panic(err)
	}
}

// ForChunksCtx splits [0, n) into runs of the given fixed size and
// executes fn(lo, hi) for each run, dynamically balanced across
// workers, with the same cancellation and panic-isolation contract as
// ForUnitsCtx. The chunk boundaries depend only on n and size — never
// on the worker count — so chunk-indexed accumulation is bit-identical
// for any parallelism.
func ForChunksCtx(ctx context.Context, n, size, workers int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return CtxErr(ctx)
	}
	if size < 1 {
		size = 1
	}
	nchunks := (n + size - 1) / size
	return ForUnitsCtx(ctx, nchunks, workers, func(u int) error {
		lo := u * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
}

// ForChunks splits [0, n) into runs of the given fixed size and executes
// fn(lo, hi) for each run, dynamically balanced across workers. The
// chunk boundaries depend only on n and size — never on the worker
// count — so chunk-indexed accumulation (e.g. per-chunk float sums later
// combined in chunk order) is bit-identical for any parallelism.
func ForChunks(n, size, workers int, fn func(lo, hi int)) {
	if err := ForChunksCtx(nil, n, size, workers, func(lo, hi int) error { fn(lo, hi); return nil }); err != nil {
		panic(err)
	}
}
