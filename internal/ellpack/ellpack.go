// Package ellpack implements the ELLPACK-R sparse format used by
// FastSpMM (Ortega et al., cited in the paper's related work §6) as an
// additional SpMM baseline: entries are stored column-major in a
// rows×width slab padded to the longest row, with an explicit per-row
// length array so kernels can stop early.
//
// ELLPACK's strength is perfectly coalesced, branch-free access for
// near-uniform row lengths; its weakness — which the paper's related-work
// discussion points at — is that padding scales with the *longest* row,
// so power-law matrices waste most of the slab. The simulated kernel
// charges that padding as structure traffic, reproducing the trade-off.
package ellpack

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/gpusim"
	"repro/internal/sparse"
)

// Matrix is an ELLPACK-R matrix: entry (i, s) of the slab lives at
// Cols/Vals[s*Rows+i] (column-major so that consecutive threads touch
// consecutive addresses), with RowLen[i] giving row i's true length.
// Padding slots hold column -1 and value 0.
type Matrix struct {
	Rows, NCols int // logical dimensions (NCols = number of matrix columns)
	Width       int // slab width = max row length
	RowLen      []int32
	Cols        []int32
	Vals        []float32

	// cum[i] is the number of true (non-padding) entries in rows [0, i),
	// built by FromCSR; see CumWork.
	cum []int64
}

// FromCSR converts a CSR matrix. maxWidth, when positive, rejects
// matrices whose longest row exceeds it (the caller should fall back to
// CSR; real ELL implementations cap the slab to bound memory blow-up).
func FromCSR(m *sparse.CSR, maxWidth int) (*Matrix, error) {
	width := m.MaxRowLen()
	if maxWidth > 0 && width > maxWidth {
		return nil, fmt.Errorf("ellpack: max row length %d exceeds cap %d", width, maxWidth)
	}
	e := &Matrix{
		Rows:   m.Rows,
		NCols:  m.Cols,
		Width:  width,
		RowLen: make([]int32, m.Rows),
		Cols:   make([]int32, m.Rows*width),
		Vals:   make([]float32, m.Rows*width),
	}
	for i := range e.Cols {
		e.Cols[i] = -1
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.RowCols(i), m.RowVals(i)
		e.RowLen[i] = int32(len(cols))
		for s := range cols {
			e.Cols[s*m.Rows+i] = cols[s]
			e.Vals[s*m.Rows+i] = vals[s]
		}
	}
	e.cum = make([]int64, m.Rows+1)
	for i := 0; i <= m.Rows; i++ {
		e.cum[i] = int64(m.RowPtr[i])
	}
	return e, nil
}

// CumWork returns the number of true entries in rows [0, i) — the
// cumulative-work signal the nnz-balanced executor partitions on
// (CumWork(0) == 0, CumWork(Rows) == NNZ()). Hand-assembled matrices
// without the prefix array fall back to a uniform width-based estimate,
// which only affects balance, never correctness.
func (e *Matrix) CumWork(i int) int64 {
	if e.cum != nil {
		return e.cum[i]
	}
	return int64(i) * int64(e.Width)
}

// NNZ returns the number of true (non-padding) entries.
func (e *Matrix) NNZ() int {
	n := 0
	for _, l := range e.RowLen {
		n += int(l)
	}
	return n
}

// PaddingRatio returns the fraction of slab slots that are padding —
// the format's overhead on skewed matrices.
func (e *Matrix) PaddingRatio() float64 {
	slots := e.Rows * e.Width
	if slots == 0 {
		return 0
	}
	return 1 - float64(e.NNZ())/float64(slots)
}

// ToCSR converts back to CSR (tests use this for round-trip checks).
func (e *Matrix) ToCSR() (*sparse.CSR, error) {
	sets := make([][]int32, e.Rows)
	vals := make([][]float32, e.Rows)
	for i := 0; i < e.Rows; i++ {
		for s := 0; s < int(e.RowLen[i]); s++ {
			sets[i] = append(sets[i], e.Cols[s*e.Rows+i])
			vals[i] = append(vals[i], e.Vals[s*e.Rows+i])
		}
	}
	return sparse.FromRows(e.Rows, e.NCols, sets, vals)
}

// SpMM computes Y = E·X natively (parallel-free reference; ELL is a
// baseline, not the contribution, so a simple loop suffices for
// correctness checks and small runs).
func (e *Matrix) SpMM(x *dense.Matrix) (*dense.Matrix, error) {
	if e.NCols != x.Rows {
		return nil, fmt.Errorf("ellpack: SpMM shape mismatch: E is %dx%d, X is %dx%d",
			e.Rows, e.NCols, x.Rows, x.Cols)
	}
	y := dense.New(e.Rows, x.Cols)
	for i := 0; i < e.Rows; i++ {
		yi := y.Row(i)
		for s := 0; s < int(e.RowLen[i]); s++ {
			c := e.Cols[s*e.Rows+i]
			v := e.Vals[s*e.Rows+i]
			xr := x.Row(int(c))
			for k := range yi {
				yi[k] += v * xr[k]
			}
		}
	}
	return y, nil
}

// SimulateSpMM runs the ELL SpMM kernel on the GPU simulator: one thread
// per row marching down the slab, X rows fetched through the L2, and —
// the format's defining cost — the whole padded slab streamed from DRAM.
func SimulateSpMM(dev gpusim.Config, e *Matrix, k int) (*gpusim.Stats, error) {
	csr, err := e.ToCSR()
	if err != nil {
		return nil, err
	}
	// Reuse the row-wise engine for the X-access pattern...
	st, err := gpusim.SpMMRowWise(dev, csr, k, nil)
	if err != nil {
		return nil, err
	}
	st.Kernel = "spmm-ellpack"
	// ...then replace the compact CSR structure traffic with the padded
	// slab: rows*width (col+val) entries instead of nnz, plus the RowLen
	// array instead of RowPtr.
	compact := float64(csr.NNZ())*float64(dev.IndexBytes+dev.ElemBytes) +
		float64(csr.Rows)*2*float64(dev.IndexBytes)
	padded := float64(e.Rows*e.Width)*float64(dev.IndexBytes+dev.ElemBytes) +
		float64(e.Rows)*float64(dev.IndexBytes)
	delta := padded - compact
	// On near-uniform matrices the slab part matches the compact nnz
	// exactly and the row arrays differ (RowLen is one read per row,
	// RowPtr two), driving delta negative — which would credit ELL with
	// *less* DRAM traffic than the padded slab it actually streams.
	// The slab is never smaller than the compact structure, so clamp:
	// ELL's structure traffic is at least CSR's.
	if delta < 0 {
		delta = 0
	}
	st.DRAMBytes += delta
	st.L2Bytes += delta
	st.StructBytes += delta
	st.Refinalize(dev)
	return st, nil
}
