package ellpack

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dense"
	"repro/internal/gpusim"
	"repro/internal/sparse"
)

// Hybrid is the HYB format (the ELL+COO hybrid popularised by cuSPARSE
// and Bell & Garland's SpMV work, cited in the paper's related work):
// each row's first `Width` entries go into an ELL slab sized for the
// *typical* row, and the overflow of long rows spills into a COO list.
// HYB keeps ELL's coalescing without its worst-case padding.
type Hybrid struct {
	ELL *Matrix
	// Spill holds the overflow entries in row-major COO order.
	Spill []sparse.Entry

	// cum[i] is the total stored work (ELL + spill nonzeros) of rows
	// [0, i) — the source matrix's RowPtr, since the two partitions
	// exactly tile its nonzeros. Built by FromCSRHybrid; see CumWork.
	cum []int64
}

// DefaultHybridQuantile is the row-length quantile used to size the ELL
// slab (Bell & Garland use roughly the point where ≥ 1/3 of rows are
// full; the 0.75 quantile is a common practical choice).
const DefaultHybridQuantile = 0.75

// FromCSRHybrid builds a HYB matrix with the slab width set to the given
// row-length quantile (0 < q <= 1; 0 selects DefaultHybridQuantile).
func FromCSRHybrid(m *sparse.CSR, q float64) (*Hybrid, error) {
	if q == 0 {
		q = DefaultHybridQuantile
	}
	// Negated range check so NaN (for which both q < 0 and q > 1 are
	// false) is rejected instead of flowing into the platform-dependent
	// float->int conversion below.
	if !(q > 0 && q <= 1) {
		return nil, fmt.Errorf("ellpack: hybrid quantile %v out of (0, 1]", q)
	}
	lens := make([]int, m.Rows)
	for i := range lens {
		lens[i] = m.RowLen(i)
	}
	sort.Ints(lens)
	width := 0
	if m.Rows > 0 {
		// Nearest-rank (ceiling) quantile: the q-quantile of n sorted
		// values is the ⌈q·n⌉-th smallest. Truncating instead picks the
		// floor rank, which with 2 rows and q=0.75 selects the *shorter*
		// row and spills half the matrix.
		idx := int(math.Ceil(q*float64(m.Rows))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= m.Rows {
			idx = m.Rows - 1
		}
		width = lens[idx]
	}

	h := &Hybrid{ELL: &Matrix{
		Rows:   m.Rows,
		NCols:  m.Cols,
		Width:  width,
		RowLen: make([]int32, m.Rows),
		Cols:   make([]int32, m.Rows*width),
		Vals:   make([]float32, m.Rows*width),
	}}
	for i := range h.ELL.Cols {
		h.ELL.Cols[i] = -1
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.RowCols(i), m.RowVals(i)
		n := len(cols)
		if n > width {
			n = width
		}
		h.ELL.RowLen[i] = int32(n)
		for s := 0; s < n; s++ {
			h.ELL.Cols[s*m.Rows+i] = cols[s]
			h.ELL.Vals[s*m.Rows+i] = vals[s]
		}
		for s := n; s < len(cols); s++ {
			h.Spill = append(h.Spill, sparse.Entry{Row: int32(i), Col: cols[s], Val: vals[s]})
		}
	}
	h.cum = make([]int64, m.Rows+1)
	for i := 0; i <= m.Rows; i++ {
		h.cum[i] = int64(m.RowPtr[i])
	}
	return h, nil
}

// CumWork returns the total stored work (ELL + spill entries) of rows
// [0, i) — the cumulative-work signal the nnz-balanced executor
// partitions on. Hand-assembled Hybrids without the prefix array fall
// back to the ELL part's estimate (balance only; correctness is
// unaffected).
func (h *Hybrid) CumWork(i int) int64 {
	if h.cum != nil {
		return h.cum[i]
	}
	return h.ELL.CumWork(i)
}

// NNZ returns the total stored nonzeros (ELL + spill).
func (h *Hybrid) NNZ() int { return h.ELL.NNZ() + len(h.Spill) }

// SpillRatio returns the fraction of nonzeros in the COO part.
func (h *Hybrid) SpillRatio() float64 {
	if h.NNZ() == 0 {
		return 0
	}
	return float64(len(h.Spill)) / float64(h.NNZ())
}

// SpMM computes Y = H·X natively.
func (h *Hybrid) SpMM(x *dense.Matrix) (*dense.Matrix, error) {
	y, err := h.ELL.SpMM(x)
	if err != nil {
		return nil, err
	}
	for _, e := range h.Spill {
		xr := x.Row(int(e.Col))
		yr := y.Row(int(e.Row))
		for k := range yr {
			yr[k] += e.Val * xr[k]
		}
	}
	return y, nil
}

// SimulateSpMM models the two HYB kernels: the ELL slab kernel (padded
// structure, coalesced) followed by a COO kernel over the spill (one X
// row read and one Y row read-modify-write per spilled entry, atomically
// accumulated on real hardware).
func SimulateSpMMHybrid(dev gpusim.Config, h *Hybrid, k int) (*gpusim.Stats, error) {
	st, err := SimulateSpMM(dev, h.ELL, k)
	if err != nil {
		return nil, err
	}
	st.Kernel = "spmm-hyb"
	rowBytes := float64(k * dev.ElemBytes)
	// COO spill: entry stream and one X row per entry; COO kernels use
	// segmented reduction, so each distinct spilled row's Y is
	// read-modified-written once, not once per entry.
	spill := float64(len(h.Spill))
	spilledRows := make(map[int32]struct{}, len(h.Spill))
	for _, e := range h.Spill {
		spilledRows[e.Row] = struct{}{}
	}
	structB := spill * float64(2*dev.IndexBytes+dev.ElemBytes)
	xB := spill * rowBytes
	yB := float64(len(spilledRows)) * 2 * rowBytes
	st.DRAMBytes += structB + xB + yB
	st.L2Bytes += structB + xB + yB
	st.StructBytes += structB
	st.XBytes += xB
	st.YBytes += yB
	st.Refinalize(dev)
	return st, nil
}
