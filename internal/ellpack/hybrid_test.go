package ellpack_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
	"repro/internal/ellpack"
	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func TestHybridSplit(t *testing.T) {
	// Rows of lengths 1,1,1,5: the 0.75 quantile width is 1, so the long
	// row spills 4 entries.
	sets := [][]int32{{0}, {1}, {2}, {0, 1, 2, 3, 4}}
	m := mustCSR(t, 4, 8, sets)
	h, err := ellpack.FromCSRHybrid(m, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if h.ELL.Width != 1 {
		t.Fatalf("width = %d, want 1", h.ELL.Width)
	}
	if len(h.Spill) != 4 {
		t.Fatalf("spill = %d, want 4", len(h.Spill))
	}
	if h.NNZ() != m.NNZ() {
		t.Fatalf("NNZ = %d, want %d", h.NNZ(), m.NNZ())
	}
	if h.SpillRatio() != 0.5 {
		t.Fatalf("SpillRatio = %v", h.SpillRatio())
	}
}

func TestHybridQuantileValidation(t *testing.T) {
	m := mustCSR(t, 2, 2, [][]int32{{0}, {1}})
	if _, err := ellpack.FromCSRHybrid(m, -0.1); err == nil {
		t.Errorf("negative quantile accepted")
	}
	if _, err := ellpack.FromCSRHybrid(m, 1.5); err == nil {
		t.Errorf("quantile > 1 accepted")
	}
	if _, err := ellpack.FromCSRHybrid(m, 0); err != nil {
		t.Errorf("default quantile rejected: %v", err)
	}
}

func TestHybridSpMMMatchesCSR(t *testing.T) {
	m, err := synth.RMAT(9, 8, 0.57, 0.19, 0.19, 4) // heavy-tailed rows
	if err != nil {
		t.Fatal(err)
	}
	h, err := ellpack.FromCSRHybrid(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.SpillRatio() == 0 {
		t.Fatalf("fixture should spill")
	}
	x := dense.NewRandom(m.Cols, 8, 1)
	want, err := kernels.SpMMRowWise(m, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.SpMM(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := dense.MaxAbsDiff(got, want); d > 1e-3 {
		t.Fatalf("HYB SpMM differs by %v", d)
	}
}

func TestHybridBeatsELLOnSkewed(t *testing.T) {
	// One huge row: ELL pads everything; HYB spills it and wins.
	sets := make([][]int32, 256)
	for c := int32(0); c < 200; c++ {
		sets[0] = append(sets[0], c)
	}
	for i := 1; i < 256; i++ {
		sets[i] = []int32{int32(i % 256)}
	}
	m := mustCSR(t, 256, 256, sets)
	e, err := ellpack.FromCSR(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ellpack.FromCSRHybrid(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.P100()
	ell, err := ellpack.SimulateSpMM(dev, e, 256)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := ellpack.SimulateSpMMHybrid(dev, h, 256)
	if err != nil {
		t.Fatal(err)
	}
	if hyb.DRAMBytes >= ell.DRAMBytes {
		t.Fatalf("HYB traffic %v not below ELL %v on skewed input", hyb.DRAMBytes, ell.DRAMBytes)
	}
}

// Property: HYB partitions nonzeros exactly and SpMM matches CSR.
func TestPropertyHybrid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(30)
		sets := make([][]int32, rows)
		for i := range sets {
			n := rng.Intn(8)
			if n > cols {
				n = cols
			}
			seen := map[int32]bool{}
			for len(seen) < n {
				seen[int32(rng.Intn(cols))] = true
			}
			for c := range seen {
				sets[i] = append(sets[i], c)
			}
		}
		m, err := sparse.FromRows(rows, cols, sets, nil)
		if err != nil {
			return false
		}
		q := 0.25 + 0.75*rng.Float64()
		h, err := ellpack.FromCSRHybrid(m, q)
		if err != nil {
			return false
		}
		if h.NNZ() != m.NNZ() {
			return false
		}
		x := dense.NewRandom(cols, 4, seed)
		a, err := h.SpMM(x)
		if err != nil {
			return false
		}
		b, err := kernels.SpMMRowWise(m, x)
		if err != nil {
			return false
		}
		return dense.MaxAbsDiff(a, b) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridQuantileRejectsNaN(t *testing.T) {
	// Regression: NaN fails both q < 0 and q > 1, so it used to flow
	// into the float->int width index, which is platform-dependent.
	m := mustCSR(t, 2, 2, [][]int32{{0}, {1}})
	if _, err := ellpack.FromCSRHybrid(m, math.NaN()); err == nil {
		t.Fatalf("NaN quantile accepted")
	}
}

func TestHybridQuantileNearestRank(t *testing.T) {
	// Regression: with rows of lengths {1, 3}, the 0.75 quantile must be
	// the nearest (ceiling) rank ⌈0.75·2⌉ = 2nd smallest = 3. Floor-rank
	// truncation picked the *shorter* row and spilled 2 of 4 nonzeros.
	m := mustCSR(t, 2, 4, [][]int32{{0}, {0, 1, 2}})
	h, err := ellpack.FromCSRHybrid(m, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if h.ELL.Width != 3 {
		t.Fatalf("width = %d, want 3 (nearest-rank quantile)", h.ELL.Width)
	}
	if len(h.Spill) != 0 {
		t.Fatalf("spill = %d, want 0", len(h.Spill))
	}
	// The 0.5 quantile is the 1st smallest = 1: the long row spills.
	h, err = ellpack.FromCSRHybrid(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if h.ELL.Width != 1 || len(h.Spill) != 2 {
		t.Fatalf("q=0.5: width = %d spill = %d, want 1 and 2", h.ELL.Width, len(h.Spill))
	}
}

func TestHybridCumWork(t *testing.T) {
	m := mustCSR(t, 4, 8, [][]int32{{0}, {}, {0, 1, 2, 3, 4}, {1, 2}})
	h, err := ellpack.FromCSRHybrid(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= m.Rows; i++ {
		if got, want := h.CumWork(i), int64(m.RowPtr[i]); got != want {
			t.Fatalf("CumWork(%d) = %d, want %d", i, got, want)
		}
	}
}
