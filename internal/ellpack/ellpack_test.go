package ellpack_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
	"repro/internal/ellpack"
	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func mustCSR(t *testing.T, rows, cols int, sets [][]int32) *sparse.CSR {
	t.Helper()
	m, err := sparse.FromRows(rows, cols, sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromCSRLayout(t *testing.T) {
	m := mustCSR(t, 3, 5, [][]int32{{0, 4}, {2}, {1, 3, 4}})
	e, err := ellpack.FromCSR(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Width != 3 || e.Rows != 3 || e.NCols != 5 {
		t.Fatalf("layout %+v", e)
	}
	if e.NNZ() != 6 {
		t.Fatalf("NNZ = %d", e.NNZ())
	}
	// Column-major: slab slot (s=0, i=1) holds row 1's first entry.
	if e.Cols[0*3+1] != 2 {
		t.Fatalf("slab[0][1] = %d, want 2", e.Cols[0*3+1])
	}
	// Padding slot for row 1, s=1.
	if e.Cols[1*3+1] != -1 || e.Vals[1*3+1] != 0 {
		t.Fatalf("padding not marked")
	}
	if got := e.PaddingRatio(); math.Abs(got-(1-6.0/9.0)) > 1e-12 {
		t.Fatalf("PaddingRatio = %v", got)
	}
}

func TestFromCSRWidthCap(t *testing.T) {
	m := mustCSR(t, 2, 8, [][]int32{{0, 1, 2, 3, 4}, {0}})
	if _, err := ellpack.FromCSR(m, 4); err == nil {
		t.Fatalf("width cap not enforced")
	}
	if _, err := ellpack.FromCSR(m, 5); err != nil {
		t.Fatalf("width cap rejected exact fit: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	m := mustCSR(t, 4, 6, [][]int32{{0, 5}, {}, {1, 2, 3}, {4}})
	e, err := ellpack.FromCSR(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := e.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Fatalf("round trip changed the matrix")
	}
}

func TestSpMMMatchesCSR(t *testing.T) {
	m, err := synth.Uniform(200, 150, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ellpack.FromCSR(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := dense.NewRandom(m.Cols, 16, 1)
	want, err := kernels.SpMMRowWise(m, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.SpMM(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := dense.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("ELL SpMM differs by %v", d)
	}
}

func TestSpMMShapeError(t *testing.T) {
	m := mustCSR(t, 2, 3, [][]int32{{0}, {1}})
	e, err := ellpack.FromCSR(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SpMM(dense.New(5, 4)); err == nil {
		t.Fatalf("shape mismatch accepted")
	}
}

func TestSimulatePaddingPenalty(t *testing.T) {
	// A power-law matrix: one huge row makes ELL's slab mostly padding,
	// so simulated ELL must be slower than simulated CSR row-wise.
	sets := make([][]int32, 256)
	for c := int32(0); c < 200; c++ {
		sets[0] = append(sets[0], c)
	}
	for i := 1; i < 256; i++ {
		sets[i] = []int32{int32(i % 256)}
	}
	m := mustCSR(t, 256, 256, sets)
	e, err := ellpack.FromCSR(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.PaddingRatio() < 0.9 {
		t.Fatalf("fixture not skewed enough: padding %v", e.PaddingRatio())
	}
	dev := gpusim.P100()
	ell, err := ellpack.SimulateSpMM(dev, e, 256)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := gpusim.SpMMRowWise(dev, m, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ell.StructBytes <= csr.StructBytes {
		t.Fatalf("padding traffic not charged: %v <= %v", ell.StructBytes, csr.StructBytes)
	}
	if ell.Time < csr.Time {
		t.Fatalf("ELL should not beat CSR on skewed input: %v < %v", ell.Time, csr.Time)
	}
}

func TestSimulateUniformCompetitive(t *testing.T) {
	// Near-uniform row lengths: padding is negligible and ELL's traffic
	// matches CSR's within the RowLen/RowPtr delta.
	m, err := synth.Uniform(1024, 1024, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ellpack.FromCSR(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.P100()
	ell, err := ellpack.SimulateSpMM(dev, e, 256)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := gpusim.SpMMRowWise(dev, m, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ell.DRAMBytes > csr.DRAMBytes*1.5 {
		t.Fatalf("uniform ELL traffic blown up: %v vs %v", ell.DRAMBytes, csr.DRAMBytes)
	}
}

// Property: CSR -> ELL -> CSR is the identity, and ELL SpMM matches the
// CSR kernel.
func TestPropertyELLRoundTripAndSpMM(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(30)
		sets := make([][]int32, rows)
		for i := range sets {
			n := rng.Intn(6)
			if n > cols {
				n = cols
			}
			seen := map[int32]bool{}
			for len(seen) < n {
				seen[int32(rng.Intn(cols))] = true
			}
			for c := range seen {
				sets[i] = append(sets[i], c)
			}
		}
		m, err := sparse.FromRows(rows, cols, sets, nil)
		if err != nil {
			return false
		}
		e, err := ellpack.FromCSR(m, 0)
		if err != nil {
			return false
		}
		back, err := e.ToCSR()
		if err != nil || !back.Equal(m) {
			return false
		}
		x := dense.NewRandom(cols, 4, seed)
		a, err := e.SpMM(x)
		if err != nil {
			return false
		}
		b, err := kernels.SpMMRowWise(m, x)
		if err != nil {
			return false
		}
		return dense.MaxAbsDiff(a, b) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateUniformNotCredited(t *testing.T) {
	// Regression: on an exactly uniform matrix the padded slab equals the
	// compact nonzeros, and the per-row structure arrays differ (RowLen
	// is one read per row, RowPtr two) — the old accounting pushed that
	// negative delta into the traffic totals, crediting ELL with *less*
	// DRAM traffic than the slab it streams. ELL must never be charged
	// below the CSR baseline.
	sets := make([][]int32, 512)
	for i := range sets {
		for c := int32(0); c < 4; c++ {
			sets[i] = append(sets[i], (int32(i)+c*7)%512)
		}
	}
	m := mustCSR(t, 512, 512, sets)
	e, err := ellpack.FromCSR(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.PaddingRatio() != 0 {
		t.Fatalf("fixture not uniform: padding %v", e.PaddingRatio())
	}
	dev := gpusim.P100()
	ell, err := ellpack.SimulateSpMM(dev, e, 64)
	if err != nil {
		t.Fatal(err)
	}
	csr, err := gpusim.SpMMRowWise(dev, m, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ell.DRAMBytes < csr.DRAMBytes {
		t.Fatalf("uniform ELL credited below CSR: %v < %v DRAM bytes", ell.DRAMBytes, csr.DRAMBytes)
	}
	if ell.StructBytes < csr.StructBytes {
		t.Fatalf("uniform ELL structure credited below CSR: %v < %v", ell.StructBytes, csr.StructBytes)
	}
}

func TestELLCumWork(t *testing.T) {
	m := mustCSR(t, 4, 8, [][]int32{{0, 1}, {}, {2}, {0, 1, 2, 3}})
	e, err := ellpack.FromCSR(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= m.Rows; i++ {
		if got, want := e.CumWork(i), int64(m.RowPtr[i]); got != want {
			t.Fatalf("CumWork(%d) = %d, want %d", i, got, want)
		}
	}
}
