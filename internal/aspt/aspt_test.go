package aspt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/paperex"
	"repro/internal/sparse"
)

func exampleParams() Params {
	return Params{PanelSize: paperex.PanelSize, DenseThreshold: paperex.DenseThreshold}
}

func TestParamsValidation(t *testing.T) {
	m := paperex.Matrix()
	if _, err := Build(m, Params{PanelSize: 0, DenseThreshold: 2}); err == nil {
		t.Errorf("accepted PanelSize 0")
	}
	if _, err := Build(m, Params{PanelSize: 3, DenseThreshold: 1}); err == nil {
		t.Errorf("accepted DenseThreshold 1")
	}
	if _, err := Build(m, Params{PanelSize: -1, DenseThreshold: 2}); err == nil {
		t.Errorf("accepted negative PanelSize")
	}
}

// TestPaperWorkedExampleOriginal asserts the §2.3 tiling of the original
// Fig 1a matrix: with panel size 3 and threshold 2, the only dense column
// is column 4 of the first panel, holding 2 nonzeros.
func TestPaperWorkedExampleOriginal(t *testing.T) {
	m := paperex.Matrix()
	tl, err := Build(m, exampleParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tl.NumPanels(); got != 2 {
		t.Fatalf("panels = %d, want 2", got)
	}
	p0, p1 := tl.Panels[0], tl.Panels[1]
	if len(p0.DenseCols) != 1 || p0.DenseCols[0] != 4 {
		t.Fatalf("panel 0 dense cols = %v, want [4]", p0.DenseCols)
	}
	if len(p1.DenseCols) != 0 {
		t.Fatalf("panel 1 dense cols = %v, want none", p1.DenseCols)
	}
	if tl.NNZDense() != 2 {
		t.Fatalf("dense nnz = %d, want 2", tl.NNZDense())
	}
	if tl.Rest.NNZ() != m.NNZ()-2 {
		t.Fatalf("rest nnz = %d", tl.Rest.NNZ())
	}
}

// TestPaperWorkedExampleReordered asserts the §3.1 claim: after
// exchanging rows 1 and 4, the dense tiles hold 9 nonzeros and the
// densest column of panel 0 has 3.
func TestPaperWorkedExampleReordered(t *testing.T) {
	m := paperex.Matrix()
	rm, err := sparse.PermuteRows(m, paperex.SwappedRows)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Build(rm, exampleParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	if tl.NNZDense() != 9 {
		t.Fatalf("dense nnz after reordering = %d, want 9", tl.NNZDense())
	}
	// Column sort: densest first. Panel 0 rows {0,4,2}: col 4 appears 3
	// times, col 0 twice.
	p0 := tl.Panels[0]
	if len(p0.DenseCols) != 2 || p0.DenseCols[0] != 4 || p0.DenseCols[1] != 0 {
		t.Fatalf("panel 0 dense cols = %v, want [4 0]", p0.DenseCols)
	}
	// The clustering order of Fig 6 produces the same panels, hence the
	// same tile population.
	rm2, err := sparse.PermuteRows(m, paperex.ReorderedRows)
	if err != nil {
		t.Fatal(err)
	}
	tl2, err := Build(rm2, exampleParams())
	if err != nil {
		t.Fatal(err)
	}
	if tl2.NNZDense() != 9 {
		t.Fatalf("dense nnz with Fig 6 order = %d, want 9", tl2.NNZDense())
	}
}

func TestDenseRatio(t *testing.T) {
	m := paperex.Matrix()
	tl, err := Build(m, exampleParams())
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / float64(m.NNZ())
	if got := tl.DenseRatio(); got != want {
		t.Fatalf("DenseRatio = %v, want %v", got, want)
	}
	r, err := DenseRatioOf(m, exampleParams())
	if err != nil || r != want {
		t.Fatalf("DenseRatioOf = %v, %v", r, err)
	}
}

func TestDenseRatioEmptyMatrix(t *testing.T) {
	m := &sparse.CSR{Rows: 0, Cols: 0, RowPtr: []int32{0}}
	tl, err := Build(m, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if tl.DenseRatio() != 0 || tl.NumPanels() != 0 {
		t.Fatalf("empty matrix tiling wrong: ratio=%v panels=%d", tl.DenseRatio(), tl.NumPanels())
	}
}

func TestPanelOf(t *testing.T) {
	m := paperex.Matrix()
	tl, err := Build(m, exampleParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		want := i / 3
		if got := tl.PanelOf(i); got != want {
			t.Fatalf("PanelOf(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestFullyDenseMatrix(t *testing.T) {
	// Identical rows: every touched column is dense, rest is empty.
	sets := make([][]int32, 8)
	for i := range sets {
		sets[i] = []int32{1, 3, 5}
	}
	m, err := sparse.FromRows(8, 8, sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Build(m, Params{PanelSize: 4, DenseThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tl.DenseRatio() != 1 {
		t.Fatalf("DenseRatio = %v, want 1", tl.DenseRatio())
	}
	if tl.Rest.NNZ() != 0 {
		t.Fatalf("rest should be empty, nnz=%d", tl.Rest.NNZ())
	}
}

func TestDiagonalMatrixAllRest(t *testing.T) {
	// The Fig 7b scattered case: no column repeats within a panel.
	sets := make([][]int32, 9)
	for i := range sets {
		sets[i] = []int32{int32(i)}
	}
	m, err := sparse.FromRows(9, 9, sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Build(m, Params{PanelSize: 3, DenseThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tl.NNZDense() != 0 || tl.Rest.NNZ() != 9 {
		t.Fatalf("diagonal tiling wrong: dense=%d rest=%d", tl.NNZDense(), tl.Rest.NNZ())
	}
}

func TestTileLocalIndices(t *testing.T) {
	m := paperex.Matrix()
	rm, _ := sparse.PermuteRows(m, paperex.SwappedRows)
	tl, err := Build(rm, exampleParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rm.Rows; i++ {
		panel := tl.Panels[tl.PanelOf(i)]
		locals, cols, vals := tl.TileRowLocal(i), tl.TileRowCols(i), tl.TileRowVals(i)
		if len(locals) != len(cols) || len(cols) != len(vals) {
			t.Fatalf("row %d tile slices inconsistent", i)
		}
		for j := range locals {
			if panel.DenseCols[locals[j]] != cols[j] {
				t.Fatalf("row %d tile local %d maps to %d, stored %d",
					i, locals[j], panel.DenseCols[locals[j]], cols[j])
			}
		}
	}
}

// TestValidateCatchesCorruption mutates a valid tiling in targeted ways
// and checks Validate reports each.
func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Matrix {
		m := paperex.Matrix()
		rm, err := sparse.PermuteRows(m, paperex.SwappedRows)
		if err != nil {
			t.Fatal(err)
		}
		tl, err := Build(rm, exampleParams())
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}
	cases := []struct {
		name   string
		mutate func(*Matrix)
	}{
		{"drop tile nnz", func(tl *Matrix) {
			tl.TileVal = tl.TileVal[:len(tl.TileVal)-1]
			tl.TileCol = tl.TileCol[:len(tl.TileCol)-1]
			tl.TileLocal = tl.TileLocal[:len(tl.TileLocal)-1]
		}},
		{"corrupt rest", func(tl *Matrix) { tl.Rest.ColIdx[0] = -1 }},
		{"local out of range", func(tl *Matrix) { tl.TileLocal[0] = 99 }},
		{"local/col mismatch", func(tl *Matrix) {
			// Point the first tile nonzero's local slot at a different
			// dense column than the stored one.
			p := &tl.Panels[0]
			if len(p.DenseCols) < 2 {
				t.Skip("fixture needs two dense cols")
			}
			if tl.TileLocal[0] == 0 {
				tl.TileLocal[0] = 1
			} else {
				tl.TileLocal[0] = 0
			}
		}},
		{"phantom dense col", func(tl *Matrix) {
			tl.Panels[0].DenseCols = append(tl.Panels[0].DenseCols, 1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tl := fresh()
			tc.mutate(tl)
			if err := tl.Validate(); err == nil {
				t.Fatalf("Validate accepted corruption (%s)", tc.name)
			}
		})
	}
}

// Property: RowWork/CumWork agree with each other and with the source
// matrix — RowWork(i) is row i's total nonzeros across both partitions,
// CumWork is its prefix sum ending at NNZ.
func TestPropertyWorkCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(30)
		sets := make([][]int32, rows)
		for i := range sets {
			n := rng.Intn(8)
			if n > cols {
				n = cols
			}
			seen := map[int32]bool{}
			for len(seen) < n {
				seen[int32(rng.Intn(cols))] = true
			}
			for c := range seen {
				sets[i] = append(sets[i], c)
			}
		}
		m, err := sparse.FromRows(rows, cols, sets, nil)
		if err != nil {
			return false
		}
		p := Params{PanelSize: 1 + rng.Intn(6), DenseThreshold: 2 + rng.Intn(3)}
		tl, err := Build(m, p)
		if err != nil {
			return false
		}
		if tl.CumWork(0) != 0 || tl.CumWork(rows) != int64(m.NNZ()) {
			return false
		}
		for i := 0; i < rows; i++ {
			if tl.RowWork(i) != m.RowLen(i) {
				return false
			}
			if tl.CumWork(i+1)-tl.CumWork(i) != int64(tl.RowWork(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Build partitions nonzeros exactly, Validate passes, and the
// per-panel dense-column promise holds for random matrices and random
// parameters.
func TestPropertyBuildPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(50)
		cols := 1 + rng.Intn(30)
		sets := make([][]int32, rows)
		for i := range sets {
			n := rng.Intn(6)
			if n > cols {
				n = cols
			}
			seen := map[int32]bool{}
			for len(seen) < n {
				seen[int32(rng.Intn(cols))] = true
			}
			for c := range seen {
				sets[i] = append(sets[i], c)
			}
		}
		m, err := sparse.FromRows(rows, cols, sets, nil)
		if err != nil {
			return false
		}
		p := Params{PanelSize: 1 + rng.Intn(8), DenseThreshold: 2 + rng.Intn(3)}
		tl, err := Build(m, p)
		if err != nil {
			return false
		}
		if tl.Validate() != nil {
			return false
		}
		// Per-row: tile cols + rest cols == source cols as multisets.
		for i := 0; i < rows; i++ {
			got := map[int32]int{}
			for _, c := range tl.TileRowCols(i) {
				got[c]++
			}
			for _, c := range tl.Rest.RowCols(i) {
				got[c]++
			}
			if len(got) != m.RowLen(i) {
				return false
			}
			for _, c := range m.RowCols(i) {
				if got[c] != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: reordering rows never decreases... is false in general; but
// tiling a matrix twice is deterministic.
func TestPropertyBuildDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(30)
		sets := make([][]int32, rows)
		for i := range sets {
			if rng.Intn(3) > 0 {
				sets[i] = []int32{int32(rng.Intn(10)), int32(10 + rng.Intn(10))}
			}
		}
		m, err := sparse.FromRows(rows, 20, sets, nil)
		if err != nil {
			return false
		}
		a, err1 := Build(m, DefaultParams())
		b, err2 := Build(m, DefaultParams())
		if err1 != nil || err2 != nil {
			return false
		}
		if a.NNZDense() != b.NNZDense() || !a.Rest.Equal(b.Rest) {
			return false
		}
		for i := range a.TileCol {
			if a.TileCol[i] != b.TileCol[i] || a.TileLocal[i] != b.TileLocal[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
