// Package aspt reimplements Adaptive Sparse Tiling (Hong et al.,
// PPoPP'19) as described in §2.3 of the row-reordering paper: the sparse
// matrix is split into panels of consecutive rows; within each panel the
// columns are ranked by their nonzero count; columns with at least
// DenseThreshold nonzeros in the panel become "dense columns" whose
// nonzeros form the panel's dense tile (executed through shared memory on
// the GPU); the remaining nonzeros form the leftover sparse part
// (executed row-wise).
//
// The representation below keeps the dense-tile nonzeros in a row-major
// CSR-like layout with tile-local column indices (positions into the
// panel's DenseCols list), and the leftover nonzeros as an ordinary CSR
// with the same shape as the source so it can be reordered again in the
// paper's second round.
package aspt

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/faultinject"
	"repro/internal/par"
	"repro/internal/sparse"
)

// Params configures tiling.
type Params struct {
	// PanelSize is the number of consecutive rows per panel. The paper's
	// worked example uses 3; GPU-scale defaults use 64 (two 32-thread
	// warps per row-block times a few rows — the precise value only
	// shifts constants, and is swept by an ablation bench).
	PanelSize int
	// DenseThreshold is the minimum number of nonzeros a column must
	// have inside a panel to be promoted to the dense tile. The paper's
	// worked example uses 2 (the logical minimum for any reuse); the
	// GPU-scale default is 4, below which the shared-memory staging cost
	// of a column is not amortised by its reuse.
	DenseThreshold int
	// Workers bounds the parallelism of Build; 0 means
	// runtime.GOMAXPROCS(0). The built representation is bit-identical
	// for every worker count (panels are independent work units).
	Workers int
}

// DefaultParams returns GPU-scale tiling parameters.
func DefaultParams() Params { return Params{PanelSize: 64, DenseThreshold: 4} }

func (p Params) validate() error {
	if p.PanelSize <= 0 {
		return fmt.Errorf("aspt: PanelSize must be positive, got %d", p.PanelSize)
	}
	if p.DenseThreshold < 2 {
		return fmt.Errorf("aspt: DenseThreshold must be >= 2, got %d", p.DenseThreshold)
	}
	return nil
}

// Panel describes one row panel's dense tile.
type Panel struct {
	// StartRow and EndRow bound the panel's rows: [StartRow, EndRow).
	StartRow, EndRow int
	// DenseCols lists the panel's dense columns in decreasing nonzero
	// count (ties by column index), i.e. the front of the panel after
	// ASpT's column sort.
	DenseCols []int32
	// TileNNZ is the number of nonzeros in this panel's dense tile.
	TileNNZ int
}

// Matrix is the ASpT representation of a sparse matrix.
type Matrix struct {
	Params Params
	// Src is the matrix that was tiled (already row-reordered when used
	// inside the ASpT-RR pipeline).
	Src *sparse.CSR
	// Panels holds one entry per row panel.
	Panels []Panel

	// Dense-tile nonzeros, row-major across all panels. Row i's tile
	// nonzeros occupy TileRowPtr[i]..TileRowPtr[i+1]-1. TileLocal holds
	// positions into the owning panel's DenseCols (the tile-local column
	// coordinate a GPU kernel uses to index shared memory); TileCol
	// holds the original column index; TileVal the value.
	TileRowPtr []int32
	TileLocal  []int32
	TileCol    []int32
	TileVal    []float32

	// Rest is the leftover sparse part: same shape as Src, containing
	// every nonzero not captured by a dense tile.
	Rest *sparse.CSR
}

// NNZDense returns the number of nonzeros covered by dense tiles.
func (t *Matrix) NNZDense() int { return len(t.TileVal) }

// DenseRatio returns the fraction of nonzeros in dense tiles — the
// quantity the paper's round-1 heuristic thresholds at 10%.
func (t *Matrix) DenseRatio() float64 {
	if t.Src.NNZ() == 0 {
		return 0
	}
	return float64(t.NNZDense()) / float64(t.Src.NNZ())
}

// NumPanels returns the number of row panels.
func (t *Matrix) NumPanels() int { return len(t.Panels) }

// PanelOf returns the index of the panel containing row i.
func (t *Matrix) PanelOf(i int) int { return i / t.Params.PanelSize }

// RowWork returns the number of nonzeros of row i across both
// partitions (tile + rest) — the per-row work an SpMM/SDDMM kernel
// performs, used for nnz-balanced execution partitioning.
func (t *Matrix) RowWork(i int) int {
	return int(t.TileRowPtr[i+1]-t.TileRowPtr[i]) + t.Rest.RowLen(i)
}

// CumWork returns the total number of nonzeros (tile + rest) in rows
// [0, i): a prefix sum over RowWork, O(1) because both partitions are
// stored behind CSR-style row pointers. CumWork(0) == 0 and
// CumWork(Src.Rows) == Src.NNZ().
func (t *Matrix) CumWork(i int) int64 {
	return int64(t.TileRowPtr[i]) + int64(t.Rest.RowPtr[i])
}

// TileRowLocal returns row i's tile-local column positions.
func (t *Matrix) TileRowLocal(i int) []int32 { return t.TileLocal[t.TileRowPtr[i]:t.TileRowPtr[i+1]] }

// TileRowCols returns row i's tile nonzero original column indices.
func (t *Matrix) TileRowCols(i int) []int32 { return t.TileCol[t.TileRowPtr[i]:t.TileRowPtr[i+1]] }

// TileRowVals returns row i's tile nonzero values.
func (t *Matrix) TileRowVals(i int) []float32 { return t.TileVal[t.TileRowPtr[i]:t.TileRowPtr[i+1]] }

// buildScratch is the per-worker column-indexed scratch of Build: the
// count/mark arrays are epoch-stamped so clearing between panels is
// O(columns touched), keeping each pass O(nnz) overall.
type buildScratch struct {
	count []int32 // per-column nonzero count within the current panel
	stamp []int32 // epoch stamp validating count
	mark  []int32 // epoch stamp: column is dense in the current panel
	local []int32 // tile-local position of a dense column (valid when marked)
	epoch int32
}

func newBuildScratch(cols int) *buildScratch {
	return &buildScratch{
		count: make([]int32, cols),
		stamp: make([]int32, cols),
		mark:  make([]int32, cols),
		local: make([]int32, cols),
	}
}

// Build tiles m with the given parameters.
//
// The build runs in two parallel passes over independent panels — the
// analysis pass computes every panel's dense-column list and per-row
// tile width, a serial prefix sum turns the widths into TileRowPtr /
// rest RowPtr offsets, and the fill pass writes each panel's nonzeros
// into its precomputed slot of the preallocated arrays. The output is
// bit-identical to a single-threaded build for every Workers value:
// panels never share output ranges, and all per-panel choices (the
// dense-column order in particular) are resolved by total orders.
func Build(m *sparse.CSR, p Params) (*Matrix, error) {
	return BuildCtx(context.Background(), m, p)
}

// BuildCtx is Build with cooperative cancellation between panels; a
// worker panic in either pass surfaces as a *par.PanicError instead of
// crashing the process.
func BuildCtx(ctx context.Context, m *sparse.CSR, p Params) (*Matrix, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	npanels := (m.Rows + p.PanelSize - 1) / p.PanelSize
	t := &Matrix{
		Params:     p,
		Src:        m,
		Panels:     make([]Panel, npanels),
		TileRowPtr: make([]int32, m.Rows+1),
	}
	rest := &sparse.CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int32, m.Rows+1),
	}
	t.Rest = rest
	if m.Rows == 0 {
		return t, nil
	}

	// Column-indexed scratch is per worker; cap workers so the scratch
	// memory stays proportional to the matrix when panels are few or the
	// matrix is small.
	workers := par.Workers(p.Workers, npanels)
	if small := 1 + m.NNZ()/(8<<10); workers > small {
		workers = small
	}
	scratch := make([]*buildScratch, workers)

	// Pass A (parallel): per-panel dense columns + per-row tile widths.
	// Panels are dealt to workers in stride-w order; each panel's output
	// is owned by that panel, so scheduling never shows in the result.
	tileLen := make([]int32, m.Rows)
	runPanels := func(fn func(s *buildScratch, pi int)) error {
		return par.DoCtx(ctx, workers, func(w int) error {
			if scratch[w] == nil {
				scratch[w] = newBuildScratch(m.Cols)
			}
			s := scratch[w]
			for pi := w; pi < npanels; pi += workers {
				if err := par.CtxErr(ctx); err != nil {
					return err
				}
				if err := faultinject.Fire("aspt.build"); err != nil {
					return err
				}
				fn(s, pi)
			}
			return nil
		})
	}
	err := runPanels(func(s *buildScratch, pi int) {
		ps := pi * p.PanelSize
		pe := ps + p.PanelSize
		if pe > m.Rows {
			pe = m.Rows
		}
		s.epoch++
		epoch := s.epoch
		var touched []int32
		for i := ps; i < pe; i++ {
			for _, c := range m.RowCols(i) {
				if s.stamp[c] != epoch {
					s.stamp[c] = epoch
					s.count[c] = 0
					touched = append(touched, c)
				}
				s.count[c]++
			}
		}
		panel := Panel{StartRow: ps, EndRow: pe}
		for _, c := range touched {
			if s.count[c] >= int32(p.DenseThreshold) {
				panel.DenseCols = append(panel.DenseCols, c)
			}
		}
		// ASpT's column sort: densest first, column index as tie-break —
		// a total order (columns are unique), so the result does not
		// depend on the pre-sort order.
		slices.SortFunc(panel.DenseCols, func(ca, cb int32) int {
			if s.count[ca] != s.count[cb] {
				return int(s.count[cb] - s.count[ca])
			}
			return int(ca - cb)
		})
		for _, c := range panel.DenseCols {
			s.mark[c] = epoch
			panel.TileNNZ += int(s.count[c])
		}
		for i := ps; i < pe; i++ {
			tl := int32(0)
			for _, c := range m.RowCols(i) {
				if s.mark[c] == epoch {
					tl++
				}
			}
			tileLen[i] = tl
		}
		t.Panels[pi] = panel
	})
	if err != nil {
		return nil, err
	}

	// Serial prefix sums: O(rows), negligible next to the O(nnz) passes.
	for i := 0; i < m.Rows; i++ {
		t.TileRowPtr[i+1] = t.TileRowPtr[i] + tileLen[i]
		rest.RowPtr[i+1] = rest.RowPtr[i] + (m.RowPtr[i+1] - m.RowPtr[i]) - tileLen[i]
	}
	tileNNZ := int(t.TileRowPtr[m.Rows])
	t.TileLocal = make([]int32, tileNNZ)
	t.TileCol = make([]int32, tileNNZ)
	t.TileVal = make([]float32, tileNNZ)
	rest.ColIdx = make([]int32, m.NNZ()-tileNNZ)
	rest.Val = make([]float32, m.NNZ()-tileNNZ)

	// Pass B (parallel): fill each panel's slice of the output arrays.
	err = runPanels(func(s *buildScratch, pi int) {
		panel := &t.Panels[pi]
		s.epoch++
		epoch := s.epoch
		for pos, c := range panel.DenseCols {
			s.mark[c] = epoch
			s.local[c] = int32(pos)
		}
		for i := panel.StartRow; i < panel.EndRow; i++ {
			cols, vals := m.RowCols(i), m.RowVals(i)
			tp, rp := t.TileRowPtr[i], rest.RowPtr[i]
			for j, c := range cols {
				if s.mark[c] == epoch {
					t.TileLocal[tp] = s.local[c]
					t.TileCol[tp] = c
					t.TileVal[tp] = vals[j]
					tp++
				} else {
					rest.ColIdx[rp] = c
					rest.Val[rp] = vals[j]
					rp++
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Validate checks the representation's invariants: every source nonzero is
// in exactly one of (tile, rest), tile-local indices match DenseCols, and
// each dense column really has >= DenseThreshold nonzeros in its panel.
func (t *Matrix) Validate() error {
	if got, want := t.NNZDense()+t.Rest.NNZ(), t.Src.NNZ(); got != want {
		return fmt.Errorf("aspt: tile+rest nnz %d != src nnz %d", got, want)
	}
	if err := t.Rest.Validate(); err != nil {
		return fmt.Errorf("aspt: rest: %w", err)
	}
	for i := 0; i < t.Src.Rows; i++ {
		panel := &t.Panels[t.PanelOf(i)]
		locals, cols := t.TileRowLocal(i), t.TileRowCols(i)
		for j := range locals {
			if int(locals[j]) >= len(panel.DenseCols) {
				return fmt.Errorf("aspt: row %d tile-local %d out of range (%d dense cols)",
					i, locals[j], len(panel.DenseCols))
			}
			if panel.DenseCols[locals[j]] != cols[j] {
				return fmt.Errorf("aspt: row %d tile col mismatch: local %d -> %d, stored %d",
					i, locals[j], panel.DenseCols[locals[j]], cols[j])
			}
		}
	}
	// Per-panel tile column counts.
	for pi := range t.Panels {
		p := &t.Panels[pi]
		counts := make(map[int32]int, len(p.DenseCols))
		for i := p.StartRow; i < p.EndRow; i++ {
			for _, c := range t.TileRowCols(i) {
				counts[c]++
			}
		}
		if len(counts) != len(p.DenseCols) {
			return fmt.Errorf("aspt: panel %d has %d tile columns, declares %d",
				pi, len(counts), len(p.DenseCols))
		}
		for _, c := range p.DenseCols {
			if counts[c] < t.Params.DenseThreshold {
				return fmt.Errorf("aspt: panel %d dense col %d has only %d nonzeros (< %d)",
					pi, c, counts[c], t.Params.DenseThreshold)
			}
		}
	}
	return nil
}

// DenseRatioOf is a convenience that tiles m and reports the dense-tile
// nonzero ratio without keeping the representation — used by the round-1
// skip heuristic.
func DenseRatioOf(m *sparse.CSR, p Params) (float64, error) {
	t, err := Build(m, p)
	if err != nil {
		return 0, err
	}
	return t.DenseRatio(), nil
}
