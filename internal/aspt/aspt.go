// Package aspt reimplements Adaptive Sparse Tiling (Hong et al.,
// PPoPP'19) as described in §2.3 of the row-reordering paper: the sparse
// matrix is split into panels of consecutive rows; within each panel the
// columns are ranked by their nonzero count; columns with at least
// DenseThreshold nonzeros in the panel become "dense columns" whose
// nonzeros form the panel's dense tile (executed through shared memory on
// the GPU); the remaining nonzeros form the leftover sparse part
// (executed row-wise).
//
// The representation below keeps the dense-tile nonzeros in a row-major
// CSR-like layout with tile-local column indices (positions into the
// panel's DenseCols list), and the leftover nonzeros as an ordinary CSR
// with the same shape as the source so it can be reordered again in the
// paper's second round.
package aspt

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// Params configures tiling.
type Params struct {
	// PanelSize is the number of consecutive rows per panel. The paper's
	// worked example uses 3; GPU-scale defaults use 64 (two 32-thread
	// warps per row-block times a few rows — the precise value only
	// shifts constants, and is swept by an ablation bench).
	PanelSize int
	// DenseThreshold is the minimum number of nonzeros a column must
	// have inside a panel to be promoted to the dense tile. The paper's
	// worked example uses 2 (the logical minimum for any reuse); the
	// GPU-scale default is 4, below which the shared-memory staging cost
	// of a column is not amortised by its reuse.
	DenseThreshold int
}

// DefaultParams returns GPU-scale tiling parameters.
func DefaultParams() Params { return Params{PanelSize: 64, DenseThreshold: 4} }

func (p Params) validate() error {
	if p.PanelSize <= 0 {
		return fmt.Errorf("aspt: PanelSize must be positive, got %d", p.PanelSize)
	}
	if p.DenseThreshold < 2 {
		return fmt.Errorf("aspt: DenseThreshold must be >= 2, got %d", p.DenseThreshold)
	}
	return nil
}

// Panel describes one row panel's dense tile.
type Panel struct {
	// StartRow and EndRow bound the panel's rows: [StartRow, EndRow).
	StartRow, EndRow int
	// DenseCols lists the panel's dense columns in decreasing nonzero
	// count (ties by column index), i.e. the front of the panel after
	// ASpT's column sort.
	DenseCols []int32
	// TileNNZ is the number of nonzeros in this panel's dense tile.
	TileNNZ int
}

// Matrix is the ASpT representation of a sparse matrix.
type Matrix struct {
	Params Params
	// Src is the matrix that was tiled (already row-reordered when used
	// inside the ASpT-RR pipeline).
	Src *sparse.CSR
	// Panels holds one entry per row panel.
	Panels []Panel

	// Dense-tile nonzeros, row-major across all panels. Row i's tile
	// nonzeros occupy TileRowPtr[i]..TileRowPtr[i+1]-1. TileLocal holds
	// positions into the owning panel's DenseCols (the tile-local column
	// coordinate a GPU kernel uses to index shared memory); TileCol
	// holds the original column index; TileVal the value.
	TileRowPtr []int32
	TileLocal  []int32
	TileCol    []int32
	TileVal    []float32

	// Rest is the leftover sparse part: same shape as Src, containing
	// every nonzero not captured by a dense tile.
	Rest *sparse.CSR
}

// NNZDense returns the number of nonzeros covered by dense tiles.
func (t *Matrix) NNZDense() int { return len(t.TileVal) }

// DenseRatio returns the fraction of nonzeros in dense tiles — the
// quantity the paper's round-1 heuristic thresholds at 10%.
func (t *Matrix) DenseRatio() float64 {
	if t.Src.NNZ() == 0 {
		return 0
	}
	return float64(t.NNZDense()) / float64(t.Src.NNZ())
}

// NumPanels returns the number of row panels.
func (t *Matrix) NumPanels() int { return len(t.Panels) }

// PanelOf returns the index of the panel containing row i.
func (t *Matrix) PanelOf(i int) int { return i / t.Params.PanelSize }

// RowWork returns the number of nonzeros of row i across both
// partitions (tile + rest) — the per-row work an SpMM/SDDMM kernel
// performs, used for nnz-balanced execution partitioning.
func (t *Matrix) RowWork(i int) int {
	return int(t.TileRowPtr[i+1]-t.TileRowPtr[i]) + t.Rest.RowLen(i)
}

// CumWork returns the total number of nonzeros (tile + rest) in rows
// [0, i): a prefix sum over RowWork, O(1) because both partitions are
// stored behind CSR-style row pointers. CumWork(0) == 0 and
// CumWork(Src.Rows) == Src.NNZ().
func (t *Matrix) CumWork(i int) int64 {
	return int64(t.TileRowPtr[i]) + int64(t.Rest.RowPtr[i])
}

// TileRowLocal returns row i's tile-local column positions.
func (t *Matrix) TileRowLocal(i int) []int32 { return t.TileLocal[t.TileRowPtr[i]:t.TileRowPtr[i+1]] }

// TileRowCols returns row i's tile nonzero original column indices.
func (t *Matrix) TileRowCols(i int) []int32 { return t.TileCol[t.TileRowPtr[i]:t.TileRowPtr[i+1]] }

// TileRowVals returns row i's tile nonzero values.
func (t *Matrix) TileRowVals(i int) []float32 { return t.TileVal[t.TileRowPtr[i]:t.TileRowPtr[i+1]] }

// Build tiles m with the given parameters.
func Build(m *sparse.CSR, p Params) (*Matrix, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := &Matrix{
		Params:     p,
		Src:        m,
		TileRowPtr: make([]int32, m.Rows+1),
	}
	npanels := (m.Rows + p.PanelSize - 1) / p.PanelSize
	t.Panels = make([]Panel, 0, npanels)

	rest := &sparse.CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int32, m.Rows+1),
	}

	// Scratch per-column counters with an epoch stamp so clearing
	// between panels is O(columns touched), keeping Build O(nnz).
	count := make([]int32, m.Cols)
	stamp := make([]int32, m.Cols)
	localPos := make([]int32, m.Cols)
	epoch := int32(0)

	for ps := 0; ps < m.Rows; ps += p.PanelSize {
		pe := ps + p.PanelSize
		if pe > m.Rows {
			pe = m.Rows
		}
		epoch++
		var touched []int32
		for i := ps; i < pe; i++ {
			for _, c := range m.RowCols(i) {
				if stamp[c] != epoch {
					stamp[c] = epoch
					count[c] = 0
					touched = append(touched, c)
				}
				count[c]++
			}
		}
		panel := Panel{StartRow: ps, EndRow: pe}
		for _, c := range touched {
			if count[c] >= int32(p.DenseThreshold) {
				panel.DenseCols = append(panel.DenseCols, c)
			}
		}
		// ASpT's column sort: densest first, column index as tie-break.
		sort.Slice(panel.DenseCols, func(a, b int) bool {
			ca, cb := panel.DenseCols[a], panel.DenseCols[b]
			if count[ca] != count[cb] {
				return count[ca] > count[cb]
			}
			return ca < cb
		})
		for pos, c := range panel.DenseCols {
			localPos[c] = int32(pos)
		}
		dense := make(map[int32]bool, len(panel.DenseCols))
		for _, c := range panel.DenseCols {
			dense[c] = true
		}
		for i := ps; i < pe; i++ {
			cols, vals := m.RowCols(i), m.RowVals(i)
			for j, c := range cols {
				if dense[c] {
					t.TileLocal = append(t.TileLocal, localPos[c])
					t.TileCol = append(t.TileCol, c)
					t.TileVal = append(t.TileVal, vals[j])
					panel.TileNNZ++
				} else {
					rest.ColIdx = append(rest.ColIdx, c)
					rest.Val = append(rest.Val, vals[j])
				}
			}
			t.TileRowPtr[i+1] = int32(len(t.TileVal))
			rest.RowPtr[i+1] = int32(len(rest.ColIdx))
		}
		t.Panels = append(t.Panels, panel)
	}
	t.Rest = rest
	return t, nil
}

// Validate checks the representation's invariants: every source nonzero is
// in exactly one of (tile, rest), tile-local indices match DenseCols, and
// each dense column really has >= DenseThreshold nonzeros in its panel.
func (t *Matrix) Validate() error {
	if got, want := t.NNZDense()+t.Rest.NNZ(), t.Src.NNZ(); got != want {
		return fmt.Errorf("aspt: tile+rest nnz %d != src nnz %d", got, want)
	}
	if err := t.Rest.Validate(); err != nil {
		return fmt.Errorf("aspt: rest: %w", err)
	}
	for i := 0; i < t.Src.Rows; i++ {
		panel := &t.Panels[t.PanelOf(i)]
		locals, cols := t.TileRowLocal(i), t.TileRowCols(i)
		for j := range locals {
			if int(locals[j]) >= len(panel.DenseCols) {
				return fmt.Errorf("aspt: row %d tile-local %d out of range (%d dense cols)",
					i, locals[j], len(panel.DenseCols))
			}
			if panel.DenseCols[locals[j]] != cols[j] {
				return fmt.Errorf("aspt: row %d tile col mismatch: local %d -> %d, stored %d",
					i, locals[j], panel.DenseCols[locals[j]], cols[j])
			}
		}
	}
	// Per-panel tile column counts.
	for pi := range t.Panels {
		p := &t.Panels[pi]
		counts := make(map[int32]int, len(p.DenseCols))
		for i := p.StartRow; i < p.EndRow; i++ {
			for _, c := range t.TileRowCols(i) {
				counts[c]++
			}
		}
		if len(counts) != len(p.DenseCols) {
			return fmt.Errorf("aspt: panel %d has %d tile columns, declares %d",
				pi, len(counts), len(p.DenseCols))
		}
		for _, c := range p.DenseCols {
			if counts[c] < t.Params.DenseThreshold {
				return fmt.Errorf("aspt: panel %d dense col %d has only %d nonzeros (< %d)",
					pi, c, counts[c], t.Params.DenseThreshold)
			}
		}
	}
	return nil
}

// DenseRatioOf is a convenience that tiles m and reports the dense-tile
// nonzero ratio without keeping the representation — used by the round-1
// skip heuristic.
func DenseRatioOf(m *sparse.CSR, p Params) (float64, error) {
	t, err := Build(m, p)
	if err != nil {
		return 0, err
	}
	return t.DenseRatio(), nil
}
