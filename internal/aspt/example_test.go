package aspt_test

import (
	"fmt"

	"repro/internal/aspt"
	"repro/internal/paperex"
	"repro/internal/sparse"
)

// ExampleBuild reproduces the §2.3/§3.1 tiling story on the worked
// example: the original matrix has one dense column (column 4 of panel
// 0, 2 nonzeros); after exchanging rows 1 and 4 the dense tiles hold 9
// of the 12 nonzeros.
func ExampleBuild() {
	p := aspt.Params{PanelSize: paperex.PanelSize, DenseThreshold: paperex.DenseThreshold}

	before, err := aspt.Build(paperex.Matrix(), p)
	if err != nil {
		panic(err)
	}
	fmt.Println("dense nnz before:", before.NNZDense())
	fmt.Println("panel 0 dense cols:", before.Panels[0].DenseCols)

	rm, err := sparse.PermuteRows(paperex.Matrix(), paperex.SwappedRows)
	if err != nil {
		panic(err)
	}
	after, err := aspt.Build(rm, p)
	if err != nil {
		panic(err)
	}
	fmt.Println("dense nnz after swapping rows 1 and 4:", after.NNZDense())
	// Output:
	// dense nnz before: 2
	// panel 0 dense cols: [4]
	// dense nnz after swapping rows 1 and 4: 9
}
