package aspt

import (
	"runtime"
	"testing"

	"repro/internal/sparse"
	"repro/internal/synth"
)

// TestBuildDeterministicAcrossWorkers pins the parallel tiler's core
// contract: for any worker count (including the GOMAXPROCS default at
// Workers=0), Build produces exactly the representation the serial
// build produces — panels are independent work units and every array
// is written at offsets fixed by the prefix sums alone.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	inputs := map[string]func() (*sparse.CSR, error){
		"rmat": func() (*sparse.CSR, error) {
			return synth.RMAT(11, 8, 0.57, 0.19, 0.19, 5)
		},
		"banded": func() (*sparse.CSR, error) {
			return synth.Banded(3000, 3000, 32, 10, 11)
		},
		"clustered": func() (*sparse.CSR, error) {
			return synth.Clustered(synth.ClusterParams{
				Rows: 3000, Cols: 1500, Clusters: 12,
				PrototypeNNZ: 24, Keep: 0.8, Noise: 2, Seed: 2, Scrambled: true,
			})
		},
	}
	counts := []int{0, 2, 3}
	if p := runtime.GOMAXPROCS(0); p > 3 {
		counts = append(counts, p)
	}
	for name, gen := range inputs {
		t.Run(name, func(t *testing.T) {
			m, err := gen()
			if err != nil {
				t.Fatal(err)
			}
			p := DefaultParams()
			p.Workers = 1
			want, err := Build(m, p)
			if err != nil {
				t.Fatalf("serial Build: %v", err)
			}
			for _, w := range counts {
				p.Workers = w
				got, err := Build(m, p)
				if err != nil {
					t.Fatalf("Build(workers=%d): %v", w, err)
				}
				compareTiled(t, want, got, w)
			}
		})
	}
}

func compareTiled(t *testing.T, want, got *Matrix, workers int) {
	t.Helper()
	fail := func(name string) { t.Errorf("workers=%d: %s differs from serial build", workers, name) }
	if !eq(want.TileRowPtr, got.TileRowPtr) {
		fail("TileRowPtr")
	}
	if !eq(want.TileLocal, got.TileLocal) {
		fail("TileLocal")
	}
	if !eq(want.TileCol, got.TileCol) {
		fail("TileCol")
	}
	if !eq(want.TileVal, got.TileVal) {
		fail("TileVal")
	}
	if !eq(want.Rest.RowPtr, got.Rest.RowPtr) {
		fail("Rest.RowPtr")
	}
	if !eq(want.Rest.ColIdx, got.Rest.ColIdx) {
		fail("Rest.ColIdx")
	}
	if !eq(want.Rest.Val, got.Rest.Val) {
		fail("Rest.Val")
	}
	if len(want.Panels) != len(got.Panels) {
		fail("len(Panels)")
		return
	}
	for i := range want.Panels {
		if !eq(want.Panels[i].DenseCols, got.Panels[i].DenseCols) {
			t.Errorf("workers=%d: panel %d DenseCols differs", workers, i)
		}
		if want.Panels[i].TileNNZ != got.Panels[i].TileNNZ {
			t.Errorf("workers=%d: panel %d TileNNZ = %d, want %d",
				workers, i, got.Panels[i].TileNNZ, want.Panels[i].TileNNZ)
		}
	}
	if err := got.Validate(); err != nil {
		t.Errorf("workers=%d: Validate: %v", workers, err)
	}
}

func eq[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
