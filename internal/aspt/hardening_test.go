package aspt

import (
	"context"
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/par"
	"repro/internal/synth"
)

func TestBuildCtxFaultInjection(t *testing.T) {
	m, err := synth.Uniform(512, 512, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Workers = 4

	defer faultinject.ErrorAt("aspt.build")()
	if _, err := BuildCtx(context.Background(), m, p); !errors.Is(err, faultinject.Err) {
		t.Fatalf("BuildCtx with fault = %v, want faultinject.Err", err)
	}
	faultinject.Reset()

	defer faultinject.PanicAt("aspt.build")()
	_, err = BuildCtx(context.Background(), m, p)
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking panel worker surfaced as %v, want *par.PanicError", err)
	}
	faultinject.Reset()

	// Clean rebuild succeeds after the faults.
	if _, err := BuildCtx(context.Background(), m, p); err != nil {
		t.Fatalf("clean BuildCtx after faults: %v", err)
	}
}

func TestBuildCtxCancelled(t *testing.T) {
	m, err := synth.Uniform(256, 256, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildCtx(ctx, m, DefaultParams()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled BuildCtx = %v, want context.Canceled", err)
	}
}
