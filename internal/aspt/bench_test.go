package aspt

import (
	"testing"

	"repro/internal/synth"
)

// BenchmarkBuild measures ASpT construction (panel column counting, dense
// column promotion, tile/rest partitioning) — O(nnz) per DESIGN.md.
func BenchmarkBuild(b *testing.B) {
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 16384, Cols: 16384, Clusters: 2048, PrototypeNNZ: 20,
		Keep: 0.8, Noise: 2, Seed: 1, Scrambled: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(m.NNZ() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(m, DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildPanelSizes sweeps the panel size (an ablation on the
// ASpT parameter the paper inherits from Hong et al.).
func BenchmarkBuildPanelSizes(b *testing.B) {
	m, err := synth.Clustered(synth.ClusterParams{
		Rows: 8192, Cols: 8192, Clusters: 1024, PrototypeNNZ: 20,
		Keep: 0.8, Noise: 2, Seed: 2, Scrambled: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, ps := range []int{16, 32, 64, 128, 256} {
		name := map[int]string{16: "p016", 32: "p032", 64: "p064", 128: "p128", 256: "p256"}[ps]
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				tl, err := Build(m, Params{PanelSize: ps, DenseThreshold: 4})
				if err != nil {
					b.Fatal(err)
				}
				ratio = tl.DenseRatio()
			}
			b.ReportMetric(ratio, "dense-ratio")
		})
	}
}
