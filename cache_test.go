package repro_test

import (
	"testing"

	"repro"
)

// TestPipelineConstructionUsesPlanCache pins the public wiring: building
// pipelines for the same structure goes through the process-wide plan
// cache, and an online pipeline on a seen structure hits for both of
// its builds (full + NR variants).
func TestPipelineConstructionUsesPlanCache(t *testing.T) {
	// Isolate from whatever other tests did to the process-wide cache,
	// and restore the default afterwards.
	repro.SetPlanCacheCapacity(8)
	defer repro.SetPlanCacheCapacity(repro.DefaultPlanCacheCapacity)

	m := scrambled(t)
	cfg := repro.DefaultConfig()

	p1, err := repro.NewPipeline(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := repro.PlanCacheStats()
	if st.Hits != 0 || st.Misses == 0 {
		t.Fatalf("cold build stats = %+v, want only misses", st)
	}

	p2, err := repro.NewPipeline(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st = repro.PlanCacheStats()
	if st.Hits != 1 {
		t.Fatalf("warm build stats = %+v, want 1 hit", st)
	}
	// Cached plans share the heavy arrays; the pipelines must still be
	// independently usable.
	if &p1.Plan().Reordered.Val[0] != &p2.Plan().Reordered.Val[0] {
		t.Error("second pipeline did not reuse the cached plan's arrays")
	}
	x := repro.NewRandomDense(m.Cols, 16, 1)
	y1, err := p1.SpMM(x)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := p2.SpMM(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatalf("cached-plan pipeline output differs at %d", i)
		}
	}

	// An online pipeline on the same structure hits for both variants.
	before := repro.PlanCacheStats()
	if _, err := repro.NewOnlinePipeline(m, cfg); err != nil {
		t.Fatal(err)
	}
	cold := repro.PlanCacheStats()
	if cold.Misses != before.Misses+1 { // NR variant is new; full variant hits
		t.Fatalf("first online build: misses %d -> %d, want +1 (NR only)",
			before.Misses, cold.Misses)
	}
	if _, err := repro.NewOnlinePipeline(m, cfg); err != nil {
		t.Fatal(err)
	}
	warm := repro.PlanCacheStats()
	if warm.Misses != cold.Misses || warm.Hits != cold.Hits+2 {
		t.Fatalf("replayed online build stats = %+v (was %+v), want 2 more hits, no more misses",
			warm, cold)
	}
}

// TestPreprocessCachedMatchesPreprocess pins that the cached entry
// point returns a plan equivalent to the uncached one.
func TestPreprocessCachedMatchesPreprocess(t *testing.T) {
	repro.SetPlanCacheCapacity(4)
	defer repro.SetPlanCacheCapacity(repro.DefaultPlanCacheCapacity)

	m := scrambled(t)
	cfg := repro.DefaultConfig()
	want, err := repro.Preprocess(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // miss, then hit
		got, err := repro.PreprocessCached(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.RowPerm) != len(want.RowPerm) {
			t.Fatal("RowPerm length mismatch")
		}
		for j := range want.RowPerm {
			if got.RowPerm[j] != want.RowPerm[j] {
				t.Fatalf("iteration %d: RowPerm[%d] differs", i, j)
			}
		}
		if got.DenseRatioAfter != want.DenseRatioAfter {
			t.Fatalf("iteration %d: DenseRatioAfter %v != %v", i, got.DenseRatioAfter, want.DenseRatioAfter)
		}
	}
	if st := repro.PlanCacheStats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want exactly 1 hit", st)
	}
}
