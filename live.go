package repro

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dense"
	"repro/internal/faultinject"
	"repro/internal/integrity"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// ErrMutation is wrapped by every rejected Mutation: out-of-range rows
// or columns, unsorted or duplicate columns in a row definition, a
// value update addressing a nonzero that does not exist, non-finite
// values, or duplicate/conflicting row operations. A rejected mutation
// changes nothing — application is all-or-nothing. Test with errors.Is.
var ErrMutation = errors.New("repro: invalid mutation")

// ErrOverlayFull is wrapped by mutations rejected because applying them
// would push the structural overlay past LiveConfig.MaxOverlayRows. The
// pipeline keeps serving its current state; retry after the background
// rebuild has swapped the overlay into a fresh base. Test with
// errors.Is.
var ErrOverlayFull = errors.New("repro: mutation overlay full")

// ErrStaleShape is wrapped by serving calls whose operands no longer
// fit the live matrix — typically buffers sized before an AppendRows
// landed. Re-read the shape (LivePipeline.Matrix) and resize. Test with
// errors.Is.
var ErrStaleShape = errors.New("repro: operand shape does not fit the live matrix")

// ErrQuiesced is returned by Mutate after Quiesce: the pipeline still
// serves reads, but its mutation log is closed.
var ErrQuiesced = errors.New("repro: live pipeline quiesced")

// ValueUpdate sets the value of one existing nonzero. The entry must
// exist in the (post-structural-ops) matrix; value updates cannot
// create structure.
type ValueUpdate struct {
	Row, Col int
	Val      float32
}

// RowDef is one row's full contents: columns strictly increasing and in
// range, values finite, len(Cols) == len(Vals). An empty RowDef is a
// valid (empty) row.
type RowDef struct {
	Cols []int32
	Vals []float32
}

// RowUpdate replaces row Row's contents with Def.
type RowUpdate struct {
	Row int
	Def RowDef
}

// Mutation is one atomically-applied batch of matrix edits. Within a
// batch the operations apply in a fixed order — ReplaceRows, then
// DeleteRows, then AppendRows, then UpdateValues — and validation is
// all-or-nothing: a batch with any invalid operation is rejected whole,
// wrapped in ErrMutation, without publishing anything.
type Mutation struct {
	// UpdateValues rewrites existing nonzeros in place. A batch that is
	// *only* value updates, applied to a pipeline with no structural
	// overlay outstanding, re-skins the base plans through the plan
	// cache's O(nnz) gather maps — no LSH, clustering, or tiling — and
	// publishes atomically; structural work is never redone for values.
	UpdateValues []ValueUpdate
	// ReplaceRows swaps whole rows (existing rows only, including
	// previously appended ones). Structural: the rows join the overlay.
	ReplaceRows []RowUpdate
	// AppendRows grows the matrix by new rows at the bottom. Outputs
	// sized for the old shape fail with ErrStaleShape afterwards.
	AppendRows []RowDef
	// DeleteRows tombstones rows to empty (the shape never shrinks, so
	// row indices — and every caller's output buffers — stay stable).
	DeleteRows []int
}

// structural reports whether the mutation changes sparsity structure
// (anything beyond in-place value rewrites).
func (mu *Mutation) structural() bool {
	return len(mu.ReplaceRows) > 0 || len(mu.AppendRows) > 0 || len(mu.DeleteRows) > 0
}

func (mu *Mutation) empty() bool {
	return !mu.structural() && len(mu.UpdateValues) == 0
}

// LiveConfig tunes a LivePipeline's mutation machinery. The zero value
// gets serving defaults.
type LiveConfig struct {
	// RebuildMaxAttempts bounds tries per background re-preprocess
	// round; attempts back off with full jitter between RebuildRetryBase
	// and RebuildRetryMax. When a round exhausts its attempts the
	// pipeline permanently degrades to overlay-forever serving
	// (mirroring OnlinePipeline.Degraded): still correct, never fast
	// again, visible in Stats and Degraded. Defaults 3, 10ms, 250ms.
	RebuildMaxAttempts int
	RebuildRetryBase   time.Duration
	RebuildRetryMax    time.Duration
	// MaxOverlayRows bounds the structural overlay (overlaid base rows
	// plus appended tail rows). Mutations that would exceed it fail with
	// ErrOverlayFull until a rebuild drains the overlay. Default 65536;
	// negative means unbounded.
	MaxOverlayRows int
	// RebuildDisabled turns the background re-preprocess off: structural
	// mutations accumulate in the overlay forever (bounded by
	// MaxOverlayRows). For tests and benchmarks that need the overlay
	// path to hold still.
	RebuildDisabled bool
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.RebuildMaxAttempts <= 0 {
		c.RebuildMaxAttempts = 3
	}
	if c.RebuildRetryBase <= 0 {
		c.RebuildRetryBase = 10 * time.Millisecond
	}
	if c.RebuildRetryMax <= 0 {
		c.RebuildRetryMax = 250 * time.Millisecond
	}
	if c.MaxOverlayRows == 0 {
		c.MaxOverlayRows = 1 << 16
	}
	return c
}

// liveState is one immutable published generation of a live matrix.
// Readers pin a whole consistent state with a single atomic load; a
// state is never modified after publication, so an in-flight request
// keeps computing on the epoch it loaded while newer epochs publish
// around it (epoch-based grace: old states drain via the GC).
type liveState struct {
	// epoch bumps by exactly one per publish — every applied mutation
	// and every rebuild swap. Stats' identity: epoch == mutations+swaps.
	epoch uint64
	// structEpoch bumps per structural mutation and is the
	// Config.Epoch the next rebuild preprocesses under — it flows into
	// plan-cache fingerprints and plan-snapshot flag bits, so no stale
	// plan or snapshot can ever be applied to mutated structure.
	structEpoch uint32

	// Exactly one of online/sharded is the preprocessed base, built for
	// baseM. cur is the fused matrix actually being served: baseM plus
	// every mutation since the base was built.
	online  *OnlinePipeline
	sharded *ShardedPipeline
	baseM   *Matrix
	cur     *Matrix

	// overlay is the set of base rows (< baseM.Rows) whose contents
	// differ from baseM — served from cur, masking the base kernel's
	// output for those rows. Rows >= baseM.Rows (the appended tail) are
	// always served from cur. Unordered: rows are independent in SpMM
	// and SDDMM, so the merge is a pure row-range overwrite.
	overlay    map[int]struct{}
	overlayNNZ int // nonzeros served through the overlay (incl. tail)
	tailRows   int // cur.Rows - baseM.Rows

	// dirtySince is when the oldest still-unrebuilt mutation landed;
	// zero when the state is clean (base == cur).
	dirtySince time.Time

	// sddmmPool recycles base-structure SDDMM scratch for the overlay
	// path; states are immutable so the pool's New is fixed at publish.
	sddmmPool *sync.Pool
}

func (st *liveState) mutated() bool { return len(st.overlay) > 0 || st.tailRows > 0 }

// baseUnit picks the executor for the base rows: the online pipeline
// (or, for breaker-routed fallback attempts, its no-reorder plan
// directly) or the sharded pipeline.
func (st *liveState) baseUnit(nrOnly bool) servingUnit {
	if st.online != nil {
		if nrOnly {
			return st.online.nr
		}
		return st.online
	}
	return st.sharded
}

// baseCfg is the Config the base was preprocessed under (its Epoch is
// the structEpoch at base-build time).
func (st *liveState) baseCfg() Config {
	if st.online != nil {
		return st.online.nr.plan.Cfg
	}
	return st.sharded.panels[0].pipe.plan.Cfg
}

func newSDDMMPool(m *Matrix) *sync.Pool {
	return &sync.Pool{New: func() any {
		return &sparse.CSR{
			Rows:   m.Rows,
			Cols:   m.Cols,
			RowPtr: m.RowPtr,
			ColIdx: m.ColIdx,
			Val:    make([]float32, m.NNZ()),
		}
	}}
}

// LivePipeline serves a matrix that can be mutated while being served,
// without ever going unavailable or exposing a torn state (DESIGN.md
// §14). Every read pins one immutable liveState via a single atomic
// load; every Mutate publishes a complete successor state:
//
//   - Value-only updates on a clean state re-skin the base plans
//     through the plan cache's O(nnz) gather maps (structure unchanged,
//     so the §4 trial decision carries over) and publish atomically.
//   - Structural mutations accumulate in a bounded row overlay served
//     alongside the base — the base kernels run unchanged over the old
//     structure and overlaid/appended rows are computed from the fused
//     matrix at output time — while a background budgeted re-preprocess
//     rebuilds the fused matrix (under a bumped structural epoch, with
//     full-jitter retry) and atomically swaps it in. Requests in flight
//     on the old epoch drain on the state they pinned.
//   - Repeated rebuild failure permanently degrades the pipeline to
//     overlay-forever serving, mirroring OnlinePipeline.Degraded:
//     correctness is never traded for the optimization.
//
// A LivePipeline is safe for concurrent use and implements the same
// serving surface as Pipeline/OnlinePipeline/ShardedPipeline, so the
// Server wraps every tenant in one.
type LivePipeline struct {
	ctx      context.Context
	lcfg     LiveConfig
	ring     *obs.TraceRing
	shardNNZ int // >0: rebuilds re-shard at this target

	state atomic.Pointer[liveState]

	// mu serialises writers (Mutate, rebuild snapshot/publish); readers
	// never take it.
	mu         sync.Mutex
	pending    []*Mutation // mutations since the in-flight rebuild's snapshot
	rebuilding bool
	idle       chan struct{} // non-nil while rebuilding; closed at loop exit
	closed     bool
	wg         sync.WaitGroup

	degraded atomic.Pointer[degradeReason]

	// sink receives decision events (plan swaps, overlay degradation;
	// trial/mispick events flow through the online base's own sink).
	// mispickWindow is the feedback window threaded to rebuilt bases;
	// mispickCarry accumulates mispick counts of bases replaced by
	// rebuild swaps so Mispicked never goes backwards.
	sink          atomic.Pointer[eventSink]
	mispickWindow atomic.Int64
	mispickCarry  atomic.Int64

	mutations    obs.Counter // published mutation batches
	valueUpdates obs.Counter
	rowsReplaced obs.Counter
	rowsAppended obs.Counter
	rowsDeleted  obs.Counter
	reskins      obs.Counter // value-only base re-skins
	swaps        obs.Counter // rebuild swap publishes

	rebuildsStarted   obs.Counter // attempts (each ends in exactly one bucket below or a swap)
	rebuildsFailed    obs.Counter
	rebuildsCancelled obs.Counter
}

// LiveStats is a point-in-time snapshot of a live pipeline's mutation
// counters. The counters reconcile exactly once the pipeline is idle
// (WaitRebuilt/Quiesce):
//
//	Epoch           == Mutations + Swaps
//	RebuildsStarted == Swaps + RebuildsFailed + RebuildsCancelled
type LiveStats struct {
	Epoch       uint64
	StructEpoch uint32

	Mutations    int64 // mutation batches applied (published)
	ValueUpdates int64 // individual nonzeros rewritten
	RowsReplaced int64
	RowsAppended int64
	RowsDeleted  int64
	Reskins      int64 // value-only O(nnz) base re-skins
	Swaps        int64 // background rebuilds atomically swapped in

	RebuildsStarted   int64 // rebuild attempts begun
	RebuildsFailed    int64
	RebuildsCancelled int64
	Rebuilding        bool
	Degraded          bool // overlay-forever: rebuilds abandoned

	OverlayRows int // base rows currently served from the overlay
	OverlayNNZ  int // nonzeros served through the overlay (incl. tail)
	TailRows    int // appended rows not yet folded into a base

	// StalenessSeconds is how long the oldest unrebuilt mutation has
	// been waiting for a swap; 0 when the base is current.
	StalenessSeconds float64

	Rows, Cols int // current served shape
}

// NewLivePipelineCtx builds a mutable serving pipeline over m: the base
// is an online pipeline (no-reorder plan synchronously, reordered plan
// in the background under cfg.PreprocessBudget, §4 trial on first use),
// and Mutate keeps it current as the matrix changes. Background
// rebuilds run under ctx: cancelling it stops them without degrading.
func NewLivePipelineCtx(ctx context.Context, m *Matrix, cfg Config, lcfg LiveConfig) (*LivePipeline, error) {
	o, err := newOnlinePipelineCtx(ctx, m, cfg, nil)
	if err != nil {
		return nil, err
	}
	return newLive(ctx, o, nil, 0, lcfg, nil), nil
}

// NewLiveShardedPipelineCtx is NewLivePipelineCtx with a row-panel
// sharded base (see NewShardedPipeline); rebuilds re-shard the fused
// matrix at the same target.
func NewLiveShardedPipelineCtx(ctx context.Context, m *Matrix, cfg Config, targetNNZ int, lcfg LiveConfig) (*LivePipeline, error) {
	sp, err := NewShardedPipelineCtx(ctx, m, cfg, targetNNZ)
	if err != nil {
		return nil, err
	}
	return newLive(ctx, nil, sp, targetNNZ, lcfg, nil), nil
}

// newLive wraps an already-built base unit (exactly one of online or
// sharded). ring, when non-nil, receives the rebuild traces (the Server
// passes its /debug/traces ring).
func newLive(ctx context.Context, online *OnlinePipeline, sharded *ShardedPipeline, shardNNZ int, lcfg LiveConfig, ring *obs.TraceRing) *LivePipeline {
	if ctx == nil {
		ctx = context.Background()
	}
	l := &LivePipeline{ctx: ctx, lcfg: lcfg.withDefaults(), ring: ring, shardNNZ: shardNNZ}
	var m *Matrix
	if online != nil {
		m = online.Matrix()
	} else {
		m = sharded.Matrix()
	}
	st := &liveState{online: online, sharded: sharded, baseM: m, cur: m, sddmmPool: newSDDMMPool(m)}
	st.structEpoch = st.baseCfg().Epoch
	l.state.Store(st)
	return l
}

// Matrix returns the currently served matrix — the base plus every
// published mutation. The returned matrix is an immutable snapshot: a
// later mutation publishes a new one and never modifies this one.
func (l *LivePipeline) Matrix() *Matrix { return l.state.Load().cur }

// Online returns the current base online pipeline (nil for a sharded
// live pipeline). A rebuild swap replaces it; re-read after WaitRebuilt.
func (l *LivePipeline) Online() *OnlinePipeline { return l.state.Load().online }

// Sharded returns the current base sharded pipeline (nil for an online
// live pipeline).
func (l *LivePipeline) Sharded() *ShardedPipeline { return l.state.Load().sharded }

// Epoch returns the current publish generation: it bumps by one per
// applied mutation and per rebuild swap.
func (l *LivePipeline) Epoch() uint64 { return l.state.Load().epoch }

// Mispicked returns the tenant's total autotuner-feedback mispick
// count: windows in which the serving plan underperformed the trial
// loser, summed across every base this pipeline has served through
// (re-skins copy the count; rebuild swaps fold it into a carry).
// Always 0 for a sharded base — panels run no trial to second-guess.
func (l *LivePipeline) Mispicked() int64 {
	n := l.mispickCarry.Load()
	if o := l.state.Load().online; o != nil {
		n += o.Mispicked()
	}
	return n
}

// setEventSink routes this pipeline's decision events (plan swaps,
// overlay degradation, trial winners, mispicks) to ring, labelled with
// tenant. Call before serving; rebuilt bases inherit the sink.
func (l *LivePipeline) setEventSink(ring *obs.EventRing, tenant string) {
	if ring == nil {
		return
	}
	es := &eventSink{ring: ring, tenant: tenant}
	l.sink.Store(es)
	if o := l.state.Load().online; o != nil {
		o.sink.Store(es)
	}
}

// setMispickWindow threads the autotuner-feedback window to the
// current and every future online base.
func (l *LivePipeline) setMispickWindow(n int) {
	if n <= 0 {
		return
	}
	l.mispickWindow.Store(int64(n))
	if o := l.state.Load().online; o != nil {
		o.setMispickWindow(n)
	}
}

// Degraded reports whether background rebuilding was permanently
// abandoned (overlay-forever serving) and the error that caused it.
func (l *LivePipeline) Degraded() (bool, error) {
	if d := l.degraded.Load(); d != nil {
		return true, d.err
	}
	return false, nil
}

// Stats snapshots the mutation counters (see LiveStats for the exact
// reconciliation identities).
func (l *LivePipeline) Stats() LiveStats {
	st := l.state.Load()
	ls := LiveStats{
		Epoch:             st.epoch,
		StructEpoch:       st.structEpoch,
		Mutations:         l.mutations.Value(),
		ValueUpdates:      l.valueUpdates.Value(),
		RowsReplaced:      l.rowsReplaced.Value(),
		RowsAppended:      l.rowsAppended.Value(),
		RowsDeleted:       l.rowsDeleted.Value(),
		Reskins:           l.reskins.Value(),
		Swaps:             l.swaps.Value(),
		RebuildsStarted:   l.rebuildsStarted.Value(),
		RebuildsFailed:    l.rebuildsFailed.Value(),
		RebuildsCancelled: l.rebuildsCancelled.Value(),
		OverlayRows:       len(st.overlay),
		OverlayNNZ:        st.overlayNNZ,
		TailRows:          st.tailRows,
		Rows:              st.cur.Rows,
		Cols:              st.cur.Cols,
	}
	if st.mutated() && !st.dirtySince.IsZero() {
		ls.StalenessSeconds = time.Since(st.dirtySince).Seconds()
	}
	ls.Degraded = l.degraded.Load() != nil
	l.mu.Lock()
	ls.Rebuilding = l.rebuilding
	l.mu.Unlock()
	return ls
}

// overlayCost reports the overlay's and base's nonzero counts, the
// inputs to serve.OverlayWeight admission scaling.
func (l *LivePipeline) overlayCost() (overlayNNZ, baseNNZ int64) {
	st := l.state.Load()
	return int64(st.overlayNNZ), int64(st.baseM.NNZ())
}

// validateBatchOp is the coalescer's launch-time gate: operands sized
// for a pre-mutation shape are excised from the batch with
// ErrStaleShape instead of failing (or corrupting) the batch.
func (l *LivePipeline) validateBatchOp(op BatchOp) error {
	st := l.state.Load()
	if op.Y.Rows != st.cur.Rows || op.Y.Cols != op.X.Cols || op.X.Rows != st.cur.Cols {
		return fmt.Errorf("%w: operands y %dx%d, x %dx%d vs %dx%d at epoch %d",
			ErrStaleShape, op.Y.Rows, op.Y.Cols, op.X.Rows, op.X.Cols,
			st.cur.Rows, st.cur.Cols, st.epoch)
	}
	return nil
}

// UpdateValues applies a value-only mutation (see Mutation.UpdateValues).
func (l *LivePipeline) UpdateValues(ctx context.Context, ups []ValueUpdate) error {
	return l.Mutate(ctx, Mutation{UpdateValues: ups})
}

// ReplaceRows replaces whole rows (see Mutation.ReplaceRows).
func (l *LivePipeline) ReplaceRows(ctx context.Context, rows []RowUpdate) error {
	return l.Mutate(ctx, Mutation{ReplaceRows: rows})
}

// AppendRows grows the matrix by new rows (see Mutation.AppendRows).
func (l *LivePipeline) AppendRows(ctx context.Context, rows []RowDef) error {
	return l.Mutate(ctx, Mutation{AppendRows: rows})
}

// DeleteRows tombstones rows to empty (see Mutation.DeleteRows).
func (l *LivePipeline) DeleteRows(ctx context.Context, rows []int) error {
	return l.Mutate(ctx, Mutation{DeleteRows: rows})
}

// Mutate validates and applies one mutation batch atomically: readers
// see either the whole batch or none of it, with no unavailability in
// between. Value-only batches on a clean state re-skin the base in
// O(nnz); anything structural lands in the overlay and (unless
// RebuildDisabled) arms the background re-preprocess. A mutation
// arriving while a rebuild is in flight is additionally logged and
// replayed onto the rebuilt base at swap time, so no edit is ever lost
// to a rebuild race. Blocks while the initial background plan build is
// still running (bounded by ctx).
func (l *LivePipeline) Mutate(ctx context.Context, mu Mutation) error {
	if mu.empty() {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrQuiesced
	}
	st := l.state.Load()
	nm, err := normalizeMutation(st.cur, &mu)
	if err != nil {
		return err
	}
	if nm.structural() {
		if err := faultinject.Fire("live.overlay.append"); err != nil {
			return err
		}
	}
	ns, reskinned, err := l.applyLocked(ctx, st, nm)
	if err != nil {
		return err
	}
	if l.lcfg.MaxOverlayRows >= 0 && len(ns.overlay)+ns.tailRows > l.lcfg.MaxOverlayRows {
		return fmt.Errorf("%w: %d overlay rows (max %d)",
			ErrOverlayFull, len(ns.overlay)+ns.tailRows, l.lcfg.MaxOverlayRows)
	}
	ns.epoch = st.epoch + 1
	l.state.Store(ns)
	l.mutations.Inc()
	l.valueUpdates.Add(int64(len(nm.UpdateValues)))
	l.rowsReplaced.Add(int64(len(nm.ReplaceRows)))
	l.rowsAppended.Add(int64(len(nm.AppendRows)))
	l.rowsDeleted.Add(int64(len(nm.DeleteRows)))
	if reskinned {
		l.reskins.Inc()
	}
	if l.rebuilding {
		l.pending = append(l.pending, nm)
	} else if ns.mutated() && !l.lcfg.RebuildDisabled && l.degraded.Load() == nil {
		l.startRebuildLocked()
	}
	return nil
}

// applyLocked builds the successor state for one normalized mutation.
// It never touches epoch or counters (the caller owns those — Mutate
// publishes, the rebuild swap replays without recounting). Caller holds
// l.mu.
func (l *LivePipeline) applyLocked(ctx context.Context, st *liveState, nm *Mutation) (*liveState, bool, error) {
	newCur, err := applyToMatrix(st.cur, nm)
	if err != nil {
		return nil, false, err
	}
	if !nm.structural() && !st.mutated() {
		// Value-only on a clean state: re-skin the base through the plan
		// cache (structure hit, O(nnz) value regather); the §4 trial
		// decision carries over inside reskin.
		var online *OnlinePipeline
		var sharded *ShardedPipeline
		if st.online != nil {
			online, err = st.online.reskin(ctx, newCur)
		} else {
			sharded, err = st.sharded.reskin(ctx, newCur)
		}
		if err != nil {
			return nil, false, err
		}
		// Pre-publish invariant gate: a re-skin flows through the plan
		// cache's gather maps, so a poisoned entry could hand back a
		// structurally broken plan. Reject it before it can serve.
		if cerr := checkBasePlans(online, sharded); cerr != nil {
			return nil, false, cerr
		}
		ns := &liveState{
			structEpoch: st.structEpoch,
			online:      online, sharded: sharded,
			baseM: newCur, cur: newCur,
			sddmmPool: newSDDMMPool(newCur),
		}
		return ns, true, nil
	}
	// Overlay path: the base keeps serving its old structure; every
	// touched base row joins the overlay and is served from the fused
	// matrix instead.
	ov := make(map[int]struct{}, len(st.overlay)+len(nm.ReplaceRows)+len(nm.DeleteRows)+len(nm.UpdateValues))
	for r := range st.overlay {
		ov[r] = struct{}{}
	}
	baseRows := st.baseM.Rows
	touch := func(r int) {
		if r < baseRows {
			ov[r] = struct{}{}
		}
	}
	for i := range nm.ReplaceRows {
		touch(nm.ReplaceRows[i].Row)
	}
	for _, r := range nm.DeleteRows {
		touch(r)
	}
	for i := range nm.UpdateValues {
		// With a structural overlay outstanding the base cannot be
		// re-skinned row-selectively, so value-updated rows are served
		// from the fused matrix too (tail rows already are).
		touch(nm.UpdateValues[i].Row)
	}
	se := st.structEpoch
	if nm.structural() {
		se++
	}
	ns := &liveState{
		structEpoch: se,
		online:      st.online, sharded: st.sharded,
		baseM: st.baseM, cur: newCur,
		overlay:    ov,
		tailRows:   newCur.Rows - baseRows,
		dirtySince: st.dirtySince,
		sddmmPool:  st.sddmmPool,
	}
	if ns.dirtySince.IsZero() {
		ns.dirtySince = time.Now()
	}
	nnz := newCur.NNZ() - int(newCur.RowPtr[baseRows]) // tail
	for r := range ov {
		nnz += newCur.RowLen(r)
	}
	ns.overlayNNZ = nnz
	return ns, false, nil
}

// normalizeMutation validates mu against cur and returns a normalized
// deep copy (row definitions sorted by column) safe to retain for
// replay. All-or-nothing: the first invalid operation rejects the whole
// batch with a wrapped ErrMutation. Value-update target existence is
// checked later, in applyToMatrix, against the post-structural-ops
// matrix.
func normalizeMutation(cur *Matrix, mu *Mutation) (*Mutation, error) {
	nm := &Mutation{}
	seen := make(map[int]bool, len(mu.ReplaceRows)+len(mu.DeleteRows))
	for _, ru := range mu.ReplaceRows {
		if ru.Row < 0 || ru.Row >= cur.Rows {
			return nil, fmt.Errorf("%w: replace of row %d (matrix has %d)", ErrMutation, ru.Row, cur.Rows)
		}
		if seen[ru.Row] {
			return nil, fmt.Errorf("%w: row %d named twice", ErrMutation, ru.Row)
		}
		seen[ru.Row] = true
		def, err := normRowDef(cur.Cols, ru.Def)
		if err != nil {
			return nil, err
		}
		nm.ReplaceRows = append(nm.ReplaceRows, RowUpdate{Row: ru.Row, Def: def})
	}
	for _, r := range mu.DeleteRows {
		if r < 0 || r >= cur.Rows {
			return nil, fmt.Errorf("%w: delete of row %d (matrix has %d)", ErrMutation, r, cur.Rows)
		}
		if seen[r] {
			return nil, fmt.Errorf("%w: row %d named twice", ErrMutation, r)
		}
		seen[r] = true
		nm.DeleteRows = append(nm.DeleteRows, r)
	}
	for _, def := range mu.AppendRows {
		nd, err := normRowDef(cur.Cols, def)
		if err != nil {
			return nil, err
		}
		nm.AppendRows = append(nm.AppendRows, nd)
	}
	newRows := cur.Rows + len(mu.AppendRows)
	for _, u := range mu.UpdateValues {
		if u.Row < 0 || u.Row >= newRows {
			return nil, fmt.Errorf("%w: value update of row %d (matrix will have %d)", ErrMutation, u.Row, newRows)
		}
		if u.Col < 0 || u.Col >= cur.Cols {
			return nil, fmt.Errorf("%w: value update of column %d (matrix has %d)", ErrMutation, u.Col, cur.Cols)
		}
		if !finite(u.Val) {
			return nil, fmt.Errorf("%w: non-finite value at (%d,%d)", ErrMutation, u.Row, u.Col)
		}
		nm.UpdateValues = append(nm.UpdateValues, u)
	}
	return nm, nil
}

func finite(v float32) bool {
	f := float64(v)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// normRowDef copies and canonicalizes one row definition: entries
// sorted by column, columns unique and in [0, cols), values finite.
func normRowDef(cols int, def RowDef) (RowDef, error) {
	if len(def.Cols) != len(def.Vals) {
		return RowDef{}, fmt.Errorf("%w: row has %d columns but %d values",
			ErrMutation, len(def.Cols), len(def.Vals))
	}
	nd := RowDef{
		Cols: append([]int32(nil), def.Cols...),
		Vals: append([]float32(nil), def.Vals...),
	}
	if !sort.SliceIsSorted(nd.Cols, func(i, j int) bool { return nd.Cols[i] < nd.Cols[j] }) {
		sort.Sort(&rowDefSort{nd})
	}
	var prev int32 = -1
	for i, c := range nd.Cols {
		if c < 0 || int(c) >= cols {
			return RowDef{}, fmt.Errorf("%w: column %d out of range [0,%d)", ErrMutation, c, cols)
		}
		if c == prev {
			return RowDef{}, fmt.Errorf("%w: duplicate column %d in row definition", ErrMutation, c)
		}
		prev = c
		if !finite(nd.Vals[i]) {
			return RowDef{}, fmt.Errorf("%w: non-finite value at column %d", ErrMutation, c)
		}
	}
	return nd, nil
}

type rowDefSort struct{ d RowDef }

func (s *rowDefSort) Len() int           { return len(s.d.Cols) }
func (s *rowDefSort) Less(i, j int) bool { return s.d.Cols[i] < s.d.Cols[j] }
func (s *rowDefSort) Swap(i, j int) {
	s.d.Cols[i], s.d.Cols[j] = s.d.Cols[j], s.d.Cols[i]
	s.d.Vals[i], s.d.Vals[j] = s.d.Vals[j], s.d.Vals[i]
}

// applyToMatrix materialises the fused matrix: cur with nm applied. cur
// is never modified. nm must already be normalized.
func applyToMatrix(cur *Matrix, nm *Mutation) (*Matrix, error) {
	rep := make(map[int]*RowDef, len(nm.ReplaceRows))
	for i := range nm.ReplaceRows {
		rep[nm.ReplaceRows[i].Row] = &nm.ReplaceRows[i].Def
	}
	del := make(map[int]bool, len(nm.DeleteRows))
	for _, r := range nm.DeleteRows {
		del[r] = true
	}
	newRows := cur.Rows + len(nm.AppendRows)
	rowPtr := make([]int32, newRows+1)
	nnz := 0
	for i := 0; i < cur.Rows; i++ {
		switch {
		case del[i]:
		case rep[i] != nil:
			nnz += len(rep[i].Cols)
		default:
			nnz += cur.RowLen(i)
		}
		rowPtr[i+1] = int32(nnz)
	}
	for j := range nm.AppendRows {
		nnz += len(nm.AppendRows[j].Cols)
		rowPtr[cur.Rows+j+1] = int32(nnz)
	}
	if nnz > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %d nonzeros overflow the CSR index type", ErrMutation, nnz)
	}
	colIdx := make([]int32, nnz)
	val := make([]float32, nnz)
	for i := 0; i < cur.Rows; i++ {
		off := rowPtr[i]
		switch {
		case del[i]:
		case rep[i] != nil:
			copy(colIdx[off:], rep[i].Cols)
			copy(val[off:], rep[i].Vals)
		default:
			copy(colIdx[off:], cur.RowCols(i))
			copy(val[off:], cur.RowVals(i))
		}
	}
	for j := range nm.AppendRows {
		off := rowPtr[cur.Rows+j]
		copy(colIdx[off:], nm.AppendRows[j].Cols)
		copy(val[off:], nm.AppendRows[j].Vals)
	}
	m := &sparse.CSR{Rows: newRows, Cols: cur.Cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	for _, u := range nm.UpdateValues {
		cols := m.RowCols(u.Row)
		k := sort.Search(len(cols), func(i int) bool { return cols[i] >= int32(u.Col) })
		if k == len(cols) || cols[k] != int32(u.Col) {
			return nil, fmt.Errorf("%w: no nonzero at (%d,%d) to update", ErrMutation, u.Row, u.Col)
		}
		m.Val[int(m.RowPtr[u.Row])+k] = u.Val
	}
	return m, nil
}

// --- serving ---

// SpMMIntoCtx computes Y = S·X against the current epoch. The unmutated
// fast path is one atomic load plus the base pipeline's zero-allocation
// execution; with an overlay outstanding, the base kernels compute the
// base rows directly into y's prefix and the overlaid/appended rows are
// filled from the fused matrix at output-scatter time.
func (l *LivePipeline) SpMMIntoCtx(ctx context.Context, y *Dense, x *Dense) error {
	return l.state.Load().spmmInto(ctx, y, x, false)
}

// SpMMInto is SpMMIntoCtx without cancellation.
func (l *LivePipeline) SpMMInto(y *Dense, x *Dense) error {
	return l.SpMMIntoCtx(context.Background(), y, x)
}

// SpMMCtx is the allocating form of SpMMIntoCtx; the output comes from
// the process-wide dense pool (return with PutDense), sized for the
// epoch the call pinned.
func (l *LivePipeline) SpMMCtx(ctx context.Context, x *Dense) (*Dense, error) {
	st := l.state.Load()
	y := dense.Get(st.cur.Rows, x.Cols)
	if err := st.spmmInto(ctx, y, x, false); err != nil {
		dense.Put(y)
		return nil, err
	}
	return y, nil
}

// spmmNRIntoCtx serves the breaker's no-reorder fallback with the same
// overlay merge — a mutated tenant's fallback must not resurrect
// pre-mutation data or shapes.
func (l *LivePipeline) spmmNRIntoCtx(ctx context.Context, y *Dense, x *Dense) error {
	return l.state.Load().spmmInto(ctx, y, x, true)
}

// SpMMBatchIntoCtx computes every op's Y = S·X in one batched kernel
// pass (column-stacked, see Pipeline.SpMMBatchIntoCtx) against one
// pinned epoch.
func (l *LivePipeline) SpMMBatchIntoCtx(ctx context.Context, ops []BatchOp) error {
	return kernels.SpMMBatchIntoCtx(ctx, l, ops)
}

// refSpMMIntoCtx serves y = cur·x through the plain row-wise kernel on
// the fused, original-order matrix — the integrity quarantine path. It
// shares no transformed representation (permutation, tiles, slabs,
// gather maps) with any plan under suspicion, and it is bit-identical
// to the cold-rebuild oracle (repro.SpMM runs the same kernel on the
// same matrix). Note this is distinct from the breaker's NR fallback:
// for a sharded tenant the NR fallback IS the sharded pipeline, which
// may be the very thing quarantined.
func (l *LivePipeline) refSpMMIntoCtx(ctx context.Context, y *Dense, x *Dense) error {
	st := l.state.Load()
	cur := st.cur
	if y.Rows != cur.Rows || y.Cols != x.Cols || x.Rows != cur.Cols {
		return fmt.Errorf("%w: operands y %dx%d, x %dx%d vs %dx%d at epoch %d",
			ErrStaleShape, y.Rows, y.Cols, x.Rows, x.Cols, cur.Rows, cur.Cols, st.epoch)
	}
	return kernels.SpMMRowWiseIntoCtx(ctx, y, cur, x)
}

// refSDDMMIntoCtx is the SDDMM quarantine path (see refSpMMIntoCtx).
func (l *LivePipeline) refSDDMMIntoCtx(ctx context.Context, out *Matrix, x, y *Dense) error {
	st := l.state.Load()
	cur := st.cur
	if out != cur && !out.SameStructure(cur) {
		return fmt.Errorf("%w: SDDMM output structure differs from the live matrix at epoch %d",
			ErrStaleShape, st.epoch)
	}
	if y.Rows != cur.Rows || x.Rows != cur.Cols || x.Cols != y.Cols {
		return fmt.Errorf("%w: operands y %dx%d, x %dx%d vs %dx%d at epoch %d",
			ErrStaleShape, y.Rows, y.Cols, x.Rows, x.Cols, cur.Rows, cur.Cols, st.epoch)
	}
	return kernels.SDDMMRowWiseIntoCtx(ctx, out, cur, x, y)
}

// baseGen identifies the current base-plan generation for the
// integrity monitor: it advances exactly when the base plans are
// replaced — a value-only re-skin or a rebuild swap — and never on
// overlay mutations, which don't touch the suspect plans. The monitor
// quarantines a generation and reinstates only after observing a
// different one serve a clean probation window.
func (l *LivePipeline) baseGen() uint64 {
	return uint64(l.reskins.Value() + l.swaps.Value())
}

// ForceRebuild arms a background re-preprocess of the current fused
// matrix even when the overlay is clean — the integrity controller's
// healing kick after evicting a suspect plan from the cache. A no-op
// while closed, degraded, already rebuilding, or with rebuilds
// disabled (in those cases the tenant simply stays on the quarantine
// fallback, which is always correct).
func (l *LivePipeline) ForceRebuild() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.rebuilding || l.lcfg.RebuildDisabled || l.degraded.Load() != nil {
		return
	}
	l.startRebuildLocked()
}

// evictPlans removes the current base's plans — both workflow variants,
// every panel for a sharded base — from both plan-cache tiers (memory
// and disk snapshot), so the healing rebuild recomputes them from
// scratch instead of reloading the suspect entries.
func (l *LivePipeline) evictPlans() {
	st := l.state.Load()
	pc := planCache.Load()
	if st.online != nil {
		cfg := st.baseCfg()
		pc.Evict(st.baseM, cfg, plancache.Full)
		pc.Evict(st.baseM, cfg, plancache.NR)
		return
	}
	for i := range st.sharded.panels {
		pn := &st.sharded.panels[i]
		cfg := pn.pipe.plan.Cfg
		pc.Evict(pn.pipe.Matrix(), cfg, plancache.Full)
		pc.Evict(pn.pipe.Matrix(), cfg, plancache.NR)
	}
}

func (st *liveState) spmmInto(ctx context.Context, y *Dense, x *Dense, nrOnly bool) error {
	cur := st.cur
	if y.Rows != cur.Rows || y.Cols != x.Cols || x.Rows != cur.Cols {
		return fmt.Errorf("%w: operands y %dx%d, x %dx%d vs %dx%d at epoch %d",
			ErrStaleShape, y.Rows, y.Cols, x.Rows, x.Cols, cur.Rows, cur.Cols, st.epoch)
	}
	base := st.baseUnit(nrOnly)
	if !st.mutated() {
		return base.SpMMIntoCtx(ctx, y, x)
	}
	// Rows are independent: the base pass writes its rows straight into
	// y's prefix (a zero-copy view), then the overlay overwrites its
	// rows and the tail is computed in place.
	var yb dense.Matrix
	yb.Rows, yb.Cols = st.baseM.Rows, y.Cols
	yb.Data = y.Data[:st.baseM.Rows*y.Cols]
	if err := base.SpMMIntoCtx(ctx, &yb, x); err != nil {
		return err
	}
	n := 0
	row := func(r int) error {
		if n++; n&0xFF == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		yr := y.Row(r)
		clear(yr)
		cols, vals := cur.RowCols(r), cur.RowVals(r)
		for i, c := range cols {
			xr := x.Row(int(c))
			v := vals[i]
			for k := range yr {
				yr[k] += v * xr[k]
			}
		}
		return nil
	}
	for r := range st.overlay {
		if err := row(r); err != nil {
			return err
		}
	}
	for r := st.baseM.Rows; r < cur.Rows; r++ {
		if err := row(r); err != nil {
			return err
		}
	}
	// Corruption fault site: flip one entry of the lowest overlay (or
	// first tail) row in the *served output* — the fused truth stays
	// intact, modelling a bug in the overlay merge itself. Never fires
	// into the breaker/quarantine fallback path, and only an armed
	// CorruptAt hook corrupts (the generic chaos soak's ErrorAt sweep
	// is a no-op here).
	if err := faultinject.Fire("integrity.corrupt.overlay"); errors.Is(err, faultinject.ErrCorrupt) && !nrOnly && y.Cols > 0 {
		r := -1
		for ov := range st.overlay {
			if r < 0 || ov < r {
				r = ov
			}
		}
		if r < 0 && cur.Rows > st.baseM.Rows {
			r = st.baseM.Rows
		}
		if r >= 0 {
			y.Row(r)[0] = y.Row(r)[0]*2 + 1
			integrity.CorruptionInjected()
		}
	}
	return nil
}

// SDDMMIntoCtx computes O = S ⊙ (Y·Xᵀ) against the current epoch; out
// must have the current fused matrix's structure.
func (l *LivePipeline) SDDMMIntoCtx(ctx context.Context, out *Matrix, x, y *Dense) error {
	return l.state.Load().sddmmInto(ctx, out, x, y, false)
}

// SDDMMCtx is the allocating form of SDDMMIntoCtx; the output clones
// the fused matrix's structure at the epoch the call pinned.
func (l *LivePipeline) SDDMMCtx(ctx context.Context, x, y *Dense) (*Matrix, error) {
	st := l.state.Load()
	out := st.cur.Clone()
	if err := st.sddmmInto(ctx, out, x, y, false); err != nil {
		return nil, err
	}
	return out, nil
}

// sddmmNRIntoCtx is the breaker-fallback SDDMM with the overlay merge.
func (l *LivePipeline) sddmmNRIntoCtx(ctx context.Context, out *Matrix, x, y *Dense) error {
	return l.state.Load().sddmmInto(ctx, out, x, y, true)
}

func (st *liveState) sddmmInto(ctx context.Context, out *Matrix, x, y *Dense, nrOnly bool) error {
	cur := st.cur
	if out != cur && !out.SameStructure(cur) {
		return fmt.Errorf("%w: SDDMM output structure differs from the live matrix at epoch %d",
			ErrStaleShape, st.epoch)
	}
	if y.Rows != cur.Rows || x.Rows != cur.Cols || x.Cols != y.Cols {
		return fmt.Errorf("%w: operands y %dx%d, x %dx%d vs %dx%d at epoch %d",
			ErrStaleShape, y.Rows, y.Cols, x.Rows, x.Cols, cur.Rows, cur.Cols, st.epoch)
	}
	base := st.baseUnit(nrOnly)
	if !st.mutated() {
		return base.SDDMMIntoCtx(ctx, out, x, y)
	}
	// The base pass computes into base-structure scratch (overlaid rows'
	// structures differ, so out can't be handed over wholesale), then
	// untouched rows copy across segment-by-segment and overlay/tail
	// rows are computed from the fused structure directly.
	scratch := st.sddmmPool.Get().(*sparse.CSR)
	defer st.sddmmPool.Put(scratch)
	var yb dense.Matrix
	yb.Rows, yb.Cols = st.baseM.Rows, y.Cols
	yb.Data = y.Data[:st.baseM.Rows*y.Cols]
	if err := base.SDDMMIntoCtx(ctx, scratch, x, &yb); err != nil {
		return err
	}
	bm := st.baseM
	for r := 0; r < bm.Rows; r++ {
		if _, ovl := st.overlay[r]; ovl {
			continue
		}
		copy(out.Val[cur.RowPtr[r]:cur.RowPtr[r+1]], scratch.Val[bm.RowPtr[r]:bm.RowPtr[r+1]])
	}
	n := 0
	row := func(r int) error {
		if n++; n&0xFF == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		yr := y.Row(r)
		cols, vals := cur.RowCols(r), cur.RowVals(r)
		ovals := out.Val[cur.RowPtr[r]:cur.RowPtr[r+1]]
		for i, c := range cols {
			xr := x.Row(int(c))
			var dot float32
			for k := range yr {
				dot += yr[k] * xr[k]
			}
			ovals[i] = dot * vals[i]
		}
		return nil
	}
	for r := range st.overlay {
		if err := row(r); err != nil {
			return err
		}
	}
	for r := bm.Rows; r < cur.Rows; r++ {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// --- background rebuild ---

// startRebuildLocked arms the background re-preprocess. Caller holds
// l.mu and has already published the state that made the overlay dirty.
func (l *LivePipeline) startRebuildLocked() {
	l.rebuilding = true
	l.idle = make(chan struct{})
	l.pending = nil
	l.wg.Add(1)
	go l.rebuildLoop()
}

// rebuildLoop runs rebuild rounds until the overlay is clean, the
// pipeline quiesces, its context dies, or a round exhausts its retries
// (permanent degradation to overlay-forever serving).
func (l *LivePipeline) rebuildLoop() {
	defer l.wg.Done()
	for {
		err := l.rebuildOnce()
		l.mu.Lock()
		if err != nil && l.ctx.Err() == nil && !l.closed {
			// Out of attempts with a live pipeline: stop trading CPU for
			// a base that will not build. The overlay keeps serving —
			// correct, bounded, and visibly degraded.
			l.degraded.Store(&degradeReason{err: err})
			l.sink.Load().emit(obs.Event{
				Type:   obs.EventOverlayDegraded,
				Epoch:  l.state.Load().epoch,
				Detail: err.Error(),
			})
		}
		st := l.state.Load()
		if err != nil || l.closed || !st.mutated() {
			l.rebuilding = false
			l.pending = nil
			close(l.idle)
			l.idle = nil
			l.mu.Unlock()
			return
		}
		// Pending mutations replayed at swap left the overlay dirty
		// again: go around for another round.
		l.mu.Unlock()
	}
}

// rebuildOnce is one full-jitter-retried rebuild round.
func (l *LivePipeline) rebuildOnce() error {
	pol := serve.RetryPolicy{
		MaxAttempts: l.lcfg.RebuildMaxAttempts,
		BaseDelay:   l.lcfg.RebuildRetryBase,
		MaxDelay:    l.lcfg.RebuildRetryMax,
	}
	// Every non-context failure is worth retrying: preprocessing is
	// time-dependent (budget pressure, injected faults, memory churn).
	_, err := serve.Retry(l.ctx, pol,
		func(error) bool { return true },
		func(int) error { return l.rebuildAttempt() })
	return err
}

// rebuildAttempt snapshots the fused matrix, preprocesses it from
// scratch under the bumped structural epoch, and — on success —
// atomically swaps the rebuilt base in, replaying any mutations that
// landed mid-build. Each attempt lands in exactly one of swaps,
// rebuildsFailed, or rebuildsCancelled.
func (l *LivePipeline) rebuildAttempt() (err error) {
	l.rebuildsStarted.Inc()
	defer func() {
		if err != nil {
			if l.ctx.Err() != nil {
				l.rebuildsCancelled.Inc()
			} else {
				l.rebuildsFailed.Inc()
			}
		}
	}()
	if err := faultinject.Fire("live.rebuild.start"); err != nil {
		return err
	}
	l.mu.Lock()
	st := l.state.Load()
	snapM := st.cur
	snapEpoch := st.structEpoch
	// Mutations before this point are in snapM; the log restarts so the
	// publish below replays exactly the ones the snapshot misses.
	l.pending = nil
	l.mu.Unlock()

	cfg := st.baseCfg()
	cfg.Epoch = snapEpoch
	var online *OnlinePipeline
	var sharded *ShardedPipeline
	if st.online != nil {
		online, err = newOnlinePipelineCtx(l.ctx, snapM, cfg, l.ring)
		if err != nil {
			return err
		}
		// The rebuilt base inherits the event sink and feedback window
		// before it publishes (nothing serves through it yet).
		if es := l.sink.Load(); es != nil {
			online.sink.Store(es)
		}
		if w := l.mispickWindow.Load(); w > 0 {
			online.setMispickWindow(int(w))
		}
		if werr := online.WaitPreprocessed(l.ctx); werr != nil {
			return werr
		}
		if d, derr := online.Degraded(); d {
			// The reordered build ran over budget or failed. %v (not %w):
			// a budget timeout carries context.DeadlineExceeded, which
			// the retry loop must not mistake for OUR context dying.
			return fmt.Errorf("repro: rebuilt pipeline degraded: %v", derr)
		}
	} else {
		sharded, err = NewShardedPipelineCtx(l.ctx, snapM, cfg, l.shardNNZ)
		if err != nil {
			return err
		}
	}
	// Pre-swap invariant gate (outside the lock — O(rows+nnz)): a
	// structurally corrupt rebuild counts as a failed attempt and never
	// publishes; the retry/degrade machinery owns what happens next.
	if err := checkBasePlans(online, sharded); err != nil {
		return err
	}
	// Fingerprint the rebuilt base for the swap event while still off
	// the lock (the digest is O(nnz)).
	var swapFP, swapKernel string
	if es := l.sink.Load(); es != nil {
		swapFP = plancache.Fingerprint(snapM, cfg, plancache.Full)
		if online != nil {
			swapKernel = online.Kernel().String()
		} else {
			swapKernel = sharded.PanelKernel(0).String()
		}
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if err := faultinject.Fire("live.swap.publish"); err != nil {
		return err
	}
	cur := l.state.Load()
	ns := &liveState{
		structEpoch: snapEpoch,
		online:      online, sharded: sharded,
		baseM: snapM, cur: snapM,
		sddmmPool: newSDDMMPool(snapM),
	}
	for _, nm := range l.pending {
		// Replay through the same apply path the mutations originally
		// took; they were counted then, so only the state moves now.
		next, _, aerr := l.applyLocked(l.ctx, ns, nm)
		if aerr != nil {
			return fmt.Errorf("repro: replaying %d pending mutations at swap: %w", len(l.pending), aerr)
		}
		ns = next
	}
	// One publish, one epoch bump — the replayed mutations bumped the
	// epoch when they originally published.
	ns.epoch = cur.epoch + 1
	l.pending = nil
	// The replaced base's mispick count folds into the carry so the
	// tenant's total never goes backwards across swaps.
	if cur.online != nil {
		l.mispickCarry.Add(cur.online.mispicks.Load())
	}
	l.state.Store(ns)
	l.swaps.Inc()
	l.sink.Load().emit(obs.Event{
		Type:   obs.EventPlanSwap,
		Epoch:  ns.epoch,
		PlanFP: swapFP,
		Kernel: swapKernel,
	})
	return nil
}

// checkBasePlans validates the pre-swap structural invariants
// (integrity.CheckPlan: permutation bijectivity, RowPtr monotonicity,
// index ranges) of every plan a base unit serves from — the NR and
// reordered plans of an online base, or every panel of a sharded one.
// Exactly one of online/sharded is non-nil.
func checkBasePlans(online *OnlinePipeline, sharded *ShardedPipeline) error {
	if online != nil {
		if err := checkPipelinePlan(online.nr); err != nil {
			return err
		}
		if rr := online.rr.Load(); rr != nil {
			return checkPipelinePlan(rr)
		}
		return nil
	}
	for i := range sharded.panels {
		if err := checkPipelinePlan(sharded.panels[i].pipe); err != nil {
			return err
		}
	}
	return nil
}

func checkPipelinePlan(p *Pipeline) error {
	return integrity.CheckPlan(p.plan.RowPerm, p.plan.InvRowPerm, p.plan.Reordered)
}

// Rebuilding reports whether a background re-preprocess is in flight.
func (l *LivePipeline) Rebuilding() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rebuilding
}

// WaitRebuilt blocks until no background rebuild is in flight (the
// overlay has been swapped into a fresh base, the pipeline degraded, or
// rebuilding is disabled) or ctx dies. After a nil return the counters
// in Stats reconcile exactly.
func (l *LivePipeline) WaitRebuilt(ctx context.Context) error {
	for {
		l.mu.Lock()
		ch := l.idle
		l.mu.Unlock()
		if ch == nil {
			return nil
		}
		select {
		case <-ch:
			// Loop: a mutation may have armed a fresh rebuild between the
			// close and our re-check.
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Quiesce closes the mutation log (Mutate fails with ErrQuiesced) and
// joins the background rebuild machinery, bounded by ctx. Serving calls
// keep working on the final published state. To abandon an in-flight
// rebuild instead of waiting it out, cancel the context the pipeline
// was constructed with first.
func (l *LivePipeline) Quiesce(ctx context.Context) error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	done := make(chan struct{})
	go func() {
		l.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
