// Graph analytics example: multi-source breadth-first reachability and a
// damped PageRank power iteration, both expressed as repeated SpMM over
// a frontier/score matrix — the "graph centrality calculations" class of
// SpMM applications cited in §2.2. The adjacency is preprocessed once
// with the row-reordering pipeline and reused by every iteration of
// every query batch.
//
// The algorithms live (tested) in internal/apps/graph; this example
// wires them to the pipeline and reports the per-iteration gain on the
// simulated P100.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/apps/graph"
)

const (
	sources = 128 // simultaneous BFS sources (the K of the SpMM)
	rounds  = 12
)

func main() {
	adj, err := repro.GenerateRMAT(14, 16, 21)
	if err != nil {
		log.Fatal(err)
	}
	n := adj.Rows
	fmt.Printf("graph: %v\n", adj)

	pipe, err := repro.NewPipeline(adj, repro.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocess: %v (round1=%v round2=%v)\n",
		pipe.Plan().Preprocess.Round(time.Millisecond),
		pipe.Plan().Round1Applied, pipe.Plan().Round2Applied)

	// ---- Multi-source reachability ----
	src := make([]int32, sources)
	for s := range src {
		src[s] = int32(s * 37 % n)
	}
	start := time.Now()
	depth, err := graph.MultiSourceBFS(pipe, n, src, rounds)
	if err != nil {
		log.Fatal(err)
	}
	reached := 0
	for _, d := range depth.Data {
		if d >= 0 {
			reached++
		}
	}
	fmt.Printf("multi-source BFS (%d sources): %d of %d (vertex,source) pairs reached in %v\n",
		sources, reached, n*sources, time.Since(start).Round(time.Millisecond))

	// ---- PageRank over the same graph ----
	trans := graph.TransitionMatrix(adj)
	tpipe, err := repro.NewPipeline(trans, repro.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	scores, err := graph.PageRank(tpipe, n, sources, rounds, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PageRank (%d rounds, %d chains): %v, column-0 mass %.4f\n",
		rounds, sources, time.Since(start).Round(time.Millisecond), graph.ColumnMass(scores, 0))

	// Simulated benefit per iteration.
	dev := repro.P100()
	base, err := repro.EstimateSpMMRowWise(dev, trans, sources)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := tpipe.EstimateSpMM(dev, sources)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated SpMM per iteration (K=%d): %v -> %v (%.2fx)\n",
		sources, base.Time, tuned.Time, tuned.Speedup(base))
}
