// Collaborative filtering example: regularised ALS matrix factorisation
// on a sparse ratings matrix — the paper's motivating SDDMM workload
// (§1/§2.2). Each epoch alternates exact per-user and per-item ridge
// solves (internal/apps/als) and evaluates the training error via an
// SDDMM over the ratings support; that SDDMM runs through the
// row-reordering pipeline, preprocessed once and amortised over all
// epochs (§5.4).
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/apps/als"
	"repro/internal/synth"
)

const (
	users   = 8192
	items   = 4096
	factors = 32
	epochs  = 8
	lambda  = 0.05
)

func main() {
	// A bipartite ratings matrix with latent taste groups, user rows in
	// arrival order — the regime where row reordering pays.
	ratings, err := synth.Bipartite(users, items, 24, 16, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ratings: %v\n", ratings)

	// Preprocess the ratings pattern once; the pipeline's SDDMM is the
	// model's per-epoch evaluator.
	start := time.Now()
	pattern := als.PatternOf(ratings)
	pipe, err := repro.NewPipeline(pattern, repro.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocess: %v (round1=%v round2=%v)\n",
		time.Since(start).Round(time.Millisecond),
		pipe.Plan().Round1Applied, pipe.Plan().Round2Applied)

	model, err := als.New(ratings, factors, lambda, 1, pipe)
	if err != nil {
		log.Fatal(err)
	}
	initial, err := model.RMSE()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch -: rmse %.4f (random factors)\n", initial)

	start = time.Now()
	for epoch := 0; epoch < epochs; epoch++ {
		rmse, err := model.Epoch()
		if err != nil {
			log.Fatal(err)
		}
		if epoch == 0 || epoch == epochs-1 {
			fmt.Printf("epoch %d: rmse %.4f\n", epoch, rmse)
		}
	}
	fmt.Printf("%d ALS epochs in %v\n", epochs, time.Since(start).Round(time.Millisecond))

	// What the preprocessing buys per evaluation on the simulated P100.
	dev := repro.P100()
	base, err := repro.EstimateSDDMMRowWise(dev, pattern, 512)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := pipe.EstimateSDDMM(dev, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated SDDMM (K=512): row-wise %v vs reordered %v (%.2fx per call)\n",
		base.Time, tuned.Time, tuned.Speedup(base))
	ratio := pipe.Plan().Preprocess.Seconds() / tuned.Time.Seconds()
	saved := base.Time.Seconds() - tuned.Time.Seconds()
	if saved > 0 {
		fmt.Printf("preprocess/kernel ratio: %.0fx; break-even after ~%.0f SDDMM calls\n",
			ratio, pipe.Plan().Preprocess.Seconds()/saved)
	}
}
