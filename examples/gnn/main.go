// GNN example: training a two-layer graph convolutional network — the
// paper's first motivating application ("graph convolution ... is an
// SpMM"). The adjacency matrix and its transpose are preprocessed once
// with the row-reordering pipeline; every forward aggregation and every
// backward gradient propagation then runs through the transformed
// matrices — the §5.4 offline amortisation scenario.
//
// The network itself (forward/backward/gradient-checked) lives in
// internal/apps/gcn; this example wires it to the pipeline and reports
// what the transformation buys per training step on the simulated P100.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro"
	"repro/internal/apps/gcn"
	"repro/internal/sparse"
)

const (
	feat0   = 64 // input feature width
	hidden  = 128
	classes = 16
	steps   = 20
)

func main() {
	// A scale-free citation-style graph with symmetric GCN
	// normalisation.
	adj, err := repro.GenerateRMAT(14, 16, 7)
	if err != nil {
		log.Fatal(err)
	}
	a := normalizeAdjacency(adj)
	fmt.Printf("graph: %v\n", a)

	// Offline: preprocess the adjacency and its transpose once.
	start := time.Now()
	agg, err := repro.NewPipeline(a, repro.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	aggT, err := repro.NewPipeline(sparse.Transpose(a), repro.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adjacency + transpose preprocessed in %v (dense ratio %.1f%% -> %.1f%%)\n",
		time.Since(start).Round(time.Millisecond),
		100*agg.Plan().DenseRatioBefore, 100*agg.Plan().DenseRatioAfter)

	model, err := gcn.New(agg, aggT, []int{feat0, hidden, classes}, 1)
	if err != nil {
		log.Fatal(err)
	}
	x := repro.NewRandomDense(a.Rows, feat0, 2)
	// Student-teacher setup: the target is produced by a GCN with hidden
	// weights, so it is exactly representable and the loss can approach
	// zero.
	teacher, err := gcn.New(agg, aggT, []int{feat0, hidden, classes}, 99)
	if err != nil {
		log.Fatal(err)
	}
	target, err := teacher.Forward(x)
	if err != nil {
		log.Fatal(err)
	}

	start = time.Now()
	var first, last float64
	for s := 0; s < steps; s++ {
		loss, err := model.Step(x, target, 2000)
		if err != nil {
			log.Fatal(err)
		}
		if s == 0 {
			first = loss
		}
		last = loss
	}
	fmt.Printf("%d training steps in %v: loss %.6f -> %.6f\n",
		steps, time.Since(start).Round(time.Millisecond), first, last)

	// What the preprocessing buys per aggregation on the simulated P100.
	dev := repro.P100()
	base, err := repro.EstimateSpMMRowWise(dev, a, hidden)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := agg.EstimateSpMM(dev, hidden)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated aggregation (K=%d): row-wise %v vs reordered %v (%.2fx per SpMM, several per step)\n",
		hidden, base.Time, tuned.Time, tuned.Speedup(base))
}

// normalizeAdjacency scales each edge by 1/sqrt(deg(u)·deg(v)) — the
// symmetric GCN normalisation.
func normalizeAdjacency(a *repro.Matrix) *repro.Matrix {
	out := a.Clone()
	deg := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		deg[i] = float64(a.RowLen(i)) + 1
	}
	for i := 0; i < out.Rows; i++ {
		cols := out.RowCols(i)
		vals := out.Val[out.RowPtr[i]:out.RowPtr[i+1]]
		for j := range cols {
			vals[j] = float32(1 / (math.Sqrt(deg[i]) * math.Sqrt(deg[cols[j]])))
		}
	}
	return out
}
