// Eigensolver example: block power iteration for the dominant eigenpairs
// of a symmetric graph operator — a simplified LOBPCG, the very first
// SpMM application §2.2 cites. The operator is applied hundreds of times
// to a block of K candidate vectors, so the row-reordering preprocessing
// amortises across iterations (§5.4).
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/apps/eigen"
	"repro/internal/sparse"
)

const (
	block   = 16
	maxIter = 150
)

func main() {
	// A symmetric operator: Â = A + Aᵀ of a scale-free graph, diagonal-
	// shifted so the spectrum is positive and the power iteration stable.
	adj, err := repro.GenerateRMAT(13, 12, 31)
	if err != nil {
		log.Fatal(err)
	}
	sym, err := symmetrize(adj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operator: %v\n", sym)

	// At this small block width the dense operand fits in the L2 and
	// reordering may not pay — exactly the case the paper's §4
	// trial-and-error strategy handles: estimate both plans, keep the
	// faster.
	start := time.Now()
	pipe, err := repro.AutoTune(sym, repro.DefaultConfig(), repro.P100(), block)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("autotune: %v (reordering kept: %v)\n",
		time.Since(start).Round(time.Millisecond), pipe.Plan().NeedsReordering())

	start = time.Now()
	res, err := eigen.BlockPowerIteration(pipe, sym.Rows, block, maxIter, 1e-7, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d iterations (%v); top eigenvalue estimates:\n",
		res.Iterations, time.Since(start).Round(time.Millisecond))
	for j := 0; j < 4; j++ {
		fmt.Printf("  λ[%d] ≈ %.4f\n", j, res.Values[j])
	}

	dev := repro.P100()
	base, err := repro.EstimateSpMMRowWise(dev, sym, block)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := pipe.EstimateSpMM(dev, block)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated operator application (K=%d): %v -> %v (%.2fx × %d iterations)\n",
		block, base.Time, tuned.Time, tuned.Speedup(base), res.Iterations)
}

// symmetrize returns A + Aᵀ with unit weights collapsed.
func symmetrize(a *repro.Matrix) (*repro.Matrix, error) {
	t := sparse.Transpose(a)
	coo := a.ToCOO()
	coo.Entries = append(coo.Entries, t.ToCOO().Entries...)
	return coo.ToCSR()
}
