// Quickstart: preprocess a sparse matrix with the row-reordering
// pipeline, run SpMM and SDDMM through it, verify the results against the
// plain kernels, and compare the simulated P100 execution of the three
// strategies the paper evaluates (row-wise / ASpT-NR / ASpT-RR).
//
// It also walks the paper's own 6×6 example (Figs 1-6) so the effect of
// the transformation is visible at a glance.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/aspt"
	"repro/internal/paperex"
	"repro/internal/sparse"
)

func main() {
	workedExample()

	// ---- A realistic input: latent row clusters hidden by row order ----
	m, err := repro.GenerateScrambledClusters(16384, 16384, 2048, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninput: %v (scrambled latent clusters)\n", m)

	start := time.Now()
	pipe, err := repro.NewPipeline(m, repro.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	plan := pipe.Plan()
	fmt.Printf("preprocessing took %v (round1=%v round2=%v)\n",
		time.Since(start).Round(time.Millisecond), plan.Round1Applied, plan.Round2Applied)
	fmt.Printf("dense-tile nonzero ratio: %.1f%% -> %.1f%%\n",
		100*plan.DenseRatioBefore, 100*plan.DenseRatioAfter)

	// SpMM through the pipeline is a drop-in replacement: same result,
	// different execution order.
	const K = 512
	x := repro.NewRandomDense(m.Cols, K, 1)
	y1, err := repro.SpMM(m, x)
	if err != nil {
		log.Fatal(err)
	}
	y2, err := pipe.SpMM(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native SpMM verified: outputs agree (%d x %d)\n", y1.Rows, y1.Cols)
	_ = y2

	// Simulated P100 comparison — the measurement the paper's evaluation
	// is built on.
	dev := repro.P100()
	base, err := repro.EstimateSpMMRowWise(dev, m, K)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := pipe.EstimateSpMM(dev, K)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated P100, K=%d:\n  row-wise: %v\n  reordered+tiled: %v\n  speedup: %.2fx\n",
		K, base, tuned, tuned.Speedup(base))
}

// workedExample reproduces the paper's running example.
func workedExample() {
	m := paperex.Matrix()
	fmt.Println("the paper's 6x6 example (Fig 1a), rows as column sets:")
	for i := 0; i < m.Rows; i++ {
		fmt.Printf("  row %d: %v\n", i, m.RowCols(i))
	}
	p := aspt.Params{PanelSize: paperex.PanelSize, DenseThreshold: paperex.DenseThreshold}
	before, err := aspt.Build(m, p)
	if err != nil {
		log.Fatal(err)
	}
	rm, err := sparse.PermuteRows(m, paperex.ReorderedRows)
	if err != nil {
		log.Fatal(err)
	}
	after, err := aspt.Build(rm, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ASpT dense-tile nonzeros before reordering: %d of %d\n", before.NNZDense(), m.NNZ())
	fmt.Printf("after the Fig 6 clustering order %v:       %d of %d\n",
		paperex.ReorderedRows, after.NNZDense(), m.NNZ())
}
