package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/dense"
	"repro/internal/ellpack"
	"repro/internal/faultinject"
	"repro/internal/gpusim"
	"repro/internal/integrity"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

// Pipeline wraps a preprocessed matrix and executes SpMM/SDDMM on it.
// Reordering is purely an execution strategy: results are returned in the
// original row order and with the original sparsity structure, so a
// Pipeline is a drop-in replacement for the plain kernels.
//
// A Pipeline is immutable after construction and safe for concurrent
// use; the *Into variants additionally perform no heap allocations at
// steady state.
type Pipeline struct {
	orig *Matrix
	plan *Plan

	// hyb is the ELL+COO representation of the reordered matrix, built
	// at construction only when the plan's kernel choice is
	// KernelELLHybrid. It is built per pipeline, never stored in the
	// (value-reskinnable) plan cache, so its values always match this
	// pipeline's matrix.
	hyb *ellpack.Hybrid

	// sddmmScratch pools reordered-row-space SDDMM value buffers. The
	// pooled matrices share the reordered matrix's structure arrays
	// (read-only) and own only their Val slice.
	sddmmScratch sync.Pool
}

// newPipeline finishes construction from a built plan: the kernel
// choice is materialised (the hybrid slab is converted now, off the
// serving path) and published to the kernel-choice counter.
func newPipeline(orig *Matrix, plan *Plan) (*Pipeline, error) {
	p := &Pipeline{orig: orig, plan: plan}
	if plan.Kernel == reorder.KernelELLHybrid {
		hyb, err := ellpack.FromCSRHybrid(plan.Reordered, 0)
		if err != nil {
			return nil, fmt.Errorf("repro: building hybrid representation: %w", err)
		}
		p.hyb = hyb
	}
	recordKernelChoice(plan.Kernel)
	return p, nil
}

// NewPipeline preprocesses m (Fig 5 workflow: round-1 reordering, ASpT
// tiling, round-2 reordering of the leftover part, with the §4 skip
// heuristics) and returns an executable pipeline. m is not mutated and
// may be used concurrently.
//
// Construction goes through the process-wide plan cache: building a
// pipeline for a sparsity structure + configuration seen before skips
// LSH, clustering, and tiling and reuses the cached plan (values are
// regathered in O(nnz) if they differ). See SetPlanCacheCapacity.
func NewPipeline(m *Matrix, cfg Config) (*Pipeline, error) {
	return NewPipelineCtx(context.Background(), m, cfg)
}

// NewPipelineCtx is NewPipeline with cooperative cancellation: every
// preprocessing stage observes ctx between work units, so cancelling
// ctx aborts construction promptly with ctx's error. A cancelled or
// failed build is never stored in the plan cache.
func NewPipelineCtx(ctx context.Context, m *Matrix, cfg Config) (*Pipeline, error) {
	plan, err := planCache.Load().PreprocessCtx(ctx, m, cfg)
	if err != nil {
		return nil, err
	}
	return newPipeline(m, plan)
}

// NewPipelineNR builds a no-reordering (plain ASpT) pipeline — the
// ASpT-NR baseline. Cached like NewPipeline, under a distinct key.
func NewPipelineNR(m *Matrix, cfg Config) (*Pipeline, error) {
	return NewPipelineNRCtx(context.Background(), m, cfg)
}

// NewPipelineNRCtx is NewPipelineNR with cooperative cancellation (see
// NewPipelineCtx).
func NewPipelineNRCtx(ctx context.Context, m *Matrix, cfg Config) (*Pipeline, error) {
	plan, err := planCache.Load().PreprocessNRCtx(ctx, m, cfg)
	if err != nil {
		return nil, err
	}
	return newPipeline(m, plan)
}

// Plan exposes the underlying preprocessing plan (metrics, permutations,
// tiled representation).
func (p *Pipeline) Plan() *Plan { return p.plan }

// PlanStages returns the per-stage wall-clock breakdown of the
// preprocessing that produced this pipeline's plan. A cache-hit build
// reports zero for the skipped stages (only the value regather, if
// any, shows up under Permute).
func (p *Pipeline) PlanStages() StageTimings { return p.plan.Stages }

// Matrix returns the original (unreordered) matrix.
func (p *Pipeline) Matrix() *Matrix { return p.orig }

// Kernel returns the SpMM execution strategy this pipeline runs —
// either the Config override or the per-matrix autotuner's choice (see
// reorder.ChooseKernel). SDDMM always executes the tiled representation
// regardless: the tile/rest split is what lets SDDMM scatter values
// back in source order.
func (p *Pipeline) Kernel() Kernel { return p.plan.Kernel }

// SpMM computes Y = S·X using the tiled, reordered execution and returns
// Y in the original row order. The output comes from the process-wide
// dense scratch pool (it is fully overwritten before returning), so a
// serving loop that hands results back with PutDense when done recycles
// them instead of allocating per call.
func (p *Pipeline) SpMM(x *Dense) (*Dense, error) {
	y := dense.Get(p.orig.Rows, x.Cols)
	if err := p.SpMMInto(y, x); err != nil {
		dense.Put(y)
		return nil, err
	}
	return y, nil
}

// SpMMCtx is SpMM with cooperative cancellation between kernel chunks
// and panic isolation (a kernel panic returns as an error instead of
// crashing the process). Like SpMM, the output is pooled scratch —
// return it with PutDense to keep the loop allocation-free.
func (p *Pipeline) SpMMCtx(ctx context.Context, x *Dense) (*Dense, error) {
	y := dense.Get(p.orig.Rows, x.Cols)
	if err := p.SpMMIntoCtx(ctx, y, x); err != nil {
		dense.Put(y)
		return nil, err
	}
	return y, nil
}

// SpMMBatchIntoCtx computes every op's Y = S·X in a single batched
// kernel pass: the X operands are column-stacked into pooled scratch,
// the plan's autotuned kernel runs once at the combined width, and each
// op's columns are scattered back into its own Y. This is the
// arithmetic-intensity lever behind request coalescing (DESIGN.md §13):
// the sparse structure — and the output permutation — are traversed
// once for the whole batch instead of once per operand. Steady-state
// calls perform no heap allocations.
func (p *Pipeline) SpMMBatchIntoCtx(ctx context.Context, ops []BatchOp) error {
	return kernels.SpMMBatchIntoCtx(ctx, p, ops)
}

// SpMMInto computes Y = S·X into the caller-provided y
// (S.Rows × X.Cols), overwriting its contents; rows come back in the
// original order. The reordered intermediate lives in pooled scratch,
// so a steady-state call performs no heap allocations.
func (p *Pipeline) SpMMInto(y *Dense, x *Dense) error {
	return p.SpMMIntoCtx(context.Background(), y, x)
}

// fireCorruptPlan is the "integrity.corrupt.plan" fault site: when a
// test arms it with faultinject.CorruptAt, it flips one value in every
// executable slab derived from the plan — the reordered CSR, the ASpT
// tile and leftover arrays, and the ELL/HYB slab — so whichever kernel
// the plan selected serves a plausible-but-wrong number. The flips are
// persistent (exactly like a real corrupted plan build); only eviction
// and a rebuild heal them. Any hook error other than ErrCorrupt (e.g.
// the generic chaos soak arming ErrorAt at every site) is a no-op.
// Callers must not run this concurrently with other requests on the
// same pipeline — the integrity soak serves sequentially while armed.
func (p *Pipeline) fireCorruptPlan() {
	if !errors.Is(faultinject.Fire("integrity.corrupt.plan"), faultinject.ErrCorrupt) {
		return
	}
	hit := false
	flip := func(v []float32) {
		if len(v) > 0 {
			i := len(v) / 2
			v[i] = v[i]*2 + 1
			hit = true
		}
	}
	if p.plan.Reordered != nil && p.plan.Reordered != p.orig {
		flip(p.plan.Reordered.Val)
	}
	if t := p.plan.Tiled; t != nil {
		flip(t.TileVal)
		if t.Rest != nil && t.Rest != p.orig {
			flip(t.Rest.Val)
		}
	}
	if h := p.hyb; h != nil {
		// Flip a real (non-padding) ELL slot: padded tails are never
		// read by the kernel, so a flip there would be undetectable.
		flipped := false
		for r := 0; r < h.ELL.Rows && !flipped; r++ {
			if h.ELL.RowLen[r] > 0 {
				h.ELL.Vals[r*h.ELL.Width] = h.ELL.Vals[r*h.ELL.Width]*2 + 1
				flipped, hit = true, true
			}
		}
		if !flipped && len(h.Spill) > 0 {
			h.Spill[0].Val = h.Spill[0].Val*2 + 1
			hit = true
		}
	}
	if hit {
		integrity.CorruptionInjected()
	}
}

// SpMMIntoCtx is SpMMInto with cooperative cancellation between kernel
// chunks and panic isolation. On error y's contents are unspecified.
func (p *Pipeline) SpMMIntoCtx(ctx context.Context, y *Dense, x *Dense) error {
	if y.Rows != p.orig.Rows || y.Cols != x.Cols {
		return fmt.Errorf("repro: SpMMInto output is %dx%d, want %dx%d",
			y.Rows, y.Cols, p.orig.Rows, x.Cols)
	}
	p.fireCorruptPlan()
	yre := dense.Get(p.orig.Rows, x.Cols)
	defer dense.Put(yre)
	// Execute in reordered row space with the plan's tuned kernel. Every
	// variant honours the same contract: cancellation between chunks,
	// panic isolation, zero steady-state allocations.
	var err error
	switch p.plan.Kernel {
	case reorder.KernelRowWise:
		err = kernels.SpMMRowWiseIntoCtx(ctx, yre, p.plan.Reordered, x)
	case reorder.KernelMerge:
		err = kernels.SpMMMergeIntoCtx(ctx, yre, p.plan.Reordered, x)
	case reorder.KernelELLHybrid:
		if p.hyb != nil {
			err = kernels.SpMMHybridIntoCtx(ctx, yre, p.hyb, x)
			break
		}
		// A hand-assembled Pipeline without the slab (zero value plus
		// field poking) still computes, via the tiled fallback.
		fallthrough
	default:
		err = kernels.SpMMASpTIntoCtx(ctx, yre, p.plan.Tiled, x)
	}
	if err != nil {
		return err
	}
	// Row i of the reordered result is original row RowPerm[i]; gather
	// with the inverse permutation to restore the caller's order.
	sp := obs.TraceFrom(ctx).StartSpan("permute_output")
	err = dense.PermuteRowsInto(y, yre, p.plan.InvRowPerm)
	sp.End()
	return err
}

// SDDMM computes O = S ⊙ (Y·Xᵀ) using the tiled execution; O has the
// original matrix's structure.
func (p *Pipeline) SDDMM(x, y *Dense) (*Matrix, error) {
	out := p.orig.Clone()
	if err := p.SDDMMInto(out, x, y); err != nil {
		return nil, err
	}
	return out, nil
}

// SDDMMCtx is SDDMM with cooperative cancellation between kernel chunks
// and panic isolation.
func (p *Pipeline) SDDMMCtx(ctx context.Context, x, y *Dense) (*Matrix, error) {
	out := p.orig.Clone()
	if err := p.SDDMMIntoCtx(ctx, out, x, y); err != nil {
		return nil, err
	}
	return out, nil
}

// SDDMMInto computes O = S ⊙ (Y·Xᵀ) into the caller-provided out, which
// must have the original matrix's sparsity structure (e.g. a Clone of
// it, a previous SDDMM result, or the matrix itself for in-place value
// rewriting). Only out.Val is written. Steady-state calls perform no
// heap allocations.
func (p *Pipeline) SDDMMInto(out *Matrix, x, y *Dense) error {
	return p.SDDMMIntoCtx(context.Background(), out, x, y)
}

// SDDMMIntoCtx is SDDMMInto with cooperative cancellation between
// kernel chunks and panic isolation. On error out.Val's contents are
// unspecified.
func (p *Pipeline) SDDMMIntoCtx(ctx context.Context, out *Matrix, x, y *Dense) error {
	p.fireCorruptPlan()
	if out != p.orig && !out.SameStructure(p.orig) {
		return fmt.Errorf("repro: SDDMMInto output structure differs from the matrix (%s vs %s)",
			out, p.orig)
	}
	// The tiled matrix's rows are a permutation of the original's; feed
	// the kernel the permuted Y and scatter values back.
	tr := obs.TraceFrom(ctx)
	yre := dense.Get(y.Rows, y.Cols)
	defer dense.Put(yre)
	sp := tr.StartSpan("permute_input")
	err := dense.PermuteRowsInto(yre, y, p.plan.RowPerm)
	sp.End()
	if err != nil {
		return err
	}
	ore := p.getSDDMMScratch()
	defer p.sddmmScratch.Put(ore)
	if err := kernels.SDDMMASpTIntoCtx(ctx, ore, p.plan.Tiled, x, yre); err != nil {
		return err
	}
	// Scatter reordered-row values back to their original rows. Row
	// permutation leaves the within-row column order untouched, so each
	// row's value segment copies verbatim.
	sp = tr.StartSpan("permute_output")
	re := p.plan.Tiled.Src
	for i, orig := range p.plan.RowPerm {
		copy(out.Val[p.orig.RowPtr[orig]:p.orig.RowPtr[orig+1]],
			ore.Val[re.RowPtr[i]:re.RowPtr[i+1]])
	}
	sp.End()
	return nil
}

// getSDDMMScratch returns a pooled CSR sharing the reordered matrix's
// structure arrays with a private Val buffer.
func (p *Pipeline) getSDDMMScratch() *sparse.CSR {
	if v := p.sddmmScratch.Get(); v != nil {
		return v.(*sparse.CSR)
	}
	re := p.plan.Tiled.Src
	return &sparse.CSR{
		Rows:   re.Rows,
		Cols:   re.Cols,
		RowPtr: re.RowPtr,
		ColIdx: re.ColIdx,
		Val:    make([]float32, re.NNZ()),
	}
}

// EstimateSpMM simulates this pipeline's SpMM on the given device for
// dense width k and returns the traffic/time report.
func (p *Pipeline) EstimateSpMM(dev Device, k int) (*SimStats, error) {
	return gpusim.SpMMASpT(dev, p.plan.Tiled, p.plan.RestOrder, k)
}

// EstimateSDDMM simulates this pipeline's SDDMM.
func (p *Pipeline) EstimateSDDMM(dev Device, k int) (*SimStats, error) {
	return gpusim.SDDMMASpT(dev, p.plan.Tiled, p.plan.RestOrder, k)
}

// EstimateSpMMRowWise simulates the unpreprocessed row-wise baseline
// (cuSPARSE-like) for comparison.
func EstimateSpMMRowWise(dev Device, s *Matrix, k int) (*SimStats, error) {
	return gpusim.SpMMRowWise(dev, s, k, nil)
}

// EstimateSDDMMRowWise simulates the unpreprocessed row-wise SDDMM.
func EstimateSDDMMRowWise(dev Device, s *Matrix, k int) (*SimStats, error) {
	return gpusim.SDDMMRowWise(dev, s, k, nil)
}

// SavePlan serialises the pipeline's preprocessing decisions (the
// permutations of both rounds) so a later process can re-apply them
// without re-running LSH and clustering — the paper's §5.4 offline
// scenario.
func (p *Pipeline) SavePlan(w io.Writer) error { return reorder.WritePlan(w, p.plan) }

// NewPipelineFromSavedPlan rebuilds an executable pipeline for m from a
// plan previously written by SavePlan. Tiling is recomputed (O(nnz));
// LSH and clustering are skipped. The saved plan must have been computed
// for a matrix with the same number of rows.
func NewPipelineFromSavedPlan(m *Matrix, cfg Config, r io.Reader) (*Pipeline, error) {
	sp, err := reorder.ReadPlan(r)
	if err != nil {
		return nil, err
	}
	plan, err := sp.Apply(m, cfg)
	if err != nil {
		return nil, err
	}
	return newPipeline(m, plan)
}

// SavePlanFile writes the plan to path atomically and durably (temp
// file + rename + fsync): a crash mid-write, or a concurrent writer to
// the same path, leaves either the previous file or the complete new
// one — never a torn plan.
func (p *Pipeline) SavePlanFile(path string) error { return reorder.WritePlanFile(path, p.plan) }

// NewPipelineFromPlanFile is NewPipelineFromSavedPlan reading from a
// file written by SavePlanFile. A truncated or corrupted file fails
// with ErrPlanFormat (the format carries a CRC-checksummed footer) and
// is never applied; callers fall back to preprocessing from scratch.
func NewPipelineFromPlanFile(m *Matrix, cfg Config, path string) (*Pipeline, error) {
	sp, err := reorder.ReadPlanFile(path)
	if err != nil {
		return nil, err
	}
	plan, err := sp.Apply(m, cfg)
	if err != nil {
		return nil, err
	}
	return newPipeline(m, plan)
}

// ErrPlanFormat is wrapped by every plan-file deserialization failure:
// bad magic or version, truncation, checksum mismatch, or a stored
// order that is not a permutation. Test with errors.Is.
var ErrPlanFormat = reorder.ErrPlanFormat

// EstimateSpMMASpTPlanNoRound2 simulates a plan's SpMM with the leftover
// sparse part processed in natural order, ignoring the plan's round-2
// RestOrder — isolating the contribution of round 1 for the rounds
// ablation (DESIGN.md §4).
func EstimateSpMMASpTPlanNoRound2(dev Device, plan *Plan, k int) (*SimStats, error) {
	return gpusim.SpMMASpT(dev, plan.Tiled, nil, k)
}

// AutoTune implements the paper's §4 trial-and-error strategy: build both
// the reordered and the no-reordering pipeline, estimate both on the
// device at width k, and return the faster one (ties favour NR, which has
// no preprocessing cost).
func AutoTune(m *Matrix, cfg Config, dev Device, k int) (*Pipeline, error) {
	rr, err := NewPipeline(m, cfg)
	if err != nil {
		return nil, err
	}
	nr, err := NewPipelineNR(m, cfg)
	if err != nil {
		return nil, err
	}
	srr, err := rr.EstimateSpMM(dev, k)
	if err != nil {
		return nil, err
	}
	snr, err := nr.EstimateSpMM(dev, k)
	if err != nil {
		return nil, err
	}
	if srr.Time < snr.Time {
		return rr, nil
	}
	return nr, nil
}
