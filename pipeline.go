package repro

import (
	"fmt"
	"io"

	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

// Pipeline wraps a preprocessed matrix and executes SpMM/SDDMM on it.
// Reordering is purely an execution strategy: results are returned in the
// original row order and with the original sparsity structure, so a
// Pipeline is a drop-in replacement for the plain kernels.
type Pipeline struct {
	orig *Matrix
	plan *Plan
}

// NewPipeline preprocesses m (Fig 5 workflow: round-1 reordering, ASpT
// tiling, round-2 reordering of the leftover part, with the §4 skip
// heuristics) and returns an executable pipeline. m is not mutated and
// may be used concurrently.
func NewPipeline(m *Matrix, cfg Config) (*Pipeline, error) {
	plan, err := reorder.Preprocess(m, cfg)
	if err != nil {
		return nil, err
	}
	return &Pipeline{orig: m, plan: plan}, nil
}

// NewPipelineNR builds a no-reordering (plain ASpT) pipeline — the
// ASpT-NR baseline.
func NewPipelineNR(m *Matrix, cfg Config) (*Pipeline, error) {
	plan, err := reorder.PreprocessNR(m, cfg)
	if err != nil {
		return nil, err
	}
	return &Pipeline{orig: m, plan: plan}, nil
}

// Plan exposes the underlying preprocessing plan (metrics, permutations,
// tiled representation).
func (p *Pipeline) Plan() *Plan { return p.plan }

// Matrix returns the original (unreordered) matrix.
func (p *Pipeline) Matrix() *Matrix { return p.orig }

// SpMM computes Y = S·X using the tiled, reordered execution and returns
// Y in the original row order.
func (p *Pipeline) SpMM(x *Dense) (*Dense, error) {
	yre, err := kernels.SpMMASpT(p.plan.Tiled, x)
	if err != nil {
		return nil, err
	}
	// Row i of the reordered result is original row RowPerm[i]; gather
	// with the inverse permutation to restore the caller's order.
	return yre.PermuteRows(p.plan.InvRowPerm)
}

// SDDMM computes O = S ⊙ (Y·Xᵀ) using the tiled execution; O has the
// original matrix's structure.
func (p *Pipeline) SDDMM(x, y *Dense) (*Matrix, error) {
	// The tiled matrix's rows are a permutation of the original's; feed
	// the kernel the permuted Y and scatter values back.
	yre, err := y.PermuteRows(p.plan.RowPerm)
	if err != nil {
		return nil, err
	}
	ore, err := kernels.SDDMMASpT(p.plan.Tiled, x, yre)
	if err != nil {
		return nil, err
	}
	out, err := sparse.PermuteRows(ore, p.plan.InvRowPerm)
	if err != nil {
		return nil, err
	}
	if !out.SameStructure(p.orig) {
		return nil, fmt.Errorf("repro: SDDMM structure mismatch after permutation (internal error)")
	}
	return out, nil
}

// EstimateSpMM simulates this pipeline's SpMM on the given device for
// dense width k and returns the traffic/time report.
func (p *Pipeline) EstimateSpMM(dev Device, k int) (*SimStats, error) {
	return gpusim.SpMMASpT(dev, p.plan.Tiled, p.plan.RestOrder, k)
}

// EstimateSDDMM simulates this pipeline's SDDMM.
func (p *Pipeline) EstimateSDDMM(dev Device, k int) (*SimStats, error) {
	return gpusim.SDDMMASpT(dev, p.plan.Tiled, p.plan.RestOrder, k)
}

// EstimateSpMMRowWise simulates the unpreprocessed row-wise baseline
// (cuSPARSE-like) for comparison.
func EstimateSpMMRowWise(dev Device, s *Matrix, k int) (*SimStats, error) {
	return gpusim.SpMMRowWise(dev, s, k, nil)
}

// EstimateSDDMMRowWise simulates the unpreprocessed row-wise SDDMM.
func EstimateSDDMMRowWise(dev Device, s *Matrix, k int) (*SimStats, error) {
	return gpusim.SDDMMRowWise(dev, s, k, nil)
}

// SavePlan serialises the pipeline's preprocessing decisions (the
// permutations of both rounds) so a later process can re-apply them
// without re-running LSH and clustering — the paper's §5.4 offline
// scenario.
func (p *Pipeline) SavePlan(w io.Writer) error { return reorder.WritePlan(w, p.plan) }

// NewPipelineFromSavedPlan rebuilds an executable pipeline for m from a
// plan previously written by SavePlan. Tiling is recomputed (O(nnz));
// LSH and clustering are skipped. The saved plan must have been computed
// for a matrix with the same number of rows.
func NewPipelineFromSavedPlan(m *Matrix, cfg Config, r io.Reader) (*Pipeline, error) {
	sp, err := reorder.ReadPlan(r)
	if err != nil {
		return nil, err
	}
	plan, err := sp.Apply(m, cfg)
	if err != nil {
		return nil, err
	}
	return &Pipeline{orig: m, plan: plan}, nil
}

// EstimateSpMMASpTPlanNoRound2 simulates a plan's SpMM with the leftover
// sparse part processed in natural order, ignoring the plan's round-2
// RestOrder — isolating the contribution of round 1 for the rounds
// ablation (DESIGN.md §4).
func EstimateSpMMASpTPlanNoRound2(dev Device, plan *Plan, k int) (*SimStats, error) {
	return gpusim.SpMMASpT(dev, plan.Tiled, nil, k)
}

// AutoTune implements the paper's §4 trial-and-error strategy: build both
// the reordered and the no-reordering pipeline, estimate both on the
// device at width k, and return the faster one (ties favour NR, which has
// no preprocessing cost).
func AutoTune(m *Matrix, cfg Config, dev Device, k int) (*Pipeline, error) {
	rr, err := NewPipeline(m, cfg)
	if err != nil {
		return nil, err
	}
	nr, err := NewPipelineNR(m, cfg)
	if err != nil {
		return nil, err
	}
	srr, err := rr.EstimateSpMM(dev, k)
	if err != nil {
		return nil, err
	}
	snr, err := nr.EstimateSpMM(dev, k)
	if err != nil {
		return nil, err
	}
	if srr.Time < snr.Time {
		return rr, nil
	}
	return nr, nil
}
