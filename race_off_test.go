//go:build !race

package repro_test

// raceDetectorEnabled relaxes allocation pins under -race: the race
// detector randomly drops sync.Pool puts, so pooled scratch paths show
// spurious allocations that do not exist in normal builds.
const raceDetectorEnabled = false
