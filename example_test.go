package repro_test

import (
	"bytes"
	"fmt"

	"repro"
)

// Example demonstrates the minimal end-to-end flow: build a matrix,
// preprocess it, and run SpMM through the pipeline. Results are
// identical to the plain kernel; only the execution order changes.
func Example() {
	// The paper's worked-example matrix (Fig 1a): 6×6, 12 nonzeros.
	rows := [][]int32{{0, 4}, {1, 5}, {2, 4}, {1}, {0, 3, 4}, {2, 5}}
	m, err := repro.FromRows(6, 6, rows, nil)
	if err != nil {
		panic(err)
	}
	pipe, err := repro.NewPipeline(m, repro.DefaultConfig())
	if err != nil {
		panic(err)
	}
	x := repro.NewDense(6, 2)
	x.Fill(1)
	y, err := pipe.SpMM(x)
	if err != nil {
		panic(err)
	}
	// Row 4 of S has three ones, so row 4 of Y is 3 in every column.
	fmt.Println(y.At(4, 0), y.At(4, 1))
	// Output: 3 3
}

// ExampleSDDMM shows the sampled dense-dense product: the output keeps
// the sparse matrix's pattern, each value scaled by the corresponding
// dot product.
func ExampleSDDMM() {
	s, err := repro.FromRows(2, 2, [][]int32{{0}, {1}}, [][]float32{{2}, {3}})
	if err != nil {
		panic(err)
	}
	x := repro.NewDense(2, 2)
	y := repro.NewDense(2, 2)
	x.Fill(1)
	y.Fill(1)
	o, err := repro.SDDMM(s, x, y) // dot products are all 2 (K=2)
	if err != nil {
		panic(err)
	}
	fmt.Println(o.Val)
	// Output: [4 6]
}

// ExamplePipeline_SavePlan demonstrates the §5.4 offline scenario: the
// preprocessing decisions are serialised once and re-applied later
// without re-running LSH or clustering.
func ExamplePipeline_SavePlan() {
	m, err := repro.GenerateScrambledClusters(1024, 1024, 128, 3)
	if err != nil {
		panic(err)
	}
	pipe, err := repro.NewPipeline(m, repro.DefaultConfig())
	if err != nil {
		panic(err)
	}
	var plan bytes.Buffer
	if err := pipe.SavePlan(&plan); err != nil {
		panic(err)
	}
	// ... deployment time: same matrix, no LSH/clustering ...
	pipe2, err := repro.NewPipelineFromSavedPlan(m, repro.DefaultConfig(), &plan)
	if err != nil {
		panic(err)
	}
	x := repro.NewRandomDense(m.Cols, 4, 1)
	a, _ := pipe.SpMM(x)
	b, _ := pipe2.SpMM(x)
	same := true
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
		}
	}
	fmt.Println("identical results:", same)
	// Output: identical results: true
}

// ExampleAutoTune shows the paper's §4 trial-and-error strategy: both
// execution plans are estimated on the device model and the faster one
// is kept.
func ExampleAutoTune() {
	m, err := repro.GenerateScrambledClusters(2048, 2048, 256, 1)
	if err != nil {
		panic(err)
	}
	pipe, err := repro.AutoTune(m, repro.DefaultConfig(), repro.P100(), 512)
	if err != nil {
		panic(err)
	}
	x := repro.NewRandomDense(m.Cols, 512, 2)
	y, err := pipe.SpMM(x)
	if err != nil {
		panic(err)
	}
	fmt.Println(y.Rows, y.Cols)
	// Output: 2048 512
}
