package repro_test

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro"
)

var errDiverged = errors.New("concurrent result diverged from reference")

func TestOnlinePipelineDecides(t *testing.T) {
	m := scrambled(t)
	o, err := repro.NewOnlinePipeline(m, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if done, _ := o.Decided(); done {
		t.Fatalf("decided before first call")
	}
	if o.Pipeline() != nil {
		t.Fatalf("winner exposed before decision")
	}
	x := repro.NewRandomDense(m.Cols, 16, 1)
	want, err := repro.SpMM(m, x)
	if err != nil {
		t.Fatal(err)
	}
	y1, err := o.SpMM(x)
	if err != nil {
		t.Fatal(err)
	}
	done, _ := o.Decided()
	if !done {
		t.Fatalf("first call did not decide")
	}
	rrT, nrT := o.TrialTimes()
	if rrT <= 0 || nrT <= 0 {
		t.Fatalf("trial times not recorded: %v %v", rrT, nrT)
	}
	if o.Pipeline() == nil {
		t.Fatalf("no winner exposed")
	}
	// Correctness in both the deciding and the decided calls.
	y2, err := o.SpMM(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(float64(want.Data[i]-y1.Data[i])) > 1e-4 ||
			math.Abs(float64(want.Data[i]-y2.Data[i])) > 1e-4 {
			t.Fatalf("online pipeline diverges at %d", i)
		}
	}
}

// TestOnlinePipelineConcurrentUndecided hammers a fresh (undecided)
// pipeline from many goroutines: exactly one runs the trial, the rest
// either wait it out or take the decided fast path, and every result
// must be correct. Run under -race (see `make race`).
func TestOnlinePipelineConcurrentUndecided(t *testing.T) {
	m := scrambled(t)
	o, err := repro.NewOnlinePipeline(m, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := repro.NewRandomDense(m.Cols, 16, 1)
	want, err := repro.SpMM(m, x)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	results := make([]*repro.Dense, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = o.SpMM(x)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		for i := range want.Data {
			if math.Abs(float64(want.Data[i]-results[g].Data[i])) > 1e-4 {
				t.Fatalf("goroutine %d diverges at %d", g, i)
			}
		}
	}
	if done, _ := o.Decided(); !done {
		t.Fatalf("concurrent first calls did not decide")
	}
}

// TestOnlinePipelineConcurrentDecided checks the lock-free fast path:
// once decided, ≥8 goroutines call SpMM (and SpMMInto) concurrently and
// repeatedly; all results must be correct and no state may race.
func TestOnlinePipelineConcurrentDecided(t *testing.T) {
	m := scrambled(t)
	o, err := repro.NewOnlinePipeline(m, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := repro.NewRandomDense(m.Cols, 16, 1)
	if _, err := o.SpMM(x); err != nil { // decide
		t.Fatal(err)
	}
	if done, _ := o.Decided(); !done {
		t.Fatalf("not decided after first call")
	}
	want, err := repro.SpMM(m, x)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const callsEach = 4
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			y := repro.NewDense(m.Rows, x.Cols)
			for c := 0; c < callsEach; c++ {
				var got *repro.Dense
				var err error
				if c%2 == 0 {
					got, err = o.SpMM(x)
				} else {
					err = o.SpMMInto(y, x)
					got = y
				}
				if err != nil {
					errCh <- err
					return
				}
				for i := range want.Data {
					if math.Abs(float64(want.Data[i]-got.Data[i])) > 1e-4 {
						errCh <- errDiverged
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestOnlinePipelineIntoVariants checks the Into entry points on both
// the undecided (trial) and decided paths, including output validation.
func TestOnlinePipelineIntoVariants(t *testing.T) {
	m := scrambled(t)
	o, err := repro.NewOnlinePipeline(m, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := repro.NewRandomDense(m.Cols, 8, 4)
	yin := repro.NewRandomDense(m.Rows, 8, 5)
	want, err := repro.SpMM(m, x)
	if err != nil {
		t.Fatal(err)
	}
	y := repro.NewDense(m.Rows, 8)
	if err := o.SpMMInto(y, x); err != nil { // undecided path decides
		t.Fatal(err)
	}
	if done, _ := o.Decided(); !done {
		t.Fatalf("SpMMInto did not decide")
	}
	for i := range want.Data {
		if math.Abs(float64(want.Data[i]-y.Data[i])) > 1e-4 {
			t.Fatalf("trial SpMMInto diverges at %d", i)
		}
	}
	if err := o.SpMMInto(y, x); err != nil { // decided path
		t.Fatal(err)
	}
	if err := o.SpMMInto(repro.NewDense(m.Rows+1, 8), x); err == nil {
		t.Fatalf("accepted wrong-shaped output")
	}
	wantO, err := repro.SDDMM(m, x, yin)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Clone()
	if err := o.SDDMMInto(out, x, yin); err != nil {
		t.Fatal(err)
	}
	for j := range wantO.Val {
		if math.Abs(float64(wantO.Val[j]-out.Val[j])) > 1e-4 {
			t.Fatalf("SDDMMInto diverges at %d", j)
		}
	}
	bad := repro.Matrix{Rows: 1, Cols: 1, RowPtr: []int32{0, 0}}
	if err := o.SDDMMInto(&bad, x, yin); err == nil {
		t.Fatalf("accepted structurally different SDDMM output")
	}
}

func TestOnlinePipelineSDDMM(t *testing.T) {
	m := scrambled(t)
	o, err := repro.NewOnlinePipeline(m, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := repro.NewRandomDense(m.Cols, 8, 2)
	y := repro.NewRandomDense(m.Rows, 8, 3)
	want, err := repro.SDDMM(m, x, y)
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.SDDMM(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameStructure(m) {
		t.Fatalf("structure changed")
	}
	for j := range want.Val {
		if math.Abs(float64(want.Val[j]-got.Val[j])) > 1e-4 {
			t.Fatalf("online SDDMM diverges at %d", j)
		}
	}
	if done, _ := o.Decided(); !done {
		t.Fatalf("SDDMM first call did not decide")
	}
	// Second call goes through the winner path.
	if _, err := o.SDDMM(x, y); err != nil {
		t.Fatal(err)
	}
}
