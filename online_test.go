package repro_test

import (
	"math"
	"testing"

	"repro"
)

func TestOnlinePipelineDecides(t *testing.T) {
	m := scrambled(t)
	o, err := repro.NewOnlinePipeline(m, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if done, _ := o.Decided(); done {
		t.Fatalf("decided before first call")
	}
	if o.Pipeline() != nil {
		t.Fatalf("winner exposed before decision")
	}
	x := repro.NewRandomDense(m.Cols, 16, 1)
	want, err := repro.SpMM(m, x)
	if err != nil {
		t.Fatal(err)
	}
	y1, err := o.SpMM(x)
	if err != nil {
		t.Fatal(err)
	}
	done, _ := o.Decided()
	if !done {
		t.Fatalf("first call did not decide")
	}
	rrT, nrT := o.TrialTimes()
	if rrT <= 0 || nrT <= 0 {
		t.Fatalf("trial times not recorded: %v %v", rrT, nrT)
	}
	if o.Pipeline() == nil {
		t.Fatalf("no winner exposed")
	}
	// Correctness in both the deciding and the decided calls.
	y2, err := o.SpMM(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(float64(want.Data[i]-y1.Data[i])) > 1e-4 ||
			math.Abs(float64(want.Data[i]-y2.Data[i])) > 1e-4 {
			t.Fatalf("online pipeline diverges at %d", i)
		}
	}
}

func TestOnlinePipelineSDDMM(t *testing.T) {
	m := scrambled(t)
	o, err := repro.NewOnlinePipeline(m, repro.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := repro.NewRandomDense(m.Cols, 8, 2)
	y := repro.NewRandomDense(m.Rows, 8, 3)
	want, err := repro.SDDMM(m, x, y)
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.SDDMM(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameStructure(m) {
		t.Fatalf("structure changed")
	}
	for j := range want.Val {
		if math.Abs(float64(want.Val[j]-got.Val[j])) > 1e-4 {
			t.Fatalf("online SDDMM diverges at %d", j)
		}
	}
	if done, _ := o.Decided(); !done {
		t.Fatalf("SDDMM first call did not decide")
	}
	// Second call goes through the winner path.
	if _, err := o.SDDMM(x, y); err != nil {
		t.Fatal(err)
	}
}
